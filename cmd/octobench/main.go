// Command octobench regenerates the paper's tables and figures.
//
// Usage:
//
//	octobench -exp fig6              # one experiment at paper scale
//	octobench -exp all -fast         # every experiment, reduced scale
//	octobench -list                  # show available experiment ids
//	octobench -exp scenarios -fast   # replay the whole scenario catalog
//	octobench -exp scenarios -scenario node-churn   # one scenario
//	octobench -scenario list         # show available scenario names
//
// Each experiment prints one or more aligned text tables whose rows mirror
// the series the paper plots; see EXPERIMENTS.md for the mapping and the
// paper-vs-measured record.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"octostore/internal/experiments"
	"octostore/internal/scenario"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (or 'all')")
		list     = flag.Bool("list", false, "list available experiments")
		fast     = flag.Bool("fast", false, "reduced-scale run (small cluster, short workload)")
		workers  = flag.Int("workers", 11, "cluster worker count")
		seed     = flag.Int64("seed", 1, "workload/placement seed")
		scenName = flag.String("scenario", "", "scenario name for -exp scenarios ('list' to enumerate, empty for all)")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *scenName == "list" {
		for _, name := range scenario.Names() {
			fmt.Println(name)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "octobench: -exp is required (use -list to see options)")
		os.Exit(2)
	}
	if *scenName != "" && *exp != "scenarios" && *exp != "all" {
		fmt.Fprintf(os.Stderr, "octobench: -scenario only applies to -exp scenarios (got -exp %s)\n", *exp)
		os.Exit(2)
	}
	opts := experiments.Options{Workers: *workers, Seed: *seed, Fast: *fast, Scenario: *scenName}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		runner, err := experiments.Get(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "octobench:", err)
			os.Exit(2)
		}
		start := time.Now()
		tables, err := runner(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "octobench: %s: %v\n", id, err)
			os.Exit(1)
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
			fmt.Println()
		}
		fmt.Printf("-- %s completed in %v --\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
