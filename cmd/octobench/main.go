// Command octobench regenerates the paper's tables and figures.
//
// Usage:
//
//	octobench -exp fig6              # one experiment at paper scale
//	octobench -exp all -fast         # every experiment, reduced scale
//	octobench -list                  # show available experiment ids
//	octobench -exp scenarios -fast   # replay the whole scenario catalog
//	octobench -exp scenarios -scenario node-churn   # one scenario
//	octobench -scenario list         # show available scenario names
//	octobench -exp all -parallel 0   # fan cells out across all cores
//	octobench -exp fig6 -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Each experiment prints one or more aligned text tables whose rows mirror
// the series the paper plots; see EXPERIMENTS.md for the mapping and the
// paper-vs-measured record.
//
// -parallel runs independent experiment cells (system × policy × workload
// simulations) concurrently; every cell is deterministic and isolated, so
// the output is identical at any parallelism level. -cpuprofile and
// -memprofile write pprof profiles covering the experiment runs, so perf
// regressions are diagnosable without editing code.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"octostore/internal/experiments"
	"octostore/internal/obs"
	"octostore/internal/scenario"
)

func main() {
	var (
		exp        = flag.String("exp", "", "experiment id (or 'all')")
		list       = flag.Bool("list", false, "list available experiments")
		fast       = flag.Bool("fast", false, "reduced-scale run (small cluster, short workload)")
		workers    = flag.Int("workers", 11, "cluster worker count")
		seed       = flag.Int64("seed", 1, "workload/placement seed")
		scenName   = flag.String("scenario", "", "scenario name for -exp scenarios ('list' to enumerate, empty for all)")
		parallel   = flag.Int("parallel", 1, "concurrent experiment cells (0 = all cores); results are identical at any level")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile after the experiment runs to this file")
		obsListen  = flag.String("obs-listen", "", "serve /metrics, /metrics.json, and /debug/pprof on this address while the experiments run (e.g. :9100; empty disables)")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *scenName == "list" {
		for _, name := range scenario.Names() {
			fmt.Println(name)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "octobench: -exp is required (use -list to see options)")
		os.Exit(2)
	}
	if *scenName != "" && *exp != "scenarios" && *exp != "all" {
		fmt.Fprintf(os.Stderr, "octobench: -scenario only applies to -exp scenarios (got -exp %s)\n", *exp)
		os.Exit(2)
	}
	opts := experiments.Options{Workers: *workers, Seed: *seed, Fast: *fast, Scenario: *scenName}
	// Options.Parallel: 0 sequential (zero value), negative all cores.
	switch {
	case *parallel == 0:
		opts.Parallel = -1
	case *parallel > 1:
		opts.Parallel = *parallel
	}

	if *obsListen != "" {
		// The experiment runners drive the simulation cores directly (no
		// serving layer), so the hub's value here is live pprof plus whatever
		// registry consumers future experiments attach; it mainly keeps the
		// flag surface uniform with octoload.
		hub := obs.NewHub(obs.HubConfig{})
		bound, stop, err := hub.ListenAndServe(*obsListen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "octobench: obs-listen:", err)
			os.Exit(1)
		}
		defer stop()
		fmt.Printf("octobench: obs serving on http://%s/debug/pprof (and /metrics)\n", bound)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "octobench: cpuprofile:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "octobench: cpuprofile:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		runner, err := experiments.Get(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "octobench:", err)
			exitProfiled(2, *memProfile)
		}
		start := time.Now()
		tables, err := runner(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "octobench: %s: %v\n", id, err)
			exitProfiled(1, *memProfile)
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
			fmt.Println()
		}
		fmt.Printf("-- %s completed in %v --\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	writeMemProfile(*memProfile)
}

// exitProfiled flushes the profiles (deferred CPU stop does not run across
// os.Exit) and terminates.
func exitProfiled(code int, memProfile string) {
	pprof.StopCPUProfile()
	writeMemProfile(memProfile)
	os.Exit(code)
}

// writeMemProfile dumps the heap profile after a GC, mirroring `go test
// -memprofile` semantics.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "octobench: memprofile:", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "octobench: memprofile:", err)
	}
}
