// Command octoload is the closed-loop traffic driver for the concurrent
// serving layer: it stands up a managed tiered DFS behind internal/server,
// stages a file population drawn from the internal/workload generators,
// then hammers the service with N concurrent clients issuing a configurable
// mix of zipf-skewed accesses, stats, creates, and deletes while the
// movement executor shuffles replicas between tiers underneath.
//
// With -shards > 1 the service is the sharded simulation core: one engine,
// manager, candidate index, and shard loop per namespace shard, with
// per-shard capacity quotas reconciled against the global tier ledger
// through the two-phase borrow protocol. With -scenario the driver attaches
// to a scenario catalog entry instead of building its own world: the
// scenario supplies the cluster topology and file population, and its
// perturbations (ballast floods, node churn, client surges) run against the
// served system while the clients drive load — surge traffic and
// perturbations compose into one BENCH_serve report.
//
// At the end it fences the server, runs the full invariant suite
// (capacity accounting, deep structural checks, candidate-index audit,
// ledger conservation, movement budgets), and reports ops/s plus p50/p99
// latency histograms, written as JSON to -out (BENCH_serve.json by default)
// for CI trend tracking. The process exits non-zero if any invariant was
// violated — a load run is a correctness artifact, not just a throughput
// number.
//
// Examples:
//
//	octoload                                   # 8 clients, 5s, FB-shaped files
//	octoload -shards 4                         # sharded core, 4 shard loops
//	octoload -scenario node-churn -dur 8s      # compose load with churn
//	octoload -clients 32 -dur 10s -zipf 1.3
//	octoload -down xgb -up xgb -timescale 300
//	octoload -budget-mem 128 -move-queue 16    # stress shedding
//	octoload -shards 4 -tenants 2 -dataplane contended   # weighted-fair QoS
//	octoload -tenants 2 -dataplane contended -read-slo 40ms  # SLO admission control
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"octostore/internal/backend"
	"octostore/internal/cluster"
	"octostore/internal/core"
	"octostore/internal/dfs"
	"octostore/internal/metrics"
	"octostore/internal/ml"
	"octostore/internal/obs"
	"octostore/internal/policy"
	"octostore/internal/scenario"
	"octostore/internal/server"
	"octostore/internal/sim"
	"octostore/internal/storage"
	"octostore/internal/workload"
)

type config struct {
	clients   int
	dur       time.Duration
	files     int
	workloadN string
	fileSzMB  int64
	scenarioN string
	zipfS     float64
	readFrac  float64
	statFrac  float64
	muteFrac  float64 // create+delete combined; split evenly
	workers   int
	memCapMB  int64
	ssdCapMB  int64
	hddCapMB  int64
	down, up  string
	timeScale float64
	seed      int64
	out       string

	arrival    string
	rate       float64
	window     time.Duration
	drain      time.Duration
	memProfile string

	shards      int
	hotdir      float64
	rebalance   bool
	quotaFrac   float64
	moveWorkers int
	moveQueue   int
	budgetMB    [3]int64
	rateMBps    [3]int64
	dataplane   string

	tenants   int
	readSLO   time.Duration
	tenantCfg []server.TenantConfig

	obsListen string
	tracePath string
	hub       *obs.Hub // set in main when either obs flag is on

	backendN    string
	backendRoot string
	backendOut  string
	backendSync bool
	// mkBackend is set in main on -backend real: a per-shard factory over
	// the opened Local instances (block ids are per-FileSystem, so shards
	// must not share a directory tree).
	mkBackend func(shard int) backend.Backend
}

func parseFlags() config {
	var c config
	flag.IntVar(&c.clients, "clients", 8, "concurrent closed-loop clients")
	flag.DurationVar(&c.dur, "dur", 5*time.Second, "load duration (wall clock)")
	flag.IntVar(&c.files, "files", 150, "approximate staged file population (scales the workload generator)")
	flag.StringVar(&c.workloadN, "workload", "fb", "file population shape: fb, cmu (internal/workload profiles), or fixed (-files uniform files of -filesize MB; cheap to stage at million-file scale)")
	flag.Int64Var(&c.fileSzMB, "filesize", 1, "file size in MB for -workload fixed")
	flag.StringVar(&c.scenarioN, "scenario", "", "attach to a scenario catalog entry: its cluster, population, and perturbations compose with the client load (see internal/scenario)")
	flag.Float64Var(&c.zipfS, "zipf", 1.1, "zipf skew of the access key distribution (>1)")
	flag.Float64Var(&c.readFrac, "readfrac", 0.82, "fraction of ops that are accesses")
	flag.Float64Var(&c.statFrac, "statfrac", 0.10, "fraction of ops that are stats/lists")
	flag.IntVar(&c.workers, "workers", 5, "cluster worker count")
	flag.Int64Var(&c.memCapMB, "memcap", 256, "memory-tier capacity per worker in MB (small keeps movement busy)")
	flag.Int64Var(&c.ssdCapMB, "ssdcap", 16*1024, "SSD-tier capacity per worker in MB (small forces HDD-resident files, so all three tiers serve)")
	flag.Int64Var(&c.hddCapMB, "hddcap", 128*1024, "HDD capacity per device in MB (two devices per worker; raise for million-file populations)")
	flag.StringVar(&c.down, "down", "lru", "downgrade policy")
	flag.StringVar(&c.up, "up", "osa", "upgrade policy")
	flag.Float64Var(&c.timeScale, "timescale", 120, "virtual seconds advanced per wall second")
	flag.Int64Var(&c.seed, "seed", 1, "population/placement/client seed")
	flag.StringVar(&c.out, "out", "BENCH_serve.json", "JSON report path (empty disables)")
	flag.StringVar(&c.arrival, "arrival", "closed", "arrival process: closed (N clients, next op after previous completes) or open (ops fire at a precomputed Poisson schedule regardless of completion; latency is measured from the intended arrival, so queueing delay is not coordinated away)")
	flag.Float64Var(&c.rate, "rate", 0, "open-loop target arrival rate in ops/s (required with -arrival open)")
	flag.DurationVar(&c.window, "window", 0, "time-series window for the over-time ops/s + read-latency curve (0 = 1s in open mode, disabled in closed mode)")
	flag.DurationVar(&c.drain, "drain", 30*time.Second, "how long to wait after the deadline for in-flight/queued ops before abandoning them")
	flag.StringVar(&c.memProfile, "memprofile", "", "write a heap profile here at the end of the run (population still live)")
	flag.IntVar(&c.shards, "shards", 1, "namespace shards (each with its own engine, manager, and shard loop)")
	flag.Float64Var(&c.hotdir, "hotdir", 0, "fraction of access traffic concentrated in one hot subtree whose directories all hash to a single shard — the adversarial skew the static parent-dir routing cannot spread (0 disables)")
	flag.BoolVar(&c.rebalance, "rebalance", false, "enable the dynamic shard rebalancer: hot-prefix detection, live subtree migration, route-table overrides (requires -shards >= 2)")
	flag.Float64Var(&c.quotaFrac, "quota-frac", 0.5, "fraction of tier capacity granted to shard quotas up front (rest is borrowable pool)")
	flag.IntVar(&c.moveWorkers, "move-workers", 2, "movement executor slots per destination tier")
	flag.IntVar(&c.moveQueue, "move-queue", 64, "movement executor queue depth per tier")
	flag.Int64Var(&c.budgetMB[0], "budget-mem", 512, "memory-tier movement token bucket (MB, burst)")
	flag.Int64Var(&c.budgetMB[1], "budget-ssd", 1024, "SSD-tier movement token bucket (MB, burst)")
	flag.Int64Var(&c.budgetMB[2], "budget-hdd", 2048, "HDD-tier movement token bucket (MB, burst)")
	flag.Int64Var(&c.rateMBps[0], "rate-mem", 0, "memory-tier movement refill rate (MB per virtual second, 0 = default)")
	flag.Int64Var(&c.rateMBps[1], "rate-ssd", 0, "SSD-tier movement refill rate (MB per virtual second, 0 = default)")
	flag.Int64Var(&c.rateMBps[2], "rate-hdd", 0, "HDD-tier movement refill rate (MB per virtual second, 0 = default)")
	flag.StringVar(&c.dataplane, "dataplane", "none", "data-plane profile: none (free reads, uncontended movement — the pre-data-plane semantics) or contended (per-physical-device service time + shared bandwidth arbitration across shards)")
	flag.IntVar(&c.tenants, "tenants", 0, "tenant count: >= 2 tags client traffic round-robin (tenant 1 heaviest) and schedules the contended plane weighted-fair; requires -dataplane contended")
	flag.DurationVar(&c.readSLO, "read-slo", 0, "tenant 1's read p99 target (tier-real virtual latency); breaches defer background movement; requires -tenants >= 2")
	flag.StringVar(&c.obsListen, "obs-listen", "", "serve /metrics (Prometheus text), /metrics.json, /flight, and /debug/pprof on this address for the duration of the run (e.g. :9100 or 127.0.0.1:0; empty disables)")
	flag.StringVar(&c.tracePath, "trace", "", "write sampled per-op spans, movement provenance, and events as JSONL to this file (empty disables)")
	flag.StringVar(&c.backendN, "backend", "sim", "storage backend: sim (virtual-clock only, the default semantics) or real (every replica is a file on disk; block copies, reads, and deletes do real I/O alongside the simulated control plane)")
	flag.StringVar(&c.backendRoot, "backend-root", "", "tier directory root for -backend real (default: a temp dir, removed at exit; an explicit root is kept)")
	flag.StringVar(&c.backendOut, "backend-out", "BENCH_backend.json", "calibration report path for -backend real: measured per-tier wall latencies and MB/s next to the simulator's media profiles (empty disables)")
	flag.BoolVar(&c.backendSync, "backend-sync", false, "fsync every real-backend write (durability-realistic latencies; much slower)")
	flag.Parse()
	c.muteFrac = 1 - c.readFrac - c.statFrac
	if c.muteFrac < 0 {
		fmt.Fprintln(os.Stderr, "octoload: readfrac + statfrac exceed 1")
		os.Exit(2)
	}
	if c.zipfS <= 1 {
		fmt.Fprintln(os.Stderr, "octoload: -zipf must be > 1 (rand.NewZipf requirement)")
		os.Exit(2)
	}
	if c.files < 2 {
		fmt.Fprintln(os.Stderr, "octoload: -files must be at least 2")
		os.Exit(2)
	}
	if c.clients < 1 {
		fmt.Fprintln(os.Stderr, "octoload: -clients must be at least 1")
		os.Exit(2)
	}
	if c.shards < 1 {
		fmt.Fprintln(os.Stderr, "octoload: -shards must be at least 1")
		os.Exit(2)
	}
	if c.dataplane != "none" && c.dataplane != "contended" {
		fmt.Fprintln(os.Stderr, "octoload: -dataplane must be none or contended")
		os.Exit(2)
	}
	if c.tenants < 0 {
		fmt.Fprintln(os.Stderr, "octoload: -tenants must be non-negative")
		os.Exit(2)
	}
	if c.tenants >= 2 && c.dataplane != "contended" {
		// Tenant weights only mean something on the shared plane; a tagged
		// run without it would silently measure nothing.
		fmt.Fprintln(os.Stderr, "octoload: -tenants requires -dataplane contended")
		os.Exit(2)
	}
	if c.readSLO > 0 && c.tenants < 2 {
		fmt.Fprintln(os.Stderr, "octoload: -read-slo requires -tenants >= 2")
		os.Exit(2)
	}
	if c.tenants >= 2 {
		// Tenant i+1 gets weight N-i: tenant 1 is the protected heavyweight
		// (the CI victim gate watches its p99), the last tenant the
		// best-effort flood.
		for i := 0; i < c.tenants; i++ {
			tc := server.TenantConfig{ID: storage.TenantID(i + 1), Weight: float64(c.tenants - i)}
			if i == 0 {
				tc.ReadSLO = c.readSLO
			}
			c.tenantCfg = append(c.tenantCfg, tc)
		}
	}
	if c.arrival != "closed" && c.arrival != "open" {
		fmt.Fprintln(os.Stderr, "octoload: -arrival must be closed or open")
		os.Exit(2)
	}
	if c.arrival == "open" {
		if c.rate <= 0 {
			fmt.Fprintln(os.Stderr, "octoload: -arrival open requires -rate > 0")
			os.Exit(2)
		}
		if c.timeScale <= 0 {
			// Open-loop ops carry virtual stamps derived from the service
			// clock; replay mode (timescale 0) has no live clock to stamp from.
			fmt.Fprintln(os.Stderr, "octoload: -arrival open requires -timescale > 0")
			os.Exit(2)
		}
		if c.window == 0 {
			c.window = time.Second
		}
	}
	if c.fileSzMB < 1 {
		fmt.Fprintln(os.Stderr, "octoload: -filesize must be at least 1")
		os.Exit(2)
	}
	if c.scenarioN != "" && c.shards != 1 {
		// Scenario perturbations mutate one replay's engine/fs; the sharded
		// core would need the fan-out churn API instead. Keep the
		// composition single-shard until scenarios learn to shard.
		fmt.Fprintln(os.Stderr, "octoload: -scenario requires -shards 1")
		os.Exit(2)
	}
	if c.hotdir < 0 || c.hotdir >= 1 {
		fmt.Fprintln(os.Stderr, "octoload: -hotdir must be in [0, 1)")
		os.Exit(2)
	}
	if c.hotdir > 0 && c.arrival != "closed" {
		// The open-loop schedule generator has no hot-subtree branch; fail
		// loudly rather than silently measure an unskewed run.
		fmt.Fprintln(os.Stderr, "octoload: -hotdir requires -arrival closed")
		os.Exit(2)
	}
	if c.hotdir > 0 && c.scenarioN != "" {
		fmt.Fprintln(os.Stderr, "octoload: -hotdir composes with the generated population, not -scenario")
		os.Exit(2)
	}
	if c.rebalance && c.shards < 2 {
		fmt.Fprintln(os.Stderr, "octoload: -rebalance requires -shards >= 2")
		os.Exit(2)
	}
	if c.backendN != "sim" && c.backendN != "real" {
		fmt.Fprintln(os.Stderr, "octoload: -backend must be sim or real")
		os.Exit(2)
	}
	return c
}

// hotPopulation stages the hot subtree for -hotdir: directories under /hot
// chosen (by probing the exported routing hash) so every one of them lands
// on the SAME shard under static routing — the layout that pins one shard
// loop while the others idle. The dirs are individually migratable, so the
// rebalancer can drain the hot shard one subtree at a time. It returns the
// staged specs and the dir list: the load phase concentrates both reads and
// creates in these dirs, because a hot subtree in a real cluster is an
// active job's working set — it takes writes, not just reads.
func hotPopulation(c config) ([]workload.FileSpec, []string) {
	if c.hotdir <= 0 {
		return nil, nil
	}
	const hotDirs = 8
	perDir := c.files / (4 * hotDirs)
	if perDir < 4 {
		perDir = 4
	}
	target := -1
	var specs []workload.FileSpec
	var dirs []string
	for i := 0; len(dirs) < hotDirs && i < 10000; i++ {
		dir := fmt.Sprintf("/hot/d%03d", i)
		if target == -1 {
			target = server.RouteShard(dir, c.shards)
		}
		if server.RouteShard(dir, c.shards) != target {
			continue
		}
		for f := 0; f < perDir; f++ {
			specs = append(specs, workload.FileSpec{
				Path: fmt.Sprintf("%s/f%04d", dir, f),
				Size: 8 * storage.MB,
			})
		}
		dirs = append(dirs, dir)
	}
	return specs, dirs
}

// population stages file specs from the workload generators: the profile's
// heavy-tailed bin distribution supplies realistic path/size shapes without
// re-inventing a generator here.
func population(c config) []workload.FileSpec {
	var p workload.Profile
	switch c.workloadN {
	case "fb", "FB":
		p = workload.FB()
	case "cmu", "CMU":
		p = workload.CMU()
	case "fixed":
		// Uniform fixed-size files, generated locally: the bin-profile
		// generators walk heavy-tailed job shapes and are needlessly slow at
		// million-file scale when all the smoke test needs is "N files exist".
		files := make([]workload.FileSpec, c.files)
		for i := range files {
			files[i] = workload.FileSpec{
				Path: fmt.Sprintf("/load/d%04d/f%07d", i/1024, i),
				Size: c.fileSzMB * storage.MB,
			}
		}
		return files
	default:
		fmt.Fprintf(os.Stderr, "octoload: unknown workload %q\n", c.workloadN)
		os.Exit(2)
	}
	p.NumJobs = c.files
	// Cap at bin D so single files fit the load cluster's SSD tier.
	p = workload.CapProfile(p, workload.BinD)
	return workload.Generate(p, c.seed).Files
}

func workerSpec(memCapMB, ssdCapMB, hddCapMB int64) storage.NodeSpec {
	return storage.NodeSpec{
		{Media: storage.Memory, Capacity: memCapMB * storage.MB, ReadBW: 4000e6, WriteBW: 3000e6, Count: 1},
		{Media: storage.SSD, Capacity: ssdCapMB * storage.MB, ReadBW: 500e6, WriteBW: 400e6, Count: 1},
		{Media: storage.HDD, Capacity: hddCapMB * storage.MB, ReadBW: 160e6, WriteBW: 140e6, Count: 2},
	}
}

// report is the BENCH_serve.json schema.
type report struct {
	Config         map[string]any `json:"config"`
	ElapsedSeconds float64        `json:"elapsed_seconds"`
	Ops            int64          `json:"ops"`
	OpsPerSec      float64        `json:"ops_per_sec"`
	Access         latencyBlock   `json:"access"`
	Mutate         latencyBlock   `json:"mutate"`
	// Read is the tier-real virtual read latency across all tiers (device
	// queueing + base + transfer from the data plane); zero counts with
	// -dataplane none. ReadTiers breaks it down per serving tier.
	Read      latencyBlock       `json:"read"`
	ReadTiers []tierLatencyBlock `json:"read_tiers,omitempty"`
	// ReadTenants breaks the tier-real read latency down per tenant
	// (present only on -tenants runs); the CI victim gate watches the
	// lowest-id (heaviest-weight) tenant's p99.
	ReadTenants []tenantLatencyBlock `json:"read_tenants,omitempty"`
	// Open and TimeSeries are present only on -arrival open runs (and
	// TimeSeries on closed runs with an explicit -window): the closed-loop
	// default schema stays exactly as it was.
	Open       *openBlock        `json:"open,omitempty"`
	TimeSeries *timeSeriesBlock  `json:"timeseries,omitempty"`
	SLO        *sloReport        `json:"slo,omitempty"`
	Plane      []planeTierReport `json:"plane,omitempty"`
	Serve      server.ServeStats `json:"serve"`
	// Shards and ImbalanceRatio appear only on -shards > 1 runs: per-shard
	// serving counters and max/mean of per-shard total ops — the skew signal
	// the rebalancer exists to flatten. Rebalance appears only on -rebalance
	// runs. benchgate treats their absence as a pre-rebalancing baseline.
	Shards         []shardReport          `json:"shard_stats,omitempty"`
	ImbalanceRatio float64                `json:"imbalance_ratio,omitempty"`
	Rebalance      *server.RebalanceStats `json:"rebalance,omitempty"`
	Executor       []tierReport           `json:"executor"`
	Quota          server.QuotaStats      `json:"quota"`
	Violations     []string               `json:"violations"`
}

type shardReport struct {
	Shard     int     `json:"shard"`
	Ops       int64   `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Accesses  int64   `json:"accesses"`
	Creates   int64   `json:"creates"`
	Deletes   int64   `json:"deletes"`
}

// shardOps is the per-shard serving volume the imbalance ratio is computed
// over: every namespace op the shard loop executed.
func shardOps(st server.ServeStats) int64 {
	return st.Accesses + st.Creates + st.Deletes + st.Stats + st.Lists
}

type latencyBlock struct {
	Count int64   `json:"count"`
	P50us float64 `json:"p50_us"`
	P99us float64 `json:"p99_us"`
}

type tierLatencyBlock struct {
	Tier string `json:"tier"`
	latencyBlock
}

type tenantLatencyBlock struct {
	Tenant int     `json:"tenant"`
	Weight float64 `json:"weight"`
	latencyBlock
}

// openBlock reports the open-loop arrival process: how faithfully the
// dispatcher hit the schedule and what latency looks like when measured
// from the *intended* arrival time rather than the dispatch time — the
// coordinated-omission-corrected numbers a closed loop cannot produce.
type openBlock struct {
	RateOpsPerSec float64 `json:"rate_ops_per_sec"`
	Scheduled     int64   `json:"scheduled"`
	Dispatched    int64   `json:"dispatched"`
	Completed     int64   `json:"completed"`
	// Drained counts ops that completed after the deadline (the backlog the
	// drain phase worked off); Abandoned counts queued ops discarded when
	// the -drain budget ran out.
	Drained   int64 `json:"drained"`
	Abandoned int64 `json:"abandoned"`
	// LateDispatch counts ops handed to a worker more than 1ms past their
	// intended arrival; BacklogPeak is the queue high-water mark.
	LateDispatch int64 `json:"late_dispatch"`
	BacklogPeak  int64 `json:"backlog_peak"`
	// Lateness is dequeue-time minus intended arrival; Access/Mutate are
	// completion minus intended arrival (service time plus queueing delay).
	Lateness latencyBlock `json:"lateness"`
	Access   latencyBlock `json:"access"`
	Mutate   latencyBlock `json:"mutate"`
}

type timeSeriesBlock struct {
	WindowSeconds float64         `json:"window_seconds"`
	PeakOpsPerSec float64         `json:"peak_ops_per_sec"`
	Points        []metrics.Point `json:"points"`
}

type sloReport struct {
	Checks   int64 `json:"checks"`
	Breaches int64 `json:"breaches"`
	Defers   int64 `json:"defers"`
}

type planeTierReport struct {
	Tier string `json:"tier"`
	storage.TierPlaneStats
}

type tierReport struct {
	Tier string `json:"tier"`
	server.TierMoveStats
}

func toLatencyBlock(h *server.Histogram) latencyBlock {
	return latencyBlock{
		Count: h.Count(),
		P50us: float64(h.Quantile(0.50).Nanoseconds()) / 1e3,
		P99us: float64(h.Quantile(0.99).Nanoseconds()) / 1e3,
	}
}

// Open-loop machinery. The schedule is precomputed before the load phase —
// virtual arrival times, op kinds, and targets are all decided by the seeded
// rng up front, so the op sequence is deterministic for a given seed and the
// dispatcher's only job at runtime is to fire each op at its wall time.
type openOp struct {
	offset time.Duration // intended arrival, relative to load start
	kind   uint8
	seq    int32 // schedule index (tenant assignment)
	path   string
	size   int64
}

const (
	opAccess = iota
	opStat
	opCreate
	opDelete
)

// buildOpenSchedule draws Poisson arrivals (exponential inter-arrival times
// at -rate) over the run duration and pre-assigns each arrival an op from
// the same mix the closed loop uses. Deletes target earlier scheduled
// creates, mirroring the closed loop's own-files-only delete discipline.
func buildOpenSchedule(c config, paths []string) []openOp {
	rng := rand.New(rand.NewSource(c.seed * 7717))
	zipf := rand.NewZipf(rng, c.zipfS, 1, uint64(len(paths)-1))
	mean := float64(time.Second) / c.rate
	var schedule []openOp
	var own []string
	scratch := 0
	var at time.Duration
	for {
		at += time.Duration(rng.ExpFloat64() * mean)
		if at >= c.dur {
			return schedule
		}
		op := openOp{offset: at, seq: int32(len(schedule))}
		switch r := rng.Float64(); {
		case r < c.readFrac:
			op.kind, op.path = opAccess, paths[zipf.Uint64()]
		case r < c.readFrac+c.statFrac:
			op.kind, op.path = opStat, paths[rng.Intn(len(paths))]
		case rng.Float64() < 0.5 || len(own) == 0:
			op.kind = opCreate
			op.path = fmt.Sprintf("/scratch/open/f%07d", scratch)
			scratch++
			op.size = (4 + rng.Int63n(60)) * storage.MB
			own = append(own, op.path)
		default:
			op.kind = opDelete
			op.path = own[len(own)-1]
			own = own[:len(own)-1]
		}
		schedule = append(schedule, op)
	}
}

// runOpen drives the precomputed schedule: a dispatcher enqueues each op at
// its intended wall time (never blocking on completions — the queue holds
// the whole schedule), c.clients workers execute them, and latency is
// measured from the intended arrival so queueing delay under overload shows
// up in the histograms instead of silently stretching the arrival process.
func runOpen(c config, svc server.Service, tenantOf func(int) storage.TenantID, schedule []openOp, ops *atomic.Int64) (*openBlock, time.Duration) {
	work := make(chan openOp, len(schedule)+1)
	var completed, drained, abandoned, late atomic.Int64
	var backlogPeak int64 // dispatcher-only
	var abandon atomic.Bool
	var accessHist, mutateHist, latenessHist server.Histogram

	wallBase := time.Now()
	virtBase := svc.Clock()
	deadline := wallBase.Add(c.dur)

	var wg sync.WaitGroup
	for w := 0; w < c.clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for op := range work {
				if abandon.Load() {
					abandoned.Add(1)
					continue
				}
				intended := wallBase.Add(op.offset)
				if lateness := time.Since(intended); lateness > 0 {
					latenessHist.Observe(lateness)
					if lateness > time.Millisecond {
						late.Add(1)
					}
				} else {
					latenessHist.Observe(0) // clamped to the smallest bucket
				}
				// The virtual stamp tracks the intended arrival, not the
				// dispatch: the policy layer sees the arrival process even
				// when the dispatcher runs behind.
				virt := virtBase.Add(time.Duration(float64(op.offset) * c.timeScale))
				tid := tenantOf(int(op.seq))
				switch op.kind {
				case opAccess:
					if tid != storage.DefaultTenant {
						svc.AccessAtAs(op.path, virt, tid)
					} else {
						svc.AccessAt(op.path, virt)
					}
				case opStat:
					svc.Stat(op.path)
				case opCreate:
					if tid != storage.DefaultTenant {
						<-svc.CreateAtAs(op.path, op.size, virt, tid)
					} else {
						<-svc.CreateAt(op.path, op.size, virt)
					}
				case opDelete:
					<-svc.DeleteAt(op.path, virt) // busy/not-found are expected outcomes
				}
				d := time.Since(intended)
				if op.kind == opAccess || op.kind == opStat {
					accessHist.Observe(d)
				} else {
					mutateHist.Observe(d)
				}
				ops.Add(1)
				completed.Add(1)
				if time.Now().After(deadline) {
					drained.Add(1)
				}
			}
		}()
	}

	var dispatched int64
	for _, op := range schedule {
		if d := time.Until(wallBase.Add(op.offset)); d > 0 {
			time.Sleep(d)
		}
		work <- op // never blocks: capacity covers the whole schedule
		dispatched++
		if q := int64(len(work)); q > backlogPeak {
			backlogPeak = q
		}
	}
	close(work)

	// Drain: give the backlog c.drain to flush, then discard what's left.
	// Workers check the abandon flag per op, so after the timeout the queue
	// empties at memory speed and wg.Wait is bounded by one in-flight op per
	// worker.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(c.drain):
		abandon.Store(true)
		<-done
	}
	elapsed := time.Since(wallBase)

	return &openBlock{
		RateOpsPerSec: c.rate,
		Scheduled:     int64(len(schedule)),
		Dispatched:    dispatched,
		Completed:     completed.Load(),
		Drained:       drained.Load(),
		Abandoned:     abandoned.Load(),
		LateDispatch:  late.Load(),
		BacklogPeak:   backlogPeak,
		Lateness:      toLatencyBlock(&latenessHist),
		Access:        toLatencyBlock(&accessHist),
		Mutate:        toLatencyBlock(&mutateHist),
	}, elapsed
}

// startSampler runs the time-series collector on a ticker: every window it
// snapshots the cumulative op counter and the merged read histogram and
// closes a window. The returned stop function halts sampling and hands back
// the collector.
func startSampler(window time.Duration, ops *atomic.Int64, readCounts func() [64]int64) func() *metrics.Collector {
	coll := metrics.NewCollector(time.Now(), metrics.Snapshot{Read: readCounts()})
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(window)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case now := <-t.C:
				coll.Sample(now, metrics.Snapshot{Ops: ops.Load(), Read: readCounts()})
			}
		}
	}()
	return func() *metrics.Collector {
		close(stop)
		<-done
		return coll
	}
}

// system abstracts over the single-writer and sharded serving layers.
// finish shuts the service down and returns the invariant violations: the
// single-writer path verifies through the live core loop then closes, the
// sharded path closes first so Verify sees fully quiescent shards (no
// pacer, reconcile tick, or policy-tick borrow can move capacity between
// per-shard snapshots).
type system struct {
	svc        server.Service
	finish     func() []string
	exec       func() server.ExecutorStats
	stats      func() server.ServeStats
	access     func() *server.Histogram
	mutate     func() *server.Histogram
	readTier   func(storage.Media) *server.Histogram
	tenantRead func(storage.TenantID) *server.Histogram
	slo        func() server.SLOStats
	quota      func() server.QuotaStats
	// shardStats and rebalance are non-nil only on the sharded path: the
	// per-shard serving counters behind the imbalance ratio, and the
	// rebalancer's migration counters.
	shardStats func() []server.ServeStats
	rebalance  func() server.RebalanceStats
}

func buildPolicies(c config, fs *dfs.FileSystem) (*core.Manager, error) {
	ctx := core.NewContext(fs, core.DefaultConfig())
	lcfg := ml.DefaultLearnerConfig()
	lcfg.Seed = c.seed
	down, err := policy.NewDowngrade(c.down, ctx, lcfg)
	if err != nil {
		return nil, err
	}
	up, err := policy.NewUpgrade(c.up, ctx, lcfg)
	if err != nil {
		return nil, err
	}
	return core.NewManager(ctx, down, up), nil
}

func executorConfig(c config) server.ExecutorConfig {
	var rates [3]float64
	for i, r := range c.rateMBps {
		if r > 0 {
			rates[i] = float64(r * storage.MB)
		}
	}
	return server.ExecutorConfig{
		WorkersPerTier: c.moveWorkers,
		QueueDepth:     c.moveQueue,
		BudgetBytes: [3]int64{
			c.budgetMB[0] * storage.MB, c.budgetMB[1] * storage.MB, c.budgetMB[2] * storage.MB,
		},
		RateBytesPerSec: rates,
	}
}

// buildSingle wires the single-writer serving layer, optionally attaching
// to a scenario catalog entry for topology and perturbations.
func buildSingle(c config, clCfg cluster.Config, sc *scenario.Scenario) (*system, func()) {
	engine := sim.NewEngine()
	cl, err := cluster.New(engine, clCfg)
	if err != nil {
		fatal(err)
	}
	fs, err := dfs.New(cl, dfs.Config{Mode: dfs.ModeOctopus, Seed: c.seed, ClientRate: 2000e6})
	if err != nil {
		fatal(err)
	}
	if c.mkBackend != nil {
		fs.SetBackend(c.mkBackend(0))
	}
	mgr, err := buildPolicies(c, fs)
	if err != nil {
		fatal(err)
	}
	mgr.Start()
	srv := server.New(fs, mgr, server.Config{
		TimeScale: c.timeScale,
		Executor:  executorConfig(c),
		Tenants:   c.tenantCfg,
		Obs:       c.hub,
	})
	srv.Start()

	// The perturbation installer: runs on the core loop once the preload
	// finished, so scenario callbacks interleave with serving commands on
	// the engine they expect to own.
	attach := func() {}
	if sc != nil {
		attach = func() {
			srv.Exec(func(fs *dfs.FileSystem) {
				scenario.Attach(*sc, &scenario.Replay{
					System:  scenario.System{Name: c.down + "/" + c.up, Mode: dfs.ModeOctopus, Down: c.down, Up: c.up},
					Opts:    scenario.Options{Seed: c.seed, Fast: true, Workers: c.workers},
					Engine:  fs.Engine(),
					Cluster: fs.Cluster(),
					FS:      fs,
					Manager: mgr,
				})
			})
		}
	}
	return &system{
		svc: srv,
		finish: func() []string {
			var violations []string
			srv.Exec(func(fs *dfs.FileSystem) {
				if err := fs.CheckAccounting(); err != nil {
					violations = append(violations, err.Error())
				}
				if err := fs.CheckInvariants(); err != nil {
					violations = append(violations, err.Error())
				}
				if err := mgr.Context().Index().Audit(); err != nil {
					violations = append(violations, err.Error())
				}
			})
			if v := srv.Executor().Stats().CheckBudgets(); v != "" {
				violations = append(violations, v)
			}
			srv.Close()
			mgr.Stop()
			return violations
		},
		exec:       srv.Executor().Stats,
		stats:      srv.Stats,
		access:     srv.AccessLatency,
		mutate:     srv.MutateLatency,
		readTier:   srv.ReadLatency,
		tenantRead: srv.TenantReadLatency,
		slo:        srv.SLOStats,
		quota:      func() server.QuotaStats { return server.QuotaStats{} },
	}, attach
}

// buildSharded wires the partitioned core: one engine/manager/shard loop
// per namespace shard over quota-sliced cluster views.
func buildSharded(c config, clCfg cluster.Config) *system {
	srv, err := server.NewSharded(server.ShardedConfig{
		Shards:  c.shards,
		Cluster: clCfg,
		DFS:     dfs.Config{Mode: dfs.ModeOctopus, Seed: c.seed, ClientRate: 2000e6},
		Build: func(_ int, fs *dfs.FileSystem) (*core.Manager, error) {
			return buildPolicies(c, fs)
		},
		Quota:     server.QuotaConfig{InitialFraction: c.quotaFrac},
		Rebalance: server.RebalanceConfig{Enabled: c.rebalance},
		Backend:   c.mkBackend,
		Inner: server.Config{
			TimeScale: c.timeScale,
			Executor:  executorConfig(c),
			Tenants:   c.tenantCfg,
			Obs:       c.hub,
		},
	})
	if err != nil {
		fatal(err)
	}
	srv.Start()
	return &system{
		svc: srv,
		finish: func() []string {
			srv.Close()
			return srv.Verify()
		},
		exec:       srv.ExecutorStats,
		stats:      srv.Stats,
		access:     srv.AccessLatency,
		mutate:     srv.MutateLatency,
		readTier:   srv.ReadLatency,
		tenantRead: srv.TenantReadLatency,
		slo:        srv.SLOStats,
		quota:      srv.QuotaStats,
		shardStats: srv.ShardStats,
		rebalance:  srv.RebalanceStats,
	}
}

func main() {
	c := parseFlags()
	partialOut = c.out
	partialCfg = map[string]any{
		"clients": c.clients, "dur": c.dur.String(), "files": c.files,
		"workload": c.workloadN, "scenario": c.scenarioN, "seed": c.seed,
		"shards": c.shards, "dataplane": c.dataplane, "tenants": c.tenants,
		"partial": true,
	}

	// Observability plane: one hub spans every shard's server (metrics carry
	// a shard label). Built before the servers so registration happens inside
	// server.Start; the trace sink is flushed by hub.Close on every exit path.
	var stopObs = func() {}
	if c.obsListen != "" || c.tracePath != "" {
		hcfg := obs.HubConfig{}
		if c.tracePath != "" {
			f, err := os.Create(c.tracePath)
			if err != nil {
				fatal(err)
			}
			hcfg.Trace = f
		}
		c.hub = obs.NewHub(hcfg)
		obsHub = c.hub
		if c.obsListen != "" {
			bound, stop, err := c.hub.ListenAndServe(c.obsListen)
			if err != nil {
				fatal(err)
			}
			stopObs = stop
			fmt.Printf("octoload: obs serving on http://%s/metrics (and /metrics.json, /flight, /debug/pprof)\n", bound)
		}
		// SIGQUIT dumps the flight recorder — the last few thousand spans,
		// movement records, and events — instead of the default stack dump,
		// then exits. `kill -QUIT <pid>` is the hung-run postmortem tool.
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		go func() {
			<-quit
			fmt.Fprintln(os.Stderr, "octoload: SIGQUIT — dumping flight recorder")
			obsHub.DumpFlight(os.Stderr)
			obsHub.Close()
			os.Exit(2)
		}()
	}

	// Resolve the world: either the driver's own cluster and generated
	// population, or a scenario catalog entry's.
	clCfg := cluster.Config{Workers: c.workers, SlotsPerNode: 4, Spec: workerSpec(c.memCapMB, c.ssdCapMB, c.hddCapMB)}
	var files []workload.FileSpec
	var sc *scenario.Scenario
	if c.scenarioN != "" {
		got, err := scenario.Get(c.scenarioN)
		if err != nil {
			fatal(err)
		}
		sc = &got
		opts := scenario.Options{Seed: c.seed, Fast: true, Workers: c.workers}
		clCfg = sc.Cluster(opts)
		files = sc.Trace(opts).Files
		if len(files) < 2 {
			fatal(fmt.Errorf("scenario %s stages %d files; need at least 2", sc.Name, len(files)))
		}
	} else {
		files = population(c)
	}
	// The hot subtree rides on the generated population: its files are staged
	// like any others, but the load phase concentrates -hotdir of the client
	// traffic on them, and their directories all hash to one shard.
	hotStart := len(files)
	hotFiles, hotDirs := hotPopulation(c)
	files = append(files, hotFiles...)

	// Attach the data plane after the topology is resolved: one plane spans
	// every shard's cluster view, so serve reads and movement contend for
	// the physical device channels across shards.
	var plane *storage.ContendedPlane
	if c.dataplane == "contended" {
		plane = storage.NewContendedPlane(storage.PlaneConfig{
			Tenants: server.PlaneTenants(c.tenantCfg),
		})
		clCfg.Plane = plane
		if c.hub != nil {
			// Per-device plane signals as a dynamic collector: the channel set
			// changes under node churn, so membership is resolved per scrape.
			p := plane
			c.hub.Registry().Collector(func(emit obs.Emit) {
				for _, d := range p.DeviceStats() {
					l := obs.Labels{"device": d.ID}
					emit("octo_plane_device_grants_total", l, "counter", float64(d.Grants))
					emit("octo_plane_device_saturated_total", l, "counter", float64(d.Saturated))
					emit("octo_plane_device_avg_queue_ns", l, "gauge", float64(d.AvgQueue.Nanoseconds()))
					emit("octo_plane_device_read_horizon_ns", l, "gauge", float64(d.ReadHorizonNS))
					emit("octo_plane_device_write_horizon_ns", l, "gauge", float64(d.WriteHorizonNS))
				}
			})
		}
	}

	// Physical backend: one Local per shard under a shared root (block ids
	// are per-FileSystem, so shards must not share a directory tree). Opened
	// before the servers so the build paths can attach them. The memory tier
	// lands on tmpfs when the platform has one, so its measured latencies
	// are memory-speed rather than disk-speed.
	var locals []*backend.Local
	var backendRoot string
	cleanupBackend := func() {}
	if c.backendN == "real" {
		backendRoot = c.backendRoot
		var scratch []string // auto-created dirs, removed at exit
		if backendRoot == "" {
			dir, err := os.MkdirTemp("", "octoload-backend-")
			if err != nil {
				fatal(err)
			}
			backendRoot = dir
			scratch = append(scratch, dir)
		}
		memRoot := ""
		if fi, err := os.Stat("/dev/shm"); err == nil && fi.IsDir() {
			if dir, err := os.MkdirTemp("/dev/shm", "octoload-mem-"); err == nil {
				memRoot = dir
				scratch = append(scratch, dir)
			}
		}
		cleanupBackend = func() {
			for _, d := range scratch {
				os.RemoveAll(d)
			}
		}
		locals = make([]*backend.Local, c.shards)
		for i := range locals {
			lcfg := backend.LocalConfig{
				Root:       filepath.Join(backendRoot, fmt.Sprintf("shard%d", i)),
				SyncWrites: c.backendSync,
			}
			if memRoot != "" {
				lcfg.TierDirs[storage.Memory] = filepath.Join(memRoot, fmt.Sprintf("shard%d", i))
			}
			l, err := backend.OpenLocal(lcfg)
			if err != nil {
				cleanupBackend()
				fatal(err)
			}
			locals[i] = l
		}
		c.mkBackend = func(shard int) backend.Backend { return locals[shard] }
		fmt.Printf("octoload: real backend under %s (mem tier: %s)\n",
			backendRoot, locals[0].TierDir(storage.Memory))
	}

	var sys *system
	attach := func() {}
	if c.shards > 1 {
		sys = buildSharded(c, clCfg)
	} else {
		sys, attach = buildSingle(c, clCfg, sc)
	}
	svc := sys.svc

	// Each client carries one tenant identity for the whole run (round-robin
	// across the table); untenanted runs keep the untagged fast path.
	tenantOf := func(cli int) storage.TenantID {
		if len(c.tenantCfg) == 0 {
			return storage.DefaultTenant
		}
		return c.tenantCfg[cli%len(c.tenantCfg)].ID
	}

	// Stage the population through the serving layer.
	paths := make([]string, len(files))
	var wg sync.WaitGroup
	if c.arrival == "open" {
		// Pipelined stamped preload: fire CreateAt and reap completions
		// through a bounded FIFO instead of blocking per create. A blocking
		// create pays one pacer tick of wall latency; at a million files
		// that dominates the run, while the pipeline keeps the core loop fed
		// and completes creates in bulk as virtual time advances.
		type pend struct {
			path string
			ch   <-chan error
		}
		pending := make(chan pend, 1024)
		reaped := make(chan struct{})
		go func() {
			defer close(reaped)
			var errs int
			for p := range pending {
				if err := <-p.ch; err != nil {
					if errs < 5 {
						fmt.Fprintf(os.Stderr, "octoload: preload %s: %v\n", p.path, err)
					}
					errs++
				}
			}
			if errs > 5 {
				fmt.Fprintf(os.Stderr, "octoload: preload: %d errors total\n", errs)
			}
		}()
		for i := range files {
			paths[i] = files[i].Path
			at := svc.Clock()
			tid := tenantOf(i)
			var ch <-chan error
			if tid != storage.DefaultTenant {
				ch = svc.CreateAtAs(files[i].Path, files[i].Size, at, tid)
			} else {
				ch = svc.CreateAt(files[i].Path, files[i].Size, at)
			}
			pending <- pend{path: files[i].Path, ch: ch}
		}
		close(pending)
		<-reaped
	} else {
		for cli := 0; cli < c.clients; cli++ {
			wg.Add(1)
			go func(cli int) {
				defer wg.Done()
				tid := tenantOf(cli)
				for i := cli; i < len(files); i += c.clients {
					paths[i] = files[i].Path
					var err error
					if tid != storage.DefaultTenant {
						err = svc.CreateAs(files[i].Path, files[i].Size, tid)
					} else {
						err = svc.Create(files[i].Path, files[i].Size)
					}
					if err != nil {
						fmt.Fprintf(os.Stderr, "octoload: preload %s: %v\n", files[i].Path, err)
					}
				}
			}(cli)
		}
		wg.Wait()
	}

	// Scenario perturbations start with the load phase, after preload.
	attach()

	// Load phase. The time-series sampler runs alongside either arrival
	// process, windowing the cumulative op counter and the merged read
	// histogram into the over-time curve.
	var ops atomic.Int64
	readCounts := func() [64]int64 {
		var total [64]int64
		for _, m := range storage.AllMedia {
			cts := sys.readTier(m).Counts()
			for i := range total {
				total[i] += cts[i]
			}
		}
		return total
	}
	var stopSampler func() *metrics.Collector
	if c.window > 0 {
		stopSampler = startSampler(c.window, &ops, readCounts)
	}

	var elapsed time.Duration
	var open *openBlock
	if c.arrival == "open" {
		open, elapsed = runOpen(c, svc, tenantOf, buildOpenSchedule(c, paths), &ops)
	} else {
		stop := make(chan struct{})
		var inflight atomic.Int64
		start := time.Now()
		for cli := 0; cli < c.clients; cli++ {
			wg.Add(1)
			go func(cli int) {
				defer wg.Done()
				tid := tenantOf(cli)
				rng := rand.New(rand.NewSource(c.seed*1000 + int64(cli)))
				zipf := rand.NewZipf(rng, c.zipfS, 1, uint64(len(paths)-1))
				// The hot branch draws from its own zipf over the hot subtree;
				// every extra rng call is gated on c.hotdir > 0 so a hotdir-less
				// run replays the exact pre-skew op sequence.
				var hotZipf *rand.Zipf
				if c.hotdir > 0 {
					hotZipf = rand.NewZipf(rng, c.zipfS, 1, uint64(len(paths)-hotStart-1))
				}
				var own []string
				scratch := 0
				for {
					select {
					case <-stop:
						return
					default:
					}
					inflight.Add(1)
					switch r := rng.Float64(); {
					case r < c.readFrac:
						target := -1
						if c.hotdir > 0 && rng.Float64() < c.hotdir {
							target = hotStart + int(hotZipf.Uint64())
						} else {
							target = int(zipf.Uint64())
						}
						if tid != storage.DefaultTenant {
							svc.AccessAs(paths[target], tid)
						} else {
							svc.Access(paths[target])
						}
					case r < c.readFrac+c.statFrac:
						svc.Stat(paths[rng.Intn(len(paths))])
					case rng.Float64() < 0.5 || len(own) == 0:
						var path string
						if c.hotdir > 0 && rng.Float64() < c.hotdir {
							// The active job writes into its own hot subtree; under
							// static routing every one of these creates serializes
							// on the single shard loop the subtree hashes to.
							path = fmt.Sprintf("%s/c%d-f%06d", hotDirs[rng.Intn(len(hotDirs))], cli, scratch)
						} else {
							path = fmt.Sprintf("/scratch/c%d/f%06d", cli, scratch)
						}
						scratch++
						var err error
						if tid != storage.DefaultTenant {
							err = svc.CreateAs(path, (4+rng.Int63n(60))*storage.MB, tid)
						} else {
							err = svc.Create(path, (4+rng.Int63n(60))*storage.MB)
						}
						if err == nil {
							own = append(own, path)
						}
					default:
						path := own[len(own)-1]
						own = own[:len(own)-1]
						svc.Delete(path) // busy under movement is an expected outcome
					}
					inflight.Add(-1)
					ops.Add(1)
				}
			}(cli)
		}
		// Deadline stop with a bounded drain: close the stop channel at the
		// deadline and give the (at most one per client) in-flight ops
		// c.drain to finish. A closed-loop op cannot be interrupted
		// mid-call, so on timeout we warn loudly and keep waiting rather
		// than tear the server down under live clients.
		deadline := time.NewTimer(c.dur)
		<-deadline.C
		close(stop)
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(c.drain):
			fmt.Fprintf(os.Stderr, "octoload: drain exceeded %v with %d ops in flight; waiting\n",
				c.drain, inflight.Load())
			<-done
		}
		elapsed = time.Since(start)
	}

	var ts *timeSeriesBlock
	if stopSampler != nil {
		coll := stopSampler()
		ts = &timeSeriesBlock{
			WindowSeconds: c.window.Seconds(),
			PeakOpsPerSec: coll.PeakOpsPerSec(),
			Points:        coll.Points(),
		}
	}

	svc.Flush()
	violations := sys.finish()
	exStats := sys.exec()
	// Snapshot the histograms once: in sharded mode each accessor merges
	// every per-shard histogram into a fresh allocation.
	accessHist, mutateHist := sys.access(), sys.mutate()
	readAll := &server.Histogram{}
	var readTiers []tierLatencyBlock
	for _, m := range storage.AllMedia {
		h := sys.readTier(m)
		readAll.AddFrom(h)
		readTiers = append(readTiers, tierLatencyBlock{Tier: m.String(), latencyBlock: toLatencyBlock(h)})
	}

	rep := report{
		Config: map[string]any{
			"clients": c.clients, "dur": c.dur.String(), "files": len(files),
			"workload": c.workloadN, "scenario": c.scenarioN, "zipf": c.zipfS,
			"readfrac": c.readFrac, "workers": clCfg.Workers, "down": c.down, "up": c.up,
			"timescale": c.timeScale, "seed": c.seed, "shards": c.shards,
			"move_workers": c.moveWorkers, "move_queue": c.moveQueue,
			"dataplane": c.dataplane, "tenants": c.tenants,
			"read_slo": c.readSLO.String(),
		},
		ElapsedSeconds: elapsed.Seconds(),
		Ops:            ops.Load(),
		OpsPerSec:      float64(ops.Load()) / elapsed.Seconds(),
		Access:         toLatencyBlock(accessHist),
		Mutate:         toLatencyBlock(mutateHist),
		Read:           toLatencyBlock(readAll),
		ReadTiers:      readTiers,
		Open:           open,
		TimeSeries:     ts,
		Serve:          sys.stats(),
		Quota:          sys.quota(),
		Violations:     violations,
	}
	if c.arrival == "open" {
		// New config keys only appear on open runs: the closed-loop default
		// report keeps the PR 6 schema byte-for-byte.
		rep.Config["arrival"] = c.arrival
		rep.Config["rate"] = c.rate
		rep.Config["window"] = c.window.String()
	}
	if c.hotdir > 0 || c.rebalance {
		// Skew-run keys, conditional like the open-loop ones: pre-skew
		// reports keep their schema byte-for-byte.
		rep.Config["hotdir"] = c.hotdir
		rep.Config["rebalance"] = c.rebalance
	}
	if c.backendN == "real" {
		// Backend keys only appear on real-backend runs: sim reports keep
		// their schema byte-for-byte.
		rep.Config["backend"] = c.backendN
		rep.Config["backend_sync"] = c.backendSync
	}
	if sys.shardStats != nil {
		perShard := sys.shardStats()
		var maxOps, total int64
		for i, st := range perShard {
			o := shardOps(st)
			rep.Shards = append(rep.Shards, shardReport{
				Shard: i, Ops: o, OpsPerSec: float64(o) / elapsed.Seconds(),
				Accesses: st.Accesses, Creates: st.Creates, Deletes: st.Deletes,
			})
			total += o
			if o > maxOps {
				maxOps = o
			}
		}
		if total > 0 {
			rep.ImbalanceRatio = float64(maxOps) * float64(len(perShard)) / float64(total)
		}
		if c.rebalance {
			rst := sys.rebalance()
			rep.Rebalance = &rst
		}
	}
	for _, m := range storage.AllMedia {
		rep.Executor = append(rep.Executor, tierReport{Tier: m.String(), TierMoveStats: exStats.PerTier[m]})
	}
	for _, tc := range c.tenantCfg {
		if h := sys.tenantRead(tc.ID); h != nil {
			rep.ReadTenants = append(rep.ReadTenants, tenantLatencyBlock{
				Tenant: int(tc.ID), Weight: tc.Weight, latencyBlock: toLatencyBlock(h),
			})
		}
	}
	if c.readSLO > 0 {
		st := sys.slo()
		rep.SLO = &sloReport{Checks: st.Checks, Breaches: st.Breaches, Defers: exStats.Defers}
	}
	if plane != nil {
		pst := plane.Stats()
		for _, m := range storage.AllMedia {
			rep.Plane = append(rep.Plane, planeTierReport{Tier: m.String(), TierPlaneStats: pst.PerTier[m]})
		}
	}

	fmt.Printf("octoload: %d clients, %d files, %d shard(s), %.1fs wall (%.0fx virtual)\n",
		c.clients, len(files), c.shards, elapsed.Seconds(), c.timeScale)
	if c.scenarioN != "" {
		fmt.Printf("  scenario   %s (perturbations composed with client load)\n", c.scenarioN)
	}
	fmt.Printf("  ops        %d (%.0f ops/s)\n", rep.Ops, rep.OpsPerSec)
	if open != nil {
		fmt.Printf("  open       %.0f ops/s target: %d scheduled, %d completed (%d drained, %d abandoned)\n",
			open.RateOpsPerSec, open.Scheduled, open.Completed, open.Drained, open.Abandoned)
		fmt.Printf("  lateness   p50 %.1fµs  p99 %.1fµs  (%d late dispatches, backlog peak %d)\n",
			open.Lateness.P50us, open.Lateness.P99us, open.LateDispatch, open.BacklogPeak)
		fmt.Printf("  open acc   p50 %.1fµs  p99 %.1fµs  (completion − intended arrival)\n",
			open.Access.P50us, open.Access.P99us)
		fmt.Printf("  open mut   p50 %.1fµs  p99 %.1fµs\n", open.Mutate.P50us, open.Mutate.P99us)
	}
	if ts != nil {
		fmt.Printf("  timeseries %d windows of %.1fs, peak %.0f ops/s\n",
			len(ts.Points), ts.WindowSeconds, ts.PeakOpsPerSec)
	}
	fmt.Printf("  access     p50 %.1fµs  p99 %.1fµs  (%d samples)\n", rep.Access.P50us, rep.Access.P99us, rep.Access.Count)
	fmt.Printf("  mutate     p50 %.1fµs  p99 %.1fµs  (%d samples)\n", rep.Mutate.P50us, rep.Mutate.P99us, rep.Mutate.Count)
	if c.dataplane != "none" {
		fmt.Printf("  read       p50 %.1fµs  p99 %.1fµs  (%d samples, tier-real virtual time)\n",
			rep.Read.P50us, rep.Read.P99us, rep.Read.Count)
		for _, tl := range rep.ReadTiers {
			fmt.Printf("  read %s   p50 %.1fµs  p99 %.1fµs  (%d samples)\n", tl.Tier, tl.P50us, tl.P99us, tl.Count)
		}
		for _, pt := range rep.Plane {
			fmt.Printf("  plane %s  %d reqs (%d move)  %dMB  contended %d  saturated %d  avg queue %v\n",
				pt.Tier, pt.Requests, pt.MoveRequests, pt.Bytes/storage.MB, pt.Contended, pt.Saturated, pt.AvgQueue)
		}
		for _, tl := range rep.ReadTenants {
			fmt.Printf("  tenant %d   p50 %.1fµs  p99 %.1fµs  (%d samples, weight %.0f)\n",
				tl.Tenant, tl.P50us, tl.P99us, tl.Count, tl.Weight)
		}
		if rep.SLO != nil {
			fmt.Printf("  slo        %d checks, %d breaches, %d movement defers\n",
				rep.SLO.Checks, rep.SLO.Breaches, rep.SLO.Defers)
		}
	}
	if len(rep.Shards) > 0 {
		fmt.Printf("  shards     imbalance %.2fx (max/mean ops):", rep.ImbalanceRatio)
		for _, sr := range rep.Shards {
			fmt.Printf("  s%d %.0f/s", sr.Shard, sr.OpsPerSec)
		}
		fmt.Println()
	}
	if rep.Rebalance != nil {
		r := rep.Rebalance
		fmt.Printf("  rebalance  %d started, %d completed, %d aborted, %d flips, %d files (%dMB) moved, %d routes, spread %.2fx\n",
			r.Started, r.Completed, r.Aborted, r.EpochFlips, r.FilesMoved, r.BytesMoved/storage.MB, r.Routes, r.Spread)
	}
	st := rep.Serve
	fmt.Printf("  served     MEM %d  SSD %d  HDD %d  (miss %d, no-replica %d)\n",
		st.ServedByTier[0], st.ServedByTier[1], st.ServedByTier[2], st.AccessMisses, st.NoReplica)
	fmt.Printf("  ring       %d events in %d batches, %d dropped\n", st.EventsDrained, st.DrainBatches, st.EventsDropped)
	for _, tr := range rep.Executor {
		fmt.Printf("  moves %s  sched %d done %d fail %d shed %d  admitted %dMB (bucket %dMB @ %.0fMB/s)\n",
			tr.Tier, tr.Scheduled, tr.Completed, tr.Failed, tr.Shed,
			tr.AdmittedBytes/storage.MB, tr.BudgetBytes/storage.MB, tr.RateBytesPerSec/float64(storage.MB))
	}
	if q := rep.Quota; q.Borrows > 0 || q.ReturnedBytes > 0 {
		fmt.Printf("  quota      %d borrows (%dMB), %d failures, %dMB returned\n",
			q.Borrows, q.BorrowedBytes/storage.MB, q.BorrowFailures, q.ReturnedBytes/storage.MB)
	}
	if len(violations) > 0 {
		fmt.Printf("  VIOLATIONS (%d):\n", len(violations))
		for _, v := range violations {
			fmt.Println("   ", v)
		}
		if c.hub != nil {
			if c.shards == 1 {
				// The sharded Verify already emitted these into the hub.
				for _, v := range violations {
					c.hub.EmitEvent(&obs.Event{What: "invariant-violation", Detail: v})
				}
			}
			if f, err := os.Create(flightDumpPath); err == nil {
				c.hub.DumpFlight(f)
				f.Close()
				fmt.Printf("  flight recorder dumped to %s\n", flightDumpPath)
			}
		}
	} else {
		fmt.Println("  invariants OK (accounting, deep structural, index audit, ledger, budgets)")
	}

	if c.out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(c.out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("  report written to %s\n", c.out)
	}
	if c.backendN == "real" {
		// Calibration report: measured wall latencies and throughput per
		// (tier, op), side by side with the simulator's media profiles, so
		// the two are directly diffable.
		all := make([]backend.Stats, len(locals))
		for i, l := range locals {
			all[i] = l.Stats()
		}
		cal := backend.Calibrate("real", backendRoot, c.backendSync, backend.MergeStats(all...))
		for _, tc := range cal.Tiers {
			fmt.Printf("  backend %s  write %d ops %dMB mean %.0fµs (%.0f MB/s)  read %d ops mean %.0fµs (%.0f MB/s)  errors %d\n",
				tc.Tier, tc.Write.Count, tc.Write.Bytes/storage.MB, tc.Write.MeanUS, tc.Write.MBps,
				tc.Read.Count, tc.Read.MeanUS, tc.Read.MBps,
				tc.Write.Errors+tc.Read.Errors+tc.Delete.Errors)
		}
		if c.backendOut != "" {
			data, err := json.MarshalIndent(cal, "", "  ")
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(c.backendOut, append(data, '\n'), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("  calibration written to %s\n", c.backendOut)
		}
	}
	cleanupBackend()
	if c.memProfile != "" {
		// The KeepAlives below hold the served world live across the
		// profile write: without them the GC (liveness-based, not
		// scope-based) would have collected the namespace already and the
		// inuse profile would show an empty heap instead of the retained
		// per-file footprint.
		runtime.GC()
		f, err := os.Create(c.memProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
		runtime.KeepAlive(sys)
		runtime.KeepAlive(paths)
		fmt.Printf("  heap profile written to %s\n", c.memProfile)
	}
	if c.hub != nil {
		if t := c.hub.Tracer(); t != nil {
			fmt.Printf("  trace      %d records written to %s\n", t.Records(), c.tracePath)
		}
		stopObs()
		c.hub.Close()
	}
	if len(violations) > 0 {
		os.Exit(1)
	}
}

// flightDumpPath is where the flight recorder lands when the run ends with
// invariant violations (CI uploads it as an artifact).
const flightDumpPath = "octoload-flight.jsonl"

// Partial-report state for fatal(): populated right after flag parsing so a
// mid-run abort still leaves a machine-readable report at -out with a
// violations block, instead of only a stderr line and a stale file from the
// previous run.
var (
	partialOut string
	partialCfg map[string]any
	obsHub     *obs.Hub
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "octoload:", err)
	if partialOut != "" {
		rep := report{
			Config:     partialCfg,
			Violations: []string{"fatal: " + err.Error()},
		}
		if data, merr := json.MarshalIndent(rep, "", "  "); merr == nil {
			if werr := os.WriteFile(partialOut, append(data, '\n'), 0o644); werr == nil {
				fmt.Fprintf(os.Stderr, "octoload: partial report written to %s\n", partialOut)
			}
		}
	}
	obsHub.Close() // nil-safe: flushes the trace sink if one was open
	os.Exit(1)
}
