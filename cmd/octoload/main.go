// Command octoload is the closed-loop traffic driver for the concurrent
// serving layer: it stands up a managed tiered DFS behind internal/server,
// stages a file population drawn from the internal/workload generators,
// then hammers the service with N concurrent clients issuing a configurable
// mix of zipf-skewed accesses, stats, creates, and deletes while the
// movement executor shuffles replicas between tiers underneath.
//
// With -shards > 1 the service is the sharded simulation core: one engine,
// manager, candidate index, and shard loop per namespace shard, with
// per-shard capacity quotas reconciled against the global tier ledger
// through the two-phase borrow protocol. With -scenario the driver attaches
// to a scenario catalog entry instead of building its own world: the
// scenario supplies the cluster topology and file population, and its
// perturbations (ballast floods, node churn, client surges) run against the
// served system while the clients drive load — surge traffic and
// perturbations compose into one BENCH_serve report.
//
// At the end it fences the server, runs the full invariant suite
// (capacity accounting, deep structural checks, candidate-index audit,
// ledger conservation, movement budgets), and reports ops/s plus p50/p99
// latency histograms, written as JSON to -out (BENCH_serve.json by default)
// for CI trend tracking. The process exits non-zero if any invariant was
// violated — a load run is a correctness artifact, not just a throughput
// number.
//
// Examples:
//
//	octoload                                   # 8 clients, 5s, FB-shaped files
//	octoload -shards 4                         # sharded core, 4 shard loops
//	octoload -scenario node-churn -dur 8s      # compose load with churn
//	octoload -clients 32 -dur 10s -zipf 1.3
//	octoload -down xgb -up xgb -timescale 300
//	octoload -budget-mem 128 -move-queue 16    # stress shedding
//	octoload -shards 4 -tenants 2 -dataplane contended   # weighted-fair QoS
//	octoload -tenants 2 -dataplane contended -read-slo 40ms  # SLO admission control
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"octostore/internal/cluster"
	"octostore/internal/core"
	"octostore/internal/dfs"
	"octostore/internal/ml"
	"octostore/internal/policy"
	"octostore/internal/scenario"
	"octostore/internal/server"
	"octostore/internal/sim"
	"octostore/internal/storage"
	"octostore/internal/workload"
)

type config struct {
	clients   int
	dur       time.Duration
	files     int
	workloadN string
	scenarioN string
	zipfS     float64
	readFrac  float64
	statFrac  float64
	muteFrac  float64 // create+delete combined; split evenly
	workers   int
	memCapMB  int64
	ssdCapMB  int64
	down, up  string
	timeScale float64
	seed      int64
	out       string

	shards      int
	quotaFrac   float64
	moveWorkers int
	moveQueue   int
	budgetMB    [3]int64
	rateMBps    [3]int64
	dataplane   string

	tenants   int
	readSLO   time.Duration
	tenantCfg []server.TenantConfig
}

func parseFlags() config {
	var c config
	flag.IntVar(&c.clients, "clients", 8, "concurrent closed-loop clients")
	flag.DurationVar(&c.dur, "dur", 5*time.Second, "load duration (wall clock)")
	flag.IntVar(&c.files, "files", 150, "approximate staged file population (scales the workload generator)")
	flag.StringVar(&c.workloadN, "workload", "fb", "file population shape: fb or cmu (internal/workload profiles)")
	flag.StringVar(&c.scenarioN, "scenario", "", "attach to a scenario catalog entry: its cluster, population, and perturbations compose with the client load (see internal/scenario)")
	flag.Float64Var(&c.zipfS, "zipf", 1.1, "zipf skew of the access key distribution (>1)")
	flag.Float64Var(&c.readFrac, "readfrac", 0.82, "fraction of ops that are accesses")
	flag.Float64Var(&c.statFrac, "statfrac", 0.10, "fraction of ops that are stats/lists")
	flag.IntVar(&c.workers, "workers", 5, "cluster worker count")
	flag.Int64Var(&c.memCapMB, "memcap", 256, "memory-tier capacity per worker in MB (small keeps movement busy)")
	flag.Int64Var(&c.ssdCapMB, "ssdcap", 16*1024, "SSD-tier capacity per worker in MB (small forces HDD-resident files, so all three tiers serve)")
	flag.StringVar(&c.down, "down", "lru", "downgrade policy")
	flag.StringVar(&c.up, "up", "osa", "upgrade policy")
	flag.Float64Var(&c.timeScale, "timescale", 120, "virtual seconds advanced per wall second")
	flag.Int64Var(&c.seed, "seed", 1, "population/placement/client seed")
	flag.StringVar(&c.out, "out", "BENCH_serve.json", "JSON report path (empty disables)")
	flag.IntVar(&c.shards, "shards", 1, "namespace shards (each with its own engine, manager, and shard loop)")
	flag.Float64Var(&c.quotaFrac, "quota-frac", 0.5, "fraction of tier capacity granted to shard quotas up front (rest is borrowable pool)")
	flag.IntVar(&c.moveWorkers, "move-workers", 2, "movement executor slots per destination tier")
	flag.IntVar(&c.moveQueue, "move-queue", 64, "movement executor queue depth per tier")
	flag.Int64Var(&c.budgetMB[0], "budget-mem", 512, "memory-tier movement token bucket (MB, burst)")
	flag.Int64Var(&c.budgetMB[1], "budget-ssd", 1024, "SSD-tier movement token bucket (MB, burst)")
	flag.Int64Var(&c.budgetMB[2], "budget-hdd", 2048, "HDD-tier movement token bucket (MB, burst)")
	flag.Int64Var(&c.rateMBps[0], "rate-mem", 0, "memory-tier movement refill rate (MB per virtual second, 0 = default)")
	flag.Int64Var(&c.rateMBps[1], "rate-ssd", 0, "SSD-tier movement refill rate (MB per virtual second, 0 = default)")
	flag.Int64Var(&c.rateMBps[2], "rate-hdd", 0, "HDD-tier movement refill rate (MB per virtual second, 0 = default)")
	flag.StringVar(&c.dataplane, "dataplane", "none", "data-plane profile: none (free reads, uncontended movement — the pre-data-plane semantics) or contended (per-physical-device service time + shared bandwidth arbitration across shards)")
	flag.IntVar(&c.tenants, "tenants", 0, "tenant count: >= 2 tags client traffic round-robin (tenant 1 heaviest) and schedules the contended plane weighted-fair; requires -dataplane contended")
	flag.DurationVar(&c.readSLO, "read-slo", 0, "tenant 1's read p99 target (tier-real virtual latency); breaches defer background movement; requires -tenants >= 2")
	flag.Parse()
	c.muteFrac = 1 - c.readFrac - c.statFrac
	if c.muteFrac < 0 {
		fmt.Fprintln(os.Stderr, "octoload: readfrac + statfrac exceed 1")
		os.Exit(2)
	}
	if c.zipfS <= 1 {
		fmt.Fprintln(os.Stderr, "octoload: -zipf must be > 1 (rand.NewZipf requirement)")
		os.Exit(2)
	}
	if c.files < 2 {
		fmt.Fprintln(os.Stderr, "octoload: -files must be at least 2")
		os.Exit(2)
	}
	if c.clients < 1 {
		fmt.Fprintln(os.Stderr, "octoload: -clients must be at least 1")
		os.Exit(2)
	}
	if c.shards < 1 {
		fmt.Fprintln(os.Stderr, "octoload: -shards must be at least 1")
		os.Exit(2)
	}
	if c.dataplane != "none" && c.dataplane != "contended" {
		fmt.Fprintln(os.Stderr, "octoload: -dataplane must be none or contended")
		os.Exit(2)
	}
	if c.tenants < 0 {
		fmt.Fprintln(os.Stderr, "octoload: -tenants must be non-negative")
		os.Exit(2)
	}
	if c.tenants >= 2 && c.dataplane != "contended" {
		// Tenant weights only mean something on the shared plane; a tagged
		// run without it would silently measure nothing.
		fmt.Fprintln(os.Stderr, "octoload: -tenants requires -dataplane contended")
		os.Exit(2)
	}
	if c.readSLO > 0 && c.tenants < 2 {
		fmt.Fprintln(os.Stderr, "octoload: -read-slo requires -tenants >= 2")
		os.Exit(2)
	}
	if c.tenants >= 2 {
		// Tenant i+1 gets weight N-i: tenant 1 is the protected heavyweight
		// (the CI victim gate watches its p99), the last tenant the
		// best-effort flood.
		for i := 0; i < c.tenants; i++ {
			tc := server.TenantConfig{ID: storage.TenantID(i + 1), Weight: float64(c.tenants - i)}
			if i == 0 {
				tc.ReadSLO = c.readSLO
			}
			c.tenantCfg = append(c.tenantCfg, tc)
		}
	}
	if c.scenarioN != "" && c.shards != 1 {
		// Scenario perturbations mutate one replay's engine/fs; the sharded
		// core would need the fan-out churn API instead. Keep the
		// composition single-shard until scenarios learn to shard.
		fmt.Fprintln(os.Stderr, "octoload: -scenario requires -shards 1")
		os.Exit(2)
	}
	return c
}

// population stages file specs from the workload generators: the profile's
// heavy-tailed bin distribution supplies realistic path/size shapes without
// re-inventing a generator here.
func population(c config) []workload.FileSpec {
	var p workload.Profile
	switch c.workloadN {
	case "fb", "FB":
		p = workload.FB()
	case "cmu", "CMU":
		p = workload.CMU()
	default:
		fmt.Fprintf(os.Stderr, "octoload: unknown workload %q\n", c.workloadN)
		os.Exit(2)
	}
	p.NumJobs = c.files
	// Cap at bin D so single files fit the load cluster's SSD tier.
	p = workload.CapProfile(p, workload.BinD)
	return workload.Generate(p, c.seed).Files
}

func workerSpec(memCapMB, ssdCapMB int64) storage.NodeSpec {
	return storage.NodeSpec{
		{Media: storage.Memory, Capacity: memCapMB * storage.MB, ReadBW: 4000e6, WriteBW: 3000e6, Count: 1},
		{Media: storage.SSD, Capacity: ssdCapMB * storage.MB, ReadBW: 500e6, WriteBW: 400e6, Count: 1},
		{Media: storage.HDD, Capacity: 128 * storage.GB, ReadBW: 160e6, WriteBW: 140e6, Count: 2},
	}
}

// report is the BENCH_serve.json schema.
type report struct {
	Config         map[string]any `json:"config"`
	ElapsedSeconds float64        `json:"elapsed_seconds"`
	Ops            int64          `json:"ops"`
	OpsPerSec      float64        `json:"ops_per_sec"`
	Access         latencyBlock   `json:"access"`
	Mutate         latencyBlock   `json:"mutate"`
	// Read is the tier-real virtual read latency across all tiers (device
	// queueing + base + transfer from the data plane); zero counts with
	// -dataplane none. ReadTiers breaks it down per serving tier.
	Read      latencyBlock       `json:"read"`
	ReadTiers []tierLatencyBlock `json:"read_tiers,omitempty"`
	// ReadTenants breaks the tier-real read latency down per tenant
	// (present only on -tenants runs); the CI victim gate watches the
	// lowest-id (heaviest-weight) tenant's p99.
	ReadTenants []tenantLatencyBlock `json:"read_tenants,omitempty"`
	SLO         *sloReport           `json:"slo,omitempty"`
	Plane       []planeTierReport    `json:"plane,omitempty"`
	Serve       server.ServeStats    `json:"serve"`
	Executor    []tierReport         `json:"executor"`
	Quota       server.QuotaStats    `json:"quota"`
	Violations  []string             `json:"violations"`
}

type latencyBlock struct {
	Count int64   `json:"count"`
	P50us float64 `json:"p50_us"`
	P99us float64 `json:"p99_us"`
}

type tierLatencyBlock struct {
	Tier string `json:"tier"`
	latencyBlock
}

type tenantLatencyBlock struct {
	Tenant int     `json:"tenant"`
	Weight float64 `json:"weight"`
	latencyBlock
}

type sloReport struct {
	Checks   int64 `json:"checks"`
	Breaches int64 `json:"breaches"`
	Defers   int64 `json:"defers"`
}

type planeTierReport struct {
	Tier string `json:"tier"`
	storage.TierPlaneStats
}

type tierReport struct {
	Tier string `json:"tier"`
	server.TierMoveStats
}

func toLatencyBlock(h *server.Histogram) latencyBlock {
	return latencyBlock{
		Count: h.Count(),
		P50us: float64(h.Quantile(0.50).Nanoseconds()) / 1e3,
		P99us: float64(h.Quantile(0.99).Nanoseconds()) / 1e3,
	}
}

// system abstracts over the single-writer and sharded serving layers.
// finish shuts the service down and returns the invariant violations: the
// single-writer path verifies through the live core loop then closes, the
// sharded path closes first so Verify sees fully quiescent shards (no
// pacer, reconcile tick, or policy-tick borrow can move capacity between
// per-shard snapshots).
type system struct {
	svc        server.Service
	finish     func() []string
	exec       func() server.ExecutorStats
	stats      func() server.ServeStats
	access     func() *server.Histogram
	mutate     func() *server.Histogram
	readTier   func(storage.Media) *server.Histogram
	tenantRead func(storage.TenantID) *server.Histogram
	slo        func() server.SLOStats
	quota      func() server.QuotaStats
}

func buildPolicies(c config, fs *dfs.FileSystem) (*core.Manager, error) {
	ctx := core.NewContext(fs, core.DefaultConfig())
	lcfg := ml.DefaultLearnerConfig()
	lcfg.Seed = c.seed
	down, err := policy.NewDowngrade(c.down, ctx, lcfg)
	if err != nil {
		return nil, err
	}
	up, err := policy.NewUpgrade(c.up, ctx, lcfg)
	if err != nil {
		return nil, err
	}
	return core.NewManager(ctx, down, up), nil
}

func executorConfig(c config) server.ExecutorConfig {
	var rates [3]float64
	for i, r := range c.rateMBps {
		if r > 0 {
			rates[i] = float64(r * storage.MB)
		}
	}
	return server.ExecutorConfig{
		WorkersPerTier: c.moveWorkers,
		QueueDepth:     c.moveQueue,
		BudgetBytes: [3]int64{
			c.budgetMB[0] * storage.MB, c.budgetMB[1] * storage.MB, c.budgetMB[2] * storage.MB,
		},
		RateBytesPerSec: rates,
	}
}

// buildSingle wires the single-writer serving layer, optionally attaching
// to a scenario catalog entry for topology and perturbations.
func buildSingle(c config, clCfg cluster.Config, sc *scenario.Scenario) (*system, func()) {
	engine := sim.NewEngine()
	cl, err := cluster.New(engine, clCfg)
	if err != nil {
		fatal(err)
	}
	fs, err := dfs.New(cl, dfs.Config{Mode: dfs.ModeOctopus, Seed: c.seed, ClientRate: 2000e6})
	if err != nil {
		fatal(err)
	}
	mgr, err := buildPolicies(c, fs)
	if err != nil {
		fatal(err)
	}
	mgr.Start()
	srv := server.New(fs, mgr, server.Config{
		TimeScale: c.timeScale,
		Executor:  executorConfig(c),
		Tenants:   c.tenantCfg,
	})
	srv.Start()

	// The perturbation installer: runs on the core loop once the preload
	// finished, so scenario callbacks interleave with serving commands on
	// the engine they expect to own.
	attach := func() {}
	if sc != nil {
		attach = func() {
			srv.Exec(func(fs *dfs.FileSystem) {
				scenario.Attach(*sc, &scenario.Replay{
					System:  scenario.System{Name: c.down + "/" + c.up, Mode: dfs.ModeOctopus, Down: c.down, Up: c.up},
					Opts:    scenario.Options{Seed: c.seed, Fast: true, Workers: c.workers},
					Engine:  fs.Engine(),
					Cluster: fs.Cluster(),
					FS:      fs,
					Manager: mgr,
				})
			})
		}
	}
	return &system{
		svc: srv,
		finish: func() []string {
			var violations []string
			srv.Exec(func(fs *dfs.FileSystem) {
				if err := fs.CheckAccounting(); err != nil {
					violations = append(violations, err.Error())
				}
				if err := fs.CheckInvariants(); err != nil {
					violations = append(violations, err.Error())
				}
				if err := mgr.Context().Index().Audit(); err != nil {
					violations = append(violations, err.Error())
				}
			})
			if v := srv.Executor().Stats().CheckBudgets(); v != "" {
				violations = append(violations, v)
			}
			srv.Close()
			mgr.Stop()
			return violations
		},
		exec:       srv.Executor().Stats,
		stats:      srv.Stats,
		access:     srv.AccessLatency,
		mutate:     srv.MutateLatency,
		readTier:   srv.ReadLatency,
		tenantRead: srv.TenantReadLatency,
		slo:        srv.SLOStats,
		quota:      func() server.QuotaStats { return server.QuotaStats{} },
	}, attach
}

// buildSharded wires the partitioned core: one engine/manager/shard loop
// per namespace shard over quota-sliced cluster views.
func buildSharded(c config, clCfg cluster.Config) *system {
	srv, err := server.NewSharded(server.ShardedConfig{
		Shards:  c.shards,
		Cluster: clCfg,
		DFS:     dfs.Config{Mode: dfs.ModeOctopus, Seed: c.seed, ClientRate: 2000e6},
		Build: func(_ int, fs *dfs.FileSystem) (*core.Manager, error) {
			return buildPolicies(c, fs)
		},
		Quota: server.QuotaConfig{InitialFraction: c.quotaFrac},
		Inner: server.Config{
			TimeScale: c.timeScale,
			Executor:  executorConfig(c),
			Tenants:   c.tenantCfg,
		},
	})
	if err != nil {
		fatal(err)
	}
	srv.Start()
	return &system{
		svc: srv,
		finish: func() []string {
			srv.Close()
			return srv.Verify()
		},
		exec:       srv.ExecutorStats,
		stats:      srv.Stats,
		access:     srv.AccessLatency,
		mutate:     srv.MutateLatency,
		readTier:   srv.ReadLatency,
		tenantRead: srv.TenantReadLatency,
		slo:        srv.SLOStats,
		quota:      srv.QuotaStats,
	}
}

func main() {
	c := parseFlags()

	// Resolve the world: either the driver's own cluster and generated
	// population, or a scenario catalog entry's.
	clCfg := cluster.Config{Workers: c.workers, SlotsPerNode: 4, Spec: workerSpec(c.memCapMB, c.ssdCapMB)}
	var files []workload.FileSpec
	var sc *scenario.Scenario
	if c.scenarioN != "" {
		got, err := scenario.Get(c.scenarioN)
		if err != nil {
			fatal(err)
		}
		sc = &got
		opts := scenario.Options{Seed: c.seed, Fast: true, Workers: c.workers}
		clCfg = sc.Cluster(opts)
		files = sc.Trace(opts).Files
		if len(files) < 2 {
			fatal(fmt.Errorf("scenario %s stages %d files; need at least 2", sc.Name, len(files)))
		}
	} else {
		files = population(c)
	}

	// Attach the data plane after the topology is resolved: one plane spans
	// every shard's cluster view, so serve reads and movement contend for
	// the physical device channels across shards.
	var plane *storage.ContendedPlane
	if c.dataplane == "contended" {
		plane = storage.NewContendedPlane(storage.PlaneConfig{
			Tenants: server.PlaneTenants(c.tenantCfg),
		})
		clCfg.Plane = plane
	}

	var sys *system
	attach := func() {}
	if c.shards > 1 {
		sys = buildSharded(c, clCfg)
	} else {
		sys, attach = buildSingle(c, clCfg, sc)
	}
	svc := sys.svc

	// Each client carries one tenant identity for the whole run (round-robin
	// across the table); untenanted runs keep the untagged fast path.
	tenantOf := func(cli int) storage.TenantID {
		if len(c.tenantCfg) == 0 {
			return storage.DefaultTenant
		}
		return c.tenantCfg[cli%len(c.tenantCfg)].ID
	}

	// Stage the population through the serving layer, concurrently.
	paths := make([]string, len(files))
	var wg sync.WaitGroup
	for cli := 0; cli < c.clients; cli++ {
		wg.Add(1)
		go func(cli int) {
			defer wg.Done()
			tid := tenantOf(cli)
			for i := cli; i < len(files); i += c.clients {
				paths[i] = files[i].Path
				var err error
				if tid != storage.DefaultTenant {
					err = svc.CreateAs(files[i].Path, files[i].Size, tid)
				} else {
					err = svc.Create(files[i].Path, files[i].Size)
				}
				if err != nil {
					fmt.Fprintf(os.Stderr, "octoload: preload %s: %v\n", files[i].Path, err)
				}
			}
		}(cli)
	}
	wg.Wait()

	// Scenario perturbations start with the load phase, after preload.
	attach()

	// Closed-loop load phase.
	stop := make(chan struct{})
	var ops atomic.Int64
	start := time.Now()
	for cli := 0; cli < c.clients; cli++ {
		wg.Add(1)
		go func(cli int) {
			defer wg.Done()
			tid := tenantOf(cli)
			rng := rand.New(rand.NewSource(c.seed*1000 + int64(cli)))
			zipf := rand.NewZipf(rng, c.zipfS, 1, uint64(len(paths)-1))
			var own []string
			scratch := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch r := rng.Float64(); {
				case r < c.readFrac:
					if tid != storage.DefaultTenant {
						svc.AccessAs(paths[zipf.Uint64()], tid)
					} else {
						svc.Access(paths[zipf.Uint64()])
					}
				case r < c.readFrac+c.statFrac:
					svc.Stat(paths[rng.Intn(len(paths))])
				case rng.Float64() < 0.5 || len(own) == 0:
					path := fmt.Sprintf("/scratch/c%d/f%06d", cli, scratch)
					scratch++
					var err error
					if tid != storage.DefaultTenant {
						err = svc.CreateAs(path, (4+rng.Int63n(60))*storage.MB, tid)
					} else {
						err = svc.Create(path, (4+rng.Int63n(60))*storage.MB)
					}
					if err == nil {
						own = append(own, path)
					}
				default:
					path := own[len(own)-1]
					own = own[:len(own)-1]
					svc.Delete(path) // busy under movement is an expected outcome
				}
				ops.Add(1)
			}
		}(cli)
	}
	time.Sleep(c.dur)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	svc.Flush()
	violations := sys.finish()
	exStats := sys.exec()
	// Snapshot the histograms once: in sharded mode each accessor merges
	// every per-shard histogram into a fresh allocation.
	accessHist, mutateHist := sys.access(), sys.mutate()
	readAll := &server.Histogram{}
	var readTiers []tierLatencyBlock
	for _, m := range storage.AllMedia {
		h := sys.readTier(m)
		readAll.AddFrom(h)
		readTiers = append(readTiers, tierLatencyBlock{Tier: m.String(), latencyBlock: toLatencyBlock(h)})
	}

	rep := report{
		Config: map[string]any{
			"clients": c.clients, "dur": c.dur.String(), "files": len(files),
			"workload": c.workloadN, "scenario": c.scenarioN, "zipf": c.zipfS,
			"readfrac": c.readFrac, "workers": clCfg.Workers, "down": c.down, "up": c.up,
			"timescale": c.timeScale, "seed": c.seed, "shards": c.shards,
			"move_workers": c.moveWorkers, "move_queue": c.moveQueue,
			"dataplane": c.dataplane, "tenants": c.tenants,
			"read_slo": c.readSLO.String(),
		},
		ElapsedSeconds: elapsed.Seconds(),
		Ops:            ops.Load(),
		OpsPerSec:      float64(ops.Load()) / elapsed.Seconds(),
		Access:         toLatencyBlock(accessHist),
		Mutate:         toLatencyBlock(mutateHist),
		Read:           toLatencyBlock(readAll),
		ReadTiers:      readTiers,
		Serve:          sys.stats(),
		Quota:          sys.quota(),
		Violations:     violations,
	}
	for _, m := range storage.AllMedia {
		rep.Executor = append(rep.Executor, tierReport{Tier: m.String(), TierMoveStats: exStats.PerTier[m]})
	}
	for _, tc := range c.tenantCfg {
		if h := sys.tenantRead(tc.ID); h != nil {
			rep.ReadTenants = append(rep.ReadTenants, tenantLatencyBlock{
				Tenant: int(tc.ID), Weight: tc.Weight, latencyBlock: toLatencyBlock(h),
			})
		}
	}
	if c.readSLO > 0 {
		st := sys.slo()
		rep.SLO = &sloReport{Checks: st.Checks, Breaches: st.Breaches, Defers: exStats.Defers}
	}
	if plane != nil {
		pst := plane.Stats()
		for _, m := range storage.AllMedia {
			rep.Plane = append(rep.Plane, planeTierReport{Tier: m.String(), TierPlaneStats: pst.PerTier[m]})
		}
	}

	fmt.Printf("octoload: %d clients, %d files, %d shard(s), %.1fs wall (%.0fx virtual)\n",
		c.clients, len(files), c.shards, elapsed.Seconds(), c.timeScale)
	if c.scenarioN != "" {
		fmt.Printf("  scenario   %s (perturbations composed with client load)\n", c.scenarioN)
	}
	fmt.Printf("  ops        %d (%.0f ops/s)\n", rep.Ops, rep.OpsPerSec)
	fmt.Printf("  access     p50 %.1fµs  p99 %.1fµs  (%d samples)\n", rep.Access.P50us, rep.Access.P99us, rep.Access.Count)
	fmt.Printf("  mutate     p50 %.1fµs  p99 %.1fµs  (%d samples)\n", rep.Mutate.P50us, rep.Mutate.P99us, rep.Mutate.Count)
	if c.dataplane != "none" {
		fmt.Printf("  read       p50 %.1fµs  p99 %.1fµs  (%d samples, tier-real virtual time)\n",
			rep.Read.P50us, rep.Read.P99us, rep.Read.Count)
		for _, tl := range rep.ReadTiers {
			fmt.Printf("  read %s   p50 %.1fµs  p99 %.1fµs  (%d samples)\n", tl.Tier, tl.P50us, tl.P99us, tl.Count)
		}
		for _, pt := range rep.Plane {
			fmt.Printf("  plane %s  %d reqs (%d move)  %dMB  contended %d  saturated %d  avg queue %v\n",
				pt.Tier, pt.Requests, pt.MoveRequests, pt.Bytes/storage.MB, pt.Contended, pt.Saturated, pt.AvgQueue)
		}
		for _, tl := range rep.ReadTenants {
			fmt.Printf("  tenant %d   p50 %.1fµs  p99 %.1fµs  (%d samples, weight %.0f)\n",
				tl.Tenant, tl.P50us, tl.P99us, tl.Count, tl.Weight)
		}
		if rep.SLO != nil {
			fmt.Printf("  slo        %d checks, %d breaches, %d movement defers\n",
				rep.SLO.Checks, rep.SLO.Breaches, rep.SLO.Defers)
		}
	}
	st := rep.Serve
	fmt.Printf("  served     MEM %d  SSD %d  HDD %d  (miss %d, no-replica %d)\n",
		st.ServedByTier[0], st.ServedByTier[1], st.ServedByTier[2], st.AccessMisses, st.NoReplica)
	fmt.Printf("  ring       %d events in %d batches, %d dropped\n", st.EventsDrained, st.DrainBatches, st.EventsDropped)
	for _, tr := range rep.Executor {
		fmt.Printf("  moves %s  sched %d done %d fail %d shed %d  admitted %dMB (bucket %dMB @ %.0fMB/s)\n",
			tr.Tier, tr.Scheduled, tr.Completed, tr.Failed, tr.Shed,
			tr.AdmittedBytes/storage.MB, tr.BudgetBytes/storage.MB, tr.RateBytesPerSec/float64(storage.MB))
	}
	if q := rep.Quota; q.Borrows > 0 || q.ReturnedBytes > 0 {
		fmt.Printf("  quota      %d borrows (%dMB), %d failures, %dMB returned\n",
			q.Borrows, q.BorrowedBytes/storage.MB, q.BorrowFailures, q.ReturnedBytes/storage.MB)
	}
	if len(violations) > 0 {
		fmt.Printf("  VIOLATIONS (%d):\n", len(violations))
		for _, v := range violations {
			fmt.Println("   ", v)
		}
	} else {
		fmt.Println("  invariants OK (accounting, deep structural, index audit, ledger, budgets)")
	}

	if c.out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(c.out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("  report written to %s\n", c.out)
	}
	if len(violations) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "octoload:", err)
	os.Exit(1)
}
