// Command octoload is the closed-loop traffic driver for the concurrent
// serving layer: it stands up a managed tiered DFS behind internal/server,
// stages a file population drawn from the internal/workload generators,
// then hammers the service with N concurrent clients issuing a configurable
// mix of zipf-skewed accesses, stats, creates, and deletes while the
// movement executor shuffles replicas between tiers underneath.
//
// At the end it fences the server, runs the full invariant suite
// (capacity accounting, deep structural checks, candidate-index audit),
// and reports ops/s plus p50/p99 latency histograms, written as JSON to
// -out (BENCH_serve.json by default) for CI trend tracking. The process
// exits non-zero if any invariant was violated — a load run is a
// correctness artifact, not just a throughput number.
//
// Examples:
//
//	octoload                                   # 8 clients, 5s, FB-shaped files
//	octoload -clients 32 -dur 10s -zipf 1.3
//	octoload -down xgb -up xgb -timescale 300
//	octoload -budget-mem 128 -move-queue 16    # stress shedding
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"octostore/internal/cluster"
	"octostore/internal/core"
	"octostore/internal/dfs"
	"octostore/internal/ml"
	"octostore/internal/policy"
	"octostore/internal/server"
	"octostore/internal/sim"
	"octostore/internal/storage"
	"octostore/internal/workload"
)

type config struct {
	clients   int
	dur       time.Duration
	files     int
	workloadN string
	zipfS     float64
	readFrac  float64
	statFrac  float64
	muteFrac  float64 // create+delete combined; split evenly
	workers   int
	memCapMB  int64
	down, up  string
	timeScale float64
	seed      int64
	out       string

	moveWorkers int
	moveQueue   int
	budgetMB    [3]int64
}

func parseFlags() config {
	var c config
	flag.IntVar(&c.clients, "clients", 8, "concurrent closed-loop clients")
	flag.DurationVar(&c.dur, "dur", 5*time.Second, "load duration (wall clock)")
	flag.IntVar(&c.files, "files", 150, "approximate staged file population (scales the workload generator)")
	flag.StringVar(&c.workloadN, "workload", "fb", "file population shape: fb or cmu (internal/workload profiles)")
	flag.Float64Var(&c.zipfS, "zipf", 1.1, "zipf skew of the access key distribution (>1)")
	flag.Float64Var(&c.readFrac, "readfrac", 0.82, "fraction of ops that are accesses")
	flag.Float64Var(&c.statFrac, "statfrac", 0.10, "fraction of ops that are stats/lists")
	flag.IntVar(&c.workers, "workers", 5, "cluster worker count")
	flag.Int64Var(&c.memCapMB, "memcap", 256, "memory-tier capacity per worker in MB (small keeps movement busy)")
	flag.StringVar(&c.down, "down", "lru", "downgrade policy")
	flag.StringVar(&c.up, "up", "osa", "upgrade policy")
	flag.Float64Var(&c.timeScale, "timescale", 120, "virtual seconds advanced per wall second")
	flag.Int64Var(&c.seed, "seed", 1, "population/placement/client seed")
	flag.StringVar(&c.out, "out", "BENCH_serve.json", "JSON report path (empty disables)")
	flag.IntVar(&c.moveWorkers, "move-workers", 2, "movement executor slots per destination tier")
	flag.IntVar(&c.moveQueue, "move-queue", 64, "movement executor queue depth per tier")
	flag.Int64Var(&c.budgetMB[0], "budget-mem", 512, "memory-tier in-flight movement budget (MB)")
	flag.Int64Var(&c.budgetMB[1], "budget-ssd", 1024, "SSD-tier in-flight movement budget (MB)")
	flag.Int64Var(&c.budgetMB[2], "budget-hdd", 2048, "HDD-tier in-flight movement budget (MB)")
	flag.Parse()
	c.muteFrac = 1 - c.readFrac - c.statFrac
	if c.muteFrac < 0 {
		fmt.Fprintln(os.Stderr, "octoload: readfrac + statfrac exceed 1")
		os.Exit(2)
	}
	if c.zipfS <= 1 {
		fmt.Fprintln(os.Stderr, "octoload: -zipf must be > 1 (rand.NewZipf requirement)")
		os.Exit(2)
	}
	if c.files < 2 {
		fmt.Fprintln(os.Stderr, "octoload: -files must be at least 2")
		os.Exit(2)
	}
	if c.clients < 1 {
		fmt.Fprintln(os.Stderr, "octoload: -clients must be at least 1")
		os.Exit(2)
	}
	return c
}

// population stages file specs from the workload generators: the profile's
// heavy-tailed bin distribution supplies realistic path/size shapes without
// re-inventing a generator here.
func population(c config) []workload.FileSpec {
	var p workload.Profile
	switch c.workloadN {
	case "fb", "FB":
		p = workload.FB()
	case "cmu", "CMU":
		p = workload.CMU()
	default:
		fmt.Fprintf(os.Stderr, "octoload: unknown workload %q\n", c.workloadN)
		os.Exit(2)
	}
	p.NumJobs = c.files
	// Cap at bin D so single files fit the load cluster's SSD tier.
	p = workload.CapProfile(p, workload.BinD)
	return workload.Generate(p, c.seed).Files
}

func workerSpec(memCapMB int64) storage.NodeSpec {
	return storage.NodeSpec{
		{Media: storage.Memory, Capacity: memCapMB * storage.MB, ReadBW: 4000e6, WriteBW: 3000e6, Count: 1},
		{Media: storage.SSD, Capacity: 16 * storage.GB, ReadBW: 500e6, WriteBW: 400e6, Count: 1},
		{Media: storage.HDD, Capacity: 128 * storage.GB, ReadBW: 160e6, WriteBW: 140e6, Count: 2},
	}
}

// report is the BENCH_serve.json schema.
type report struct {
	Config         map[string]any    `json:"config"`
	ElapsedSeconds float64           `json:"elapsed_seconds"`
	Ops            int64             `json:"ops"`
	OpsPerSec      float64           `json:"ops_per_sec"`
	Access         latencyBlock      `json:"access"`
	Mutate         latencyBlock      `json:"mutate"`
	Serve          server.ServeStats `json:"serve"`
	Executor       []tierReport      `json:"executor"`
	Violations     []string          `json:"violations"`
}

type latencyBlock struct {
	Count int64   `json:"count"`
	P50us float64 `json:"p50_us"`
	P99us float64 `json:"p99_us"`
}

type tierReport struct {
	Tier string `json:"tier"`
	server.TierMoveStats
}

func main() {
	c := parseFlags()

	engine := sim.NewEngine()
	cl, err := cluster.New(engine, cluster.Config{Workers: c.workers, SlotsPerNode: 4, Spec: workerSpec(c.memCapMB)})
	if err != nil {
		fatal(err)
	}
	fs, err := dfs.New(cl, dfs.Config{Mode: dfs.ModeOctopus, Seed: c.seed, ClientRate: 2000e6})
	if err != nil {
		fatal(err)
	}
	ctx := core.NewContext(fs, core.DefaultConfig())
	lcfg := ml.DefaultLearnerConfig()
	lcfg.Seed = c.seed
	down, err := policy.NewDowngrade(c.down, ctx, lcfg)
	if err != nil {
		fatal(err)
	}
	up, err := policy.NewUpgrade(c.up, ctx, lcfg)
	if err != nil {
		fatal(err)
	}
	mgr := core.NewManager(ctx, down, up)
	mgr.Start()

	srv := server.New(fs, mgr, server.Config{
		TimeScale: c.timeScale,
		Executor: server.ExecutorConfig{
			WorkersPerTier: c.moveWorkers,
			QueueDepth:     c.moveQueue,
			BudgetBytes: [3]int64{
				c.budgetMB[0] * storage.MB, c.budgetMB[1] * storage.MB, c.budgetMB[2] * storage.MB,
			},
		},
	})
	srv.Start()

	// Stage the population through the serving layer, concurrently.
	files := population(c)
	paths := make([]string, len(files))
	var wg sync.WaitGroup
	for cli := 0; cli < c.clients; cli++ {
		wg.Add(1)
		go func(cli int) {
			defer wg.Done()
			for i := cli; i < len(files); i += c.clients {
				paths[i] = files[i].Path
				if err := srv.Create(files[i].Path, files[i].Size); err != nil {
					fmt.Fprintf(os.Stderr, "octoload: preload %s: %v\n", files[i].Path, err)
				}
			}
		}(cli)
	}
	wg.Wait()

	// Closed-loop load phase.
	stop := make(chan struct{})
	var ops atomic.Int64
	start := time.Now()
	for cli := 0; cli < c.clients; cli++ {
		wg.Add(1)
		go func(cli int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(c.seed*1000 + int64(cli)))
			zipf := rand.NewZipf(rng, c.zipfS, 1, uint64(len(paths)-1))
			var own []string
			scratch := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch r := rng.Float64(); {
				case r < c.readFrac:
					srv.Access(paths[zipf.Uint64()])
				case r < c.readFrac+c.statFrac:
					srv.Stat(paths[rng.Intn(len(paths))])
				case rng.Float64() < 0.5 || len(own) == 0:
					path := fmt.Sprintf("/scratch/c%d/f%06d", cli, scratch)
					scratch++
					if err := srv.Create(path, (4+rng.Int63n(60))*storage.MB); err == nil {
						own = append(own, path)
					}
				default:
					path := own[len(own)-1]
					own = own[:len(own)-1]
					srv.Delete(path) // busy under movement is an expected outcome
				}
				ops.Add(1)
			}
		}(cli)
	}
	time.Sleep(c.dur)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	srv.Flush()
	var violations []string
	srv.Exec(func(fs *dfs.FileSystem) {
		if err := fs.CheckAccounting(); err != nil {
			violations = append(violations, err.Error())
		}
		if err := fs.CheckInvariants(); err != nil {
			violations = append(violations, err.Error())
		}
		if err := mgr.Context().Index().Audit(); err != nil {
			violations = append(violations, err.Error())
		}
	})
	exStats := srv.Executor().Stats()
	for _, m := range storage.AllMedia {
		ts := exStats.PerTier[m]
		if ts.MaxInFlightBytes > ts.BudgetBytes {
			violations = append(violations,
				fmt.Sprintf("executor exceeded %s budget: %d > %d", m, ts.MaxInFlightBytes, ts.BudgetBytes))
		}
	}
	srv.Close()
	mgr.Stop()

	rep := report{
		Config: map[string]any{
			"clients": c.clients, "dur": c.dur.String(), "files": len(files),
			"workload": c.workloadN, "zipf": c.zipfS, "readfrac": c.readFrac,
			"workers": c.workers, "down": c.down, "up": c.up,
			"timescale": c.timeScale, "seed": c.seed,
			"move_workers": c.moveWorkers, "move_queue": c.moveQueue,
		},
		ElapsedSeconds: elapsed.Seconds(),
		Ops:            ops.Load(),
		OpsPerSec:      float64(ops.Load()) / elapsed.Seconds(),
		Access: latencyBlock{
			Count: srv.AccessLatency().Count(),
			P50us: float64(srv.AccessLatency().Quantile(0.50).Nanoseconds()) / 1e3,
			P99us: float64(srv.AccessLatency().Quantile(0.99).Nanoseconds()) / 1e3,
		},
		Mutate: latencyBlock{
			Count: srv.MutateLatency().Count(),
			P50us: float64(srv.MutateLatency().Quantile(0.50).Nanoseconds()) / 1e3,
			P99us: float64(srv.MutateLatency().Quantile(0.99).Nanoseconds()) / 1e3,
		},
		Serve:      srv.Stats(),
		Violations: violations,
	}
	for _, m := range storage.AllMedia {
		rep.Executor = append(rep.Executor, tierReport{Tier: m.String(), TierMoveStats: exStats.PerTier[m]})
	}

	fmt.Printf("octoload: %d clients, %d files, %.1fs wall (%.0fx virtual)\n",
		c.clients, len(files), elapsed.Seconds(), c.timeScale)
	fmt.Printf("  ops        %d (%.0f ops/s)\n", rep.Ops, rep.OpsPerSec)
	fmt.Printf("  access     p50 %.1fµs  p99 %.1fµs  (%d samples)\n", rep.Access.P50us, rep.Access.P99us, rep.Access.Count)
	fmt.Printf("  mutate     p50 %.1fµs  p99 %.1fµs  (%d samples)\n", rep.Mutate.P50us, rep.Mutate.P99us, rep.Mutate.Count)
	st := rep.Serve
	fmt.Printf("  served     MEM %d  SSD %d  HDD %d  (miss %d, no-replica %d)\n",
		st.ServedByTier[0], st.ServedByTier[1], st.ServedByTier[2], st.AccessMisses, st.NoReplica)
	fmt.Printf("  ring       %d events in %d batches, %d dropped\n", st.EventsDrained, st.DrainBatches, st.EventsDropped)
	for _, tr := range rep.Executor {
		fmt.Printf("  moves %s  sched %d done %d fail %d shed %d  in-flight max %dMB / budget %dMB\n",
			tr.Tier, tr.Scheduled, tr.Completed, tr.Failed, tr.Shed,
			tr.MaxInFlightBytes/storage.MB, tr.BudgetBytes/storage.MB)
	}
	if len(violations) > 0 {
		fmt.Printf("  VIOLATIONS (%d):\n", len(violations))
		for _, v := range violations {
			fmt.Println("   ", v)
		}
	} else {
		fmt.Println("  invariants OK (accounting, deep structural, index audit)")
	}

	if c.out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(c.out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("  report written to %s\n", c.out)
	}
	if len(violations) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "octoload:", err)
	os.Exit(1)
}
