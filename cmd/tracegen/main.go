// Command tracegen generates and summarises the synthetic FB and CMU
// workload traces (Section 7.1): job/file counts, the Table 3 bin
// distribution of job counts, total data volume, popularity statistics,
// and optionally a CSV dump of the jobs.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"octostore/internal/eval"
	"octostore/internal/storage"
	"octostore/internal/workload"
)

func main() {
	var (
		name = flag.String("workload", "fb", "workload profile: fb or cmu")
		seed = flag.Int64("seed", 1, "generation seed")
		csvO = flag.String("csv", "", "write the job list as CSV to this file")
	)
	flag.Parse()

	var p workload.Profile
	switch *name {
	case "fb":
		p = workload.FB()
	case "cmu":
		p = workload.CMU()
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown workload %q\n", *name)
		os.Exit(2)
	}
	tr := workload.Generate(p, *seed)

	fmt.Printf("workload: %s (seed %d)\n", tr.Name, *seed)
	fmt.Printf("duration: %v\n", tr.Duration)
	fmt.Printf("jobs:     %d\n", len(tr.Jobs))
	fmt.Printf("files:    %d input files, %.1f GB total\n",
		len(tr.Files), float64(tr.TotalInputBytes())/float64(storage.GB))

	counts := tr.AccessCounts()
	over5, never := 0, 0
	for _, f := range tr.Files {
		c := counts[f.Path]
		if c > 5 {
			over5++
		}
		if c == 0 {
			never++
		}
	}
	outputs := 0
	for _, j := range tr.Jobs {
		if j.OutputPath != "" {
			outputs++
		}
	}
	fmt.Printf("popularity: %.1f%% of inputs accessed >5 times, %.1f%% never accessed\n",
		100*float64(over5)/float64(len(tr.Files)), 100*float64(never)/float64(len(tr.Files)))
	fmt.Printf("outputs:  %d jobs persist output (never re-read)\n", outputs)

	tbl := &eval.Table{
		ID:     "bins",
		Title:  "job distribution by input-size bin",
		Header: []string{"Bin", "Jobs", "% of Jobs", "Input GB"},
	}
	var jobs [workload.NumBins]int
	var bytes [workload.NumBins]int64
	for _, j := range tr.Jobs {
		jobs[j.Bin]++
		bytes[j.Bin] += j.InputBytes
	}
	for b := workload.Bin(0); b < workload.NumBins; b++ {
		tbl.AddRow(b.String(),
			strconv.Itoa(jobs[b]),
			eval.Pct(float64(jobs[b])/float64(len(tr.Jobs))),
			fmt.Sprintf("%.1f", float64(bytes[b])/float64(storage.GB)))
	}
	fmt.Println()
	tbl.Fprint(os.Stdout)

	if *csvO != "" {
		if err := writeCSV(*csvO, tr); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *csvO)
	}
}

func writeCSV(path string, tr *workload.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write([]string{"job", "arrival_s", "bin", "input_path", "input_bytes", "output_bytes", "cpu_per_task_s"}); err != nil {
		return err
	}
	for _, j := range tr.Jobs {
		rec := []string{
			strconv.Itoa(j.ID),
			fmt.Sprintf("%.1f", j.Arrival.Seconds()),
			j.Bin.String(),
			j.InputPath,
			strconv.FormatInt(j.InputBytes, 10),
			strconv.FormatInt(j.OutputBytes, 10),
			fmt.Sprintf("%.1f", j.CPUPerTask.Seconds()),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}
