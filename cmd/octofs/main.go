// Command octofs runs a tiered store with a chosen policy pair over a
// generated workload and reports what the automated tier management did:
// data moved per direction, tier utilisation over time, hit ratios, and
// completion statistics. It is the quickest way to eyeball a policy's
// behaviour without the full experiment harness.
//
// Example:
//
//	octofs -workload fb -down xgb -up xgb -jobs 300
//	octofs -workload cmu -down lru -up osa
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"octostore/internal/cluster"
	"octostore/internal/core"
	"octostore/internal/dfs"
	"octostore/internal/eval"
	"octostore/internal/jobs"
	"octostore/internal/ml"
	"octostore/internal/policy"
	"octostore/internal/sim"
	"octostore/internal/storage"
	"octostore/internal/workload"
)

func main() {
	var (
		wl      = flag.String("workload", "fb", "workload profile: fb or cmu")
		down    = flag.String("down", "xgb", "downgrade policy: lru,lfu,lrfu,life,lfuf,exd,xgb,none")
		up      = flag.String("up", "xgb", "upgrade policy: osa,lrfu,exd,xgb,none")
		nJobs   = flag.Int("jobs", 300, "number of jobs to replay")
		hours   = flag.Float64("hours", 2, "workload duration in hours")
		workers = flag.Int("workers", 5, "cluster workers")
		seed    = flag.Int64("seed", 1, "generation seed")
	)
	flag.Parse()

	var p workload.Profile
	switch *wl {
	case "fb":
		p = workload.FB()
	case "cmu":
		p = workload.CMU()
	default:
		fmt.Fprintf(os.Stderr, "octofs: unknown workload %q\n", *wl)
		os.Exit(2)
	}
	p.NumJobs = *nJobs
	p.Duration = time.Duration(*hours * float64(time.Hour))
	// Bound job sizes to bin D so small clusters stay feasible.
	var capped [workload.NumBins]float64
	total := 0.0
	for b := workload.BinA; b <= workload.BinD; b++ {
		capped[b] = p.BinFractions[b]
		total += p.BinFractions[b]
	}
	for b := workload.BinA; b <= workload.BinD; b++ {
		capped[b] /= total
	}
	p.BinFractions = capped
	trace := workload.Generate(p, *seed)

	engine := sim.NewEngine()
	cl := cluster.MustNew(engine, cluster.Config{
		Workers:      *workers,
		SlotsPerNode: 8,
		Spec: storage.NodeSpec{
			{Media: storage.Memory, Capacity: 2 * storage.GB, ReadBW: 4000e6, WriteBW: 3000e6, Count: 1},
			{Media: storage.SSD, Capacity: 16 * storage.GB, ReadBW: 500e6, WriteBW: 400e6, Count: 1},
			{Media: storage.HDD, Capacity: 128 * storage.GB, ReadBW: 160e6, WriteBW: 140e6, Count: 3},
		},
	})
	fs := dfs.MustNew(cl, dfs.Config{Mode: dfs.ModeOctopus, Seed: *seed, ClientRate: 2000e6})

	ctx := core.NewContext(fs, core.DefaultConfig())
	lcfg := ml.DefaultLearnerConfig()
	lcfg.Seed = *seed
	downP, err := policy.NewDowngrade(*down, ctx, lcfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "octofs:", err)
		os.Exit(2)
	}
	upP, err := policy.NewUpgrade(*up, ctx, lcfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "octofs:", err)
		os.Exit(2)
	}
	mgr := core.NewManager(ctx, downP, upP)
	mgr.Start()
	defer mgr.Stop()

	fmt.Printf("replaying %s: %d jobs over %v on %d workers (down=%s up=%s)\n\n",
		trace.Name, len(trace.Jobs), trace.Duration, *workers, *down, *up)

	stats, err := jobs.Run(fs, trace, jobs.Options{Seed: *seed}, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "octofs:", err)
		os.Exit(1)
	}

	reads, memReads, blocks, memLoc, bytes, memBytes := stats.Totals()
	var meanCompletion time.Duration
	for i := range stats.Jobs {
		meanCompletion += stats.Jobs[i].CompletionTime()
	}
	if len(stats.Jobs) > 0 {
		meanCompletion /= time.Duration(len(stats.Jobs))
	}

	t := &eval.Table{ID: "octofs", Title: "run summary", Header: []string{"Metric", "Value"}}
	t.AddRow("jobs completed", fmt.Sprintf("%d", len(stats.Jobs)))
	t.AddRow("mean completion time", meanCompletion.Round(100*time.Millisecond).String())
	t.AddRow("hit ratio (accesses)", eval.Pct(eval.HitRatio(memReads, reads)))
	t.AddRow("byte hit ratio", eval.Pct(eval.ByteHitRatio(memBytes, bytes)))
	t.AddRow("hit ratio (locations)", eval.Pct(eval.Ratio(float64(memLoc), float64(blocks))))
	mm := mgr.Metrics()
	t.AddRow("downgrades", fmt.Sprintf("%d", mm.DowngradesScheduled))
	t.AddRow("upgrades", fmt.Sprintf("%d", mm.UpgradesScheduled))
	st := fs.Stats()
	t.AddRow("GB downgraded to SSD", fmt.Sprintf("%.2f", float64(st.BytesDowngradedTo[storage.SSD])/float64(storage.GB)))
	t.AddRow("GB upgraded to MEM", fmt.Sprintf("%.2f", float64(st.BytesUpgradedTo[storage.Memory])/float64(storage.GB)))
	for _, m := range storage.AllMedia {
		t.AddRow(fmt.Sprintf("%s utilisation", m), eval.Pct(fs.TierUtilization(m)))
	}
	t.Fprint(os.Stdout)
}
