// Command benchgate turns benchmark artifacts into a regression gate: it
// compares two `go test -json -bench` outputs (a baseline from the previous
// CI run and the current run) and fails when any benchmark slowed down by
// more than the threshold.
//
//	benchgate -old BENCH_policy.baseline.json -new BENCH_policy.json -threshold 1.25
//
// Multiple samples of the same benchmark are reduced with min (the least
// noisy estimator for "how fast can this go"), and benchmarks under
// -floor-ns are ignored — at CI's short benchtimes, nanosecond-scale
// results are dominated by jitter, not code.
//
// It also gates the serving-layer load reports (cmd/octoload's
// BENCH_serve.json): ops/s is a bigger-is-better metric, so the gate fails
// when the current run's throughput drops below baseline/threshold.
//
//	benchgate -serve-old BENCH_serve.baseline.json -serve-new BENCH_serve.json -threshold 1.25
//
// A third gate bounds the observability tax: given two load reports from the
// same configuration — one without and one with -obs-listen/-trace — it
// fails when the instrumented run's ops/s falls more than -overhead-threshold
// below the uninstrumented run's.
//
//	benchgate -overhead-off BENCH_off.json -overhead-on BENCH_obs.json -overhead-threshold 1.05
//
// A fourth gate keeps the dynamic shard rebalancer honest: given two load
// reports from the same skewed configuration (octoload -hotdir/-shards) —
// one with static routing and one with -rebalance — it fails unless the
// rebalanced run sustains at least -skew-ratio times the static run's ops/s,
// improves the per-shard imbalance ratio by at least -skew-imbalance, and
// actually migrated (a run that "wins" without moving a subtree is vacuous).
//
//	benchgate -skew-off BENCH_skew_off.json -skew-on BENCH_skew_on.json -skew-ratio 1.3
//
// Any combination of gates may run in one invocation; each flag pair is
// optional but at least one pair is required.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// testEvent is the subset of the `go test -json` event stream we read.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// benchLine matches e.g. "BenchmarkSelectFile/lru-8   20   59143 ns/op ...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op`)

// customUnits are the b.ReportMetric units the gate also tracks, all
// smaller-is-better. Each appears in the result map as "name:unit", so a
// benchmark can regress on its custom metric (e.g. the namespace's
// bytes/file footprint) without touching ns/op.
var customUnits = map[string]bool{"bytes/file": true, "allocs/file": true}

// customMetric matches "<value> <unit>" pairs after the iteration count.
var customMetric = regexp.MustCompile(`([0-9.]+) ([A-Za-z]+/[A-Za-z]+)`)

// Top-level benchmarks (no sub-benchmark path) arrive split across two
// output events — "BenchmarkFoo \t" then "       1\t 518873404 ns/op ..." —
// while sub-benchmarks arrive as one line. benchNameOnly spots the bare
// name event; resultOnly spots the measurement tail that follows it.
var (
	benchNameOnly = regexp.MustCompile(`^(Benchmark\S+)[ \t]*\n?$`)
	resultOnly    = regexp.MustCompile(`^\s+\d+\t\s*[0-9.]+ ns/op`)
)

// parse extracts benchmark -> min ns/op (plus whitelisted custom metrics,
// keyed "name:unit") from a go test -json stream.
func parse(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]float64)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	record := func(key string, v float64) {
		if prev, ok := out[key]; !ok || v < prev {
			out[key] = v
		}
	}
	pending := make(map[string]string) // package -> bare name awaiting its result event
	for sc.Scan() {
		var ev testEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate non-JSON noise in the stream
		}
		if ev.Action != "output" {
			continue
		}
		line := ev.Output
		if nm := benchNameOnly.FindStringSubmatch(line); nm != nil {
			pending[ev.Package] = nm[1]
			continue
		}
		if name := pending[ev.Package]; name != "" && resultOnly.MatchString(line) {
			line = name + " " + line
			delete(pending, ev.Package)
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		record(m[1], ns)
		for _, cm := range customMetric.FindAllStringSubmatch(line, -1) {
			if !customUnits[cm[2]] {
				continue
			}
			if v, err := strconv.ParseFloat(cm[1], 64); err == nil {
				record(m[1]+":"+cm[2], v)
			}
		}
	}
	return out, sc.Err()
}

// serveReport is the subset of cmd/octoload's BENCH_serve.json we gate.
type serveReport struct {
	OpsPerSec float64 `json:"ops_per_sec"`
	Read      struct {
		Count int64   `json:"count"`
		P99us float64 `json:"p99_us"`
	} `json:"read"`
	ReadTenants []tenantRead `json:"read_tenants"`
	TimeSeries  *struct {
		PeakOpsPerSec float64 `json:"peak_ops_per_sec"`
	} `json:"timeseries"`
	// ImbalanceRatio and Rebalance appear on sharded skew runs from PR 9 on;
	// the skew gate SKIPs loudly when a report predates them.
	ImbalanceRatio float64 `json:"imbalance_ratio"`
	Rebalance      *struct {
		Completed  int64 `json:"completed"`
		EpochFlips int64 `json:"epoch_flips"`
		FilesMoved int64 `json:"files_moved"`
	} `json:"rebalance"`
	Violations []string `json:"violations"`
}

type tenantRead struct {
	Tenant int     `json:"tenant"`
	Count  int64   `json:"count"`
	P99us  float64 `json:"p99_us"`
}

// victimTenant picks the tenant the isolation gate protects: the lowest-id
// entry of the report's per-tenant read blocks (octoload assigns it the
// heaviest weight). Returns nil for untenanted reports.
func victimTenant(rep serveReport) *tenantRead {
	var victim *tenantRead
	for i := range rep.ReadTenants {
		t := &rep.ReadTenants[i]
		if victim == nil || t.Tenant < victim.Tenant {
			victim = t
		}
	}
	return victim
}

// parseServe reads a load report's throughput.
func parseServe(path string) (serveReport, error) {
	var rep serveReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, err
	}
	return rep, nil
}

// gateServe compares serving throughput (bigger is better) and the
// tier-real read p99 latency (smaller is better) against the baseline;
// returns the number of regressions (0, 1, or 2).
func gateServe(oldPath, newPath string, threshold, latThreshold float64) int {
	base, err := parseServe(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: serve baseline:", err)
		os.Exit(2)
	}
	cur, err := parseServe(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: serve current:", err)
		os.Exit(2)
	}
	if cur.OpsPerSec <= 0 {
		fmt.Fprintln(os.Stderr, "benchgate: current serve report has no throughput")
		os.Exit(2)
	}
	if base.OpsPerSec <= 0 {
		// A zero baseline would make the floor vacuous and silently disarm
		// the gate forever; skip loudly instead (the baseline refreshes from
		// this run).
		fmt.Printf("SKIP  %-60s baseline has no throughput; serve gate skipped\n", "serve:ops_per_sec")
		return 0
	}
	if len(cur.Violations) > 0 {
		// octoload already exits non-zero on violations; belt and braces.
		fmt.Printf("SLOW  %-60s current run recorded %d invariant violations\n", "serve:ops_per_sec", len(cur.Violations))
		return 1
	}
	regressions := 0
	floor := base.OpsPerSec / threshold
	if cur.OpsPerSec < floor {
		fmt.Printf("SLOW  %-60s %12.0f ops/s vs baseline %.0f (%.2fx < 1/%.2fx gate)\n",
			"serve:ops_per_sec", cur.OpsPerSec, base.OpsPerSec, cur.OpsPerSec/base.OpsPerSec, threshold)
		regressions++
	} else {
		fmt.Printf("OK    %-60s %12.0f ops/s vs baseline %.0f (%.2fx)\n",
			"serve:ops_per_sec", cur.OpsPerSec, base.OpsPerSec, cur.OpsPerSec/base.OpsPerSec)
	}
	// The read p99 is the data plane's virtual (tier-real) latency, not a
	// wall-clock sample, so it is stable enough to gate. Baselines from
	// before the data plane (or plane-less runs) carry no read block; skip
	// loudly rather than silently disarm.
	switch {
	case base.Read.Count == 0 || base.Read.P99us <= 0:
		fmt.Printf("SKIP  %-60s baseline has no read-latency block; latency gate skipped\n", "serve:read_p99")
	case cur.Read.Count == 0 || cur.Read.P99us <= 0:
		fmt.Printf("SLOW  %-60s baseline has read latencies but current run has none (data plane disabled?)\n", "serve:read_p99")
		regressions++
	case cur.Read.P99us > base.Read.P99us*latThreshold:
		fmt.Printf("SLOW  %-60s %12.0f µs vs baseline %.0f (%.2fx > %.2fx gate)\n",
			"serve:read_p99", cur.Read.P99us, base.Read.P99us, cur.Read.P99us/base.Read.P99us, latThreshold)
		regressions++
	default:
		fmt.Printf("OK    %-60s %12.0f µs vs baseline %.0f (%.2fx)\n",
			"serve:read_p99", cur.Read.P99us, base.Read.P99us, cur.Read.P99us/base.Read.P99us)
	}
	// Peak sustained ops/s comes from the report's over-time curve: the
	// best full window, which catches a throughput knee that the whole-run
	// average smears over. Reports from before the time-series collector
	// (or runs without -window) carry no timeseries block; skip loudly
	// rather than silently disarm.
	switch {
	case base.TimeSeries == nil || base.TimeSeries.PeakOpsPerSec <= 0:
		if cur.TimeSeries != nil && cur.TimeSeries.PeakOpsPerSec > 0 {
			fmt.Printf("SKIP  %-60s baseline has no timeseries block (predates the collector); peak gate arms next run\n", "serve:peak_ops_per_sec")
		}
	case cur.TimeSeries == nil || cur.TimeSeries.PeakOpsPerSec <= 0:
		fmt.Printf("SLOW  %-60s baseline has a timeseries block but current run has none (window disabled?)\n", "serve:peak_ops_per_sec")
		regressions++
	case cur.TimeSeries.PeakOpsPerSec < base.TimeSeries.PeakOpsPerSec/threshold:
		fmt.Printf("SLOW  %-60s %12.0f ops/s vs baseline %.0f (%.2fx < 1/%.2fx gate)\n",
			"serve:peak_ops_per_sec", cur.TimeSeries.PeakOpsPerSec, base.TimeSeries.PeakOpsPerSec,
			cur.TimeSeries.PeakOpsPerSec/base.TimeSeries.PeakOpsPerSec, threshold)
		regressions++
	default:
		fmt.Printf("OK    %-60s %12.0f ops/s vs baseline %.0f (%.2fx)\n",
			"serve:peak_ops_per_sec", cur.TimeSeries.PeakOpsPerSec, base.TimeSeries.PeakOpsPerSec,
			cur.TimeSeries.PeakOpsPerSec/base.TimeSeries.PeakOpsPerSec)
	}
	// The victim-tenant gate is the multi-tenant QoS regression floor: the
	// heaviest-weight (lowest-id) tenant's read p99 must not drift up, or
	// weighted-fair isolation is eroding even if aggregate p99 holds.
	// Baselines from before the QoS layer (or untenanted runs) carry no
	// read_tenants block; skip loudly rather than silently disarm — the
	// baseline refreshes from this run and the gate arms itself next time.
	curVictim := victimTenant(cur)
	switch baseVictim := victimTenant(base); {
	case baseVictim == nil && curVictim == nil:
		// An untenanted report pair: nothing to gate, nothing to announce.
	case baseVictim == nil || baseVictim.Count == 0 || baseVictim.P99us <= 0:
		fmt.Printf("SKIP  %-60s baseline has no per-tenant read block (pre-QoS baseline?); victim gate skipped\n", "serve:victim_read_p99")
	case curVictim == nil || curVictim.Count == 0 || curVictim.P99us <= 0:
		fmt.Printf("SLOW  %-60s baseline has tenant read latencies but current run has none (tenants disabled?)\n", "serve:victim_read_p99")
		regressions++
	case curVictim.P99us > baseVictim.P99us*latThreshold:
		fmt.Printf("SLOW  %-60s %12.0f µs vs baseline %.0f (tenant %d, %.2fx > %.2fx gate)\n",
			"serve:victim_read_p99", curVictim.P99us, baseVictim.P99us, curVictim.Tenant, curVictim.P99us/baseVictim.P99us, latThreshold)
		regressions++
	default:
		fmt.Printf("OK    %-60s %12.0f µs vs baseline %.0f (tenant %d, %.2fx)\n",
			"serve:victim_read_p99", curVictim.P99us, baseVictim.P99us, curVictim.Tenant, curVictim.P99us/baseVictim.P99us)
	}
	return regressions
}

// gateOverhead compares two load reports from the same configuration — one
// with observability off, one with the hub, tracer, and HTTP endpoint on —
// and fails when instrumentation costs more throughput than the threshold
// allows. The obs plane is designed to be a nil check when off and sampled
// spans plus pull-based closures when on; this gate keeps that promise
// honest. Both runs come from the same CI job, so the comparison is
// same-machine, same-commit.
func gateOverhead(offPath, onPath string, threshold float64) int {
	off, err := parseServe(offPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: overhead-off:", err)
		os.Exit(2)
	}
	on, err := parseServe(onPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: overhead-on:", err)
		os.Exit(2)
	}
	if off.OpsPerSec <= 0 || on.OpsPerSec <= 0 {
		fmt.Fprintln(os.Stderr, "benchgate: overhead reports need nonzero ops_per_sec on both sides")
		os.Exit(2)
	}
	if on.OpsPerSec < off.OpsPerSec/threshold {
		fmt.Printf("SLOW  %-60s %12.0f ops/s instrumented vs %.0f plain (%.2fx < 1/%.2fx gate)\n",
			"serve:obs_overhead", on.OpsPerSec, off.OpsPerSec, on.OpsPerSec/off.OpsPerSec, threshold)
		return 1
	}
	fmt.Printf("OK    %-60s %12.0f ops/s instrumented vs %.0f plain (%.2fx)\n",
		"serve:obs_overhead", on.OpsPerSec, off.OpsPerSec, on.OpsPerSec/off.OpsPerSec)
	return 0
}

// gateSkew compares a skewed static-routing run against the same
// configuration with the rebalancer on. Both runs come from the same CI job
// (same machine, same commit), so the ratio is a property of the code, not
// of baseline drift. Three checks: the rebalanced run must win on ops/s by
// ratioFloor, must flatten the per-shard imbalance by imbFloor, and must
// have actually completed migrations and epoch flips.
func gateSkew(offPath, onPath string, ratioFloor, imbFloor float64) int {
	off, err := parseServe(offPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: skew-off:", err)
		os.Exit(2)
	}
	on, err := parseServe(onPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: skew-on:", err)
		os.Exit(2)
	}
	if off.OpsPerSec <= 0 || on.OpsPerSec <= 0 {
		fmt.Fprintln(os.Stderr, "benchgate: skew reports need nonzero ops_per_sec on both sides")
		os.Exit(2)
	}
	if off.ImbalanceRatio <= 0 || on.ImbalanceRatio <= 0 {
		// Reports from before the per-shard counters (pre-rebalancing
		// octoload) cannot arm this gate; skip loudly rather than silently
		// disarm — a fresh pair from this commit's octoload always carries
		// the imbalance block on -shards > 1 runs.
		fmt.Printf("SKIP  %-60s report lacks imbalance_ratio (pre-rebalancing octoload?); skew gate skipped\n", "serve:skew_speedup")
		return 0
	}
	regressions := 0
	if on.OpsPerSec < off.OpsPerSec*ratioFloor {
		fmt.Printf("SLOW  %-60s %12.0f ops/s rebalanced vs %.0f static (%.2fx < %.2fx gate)\n",
			"serve:skew_speedup", on.OpsPerSec, off.OpsPerSec, on.OpsPerSec/off.OpsPerSec, ratioFloor)
		regressions++
	} else {
		fmt.Printf("OK    %-60s %12.0f ops/s rebalanced vs %.0f static (%.2fx)\n",
			"serve:skew_speedup", on.OpsPerSec, off.OpsPerSec, on.OpsPerSec/off.OpsPerSec)
	}
	if on.ImbalanceRatio*imbFloor > off.ImbalanceRatio {
		fmt.Printf("SLOW  %-60s %12.2fx rebalanced vs %.2fx static (improved %.2fx < %.2fx gate)\n",
			"serve:skew_imbalance", on.ImbalanceRatio, off.ImbalanceRatio, off.ImbalanceRatio/on.ImbalanceRatio, imbFloor)
		regressions++
	} else {
		fmt.Printf("OK    %-60s %12.2fx rebalanced vs %.2fx static (improved %.2fx)\n",
			"serve:skew_imbalance", on.ImbalanceRatio, off.ImbalanceRatio, off.ImbalanceRatio/on.ImbalanceRatio)
	}
	switch {
	case on.Rebalance == nil:
		fmt.Printf("SKIP  %-60s skew-on report lacks a rebalance block (pre-rebalancing octoload?); vacuity check skipped\n", "serve:skew_migrations")
	case on.Rebalance.Completed == 0 || on.Rebalance.EpochFlips == 0 || on.Rebalance.FilesMoved == 0:
		fmt.Printf("SLOW  %-60s rebalanced run moved nothing (completed %d, flips %d, files %d) — the comparison is vacuous\n",
			"serve:skew_migrations", on.Rebalance.Completed, on.Rebalance.EpochFlips, on.Rebalance.FilesMoved)
		regressions++
	default:
		fmt.Printf("OK    %-60s %12d migrations, %d epoch flips, %d files moved\n",
			"serve:skew_migrations", on.Rebalance.Completed, on.Rebalance.EpochFlips, on.Rebalance.FilesMoved)
	}
	return regressions
}

// backendCalibration is the subset of cmd/octoload's BENCH_backend.json the
// backend gate checks: enough to prove the smoke run moved real bytes.
type backendCalibration struct {
	Backend string `json:"backend"`
	Tiers   []struct {
		Tier  string `json:"tier"`
		Write struct {
			Count  int64   `json:"count"`
			Bytes  int64   `json:"bytes"`
			Errors int64   `json:"errors"`
			MeanUS float64 `json:"mean_us"`
		} `json:"write"`
		Read struct {
			Count  int64   `json:"count"`
			MeanUS float64 `json:"mean_us"`
		} `json:"read"`
	} `json:"tiers"`
}

// gateBackend is a vacuity gate over the real-backend calibration report:
// it fails when the smoke run claims success but the backend did no
// physical work (no writes on some tier, zero bytes, zero wall time) —
// the failure mode where the backend silently detached and the "real" run
// measured the simulator. Reports without a real-backend block (sim runs,
// pre-backend octoload) SKIP loudly.
func gateBackend(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: backend report:", err)
		os.Exit(2)
	}
	var cal backendCalibration
	if err := json.Unmarshal(data, &cal); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: backend report:", err)
		os.Exit(2)
	}
	if cal.Backend != "real" || len(cal.Tiers) == 0 {
		fmt.Printf("SKIP  %-60s report has no real-backend block (sim run or pre-backend octoload?); backend gate skipped\n", "backend:real_io")
		return 0
	}
	regressions := 0
	var reads int64
	for _, t := range cal.Tiers {
		if t.Write.Count == 0 || t.Write.Bytes == 0 || t.Write.MeanUS <= 0 {
			fmt.Printf("SLOW  %-60s tier %s wrote %d ops / %d bytes (real backend did no physical writes)\n",
				"backend:real_io", t.Tier, t.Write.Count, t.Write.Bytes)
			regressions++
			continue
		}
		fmt.Printf("OK    %-60s tier %s: %d writes (%dMB, mean %.0fµs), %d reads, %d write errors\n",
			"backend:real_io", t.Tier, t.Write.Count, t.Write.Bytes/1e6, t.Write.MeanUS, t.Read.Count, t.Write.Errors)
		reads += t.Read.Count
	}
	if reads == 0 {
		// Writes happened but not a single replica was read back: the serve
		// path's physical reads are detached.
		fmt.Printf("SLOW  %-60s no tier recorded a physical read (serve path detached from backend)\n", "backend:real_io")
		regressions++
	}
	return regressions
}

func main() {
	var (
		oldPath      = flag.String("old", "", "baseline go test -json bench output")
		newPath      = flag.String("new", "", "current go test -json bench output")
		serveOld     = flag.String("serve-old", "", "baseline BENCH_serve.json load report")
		serveNew     = flag.String("serve-new", "", "current BENCH_serve.json load report")
		threshold    = flag.Float64("threshold", 1.25, "fail when new > old * threshold (ns/op) or new < old / threshold (ops/s)")
		latThreshold = flag.Float64("lat-threshold", 1.5, "fail when the serve report's read p99 exceeds baseline * this (virtual tier-real latency)")
		floorNS      = flag.Float64("floor-ns", 1000, "ignore benchmarks faster than this baseline (jitter floor)")
		overheadOff  = flag.String("overhead-off", "", "load report from an obs-disabled run (overhead gate)")
		overheadOn   = flag.String("overhead-on", "", "load report from the same configuration with -obs-listen/-trace on (overhead gate)")
		overheadMax  = flag.Float64("overhead-threshold", 1.05, "fail when the instrumented run's ops/s < plain / this")
		skewOff      = flag.String("skew-off", "", "load report from a skewed static-routing run (skew gate)")
		skewOn       = flag.String("skew-on", "", "load report from the same skewed configuration with -rebalance (skew gate)")
		skewRatio    = flag.Float64("skew-ratio", 1.3, "fail when the rebalanced run's ops/s < static * this")
		skewImb      = flag.Float64("skew-imbalance", 1.2, "fail when the rebalanced run improves the per-shard imbalance ratio by less than this factor")
		backendRep   = flag.String("backend-report", "", "BENCH_backend.json calibration report from a -backend real run (vacuity gate: the smoke must have moved real bytes)")
	)
	flag.Parse()
	haveBench := *oldPath != "" && *newPath != ""
	haveServe := *serveOld != "" && *serveNew != ""
	haveOverhead := *overheadOff != "" && *overheadOn != ""
	haveSkew := *skewOff != "" && *skewOn != ""
	haveBackend := *backendRep != ""
	if !haveBench && !haveServe && !haveOverhead && !haveSkew && !haveBackend {
		fmt.Fprintln(os.Stderr, "benchgate: need -old/-new, -serve-old/-serve-new, -overhead-off/-overhead-on, -skew-off/-skew-on, and/or -backend-report")
		os.Exit(2)
	}
	// Run every configured gate before deciding the exit status, so a serve
	// regression does not hide simultaneous benchmark regressions (or vice
	// versa) from the CI log.
	serveRegressions := 0
	if haveServe {
		serveRegressions = gateServe(*serveOld, *serveNew, *threshold, *latThreshold)
	}
	if haveOverhead {
		serveRegressions += gateOverhead(*overheadOff, *overheadOn, *overheadMax)
	}
	if haveSkew {
		serveRegressions += gateSkew(*skewOff, *skewOn, *skewRatio, *skewImb)
	}
	if haveBackend {
		serveRegressions += gateBackend(*backendRep)
	}
	if !haveBench {
		if serveRegressions > 0 {
			fmt.Printf("benchgate: %d serving metric(s) regressed\n", serveRegressions)
			os.Exit(1)
		}
		fmt.Println("benchgate: no regressions")
		return
	}
	oldNS, err := parse(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: baseline:", err)
		os.Exit(2)
	}
	newNS, err := parse(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: current:", err)
		os.Exit(2)
	}
	if len(newNS) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark results in", *newPath)
		os.Exit(2)
	}

	names := make([]string, 0, len(newNS))
	for name := range newNS {
		names = append(names, name)
	}
	sort.Strings(names)

	// Benchmarks present in the baseline but absent from the current run
	// must not vanish silently: a rename or pattern change that stops a
	// benchmark from running is itself a gate escape.
	var gone []string
	for name := range oldNS {
		if _, ok := newNS[name]; !ok {
			gone = append(gone, name)
		}
	}
	sort.Strings(gone)
	for _, name := range gone {
		fmt.Printf("GONE  %-60s baseline %.0f ns/op, missing from current run\n", name, oldNS[name])
	}

	regressions := 0
	for _, name := range names {
		cur := newNS[name]
		base, ok := oldNS[name]
		// Custom metrics ("name:unit", e.g. the footprint benchmark's
		// bytes/file) are deterministic counts, not timings: the jitter
		// floor does not apply, and a missing baseline means the baseline
		// predates the metric — skip loudly, the gate arms itself once the
		// baseline refreshes from this run.
		custom := strings.Contains(name, ":")
		unit := "ns/op"
		if custom {
			unit = name[strings.IndexByte(name, ':')+1:]
		}
		switch {
		case !ok && custom:
			fmt.Printf("SKIP  %-60s %12.2f %s (baseline predates this metric; gate arms next run)\n", name, cur, unit)
		case !ok:
			fmt.Printf("NEW   %-60s %12.0f ns/op (no baseline)\n", name, cur)
		case !custom && base < *floorNS:
			fmt.Printf("SKIP  %-60s %12.0f ns/op (baseline %.0f ns under jitter floor)\n", name, cur, base)
		case cur > base*(*threshold):
			fmt.Printf("SLOW  %-60s %12.2f %s vs baseline %.2f (%.2fx > %.2fx gate)\n",
				name, cur, unit, base, cur/base, *threshold)
			regressions++
		default:
			fmt.Printf("OK    %-60s %12.2f %s vs baseline %.2f (%.2fx)\n", name, cur, unit, base, cur/base)
		}
	}
	if regressions > 0 || serveRegressions > 0 {
		if regressions > 0 {
			fmt.Printf("benchgate: %d benchmark(s) regressed beyond %.0f%%\n", regressions, (*threshold-1)*100)
		}
		if serveRegressions > 0 {
			fmt.Printf("benchgate: %d serving metric(s) regressed\n", serveRegressions)
		}
		os.Exit(1)
	}
	if len(gone) > 0 {
		// Disappearance is reported loudly but does not fail the gate: the
		// baseline refreshes from this run, so an intentional removal
		// clears itself, while the GONE lines make an accidental one
		// visible in the job log.
		fmt.Printf("benchgate: no regressions (%d baseline benchmark(s) disappeared; see GONE lines)\n", len(gone))
		return
	}
	fmt.Println("benchgate: no regressions")
}
