package experiments

import (
	"fmt"

	"octostore/internal/cluster"
	"octostore/internal/core"
	"octostore/internal/dfs"
	"octostore/internal/eval"
	"octostore/internal/jobs"
	"octostore/internal/policy"
	"octostore/internal/sim"
	"octostore/internal/workload"
)

// TierAwareScheduling is an extension experiment beyond the paper: its
// evaluation ends by observing that "current schedulers do not account for
// the presence of multiple storage tiers" and that location-based hit
// ratios exceed access-based ones by 15-20% (Section 7.2), motivating
// tier-aware scheduling research. This experiment quantifies that headroom
// in our reproduction: the Octopus++/XGB system is run with increasing
// scheduler tier-affinity, from tier-blind (0) to fully tier-aware (1).
func TierAwareScheduling(o Options) ([]*eval.Table, error) {
	o.applyDefaults()
	p, err := o.profile("fb")
	if err != nil {
		return nil, err
	}
	tr := workload.Generate(p, o.Seed)
	t := &eval.Table{
		ID:     "tieraware",
		Title:  "Extension: scheduler tier-affinity headroom (Octopus++/XGB, FB)",
		Header: []string{"TierAffinity", "HR(access)", "BHR(access)", "HR(location)", "Mean completion (s)"},
	}
	for _, affinity := range []float64{0.01, 0.30, 0.60, 1.00} {
		stats, err := runWithAffinity(tr, o, affinity)
		if err != nil {
			return nil, err
		}
		reads, memReads, blocks, memLoc, bytes, memBytes := stats.Totals()
		var mean float64
		for i := range stats.Jobs {
			mean += stats.Jobs[i].CompletionTime().Seconds()
		}
		if len(stats.Jobs) > 0 {
			mean /= float64(len(stats.Jobs))
		}
		t.AddRow(
			fmt.Sprintf("%.2f", affinity),
			eval.Pct(eval.HitRatio(memReads, reads)),
			eval.Pct(eval.ByteHitRatio(memBytes, bytes)),
			eval.Pct(eval.Ratio(float64(memLoc), float64(blocks))),
			fmt.Sprintf("%.1f", mean),
		)
	}
	return []*eval.Table{t}, nil
}

func runWithAffinity(tr *workload.Trace, o Options, affinity float64) (*jobs.RunStats, error) {
	engine := sim.NewEngine()
	cl, err := cluster.New(engine, o.clusterConfig())
	if err != nil {
		return nil, err
	}
	fs, err := dfs.New(cl, dfs.Config{Mode: dfs.ModeOctopus, Seed: o.Seed, ClientRate: 2000e6})
	if err != nil {
		return nil, err
	}
	ctx := core.NewContext(fs, core.DefaultConfig())
	lcfg := learnerConfig(o.Seed)
	down, err := policy.NewDowngrade("xgb", ctx, lcfg)
	if err != nil {
		return nil, err
	}
	up, err := policy.NewUpgrade("xgb", ctx, lcfg)
	if err != nil {
		return nil, err
	}
	mgr := core.NewManager(ctx, down, up)
	mgr.Start()
	defer mgr.Stop()
	opts := jobs.DefaultOptions()
	opts.Seed = o.Seed
	opts.TierAffinity = affinity
	return jobs.Run(fs, tr, opts, nil)
}
