package experiments

import (
	"octostore/internal/dfs"
	"octostore/internal/eval"
	"octostore/internal/storage"
	"octostore/internal/workload"
)

// upgradeSystems is the Figure 12 / Table 4 comparison set: initial
// placement pinned to the HDD tier, upgrades alone decide what moves up
// (Section 7.4).
func upgradeSystems() []System {
	systems := []System{{Name: "HDFS", Mode: dfs.ModeHDFS}}
	for _, p := range []struct{ name, acronym string }{
		{"OSA", "osa"}, {"LRFU", "lrfu"}, {"EXD", "exd"}, {"XGB", "xgb"},
	} {
		systems = append(systems, System{Name: p.name, Mode: dfs.ModePinnedHDD, Up: p.acronym})
	}
	return systems
}

var upgradeMemo = map[memoKey][]endToEndRun{}

func upgradeCached(o Options) ([]endToEndRun, error) {
	o.applyDefaults()
	key := memoKey{workers: o.Workers, seed: o.Seed, fast: o.Fast, name: "fb-upgrade"}
	if runs, ok := upgradeMemo[key]; ok {
		return runs, nil
	}
	runs, err := runEndToEnd(o, "fb", upgradeSystems())
	if err != nil {
		return nil, err
	}
	upgradeMemo[key] = runs
	return runs, nil
}

// Fig12UpgradeCompletion regenerates Figure 12: percent reduction in
// completion time over HDFS for the upgrade policies in isolation (FB).
func Fig12UpgradeCompletion(o Options) ([]*eval.Table, error) {
	runs, err := upgradeCached(o)
	if err != nil {
		return nil, err
	}
	t := &eval.Table{
		ID:     "fig12",
		Title:  "Upgrade policies: percent reduction in completion time over HDFS (FB)",
		Header: append([]string{"Policy"}, binHeaders()...),
	}
	base := runs[0].stats.MeanCompletionByBin()
	for _, run := range runs[1:] {
		mean := run.stats.MeanCompletionByBin()
		row := []string{run.system.Name}
		for b := workload.Bin(0); b < workload.NumBins; b++ {
			row = append(row, eval.Pct(eval.Reduction(base[b].Seconds(), mean[b].Seconds())))
		}
		t.AddRow(row...)
	}
	return []*eval.Table{t}, nil
}

// Table4UpgradeStats regenerates Table 4: per upgrade policy, the GB read
// from memory, the GB upgraded to memory, Byte Accuracy (read/upgraded)
// and Byte Coverage (memory reads / all reads).
func Table4UpgradeStats(o Options) ([]*eval.Table, error) {
	runs, err := upgradeCached(o)
	if err != nil {
		return nil, err
	}
	t := &eval.Table{
		ID:     "table4",
		Title:  "Upgrade policy statistics (FB)",
		Header: []string{"Policy", "GB Read from MEM", "GB Upgraded to MEM", "Byte Accuracy", "Byte Coverage"},
	}
	for _, run := range runs[1:] {
		_, _, _, _, bytes, memBytes := run.stats.Totals()
		upgraded := run.stats.FSFinal.BytesUpgradedTo[storage.Memory] -
			run.stats.FSBaseline.BytesUpgradedTo[storage.Memory]
		t.AddRow(run.system.Name,
			gb(memBytes),
			gb(upgraded),
			eval.F2(eval.ByteAccuracy(memBytes, upgraded)),
			eval.F2(eval.ByteCoverage(memBytes, bytes)))
	}
	return []*eval.Table{t}, nil
}
