package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"octostore/internal/eval"
	"octostore/internal/gbt"
	"octostore/internal/ml"
	"octostore/internal/storage"
	"octostore/internal/workload"
)

// mlSample is one labelled training point with its generation time.
type mlSample struct {
	x  []float64
	y  float64
	at time.Duration
}

// sampleParams controls offline dataset construction from a trace.
type sampleParams struct {
	spec     ml.FeatureSpec
	window   time.Duration
	period   time.Duration // periodic sampling interval
	fraction float64       // fraction of files sampled per period
	seed     int64
}

func defaultSampleParams(spec ml.FeatureSpec, window time.Duration, o Options) sampleParams {
	return sampleParams{
		spec:     spec,
		window:   window,
		period:   3 * time.Minute,
		fraction: 0.20,
		seed:     o.Seed,
	}
}

// collectSamples replays a trace through a tracker and generates training
// points the way the live system does (Section 4.2): periodically for a
// sample of the files, plus one guaranteed-positive point right after each
// access.
func collectSamples(tr *workload.Trace, p sampleParams) []mlSample {
	tracker := ml.NewTracker(p.spec.K)
	rng := rand.New(rand.NewSource(p.seed))
	pipe := ml.Pipeline{Spec: p.spec, Window: p.window}

	// Timeline events: file creations, accesses (job arrivals), periodic
	// sampling boundaries.
	type event struct {
		at     time.Duration
		kind   int // 0 create, 1 access, 2 periodic
		file   string
		size   int64
		fileID int64
	}
	var events []event
	ids := make(map[string]int64, len(tr.Files))
	for i, f := range tr.Files {
		ids[f.Path] = int64(i)
		events = append(events, event{at: f.CreatedAt, kind: 0, file: f.Path, size: f.Size, fileID: int64(i)})
	}
	for _, j := range tr.Jobs {
		if id, ok := ids[j.InputPath]; ok {
			events = append(events, event{at: j.Arrival, kind: 1, fileID: id})
		}
	}
	for t := p.period; t <= tr.Duration; t += p.period {
		events = append(events, event{at: t, kind: 2})
	}
	sort.SliceStable(events, func(a, b int) bool {
		if events[a].at != events[b].at {
			return events[a].at < events[b].at
		}
		return events[a].kind < events[b].kind
	})

	var samples []mlSample
	sample := func(rec *ml.FileRecord, now time.Duration) {
		ref := now - p.window
		if ref < 0 {
			return
		}
		refT := epoch().Add(ref)
		if rec.Created.After(refT) {
			return
		}
		x, y := pipe.TrainingPoint(rec, refT)
		samples = append(samples, mlSample{x: x, y: y, at: now})
	}
	for _, ev := range events {
		switch ev.kind {
		case 0:
			tracker.OnCreate(ev.fileID, ev.size, epoch().Add(ev.at))
		case 1:
			rec := tracker.OnAccess(ev.fileID, epoch().Add(ev.at))
			sample(rec, ev.at)
		case 2:
			// Deterministic iteration: tracker.Each order is random, so
			// walk ids in order.
			for id := int64(0); id < int64(len(tr.Files)); id++ {
				if rng.Float64() >= p.fraction {
					continue
				}
				if rec, ok := tracker.Get(id); ok {
					sample(rec, ev.at)
				}
			}
		}
	}
	return samples
}

func epoch() time.Time { return time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC) }

// splitSamples partitions samples by time fraction boundaries.
func splitSamples(samples []mlSample, total time.Duration, trainFrac, valFrac float64) (train, val, test []mlSample) {
	trainEnd := time.Duration(trainFrac * float64(total))
	valEnd := time.Duration((trainFrac + valFrac) * float64(total))
	for _, s := range samples {
		switch {
		case s.at <= trainEnd:
			train = append(train, s)
		case s.at <= valEnd:
			val = append(val, s)
		default:
			test = append(test, s)
		}
	}
	return
}

func toMatrix(samples []mlSample, width int) (*gbt.Matrix, []float64) {
	x := gbt.NewMatrix(width)
	y := make([]float64, 0, len(samples))
	for _, s := range samples {
		x.AppendRow(s.x)
		y = append(y, s.y)
	}
	return x, y
}

// trainAndScore fits the paper's model on the train split and scores the
// test split.
func trainAndScore(train, test []mlSample, width int) (scores, labels []float64, err error) {
	xTrain, yTrain := toMatrix(train, width)
	model, err := gbt.Train(xTrain, yTrain, gbt.PaperParams())
	if err != nil {
		return nil, nil, err
	}
	for _, s := range test {
		scores = append(scores, model.Predict(s.x))
		labels = append(labels, s.y)
	}
	return scores, labels, nil
}

// modelWindows returns the (downgrade, upgrade) class windows used by the
// offline model experiments, scaled in Fast mode.
func (o Options) modelWindows() (down, up time.Duration) {
	if o.Fast {
		return 45 * time.Minute, 10 * time.Minute
	}
	return 90 * time.Minute, 15 * time.Minute
}

// Fig14ROC regenerates Figure 14: ROC/AUC for the XGB downgrade and
// upgrade models on both workloads, with a 4h/1h/1h-style
// train/validation/test split (Section 7.6). The four (workload, model)
// sweeps are independent train-and-score cells, fanned out across
// Options.Parallel workers with byte-identical tables at any level.
func Fig14ROC(o Options) ([]*eval.Table, error) {
	o.applyDefaults()
	downW, upW := o.modelWindows()
	type cell struct {
		wl     string
		model  string
		window time.Duration
	}
	var cells []cell
	for _, wl := range []string{"fb", "cmu"} {
		cells = append(cells, cell{wl, "downgrade", downW}, cell{wl, "upgrade", upW})
	}
	rows := make([][]string, len(cells))
	err := runCells(o.parallelism(), len(cells), func(i int) error {
		c := cells[i]
		p, err := o.profile(c.wl)
		if err != nil {
			return err
		}
		tr := workload.Generate(p, o.Seed)
		spec := ml.DefaultFeatureSpec()
		samples := collectSamples(tr, defaultSampleParams(spec, c.window, o))
		train, val, test := splitSamples(samples, tr.Duration, 4.0/6, 1.0/6)
		train = append(train, val...) // validation folded into training after tuning
		if len(train) == 0 || len(test) == 0 {
			return fmt.Errorf("fig14: empty split (%s/%s)", c.wl, c.model)
		}
		scores, labels, err := trainAndScore(train, test, spec.Width())
		if err != nil {
			return err
		}
		rows[i] = []string{tr.Name, c.model, fmt.Sprintf("%d", len(samples)),
			eval.F2(eval.AUC(scores, labels)),
			eval.Pct(eval.Accuracy(scores, labels, 0.5))}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := &eval.Table{
		ID:     "fig14",
		Title:  "XGB model ROC evaluation (train 4/6, validate 1/6, test 1/6)",
		Header: []string{"Workload", "Model", "Samples", "Test AUC", "Accuracy@0.5"},
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return []*eval.Table{t}, nil
}

// Fig15FeatureAblation regenerates Figure 15: ROC/AUC of the FB downgrade
// model with selected features removed or the access-history length varied.
func Fig15FeatureAblation(o Options) ([]*eval.Table, error) {
	o.applyDefaults()
	downW, _ := o.modelWindows()
	p, err := o.profile("fb")
	if err != nil {
		return nil, err
	}
	tr := workload.Generate(p, o.Seed)
	variants := []struct {
		name string
		spec ml.FeatureSpec
	}{
		{"with 12 accesses (default)", ml.DefaultFeatureSpec()},
		{"without filesize", func() ml.FeatureSpec { s := ml.DefaultFeatureSpec(); s.UseSize = false; return s }()},
		{"without creation", func() ml.FeatureSpec { s := ml.DefaultFeatureSpec(); s.UseCreation = false; return s }()},
		{"with 6 accesses", func() ml.FeatureSpec { s := ml.DefaultFeatureSpec(); s.K = 6; return s }()},
		{"with 18 accesses", func() ml.FeatureSpec { s := ml.DefaultFeatureSpec(); s.K = 18; return s }()},
	}
	// Each ablation variant re-collects and re-trains over the shared
	// read-only trace: independent cells, fanned out.
	rows := make([][]string, len(variants))
	err = runCells(o.parallelism(), len(variants), func(i int) error {
		v := variants[i]
		samples := collectSamples(tr, defaultSampleParams(v.spec, downW, o))
		train, val, test := splitSamples(samples, tr.Duration, 4.0/6, 1.0/6)
		train = append(train, val...)
		if len(train) == 0 || len(test) == 0 {
			return fmt.Errorf("fig15: empty split for %q", v.name)
		}
		scores, labels, err := trainAndScore(train, test, v.spec.Width())
		if err != nil {
			return err
		}
		rows[i] = []string{v.name, eval.F2(eval.AUC(scores, labels)), eval.Pct(eval.Accuracy(scores, labels, 0.5))}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := &eval.Table{
		ID:     "fig15",
		Title:  "Feature ablation for the FB downgrade model",
		Header: []string{"Variant", "Test AUC", "Accuracy@0.5"},
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return []*eval.Table{t}, nil
}

// Fig16LearningModes regenerates Figure 16: prediction accuracy over time
// for incremental learning, hourly retraining, and one-shot training, on
// an FB workload whose access patterns drift between segments.
func Fig16LearningModes(o Options) ([]*eval.Table, error) {
	o.applyDefaults()
	downW, _ := o.modelWindows()
	segments := 6
	segLen := time.Hour
	if o.Fast {
		segments = 3
	}
	// The class window must fit inside the first segment, or sliding the
	// reference time one window back yields nothing to train on.
	window := downW
	if window > segLen/2 {
		window = segLen / 2
	}
	// The paper's premise is that access patterns evolve as users and jobs
	// come and go (Section 4). Model that drift by alternating the FB
	// profile with a shifted variant whose reuse structure differs
	// (periodic re-scans instead of short-term locality): a one-shot model
	// trained on hour 1 faces genuinely different patterns later.
	fb := workload.FB()
	drifted := workload.FB()
	drifted.Name = "FBdrift"
	drifted.TemporalLocality = 0.05
	drifted.PeriodicFraction = 0.70
	drifted.ScanPeriodMin = 40 * time.Minute
	drifted.ScanPeriodMax = 100 * time.Minute
	tr := workload.GenerateEvolving([]workload.Profile{fb, drifted}, segLen, segments, o.Seed)
	spec := ml.DefaultFeatureSpec()
	sp := defaultSampleParams(spec, window, o)
	if o.Fast {
		sp.period = 2 * time.Minute
	}
	samples := collectSamples(tr, sp)

	// Bucket samples per segment.
	buckets := make([][]mlSample, segments)
	for _, s := range samples {
		idx := int(s.at / segLen)
		if idx >= segments {
			idx = segments - 1
		}
		buckets[idx] = append(buckets[idx], s)
	}
	if len(buckets[0]) == 0 {
		return nil, fmt.Errorf("fig16: no samples in first segment")
	}

	measure := func(m *gbt.Model, bucket []mlSample) float64 {
		var scores, labels []float64
		for _, s := range bucket {
			scores = append(scores, m.Predict(s.x))
			labels = append(labels, s.y)
		}
		return eval.Accuracy(scores, labels, 0.5)
	}

	params := gbt.PaperParams()
	params.MaxTrees = 300
	// The three learning modes are independent model sweeps over the shared
	// read-only buckets: each trains its own hour-1 model (gbt.Train is
	// deterministic, so the incremental and one-shot starting points are
	// identical to the sequential formulation) and walks the segments
	// measure-then-train. Fan them out as cells.
	accs := make([][]float64, 3) // [mode][hour-1] accuracy; NaN-free, gaps skipped below
	err := runCells(o.parallelism(), 3, func(mode int) error {
		x0, y0 := toMatrix(buckets[0], spec.Width())
		model, err := gbt.Train(x0, y0, params)
		if err != nil {
			return err
		}
		acc := make([]float64, segments)
		for h := 1; h < segments; h++ {
			bucket := buckets[h]
			if len(bucket) == 0 {
				continue
			}
			// Accuracy is measured on fresh samples before they are trained
			// on.
			acc[h] = measure(model, bucket)
			xb, yb := toMatrix(bucket, spec.Width())
			switch mode {
			case 0: // incremental: update with this segment's samples
				if err := model.Update(xb, yb, 10); err != nil {
					return err
				}
			case 1: // retrain: fresh model on this segment only
				if m, err := gbt.Train(xb, yb, params); err == nil {
					model = m
				}
			case 2: // one-shot: hour-1 model used unchanged
			}
		}
		accs[mode] = acc
		return nil
	})
	if err != nil {
		return nil, err
	}

	t := &eval.Table{
		ID:     "fig16",
		Title:  "Prediction accuracy over time: incremental vs retrain vs one-shot (FB with drift)",
		Header: []string{"Hour", "Incremental", "Retrain hourly", "One-shot"},
	}
	for h := 1; h < segments; h++ {
		if len(buckets[h]) == 0 {
			continue
		}
		t.AddRow(fmt.Sprintf("%d", h+1),
			eval.Pct(accs[0][h]), eval.Pct(accs[1][h]), eval.Pct(accs[2][h]))
	}
	return []*eval.Table{t}, nil
}

// Fig17WorkloadSwitch regenerates Figure 17: incremental-model accuracy
// while the workload alternates between FB and CMU at three switching
// frequencies. Accuracy dips at each switch and the dips shrink as the
// model has seen both workloads.
func Fig17WorkloadSwitch(o Options) ([]*eval.Table, error) {
	o.applyDefaults()
	downW, _ := o.modelWindows()
	totalSegments := map[string]struct {
		segLen   time.Duration
		segments int
	}{
		"switch 6h":   {6 * time.Hour, 2},
		"switch 3h":   {3 * time.Hour, 4},
		"switch 1.5h": {90 * time.Minute, 8},
	}
	if o.Fast {
		totalSegments = map[string]struct {
			segLen   time.Duration
			segments int
		}{
			"switch 1h":  {time.Hour, 2},
			"switch 30m": {30 * time.Minute, 4},
		}
	}
	names := make([]string, 0, len(totalSegments))
	for name := range totalSegments {
		names = append(names, name)
	}
	sort.Strings(names)

	// Each switching frequency is an independent generate-sample-train
	// sweep; fan them out and assemble rows in the stable name order.
	spec := ml.DefaultFeatureSpec()
	rowsByName := make([][][]string, len(names))
	err := runCells(o.parallelism(), len(names), func(i int) error {
		name := names[i]
		cfg := totalSegments[name]
		tr := workload.GenerateEvolving(
			[]workload.Profile{workload.FB(), workload.CMU()}, cfg.segLen, cfg.segments, o.Seed)
		sp := defaultSampleParams(spec, downW, o)
		samples := collectSamples(tr, sp)
		// Evaluate in fixed windows, training incrementally afterwards.
		window := cfg.segLen / 2
		nWindows := int(tr.Duration / window)
		var model *gbt.Model
		params := gbt.PaperParams()
		params.MaxTrees = 300
		cursor := 0
		var rows [][]string
		for w := 0; w < nWindows; w++ {
			hi := cursor
			limit := time.Duration(w+1) * window
			for hi < len(samples) && samples[hi].at <= limit {
				hi++
			}
			bucket := samples[cursor:hi]
			cursor = hi
			if len(bucket) == 0 {
				continue
			}
			if model != nil {
				var scores, labels []float64
				for _, s := range bucket {
					scores = append(scores, model.Predict(s.x))
					labels = append(labels, s.y)
				}
				rows = append(rows, []string{name,
					fmt.Sprintf("%5.1fh", (time.Duration(w+1) * window).Hours()),
					eval.Pct(eval.Accuracy(scores, labels, 0.5))})
			}
			xb, yb := toMatrix(bucket, spec.Width())
			if model == nil {
				if m, err := gbt.Train(xb, yb, params); err == nil {
					model = m
				}
			} else if err := model.Update(xb, yb, 6); err != nil {
				return err
			}
		}
		rowsByName[i] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := &eval.Table{
		ID:     "fig17",
		Title:  "Incremental accuracy while alternating FB and CMU workloads",
		Header: []string{"Variation", "Window", "Accuracy"},
	}
	for _, rows := range rowsByName {
		for _, row := range rows {
			t.AddRow(row...)
		}
	}
	return []*eval.Table{t}, nil
}

// OverheadsReport regenerates the Section 7.7 numbers: time to add a
// training sample, time per prediction, model memory, and per-file
// metadata footprint.
func OverheadsReport(o Options) ([]*eval.Table, error) {
	o.applyDefaults()
	downW, _ := o.modelWindows()
	p, err := o.profile("fb")
	if err != nil {
		return nil, err
	}
	tr := workload.Generate(p, o.Seed)
	spec := ml.DefaultFeatureSpec()
	samples := collectSamples(tr, defaultSampleParams(spec, downW, o))
	if len(samples) < 100 {
		return nil, fmt.Errorf("overheads: too few samples (%d)", len(samples))
	}
	// Training cost: amortised per sample via the incremental learner.
	lcfg := ml.DefaultLearnerConfig()
	lcfg.Params.MaxTrees = 200
	learner := ml.NewLearner(spec.Width(), lcfg)
	addStart := time.Now()
	for _, s := range samples {
		learner.Add(s.x, s.y)
	}
	addTotal := time.Since(addStart)

	// Prediction cost.
	model := learner.Model()
	if model == nil {
		return nil, fmt.Errorf("overheads: learner never trained")
	}
	predStart := time.Now()
	const predIters = 20000
	for i := 0; i < predIters; i++ {
		model.Predict(samples[i%len(samples)].x)
	}
	predTotal := time.Since(predStart)

	// Tracker footprint.
	tracker := ml.NewTracker(spec.K)
	for i, f := range tr.Files {
		tracker.OnCreate(int64(i), f.Size, epoch())
	}
	for _, j := range tr.Jobs {
		tracker.OnAccess(int64(0), epoch().Add(j.Arrival))
	}
	perFile := tracker.FootprintBytes() / tracker.Len()

	t := &eval.Table{
		ID:     "overheads",
		Title:  "System overheads (Section 7.7)",
		Header: []string{"Metric", "Value"},
	}
	t.AddRow("training samples", fmt.Sprintf("%d", len(samples)))
	t.AddRow("avg time per training sample", fmt.Sprintf("%.3f ms", float64(addTotal.Microseconds())/float64(len(samples))/1000))
	t.AddRow("avg time per prediction", fmt.Sprintf("%.1f ns", float64(predTotal.Nanoseconds())/predIters))
	t.AddRow("model memory", fmt.Sprintf("%.1f KB", float64(model.ApproxMemoryBytes())/float64(storage.KB)))
	t.AddRow("model trees", fmt.Sprintf("%d", model.NumTrees()))
	t.AddRow("tracker bytes per file", fmt.Sprintf("%d B", perFile))
	return []*eval.Table{t}, nil
}
