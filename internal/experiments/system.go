package experiments

import (
	"fmt"

	"octostore/internal/cluster"
	"octostore/internal/core"
	"octostore/internal/dfs"
	"octostore/internal/jobs"
	"octostore/internal/ml"
	"octostore/internal/policy"
	"octostore/internal/sim"
	"octostore/internal/workload"
)

// System names one of the compared configurations: a dfs mode plus a
// downgrade/upgrade policy pair ("" disables that side).
type System struct {
	Name string
	Mode dfs.Mode
	Down string
	Up   string
}

// The configurations compared in the end-to-end evaluation (Section 7.2).
func endToEndSystems() []System {
	return []System{
		{Name: "HDFS", Mode: dfs.ModeHDFS},
		{Name: "OctopusFS", Mode: dfs.ModeOctopus},
		{Name: "LRU-OSA", Mode: dfs.ModeOctopus, Down: "lru", Up: "osa"},
		{Name: "LRFU", Mode: dfs.ModeOctopus, Down: "lrfu", Up: "lrfu"},
		{Name: "EXD", Mode: dfs.ModeOctopus, Down: "exd", Up: "exd"},
		{Name: "XGB", Mode: dfs.ModeOctopus, Down: "xgb", Up: "xgb"},
	}
}

// runArtifacts exposes the live components of a finished run for metric
// extraction.
type runArtifacts struct {
	fs      *dfs.FileSystem
	manager *core.Manager
	downXGB *policy.XGBDown
	upXGB   *policy.XGBUp
	stats   *jobs.RunStats
}

// learnerConfig tunes the XGB policies for simulation-scale runs: the
// paper's tree shape, but a bounded ensemble so six-hour replays stay
// cheap.
func learnerConfig(seed int64) ml.LearnerConfig {
	cfg := ml.DefaultLearnerConfig()
	cfg.Seed = seed
	cfg.Params.MaxTrees = 200
	cfg.MinTrainSamples = 300
	cfg.UpdateBatch = 200
	cfg.UpdateRounds = 3
	return cfg
}

// runSystem executes a trace on a freshly built system and returns the
// collected statistics.
func runSystem(sys System, tr *workload.Trace, ccfg cluster.Config, seed int64) (*runArtifacts, error) {
	engine := sim.NewEngine()
	cl, err := cluster.New(engine, ccfg)
	if err != nil {
		return nil, err
	}
	fs, err := dfs.New(cl, dfs.Config{Mode: sys.Mode, Seed: seed, ClientRate: 2000e6})
	if err != nil {
		return nil, err
	}
	art := &runArtifacts{fs: fs}
	if sys.Down != "" || sys.Up != "" {
		cfg := core.DefaultConfig()
		ctx := core.NewContext(fs, cfg)
		lcfg := learnerConfig(seed)
		down, err := policy.NewDowngrade(sys.Down, ctx, lcfg)
		if err != nil {
			return nil, err
		}
		up, err := policy.NewUpgrade(sys.Up, ctx, lcfg)
		if err != nil {
			return nil, err
		}
		if d, ok := down.(*policy.XGBDown); ok {
			art.downXGB = d
		}
		if u, ok := up.(*policy.XGBUp); ok {
			art.upXGB = u
		}
		art.manager = core.NewManager(ctx, down, up)
		art.manager.Start()
	}
	stats, err := jobs.Run(fs, tr, jobs.Options{Seed: seed}, nil)
	if err != nil {
		return nil, fmt.Errorf("system %s: %w", sys.Name, err)
	}
	if art.manager != nil {
		art.manager.Stop()
	}
	art.stats = stats
	return art, nil
}

// endToEndRun is one (workload, system) execution.
type endToEndRun struct {
	system System
	stats  *jobs.RunStats
	arts   *runArtifacts
}

// runEndToEnd executes all end-to-end systems over a workload. Results are
// memoised per (options, workload) because Figures 6-9 share the same runs.
// Each system is an isolated deterministic simulation over the shared
// read-only trace, so the cells fan out across Options.Parallel workers
// with byte-identical results.
func runEndToEnd(o Options, workloadName string, systems []System) ([]endToEndRun, error) {
	o.applyDefaults()
	p, err := o.profile(workloadName)
	if err != nil {
		return nil, err
	}
	tr := workload.Generate(p, o.Seed)
	runs := make([]endToEndRun, len(systems))
	err = runCells(o.parallelism(), len(systems), func(i int) error {
		arts, err := runSystem(systems[i], tr, o.clusterConfig(), o.Seed)
		if err != nil {
			return err
		}
		runs[i] = endToEndRun{system: systems[i], stats: arts.stats, arts: arts}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return runs, nil
}

type memoKey struct {
	workers int
	seed    int64
	fast    bool
	name    string
}

var endToEndMemo = map[memoKey][]endToEndRun{}

// endToEndCached memoises the shared Figure 6-9 run set.
func endToEndCached(o Options, workloadName string) ([]endToEndRun, error) {
	o.applyDefaults()
	key := memoKey{workers: o.Workers, seed: o.Seed, fast: o.Fast, name: workloadName}
	if runs, ok := endToEndMemo[key]; ok {
		return runs, nil
	}
	runs, err := runEndToEnd(o, workloadName, endToEndSystems())
	if err != nil {
		return nil, err
	}
	endToEndMemo[key] = runs
	return runs, nil
}
