package experiments

import (
	"runtime"
	"sync"
)

// Every experiment cell — one (system, policy, workload) or (scenario,
// system) execution — is an independent deterministic simulation: it builds
// its own engine, cluster, file system, and seeded RNGs, and shares only
// read-only inputs (a pre-generated trace, a scenario descriptor) with its
// siblings. runCells fans such cells out across a bounded worker pool;
// because each cell writes only its own slot of a pre-sized result slice,
// the assembled tables are byte-identical to a sequential run regardless
// of the parallelism level.

// parallelism resolves Options.Parallel to a worker count: 0 and 1 run
// sequentially (the zero value preserves the historical behaviour),
// negative values mean "all cores" (bounded by GOMAXPROCS), and positive
// values are taken as given.
func (o Options) parallelism() int {
	switch {
	case o.Parallel < 0:
		return runtime.GOMAXPROCS(0)
	case o.Parallel == 0:
		return 1
	default:
		return o.Parallel
	}
}

// runCells executes run(0..n-1) on up to `parallel` goroutines and returns
// the error of the lowest-indexed failing cell (matching the error a
// sequential run would surface first). With parallel <= 1 it degrades to a
// plain loop with early exit.
func runCells(parallel, n int, run func(i int) error) error {
	if parallel > n {
		parallel = n
	}
	if parallel <= 1 {
		for i := 0; i < n; i++ {
			if err := run(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				errs[i] = run(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
