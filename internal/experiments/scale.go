package experiments

import (
	"fmt"

	"octostore/internal/dfs"
	"octostore/internal/eval"
	"octostore/internal/workload"
)

// Fig13Scalability regenerates Figure 13: completion-time reduction and
// efficiency improvement of the XGB policies over HDFS as the cluster
// scales (the paper: 11 to 88 EC2 workers with proportionally scaled
// workloads).
func Fig13Scalability(o Options) ([]*eval.Table, error) {
	o.applyDefaults()
	scales := []int{1, 2, 4, 8}
	if o.Fast {
		scales = []int{1, 2}
	}
	tCompletion := &eval.Table{
		ID:     "fig13a",
		Title:  "XGB vs HDFS: percent reduction in completion time by cluster size (FB)",
		Header: append([]string{"Workers"}, binHeaders()...),
	}
	tEfficiency := &eval.Table{
		ID:     "fig13b",
		Title:  "XGB vs HDFS: percent improvement in cluster efficiency by cluster size (FB)",
		Header: append([]string{"Workers"}, binHeaders()...),
	}
	for _, scale := range scales {
		ccfg := o.clusterConfig()
		ccfg.Workers *= scale
		p, err := o.profile("fb")
		if err != nil {
			return nil, err
		}
		// Scale the workload with the cluster, as the paper does on EC2:
		// more jobs draw on a proportionally larger file population (the
		// per-bin distinct-file factors already tie files to job counts).
		p.NumJobs *= scale
		tr := workload.Generate(p, o.Seed)
		base, err := runSystem(System{Name: "HDFS", Mode: dfs.ModeHDFS}, tr, ccfg, o.Seed)
		if err != nil {
			return nil, err
		}
		xgb, err := runSystem(System{Name: "XGB", Mode: dfs.ModeOctopus, Down: "xgb", Up: "xgb"}, tr, ccfg, o.Seed)
		if err != nil {
			return nil, err
		}
		baseMean := base.stats.MeanCompletionByBin()
		xgbMean := xgb.stats.MeanCompletionByBin()
		baseTask := base.stats.TaskSecondsByBin()
		xgbTask := xgb.stats.TaskSecondsByBin()
		rowC := []string{fmt.Sprintf("%d", ccfg.Workers)}
		rowE := []string{fmt.Sprintf("%d", ccfg.Workers)}
		for b := workload.Bin(0); b < workload.NumBins; b++ {
			rowC = append(rowC, eval.Pct(eval.Reduction(baseMean[b].Seconds(), xgbMean[b].Seconds())))
			rowE = append(rowE, eval.Pct(eval.Reduction(baseTask[b], xgbTask[b])))
		}
		tCompletion.AddRow(rowC...)
		tEfficiency.AddRow(rowE...)
	}
	return []*eval.Table{tCompletion, tEfficiency}, nil
}
