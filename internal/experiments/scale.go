package experiments

import (
	"fmt"

	"octostore/internal/cluster"
	"octostore/internal/dfs"
	"octostore/internal/eval"
	"octostore/internal/workload"
)

// Fig13Scalability regenerates Figure 13: completion-time reduction and
// efficiency improvement of the XGB policies over HDFS as the cluster
// scales (the paper: 11 to 88 EC2 workers with proportionally scaled
// workloads).
func Fig13Scalability(o Options) ([]*eval.Table, error) {
	o.applyDefaults()
	scales := []int{1, 2, 4, 8}
	if o.Fast {
		scales = []int{1, 2}
	}
	tCompletion := &eval.Table{
		ID:     "fig13a",
		Title:  "XGB vs HDFS: percent reduction in completion time by cluster size (FB)",
		Header: append([]string{"Workers"}, binHeaders()...),
	}
	tEfficiency := &eval.Table{
		ID:     "fig13b",
		Title:  "XGB vs HDFS: percent improvement in cluster efficiency by cluster size (FB)",
		Header: append([]string{"Workers"}, binHeaders()...),
	}
	// Each (scale, system) execution is an isolated simulation; the two
	// systems of a scale share that scale's pre-generated read-only trace.
	// Fan the grid out and assemble rows in scale order.
	type cell struct {
		ccfg cluster.Config
		tr   *workload.Trace
		sys  System
	}
	cells := make([]cell, 0, 2*len(scales))
	for _, scale := range scales {
		ccfg := o.clusterConfig()
		ccfg.Workers *= scale
		p, err := o.profile("fb")
		if err != nil {
			return nil, err
		}
		// Scale the workload with the cluster, as the paper does on EC2:
		// more jobs draw on a proportionally larger file population (the
		// per-bin distinct-file factors already tie files to job counts).
		p.NumJobs *= scale
		tr := workload.Generate(p, o.Seed)
		cells = append(cells,
			cell{ccfg: ccfg, tr: tr, sys: System{Name: "HDFS", Mode: dfs.ModeHDFS}},
			cell{ccfg: ccfg, tr: tr, sys: System{Name: "XGB", Mode: dfs.ModeOctopus, Down: "xgb", Up: "xgb"}})
	}
	arts := make([]*runArtifacts, len(cells))
	err := runCells(o.parallelism(), len(cells), func(i int) error {
		a, err := runSystem(cells[i].sys, cells[i].tr, cells[i].ccfg, o.Seed)
		if err != nil {
			return err
		}
		arts[i] = a
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < len(cells); i += 2 {
		base, xgb := arts[i], arts[i+1]
		baseMean := base.stats.MeanCompletionByBin()
		xgbMean := xgb.stats.MeanCompletionByBin()
		baseTask := base.stats.TaskSecondsByBin()
		xgbTask := xgb.stats.TaskSecondsByBin()
		rowC := []string{fmt.Sprintf("%d", cells[i].ccfg.Workers)}
		rowE := []string{fmt.Sprintf("%d", cells[i].ccfg.Workers)}
		for b := workload.Bin(0); b < workload.NumBins; b++ {
			rowC = append(rowC, eval.Pct(eval.Reduction(baseMean[b].Seconds(), xgbMean[b].Seconds())))
			rowE = append(rowE, eval.Pct(eval.Reduction(baseTask[b], xgbTask[b])))
		}
		tCompletion.AddRow(rowC...)
		tEfficiency.AddRow(rowE...)
	}
	return []*eval.Table{tCompletion, tEfficiency}, nil
}
