package experiments

import (
	"fmt"
	"sort"
	"time"

	"octostore/internal/cluster"
	"octostore/internal/core"
	"octostore/internal/dfs"
	"octostore/internal/eval"
	"octostore/internal/policy"
	"octostore/internal/sim"
	"octostore/internal/storage"
)

// dfsioConfig parameterises the Figure 2 microbenchmark.
type dfsioConfig struct {
	totalBytes     int64
	fileBytes      int64
	writersPerNode int
	buckets        int
}

func (o Options) dfsioConfig() dfsioConfig {
	if o.Fast {
		return dfsioConfig{
			totalBytes:     9 * storage.GB,
			fileBytes:      512 * storage.MB,
			writersPerNode: 2,
			buckets:        6,
		}
	}
	return dfsioConfig{
		totalBytes:     84 * storage.GB,
		fileBytes:      1 * storage.GB,
		writersPerNode: 2,
		buckets:        14,
	}
}

// Fig2DFSIO regenerates Figure 2: DFSIO-style average write and read
// throughput per node as a function of cumulative data volume, for the
// four systems (HDFS, HDFS with cache, OctopusFS, Octopus++). The paper's
// crossover — tiered benefits collapsing once aggregate memory is
// exhausted, and Octopus++ sustaining them — shows up as the series'
// shapes.
func Fig2DFSIO(o Options) ([]*eval.Table, error) {
	o.applyDefaults()
	cfg := o.dfsioConfig()
	systems := []System{
		{Name: "HDFS", Mode: dfs.ModeHDFS},
		{Name: "HDFS+Cache", Mode: dfs.ModeHDFSCache},
		{Name: "OctopusFS", Mode: dfs.ModeOctopus},
		{Name: "Octopus++", Mode: dfs.ModeOctopus, Down: "xgb", Up: "xgb"},
	}
	writeTable := &eval.Table{
		ID:     "fig2a",
		Title:  "DFSIO average write throughput per node (MB/s) vs data written (GB)",
		Header: []string{"Data (GB)", "HDFS", "HDFS+Cache", "OctopusFS", "Octopus++"},
	}
	readTable := &eval.Table{
		ID:     "fig2b",
		Title:  "DFSIO average read throughput per node (MB/s) vs data read (GB)",
		Header: []string{"Data (GB)", "HDFS", "HDFS+Cache", "OctopusFS", "Octopus++"},
	}
	writeSeries := make([][]float64, len(systems))
	readSeries := make([][]float64, len(systems))
	err := runCells(o.parallelism(), len(systems), func(i int) error {
		w, r, err := runDFSIO(systems[i], o, cfg)
		if err != nil {
			return err
		}
		writeSeries[i], readSeries[i] = w, r
		return nil
	})
	if err != nil {
		return nil, err
	}
	bucketGB := float64(cfg.totalBytes) / float64(cfg.buckets) / float64(storage.GB)
	for i := 0; i < cfg.buckets; i++ {
		wRow := []string{fmt.Sprintf("%.1f", bucketGB*float64(i+1))}
		rRow := []string{fmt.Sprintf("%.1f", bucketGB*float64(i+1))}
		for s := range systems {
			wRow = append(wRow, fmt.Sprintf("%.0f", writeSeries[s][i]))
			rRow = append(rRow, fmt.Sprintf("%.0f", readSeries[s][i]))
		}
		writeTable.AddRow(wRow...)
		readTable.AddRow(rRow...)
	}
	return []*eval.Table{writeTable, readTable}, nil
}

// runDFSIO writes and then reads the benchmark dataset on one system,
// returning per-bucket MB/s-per-node series for both phases.
func runDFSIO(sys System, o Options, cfg dfsioConfig) (writeMBs, readMBs []float64, err error) {
	engine := sim.NewEngine()
	cl, err := cluster.New(engine, o.clusterConfig())
	if err != nil {
		return nil, nil, err
	}
	fs, err := dfs.New(cl, dfs.Config{Mode: sys.Mode, Seed: o.Seed, ClientRate: 2000e6})
	if err != nil {
		return nil, nil, err
	}
	var mgr *core.Manager
	if sys.Down != "" || sys.Up != "" {
		ctx := core.NewContext(fs, core.DefaultConfig())
		lcfg := learnerConfig(o.Seed)
		down, derr := policy.NewDowngrade(sys.Down, ctx, lcfg)
		if derr != nil {
			return nil, nil, derr
		}
		up, uerr := policy.NewUpgrade(sys.Up, ctx, lcfg)
		if uerr != nil {
			return nil, nil, uerr
		}
		mgr = core.NewManager(ctx, down, up)
		mgr.Start()
		defer mgr.Stop()
	}

	nFiles := int(cfg.totalBytes / cfg.fileBytes)
	paths := make([]string, nFiles)
	for i := range paths {
		paths[i] = fmt.Sprintf("/dfsio/f%03d", i)
	}
	workers := cfg.writersPerNode * cl.Size()
	nodes := cl.Nodes()

	// Write phase: `workers` concurrent streams create files in order.
	writeDone := make([]time.Time, nFiles)
	next := 0
	active := 0
	var failure error
	var launch func()
	launch = func() {
		for active < workers && next < nFiles {
			idx := next
			next++
			active++
			fs.Create(paths[idx], cfg.fileBytes, func(_ *dfs.File, cerr error) {
				active--
				writeDone[idx] = engine.Now()
				if cerr != nil && failure == nil {
					failure = cerr
				}
				launch()
			})
		}
	}
	writeStart := engine.Now()
	launch()
	for (active > 0 || next < nFiles) && engine.Step() {
	}
	if failure != nil {
		return nil, nil, fmt.Errorf("dfsio write (%s): %w", sys.Name, failure)
	}
	writeMBs = bucketThroughput(writeStart, writeDone, cfg, cl.Size())

	// Read phase: the same streams read files in creation order, each
	// stream pinned to a node (block reads prefer local replicas).
	readDone := make([]time.Time, nFiles)
	next, active = 0, 0
	var readFile func(idx int, node int)
	readFile = func(idx, node int) {
		f, oerr := fs.Open(paths[idx])
		if oerr != nil {
			if failure == nil {
				failure = oerr
			}
			readDone[idx] = engine.Now()
			active--
			launchRead(&next, &active, workers, nFiles, readFile)
			return
		}
		fs.RecordAccess(f)
		blocks := f.Blocks()
		var step func(i int)
		step = func(i int) {
			if i >= len(blocks) {
				readDone[idx] = engine.Now()
				active--
				launchRead(&next, &active, workers, nFiles, readFile)
				return
			}
			fs.ReadBlock(blocks[i], nodes[node%len(nodes)], func(_ dfs.ReadResult, rerr error) {
				if rerr != nil && failure == nil {
					failure = rerr
				}
				step(i + 1)
			})
		}
		step(0)
	}
	readStart := engine.Now()
	launchReadInit(&next, &active, workers, nFiles, readFile)
	for (active > 0 || next < nFiles) && engine.Step() {
	}
	if failure != nil {
		return nil, nil, fmt.Errorf("dfsio read (%s): %w", sys.Name, failure)
	}
	readMBs = bucketThroughput(readStart, readDone, cfg, cl.Size())
	return writeMBs, readMBs, nil
}

// launchReadInit starts the initial batch of read streams.
func launchReadInit(next, active *int, workers, nFiles int, readFile func(int, int)) {
	for *active < workers && *next < nFiles {
		idx := *next
		*next = idx + 1
		*active = *active + 1
		readFile(idx, idx%workers)
	}
}

// launchRead starts the next file on a freed stream.
func launchRead(next, active *int, workers, nFiles int, readFile func(int, int)) {
	if *next < nFiles {
		idx := *next
		*next = idx + 1
		*active = *active + 1
		readFile(idx, idx%workers)
	}
}

// bucketThroughput converts per-file completion times into the cumulative
// average MB/s per node at each data-volume bucket, which is how DFSIO
// reports progressive throughput. Completions are sorted first because the
// concurrent streams finish out of order (and, under processor sharing,
// often simultaneously).
func bucketThroughput(start time.Time, done []time.Time, cfg dfsioConfig, nodes int) []float64 {
	sorted := append([]time.Time(nil), done...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Before(sorted[b]) })
	perBucket := len(sorted) / cfg.buckets
	if perBucket == 0 {
		perBucket = 1
	}
	out := make([]float64, 0, cfg.buckets)
	for b := 0; b < cfg.buckets; b++ {
		hi := (b + 1) * perBucket
		if b == cfg.buckets-1 || hi > len(sorted) {
			hi = len(sorted)
		}
		end := sorted[hi-1]
		bytes := float64(hi) * float64(cfg.fileBytes)
		dt := end.Sub(start).Seconds()
		if dt <= 0 {
			dt = 1e-9
		}
		out = append(out, bytes/dt/float64(nodes)/1e6)
	}
	return out
}
