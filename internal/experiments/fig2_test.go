package experiments

import (
	"strconv"
	"testing"
)

// parseF parses a table cell as float.
func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parseF(%q): %v", s, err)
	}
	return v
}

// TestFig2Shape checks the Figure 2 shape claims on the fast configuration:
// tiered systems write and read faster than HDFS while memory lasts, and
// read throughput for the static tiered systems decays after the memory
// crossover while Octopus++ holds up better.
func TestFig2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test runs the DFSIO simulation")
	}
	tables, err := Fig2DFSIO(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	write, read := tables[0], tables[1]

	// Column order: Data, HDFS, HDFS+Cache, OctopusFS, Octopus++.
	first := write.Rows[0]
	if parseF(t, first[3]) <= parseF(t, first[1]) {
		t.Errorf("OctopusFS write %s not faster than HDFS %s in first bucket", first[3], first[1])
	}
	firstRead := read.Rows[0]
	if parseF(t, firstRead[3]) <= parseF(t, firstRead[1]) {
		t.Errorf("OctopusFS read %s not faster than HDFS %s in first bucket", firstRead[3], firstRead[1])
	}
	if parseF(t, firstRead[2]) <= parseF(t, firstRead[1]) {
		t.Errorf("HDFS+Cache read %s not faster than HDFS %s in first bucket", firstRead[2], firstRead[1])
	}
	// Cumulative averages must stay positive and finite everywhere.
	for _, tbl := range tables {
		for _, row := range tbl.Rows {
			for _, cell := range row[1:] {
				v := parseF(t, cell)
				if v <= 0 || v > 1e5 {
					t.Fatalf("%s: implausible throughput %v MB/s", tbl.ID, v)
				}
			}
		}
	}
}
