// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 7). Each experiment is a function returning one or
// more eval.Tables whose rows mirror the series plotted in the paper;
// cmd/octobench prints them and bench_test.go wraps them as benchmarks.
package experiments

import (
	"fmt"
	"sort"
	"time"

	"octostore/internal/cluster"
	"octostore/internal/eval"
	"octostore/internal/storage"
	"octostore/internal/workload"
)

// Options scopes an experiment run.
type Options struct {
	// Workers is the cluster size (paper testbed: 11).
	Workers int
	// Seed drives workload generation and placement.
	Seed int64
	// Fast shrinks the workload and cluster for unit tests and smoke runs;
	// shapes still hold but absolute values are noisier.
	Fast bool
	// Scenario restricts the "scenarios" experiment to one named catalog
	// scenario; empty replays the whole catalog.
	Scenario string
	// Parallel is how many experiment cells (independent simulations) run
	// concurrently: 0 or 1 sequential, negative all cores, otherwise the
	// given worker count. Results are identical at any level because each
	// cell is deterministic and isolated (see parallel.go).
	Parallel int
}

// DefaultOptions reproduces the paper's testbed scale.
func DefaultOptions() Options {
	return Options{Workers: 11, Seed: 1}
}

func (o *Options) applyDefaults() {
	if o.Workers <= 0 {
		o.Workers = 11
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// clusterConfig builds the cluster config for the options.
func (o Options) clusterConfig() cluster.Config {
	if o.Fast {
		return cluster.Config{Workers: 3, SlotsPerNode: 4, Spec: fastWorkerSpec()}
	}
	cfg := cluster.PaperConfig()
	cfg.Workers = o.Workers
	return cfg
}

// fastWorkerSpec is a shrunken node for Fast runs: enough memory pressure
// to exercise the policies at a fraction of the event count.
func fastWorkerSpec() storage.NodeSpec {
	return storage.NodeSpec{
		{Media: storage.Memory, Capacity: 1 * storage.GB, ReadBW: 4000e6, WriteBW: 3000e6, Count: 1},
		{Media: storage.SSD, Capacity: 8 * storage.GB, ReadBW: 500e6, WriteBW: 400e6, Count: 1},
		{Media: storage.HDD, Capacity: 64 * storage.GB, ReadBW: 160e6, WriteBW: 140e6, Count: 2},
	}
}

// profile returns the workload profile for a name ("fb" or "cmu"), scaled
// down in Fast mode.
func (o Options) profile(name string) (workload.Profile, error) {
	var p workload.Profile
	switch name {
	case "fb", "FB":
		p = workload.FB()
	case "cmu", "CMU":
		p = workload.CMU()
	default:
		return p, fmt.Errorf("experiments: unknown workload %q", name)
	}
	if o.Fast {
		p.NumJobs /= 5
		p.Duration = 2 * time.Hour
		// Cap job sizes at bin D so files fit the shrunken cluster.
		p = workload.CapProfile(p, workload.BinD)
	}
	return p, nil
}

// Runner is an experiment entry point.
type Runner func(Options) ([]*eval.Table, error)

// registry maps experiment ids to runners.
var registry = map[string]Runner{
	"fig2":      Fig2DFSIO,
	"table3":    Table3JobBins,
	"fig5":      Fig5CDFs,
	"fig6":      Fig6CompletionTime,
	"fig7":      Fig7Efficiency,
	"fig8":      Fig8TierAccess,
	"fig9":      Fig9HitRatios,
	"fig10":     Fig10DowngradeCompletion,
	"fig11":     Fig11DowngradeHitRatios,
	"fig12":     Fig12UpgradeCompletion,
	"table4":    Table4UpgradeStats,
	"fig13":     Fig13Scalability,
	"fig14":     Fig14ROC,
	"fig15":     Fig15FeatureAblation,
	"fig16":     Fig16LearningModes,
	"fig17":     Fig17WorkloadSwitch,
	"overheads": OverheadsReport,
	"scenarios": Scenarios,
	"tieraware": TierAwareScheduling,
}

// IDs returns the sorted experiment identifiers.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Get looks up an experiment by id.
func Get(id string) (Runner, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (want one of %v)", id, IDs())
	}
	return r, nil
}

// durationMinutes formats a duration as decimal minutes.
func durationMinutes(d time.Duration) string {
	return fmt.Sprintf("%.1f", d.Minutes())
}

// gb formats bytes as decimal gigabytes.
func gb(bytes int64) string {
	return fmt.Sprintf("%.2f", float64(bytes)/float64(storage.GB))
}
