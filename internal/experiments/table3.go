package experiments

import (
	"fmt"
	"time"

	"octostore/internal/eval"
	"octostore/internal/workload"
)

// Table3JobBins regenerates Table 3: for each workload and bin, the share
// of jobs, the share of cluster resources (task-seconds), the share of
// I/O, and the aggregate task time in minutes. Resource and I/O shares are
// measured by executing the trace on the HDFS baseline, matching how the
// paper characterises its workloads.
func Table3JobBins(o Options) ([]*eval.Table, error) {
	o.applyDefaults()
	t := &eval.Table{
		ID:     "table3",
		Title:  "Job size distributions (jobs binned by input data size)",
		Header: []string{"Workload", "Bin", "Data size", "% of Jobs", "% of Resources", "% of I/O", "Task Time (mins)"},
	}
	ranges := []string{"0-128MB", "128-512MB", "0.5-1GB", "1-2GB", "2-5GB", "5-10GB"}
	for _, wl := range []string{"fb", "cmu"} {
		runs, err := endToEndCached(o, wl)
		if err != nil {
			return nil, err
		}
		base := runs[0] // HDFS baseline characterises the workload
		jobCounts := base.stats.JobCountByBin()
		taskSecs := base.stats.TaskSecondsByBin()
		ioBytes := base.stats.BytesReadByBin()
		var totalJobs int
		var totalTask, totalIO float64
		for b := workload.Bin(0); b < workload.NumBins; b++ {
			totalJobs += jobCounts[b]
			totalTask += taskSecs[b]
			totalIO += float64(ioBytes[b])
		}
		for b := workload.Bin(0); b < workload.NumBins; b++ {
			t.AddRow(
				base.stats.Trace.Name,
				b.String(),
				ranges[b],
				eval.Pct(eval.Ratio(float64(jobCounts[b]), float64(totalJobs))),
				eval.Pct(eval.Ratio(taskSecs[b], totalTask)),
				eval.Pct(eval.Ratio(float64(ioBytes[b]), totalIO)),
				durationMinutes(time.Duration(taskSecs[b]*float64(time.Second))),
			)
		}
	}
	return []*eval.Table{t}, nil
}

// Fig5CDFs regenerates Figure 5: cumulative distribution functions of job
// input size, file size, and per-file access frequency for both traces.
// Rows report the CDF at representative quantiles.
func Fig5CDFs(o Options) ([]*eval.Table, error) {
	o.applyDefaults()
	quantiles := []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.99}
	var tables []*eval.Table
	for _, wl := range []string{"fb", "cmu"} {
		p, err := o.profile(wl)
		if err != nil {
			return nil, err
		}
		tr := workload.Generate(p, o.Seed)
		var jobMB, fileMB, freq []float64
		for _, j := range tr.Jobs {
			jobMB = append(jobMB, float64(j.InputBytes)/(1<<20))
		}
		for _, f := range tr.Files {
			fileMB = append(fileMB, float64(f.Size)/(1<<20))
		}
		for _, c := range tr.AccessCounts() {
			freq = append(freq, float64(c))
		}
		t := &eval.Table{
			ID:     "fig5-" + wl,
			Title:  "CDF quantiles: job data size, file size, access frequency (" + wl + ")",
			Header: []string{"Quantile", "Job size (MB)", "File size (MB)", "Accesses"},
		}
		for _, q := range quantiles {
			t.AddRow(
				fmt.Sprintf("p%02.0f", q*100),
				eval.F2(eval.Quantile(jobMB, q)),
				eval.F2(eval.Quantile(fileMB, q)),
				eval.F2(eval.Quantile(freq, q)),
			)
		}
		tables = append(tables, t)
	}
	return tables, nil
}
