package experiments

import (
	"testing"

	"octostore/internal/dfs"
	"octostore/internal/eval"
	"octostore/internal/workload"
)

// TestDebugXGBEngagement is a diagnostic harness (run with -run DebugXGB
// -v): it executes one full-scale FB run with the XGB policies and reports
// whether the learners engaged, how much data moved, and the resulting hit
// ratios. It asserts only weak invariants; its value is the -v output.
func TestDebugXGBEngagement(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	o := DefaultOptions()
	p, err := o.profile("fb")
	if err != nil {
		t.Fatal(err)
	}
	tr := workload.Generate(p, o.Seed)
	arts, err := runSystem(System{Name: "XGB", Mode: dfs.ModeOctopus, Down: "xgb", Up: "xgb"}, tr, o.clusterConfig(), o.Seed)
	if err != nil {
		t.Fatal(err)
	}
	mm := arts.manager.Metrics()
	t.Logf("manager: %+v", mm)
	t.Logf("monitor: done=%d failed=%d repairs=%d",
		arts.manager.Monitor().MovesDone(), arts.manager.Monitor().MovesFailed(), arts.manager.Monitor().Repairs())
	for name, pl := range map[string]interface {
		SamplesSeen() int64
		Trainings() int64
		Updates() int64
		RollingError() float64
		Ready() bool
	}{
		"down": arts.downXGB.Pipeline().Learner,
		"up":   arts.upXGB.Pipeline().Learner,
	} {
		trees := 0
		switch name {
		case "down":
			if m := arts.downXGB.Pipeline().Learner.Model(); m != nil {
				trees = m.NumTrees()
			}
		case "up":
			if m := arts.upXGB.Pipeline().Learner.Model(); m != nil {
				trees = m.NumTrees()
			}
		}
		t.Logf("%s learner: samples=%d trainings=%d updates=%d err=%.3f trees=%d ready=%v",
			name, pl.SamplesSeen(), pl.Trainings(), pl.Updates(), pl.RollingError(), trees, pl.Ready())
	}
	reads, memReads, blocks, memLoc, bytes, memBytes := arts.stats.Totals()
	t.Logf("HR access=%s BHR=%s | HR location=%s | reads=%d blocks=%d",
		eval.Pct(eval.HitRatio(memReads, reads)),
		eval.Pct(eval.ByteHitRatio(memBytes, bytes)),
		eval.Pct(eval.Ratio(float64(memLoc), float64(blocks))), reads, blocks)
	for i, f := range arts.fs.UnderReplicatedFiles() {
		if i >= 5 {
			break
		}
		b := f.Blocks()[0]
		layout := ""
		for _, r := range b.Replicas() {
			layout += r.Media().String() + "/" + r.State().String() + " "
		}
		t.Logf("under-replicated: %s repl=%d block0: %s", f.Path(), f.Replication(), layout)
	}
	if mm.DowngradesScheduled == 0 {
		t.Error("no downgrades happened")
	}
	if mm.UpgradesScheduled == 0 {
		t.Error("XGB upgrade policy never scheduled an upgrade")
	}
}
