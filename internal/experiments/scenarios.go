package experiments

import (
	"fmt"

	"octostore/internal/dfs"
	"octostore/internal/eval"
	"octostore/internal/scenario"
)

// scenarioSystems are the configurations each scenario replays against: the
// static tiered baseline and the paper's learned policies.
func scenarioSystems() []scenario.System {
	return []scenario.System{
		{Name: "OctopusFS", Mode: dfs.ModeOctopus},
		{Name: "LRU-OSA", Mode: dfs.ModeOctopus, Down: "lru", Up: "osa"},
		{Name: "XGB", Mode: dfs.ModeOctopus, Down: "xgb", Up: "xgb"},
	}
}

// Scenarios replays the scenario catalog (or the single scenario named by
// Options.Scenario) against the compared systems with the invariant checker
// enabled, and reports throughput, completion time, policy activity, and
// the checker's verdict per replay. A non-zero violation count fails the
// experiment: a scenario result is only meaningful when every replayed
// event left the system consistent.
func Scenarios(o Options) ([]*eval.Table, error) {
	o.applyDefaults()
	catalog := scenario.Catalog()
	if o.Scenario != "" {
		sc, err := scenario.Get(o.Scenario)
		if err != nil {
			return nil, err
		}
		catalog = []scenario.Scenario{sc}
	}
	perf := &eval.Table{
		ID:    "scenarios",
		Title: "Scenario replays: workload metrics per system (invariant checker enabled)",
		Header: []string{"Scenario", "System", "Jobs", "Mean CT (min)", "P95 CT (min)",
			"Read (GB)", "MB/s", "Mem hit"},
	}
	activity := &eval.Table{
		ID:    "scenarios-activity",
		Title: "Scenario replays: policy decisions and invariant checks",
		Header: []string{"Scenario", "System", "Upgrades", "Downgrades", "Deletes",
			"Repairs", "Events", "Checks", "Violations", "Lost blocks"},
	}
	opts := scenario.Options{Seed: o.Seed, Fast: o.Fast}
	if !o.Fast {
		// Fast mode pins the shrunken topology, exactly like
		// Options.clusterConfig does for every other experiment.
		opts.Workers = o.Workers
	}
	// Each (scenario, system) replay is an isolated deterministic
	// simulation; fan the grid out and assemble rows in grid order so the
	// tables are identical at any parallelism level.
	systems := scenarioSystems()
	type cell struct {
		sc  scenario.Scenario
		sys scenario.System
	}
	var cells []cell
	for _, sc := range catalog {
		for _, sys := range systems {
			cells = append(cells, cell{sc: sc, sys: sys})
		}
	}
	results := make([]*scenario.Result, len(cells))
	err := runCells(o.parallelism(), len(cells), func(i int) error {
		res, err := scenario.Run(cells[i].sc, cells[i].sys, opts)
		if err != nil {
			return fmt.Errorf("scenarios: %w", err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		sc, sys := cells[i].sc, cells[i].sys
		if len(res.Violations) > 0 {
			return nil, fmt.Errorf("scenarios: %s on %s violated invariants: %v",
				sc.Name, sys.Name, res.Violations)
		}
		perf.AddRow(sc.Name, sys.Name,
			fmt.Sprintf("%d", res.Jobs),
			durationMinutes(res.MeanCompletion),
			durationMinutes(res.P95Completion),
			gb(res.BytesRead),
			fmt.Sprintf("%.1f", res.ThroughputMBps),
			eval.Pct(res.MemHitRatio))
		activity.AddRow(sc.Name, sys.Name,
			fmt.Sprintf("%d", res.Upgrades),
			fmt.Sprintf("%d", res.Downgrades),
			fmt.Sprintf("%d", res.ReplicaDeletes),
			fmt.Sprintf("%d", res.Repairs),
			fmt.Sprintf("%d", res.Events),
			fmt.Sprintf("%d", res.AccountingChecks+res.DeepChecks),
			fmt.Sprintf("%d", len(res.Violations)),
			fmt.Sprintf("%d", res.DataLossBlocks))
	}
	return []*eval.Table{perf, activity}, nil
}
