package experiments

import (
	"reflect"
	"strconv"
	"strings"
	"testing"

	"octostore/internal/eval"
	"octostore/internal/ml"
	"octostore/internal/workload"
)

func fastOpts() Options { return Options{Fast: true, Seed: 1} }

// parsePct converts "12.3%" to 0.123.
func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("parsePct(%q): %v", s, err)
	}
	return v / 100
}

func TestIDsAndGet(t *testing.T) {
	ids := IDs()
	// 16 paper artifacts (Figures 2, 5-17 and Tables 3-4 share some ids),
	// the Section 7.7 overheads report, and the tier-aware extension.
	if len(ids) != 19 {
		t.Fatalf("experiments registered = %d, want 19", len(ids))
	}
	for _, id := range ids {
		if _, err := Get(id); err != nil {
			t.Fatalf("Get(%q): %v", id, err)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestAllExperimentsRunFast(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in non-short mode only")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			runner, err := Get(id)
			if err != nil {
				t.Fatal(err)
			}
			tables, err := runner(fastOpts())
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tbl := range tables {
				if tbl.ID == "" || tbl.Title == "" || len(tbl.Header) == 0 {
					t.Fatalf("malformed table %+v", tbl)
				}
				if len(tbl.Rows) == 0 {
					t.Fatalf("table %s has no rows", tbl.ID)
				}
				for _, row := range tbl.Rows {
					if len(row) != len(tbl.Header) {
						t.Fatalf("table %s row width %d != header %d", tbl.ID, len(row), len(tbl.Header))
					}
				}
			}
		})
	}
}

// TestParallelRunsAreDeterministic is the harness-parallelism acceptance
// check: every experiment cell is an isolated deterministic simulation, so
// the assembled tables must be byte-identical whether the cells ran
// sequentially or fanned out across a worker pool.
func TestParallelRunsAreDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario replays in non-short mode only")
	}
	runTables := func(parallel int) []*eval.Table {
		o := fastOpts()
		o.Parallel = parallel
		tables, err := Scenarios(o)
		if err != nil {
			t.Fatalf("scenarios with parallel=%d: %v", parallel, err)
		}
		return tables
	}
	sequential := runTables(1)
	parallel := runTables(4)
	if len(sequential) != len(parallel) {
		t.Fatalf("table count diverged: %d sequential vs %d parallel", len(sequential), len(parallel))
	}
	for i := range sequential {
		if !reflect.DeepEqual(sequential[i], parallel[i]) {
			t.Errorf("table %s diverged between sequential and parallel runs:\nsequential: %+v\nparallel:   %+v",
				sequential[i].ID, sequential[i], parallel[i])
		}
	}
}

// TestModelSweepsParallelDeterministic extends the parallelism acceptance
// check to the fig14-17 model sweeps: the train-and-score cells share only
// read-only traces, so fanning them out must not change a byte of output.
func TestModelSweepsParallelDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("model training in non-short mode only")
	}
	for _, id := range []string{"fig14", "fig15", "fig16", "fig17"} {
		runner, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		run := func(parallel int) []*eval.Table {
			o := fastOpts()
			o.Parallel = parallel
			tables, err := runner(o)
			if err != nil {
				t.Fatalf("%s with parallel=%d: %v", id, parallel, err)
			}
			return tables
		}
		sequential := run(1)
		parallel := run(4)
		if !reflect.DeepEqual(sequential, parallel) {
			t.Errorf("%s diverged between sequential and parallel runs", id)
		}
	}
}

func TestFig6XGBBeatsBaselineOnAverage(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end comparison in non-short mode only")
	}
	tables, err := Fig6CompletionTime(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	fb := tables[0]
	// Locate the XGB and OctopusFS rows and compare their mean reduction
	// across non-empty bins: automated movement should beat static
	// placement overall.
	mean := func(rowName string) float64 {
		for _, row := range fb.Rows {
			if row[0] != rowName {
				continue
			}
			sum, n := 0.0, 0
			for _, cell := range row[1:] {
				v := parsePct(t, cell)
				if v != 0 {
					sum += v
					n++
				}
			}
			if n == 0 {
				return 0
			}
			return sum / float64(n)
		}
		t.Fatalf("row %q missing", rowName)
		return 0
	}
	xgb := mean("XGB")
	if xgb <= 0 {
		t.Fatalf("XGB mean reduction = %.3f, want positive", xgb)
	}
}

func TestTable3BinSharesSumToOne(t *testing.T) {
	if testing.Short() {
		t.Skip("uses cached end-to-end runs")
	}
	tables, err := Table3JobBins(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	perWorkload := map[string]float64{}
	for _, row := range tbl.Rows {
		perWorkload[row[0]] += parsePct(t, row[3])
	}
	for wl, sum := range perWorkload {
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("%s job shares sum to %.3f", wl, sum)
		}
	}
}

func TestCollectSamplesShape(t *testing.T) {
	o := fastOpts()
	p, err := o.profile("fb")
	if err != nil {
		t.Fatal(err)
	}
	tr := workload.Generate(p, 1)
	downW, _ := o.modelWindows()
	spec := defaultSampleParams(ml.DefaultFeatureSpec(), downW, o)
	samples := collectSamples(tr, spec)
	if len(samples) < 50 {
		t.Fatalf("samples = %d, want a meaningful dataset", len(samples))
	}
	var pos int
	for _, s := range samples {
		if len(s.x) != spec.spec.Width() {
			t.Fatalf("sample width %d", len(s.x))
		}
		if s.y == 1 {
			pos++
		}
		if s.at < 0 || s.at > tr.Duration {
			t.Fatalf("sample time %v outside trace", s.at)
		}
	}
	if pos == 0 || pos == len(samples) {
		t.Fatalf("degenerate labels: %d positives of %d", pos, len(samples))
	}
}
