package experiments

import (
	"octostore/internal/eval"
	"octostore/internal/storage"
	"octostore/internal/workload"
)

// Fig6CompletionTime regenerates Figure 6: percent reduction in average
// job completion time over HDFS, per bin, for each system, on both
// workloads.
func Fig6CompletionTime(o Options) ([]*eval.Table, error) {
	var tables []*eval.Table
	for _, wl := range []string{"fb", "cmu"} {
		runs, err := endToEndCached(o, wl)
		if err != nil {
			return nil, err
		}
		t := &eval.Table{
			ID:     "fig6-" + wl,
			Title:  "Percent reduction in completion time over HDFS (" + wl + ")",
			Header: append([]string{"System"}, binHeaders()...),
		}
		base := runs[0].stats.MeanCompletionByBin()
		for _, run := range runs[1:] {
			mean := run.stats.MeanCompletionByBin()
			row := []string{run.system.Name}
			for b := workload.Bin(0); b < workload.NumBins; b++ {
				row = append(row, eval.Pct(eval.Reduction(base[b].Seconds(), mean[b].Seconds())))
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig7Efficiency regenerates Figure 7: percent improvement in cluster
// efficiency (reduction of consumed task-seconds) over HDFS per bin.
func Fig7Efficiency(o Options) ([]*eval.Table, error) {
	var tables []*eval.Table
	for _, wl := range []string{"fb", "cmu"} {
		runs, err := endToEndCached(o, wl)
		if err != nil {
			return nil, err
		}
		t := &eval.Table{
			ID:     "fig7-" + wl,
			Title:  "Percent improvement in cluster efficiency over HDFS (" + wl + ")",
			Header: append([]string{"System"}, binHeaders()...),
		}
		base := runs[0].stats.TaskSecondsByBin()
		for _, run := range runs[1:] {
			ts := run.stats.TaskSecondsByBin()
			row := []string{run.system.Name}
			for b := workload.Bin(0); b < workload.NumBins; b++ {
				row = append(row, eval.Pct(eval.Reduction(base[b], ts[b])))
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig8TierAccess regenerates Figure 8: the distribution of block reads
// across storage tiers per bin for every system.
func Fig8TierAccess(o Options) ([]*eval.Table, error) {
	var tables []*eval.Table
	for _, wl := range []string{"fb", "cmu"} {
		runs, err := endToEndCached(o, wl)
		if err != nil {
			return nil, err
		}
		t := &eval.Table{
			ID:     "fig8-" + wl,
			Title:  "Storage tier access distribution (" + wl + ")",
			Header: []string{"System", "Bin", "MEM", "SSD", "HDD"},
		}
		for _, run := range runs {
			reads := run.stats.ReadsByBinMedia()
			for b := workload.Bin(0); b < workload.NumBins; b++ {
				total := reads[b][0] + reads[b][1] + reads[b][2]
				if total == 0 {
					continue
				}
				t.AddRow(run.system.Name, b.String(),
					eval.Pct(float64(reads[b][storage.Memory])/float64(total)),
					eval.Pct(float64(reads[b][storage.SSD])/float64(total)),
					eval.Pct(float64(reads[b][storage.HDD])/float64(total)))
			}
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig9HitRatios regenerates Figure 9: hit ratio and byte hit ratio for the
// memory tier, computed both from the tier that actually served each read
// (accesses) and from whether a memory replica existed at read time
// (locations), FB workload.
func Fig9HitRatios(o Options) ([]*eval.Table, error) {
	runs, err := endToEndCached(o, "fb")
	if err != nil {
		return nil, err
	}
	t := &eval.Table{
		ID:     "fig9",
		Title:  "Memory-tier Hit Ratio / Byte Hit Ratio, by accesses and by locations (FB)",
		Header: []string{"System", "HR(access)", "BHR(access)", "HR(location)", "BHR(location)"},
	}
	for _, run := range runs[1:] { // skip the HDFS baseline: no memory tier use
		reads, memReads, blocks, memLoc, bytes, memBytes := run.stats.Totals()
		t.AddRow(run.system.Name,
			eval.Pct(eval.HitRatio(memReads, reads)),
			eval.Pct(eval.ByteHitRatio(memBytes, bytes)),
			eval.Pct(eval.Ratio(float64(memLoc), float64(blocks))),
			eval.Pct(eval.ByteHitRatio(run.stats.LocationBytes(), bytes)))
	}
	return []*eval.Table{t}, nil
}

func binHeaders() []string {
	out := make([]string, workload.NumBins)
	for b := workload.Bin(0); b < workload.NumBins; b++ {
		out[b] = "Bin " + b.String()
	}
	return out
}
