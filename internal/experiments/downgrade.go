package experiments

import (
	"octostore/internal/dfs"
	"octostore/internal/eval"
	"octostore/internal/workload"
)

// downgradeSystems is the Figure 10/11 comparison set: every Table 1
// policy with upgrades disabled, isolating the downgrade decision
// (Section 7.3).
func downgradeSystems() []System {
	systems := []System{{Name: "HDFS", Mode: dfs.ModeHDFS}, {Name: "OctopusFS", Mode: dfs.ModeOctopus}}
	for _, p := range []struct{ name, acronym string }{
		{"LRU", "lru"}, {"LFU", "lfu"}, {"LRFU", "lrfu"},
		{"LIFE", "life"}, {"LFU-F", "lfuf"}, {"EXD", "exd"}, {"XGB", "xgb"},
	} {
		systems = append(systems, System{Name: p.name, Mode: dfs.ModeOctopus, Down: p.acronym})
	}
	return systems
}

var downgradeMemo = map[memoKey][]endToEndRun{}

func downgradeCached(o Options) ([]endToEndRun, error) {
	o.applyDefaults()
	key := memoKey{workers: o.Workers, seed: o.Seed, fast: o.Fast, name: "fb-downgrade"}
	if runs, ok := downgradeMemo[key]; ok {
		return runs, nil
	}
	runs, err := runEndToEnd(o, "fb", downgradeSystems())
	if err != nil {
		return nil, err
	}
	downgradeMemo[key] = runs
	return runs, nil
}

// Fig10DowngradeCompletion regenerates Figure 10: percent reduction in
// completion time over HDFS for all downgrade policies in isolation (FB).
func Fig10DowngradeCompletion(o Options) ([]*eval.Table, error) {
	runs, err := downgradeCached(o)
	if err != nil {
		return nil, err
	}
	t := &eval.Table{
		ID:     "fig10",
		Title:  "Downgrade policies: percent reduction in completion time over HDFS (FB)",
		Header: append([]string{"Policy"}, binHeaders()...),
	}
	base := runs[0].stats.MeanCompletionByBin()
	for _, run := range runs[1:] {
		mean := run.stats.MeanCompletionByBin()
		row := []string{run.system.Name}
		for b := workload.Bin(0); b < workload.NumBins; b++ {
			row = append(row, eval.Pct(eval.Reduction(base[b].Seconds(), mean[b].Seconds())))
		}
		t.AddRow(row...)
	}
	return []*eval.Table{t}, nil
}

// Fig11DowngradeHitRatios regenerates Figure 11: memory-tier hit ratio and
// byte hit ratio for the downgrade policies (FB).
func Fig11DowngradeHitRatios(o Options) ([]*eval.Table, error) {
	runs, err := downgradeCached(o)
	if err != nil {
		return nil, err
	}
	t := &eval.Table{
		ID:     "fig11",
		Title:  "Downgrade policies: Hit Ratio and Byte Hit Ratio (FB, memory accesses)",
		Header: []string{"Policy", "Hit Ratio", "Byte Hit Ratio"},
	}
	for _, run := range runs[1:] {
		reads, memReads, _, _, bytes, memBytes := run.stats.Totals()
		t.AddRow(run.system.Name,
			eval.Pct(eval.HitRatio(memReads, reads)),
			eval.Pct(eval.ByteHitRatio(memBytes, bytes)))
	}
	return []*eval.Table{t}, nil
}
