package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"octostore/internal/gbt"
	"octostore/internal/sim"
	"octostore/internal/storage"
)

var t0 = sim.Epoch

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestTrackerCreateAccessDelete(t *testing.T) {
	tr := NewTracker(4)
	rec := tr.OnCreate(1, 100, t0)
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if _, ok := rec.LastAccess(); ok {
		t.Fatal("fresh file claims an access")
	}
	tr.OnAccess(1, t0.Add(time.Minute))
	got, ok := tr.Get(1)
	if !ok || got.AccessCount() != 1 {
		t.Fatalf("after access: %v %v", got, ok)
	}
	last, ok := got.LastAccess()
	if !ok || !last.Equal(t0.Add(time.Minute)) {
		t.Fatalf("LastAccess = %v, %v", last, ok)
	}
	tr.OnDelete(1)
	if tr.Len() != 0 {
		t.Fatal("delete did not remove record")
	}
}

func TestTrackerAccessOnUnknownFile(t *testing.T) {
	tr := NewTracker(4)
	rec := tr.OnAccess(42, t0.Add(time.Hour))
	if rec == nil || tr.Len() != 1 {
		t.Fatal("implicit record not created")
	}
}

func TestRecordBoundedHistory(t *testing.T) {
	tr := NewTracker(4)
	rec := tr.OnCreate(1, 100, t0)
	for i := 0; i < 100; i++ {
		rec.RecordAccess(t0.Add(time.Duration(i+1) * time.Minute))
	}
	if rec.AccessCount() != 100 {
		t.Fatalf("count = %d", rec.AccessCount())
	}
	if len(rec.accesses) > 4+trackSlack {
		t.Fatalf("history grew to %d", len(rec.accesses))
	}
	// Most recent accesses must be retained.
	all := rec.AccessesBefore(t0.Add(200*time.Minute), 4)
	if len(all) != 4 {
		t.Fatalf("AccessesBefore = %d entries", len(all))
	}
	if !all[3].Equal(t0.Add(100 * time.Minute)) {
		t.Fatalf("latest retained = %v", all[3])
	}
}

func TestAccessesBeforeFiltersFuture(t *testing.T) {
	tr := NewTracker(12)
	rec := tr.OnCreate(1, 100, t0)
	for _, m := range []int{10, 20, 30, 40} {
		rec.RecordAccess(t0.Add(time.Duration(m) * time.Minute))
	}
	got := rec.AccessesBefore(t0.Add(25*time.Minute), 12)
	if len(got) != 2 {
		t.Fatalf("AccessesBefore(25m) = %d entries", len(got))
	}
	if !got[1].Equal(t0.Add(20 * time.Minute)) {
		t.Fatalf("last = %v", got[1])
	}
}

func TestAccessedIn(t *testing.T) {
	tr := NewTracker(12)
	rec := tr.OnCreate(1, 100, t0)
	rec.RecordAccess(t0.Add(30 * time.Minute))
	cases := []struct {
		from, to time.Duration
		want     bool
	}{
		{0, 30 * time.Minute, true},          // boundary: at `to` counts
		{30 * time.Minute, time.Hour, false}, // boundary: at `from` excluded
		{20 * time.Minute, 40 * time.Minute, true},
		{40 * time.Minute, 60 * time.Minute, false},
	}
	for i, c := range cases {
		if got := rec.AccessedIn(t0.Add(c.from), t0.Add(c.to)); got != c.want {
			t.Fatalf("case %d: AccessedIn = %v, want %v", i, got, c.want)
		}
	}
}

func TestFootprintBounded(t *testing.T) {
	tr := NewTracker(DefaultK)
	rec := tr.OnCreate(1, storage.GB, t0)
	for i := 0; i < 1000; i++ {
		rec.RecordAccess(t0.Add(time.Duration(i) * time.Second))
	}
	// Section 7.7: max 956 bytes per file. Our record keeps k+slack times,
	// so allow some headroom but require the same order of magnitude.
	if got := rec.FootprintBytes(); got > 2048 {
		t.Fatalf("footprint = %d bytes", got)
	}
	if tr.FootprintBytes() != rec.FootprintBytes() {
		t.Fatal("tracker footprint mismatch")
	}
}

func TestFeatureVectorMatchesPaperExample(t *testing.T) {
	// Figure 4: file of 200 MB created 8:00, accessed 9:20, 9:50, 11:10;
	// reference time 11:30. Expect deltas 80, 30, 80, 20 minutes and the
	// ref-creation delta, normalised by the max interval.
	spec := FeatureSpec{
		K:           12,
		MaxInterval: 48 * time.Hour,
		MaxSize:     4 * storage.GB,
		UseSize:     true,
		UseCreation: true,
	}
	rec := &FileRecord{ID: 1, Size: 200 * storage.MB, Created: t0, maxKeep: 32}
	rec.RecordAccess(t0.Add(80 * time.Minute))  // 9:20
	rec.RecordAccess(t0.Add(110 * time.Minute)) // 9:50
	rec.RecordAccess(t0.Add(190 * time.Minute)) // 11:10
	ref := t0.Add(210 * time.Minute)            // 11:30

	x := spec.Vector(rec, ref)
	if len(x) != spec.Width() || spec.Width() != 15 {
		t.Fatalf("width = %d", len(x))
	}
	maxMin := 48 * 60.0
	approx := func(got, wantMinutes float64) bool {
		return math.Abs(got-wantMinutes/maxMin) < 1e-9
	}
	if got := x[0]; math.Abs(got-200.0/4096.0) > 1e-9 {
		t.Fatalf("size feature = %v", got)
	}
	if !approx(x[1], 210) {
		t.Fatalf("ref-creation = %v", x[1])
	}
	if !approx(x[2], 20) {
		t.Fatalf("ref-last = %v", x[2])
	}
	if !approx(x[3], 80) {
		t.Fatalf("oldest-creation = %v", x[3])
	}
	if !approx(x[4], 80) { // 11:10 - 9:50
		t.Fatalf("delta1 = %v", x[4])
	}
	if !approx(x[5], 30) { // 9:50 - 9:20
		t.Fatalf("delta2 = %v", x[5])
	}
	for i := 6; i < len(x); i++ {
		if !gbt.IsMissing(x[i]) {
			t.Fatalf("slot %d should be missing, got %v", i, x[i])
		}
	}
}

func TestFeatureVectorNeverAccessed(t *testing.T) {
	spec := DefaultFeatureSpec()
	rec := &FileRecord{ID: 1, Size: storage.GB, Created: t0, maxKeep: 32}
	x := spec.Vector(rec, t0.Add(time.Hour))
	if gbt.IsMissing(x[0]) || gbt.IsMissing(x[1]) {
		t.Fatal("size/creation features missing for fresh file")
	}
	for i := 2; i < len(x); i++ {
		if !gbt.IsMissing(x[i]) {
			t.Fatalf("slot %d should be missing", i)
		}
	}
}

func TestFeatureNormalisationClamps(t *testing.T) {
	spec := DefaultFeatureSpec()
	rec := &FileRecord{ID: 1, Size: 100 * storage.GB, Created: t0, maxKeep: 32}
	x := spec.Vector(rec, t0.Add(1000*time.Hour))
	if x[0] != 1 {
		t.Fatalf("oversized file feature = %v", x[0])
	}
	if x[1] != 1 {
		t.Fatalf("ancient creation feature = %v", x[1])
	}
}

func TestFeatureAblationFlags(t *testing.T) {
	spec := DefaultFeatureSpec()
	spec.UseSize = false
	spec.UseCreation = false
	rec := &FileRecord{ID: 1, Size: storage.GB, Created: t0, maxKeep: 32}
	rec.RecordAccess(t0.Add(time.Hour))
	x := spec.Vector(rec, t0.Add(2*time.Hour))
	if !gbt.IsMissing(x[0]) || !gbt.IsMissing(x[1]) || !gbt.IsMissing(x[3]) {
		t.Fatal("ablated features still populated")
	}
	if gbt.IsMissing(x[2]) {
		t.Fatal("recency feature should remain")
	}
}

func TestLabel(t *testing.T) {
	rec := &FileRecord{ID: 1, Created: t0, maxKeep: 32}
	rec.RecordAccess(t0.Add(45 * time.Minute))
	if got := Label(rec, t0.Add(30*time.Minute), 30*time.Minute); got != 1 {
		t.Fatalf("label = %v, want 1", got)
	}
	if got := Label(rec, t0.Add(50*time.Minute), 30*time.Minute); got != 0 {
		t.Fatalf("label = %v, want 0", got)
	}
}

// synthStream feeds the learner with a simple learnable pattern: files with
// a short gap between accesses are re-accessed (y=1).
func synthSample(rng *rand.Rand, spec FeatureSpec) ([]float64, float64) {
	x := make([]float64, spec.Width())
	for i := range x {
		x[i] = gbt.Missing
	}
	recency := rng.Float64()
	x[0] = rng.Float64()
	x[1] = rng.Float64()
	x[2] = recency
	if recency < 0.3 {
		return x, 1
	}
	return x, 0
}

func TestLearnerTrainsAndServes(t *testing.T) {
	cfg := DefaultLearnerConfig()
	cfg.MinTrainSamples = 100
	cfg.UpdateBatch = 50
	spec := DefaultFeatureSpec()
	l := NewLearner(spec.Width(), cfg)
	if l.Ready() {
		t.Fatal("fresh learner claims ready")
	}
	if _, ok := l.Predict(make([]float64, spec.Width())); ok {
		t.Fatal("fresh learner served a prediction")
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 600; i++ {
		x, y := synthSample(rng, spec)
		l.Add(x, y)
	}
	if l.Trainings() != 1 {
		t.Fatalf("trainings = %d", l.Trainings())
	}
	if l.Updates() == 0 {
		t.Fatal("no incremental updates happened")
	}
	if !l.Ready() {
		t.Fatalf("learner not ready; rolling error = %v", l.RollingError())
	}
	x := make([]float64, spec.Width())
	for i := range x {
		x[i] = gbt.Missing
	}
	x[0], x[1] = 0.5, 0.5
	x[2] = 0.05 // very recent
	pHot, ok := l.Predict(x)
	if !ok {
		t.Fatal("predict not served")
	}
	x[2] = 0.95 // very stale
	pCold, _ := l.Predict(x)
	if pHot <= pCold {
		t.Fatalf("pHot=%v <= pCold=%v", pHot, pCold)
	}
}

func TestLearnerRollingErrorGate(t *testing.T) {
	cfg := DefaultLearnerConfig()
	cfg.MinTrainSamples = 50
	cfg.UpdateBatch = 1 << 30 // never update: model goes stale
	cfg.EvalFraction = 1.0
	cfg.EvalWindow = 40
	cfg.ErrorThreshold = 0.3
	spec := DefaultFeatureSpec()
	l := NewLearner(spec.Width(), cfg)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		x, y := synthSample(rng, spec)
		l.Add(x, y)
	}
	if l.Model() == nil {
		t.Fatal("model not trained")
	}
	// Now feed adversarial samples: labels inverted. Error should rise above
	// the threshold and the gate must close.
	for i := 0; i < 100; i++ {
		x, y := synthSample(rng, spec)
		l.Add(x, 1-y)
	}
	if l.Ready() {
		t.Fatalf("gate open despite rolling error %v", l.RollingError())
	}
}

func TestPipelineSampleSkipsYoungFiles(t *testing.T) {
	p := NewPipeline(DefaultFeatureSpec(), 30*time.Minute, DefaultLearnerConfig())
	tr := NewTracker(DefaultK)
	rec := tr.OnCreate(1, storage.MB, t0.Add(time.Hour))
	if p.Sample(rec, t0.Add(time.Hour+10*time.Minute)) {
		t.Fatal("sampled a file created after the reference time")
	}
	if !p.Sample(rec, t0.Add(2*time.Hour)) {
		t.Fatal("failed to sample an old-enough file")
	}
	if p.Learner.SamplesSeen() != 1 {
		t.Fatalf("samples = %d", p.Learner.SamplesSeen())
	}
}

func TestPipelineLearnsReaccessPattern(t *testing.T) {
	// Build a workload where files with id%2==0 are periodically
	// re-accessed every 10 minutes and odd files never re-accessed. After
	// sampling, the pipeline should score hot files above cold ones.
	window := 30 * time.Minute
	cfg := DefaultLearnerConfig()
	cfg.MinTrainSamples = 150
	cfg.UpdateBatch = 100
	p := NewPipeline(DefaultFeatureSpec(), window, cfg)
	tr := NewTracker(DefaultK)
	const nFiles = 40
	for i := 0; i < nFiles; i++ {
		tr.OnCreate(int64(i), storage.MB*int64(1+i), t0)
	}
	now := t0
	for step := 0; step < 120; step++ {
		now = now.Add(10 * time.Minute)
		for i := 0; i < nFiles; i += 2 {
			tr.OnAccess(int64(i), now)
		}
		// Periodic sampling pass.
		for i := 0; i < nFiles; i++ {
			rec, _ := tr.Get(int64(i))
			p.Sample(rec, now)
		}
	}
	if !p.Learner.Ready() {
		t.Fatalf("pipeline not ready; err=%v samples=%d", p.Learner.RollingError(), p.Learner.SamplesSeen())
	}
	hot, _ := tr.Get(0)
	cold, _ := tr.Get(1)
	pHot, ok1 := p.Score(hot, now)
	pCold, ok2 := p.Score(cold, now)
	if !ok1 || !ok2 {
		t.Fatal("scores not served")
	}
	if pHot < 0.6 || pCold > 0.4 {
		t.Fatalf("pHot=%v pCold=%v; expected clear separation", pHot, pCold)
	}
}

func TestForceTrain(t *testing.T) {
	spec := DefaultFeatureSpec()
	cfg := DefaultLearnerConfig()
	cfg.MinTrainSamples = 1 << 30
	l := NewLearner(spec.Width(), cfg)
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 100; i++ {
		x, y := synthSample(rng, spec)
		l.Add(x, y)
	}
	if l.Model() != nil {
		t.Fatal("trained before ForceTrain")
	}
	l.ForceTrain()
	if l.Model() == nil {
		t.Fatal("ForceTrain did not train")
	}
	for i := 0; i < 50; i++ {
		x, y := synthSample(rng, spec)
		l.Add(x, y)
	}
	l.ForceTrain()
	if l.Updates() == 0 {
		t.Fatal("second ForceTrain did not update")
	}
}

// Property: feature vectors are always within [0,1] or missing, regardless
// of access history shape.
func TestPropertyFeatureRange(t *testing.T) {
	spec := DefaultFeatureSpec()
	f := func(sizeRaw uint32, gaps []uint16) bool {
		rec := &FileRecord{ID: 1, Size: int64(sizeRaw), Created: t0, maxKeep: spec.K + trackSlack}
		now := t0
		for _, g := range gaps {
			now = now.Add(time.Duration(g) * time.Minute)
			rec.RecordAccess(now)
		}
		x := spec.Vector(rec, now.Add(time.Minute))
		for _, v := range x {
			if gbt.IsMissing(v) {
				continue
			}
			if v < 0 || v > 1 {
				return false
			}
		}
		return len(x) == spec.Width()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the number of present consecutive-delta features equals
// min(#accesses before ref, K) - 1 when the file has been accessed.
func TestPropertyDeltaCount(t *testing.T) {
	spec := DefaultFeatureSpec()
	f := func(nRaw uint8) bool {
		n := int(nRaw % 20)
		rec := &FileRecord{ID: 1, Size: 1, Created: t0, maxKeep: spec.K + trackSlack}
		for i := 0; i < n; i++ {
			rec.RecordAccess(t0.Add(time.Duration(i+1) * time.Minute))
		}
		ref := t0.Add(time.Hour)
		x := spec.Vector(rec, ref)
		present := 0
		for i := 4; i < len(x); i++ {
			if !gbt.IsMissing(x[i]) {
				present++
			}
		}
		want := 0
		if n > 0 {
			want = min(n, spec.K) - 1
		}
		return present == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFeatureVector(b *testing.B) {
	spec := DefaultFeatureSpec()
	rec := &FileRecord{ID: 1, Size: storage.GB, Created: t0, maxKeep: spec.K + trackSlack}
	for i := 0; i < spec.K; i++ {
		rec.RecordAccess(t0.Add(time.Duration(i+1) * time.Minute))
	}
	ref := t0.Add(time.Hour)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = spec.Vector(rec, ref)
	}
}

func BenchmarkLearnerAddSample(b *testing.B) {
	spec := DefaultFeatureSpec()
	cfg := DefaultLearnerConfig()
	l := NewLearner(spec.Width(), cfg)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x, y := synthSample(rng, spec)
		l.Add(x, y)
	}
}
