// Package ml implements the paper's file-access pattern modelling pipeline
// (Section 4): per-file access tracking (last-k access times), time-delta
// feature construction with [0,1] normalisation and missing-value encoding,
// sliding-reference training-data generation, and an incremental learner
// built on the gbt package with an accuracy gate before predictions are
// served.
package ml

import (
	"time"
)

// DefaultK is the number of access times kept per file and used as feature
// inputs (the paper's default, Section 7.6).
const DefaultK = 12

// trackSlack is how many accesses beyond K the tracker retains so that
// features can be computed at reference times slightly in the past (the
// sampler sets the reference one class-window before now).
const trackSlack = 20

// FileRecord is the per-file metadata the system maintains for modelling:
// size, creation time, and a bounded history of recent access times
// (Section 4.1: "we maintain the last k access times for each file").
type FileRecord struct {
	ID       int64
	Size     int64
	Created  time.Time
	accesses []time.Time // ascending; bounded to K+trackSlack
	total    int64       // lifetime access count
	maxKeep  int
}

// RecordAccess appends an access time (times must be non-decreasing, which
// the simulation clock guarantees).
func (r *FileRecord) RecordAccess(at time.Time) {
	r.total++
	r.accesses = append(r.accesses, at)
	if len(r.accesses) > r.maxKeep {
		// Shift rather than re-slice so the backing array does not grow
		// without bound over a long run.
		copy(r.accesses, r.accesses[len(r.accesses)-r.maxKeep:])
		r.accesses = r.accesses[:r.maxKeep]
	}
}

// AccessCount returns the lifetime number of recorded accesses.
func (r *FileRecord) AccessCount() int64 { return r.total }

// LastAccess returns the most recent access time, or the creation time when
// the file has never been accessed (and false).
func (r *FileRecord) LastAccess() (time.Time, bool) {
	if len(r.accesses) == 0 {
		return r.Created, false
	}
	return r.accesses[len(r.accesses)-1], true
}

// AccessesBefore returns up to `limit` most recent tracked accesses at or
// before ref, in ascending order. The returned slice aliases internal
// storage; callers must not mutate it.
func (r *FileRecord) AccessesBefore(ref time.Time, limit int) []time.Time {
	end := len(r.accesses)
	for end > 0 && r.accesses[end-1].After(ref) {
		end--
	}
	start := 0
	if limit > 0 && end-start > limit {
		start = end - limit
	}
	return r.accesses[start:end]
}

// AccessedIn reports whether the file was accessed in the half-open
// interval (from, to].
func (r *FileRecord) AccessedIn(from, to time.Time) bool {
	for i := len(r.accesses) - 1; i >= 0; i-- {
		at := r.accesses[i]
		if !at.After(from) {
			return false
		}
		if !at.After(to) {
			return true
		}
	}
	return false
}

// FootprintBytes estimates the tracker memory used for this file
// (Section 7.7 reports a max of 956 bytes per file for k=12).
func (r *FileRecord) FootprintBytes() int {
	const fixed = 8 + 8 + 24 + 8 + 8 // id, size, created, total, maxKeep
	return fixed + cap(r.accesses)*24
}

// Tracker maintains FileRecords for the live files in the system.
type Tracker struct {
	k     int
	files map[int64]*FileRecord
}

// NewTracker returns a tracker keeping k access times per file as feature
// inputs (plus bounded slack for retrospective sampling).
func NewTracker(k int) *Tracker {
	if k <= 0 {
		k = DefaultK
	}
	return &Tracker{k: k, files: make(map[int64]*FileRecord)}
}

// K returns the configured feature access count.
func (t *Tracker) K() int { return t.k }

// Len returns the number of tracked files.
func (t *Tracker) Len() int { return len(t.files) }

// OnCreate registers a file.
func (t *Tracker) OnCreate(id, size int64, at time.Time) *FileRecord {
	rec := &FileRecord{ID: id, Size: size, Created: at, maxKeep: t.k + trackSlack}
	t.files[id] = rec
	return rec
}

// OnAccess records an access, creating the record if the file predates the
// tracker.
func (t *Tracker) OnAccess(id int64, at time.Time) *FileRecord {
	rec, ok := t.files[id]
	if !ok {
		rec = t.OnCreate(id, 0, at)
	}
	rec.RecordAccess(at)
	return rec
}

// OnDelete forgets a file.
func (t *Tracker) OnDelete(id int64) { delete(t.files, id) }

// Get returns the record for a file id.
func (t *Tracker) Get(id int64) (*FileRecord, bool) {
	rec, ok := t.files[id]
	return rec, ok
}

// Each visits every record in unspecified order.
func (t *Tracker) Each(fn func(*FileRecord)) {
	for _, rec := range t.files {
		fn(rec)
	}
}

// FootprintBytes estimates the tracker's total metadata memory.
func (t *Tracker) FootprintBytes() int {
	total := 0
	for _, rec := range t.files {
		total += rec.FootprintBytes()
	}
	return total
}
