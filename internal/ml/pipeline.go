package ml

import (
	"time"
)

// Pipeline binds a feature spec, a class window, and an incremental learner
// into the full Section 4 pipeline for one model. The framework runs two
// pipelines: the upgrade model with a small window (will the file be
// accessed soon?) and the downgrade model with a large window (has the file
// gone cold?).
type Pipeline struct {
	Spec    FeatureSpec
	Window  time.Duration
	Learner *Learner
}

// NewPipeline builds a pipeline with the given class window.
func NewPipeline(spec FeatureSpec, window time.Duration, cfg LearnerConfig) *Pipeline {
	return &Pipeline{
		Spec:    spec,
		Window:  window,
		Learner: NewLearner(spec.Width(), cfg),
	}
}

// Sample generates one training point for a file at current time `now` by
// sliding the reference time one class window into the past
// (Section 4.2): features come from accesses at or before tr = now-w, the
// label from whether the file was accessed in (tr, now].
// Files created after the reference time are skipped (they could not have
// been observed at tr); it reports whether a sample was produced.
func (p *Pipeline) Sample(rec *FileRecord, now time.Time) bool {
	tr := now.Add(-p.Window)
	if rec.Created.After(tr) {
		return false
	}
	x := p.Spec.Vector(rec, tr)
	y := Label(rec, tr, p.Window)
	p.Learner.Add(x, y)
	return true
}

// Score predicts the probability that the file will be accessed within the
// class window starting now (reference time = now, Section 4.4). ok is
// false while the learner is not ready to serve.
func (p *Pipeline) Score(rec *FileRecord, now time.Time) (prob float64, ok bool) {
	x := p.Spec.Vector(rec, now)
	return p.Learner.Predict(x)
}

// TrainingPoint materialises the (features, label) pair for a file at a
// given reference time without feeding the learner; offline experiments
// (Figures 14-17) use it to build datasets.
func (p *Pipeline) TrainingPoint(rec *FileRecord, ref time.Time) ([]float64, float64) {
	return p.Spec.Vector(rec, ref), Label(rec, ref, p.Window)
}
