package ml

import (
	"time"

	"octostore/internal/gbt"
	"octostore/internal/storage"
)

// FeatureSpec controls feature-vector construction (Section 4.1). The
// ablation switches UseSize/UseCreation support the Figure 15 experiment;
// disabled features are emitted as missing so the vector width is stable.
type FeatureSpec struct {
	// K is the number of access times contributing delta features.
	K int
	// MaxInterval normalises time deltas: delta/MaxInterval clamped to 1.
	// The paper suggests intervals like one month; the worked example in
	// Figure 4 uses two days, which suits short workloads.
	MaxInterval time.Duration
	// MaxSize normalises the file-size feature.
	MaxSize int64
	// UseSize includes the file-size feature (Figure 15 ablation).
	UseSize bool
	// UseCreation includes creation-time-derived features (Figure 15).
	UseCreation bool
}

// DefaultFeatureSpec returns the paper's default formulation: k=12 access
// times plus file size and creation-derived deltas.
func DefaultFeatureSpec() FeatureSpec {
	return FeatureSpec{
		K:           DefaultK,
		MaxInterval: 48 * time.Hour,
		MaxSize:     4 * storage.GB,
		UseSize:     true,
		UseCreation: true,
	}
}

// Width returns the fixed feature-vector length: file size, ref-creation,
// ref-last-access, oldest-access-creation, and K-1 consecutive deltas.
func (s FeatureSpec) Width() int { return s.K + 3 }

// norm rescales a delta to [0, 1], clamping outliers (Section 4.1:
// "normalization ... is useful for avoiding outliers from situations where
// a file was not accessed for a long time").
func (s FeatureSpec) norm(d time.Duration) float64 {
	if d < 0 {
		d = 0
	}
	v := float64(d) / float64(s.MaxInterval)
	if v > 1 {
		v = 1
	}
	return v
}

// Vector builds the feature vector of a file at reference time ref using
// only accesses at or before ref. Absent measurements (fewer than K
// accesses, or ablated features) are encoded as missing values.
//
// Layout:
//
//	[0]        file size / MaxSize
//	[1]        ref - creation
//	[2]        ref - most recent access   (missing if never accessed)
//	[3]        oldest tracked access - creation (missing if never accessed)
//	[4..K+2]   consecutive access deltas, most recent pair first
func (s FeatureSpec) Vector(rec *FileRecord, ref time.Time) []float64 {
	x := make([]float64, s.Width())
	for i := range x {
		x[i] = gbt.Missing
	}
	if s.UseSize {
		v := float64(rec.Size) / float64(s.MaxSize)
		if v > 1 {
			v = 1
		}
		x[0] = v
	}
	if s.UseCreation {
		x[1] = s.norm(ref.Sub(rec.Created))
	}
	accesses := rec.AccessesBefore(ref, s.K)
	if len(accesses) == 0 {
		return x
	}
	x[2] = s.norm(ref.Sub(accesses[len(accesses)-1]))
	if s.UseCreation {
		x[3] = s.norm(accesses[0].Sub(rec.Created))
	}
	slot := 4
	for i := len(accesses) - 1; i > 0 && slot < len(x); i-- {
		x[slot] = s.norm(accesses[i].Sub(accesses[i-1]))
		slot++
	}
	return x
}

// Label returns the class value for a reference time and class window:
// 1 when the file is accessed within (ref, ref+window], else 0
// (Section 4.1 "class labeling").
func Label(rec *FileRecord, ref time.Time, window time.Duration) float64 {
	if rec.AccessedIn(ref, ref.Add(window)) {
		return 1
	}
	return 0
}
