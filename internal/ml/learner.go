package ml

import (
	"math/rand"
	"time"

	"octostore/internal/gbt"
)

// LearnerConfig configures an incremental learner.
type LearnerConfig struct {
	// Params are the boosting hyperparameters (PaperParams by default).
	Params gbt.Params
	// MinTrainSamples is the number of buffered samples required before the
	// first model is trained.
	MinTrainSamples int
	// UpdateBatch is the buffered-sample count that triggers an incremental
	// Update once a model exists.
	UpdateBatch int
	// UpdateRounds is the number of trees added per incremental update.
	UpdateRounds int
	// ErrorThreshold gates serving: predictions are only offered once the
	// rolling evaluation error drops below this value (Section 4.4 suggests
	// 0.01; the framework default is more permissive to start benefiting
	// earlier).
	ErrorThreshold float64
	// EvalFraction is the probability that an incoming sample is used to
	// evaluate the current model before being used to train it.
	EvalFraction float64
	// EvalWindow is the number of recent evaluations in the rolling error.
	EvalWindow int
	// Seed drives evaluation sampling.
	Seed int64
}

// DefaultLearnerConfig returns the configuration used by the XGB policies.
func DefaultLearnerConfig() LearnerConfig {
	return LearnerConfig{
		Params:          gbt.PaperParams(),
		MinTrainSamples: 200,
		UpdateBatch:     100,
		UpdateRounds:    4,
		ErrorThreshold:  0.25,
		EvalFraction:    0.2,
		EvalWindow:      200,
		Seed:            1,
	}
}

func (c *LearnerConfig) applyDefaults() {
	d := DefaultLearnerConfig()
	if c.Params.Rounds == 0 {
		c.Params = d.Params
	}
	if c.MinTrainSamples <= 0 {
		c.MinTrainSamples = d.MinTrainSamples
	}
	if c.UpdateBatch <= 0 {
		c.UpdateBatch = d.UpdateBatch
	}
	if c.UpdateRounds <= 0 {
		c.UpdateRounds = d.UpdateRounds
	}
	if c.ErrorThreshold <= 0 {
		c.ErrorThreshold = d.ErrorThreshold
	}
	if c.EvalFraction <= 0 {
		c.EvalFraction = d.EvalFraction
	}
	if c.EvalWindow <= 0 {
		c.EvalWindow = d.EvalWindow
	}
}

// Learner trains a gbt model incrementally from a stream of labelled
// samples and gates predictions on a rolling evaluation error
// (Section 4.2/4.4). It occasionally holds a sample out for evaluation
// before training on it ("the system will occasionally use some training
// data points for evaluating the performance of M before using them for
// training M").
type Learner struct {
	cfg   LearnerConfig
	width int
	rng   *rand.Rand

	model *gbt.Model
	bufX  *gbt.Matrix
	bufY  []float64

	evalResults []bool // ring of recent eval correctness
	evalNext    int
	evalFilled  int

	samplesSeen int64
	trainings   int64
	updates     int64
	trainTime   time.Duration
}

// NewLearner builds a learner for feature vectors of the given width.
func NewLearner(width int, cfg LearnerConfig) *Learner {
	cfg.applyDefaults()
	return &Learner{
		cfg:         cfg,
		width:       width,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		bufX:        gbt.NewMatrix(width),
		evalResults: make([]bool, cfg.EvalWindow),
	}
}

// SamplesSeen returns how many labelled samples have been added.
func (l *Learner) SamplesSeen() int64 { return l.samplesSeen }

// Trainings returns the number of full Train calls performed.
func (l *Learner) Trainings() int64 { return l.trainings }

// Updates returns the number of incremental Update calls performed.
func (l *Learner) Updates() int64 { return l.updates }

// Model returns the current model (nil before the first training).
func (l *Learner) Model() *gbt.Model { return l.model }

// TrainTime returns cumulative wall-clock time spent in Train/Update, for
// the Section 7.7 overhead report.
func (l *Learner) TrainTime() time.Duration { return l.trainTime }

// Add feeds one labelled sample into the pipeline: occasionally evaluate,
// always buffer, train or update when the buffer fills.
func (l *Learner) Add(x []float64, y float64) {
	l.samplesSeen++
	if l.model != nil && l.rng.Float64() < l.cfg.EvalFraction {
		p := l.model.Predict(x)
		correct := (p >= 0.5) == (y >= 0.5)
		l.evalResults[l.evalNext] = correct
		l.evalNext = (l.evalNext + 1) % len(l.evalResults)
		if l.evalFilled < len(l.evalResults) {
			l.evalFilled++
		}
	}
	l.bufX.AppendRow(x)
	l.bufY = append(l.bufY, y)
	l.maybeTrain()
}

func (l *Learner) maybeTrain() {
	start := time.Now()
	defer func() { l.trainTime += time.Since(start) }()
	if l.model == nil {
		if l.bufX.Rows() >= l.cfg.MinTrainSamples {
			m, err := gbt.Train(l.bufX, l.bufY, l.cfg.Params)
			if err == nil {
				l.model = m
				l.trainings++
				l.resetBuffer()
			}
		}
		return
	}
	if l.bufX.Rows() >= l.cfg.UpdateBatch {
		if err := l.model.Update(l.bufX, l.bufY, l.cfg.UpdateRounds); err == nil {
			l.updates++
		}
		l.resetBuffer()
	}
}

func (l *Learner) resetBuffer() {
	l.bufX = gbt.NewMatrix(l.width)
	l.bufY = l.bufY[:0]
}

// RollingError returns the error rate over the recent evaluation window
// (1.0 when no evaluations have happened yet).
func (l *Learner) RollingError() float64 {
	if l.evalFilled == 0 {
		return 1.0
	}
	wrong := 0
	for i := 0; i < l.evalFilled; i++ {
		if !l.evalResults[i] {
			wrong++
		}
	}
	return float64(wrong) / float64(l.evalFilled)
}

// Ready reports whether the model is trained and its rolling error has
// passed the serving gate.
func (l *Learner) Ready() bool {
	if l.model == nil {
		return false
	}
	if l.evalFilled < l.cfg.EvalWindow/4 {
		// Not enough evaluations yet: optimistically serve once trained,
		// the gate engages as evaluations accumulate.
		return true
	}
	return l.RollingError() <= l.cfg.ErrorThreshold
}

// Predict returns the model's probability for x and whether the learner is
// ready to serve.
func (l *Learner) Predict(x []float64) (float64, bool) {
	if !l.Ready() {
		return 0, false
	}
	return l.model.Predict(x), true
}

// ForceTrain trains immediately on whatever is buffered (used by offline
// experiments); it is a no-op with an empty buffer.
func (l *Learner) ForceTrain() {
	if l.bufX.Rows() == 0 {
		return
	}
	if l.model == nil {
		if m, err := gbt.Train(l.bufX, l.bufY, l.cfg.Params); err == nil {
			l.model = m
			l.trainings++
			l.resetBuffer()
		}
		return
	}
	if err := l.model.Update(l.bufX, l.bufY, l.cfg.UpdateRounds); err == nil {
		l.updates++
		l.resetBuffer()
	}
}
