// Package eval implements the evaluation metrics of the paper: ROC curves
// and AUC for the classifiers (Section 7.6), Hit Ratio and Byte Hit Ratio
// (Figures 9 and 11), Byte Accuracy and Byte Coverage for upgrades
// (Table 4), plus CDF and table-formatting helpers used across the
// experiment harness.
package eval

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// ROCPoint is one point on a receiver operating characteristic curve.
type ROCPoint struct {
	FPR float64 // false positive rate
	TPR float64 // true positive rate
}

// ROC computes the ROC curve for probability scores against binary labels
// (1 = positive). Points are ordered from (0,0) to (1,1).
func ROC(scores []float64, labels []float64) []ROCPoint {
	if len(scores) != len(labels) || len(scores) == 0 {
		return nil
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	var pos, neg float64
	for _, y := range labels {
		if y >= 0.5 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return nil
	}
	points := []ROCPoint{{0, 0}}
	var tp, fp float64
	for i := 0; i < len(idx); {
		// Process ties together so the curve is threshold-consistent.
		j := i
		for j < len(idx) && scores[idx[j]] == scores[idx[i]] {
			if labels[idx[j]] >= 0.5 {
				tp++
			} else {
				fp++
			}
			j++
		}
		i = j
		points = append(points, ROCPoint{FPR: fp / neg, TPR: tp / pos})
	}
	return points
}

// AUC computes the area under the ROC curve via trapezoidal integration.
// It returns NaN when the curve is undefined (single-class labels).
func AUC(scores []float64, labels []float64) float64 {
	curve := ROC(scores, labels)
	if curve == nil {
		return math.NaN()
	}
	area := 0.0
	for i := 1; i < len(curve); i++ {
		dx := curve[i].FPR - curve[i-1].FPR
		area += dx * (curve[i].TPR + curve[i-1].TPR) / 2
	}
	return area
}

// Accuracy is the fraction of correct classifications at the given
// discrimination threshold.
func Accuracy(scores []float64, labels []float64, threshold float64) float64 {
	if len(scores) == 0 || len(scores) != len(labels) {
		return math.NaN()
	}
	correct := 0
	for i, s := range scores {
		if (s >= threshold) == (labels[i] >= 0.5) {
			correct++
		}
	}
	return float64(correct) / float64(len(scores))
}

// Ratio returns num/den, or 0 when den is 0.
func Ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// HitRatio is the fraction of requests served by the memory tier
// (Section 7.2).
func HitRatio(memRequests, totalRequests int64) float64 {
	return Ratio(float64(memRequests), float64(totalRequests))
}

// ByteHitRatio is the fraction of bytes served by the memory tier.
func ByteHitRatio(memBytes, totalBytes int64) float64 {
	return Ratio(float64(memBytes), float64(totalBytes))
}

// ByteAccuracy is data read from memory over data upgraded to memory
// (Table 4): how much of what was promoted was actually used.
func ByteAccuracy(memReadBytes, upgradedBytes int64) float64 {
	return Ratio(float64(memReadBytes), float64(upgradedBytes))
}

// ByteCoverage is data read from memory over total data read (Table 4):
// how much of the workload the promotions covered.
func ByteCoverage(memReadBytes, totalReadBytes int64) float64 {
	return Ratio(float64(memReadBytes), float64(totalReadBytes))
}

// Reduction returns the fractional reduction of value versus a baseline
// (positive = improvement), e.g. completion-time reduction over HDFS.
func Reduction(baseline, value float64) float64 {
	if baseline == 0 {
		return 0
	}
	return (baseline - value) / baseline
}

// CDFPoint is one (value, cumulative probability) pair.
type CDFPoint struct {
	Value float64
	P     float64
}

// CDF returns the empirical cumulative distribution of values.
func CDF(values []float64) []CDFPoint {
	if len(values) == 0 {
		return nil
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var out []CDFPoint
	for i, v := range sorted {
		if i+1 < len(sorted) && sorted[i+1] == v {
			continue // keep the last occurrence only
		}
		out = append(out, CDFPoint{Value: v, P: float64(i+1) / n})
	}
	return out
}

// Quantile returns the q-quantile (0..1) of values.
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				for pad := len(c); pad < widths[i]; pad++ {
					sb.WriteByte(' ')
				}
			}
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	printRow(t.Header)
	for _, row := range t.Rows {
		printRow(row)
	}
}

// Pct formats a fraction as a percentage string.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// F2 formats a float with two decimals.
func F2(f float64) string { return fmt.Sprintf("%.2f", f) }
