package eval

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestROCPerfectClassifier(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []float64{1, 1, 0, 0}
	if auc := AUC(scores, labels); math.Abs(auc-1.0) > 1e-9 {
		t.Fatalf("AUC = %v, want 1.0", auc)
	}
	curve := ROC(scores, labels)
	if curve[0].FPR != 0 || curve[0].TPR != 0 {
		t.Fatalf("curve start = %+v", curve[0])
	}
	last := curve[len(curve)-1]
	if last.FPR != 1 || last.TPR != 1 {
		t.Fatalf("curve end = %+v", last)
	}
}

func TestROCAntiClassifier(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []float64{1, 1, 0, 0}
	if auc := AUC(scores, labels); math.Abs(auc) > 1e-9 {
		t.Fatalf("AUC = %v, want 0", auc)
	}
}

func TestROCRandomScoresNearHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 5000
	scores := make([]float64, n)
	labels := make([]float64, n)
	for i := range scores {
		scores[i] = rng.Float64()
		if rng.Float64() < 0.4 {
			labels[i] = 1
		}
	}
	auc := AUC(scores, labels)
	if math.Abs(auc-0.5) > 0.03 {
		t.Fatalf("random AUC = %v, want ~0.5", auc)
	}
}

func TestROCDegenerate(t *testing.T) {
	if ROC([]float64{0.5}, []float64{1}) != nil {
		t.Fatal("single-class ROC should be nil")
	}
	if !math.IsNaN(AUC([]float64{0.5}, []float64{1})) {
		t.Fatal("single-class AUC should be NaN")
	}
	if ROC(nil, nil) != nil {
		t.Fatal("empty ROC should be nil")
	}
}

func TestROCTiesHandled(t *testing.T) {
	// All scores equal: the curve must be the diagonal (AUC 0.5).
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []float64{1, 0, 1, 0}
	if auc := AUC(scores, labels); math.Abs(auc-0.5) > 1e-9 {
		t.Fatalf("tied AUC = %v, want 0.5", auc)
	}
}

func TestAccuracy(t *testing.T) {
	scores := []float64{0.9, 0.4, 0.6, 0.1}
	labels := []float64{1, 1, 0, 0}
	if got := Accuracy(scores, labels, 0.5); got != 0.5 {
		t.Fatalf("accuracy = %v", got)
	}
	if !math.IsNaN(Accuracy(nil, nil, 0.5)) {
		t.Fatal("empty accuracy should be NaN")
	}
}

func TestRatiosAndReduction(t *testing.T) {
	if HitRatio(50, 100) != 0.5 {
		t.Fatal("HitRatio")
	}
	if ByteHitRatio(25, 100) != 0.25 {
		t.Fatal("ByteHitRatio")
	}
	if ByteAccuracy(30, 60) != 0.5 {
		t.Fatal("ByteAccuracy")
	}
	if ByteCoverage(30, 120) != 0.25 {
		t.Fatal("ByteCoverage")
	}
	if HitRatio(1, 0) != 0 {
		t.Fatal("division by zero not guarded")
	}
	if got := Reduction(200, 150); got != 0.25 {
		t.Fatalf("Reduction = %v", got)
	}
	if Reduction(0, 5) != 0 {
		t.Fatal("Reduction zero baseline")
	}
}

func TestCDF(t *testing.T) {
	points := CDF([]float64{3, 1, 2, 2})
	if len(points) != 3 {
		t.Fatalf("points = %v", points)
	}
	if points[0].Value != 1 || math.Abs(points[0].P-0.25) > 1e-9 {
		t.Fatalf("first = %+v", points[0])
	}
	if points[1].Value != 2 || math.Abs(points[1].P-0.75) > 1e-9 {
		t.Fatalf("dup value point = %+v", points[1])
	}
	if points[2].P != 1 {
		t.Fatalf("last = %+v", points[2])
	}
	if CDF(nil) != nil {
		t.Fatal("empty CDF should be nil")
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	if Quantile(vals, 0) != 1 || Quantile(vals, 1) != 5 {
		t.Fatal("extremes wrong")
	}
	if got := Quantile(vals, 0.5); got != 3 {
		t.Fatalf("median = %v", got)
	}
	if got := Quantile(vals, 0.25); got != 2 {
		t.Fatalf("q25 = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestTableFprint(t *testing.T) {
	tbl := Table{ID: "figX", Title: "demo", Header: []string{"Bin", "Value"}}
	tbl.AddRow("A", "1.0")
	tbl.AddRow("LongBinName", "2.5")
	var sb strings.Builder
	tbl.Fprint(&sb)
	out := sb.String()
	if !strings.Contains(out, "figX") || !strings.Contains(out, "LongBinName") {
		t.Fatalf("output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.255) != "25.5%" {
		t.Fatalf("Pct = %s", Pct(0.255))
	}
	if F2(1.234) != "1.23" {
		t.Fatalf("F2 = %s", F2(1.234))
	}
}

// Property: AUC is invariant to monotone transforms of the scores.
func TestPropertyAUCMonotoneInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 200
		scores := make([]float64, n)
		labels := make([]float64, n)
		for i := range scores {
			scores[i] = rng.Float64()
			if rng.Float64() < 0.5 {
				labels[i] = 1
			}
		}
		a1 := AUC(scores, labels)
		transformed := make([]float64, n)
		for i, s := range scores {
			transformed[i] = math.Exp(3*s) + 7 // strictly increasing
		}
		a2 := AUC(transformed, labels)
		if math.IsNaN(a1) || math.IsNaN(a2) {
			return true
		}
		return math.Abs(a1-a2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: AUC is within [0, 1].
func TestPropertyAUCRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50
		scores := make([]float64, n)
		labels := make([]float64, n)
		for i := range scores {
			scores[i] = rng.Float64()
			if rng.Float64() < 0.3 {
				labels[i] = 1
			}
		}
		a := AUC(scores, labels)
		if math.IsNaN(a) {
			return true
		}
		return a >= 0 && a <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
