package cluster_test

import (
	"sync"
	"testing"

	"octostore/internal/cluster"
	"octostore/internal/sim"
	"octostore/internal/storage"
)

// TestLedgerReserveCommitAbort walks the two-phase protocol through its
// three resolutions and asserts the conservation equation after every step.
func TestLedgerReserveCommitAbort(t *testing.T) {
	l := cluster.NewTierLedger()
	var granted [3]int64
	granted[storage.Memory] = 600
	l.AddCapacity(storage.Memory, 1000, 400) // 600 granted to shards, 400 pooled
	if err := l.Check(granted); err != nil {
		t.Fatal(err)
	}

	res, ok := l.Reserve(storage.Memory, 300)
	if !ok {
		t.Fatal("reserve against sufficient pool failed")
	}
	// Phase one holds: the bytes moved from free into reserved, nothing
	// leaked, and the equation still balances mid-protocol.
	if l.FreeBytes(storage.Memory) != 100 || l.ReservedBytes(storage.Memory) != 300 {
		t.Fatalf("after reserve: free %d reserved %d", l.FreeBytes(storage.Memory), l.ReservedBytes(storage.Memory))
	}
	if err := l.Check(granted); err != nil {
		t.Fatalf("mid-protocol conservation: %v", err)
	}

	// Commit: the shard applied 300 bytes to its devices.
	granted[storage.Memory] += res.Bytes()
	res.Commit()
	if err := l.Check(granted); err != nil {
		t.Fatalf("after commit: %v", err)
	}
	if l.ReservedBytes(storage.Memory) != 0 || l.FreeBytes(storage.Memory) != 100 {
		t.Fatalf("after commit: free %d reserved %d", l.FreeBytes(storage.Memory), l.ReservedBytes(storage.Memory))
	}

	// Abort restores the pool exactly.
	res2, ok := l.Reserve(storage.Memory, 100)
	if !ok {
		t.Fatal("second reserve failed")
	}
	res2.Abort()
	if l.FreeBytes(storage.Memory) != 100 || l.ReservedBytes(storage.Memory) != 0 {
		t.Fatalf("after abort: free %d reserved %d", l.FreeBytes(storage.Memory), l.ReservedBytes(storage.Memory))
	}
	if err := l.Check(granted); err != nil {
		t.Fatalf("after abort: %v", err)
	}

	// An over-ask fails without touching any account.
	if _, ok := l.Reserve(storage.Memory, 101); ok {
		t.Fatal("reserve beyond the pool succeeded")
	}
	if err := l.Check(granted); err != nil {
		t.Fatalf("after failed reserve: %v", err)
	}
}

// TestLedgerReserveWithoutCommitNeverLeaks is the crash-consistency
// property: a reservation that is simply dropped (its owner died between
// reserve and commit) keeps its bytes visible in the reserved account
// forever — the conservation check still balances, and the capacity was
// never double-granted.
func TestLedgerReserveWithoutCommitNeverLeaks(t *testing.T) {
	l := cluster.NewTierLedger()
	var granted [3]int64
	l.AddCapacity(storage.SSD, 500, 500)

	if _, ok := l.Reserve(storage.SSD, 200); !ok {
		t.Fatal("reserve failed")
	}
	// The owner "crashes": the reservation is never resolved. No capacity
	// may be re-claimable beyond the remaining pool, and the equation must
	// still balance with the reservation outstanding.
	if err := l.Check(granted); err != nil {
		t.Fatalf("conservation with unresolved reservation: %v", err)
	}
	if _, ok := l.Reserve(storage.SSD, 301); ok {
		t.Fatal("pool handed out reserved capacity a second time")
	}
	if res, ok := l.Reserve(storage.SSD, 300); !ok {
		t.Fatal("remaining pool capacity not reservable")
	} else {
		res.Abort()
	}
	if l.FreeBytes(storage.SSD) != 300 || l.ReservedBytes(storage.SSD) != 200 {
		t.Fatalf("free %d reserved %d", l.FreeBytes(storage.SSD), l.ReservedBytes(storage.SSD))
	}
}

// TestLedgerRetireCollectsDeficitFromReturns covers dead-node capacity that
// was out on loan at retirement: the shortfall becomes a deficit, and later
// quota Returns pay it down (shrinking the total) before any bytes re-enter
// the free pool — so retired capacity can never be borrowed again.
func TestLedgerRetireCollectsDeficitFromReturns(t *testing.T) {
	l := cluster.NewTierLedger()
	m := storage.Memory
	granted := [3]int64{}
	granted[m] = 600
	l.AddCapacity(m, 1000, 400)

	// A shard borrows the whole pool: free 0, granted 1000.
	res, ok := l.Reserve(m, 400)
	if !ok {
		t.Fatal("reserve failed")
	}
	res.Commit()
	granted[m] += 400

	// A node dies whose pooled share was 300 — all of it on loan.
	l.Retire(m, 300)
	if got := l.DeficitBytes(m); got != 300 {
		t.Fatalf("deficit %d, want 300", got)
	}
	if err := l.Check(granted); err != nil {
		t.Fatalf("conservation with outstanding deficit: %v", err)
	}

	// A shard returns 350 of quota: 300 retires the deficit (total shrinks),
	// only 50 re-enters the pool.
	granted[m] -= 350
	l.Return(m, 350)
	if got := l.DeficitBytes(m); got != 0 {
		t.Fatalf("deficit after return %d, want 0", got)
	}
	if free := l.FreeBytes(m); free != 50 {
		t.Fatalf("free after return %d, want 50", free)
	}
	if total := l.TotalBytes(m); total != 700 {
		t.Fatalf("total after return %d, want 700", total)
	}
	if err := l.Check(granted); err != nil {
		t.Fatal(err)
	}
	// The retired capacity is gone: only the genuinely returned 50 bytes
	// are borrowable.
	if _, ok := l.Reserve(m, 51); ok {
		t.Fatal("retired capacity became borrowable again")
	}
}

// TestLedgerConcurrentReserves hammers Reserve/Abort from many goroutines
// (run under -race) and asserts nothing leaked once they all resolve.
func TestLedgerConcurrentReserves(t *testing.T) {
	l := cluster.NewTierLedger()
	var granted [3]int64
	l.AddCapacity(storage.HDD, 1<<20, 1<<20)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if res, ok := l.Reserve(storage.HDD, 1024); ok {
					res.Abort()
				}
			}
		}()
	}
	wg.Wait()
	if l.FreeBytes(storage.HDD) != 1<<20 || l.ReservedBytes(storage.HDD) != 0 {
		t.Fatalf("pool corrupted: free %d reserved %d", l.FreeBytes(storage.HDD), l.ReservedBytes(storage.HDD))
	}
	if err := l.Check(granted); err != nil {
		t.Fatal(err)
	}
}

// TestDeviceGrowShrink covers the capacity-resize primitives the quota layer
// relies on: growth is unbounded, shrink stops at the reserved floor.
func TestDeviceGrowShrink(t *testing.T) {
	d := storage.NewDevice(sim.NewEngine(), "dev", storage.SSD, 100, 1e6, 1e6)
	if err := d.Reserve(60); err != nil {
		t.Fatal(err)
	}
	d.Grow(50)
	if d.Capacity() != 150 || d.Free() != 90 {
		t.Fatalf("after grow: cap %d free %d", d.Capacity(), d.Free())
	}
	if got := d.ShrinkUpTo(1000); got != 90 {
		t.Fatalf("shrink reclaimed %d, want 90 (the free bytes)", got)
	}
	if d.Capacity() != 60 || d.Free() != 0 {
		t.Fatalf("after shrink: cap %d free %d", d.Capacity(), d.Free())
	}
	if got := d.ShrinkUpTo(10); got != 0 {
		t.Fatalf("shrink below used reclaimed %d, want 0", got)
	}
}
