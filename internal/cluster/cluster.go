// Package cluster assembles storage devices into worker nodes and nodes into
// a cluster, mirroring the testbed topology of the paper's evaluation
// (1 master + N workers, three storage tiers per worker).
package cluster

import (
	"fmt"

	"octostore/internal/sim"
	"octostore/internal/storage"
)

// Node is one worker machine: a set of storage devices grouped by media and
// a number of task execution slots.
type Node struct {
	id      int
	name    string
	devices map[storage.Media][]*storage.Device
	slots   int
}

// ID returns the node's index within the cluster.
func (n *Node) ID() int { return n.id }

// Name returns a human-readable node name such as "worker-3".
func (n *Node) Name() string { return n.name }

// Slots returns the number of simultaneous task slots on the node.
func (n *Node) Slots() int { return n.slots }

// Devices returns the node's devices of the given media (possibly empty).
func (n *Node) Devices(media storage.Media) []*storage.Device {
	return n.devices[media]
}

// AllDevices returns every device on the node, ordered from the highest tier
// to the lowest.
func (n *Node) AllDevices() []*storage.Device {
	var all []*storage.Device
	for _, m := range storage.AllMedia {
		all = append(all, n.devices[m]...)
	}
	return all
}

// PickDevice returns the device of the given media best suited to receive a
// new replica of the given size: the least-loaded device with room,
// tie-broken by most free space. It returns nil when no device fits.
func (n *Node) PickDevice(media storage.Media, bytes int64) *storage.Device {
	var best *storage.Device
	for _, d := range n.devices[media] {
		if d.Free() < bytes {
			continue
		}
		if best == nil || d.Load() < best.Load() ||
			(d.Load() == best.Load() && d.Free() > best.Free()) {
			best = d
		}
	}
	return best
}

// TierUsed returns the bytes reserved across the node's devices of a media.
func (n *Node) TierUsed(media storage.Media) int64 {
	var used int64
	for _, d := range n.devices[media] {
		used += d.Used()
	}
	return used
}

// TierCapacity returns the total capacity of the node's devices of a media.
func (n *Node) TierCapacity(media storage.Media) int64 {
	var c int64
	for _, d := range n.devices[media] {
		c += d.Capacity()
	}
	return c
}

// Cluster is the set of worker nodes plus the shared simulation engine.
// The master is not modelled as a machine: master-side logic (namespace,
// block manager, replication manager) runs as plain in-process components.
type Cluster struct {
	engine *sim.Engine
	nodes  []*Node
	nextID int
	plane  storage.DataPlane
}

// Config describes a cluster to build.
type Config struct {
	Workers      int
	SlotsPerNode int
	Spec         storage.NodeSpec
	// Plane, when set, is the data plane the cluster's I/O is accounted
	// against. It is deliberately part of the topology config: the sharded
	// serving layer builds one cluster view per shard from the same Config,
	// so a single shared plane arbitrates the physical devices across every
	// view (device IDs are identical across views by construction), exactly
	// as the tier ledger arbitrates physical capacity. Nil means no
	// data-plane accounting (zero-latency reads, uncontended movement).
	Plane storage.DataPlane
}

// PaperConfig reproduces the paper's testbed: 11 workers, 8 task slots each
// (8-core nodes), with the Section 7 per-node storage configuration.
func PaperConfig() Config {
	return Config{Workers: 11, SlotsPerNode: 8, Spec: storage.PaperWorkerSpec()}
}

// New builds a cluster on the given engine.
func New(engine *sim.Engine, cfg Config) (*Cluster, error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("cluster: need at least one worker, got %d", cfg.Workers)
	}
	if cfg.SlotsPerNode <= 0 {
		return nil, fmt.Errorf("cluster: need at least one slot per node, got %d", cfg.SlotsPerNode)
	}
	if len(cfg.Spec) == 0 {
		return nil, fmt.Errorf("cluster: empty storage spec")
	}
	c := &Cluster{engine: engine, plane: cfg.Plane}
	for i := 0; i < cfg.Workers; i++ {
		c.AddNode(cfg.Spec, cfg.SlotsPerNode)
	}
	return c, nil
}

// Plane returns the data plane the cluster's I/O is accounted against (nil
// when none is attached).
func (c *Cluster) Plane() storage.DataPlane { return c.plane }

// planeRegistrar is implemented by planes that want devices pre-registered
// so the serving hot path never pays channel-creation cost.
type planeRegistrar interface {
	Register(deviceID string, media storage.Media)
}

// planeUnregistrar is the reclamation side of planeRegistrar: each cluster
// view drops its registration when a node leaves, and the plane frees the
// device's channel once the last view lets go (registrations are
// refcounted, so views of other shards mid-churn-fan-out stay safe).
type planeUnregistrar interface {
	Unregister(deviceID string, media storage.Media)
}

// AddNode joins a fresh worker with the given storage spec and task slots to
// the cluster (node membership churn, e.g. scale-out mid-workload). Node ids
// are never reused.
func (c *Cluster) AddNode(spec storage.NodeSpec, slots int) *Node {
	n := &Node{
		id:      c.nextID,
		name:    fmt.Sprintf("worker-%d", c.nextID),
		devices: make(map[storage.Media][]*storage.Device),
		slots:   slots,
	}
	c.nextID++
	reg, _ := c.plane.(planeRegistrar)
	for _, ds := range spec {
		for j := 0; j < ds.Count; j++ {
			id := fmt.Sprintf("%s/%s-%d", n.name, ds.Media, j)
			d := storage.NewDevice(c.engine, id, ds.Media, ds.Capacity, ds.ReadBW, ds.WriteBW)
			n.devices[ds.Media] = append(n.devices[ds.Media], d)
			if reg != nil {
				reg.Register(id, ds.Media)
			}
		}
	}
	c.nodes = append(c.nodes, n)
	return n
}

// RemoveNode detaches the worker with the given id from the cluster,
// returning it (nil when unknown). Its devices leave capacity accounting;
// the caller is responsible for the replicas it held (dfs.FileSystem.FailNode
// wraps this with replica teardown).
func (c *Cluster) RemoveNode(id int) *Node {
	for i, n := range c.nodes {
		if n.id == id {
			c.nodes = append(c.nodes[:i], c.nodes[i+1:]...)
			if unreg, ok := c.plane.(planeUnregistrar); ok {
				for _, d := range n.AllDevices() {
					unreg.Unregister(d.ID(), d.Media())
				}
			}
			return n
		}
	}
	return nil
}

// MustNew is New but panics on error; convenient in tests and examples.
func MustNew(engine *sim.Engine, cfg Config) *Cluster {
	c, err := New(engine, cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Engine returns the simulation engine driving the cluster.
func (c *Cluster) Engine() *sim.Engine { return c.engine }

// Nodes returns all worker nodes.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Node returns the worker with the given id, or nil after it has left the
// cluster. Ids equal slice positions only until the first membership change,
// so this searches rather than indexes.
func (c *Cluster) Node(id int) *Node {
	for _, n := range c.nodes {
		if n.id == id {
			return n
		}
	}
	return nil
}

// Size returns the number of worker nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// TotalSlots returns the aggregate number of task slots.
func (c *Cluster) TotalSlots() int {
	total := 0
	for _, n := range c.nodes {
		total += n.slots
	}
	return total
}

// TierUsage aggregates used and capacity bytes for a media across the
// cluster.
func (c *Cluster) TierUsage(media storage.Media) (used, capacity int64) {
	for _, n := range c.nodes {
		used += n.TierUsed(media)
		capacity += n.TierCapacity(media)
	}
	return used, capacity
}

// TierUtilization returns used/capacity for the media, or 0 if the cluster
// has no devices of that media.
func (c *Cluster) TierUtilization(media storage.Media) float64 {
	used, capacity := c.TierUsage(media)
	if capacity == 0 {
		return 0
	}
	return float64(used) / float64(capacity)
}
