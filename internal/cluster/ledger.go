package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"

	"octostore/internal/storage"
)

// TierLedger is the sharded accounting layer for per-tier capacity: when the
// simulation core is partitioned into namespace shards, each shard owns a
// private cluster view whose device capacities are its soft quota, and the
// ledger tracks the remainder of the physical tier capacity that no shard
// has claimed yet. All fields are atomics, so shard loops reconcile their
// quotas against the tier totals without any cross-shard locking.
//
// Capacity conservation is the ledger's contract. For every tier, at every
// instant:
//
//	free + reserved + Σ(shard cluster capacity) == total
//
// where `free` is unclaimed pool capacity, `reserved` is capacity held by
// in-flight two-phase reservations (claimed from the pool but not yet
// applied to a shard's devices), and `total` shrinks only through node loss
// (ShrinkTotal) and grows only through node joins (AddCapacity). Check
// verifies the equation given the summed shard capacities.
//
// Cross-shard capacity movement is a two-phase reserve/commit protocol:
//
//  1. Reserve(tier, bytes) atomically moves bytes from the free pool into
//     the reserved account (any goroutine may call it).
//  2. The borrowing shard applies the bytes to its own cluster view
//     (Device.Grow) on its shard loop, then calls Commit, which drops the
//     reserved account — the bytes now live in the shard's capacity term.
//     If the shard cannot apply them (e.g. the tier's devices vanished in a
//     churn window), Abort returns the bytes to the free pool instead.
//
// A reservation that is never committed therefore never leaks capacity: the
// bytes stay visible in the reserved term until Commit or Abort resolves
// them, and the conservation equation holds at every step of the protocol.
type TierLedger struct {
	free     [3]atomic.Int64
	reserved [3]atomic.Int64
	total    [3]atomic.Int64
	// deficit is physical capacity that died (node loss) while its bytes
	// were out on loan as shard quota: it cannot be debited from the pool
	// yet, so it is collected from future Returns — the first bytes a shard
	// gives back retire against the deficit instead of re-entering the pool.
	deficit [3]atomic.Int64

	// Protocol counters for reports and tests.
	reserves atomic.Int64
	commits  atomic.Int64
	aborts   atomic.Int64

	// tenants holds per-tenant borrow budgets; tenantMu guards the map
	// (accounts themselves are atomic).
	tenantMu sync.RWMutex
	tenants  map[storage.TenantID]*tenantAccount
}

// tenantAccount caps one tenant's cumulative pool borrows per tier. The
// per-tenant conservation contract: at every instant
//
//	committed[m] + reserved[m] ≤ limit[m]   (when limit[m] > 0)
//
// where `reserved` is the tenant's share of in-flight reservations and
// `committed` only ever grows by moving bytes out of `reserved` (Commit),
// so a tenant can never commit past its quota regardless of interleaving.
// The budget is a cumulative commitment cap — returned capacity is pooled,
// not attributable, so it does not replenish the tenant's budget.
type tenantAccount struct {
	limit     [3]int64 // 0 = unlimited on that tier
	reserved  [3]atomic.Int64
	committed [3]atomic.Int64
}

// NewTierLedger builds an empty ledger; AddCapacity introduces tier totals.
func NewTierLedger() *TierLedger { return &TierLedger{} }

// AddCapacity grows a tier's total physical capacity by `total` bytes, of
// which `pooled` bytes enter the free pool (the rest was granted directly to
// shard quotas by the caller). Used at construction and on node joins.
func (l *TierLedger) AddCapacity(m storage.Media, total, pooled int64) {
	if pooled < 0 || pooled > total {
		panic(fmt.Sprintf("cluster: pooled %d outside [0, %d]", pooled, total))
	}
	l.total[m].Add(total)
	l.free[m].Add(pooled)
}

// ShrinkTotal removes capacity from a tier's total (node loss: the departed
// node's devices left the shards' capacity terms wholesale).
func (l *TierLedger) ShrinkTotal(m storage.Media, bytes int64) {
	l.total[m].Add(-bytes)
}

// FreeBytes returns the unclaimed pool capacity of a tier. The sharded
// serving layer installs this as every shard's tier-headroom hook, so
// policies see quota + borrowable pool when sizing upgrade decisions.
func (l *TierLedger) FreeBytes(m storage.Media) int64 { return l.free[m].Load() }

// ReservedBytes returns the capacity held by unresolved reservations.
func (l *TierLedger) ReservedBytes(m storage.Media) int64 { return l.reserved[m].Load() }

// TotalBytes returns the tier's tracked physical capacity.
func (l *TierLedger) TotalBytes(m storage.Media) int64 { return l.total[m].Load() }

// Reserves returns how many reservations were ever taken.
func (l *TierLedger) Reserves() int64 { return l.reserves.Load() }

// Commits returns how many reservations were committed.
func (l *TierLedger) Commits() int64 { return l.commits.Load() }

// Aborts returns how many reservations were aborted.
func (l *TierLedger) Aborts() int64 { return l.aborts.Load() }

// SetTenantQuota caps how much pool capacity reservations tagged with the
// tenant may ever commit on a tier (0 or negative lifts the cap). Configure
// before traffic; installing a quota below a tenant's already-committed
// bytes only blocks further borrows.
func (l *TierLedger) SetTenantQuota(t storage.TenantID, m storage.Media, limit int64) {
	if limit < 0 {
		limit = 0
	}
	l.tenantMu.Lock()
	defer l.tenantMu.Unlock()
	if l.tenants == nil {
		l.tenants = make(map[storage.TenantID]*tenantAccount)
	}
	acct := l.tenants[t]
	if acct == nil {
		acct = &tenantAccount{}
		l.tenants[t] = acct
	}
	acct.limit[m] = limit
}

func (l *TierLedger) tenant(t storage.TenantID) *tenantAccount {
	l.tenantMu.RLock()
	defer l.tenantMu.RUnlock()
	return l.tenants[t]
}

// TenantCommittedBytes returns how much of the tenant's budget has been
// committed on a tier.
func (l *TierLedger) TenantCommittedBytes(t storage.TenantID, m storage.Media) int64 {
	if acct := l.tenant(t); acct != nil {
		return acct.committed[m].Load()
	}
	return 0
}

// TenantReservedBytes returns the tenant's share of unresolved reservations
// on a tier.
func (l *TierLedger) TenantReservedBytes(t storage.TenantID, m storage.Media) int64 {
	if acct := l.tenant(t); acct != nil {
		return acct.reserved[m].Load()
	}
	return 0
}

// TenantQuota returns the tenant's configured cap on a tier (0 = unlimited).
func (l *TierLedger) TenantQuota(t storage.TenantID, m storage.Media) int64 {
	if acct := l.tenant(t); acct != nil {
		return acct.limit[m]
	}
	return 0
}

// ReserveFor is Reserve with a tenant identity: the claim is additionally
// admitted against the tenant's budget, and fails — without touching the
// pool — when committing the bytes would exceed the tenant's quota.
// Tenants without a configured account (including DefaultTenant unless one
// was installed for it) reserve exactly like the untagged Reserve.
func (l *TierLedger) ReserveFor(t storage.TenantID, m storage.Media, bytes int64) (*QuotaReservation, bool) {
	if bytes <= 0 {
		return nil, false
	}
	acct := l.tenant(t)
	metered := acct != nil && acct.limit[m] > 0
	if metered {
		for {
			r := acct.reserved[m].Load()
			if acct.committed[m].Load()+r+bytes > acct.limit[m] {
				return nil, false
			}
			if acct.reserved[m].CompareAndSwap(r, r+bytes) {
				break
			}
		}
	}
	res, ok := l.Reserve(m, bytes)
	if !ok {
		if metered {
			acct.reserved[m].Add(-bytes)
		}
		return nil, false
	}
	if metered {
		res.acct = acct
	}
	return res, true
}

// Reserve is phase one of the cross-shard protocol: atomically claim bytes
// from the tier's free pool. It returns false (and no reservation) when the
// pool cannot cover the request.
func (l *TierLedger) Reserve(m storage.Media, bytes int64) (*QuotaReservation, bool) {
	if bytes <= 0 {
		return nil, false
	}
	for {
		f := l.free[m].Load()
		if f < bytes {
			return nil, false
		}
		if l.free[m].CompareAndSwap(f, f-bytes) {
			break
		}
	}
	l.reserved[m].Add(bytes)
	l.reserves.Add(1)
	return &QuotaReservation{ledger: l, media: m, bytes: bytes}, true
}

// debitFree removes up to `bytes` from the tier's free pool and returns how
// much was actually debited.
func (l *TierLedger) debitFree(m storage.Media, bytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	for {
		f := l.free[m].Load()
		take := bytes
		if take > f {
			take = f
		}
		if take <= 0 {
			return 0
		}
		if l.free[m].CompareAndSwap(f, f-take) {
			return take
		}
	}
}

// Retire removes physical capacity from circulation without a matching
// shard-capacity decrease — node loss retiring the departed node's pooled
// share. Whatever the free pool can cover is debited (and leaves the total)
// immediately; any shortfall means the dead capacity is still out on loan
// as shard quota, so it is recorded as a deficit that future Returns pay
// down before re-entering the pool. Dead-node capacity therefore can never
// be borrowed back into existence, no matter when the loans come home.
func (l *TierLedger) Retire(m storage.Media, bytes int64) {
	if bytes <= 0 {
		return
	}
	taken := l.debitFree(m, bytes)
	l.total[m].Add(-taken)
	if rest := bytes - taken; rest > 0 {
		l.deficit[m].Add(rest)
	}
}

// DeficitBytes returns the capacity still owed against retirements.
func (l *TierLedger) DeficitBytes(m storage.Media) int64 { return l.deficit[m].Load() }

// Return gives quota back after a shard shrank its own devices by the same
// amount (quota reconciliation). Returned bytes first retire any
// outstanding deficit (capacity whose physical backing died while on loan);
// only the remainder re-enters the free pool.
func (l *TierLedger) Return(m storage.Media, bytes int64) {
	if bytes < 0 {
		panic(fmt.Sprintf("cluster: negative quota return %d", bytes))
	}
	for bytes > 0 {
		d := l.deficit[m].Load()
		if d == 0 {
			break
		}
		pay := bytes
		if pay > d {
			pay = d
		}
		if l.deficit[m].CompareAndSwap(d, d-pay) {
			l.total[m].Add(-pay)
			bytes -= pay
		}
	}
	if bytes > 0 {
		l.free[m].Add(bytes)
	}
}

// Check verifies capacity conservation given the summed per-tier capacities
// of every shard's cluster view. It may be called at any time, including
// while reservations are unresolved.
func (l *TierLedger) Check(granted [3]int64) error {
	for _, m := range storage.AllMedia {
		free, reserved, total := l.free[m].Load(), l.reserved[m].Load(), l.total[m].Load()
		if free < 0 {
			return fmt.Errorf("cluster: ledger %s free negative: %d", m, free)
		}
		if reserved < 0 {
			return fmt.Errorf("cluster: ledger %s reserved negative: %d", m, reserved)
		}
		if got := free + reserved + granted[m]; got != total {
			return fmt.Errorf("cluster: ledger %s diverged: free %d + reserved %d + shard capacity %d = %d, total %d",
				m, free, reserved, granted[m], got, total)
		}
	}
	l.tenantMu.RLock()
	defer l.tenantMu.RUnlock()
	for t, acct := range l.tenants {
		for _, m := range storage.AllMedia {
			res, com := acct.reserved[m].Load(), acct.committed[m].Load()
			if res < 0 {
				return fmt.Errorf("cluster: tenant %d ledger %s reserved negative: %d", t, m, res)
			}
			if com < 0 {
				return fmt.Errorf("cluster: tenant %d ledger %s committed negative: %d", t, m, com)
			}
			if limit := acct.limit[m]; limit > 0 && com+res > limit {
				return fmt.Errorf("cluster: tenant %d ledger %s over quota: committed %d + reserved %d > limit %d",
					t, m, com, res, limit)
			}
		}
	}
	return nil
}

// QuotaReservation is one in-flight phase-two handle: capacity claimed from
// the pool, awaiting Commit (applied to a shard) or Abort (returned).
type QuotaReservation struct {
	ledger   *TierLedger
	media    storage.Media
	bytes    int64
	resolved bool
	acct     *tenantAccount // non-nil when admitted against a tenant budget
}

// Bytes returns the reserved amount.
func (r *QuotaReservation) Bytes() int64 { return r.bytes }

// Commit resolves the reservation after the bytes were applied to a shard's
// cluster view; the reserved account drops and the capacity now lives in the
// shard's devices.
func (r *QuotaReservation) Commit() {
	if r.resolved {
		panic("cluster: quota reservation resolved twice")
	}
	r.resolved = true
	r.ledger.reserved[r.media].Add(-r.bytes)
	if r.acct != nil {
		// Committed grows before reserved shrinks, so the tenant's
		// committed+reserved sum never transiently dips below its true
		// value — admission stays conservative under concurrency.
		r.acct.committed[r.media].Add(r.bytes)
		r.acct.reserved[r.media].Add(-r.bytes)
	}
	r.ledger.commits.Add(1)
}

// Abort resolves the reservation by returning the bytes to the free pool.
func (r *QuotaReservation) Abort() {
	if r.resolved {
		panic("cluster: quota reservation resolved twice")
	}
	r.resolved = true
	r.ledger.reserved[r.media].Add(-r.bytes)
	r.ledger.free[r.media].Add(r.bytes)
	if r.acct != nil {
		r.acct.reserved[r.media].Add(-r.bytes)
	}
	r.ledger.aborts.Add(1)
}
