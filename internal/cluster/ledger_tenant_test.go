package cluster_test

import (
	"math/rand"
	"sync"
	"testing"

	"octostore/internal/cluster"
	"octostore/internal/storage"
)

// TestLedgerTenantQuotaEnforced walks the tenant-metered two-phase protocol:
// reservations are admitted against committed+reserved vs the quota, commits
// consume budget permanently (the quota is a cumulative borrow cap), aborts
// refund it, and an unmetered tenant is untouched by another tenant's limit.
func TestLedgerTenantQuotaEnforced(t *testing.T) {
	l := cluster.NewTierLedger()
	m := storage.SSD
	l.AddCapacity(m, 10_000, 10_000)
	l.SetTenantQuota(1, m, 1000)

	res, ok := l.ReserveFor(1, m, 600)
	if !ok {
		t.Fatal("reserve within quota failed")
	}
	if got := l.TenantReservedBytes(1, m); got != 600 {
		t.Fatalf("tenant reserved %d, want 600", got)
	}
	// Mid-protocol the outstanding reservation counts against the quota.
	if _, ok := l.ReserveFor(1, m, 500); ok {
		t.Fatal("reserve admitted past quota while 600 is outstanding")
	}
	res.Commit()
	if got := l.TenantCommittedBytes(1, m); got != 600 {
		t.Fatalf("tenant committed %d, want 600", got)
	}
	if got := l.TenantReservedBytes(1, m); got != 0 {
		t.Fatalf("tenant reserved %d after commit, want 0", got)
	}

	// An abort refunds the budget in full.
	res2, ok := l.ReserveFor(1, m, 400)
	if !ok {
		t.Fatal("reserve up to quota failed")
	}
	res2.Abort()
	if got := l.TenantReservedBytes(1, m); got != 0 {
		t.Fatalf("tenant reserved %d after abort, want 0", got)
	}

	// Committed budget is spent for good: the cap is cumulative.
	res3, ok := l.ReserveFor(1, m, 400)
	if !ok {
		t.Fatal("reserve of refunded budget failed")
	}
	res3.Commit()
	if _, ok := l.ReserveFor(1, m, 1); ok {
		t.Fatal("reserve admitted past an exhausted quota")
	}

	// Another tenant (no quota) still sees the whole pool.
	if res, ok := l.ReserveFor(2, m, 5000); !ok {
		t.Fatal("unmetered tenant blocked by a stranger's quota")
	} else {
		res.Commit()
	}
	// DefaultTenant is unmetered unless explicitly limited.
	if res, ok := l.ReserveFor(storage.DefaultTenant, m, 1000); !ok {
		t.Fatal("default tenant blocked")
	} else {
		res.Abort()
	}
	// Committed so far: tenant 1's 600+400 plus tenant 2's 5000.
	var granted [3]int64
	granted[m] = 6000
	if err := l.Check(granted); err != nil {
		t.Fatal(err)
	}
	if got := l.TenantQuota(1, m); got != 1000 {
		t.Fatalf("quota readback %d, want 1000", got)
	}
}

// TestLedgerTenantQuotaPoolStillChecked makes sure the tenant gate composes
// with the pool gate: a reservation inside the tenant's budget but beyond
// the free pool fails and refunds the tenant's reserved account exactly.
func TestLedgerTenantQuotaPoolStillChecked(t *testing.T) {
	l := cluster.NewTierLedger()
	m := storage.HDD
	l.AddCapacity(m, 100, 100)
	l.SetTenantQuota(1, m, 1_000_000)
	if _, ok := l.ReserveFor(1, m, 200); ok {
		t.Fatal("reserve beyond the pool succeeded")
	}
	if got := l.TenantReservedBytes(1, m); got != 0 {
		t.Fatalf("failed reserve leaked %d tenant-reserved bytes", got)
	}
	if err := l.Check([3]int64{}); err != nil {
		t.Fatal(err)
	}
}

// TestLedgerTenantQuotaConcurrent hammers a metered tenant from many
// goroutines (run under -race) with random commit/abort resolutions and
// asserts the quota held: committed bytes never exceed the limit, nothing
// leaked in the reserved account, and the conservation equation closes.
func TestLedgerTenantQuotaConcurrent(t *testing.T) {
	l := cluster.NewTierLedger()
	m := storage.Memory
	const limit = 64 * 1024
	l.AddCapacity(m, 1<<30, 1<<30)
	l.SetTenantQuota(1, m, limit)

	var committed [8]int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 1))
			for i := 0; i < 2000; i++ {
				ask := int64(rng.Intn(512) + 1)
				res, ok := l.ReserveFor(1, m, ask)
				if !ok {
					continue
				}
				if rng.Intn(2) == 0 {
					res.Commit()
					committed[g] += ask
				} else {
					res.Abort()
				}
				if got := l.TenantCommittedBytes(1, m); got > limit {
					t.Errorf("tenant committed %d exceeds limit %d", got, limit)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	var want int64
	for _, c := range committed {
		want += c
	}
	if got := l.TenantCommittedBytes(1, m); got != want || got > limit {
		t.Fatalf("tenant committed %d, want %d (limit %d)", got, want, limit)
	}
	if got := l.TenantReservedBytes(1, m); got != 0 {
		t.Fatalf("tenant reserved %d after quiescence, want 0", got)
	}
	var granted [3]int64
	granted[m] = want
	// Everything committed was applied nowhere (no devices grown in this
	// test), so Check's granted argument carries the committed sum.
	if err := l.Check(granted); err != nil {
		t.Fatal(err)
	}
}
