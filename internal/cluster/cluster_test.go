package cluster

import (
	"testing"

	"octostore/internal/sim"
	"octostore/internal/storage"
)

func testConfig() Config {
	return Config{Workers: 3, SlotsPerNode: 2, Spec: storage.SmallWorkerSpec()}
}

func TestNewValidation(t *testing.T) {
	e := sim.NewEngine()
	if _, err := New(e, Config{Workers: 0, SlotsPerNode: 1, Spec: storage.SmallWorkerSpec()}); err == nil {
		t.Fatal("expected error for zero workers")
	}
	if _, err := New(e, Config{Workers: 1, SlotsPerNode: 0, Spec: storage.SmallWorkerSpec()}); err == nil {
		t.Fatal("expected error for zero slots")
	}
	if _, err := New(e, Config{Workers: 1, SlotsPerNode: 1}); err == nil {
		t.Fatal("expected error for empty spec")
	}
}

func TestClusterTopology(t *testing.T) {
	e := sim.NewEngine()
	c := MustNew(e, testConfig())
	if c.Size() != 3 {
		t.Fatalf("size = %d", c.Size())
	}
	if c.TotalSlots() != 6 {
		t.Fatalf("slots = %d", c.TotalSlots())
	}
	n := c.Node(1)
	if n.Name() != "worker-1" || n.ID() != 1 {
		t.Fatalf("node identity: %s/%d", n.Name(), n.ID())
	}
	if len(n.Devices(storage.Memory)) != 1 {
		t.Fatalf("memory devices = %d", len(n.Devices(storage.Memory)))
	}
	if got := len(n.AllDevices()); got != 3 {
		t.Fatalf("all devices = %d", got)
	}
}

func TestPaperConfigShape(t *testing.T) {
	e := sim.NewEngine()
	c := MustNew(e, PaperConfig())
	if c.Size() != 11 {
		t.Fatalf("paper cluster size = %d", c.Size())
	}
	n := c.Node(0)
	if len(n.Devices(storage.HDD)) != 3 {
		t.Fatalf("paper HDDs per node = %d", len(n.Devices(storage.HDD)))
	}
	if got := n.TierCapacity(storage.Memory); got != 4*storage.GB {
		t.Fatalf("memory tier capacity = %d", got)
	}
	_, total := c.TierUsage(storage.Memory)
	if total != 11*4*storage.GB {
		t.Fatalf("cluster memory capacity = %d", total)
	}
}

func TestPickDevicePrefersLeastLoaded(t *testing.T) {
	e := sim.NewEngine()
	cfg := Config{Workers: 1, SlotsPerNode: 1, Spec: storage.NodeSpec{
		{Media: storage.HDD, Capacity: storage.GB, ReadBW: 100e6, WriteBW: 100e6, Count: 2},
	}}
	c := MustNew(e, cfg)
	n := c.Node(0)
	first := n.PickDevice(storage.HDD, 1)
	if first == nil {
		t.Fatal("no device picked")
	}
	first.StartWrite(storage.MB, nil) // make it busy
	second := n.PickDevice(storage.HDD, 1)
	if second == first {
		t.Fatal("picked the busy device")
	}
}

func TestPickDeviceRespectsCapacity(t *testing.T) {
	e := sim.NewEngine()
	c := MustNew(e, testConfig())
	n := c.Node(0)
	d := n.PickDevice(storage.Memory, storage.MB)
	if d == nil {
		t.Fatal("expected a memory device")
	}
	if err := d.Reserve(d.Capacity()); err != nil {
		t.Fatal(err)
	}
	if got := n.PickDevice(storage.Memory, 1); got != nil {
		t.Fatal("picked a full device")
	}
}

func TestTierUsageAndUtilization(t *testing.T) {
	e := sim.NewEngine()
	c := MustNew(e, testConfig())
	d := c.Node(0).Devices(storage.SSD)[0]
	if err := d.Reserve(128 * storage.MB); err != nil {
		t.Fatal(err)
	}
	used, capacity := c.TierUsage(storage.SSD)
	if used != 128*storage.MB {
		t.Fatalf("used = %d", used)
	}
	if capacity != 3*256*storage.MB {
		t.Fatalf("capacity = %d", capacity)
	}
	wantUtil := float64(used) / float64(capacity)
	if got := c.TierUtilization(storage.SSD); got != wantUtil {
		t.Fatalf("utilization = %v, want %v", got, wantUtil)
	}
}

func TestTierUtilizationNoDevices(t *testing.T) {
	e := sim.NewEngine()
	cfg := Config{Workers: 1, SlotsPerNode: 1, Spec: storage.NodeSpec{
		{Media: storage.HDD, Capacity: storage.GB, ReadBW: 1, WriteBW: 1, Count: 1},
	}}
	c := MustNew(e, cfg)
	if got := c.TierUtilization(storage.Memory); got != 0 {
		t.Fatalf("utilization of absent tier = %v", got)
	}
}
