package gbt

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
)

// Objective selects the loss minimised by boosting.
type Objective int

const (
	// LogisticBinary is log-loss for binary classification; Predict returns
	// probabilities. This is the paper's "logistic regression for binary
	// classification" learning objective.
	LogisticBinary Objective = iota
	// SquaredError is plain regression; Predict returns raw scores.
	SquaredError
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	switch o {
	case LogisticBinary:
		return "binary:logistic"
	case SquaredError:
		return "reg:squarederror"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// Params are the boosting hyperparameters. The zero value is unusable; use
// DefaultParams or PaperParams as a starting point.
type Params struct {
	// MaxDepth bounds tree depth (the paper tunes d=20).
	MaxDepth int
	// Rounds is the number of boosting rounds per Train call (paper: r=10).
	Rounds int
	// LearningRate is the shrinkage eta applied to each tree.
	LearningRate float64
	// Lambda is the L2 regulariser on leaf weights.
	Lambda float64
	// Gamma is the minimum loss reduction required to make a split.
	Gamma float64
	// MinChildWeight is the minimum hessian sum in a child.
	MinChildWeight float64
	// Objective selects the loss.
	Objective Objective
	// BaseScore is the global prediction bias in probability space for
	// LogisticBinary (default 0.5) or output space for SquaredError.
	BaseScore float64
	// MaxTrees, when positive, caps the ensemble size under incremental
	// Update calls; the oldest trees are retired first, which bounds
	// prediction cost and gives the model a forgetting horizon.
	MaxTrees int
}

// DefaultParams returns XGBoost-like defaults.
func DefaultParams() Params {
	return Params{
		MaxDepth:       6,
		Rounds:         10,
		LearningRate:   0.3,
		Lambda:         1.0,
		Gamma:          0.0,
		MinChildWeight: 1.0,
		Objective:      LogisticBinary,
		BaseScore:      0.5,
	}
}

// PaperParams returns the hyperparameters found by the paper's grid search
// (Section 4.3): max depth 20, 10 boosting rounds, logistic objective,
// defaults elsewhere.
func PaperParams() Params {
	p := DefaultParams()
	p.MaxDepth = 20
	p.Rounds = 10
	return p
}

func (p *Params) validate() error {
	if p.MaxDepth <= 0 {
		return errors.New("gbt: MaxDepth must be positive")
	}
	if p.Rounds <= 0 {
		return errors.New("gbt: Rounds must be positive")
	}
	if p.LearningRate <= 0 || p.LearningRate > 1 {
		return errors.New("gbt: LearningRate must be in (0, 1]")
	}
	if p.Lambda < 0 || p.Gamma < 0 || p.MinChildWeight < 0 {
		return errors.New("gbt: Lambda, Gamma, MinChildWeight must be non-negative")
	}
	if p.Objective == LogisticBinary && (p.BaseScore <= 0 || p.BaseScore >= 1) {
		return errors.New("gbt: BaseScore must be in (0, 1) for the logistic objective")
	}
	return nil
}

// node is one decision-tree node in a flat array representation.
type node struct {
	Feature     int     `json:"f"`
	Threshold   float64 `json:"t"`
	DefaultLeft bool    `json:"d"`
	Left        int32   `json:"l"`
	Right       int32   `json:"r"`
	Leaf        float64 `json:"w"`
	IsLeaf      bool    `json:"leaf"`
	Gain        float64 `json:"g"`
}

// Tree is a single regression tree of the ensemble. Leaf values already
// include shrinkage.
type Tree struct {
	nodes []node
}

// NumNodes returns the node count (internal + leaves).
func (t *Tree) NumNodes() int { return len(t.nodes) }

// predict routes x down the tree; missing features follow the learned
// default direction.
func (t *Tree) predict(x []float64) float64 {
	i := int32(0)
	for {
		n := &t.nodes[i]
		if n.IsLeaf {
			return n.Leaf
		}
		v := x[n.Feature]
		switch {
		case IsMissing(v):
			if n.DefaultLeft {
				i = n.Left
			} else {
				i = n.Right
			}
		case v < n.Threshold:
			i = n.Left
		default:
			i = n.Right
		}
	}
}

// Model is a trained gradient-boosted tree ensemble.
type Model struct {
	params     Params
	trees      []*Tree
	baseMargin float64
}

// Params returns the hyperparameters the model was built with.
func (m *Model) Params() Params { return m.params }

// NumTrees returns the current ensemble size.
func (m *Model) NumTrees() int { return len(m.trees) }

// sigmoid is the logistic link.
func sigmoid(z float64) float64 { return 1.0 / (1.0 + math.Exp(-z)) }

// logit is the inverse link, clamped away from the poles.
func logit(p float64) float64 {
	const eps = 1e-9
	if p < eps {
		p = eps
	}
	if p > 1-eps {
		p = 1 - eps
	}
	return math.Log(p / (1 - p))
}

// PredictMargin returns the raw additive score for a feature vector.
func (m *Model) PredictMargin(x []float64) float64 {
	margin := m.baseMargin
	for _, t := range m.trees {
		margin += t.predict(x)
	}
	return margin
}

// Predict returns the probability (LogisticBinary) or score (SquaredError)
// for a feature vector.
func (m *Model) Predict(x []float64) float64 {
	margin := m.PredictMargin(x)
	if m.params.Objective == LogisticBinary {
		return sigmoid(margin)
	}
	return margin
}

// PredictBatch evaluates Predict for every row of a matrix.
func (m *Model) PredictBatch(x *Matrix) []float64 {
	out := make([]float64, x.Rows())
	for i := range out {
		out[i] = m.Predict(x.Row(i))
	}
	return out
}

// FeatureImportance returns total split gain per feature, normalised to sum
// to 1 (all zeros when the ensemble has no splits).
func (m *Model) FeatureImportance(numFeatures int) []float64 {
	imp := make([]float64, numFeatures)
	var total float64
	for _, t := range m.trees {
		for i := range t.nodes {
			n := &t.nodes[i]
			if !n.IsLeaf && n.Feature < numFeatures {
				imp[n.Feature] += n.Gain
				total += n.Gain
			}
		}
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}

// ApproxMemoryBytes estimates the model's in-memory footprint (Section 7.7
// reports ~200 KB for the paper's models).
func (m *Model) ApproxMemoryBytes() int {
	const nodeBytes = 40 // struct fields, amortised
	total := 0
	for _, t := range m.trees {
		total += nodeBytes * len(t.nodes)
	}
	return total
}

// modelJSON is the serialised form of a Model.
type modelJSON struct {
	Params     Params   `json:"params"`
	BaseMargin float64  `json:"base_margin"`
	Trees      [][]node `json:"trees"`
}

// MarshalJSON implements json.Marshaler.
func (m *Model) MarshalJSON() ([]byte, error) {
	mj := modelJSON{Params: m.params, BaseMargin: m.baseMargin}
	for _, t := range m.trees {
		mj.Trees = append(mj.Trees, t.nodes)
	}
	return json.Marshal(mj)
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *Model) UnmarshalJSON(data []byte) error {
	var mj modelJSON
	if err := json.Unmarshal(data, &mj); err != nil {
		return err
	}
	m.params = mj.Params
	m.baseMargin = mj.BaseMargin
	m.trees = nil
	for _, nodes := range mj.Trees {
		m.trees = append(m.trees, &Tree{nodes: nodes})
	}
	return nil
}
