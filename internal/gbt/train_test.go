package gbt

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synthBinary builds a learnable binary dataset: y = 1 when x0 + x1 > 1.
func synthBinary(rng *rand.Rand, n int) (*Matrix, []float64) {
	x := NewMatrix(3)
	y := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		a, b, c := rng.Float64(), rng.Float64(), rng.Float64()
		x.AppendRow([]float64{a, b, c})
		if a+b > 1 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	return x, y
}

func accuracy(m *Model, x *Matrix, y []float64) float64 {
	correct := 0
	for i := 0; i < x.Rows(); i++ {
		p := m.Predict(x.Row(i))
		if (p >= 0.5) == (y[i] >= 0.5) {
			correct++
		}
	}
	return float64(correct) / float64(x.Rows())
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2)
	m.AppendRow([]float64{1, 2})
	m.AppendRow([]float64{3, Missing})
	if m.Rows() != 2 || m.Cols() != 2 {
		t.Fatalf("dims = %dx%d", m.Rows(), m.Cols())
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatal("At() wrong values")
	}
	if !IsMissing(m.At(1, 1)) {
		t.Fatal("missing value lost")
	}
	if got := m.Row(1); got[0] != 3 {
		t.Fatalf("Row(1) = %v", got)
	}
}

func TestMatrixAppendWrongWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(2).AppendRow([]float64{1})
}

func TestParamsValidation(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.MaxDepth = 0 },
		func(p *Params) { p.Rounds = 0 },
		func(p *Params) { p.LearningRate = 0 },
		func(p *Params) { p.LearningRate = 1.5 },
		func(p *Params) { p.Lambda = -1 },
		func(p *Params) { p.BaseScore = 0 },
		func(p *Params) { p.BaseScore = 1 },
	}
	x, y := synthBinary(rand.New(rand.NewSource(1)), 10)
	for i, mutate := range cases {
		p := DefaultParams()
		mutate(&p)
		if _, err := Train(x, y, p); err == nil {
			t.Fatalf("case %d: invalid params accepted", i)
		}
	}
}

func TestTrainRejectsBadInput(t *testing.T) {
	p := DefaultParams()
	if _, err := Train(NewMatrix(2), nil, p); err == nil {
		t.Fatal("empty training set accepted")
	}
	x, y := synthBinary(rand.New(rand.NewSource(1)), 10)
	if _, err := Train(x, y[:5], p); err == nil {
		t.Fatal("mismatched labels accepted")
	}
}

func TestTrainLearnsLinearBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	xTrain, yTrain := synthBinary(rng, 2000)
	xTest, yTest := synthBinary(rng, 500)
	p := DefaultParams()
	p.Rounds = 20
	m, err := Train(xTrain, yTrain, p)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(m, xTest, yTest); acc < 0.93 {
		t.Fatalf("test accuracy = %.3f, want >= 0.93", acc)
	}
	if m.NumTrees() != 20 {
		t.Fatalf("trees = %d", m.NumTrees())
	}
}

func TestPredictionsAreProbabilities(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x, y := synthBinary(rng, 500)
	m, err := Train(x, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range m.PredictBatch(x) {
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("prediction %v outside [0,1]", p)
		}
	}
}

func TestXORRequiresDepth(t *testing.T) {
	// XOR cannot be separated by a depth-1 ensemble but is easy at depth 2+.
	rng := rand.New(rand.NewSource(3))
	x := NewMatrix(2)
	var y []float64
	for i := 0; i < 2000; i++ {
		a, b := rng.Float64(), rng.Float64()
		x.AppendRow([]float64{a, b})
		if (a > 0.5) != (b > 0.5) {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	p := DefaultParams()
	p.MaxDepth = 3
	p.Rounds = 20
	m, err := Train(x, y, p)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(m, x, y); acc < 0.95 {
		t.Fatalf("XOR accuracy = %.3f, want >= 0.95", acc)
	}
}

func TestMissingValuesRouted(t *testing.T) {
	// Feature 0 present => label is x0>0.5; feature 0 missing => label 1.
	// The learner must route missing values to the positive side.
	rng := rand.New(rand.NewSource(9))
	x := NewMatrix(2)
	var y []float64
	for i := 0; i < 3000; i++ {
		if rng.Float64() < 0.3 {
			x.AppendRow([]float64{Missing, rng.Float64()})
			y = append(y, 1)
		} else {
			v := rng.Float64()
			x.AppendRow([]float64{v, rng.Float64()})
			if v > 0.5 {
				y = append(y, 1)
			} else {
				y = append(y, 0)
			}
		}
	}
	m, err := Train(x, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(m, x, y); acc < 0.97 {
		t.Fatalf("missing-value accuracy = %.3f", acc)
	}
	if p := m.Predict([]float64{Missing, 0.2}); p < 0.7 {
		t.Fatalf("missing x0 predicted %v, want high probability", p)
	}
}

func TestSquaredErrorRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := NewMatrix(1)
	var y []float64
	for i := 0; i < 1000; i++ {
		v := rng.Float64()
		x.AppendRow([]float64{v})
		y = append(y, 3*v+1)
	}
	p := DefaultParams()
	p.Objective = SquaredError
	p.BaseScore = 0
	p.Rounds = 50
	m, err := Train(x, y, p)
	if err != nil {
		t.Fatal(err)
	}
	var mse float64
	for i := 0; i < x.Rows(); i++ {
		d := m.Predict(x.Row(i)) - y[i]
		mse += d * d
	}
	mse /= float64(x.Rows())
	if mse > 0.01 {
		t.Fatalf("regression MSE = %v", mse)
	}
}

func TestIncrementalUpdateAdapts(t *testing.T) {
	// Phase 1 concept: y = x0 > 0.5. Phase 2 concept: y = x0 < 0.5.
	rng := rand.New(rand.NewSource(13))
	gen := func(n int, flipped bool) (*Matrix, []float64) {
		x := NewMatrix(1)
		var y []float64
		for i := 0; i < n; i++ {
			v := rng.Float64()
			x.AppendRow([]float64{v})
			pos := v > 0.5
			if flipped {
				pos = !pos
			}
			if pos {
				y = append(y, 1)
			} else {
				y = append(y, 0)
			}
		}
		return x, y
	}
	x1, y1 := gen(1000, false)
	p := DefaultParams()
	p.MaxTrees = 60
	m, err := Train(x1, y1, p)
	if err != nil {
		t.Fatal(err)
	}
	x2, y2 := gen(1000, true)
	accBefore := accuracy(m, x2, y2)
	for i := 0; i < 8; i++ {
		xb, yb := gen(300, true)
		if err := m.Update(xb, yb, 10); err != nil {
			t.Fatal(err)
		}
	}
	accAfter := accuracy(m, x2, y2)
	if accBefore > 0.5 {
		t.Fatalf("model should be wrong after concept flip, acc = %.3f", accBefore)
	}
	if accAfter < 0.9 {
		t.Fatalf("incremental updates failed to adapt: %.3f -> %.3f", accBefore, accAfter)
	}
	if m.NumTrees() > 60 {
		t.Fatalf("MaxTrees cap violated: %d", m.NumTrees())
	}
}

func TestUpdateValidation(t *testing.T) {
	x, y := synthBinary(rand.New(rand.NewSource(1)), 100)
	m, err := Train(x, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Update(NewMatrix(3), nil, 5); err == nil {
		t.Fatal("empty update accepted")
	}
	if err := m.Update(x, y[:10], 5); err == nil {
		t.Fatal("mismatched update accepted")
	}
}

func TestFeatureImportanceIdentifiesSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x := NewMatrix(3)
	var y []float64
	for i := 0; i < 2000; i++ {
		a, noise1, noise2 := rng.Float64(), rng.Float64(), rng.Float64()
		x.AppendRow([]float64{a, noise1, noise2})
		if a > 0.5 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	m, err := Train(x, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	imp := m.FeatureImportance(3)
	if imp[0] < 0.8 {
		t.Fatalf("importance = %v, feature 0 should dominate", imp)
	}
	var sum float64
	for _, v := range imp {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importance sums to %v", sum)
	}
}

func TestDeterministicTraining(t *testing.T) {
	x, y := synthBinary(rand.New(rand.NewSource(5)), 500)
	m1, err := Train(x, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(x, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < x.Rows(); i++ {
		if m1.Predict(x.Row(i)) != m2.Predict(x.Row(i)) {
			t.Fatal("training is not deterministic")
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	x, y := synthBinary(rand.New(rand.NewSource(17)), 500)
	m, err := Train(x, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var m2 Model
	if err := json.Unmarshal(blob, &m2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < x.Rows(); i++ {
		if m.Predict(x.Row(i)) != m2.Predict(x.Row(i)) {
			t.Fatal("round-tripped model predicts differently")
		}
	}
}

func TestApproxMemoryBytes(t *testing.T) {
	x, y := synthBinary(rand.New(rand.NewSource(23)), 500)
	m, err := Train(x, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if m.ApproxMemoryBytes() <= 0 {
		t.Fatal("memory estimate not positive")
	}
}

func TestPaperParams(t *testing.T) {
	p := PaperParams()
	if p.MaxDepth != 20 || p.Rounds != 10 {
		t.Fatalf("paper params = %+v", p)
	}
	if p.Objective != LogisticBinary {
		t.Fatal("paper objective must be logistic")
	}
}

func TestObjectiveString(t *testing.T) {
	if LogisticBinary.String() != "binary:logistic" || SquaredError.String() != "reg:squarederror" {
		t.Fatal("objective strings wrong")
	}
}

// Property: constant labels produce predictions near that constant.
func TestPropertyConstantLabels(t *testing.T) {
	f := func(seed int64, positive bool) bool {
		rng := rand.New(rand.NewSource(seed))
		x := NewMatrix(2)
		var y []float64
		label := 0.0
		if positive {
			label = 1.0
		}
		for i := 0; i < 50; i++ {
			x.AppendRow([]float64{rng.Float64(), rng.Float64()})
			y = append(y, label)
		}
		m, err := Train(x, y, DefaultParams())
		if err != nil {
			return false
		}
		p := m.Predict([]float64{0.5, 0.5})
		if positive {
			return p > 0.9
		}
		return p < 0.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: predictions never NaN/Inf for arbitrary finite inputs.
func TestPropertyFinitePredictions(t *testing.T) {
	x, y := synthBinary(rand.New(rand.NewSource(29)), 300)
	m, err := Train(x, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b, c float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) ||
			math.IsNaN(b) || math.IsInf(b, 0) ||
			math.IsNaN(c) || math.IsInf(c, 0) {
			return true
		}
		p := m.Predict([]float64{a, b, c})
		return !math.IsNaN(p) && !math.IsInf(p, 0) && p >= 0 && p <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTrain2000x6(b *testing.B) {
	x, y := synthBinary(rand.New(rand.NewSource(1)), 2000)
	p := DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(x, y, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredictSingle(b *testing.B) {
	x, y := synthBinary(rand.New(rand.NewSource(1)), 2000)
	p := PaperParams()
	m, err := Train(x, y, p)
	if err != nil {
		b.Fatal(err)
	}
	row := x.Row(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Predict(row)
	}
}
