package gbt

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Train fits a new model on the given matrix and 0/1 (or regression)
// labels.
func Train(x *Matrix, y []float64, p Params) (*Model, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if x.Rows() == 0 {
		return nil, errors.New("gbt: empty training set")
	}
	if x.Rows() != len(y) {
		return nil, fmt.Errorf("gbt: %d rows but %d labels", x.Rows(), len(y))
	}
	m := &Model{params: p}
	if p.Objective == LogisticBinary {
		m.baseMargin = logit(p.BaseScore)
	} else {
		m.baseMargin = p.BaseScore
	}
	if err := m.boost(x, y, p.Rounds); err != nil {
		return nil, err
	}
	return m, nil
}

// Update continues boosting the existing ensemble for `rounds` rounds using
// a new batch, implementing the paper's incremental learning: the model is
// refined with data points as they become available, adapting to workload
// change without a fixed training window (Section 4.2).
func (m *Model) Update(x *Matrix, y []float64, rounds int) error {
	if rounds <= 0 {
		rounds = m.params.Rounds
	}
	if x.Rows() == 0 {
		return errors.New("gbt: empty update batch")
	}
	if x.Rows() != len(y) {
		return fmt.Errorf("gbt: %d rows but %d labels", x.Rows(), len(y))
	}
	if err := m.boost(x, y, rounds); err != nil {
		return err
	}
	if m.params.MaxTrees > 0 && len(m.trees) > m.params.MaxTrees {
		// Retire the oldest trees. This is an approximation (later trees
		// were fit against their residuals) but gives the ensemble a
		// bounded size and a forgetting horizon for workload shifts.
		drop := len(m.trees) - m.params.MaxTrees
		m.trees = append([]*Tree(nil), m.trees[drop:]...)
	}
	return nil
}

// boost adds `rounds` trees fit to the current ensemble's gradient on
// (x, y).
func (m *Model) boost(x *Matrix, y []float64, rounds int) error {
	n := x.Rows()
	margins := make([]float64, n)
	for i := 0; i < n; i++ {
		margins[i] = m.PredictMargin(x.Row(i))
	}
	grad := make([]float64, n)
	hess := make([]float64, n)
	b := newBuilder(x, m.params)
	for r := 0; r < rounds; r++ {
		m.computeGradients(margins, y, grad, hess)
		tree := b.build(grad, hess)
		m.trees = append(m.trees, tree)
		for i := 0; i < n; i++ {
			margins[i] += tree.predict(x.Row(i))
		}
	}
	return nil
}

// computeGradients fills first and second order gradients of the loss at
// the current margins.
func (m *Model) computeGradients(margins, y, grad, hess []float64) {
	switch m.params.Objective {
	case LogisticBinary:
		for i, mg := range margins {
			p := sigmoid(mg)
			grad[i] = p - y[i]
			h := p * (1 - p)
			if h < 1e-16 {
				h = 1e-16
			}
			hess[i] = h
		}
	case SquaredError:
		for i, mg := range margins {
			grad[i] = mg - y[i]
			hess[i] = 1
		}
	}
}

// builder holds per-training-set state reused across rounds: for each
// feature, the row indices with a present value sorted by that value, plus
// the rows where the feature is missing.
type builder struct {
	x       *Matrix
	params  Params
	sorted  [][]int32 // per feature: rows with present values, ascending
	missing [][]int32 // per feature: rows with missing values
	// scratch
	inNode []bool
}

func newBuilder(x *Matrix, p Params) *builder {
	cols := x.Cols()
	b := &builder{
		x:       x,
		params:  p,
		sorted:  make([][]int32, cols),
		missing: make([][]int32, cols),
		inNode:  make([]bool, x.Rows()),
	}
	for j := 0; j < cols; j++ {
		var present, absent []int32
		for i := 0; i < x.Rows(); i++ {
			if IsMissing(x.At(i, j)) {
				absent = append(absent, int32(i))
			} else {
				present = append(present, int32(i))
			}
		}
		j := j
		sort.SliceStable(present, func(a, c int) bool {
			return b.x.At(int(present[a]), j) < b.x.At(int(present[c]), j)
		})
		b.sorted[j] = present
		b.missing[j] = absent
	}
	return b
}

// split is a candidate split of one tree node.
type split struct {
	feature     int
	threshold   float64
	defaultLeft bool
	gain        float64
	valid       bool
}

// build grows one tree for the given gradient/hessian vectors.
func (b *builder) build(grad, hess []float64) *Tree {
	t := &Tree{}
	rows := make([]int32, b.x.Rows())
	for i := range rows {
		rows[i] = int32(i)
	}
	b.grow(t, rows, grad, hess, 0)
	return t
}

// grow recursively expands a node holding `rows`, returning its index in
// the tree's flat node array.
func (b *builder) grow(t *Tree, rows []int32, grad, hess []float64, depth int) int32 {
	var gSum, hSum float64
	for _, i := range rows {
		gSum += grad[i]
		hSum += hess[i]
	}
	idx := int32(len(t.nodes))
	leafWeight := -gSum / (hSum + b.params.Lambda) * b.params.LearningRate
	t.nodes = append(t.nodes, node{IsLeaf: true, Leaf: leafWeight, Left: -1, Right: -1})
	if depth >= b.params.MaxDepth || len(rows) < 2 {
		return idx
	}
	best := b.findBestSplit(rows, grad, hess, gSum, hSum)
	if !best.valid {
		return idx
	}
	left, right := b.partition(rows, best)
	if len(left) == 0 || len(right) == 0 {
		return idx
	}
	leftIdx := b.grow(t, left, grad, hess, depth+1)
	rightIdx := b.grow(t, right, grad, hess, depth+1)
	t.nodes[idx] = node{
		Feature:     best.feature,
		Threshold:   best.threshold,
		DefaultLeft: best.defaultLeft,
		Left:        leftIdx,
		Right:       rightIdx,
		Gain:        best.gain,
	}
	return idx
}

// findBestSplit runs the exact greedy algorithm with sparsity-aware default
// directions: for every feature it scans the sorted present values once per
// missing-direction choice and keeps the split with the highest gain.
func (b *builder) findBestSplit(rows []int32, grad, hess []float64, gTotal, hTotal float64) split {
	for _, i := range rows {
		b.inNode[i] = true
	}
	defer func() {
		for _, i := range rows {
			b.inNode[i] = false
		}
	}()

	lambda := b.params.Lambda
	parentScore := gTotal * gTotal / (hTotal + lambda)
	var best split

	for j := 0; j < b.x.Cols(); j++ {
		// Gradient mass of this node's rows with a missing value for j.
		var gMiss, hMiss float64
		for _, i := range b.missing[j] {
			if b.inNode[i] {
				gMiss += grad[i]
				hMiss += hess[i]
			}
		}
		// Walk present values in ascending order accumulating left sums.
		var gLeft, hLeft float64
		var prevVal float64
		havePrev := false
		for _, i := range b.sorted[j] {
			if !b.inNode[i] {
				continue
			}
			v := b.x.At(int(i), j)
			if havePrev && v > prevVal {
				threshold := (prevVal + v) / 2
				b.tryThreshold(&best, j, threshold, gLeft, hLeft, gMiss, hMiss, gTotal, hTotal, parentScore)
			}
			gLeft += grad[i]
			hLeft += hess[i]
			prevVal = v
			havePrev = true
		}
		// A final "everything present goes left, missing decides side"
		// split is only meaningful when missing rows exist.
		if havePrev && (gMiss != 0 || hMiss != 0) {
			b.tryThreshold(&best, j, math.Nextafter(prevVal, math.Inf(1)), gLeft, hLeft, gMiss, hMiss, gTotal, hTotal, parentScore)
		}
	}
	return best
}

// tryThreshold evaluates a candidate threshold with both missing-value
// directions and updates best in place.
func (b *builder) tryThreshold(best *split, feature int, threshold, gLeft, hLeft, gMiss, hMiss, gTotal, hTotal, parentScore float64) {
	lambda := b.params.Lambda
	minChild := b.params.MinChildWeight
	for _, missLeft := range [2]bool{true, false} {
		gl, hl := gLeft, hLeft
		if missLeft {
			gl += gMiss
			hl += hMiss
		}
		gr := gTotal - gl
		hr := hTotal - hl
		if hl < minChild || hr < minChild {
			continue
		}
		gain := 0.5*(gl*gl/(hl+lambda)+gr*gr/(hr+lambda)-parentScore) - b.params.Gamma
		if gain <= 0 {
			continue
		}
		if !best.valid || gain > best.gain {
			*best = split{
				feature:     feature,
				threshold:   threshold,
				defaultLeft: missLeft,
				gain:        gain,
				valid:       true,
			}
		}
	}
}

// partition splits the node's rows by the chosen split.
func (b *builder) partition(rows []int32, s split) (left, right []int32) {
	for _, i := range rows {
		v := b.x.At(int(i), s.feature)
		switch {
		case IsMissing(v):
			if s.defaultLeft {
				left = append(left, i)
			} else {
				right = append(right, i)
			}
		case v < s.threshold:
			left = append(left, i)
		default:
			right = append(right, i)
		}
	}
	return left, right
}
