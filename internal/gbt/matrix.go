// Package gbt implements gradient boosted decision trees from scratch in
// the style of XGBoost [Chen & Guestrin, KDD'16], the learner the paper uses
// for file-access prediction (Section 4.3): second-order (Newton) boosting
// under a differentiable loss, exact greedy split finding, learned default
// directions for missing values, L2-regularised leaf weights, and shrinkage.
//
// The implementation supports the paper's usage pattern: an initial Train
// followed by periodic incremental Update calls that continue boosting on
// newly collected batches, letting the model adapt to workload changes
// (Figures 16 and 17).
package gbt

import (
	"fmt"
	"math"
)

// Missing is the feature value that marks an absent measurement. Feature
// vectors in this package use NaN, matching the paper's encoding of the
// "remaining k-n access-based features" (Section 4.1).
var Missing = math.NaN()

// IsMissing reports whether v encodes a missing feature value.
func IsMissing(v float64) bool { return math.IsNaN(v) }

// Matrix is a dense row-major feature matrix that tolerates missing values.
type Matrix struct {
	cols int
	data []float64
}

// NewMatrix returns an empty matrix with the given number of feature
// columns.
func NewMatrix(cols int) *Matrix {
	if cols <= 0 {
		panic(fmt.Sprintf("gbt: matrix needs at least one column, got %d", cols))
	}
	return &Matrix{cols: cols}
}

// Rows returns the number of rows appended so far.
func (m *Matrix) Rows() int { return len(m.data) / m.cols }

// Cols returns the number of feature columns.
func (m *Matrix) Cols() int { return m.cols }

// AppendRow adds one feature vector; its length must equal Cols.
func (m *Matrix) AppendRow(row []float64) {
	if len(row) != m.cols {
		panic(fmt.Sprintf("gbt: row has %d features, matrix has %d columns", len(row), m.cols))
	}
	m.data = append(m.data, row...)
}

// Row returns the i-th feature vector as a read-only slice view.
func (m *Matrix) Row(i int) []float64 {
	return m.data[i*m.cols : (i+1)*m.cols]
}

// At returns the value at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }
