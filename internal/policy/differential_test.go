package policy_test

// Differential equivalence tests: for every indexed downgrade policy the
// new SelectFile must pick exactly the file the retired linear scan would
// have picked, at every decision point of a replayed workload — the linear
// implementations are retained on the policies as test-only oracles. The
// same harness cross-checks the indexed LRUFiles / UpgradeCandidates
// collections against their scan-and-sort oracles, and validates index
// maintenance under node churn and re-replication.

import (
	"fmt"
	"testing"
	"time"

	"octostore/internal/cluster"
	"octostore/internal/core"
	"octostore/internal/dfs"
	"octostore/internal/jobs"
	"octostore/internal/ml"
	"octostore/internal/policy"
	"octostore/internal/scenario"
	"octostore/internal/sim"
	"octostore/internal/storage"
	"octostore/internal/workload"
)

// linearSelector is the oracle interface the indexed policies retain.
type linearSelector interface {
	SelectFileLinear(tier storage.Media) *dfs.File
}

// checkedDowngrade wraps a downgrade policy and asserts, on every
// selection, that the indexed pick equals the linear oracle's pick. It
// optionally cross-checks the context's indexed candidate collections.
type checkedDowngrade struct {
	core.DowngradePolicy
	oracle linearSelector
	ctx    *core.Context
	t      *testing.T

	checkLists bool
	bufA, bufB []*dfs.File
	checks     int
}

func (c *checkedDowngrade) SelectFile(tier storage.Media) *dfs.File {
	got := c.DowngradePolicy.SelectFile(tier)
	want := c.oracle.SelectFileLinear(tier)
	c.checks++
	if got != want {
		c.t.Errorf("%s.SelectFile(%v) diverged: indexed %s, linear %s",
			c.DowngradePolicy.Name(), tier, fileName(got), fileName(want))
	}
	if c.checkLists {
		c.compareLists(tier)
	}
	return got
}

func (c *checkedDowngrade) compareLists(tier storage.Media) {
	const k = 200
	c.bufA = c.ctx.LRUFilesInto(c.bufA[:0], tier, k)
	c.bufB = c.ctx.LRUFilesLinear(c.bufB[:0], tier, k)
	if !sameFiles(c.bufA, c.bufB) {
		c.t.Errorf("LRUFiles(%v, %d) diverged: indexed %d files, linear %d files", tier, k, len(c.bufA), len(c.bufB))
	}
	c.bufA = c.ctx.UpgradeCandidatesInto(c.bufA[:0], k)
	c.bufB = c.ctx.UpgradeCandidatesLinear(c.bufB[:0], k)
	if !sameFiles(c.bufA, c.bufB) {
		c.t.Errorf("UpgradeCandidates(%d) diverged: indexed %d files, linear %d files", k, len(c.bufA), len(c.bufB))
	}
}

func sameFiles(a, b []*dfs.File) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func fileName(f *dfs.File) string {
	if f == nil {
		return "<nil>"
	}
	return fmt.Sprintf("%s(id=%d)", f.Path(), f.ID())
}

// replayTrace is a shrunken FB workload that still overflows the small
// cluster's memory tier, so the downgrade process fires continuously.
func replayTrace(seed int64) *workload.Trace {
	p := scenario.FastProfile(workload.FB())
	p.Duration = time.Hour
	return workload.Generate(p, seed)
}

func replayCluster(e *sim.Engine) *cluster.Cluster {
	spec := storage.NodeSpec{
		{Media: storage.Memory, Capacity: 1 * storage.GB, ReadBW: 4000e6, WriteBW: 3000e6, Count: 1},
		{Media: storage.SSD, Capacity: 8 * storage.GB, ReadBW: 500e6, WriteBW: 400e6, Count: 1},
		{Media: storage.HDD, Capacity: 64 * storage.GB, ReadBW: 160e6, WriteBW: 140e6, Count: 2},
	}
	return cluster.MustNew(e, cluster.Config{Workers: 4, SlotsPerNode: 4, Spec: spec})
}

// runDifferential replays the workload with the named downgrade policy
// wrapped in the divergence checker; perturb (optional) is installed at
// job-phase start.
func runDifferential(t *testing.T, name string, checkLists bool, perturb func(*sim.Engine, *dfs.FileSystem)) (*checkedDowngrade, *core.Context) {
	t.Helper()
	e := sim.NewEngine()
	c := replayCluster(e)
	fs := dfs.MustNew(c, dfs.Config{Mode: dfs.ModeOctopus, Seed: 11, ClientRate: 2000e6})
	ctx := core.NewContext(fs, core.DefaultConfig())
	lcfg := ml.DefaultLearnerConfig()
	down, err := policy.NewDowngrade(name, ctx, lcfg)
	if err != nil {
		t.Fatal(err)
	}
	oracle, ok := down.(linearSelector)
	if !ok {
		t.Fatalf("policy %s does not retain a linear oracle", name)
	}
	if checkLists {
		// Enable the collections the checker cross-validates even when the
		// policy under test does not require them itself.
		ctx.Index().RequireRecency()
		ctx.Index().RequireUpgradeMRU()
	}
	checked := &checkedDowngrade{DowngradePolicy: down, oracle: oracle, ctx: ctx, t: t, checkLists: checkLists}
	mgr := core.NewManager(ctx, checked, nil)
	mgr.Start()
	defer mgr.Stop()
	_, err = jobs.Run(fs, replayTrace(11), jobs.Options{Seed: 11}, func() {
		if perturb != nil {
			perturb(e, fs)
		}
	})
	if err != nil {
		t.Fatalf("replay with %s: %v", name, err)
	}
	if err := ctx.Index().Audit(); err != nil {
		t.Errorf("index audit after replay: %v", err)
	}
	return checked, ctx
}

// TestDifferentialSelectFile replays the workload once per indexed policy
// and requires indexed selection to match the linear oracle at every
// decision point.
func TestDifferentialSelectFile(t *testing.T) {
	if testing.Short() {
		t.Skip("workload replays in non-short mode only")
	}
	for _, name := range []string{"lru", "lfu", "lrfu", "exd"} {
		name := name
		t.Run(name, func(t *testing.T) {
			checked, _ := runDifferential(t, name, name == "lru", nil)
			if checked.checks < 50 {
				t.Fatalf("only %d selection points exercised; workload too tame to trust the equivalence", checked.checks)
			}
			t.Logf("%s: %d selections compared", name, checked.checks)
		})
	}
}

// TestIndexUnderNodeChurn fails a worker mid-replay and joins a fresh one,
// then requires (a) the indexed selections to keep matching the oracle
// throughout, and (b) every index — the context structures and the
// policy-owned weight heaps — to audit clean against a from-scratch
// membership recompute: FailNode teardown and monitor re-replication must
// evict and re-home entries without leaking.
func TestIndexUnderNodeChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("workload replays in non-short mode only")
	}
	perturb := func(e *sim.Engine, fs *dfs.FileSystem) {
		e.Schedule(5*time.Minute, func() {
			nodes := fs.Cluster().Nodes()
			victim := nodes[0]
			for _, n := range nodes[1:] {
				if n.ID() > victim.ID() {
					victim = n
				}
			}
			fs.FailNode(victim)
		})
		e.Schedule(15*time.Minute, func() {
			fs.AddNode(storage.NodeSpec{
				{Media: storage.Memory, Capacity: 1 * storage.GB, ReadBW: 4000e6, WriteBW: 3000e6, Count: 1},
				{Media: storage.SSD, Capacity: 8 * storage.GB, ReadBW: 500e6, WriteBW: 400e6, Count: 1},
				{Media: storage.HDD, Capacity: 64 * storage.GB, ReadBW: 160e6, WriteBW: 140e6, Count: 2},
			}, 4)
		})
	}
	checked, _ := runDifferential(t, "lrfu", false, perturb)
	if checked.checks < 50 {
		t.Fatalf("only %d selection points exercised", checked.checks)
	}
	if err := checked.DowngradePolicy.(*policy.LRFUDown).AuditIndex(); err != nil {
		t.Errorf("weight index audit after churn: %v", err)
	}
}

// TestScenarioReplayAuditsIndexes replays the node-churn catalog scenario
// against the managed XGB system: scenario.Run wires the candidate-index
// audit into its deep invariant checks, so a clean result certifies index
// consistency at every checkpoint of the churn replay.
func TestScenarioReplayAuditsIndexes(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario replay in non-short mode only")
	}
	sc, err := scenario.Get("node-churn")
	if err != nil {
		t.Fatal(err)
	}
	res, err := scenario.Run(sc, scenario.System{Name: "XGB", Mode: dfs.ModeOctopus, Down: "xgb", Up: "xgb"},
		scenario.Options{Seed: 1, Fast: true, DeepCheckEvery: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("invariant/index violations during churn replay: %v", res.Violations)
	}
	if res.DeepChecks < 2 {
		t.Fatalf("deep checks = %d, want the periodic cadence to fire", res.DeepChecks)
	}
}
