package policy

import (
	"math"
	"testing"
	"time"

	"octostore/internal/cluster"
	"octostore/internal/core"
	"octostore/internal/dfs"
	"octostore/internal/ml"
	"octostore/internal/sim"
	"octostore/internal/storage"
)

type env struct {
	engine *sim.Engine
	fs     *dfs.FileSystem
	ctx    *core.Context
	mgr    *core.Manager
}

// newEnv builds a 3-node Octopus system with a registered manager (policies
// can be nil; callbacks are wired manually by tests when needed).
func newEnv(t *testing.T, mode dfs.Mode, down core.DowngradePolicy, up core.UpgradePolicy) *env {
	t.Helper()
	e := sim.NewEngine()
	c := cluster.MustNew(e, cluster.Config{Workers: 3, SlotsPerNode: 2, Spec: storage.SmallWorkerSpec()})
	fs := dfs.MustNew(c, dfs.Config{Mode: mode, BlockSize: 16 * storage.MB, Seed: 5})
	cfg := core.DefaultConfig()
	cfg.PeriodicInterval = 30 * time.Second
	ctx := core.NewContext(fs, cfg)
	ev := &env{engine: e, fs: fs, ctx: ctx}
	ev.mgr = core.NewManager(ctx, down, up)
	return ev
}

func (ev *env) create(t *testing.T, path string, size int64) *dfs.File {
	t.Helper()
	var file *dfs.File
	var ferr error
	ev.fs.Create(path, size, func(f *dfs.File, err error) { file, ferr = f, err })
	ev.engine.Run()
	if ferr != nil {
		t.Fatalf("create %s: %v", path, ferr)
	}
	return file
}

func (ev *env) access(f *dfs.File) {
	ev.fs.RecordAccess(f)
	ev.engine.Run()
}

// ctxOnly builds an env without any manager-driven movement so selection
// logic can be tested in isolation.
func ctxOnly(t *testing.T) *env { return newEnv(t, dfs.ModeOctopus, nil, nil) }

func TestLRUSelectsLeastRecent(t *testing.T) {
	ev := ctxOnly(t)
	p := NewLRU(ev.ctx)
	f1 := ev.create(t, "/f1", 16*storage.MB)
	f2 := ev.create(t, "/f2", 16*storage.MB)
	f3 := ev.create(t, "/f3", 16*storage.MB)
	ev.engine.RunFor(time.Minute)
	ev.access(f1)
	ev.engine.RunFor(time.Minute)
	ev.access(f2)
	if got := p.SelectFile(storage.Memory); got != f3 {
		t.Fatalf("LRU selected %v, want f3 (never accessed)", got.Path())
	}
	ev.engine.RunFor(time.Minute)
	ev.access(f3)
	if got := p.SelectFile(storage.Memory); got != f1 {
		t.Fatalf("LRU selected %v, want f1", got.Path())
	}
}

func TestLFUSelectsLeastFrequent(t *testing.T) {
	ev := ctxOnly(t)
	p := NewLFU(ev.ctx)
	f1 := ev.create(t, "/f1", 16*storage.MB)
	f2 := ev.create(t, "/f2", 16*storage.MB)
	for i := 0; i < 3; i++ {
		ev.access(f1)
	}
	ev.access(f2)
	if got := p.SelectFile(storage.Memory); got != f2 {
		t.Fatalf("LFU selected %s, want /f2", got.Path())
	}
}

func TestLRFUWeightFormula(t *testing.T) {
	// Paper example: H = 6h; a file re-accessed 6h after its last access
	// has new weight 1 + W/2.
	h := 6 * time.Hour
	w := lrfuWeight(4.0, 6*time.Hour, h)
	if math.Abs(w-3.0) > 1e-9 {
		t.Fatalf("lrfuWeight = %v, want 3.0", w)
	}
}

func TestLRFUDownPrefersColdFile(t *testing.T) {
	ev := ctxOnly(t)
	p := NewLRFUDown(ev.ctx, time.Hour)
	hot := ev.create(t, "/hot", 16*storage.MB)
	cold := ev.create(t, "/cold", 16*storage.MB)
	p.OnFileCreated(hot)
	p.OnFileCreated(cold)
	for i := 0; i < 5; i++ {
		ev.engine.RunFor(5 * time.Minute)
		ev.fs.RecordAccess(hot)
		p.OnFileAccessed(hot)
	}
	ev.engine.RunFor(5 * time.Minute)
	if got := p.SelectFile(storage.Memory); got != cold {
		t.Fatalf("LRFU selected %s, want /cold", got.Path())
	}
}

func TestLIFEEvictsLargestWhenAllRecent(t *testing.T) {
	ev := ctxOnly(t)
	p := NewLIFE(ev.ctx, 2*time.Hour)
	small := ev.create(t, "/small", 16*storage.MB)
	large := ev.create(t, "/large", 32*storage.MB)
	_ = small
	if got := p.SelectFile(storage.Memory); got != large {
		t.Fatalf("LIFE selected %s, want /large", got.Path())
	}
}

func TestLIFEEvictsOldLFUFirst(t *testing.T) {
	ev := ctxOnly(t)
	p := NewLIFE(ev.ctx, time.Hour)
	old := ev.create(t, "/old", 16*storage.MB)
	ev.engine.RunFor(2 * time.Hour)
	fresh := ev.create(t, "/fresh", 32*storage.MB)
	_ = fresh
	if got := p.SelectFile(storage.Memory); got != old {
		t.Fatalf("LIFE selected %s, want /old", got.Path())
	}
}

func TestLFUFPartitions(t *testing.T) {
	ev := ctxOnly(t)
	p := NewLFUF(ev.ctx, time.Hour)
	oldPopular := ev.create(t, "/oldpop", 16*storage.MB)
	oldRare := ev.create(t, "/oldrare", 16*storage.MB)
	for i := 0; i < 3; i++ {
		ev.access(oldPopular)
	}
	_ = oldRare
	ev.engine.RunFor(2 * time.Hour)
	fresh := ev.create(t, "/fresh", 16*storage.MB)
	_ = fresh
	// Both old files are beyond the window; the rare one is the LFU choice.
	if got := p.SelectFile(storage.Memory); got != oldRare {
		t.Fatalf("LFU-F selected %s, want /oldrare", got.Path())
	}
}

func TestEXDWeightFormula(t *testing.T) {
	// With alpha = ln(2)/ms, weight halves every millisecond of idle time.
	alpha := math.Ln2
	w := exdWeight(2.0, time.Millisecond, alpha)
	if math.Abs(w-2.0) > 1e-9 { // 1 + 2*0.5
		t.Fatalf("exdWeight = %v, want 2.0", w)
	}
	if got := exdDecayed(2.0, time.Millisecond, alpha); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("exdDecayed = %v, want 1.0", got)
	}
}

func TestEXDDownSelectsLowestWeight(t *testing.T) {
	ev := ctxOnly(t)
	p := NewEXDDown(ev.ctx, DefaultEXDAlpha)
	hot := ev.create(t, "/hot", 16*storage.MB)
	cold := ev.create(t, "/cold", 16*storage.MB)
	p.OnFileCreated(hot)
	p.OnFileCreated(cold)
	for i := 0; i < 4; i++ {
		ev.engine.RunFor(time.Minute)
		ev.fs.RecordAccess(hot)
		p.OnFileAccessed(hot)
	}
	if got := p.SelectFile(storage.Memory); got != cold {
		t.Fatalf("EXD selected %s, want /cold", got.Path())
	}
}

func TestOSAUpgradesOnAccess(t *testing.T) {
	osa := &OSA{}
	ev := newEnv(t, dfs.ModePinnedHDD, nil, nil)
	osa.ctx = ev.ctx
	f := ev.create(t, "/f", 16*storage.MB)
	if osa.StartUpgrade(nil) {
		t.Fatal("OSA started without an accessed file")
	}
	if !osa.StartUpgrade(f) {
		t.Fatal("OSA refused an accessed HDD file")
	}
	if got := osa.SelectFile(); got != f {
		t.Fatal("OSA selected wrong file")
	}
	if !osa.StopUpgrade() {
		t.Fatal("OSA should stop after the single file")
	}
	to, ok := osa.SelectTargetTier(f, storage.HDD)
	if !ok || to != storage.Memory {
		t.Fatalf("OSA target = %v, %v", to, ok)
	}
}

func TestOSAEndToEndViaManager(t *testing.T) {
	e := sim.NewEngine()
	c := cluster.MustNew(e, cluster.Config{Workers: 3, SlotsPerNode: 2, Spec: storage.SmallWorkerSpec()})
	fs := dfs.MustNew(c, dfs.Config{Mode: dfs.ModePinnedHDD, BlockSize: 16 * storage.MB, Seed: 5})
	ctx := core.NewContext(fs, core.DefaultConfig())
	up := NewOSA(ctx)
	core.NewManager(ctx, nil, up)
	var file *dfs.File
	fs.Create("/f", 16*storage.MB, func(f *dfs.File, err error) { file = f })
	e.Run()
	fs.RecordAccess(file)
	e.Run()
	if !file.HasReplicaOn(storage.Memory) {
		t.Fatal("OSA did not move the file to memory")
	}
}

func TestLRFUUpThreshold(t *testing.T) {
	ev := newEnv(t, dfs.ModePinnedHDD, nil, nil)
	p := NewLRFUUp(ev.ctx, time.Hour, 3.0)
	f := ev.create(t, "/f", 16*storage.MB)
	p.OnFileCreated(f)
	// One access: weight ~ 1 + H*1/(d+H) < 3 => no upgrade.
	ev.engine.RunFor(time.Minute)
	ev.fs.RecordAccess(f)
	p.OnFileAccessed(f)
	if p.StartUpgrade(f) {
		t.Fatal("LRFU admitted after a single access")
	}
	// Several rapid accesses push the weight past 3.
	for i := 0; i < 5; i++ {
		ev.engine.RunFor(time.Second)
		ev.fs.RecordAccess(f)
		p.OnFileAccessed(f)
	}
	if !p.StartUpgrade(f) {
		t.Fatal("LRFU refused a hot file")
	}
}

func TestEXDUpAdmitsWhenSpaceAvailable(t *testing.T) {
	ev := newEnv(t, dfs.ModePinnedHDD, nil, nil)
	p := NewEXDUp(ev.ctx, DefaultEXDAlpha)
	f := ev.create(t, "/f", 16*storage.MB)
	p.OnFileCreated(f)
	if !p.StartUpgrade(f) {
		t.Fatal("EXD refused with free memory")
	}
}

func TestEXDUpWeighsVictimsWhenFull(t *testing.T) {
	ev := newEnv(t, dfs.ModePinnedHDD, nil, nil)
	p := NewEXDUp(ev.ctx, DefaultEXDAlpha)
	f := ev.create(t, "/f", 16*storage.MB)
	p.OnFileCreated(f)
	// Exhaust memory with reservations not belonging to any file: victims
	// cannot free enough, so the admission must fail.
	for _, n := range ev.fs.Cluster().Nodes() {
		for _, d := range n.Devices(storage.Memory) {
			if err := d.Reserve(d.Free()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if p.StartUpgrade(f) {
		t.Fatal("EXD admitted with no reclaimable memory")
	}
}

func TestXGBDownFallsBackToLRUUntrained(t *testing.T) {
	ev := ctxOnly(t)
	p := NewXGBDown(ev.ctx, ml.DefaultLearnerConfig())
	f1 := ev.create(t, "/f1", 16*storage.MB)
	f2 := ev.create(t, "/f2", 16*storage.MB)
	ev.engine.RunFor(time.Minute)
	ev.access(f2)
	if got := p.SelectFile(storage.Memory); got != f1 {
		t.Fatalf("untrained XGB selected %s, want LRU choice /f1", got.Path())
	}
}

func TestXGBDownLearnsColdFiles(t *testing.T) {
	ev := ctxOnly(t)
	cfg := ml.DefaultLearnerConfig()
	cfg.MinTrainSamples = 120
	cfg.UpdateBatch = 60
	p := NewXGBDown(ev.ctx, cfg)
	// Hot files re-accessed every 10 minutes; cold files never.
	var hot, cold []*dfs.File
	for i := 0; i < 6; i++ {
		hot = append(hot, ev.create(t, "/hot/"+string(rune('a'+i)), 16*storage.MB))
		cold = append(cold, ev.create(t, "/cold/"+string(rune('a'+i)), 16*storage.MB))
	}
	for step := 0; step < 80; step++ {
		ev.engine.RunFor(10 * time.Minute)
		for _, f := range hot {
			ev.fs.RecordAccess(f)
			p.OnFileAccessed(f)
		}
		p.Tick()
	}
	if !p.Pipeline().Learner.Ready() {
		t.Fatalf("XGB model not ready after 80 rounds (samples=%d)", p.Pipeline().Learner.SamplesSeen())
	}
	got := p.SelectFile(storage.Memory)
	for _, h := range hot {
		if got == h {
			t.Fatalf("XGB chose hot file %s for downgrade", got.Path())
		}
	}
}

func TestXGBUpProactiveQueueAndBatchLimit(t *testing.T) {
	e := sim.NewEngine()
	c := cluster.MustNew(e, cluster.Config{Workers: 3, SlotsPerNode: 2, Spec: storage.SmallWorkerSpec()})
	fs := dfs.MustNew(c, dfs.Config{Mode: dfs.ModePinnedHDD, BlockSize: 16 * storage.MB, Seed: 5})
	cfg := core.DefaultConfig()
	cfg.UpgradeBatchLimit = 32 * storage.MB // two 16 MB files
	ctx := core.NewContext(fs, cfg)
	lcfg := ml.DefaultLearnerConfig()
	lcfg.MinTrainSamples = 120
	lcfg.UpdateBatch = 60
	p := NewXGBUp(ctx, lcfg)
	core.NewManager(ctx, nil, nil)

	var hot []*dfs.File
	for i := 0; i < 6; i++ {
		var f *dfs.File
		fs.Create("/hot/"+string(rune('a'+i)), 16*storage.MB, func(created *dfs.File, err error) { f = created })
		e.Run()
		ctx.Record(f)
		hot = append(hot, f)
	}
	for step := 0; step < 80; step++ {
		e.RunFor(10 * time.Minute)
		for _, f := range hot {
			ctx.Tracker.OnAccess(int64(f.ID()), e.Now())
			p.OnFileAccessed(f)
		}
		p.Tick()
	}
	if !p.Pipeline().Learner.Ready() {
		t.Fatalf("upgrade model not ready (samples=%d)", p.Pipeline().Learner.SamplesSeen())
	}
	// Proactive start right after an access round: hot files should qualify.
	if !p.StartUpgrade(nil) {
		t.Fatal("proactive upgrade did not start")
	}
	selected := 0
	for !p.StopUpgrade() {
		if f := p.SelectFile(); f == nil {
			break
		}
		selected++
	}
	if selected == 0 {
		t.Fatal("no files selected")
	}
	if selected > 2 {
		t.Fatalf("batch limit violated: %d files selected", selected)
	}
}

func TestRegistryDowngrade(t *testing.T) {
	ev := ctxOnly(t)
	for _, name := range DowngradeNames {
		p, err := NewDowngrade(name, ev.ctx, ml.DefaultLearnerConfig())
		if err != nil || p == nil {
			t.Fatalf("NewDowngrade(%q) = %v, %v", name, p, err)
		}
	}
	if p, err := NewDowngrade("none", ev.ctx, ml.DefaultLearnerConfig()); err != nil || p != nil {
		t.Fatalf("none => %v, %v", p, err)
	}
	if _, err := NewDowngrade("bogus", ev.ctx, ml.DefaultLearnerConfig()); err == nil {
		t.Fatal("bogus accepted")
	}
}

func TestRegistryUpgrade(t *testing.T) {
	ev := ctxOnly(t)
	for _, name := range UpgradeNames {
		p, err := NewUpgrade(name, ev.ctx, ml.DefaultLearnerConfig())
		if err != nil || p == nil {
			t.Fatalf("NewUpgrade(%q) = %v, %v", name, p, err)
		}
	}
	if p, err := NewUpgrade("", ev.ctx, ml.DefaultLearnerConfig()); err != nil || p != nil {
		t.Fatalf("empty => %v, %v", p, err)
	}
	if _, err := NewUpgrade("bogus", ev.ctx, ml.DefaultLearnerConfig()); err == nil {
		t.Fatal("bogus accepted")
	}
}

func TestPolicyNames(t *testing.T) {
	ev := ctxOnly(t)
	lcfg := ml.DefaultLearnerConfig()
	names := map[string]string{}
	for _, n := range DowngradeNames {
		p, _ := NewDowngrade(n, ev.ctx, lcfg)
		names[n] = p.Name()
	}
	want := map[string]string{
		"lru": "LRU", "lfu": "LFU", "lrfu": "LRFU", "life": "LIFE",
		"lfuf": "LFU-F", "exd": "EXD", "xgb": "XGB",
	}
	for k, v := range want {
		if names[k] != v {
			t.Fatalf("policy %q name = %q, want %q", k, names[k], v)
		}
	}
}
