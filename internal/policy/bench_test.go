package policy

// Microbenchmarks for the indexed candidate selection paths against the
// retired linear scans they replaced. Run with
//
//	go test -run XXX -bench 'BenchmarkSelectFile|BenchmarkUpgradeCandidates' -benchmem ./internal/policy
//
// The indexed variants must stay O(1)/O(log N) per pick — roughly flat as
// the live-file population grows — while the linear oracles scale with N.
// TestIndexedSelectBeatsLinearAt100k asserts the ≥10x acceptance bound.

import (
	"fmt"
	"testing"
	"time"

	"octostore/internal/cluster"
	"octostore/internal/core"
	"octostore/internal/dfs"
	"octostore/internal/sim"
	"octostore/internal/storage"
)

// benchEnv is a populated system reused across benchmark invocations of
// the same shape (Go re-invokes benchmark functions with growing b.N, so
// construction is memoised).
type benchEnv struct {
	engine *sim.Engine
	fs     *dfs.FileSystem
	ctx    *core.Context
	files  []*dfs.File
	policy downgradeBenchPolicy // set by benchPolicy envs
}

var benchEnvs = map[string]*benchEnv{}

// benchCluster is sized so hundreds of thousands of small files fit on the
// HDD tier without tripping placement.
func benchCluster(e *sim.Engine) *cluster.Cluster {
	spec := storage.NodeSpec{
		{Media: storage.Memory, Capacity: 64 * storage.GB, ReadBW: 4000e6, WriteBW: 3000e6, Count: 1},
		{Media: storage.SSD, Capacity: 256 * storage.GB, ReadBW: 500e6, WriteBW: 400e6, Count: 1},
		{Media: storage.HDD, Capacity: 2048 * storage.GB, ReadBW: 160e6, WriteBW: 140e6, Count: 2},
	}
	return cluster.MustNew(e, cluster.Config{Workers: 4, SlotsPerNode: 4, Spec: spec})
}

// newBenchEnv builds a pinned-HDD system with n one-block files, each
// touched once at a distinct time so every ordering structure has full
// key diversity. setup wires policies BEFORE files exist, mirroring
// production construction order.
func newBenchEnv(tb testing.TB, key string, n int, setup func(*benchEnv)) *benchEnv {
	if env, ok := benchEnvs[key]; ok {
		return env
	}
	e := sim.NewEngine()
	c := benchCluster(e)
	fs := dfs.MustNew(c, dfs.Config{Mode: dfs.ModePinnedHDD, BlockSize: 4 * storage.MB, Seed: 7})
	ctx := core.NewContext(fs, core.DefaultConfig())
	env := &benchEnv{engine: e, fs: fs, ctx: ctx}
	if setup != nil {
		setup(env)
	}
	mgr := core.NewManager(ctx, nil, nil)
	_ = mgr
	for i := 0; i < n; i++ {
		var file *dfs.File
		fs.Create(fmt.Sprintf("/bench/d%03d/f%06d", i/1000, i), 4*storage.MB, func(f *dfs.File, err error) {
			if err != nil {
				tb.Fatalf("create %d: %v", i, err)
			}
			file = f
		})
		e.Run()
		env.files = append(env.files, file)
	}
	// Touch every file once at a distinct instant (reverse creation order
	// so recency order differs from id order).
	for i := len(env.files) - 1; i >= 0; i-- {
		e.RunFor(100 * time.Millisecond)
		fs.RecordAccess(env.files[i])
		e.Run()
	}
	benchEnvs[key] = env
	return env
}

// downgradeBenchPolicy couples an indexed policy with its linear oracle.
type downgradeBenchPolicy interface {
	core.DowngradePolicy
	SelectFileLinear(tier storage.Media) *dfs.File
}

func benchPolicy(tb testing.TB, name string, n int) (downgradeBenchPolicy, *benchEnv) {
	key := fmt.Sprintf("%s/%d", name, n)
	env := newBenchEnv(tb, key, n, func(env *benchEnv) {
		switch name {
		case "LRU":
			env.policy = NewLRU(env.ctx)
		case "LFU":
			env.policy = NewLFU(env.ctx)
		case "LRFU":
			env.policy = NewLRFUDown(env.ctx, DefaultLRFUHalfLife)
		case "EXD":
			env.policy = NewEXDDown(env.ctx, DefaultEXDAlpha)
		default:
			tb.Fatalf("unknown bench policy %q", name)
		}
	})
	return env.policy, env
}

var benchSizes = []int{1000, 10000, 100000}

func benchmarkSelect(b *testing.B, policyName string) {
	for _, n := range benchSizes {
		p, _ := benchPolicy(b, policyName, n)
		b.Run(fmt.Sprintf("indexed/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if f := p.SelectFile(storage.HDD); f == nil {
					b.Fatal("no file selected")
				}
			}
		})
		b.Run(fmt.Sprintf("linear/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if f := p.SelectFileLinear(storage.HDD); f == nil {
					b.Fatal("no file selected")
				}
			}
		})
	}
}

// BenchmarkSelectFileLRU compares indexed vs linear LRU selection.
func BenchmarkSelectFileLRU(b *testing.B) { benchmarkSelect(b, "LRU") }

// BenchmarkSelectFileLFU compares indexed vs linear LFU selection.
func BenchmarkSelectFileLFU(b *testing.B) { benchmarkSelect(b, "LFU") }

// BenchmarkSelectFileLRFU compares lazy-weight-heap vs linear LRFU
// selection.
func BenchmarkSelectFileLRFU(b *testing.B) { benchmarkSelect(b, "LRFU") }

// BenchmarkSelectFileEXD compares lazy-weight-heap vs linear EXD selection.
func BenchmarkSelectFileEXD(b *testing.B) { benchmarkSelect(b, "EXD") }

// BenchmarkUpgradeCandidates compares the MRU-indexed bounded top-k
// collection against the scan-and-sort oracle.
func BenchmarkUpgradeCandidates(b *testing.B) {
	const k = 200
	for _, n := range benchSizes {
		key := fmt.Sprintf("upgrade/%d", n)
		env := newBenchEnv(b, key, n, func(env *benchEnv) {
			env.ctx.Index().RequireUpgradeMRU()
		})
		ctx := env.ctx
		var buf []*dfs.File
		b.Run(fmt.Sprintf("indexed/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf = ctx.UpgradeCandidatesInto(buf[:0], k)
				if len(buf) == 0 {
					b.Fatal("no candidates")
				}
			}
		})
		b.Run(fmt.Sprintf("linear/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf = ctx.UpgradeCandidatesLinear(buf[:0], k)
				if len(buf) == 0 {
					b.Fatal("no candidates")
				}
			}
		})
	}
}

// TestIndexedSelectBeatsLinearAt100k asserts the PR's acceptance bound:
// at 100k live files the indexed SelectFile must be at least 10x faster
// than the linear-scan oracle for LRU, LFU, and LRFU.
func TestIndexedSelectBeatsLinearAt100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-file population in non-short mode only")
	}
	const n = 100000
	for _, name := range []string{"LRU", "LFU", "LRFU"} {
		p, _ := benchPolicy(t, name, n)
		// Warm up outside the measurement: testing.Benchmark inherits the
		// command-line -benchtime, and with a tiny b.N the one-time lazy
		// weight-heap re-key would otherwise dominate the indexed timing.
		p.SelectFile(storage.HDD)
		p.SelectFileLinear(storage.HDD)
		indexed := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.SelectFile(storage.HDD)
			}
		})
		linear := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.SelectFileLinear(storage.HDD)
			}
		})
		iNs := float64(indexed.NsPerOp())
		lNs := float64(linear.NsPerOp())
		t.Logf("%s at n=%d: indexed %.0f ns/op, linear %.0f ns/op (%.1fx)", name, n, iNs, lNs, lNs/iNs)
		if lNs < 10*iNs {
			t.Errorf("%s: indexed selection only %.1fx faster than linear at %d files, want >=10x", name, lNs/iNs, n)
		}
	}
}

// exdUpEnv is a memory-resident population for the EXD upgrade-admission
// benchmark: n files upgraded into memory with diversified Formula 2
// weights, so the victim prefix sum has real work to do.
type exdUpEnv struct {
	up  *EXDUp
	env *benchEnv
}

var exdUpEnvs = map[int]*exdUpEnv{}

func benchEXDUp(tb testing.TB, n int) *exdUpEnv {
	if e, ok := exdUpEnvs[n]; ok {
		return e
	}
	var up *EXDUp
	env := newBenchEnv(tb, fmt.Sprintf("exdup/%d", n), n, func(env *benchEnv) {
		up = NewEXDUp(env.ctx, DefaultEXDAlpha)
		// Wire the policy's weight callbacks the way a Manager would.
		core.NewManager(env.ctx, nil, up)
	})
	for _, f := range env.files {
		if err := env.fs.MoveFileReplicas(f, storage.HDD, storage.Memory, nil); err != nil {
			tb.Fatalf("upgrade to memory: %v", err)
		}
		env.engine.Run()
	}
	// Re-touch every file with wide virtual spacing: EXD's decay constant
	// is per-millisecond, so the newBenchEnv 100ms access stride leaves all
	// weights within float noise of each other — the degenerate all-equal
	// case where any ordered structure must inspect the whole tier. Minutes
	// of spacing gives the production-shaped weight spread the prefix walk
	// is built for.
	for _, f := range env.files {
		env.engine.RunFor(2 * time.Minute)
		env.fs.RecordAccess(f)
		env.engine.Run()
	}
	e := &exdUpEnv{up: up, env: env}
	exdUpEnvs[n] = e
	return e
}

// BenchmarkEXDAdmission compares the weight-heap victim prefix sum against
// the retired score-and-sort scan for a full-memory admission test (the
// sum of the lowest-weight files covering a 256 MB upgrade).
func BenchmarkEXDAdmission(b *testing.B) {
	const need = 256 * storage.MB
	for _, n := range []int{1000, 10000} {
		e := benchEXDUp(b, n)
		b.Run(fmt.Sprintf("heap/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if w := e.up.VictimWeightSum(need); w <= 0 {
					b.Fatal("degenerate victim sum")
				}
			}
		})
		b.Run(fmt.Sprintf("linear/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if w := e.up.VictimWeightSumLinear(need); w <= 0 {
					b.Fatal("degenerate victim sum")
				}
			}
		})
	}
}
