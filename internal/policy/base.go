// Package policy implements the eleven downgrade and upgrade policies
// evaluated in the paper: the conventional eviction policies LRU, LFU and
// LRFU; LIFE and LFU-F from PACMan [5]; EXD from Big SQL [16]; the
// admission policies OSA, LRFU and EXD; and the paper's own XGB policies
// driven by incrementally trained gradient boosted trees (Tables 1 and 2).
package policy

import (
	"math"
	"time"

	"octostore/internal/core"
	"octostore/internal/dfs"
	"octostore/internal/storage"
)

// thresholdStartStop provides the shared decision points 1 and 4 for
// downgrades: start above the high watermark, stop below the low watermark
// (Sections 5.1 and 5.4).
type thresholdStartStop struct {
	ctx *core.Context
}

func (t thresholdStartStop) StartDowngrade(tier storage.Media) bool {
	return t.ctx.AboveHighWatermark(tier)
}

func (t thresholdStartStop) StopDowngrade(tier storage.Media) bool {
	return t.ctx.BelowLowWatermark(tier)
}

// defaultTargetTier provides the shared decision point 3 for downgrades:
// the OctopusFS-style placement outcome (Section 5.3).
type defaultTargetTier struct {
	ctx *core.Context
}

func (d defaultTargetTier) SelectTargetTier(f *dfs.File, from storage.Media) (storage.Media, bool) {
	to, ok := d.ctx.DefaultDowngradeTier(f, from)
	if !ok {
		return 0, true // no lower tier fits: delete the replica
	}
	return to, false
}

// weightBook tracks per-file policy weights with lazy cleanup on deletion.
type weightBook struct {
	weights map[dfs.FileID]float64
	touched map[dfs.FileID]time.Time
}

func newWeightBook() weightBook {
	return weightBook{
		weights: make(map[dfs.FileID]float64),
		touched: make(map[dfs.FileID]time.Time),
	}
}

func (w *weightBook) forget(id dfs.FileID) {
	delete(w.weights, id)
	delete(w.touched, id)
}

// lrfuWeight implements Formula 1: W = 1 + H*W / ((now-last) + H).
func lrfuWeight(old float64, sinceLast, halfLife time.Duration) float64 {
	return 1 + halfLife.Seconds()*old/(sinceLast.Seconds()+halfLife.Seconds())
}

// lrfuDecayed is the current value of a stored LRFU weight, used when
// comparing files at selection time.
func lrfuDecayed(stored float64, sinceLast, halfLife time.Duration) float64 {
	return halfLife.Seconds() * stored / (sinceLast.Seconds() + halfLife.Seconds())
}

// exdWeight implements Formula 2: W = 1 + W * e^(-alpha * (now-last)),
// with alpha in 1/millisecond as in Big SQL [16].
func exdWeight(old float64, sinceLast time.Duration, alpha float64) float64 {
	return 1 + old*math.Exp(-alpha*float64(sinceLast.Milliseconds()))
}

// exdDecayed is the current value of a stored EXD weight.
func exdDecayed(stored float64, sinceLast time.Duration, alpha float64) float64 {
	return stored * math.Exp(-alpha*float64(sinceLast.Milliseconds()))
}

// Defaults for the classic policies.
const (
	// DefaultLRFUHalfLife is H in Formula 1. The paper's example uses six
	// hours; for six-hour workloads a shorter half-life keeps the recency
	// component meaningful.
	DefaultLRFUHalfLife = time.Hour
	// DefaultLRFUUpgradeThreshold is the admission threshold on the LRFU
	// weight ("empirically set to 3", Section 6.1).
	DefaultLRFUUpgradeThreshold = 3.0
	// DefaultEXDAlpha is Big SQL's decay constant (Section 5.2).
	DefaultEXDAlpha = 1.16e-8
	// DefaultLIFEWindow is the Pold/Pnew age boundary in LIFE and LFU-F.
	// The paper cites nine hours as an example; scaled for six-hour runs.
	DefaultLIFEWindow = 2 * time.Hour
)

// oneReplicaBytes is the size of one complete replica of a file.
func oneReplicaBytes(f *dfs.File) int64 {
	var total int64
	for _, b := range f.Blocks() {
		total += b.Size()
	}
	return total
}
