// Package policy implements the eleven downgrade and upgrade policies
// evaluated in the paper: the conventional eviction policies LRU, LFU and
// LRFU; LIFE and LFU-F from PACMan [5]; EXD from Big SQL [16]; the
// admission policies OSA, LRFU and EXD; and the paper's own XGB policies
// driven by incrementally trained gradient boosted trees (Tables 1 and 2).
package policy

import (
	"fmt"
	"math"
	"time"

	"octostore/internal/core"
	"octostore/internal/dfs"
	"octostore/internal/storage"
)

// thresholdStartStop provides the shared decision points 1 and 4 for
// downgrades: start above the high watermark, stop below the low watermark
// (Sections 5.1 and 5.4).
type thresholdStartStop struct {
	ctx *core.Context
}

func (t thresholdStartStop) StartDowngrade(tier storage.Media) bool {
	return t.ctx.AboveHighWatermark(tier)
}

func (t thresholdStartStop) StopDowngrade(tier storage.Media) bool {
	return t.ctx.BelowLowWatermark(tier)
}

// defaultTargetTier provides the shared decision point 3 for downgrades:
// the OctopusFS-style placement outcome (Section 5.3).
type defaultTargetTier struct {
	ctx *core.Context
}

func (d defaultTargetTier) SelectTargetTier(f *dfs.File, from storage.Media) (storage.Media, bool) {
	to, ok := d.ctx.DefaultDowngradeTier(f, from)
	if !ok {
		return 0, true // no lower tier fits: delete the replica
	}
	return to, false
}

// weightBook tracks per-file policy weights with lazy cleanup on deletion.
type weightBook struct {
	weights map[dfs.FileID]float64
	touched map[dfs.FileID]time.Time
}

// weightHorizonWindow is how far ahead of the clock the lazy weight heaps
// evaluate their keys. Both decay formulas are monotonically decreasing in
// idle time, so a weight evaluated at a future horizon is a lower bound of
// the weight at any earlier selection instant; a min-selection can
// therefore stop popping the heap as soon as the best exact weight found
// beats the next stored bound. When the clock passes the horizon the heaps
// re-key in O(N), amortized to nothing over the window.
const weightHorizonWindow = time.Hour

// weightIndex maintains per-tier heaps of decayed-weight candidates for the
// LRFU and EXD downgrade policies, replacing their per-selection full scans.
// Membership follows tier residency via the context's candidate-index
// subscription feed; keys are weight lower bounds evaluated at a sliding
// horizon (see weightHorizonWindow); exact weights are computed only for
// the handful of entries whose bound could win a given selection.
type weightIndex struct {
	ctx   *core.Context
	book  *weightBook
	decay func(stored float64, sinceLast time.Duration) float64
	tiers [3]*core.FileHeap

	horizon   time.Time
	selectNow time.Time
	elig      func(*dfs.File) bool
	trueFn    func(*dfs.File) float64
}

// newWeightIndex builds the index over the policy's weight book and
// subscribes it to residency events (replaying current membership).
func newWeightIndex(ctx *core.Context, book *weightBook, decay func(float64, time.Duration) float64) *weightIndex {
	wi := &weightIndex{ctx: ctx, book: book, decay: decay}
	for _, m := range storage.AllMedia {
		wi.tiers[m] = core.NewFileHeap(nil, ctx.FS.FileByID)
	}
	wi.elig = ctx.Selectable
	wi.trueFn = func(f *dfs.File) float64 { return wi.weightAt(f, wi.selectNow) }
	ctx.Index().Subscribe(wi)
	return wi
}

// state returns the stored weight and last-touch of a file, defaulting
// exactly like the linear scans: weight 0 and the creation time for files
// the policy has not seen.
func (wi *weightIndex) state(f *dfs.File) (float64, time.Time) {
	stored := wi.book.weights[f.ID()]
	touched, ok := wi.book.touched[f.ID()]
	if !ok {
		touched = f.Created()
	}
	return stored, touched
}

// weightAt is the decayed weight of the file at the given instant, using
// the same arithmetic as the linear oracle.
func (wi *weightIndex) weightAt(f *dfs.File, at time.Time) float64 {
	stored, touched := wi.state(f)
	return wi.decay(stored, at.Sub(touched))
}

// ensureHorizon advances the evaluation horizon (re-keying all entries)
// when the clock has caught up with it.
func (wi *weightIndex) ensureHorizon() {
	now := wi.ctx.Clock.Now()
	if now.Before(wi.horizon) {
		return
	}
	wi.horizon = now.Add(weightHorizonWindow)
	for _, h := range wi.tiers {
		h.Rekey(func(f *dfs.File) (float64, time.Time) {
			return wi.weightAt(f, wi.horizon), time.Time{}
		})
	}
}

// refresh re-keys the file wherever it is indexed; policies call it after
// updating the file's stored weight.
func (wi *weightIndex) refresh(f *dfs.File) {
	wi.ensureHorizon()
	for _, h := range wi.tiers {
		if h.Has(f.ID()) {
			h.Update(f, wi.weightAt(f, wi.horizon), time.Time{})
		}
	}
}

// selectMin returns the selectable file with the lowest decayed weight on
// the tier (ties toward the lowest file id), or nil.
func (wi *weightIndex) selectMin(tier storage.Media) *dfs.File {
	wi.ensureHorizon()
	wi.selectNow = wi.ctx.Clock.Now()
	return wi.tiers[tier].SelectMinLazy(wi.elig, wi.trueFn)
}

// selectMinLinear is the retired full-scan selection, kept as the
// differential-test oracle and the benchmark baseline.
func (wi *weightIndex) selectMinLinear(tier storage.Media) *dfs.File {
	now := wi.ctx.Clock.Now()
	var best *dfs.File
	bestW := 0.0
	for _, f := range wi.ctx.EligibleFiles(tier) {
		w := wi.weightAt(f, now)
		if best == nil || w < bestW || (w == bestW && f.ID() < best.ID()) {
			best, bestW = f, w
		}
	}
	return best
}

// OnTierResident implements core.ResidencySubscriber.
func (wi *weightIndex) OnTierResident(f *dfs.File, tier storage.Media) {
	wi.ensureHorizon()
	wi.tiers[tier].Update(f, wi.weightAt(f, wi.horizon), time.Time{})
}

// OnTierEvicted implements core.ResidencySubscriber.
func (wi *weightIndex) OnTierEvicted(f *dfs.File, tier storage.Media) {
	wi.tiers[tier].Remove(f.ID())
}

// OnTrackedFileDeleted implements core.ResidencySubscriber.
func (wi *weightIndex) OnTrackedFileDeleted(f *dfs.File) {
	for _, h := range wi.tiers {
		h.Remove(f.ID())
	}
}

// audit validates the index tiers against a residency recompute.
func (wi *weightIndex) audit() error {
	for _, m := range storage.AllMedia {
		want := 0
		for _, f := range wi.ctx.FS.LiveFiles() {
			if !f.Deleted() && wi.ctx.FS.Complete(f) && f.HasReplicaOn(m) {
				want++
			}
		}
		if got := wi.tiers[m].Len(); got != want {
			return fmt.Errorf("policy: weight index tier %v holds %d files, want %d", m, got, want)
		}
	}
	return nil
}

func newWeightBook() weightBook {
	return weightBook{
		weights: make(map[dfs.FileID]float64),
		touched: make(map[dfs.FileID]time.Time),
	}
}

func (w *weightBook) forget(id dfs.FileID) {
	delete(w.weights, id)
	delete(w.touched, id)
}

// lrfuWeight implements Formula 1: W = 1 + H*W / ((now-last) + H).
func lrfuWeight(old float64, sinceLast, halfLife time.Duration) float64 {
	return 1 + halfLife.Seconds()*old/(sinceLast.Seconds()+halfLife.Seconds())
}

// lrfuDecayed is the current value of a stored LRFU weight, used when
// comparing files at selection time.
func lrfuDecayed(stored float64, sinceLast, halfLife time.Duration) float64 {
	return halfLife.Seconds() * stored / (sinceLast.Seconds() + halfLife.Seconds())
}

// exdWeight implements Formula 2: W = 1 + W * e^(-alpha * (now-last)),
// with alpha in 1/millisecond as in Big SQL [16].
func exdWeight(old float64, sinceLast time.Duration, alpha float64) float64 {
	return 1 + old*math.Exp(-alpha*float64(sinceLast.Milliseconds()))
}

// exdDecayed is the current value of a stored EXD weight.
func exdDecayed(stored float64, sinceLast time.Duration, alpha float64) float64 {
	return stored * math.Exp(-alpha*float64(sinceLast.Milliseconds()))
}

// Defaults for the classic policies.
const (
	// DefaultLRFUHalfLife is H in Formula 1. The paper's example uses six
	// hours; for six-hour workloads a shorter half-life keeps the recency
	// component meaningful.
	DefaultLRFUHalfLife = time.Hour
	// DefaultLRFUUpgradeThreshold is the admission threshold on the LRFU
	// weight ("empirically set to 3", Section 6.1).
	DefaultLRFUUpgradeThreshold = 3.0
	// DefaultEXDAlpha is Big SQL's decay constant (Section 5.2).
	DefaultEXDAlpha = 1.16e-8
	// DefaultLIFEWindow is the Pold/Pnew age boundary in LIFE and LFU-F.
	// The paper cites nine hours as an example; scaled for six-hour runs.
	DefaultLIFEWindow = 2 * time.Hour
)

// oneReplicaBytes is the size of one complete replica of a file.
func oneReplicaBytes(f *dfs.File) int64 {
	var total int64
	for _, b := range f.Blocks() {
		total += b.Size()
	}
	return total
}
