package policy_test

// Differential equivalence test for the EXD upgrade admission: the
// weight-heap prefix sum (EXDUp.VictimWeightSum) must return exactly the
// value the retired score-everything-and-sort scan returns, at every
// checkpoint of a workload that fills the memory tier, diversifies the
// Formula 2 weights, runs concurrent movement (busy files filtered from
// the victim set), and survives node churn with repair.

import (
	"fmt"
	"testing"
	"time"

	"octostore/internal/cluster"
	"octostore/internal/core"
	"octostore/internal/dfs"
	"octostore/internal/policy"
	"octostore/internal/sim"
	"octostore/internal/storage"
)

func exdWorld(t *testing.T) (*sim.Engine, *dfs.FileSystem, *core.Context, *policy.EXDUp, *core.Manager, []*dfs.File) {
	t.Helper()
	e := sim.NewEngine()
	spec := storage.NodeSpec{
		{Media: storage.Memory, Capacity: 512 * storage.MB, ReadBW: 4000e6, WriteBW: 3000e6, Count: 1},
		{Media: storage.SSD, Capacity: 4 * storage.GB, ReadBW: 500e6, WriteBW: 400e6, Count: 1},
		{Media: storage.HDD, Capacity: 8 * storage.GB, ReadBW: 160e6, WriteBW: 140e6, Count: 2},
	}
	c := cluster.MustNew(e, cluster.Config{Workers: 2, SlotsPerNode: 4, Spec: spec})
	fs := dfs.MustNew(c, dfs.Config{Mode: dfs.ModePinnedHDD, Seed: 3})
	cfg := core.DefaultConfig()
	cfg.HighWatermark = 0.80
	cfg.LowWatermark = 0.70
	ctx := core.NewContext(fs, cfg)
	down := policy.NewLRU(ctx)
	up := policy.NewEXDUp(ctx, policy.DefaultEXDAlpha)
	mgr := core.NewManager(ctx, down, up)

	var files []*dfs.File
	for i := 0; i < 40; i++ {
		fs.Create(fmt.Sprintf("/exd/d%d/f%02d", i%4, i), 48*storage.MB, func(f *dfs.File, err error) {
			if err != nil {
				t.Fatalf("create %d: %v", i, err)
			}
			files = append(files, f)
		})
		e.Run()
	}
	return e, fs, ctx, up, mgr, files
}

// compareSums checks indexed == linear for a sweep of need sizes and
// returns how many sweeps produced a nontrivial (beatable, nonzero) sum.
func compareSums(t *testing.T, up *policy.EXDUp, label string) int {
	t.Helper()
	nontrivial := 0
	for _, need := range []int64{
		0, 1 * storage.MB, 10 * storage.MB, 50 * storage.MB, 100 * storage.MB,
		300 * storage.MB, 500 * storage.MB, 900 * storage.MB, 2 * storage.GB,
	} {
		got := up.VictimWeightSum(need)
		want := up.VictimWeightSumLinear(need)
		if got != want {
			t.Errorf("%s: VictimWeightSum(%d) diverged: heap %v, linear %v", label, need, got, want)
		}
		if got > 0 && got < 1e299 {
			nontrivial++
		}
	}
	return nontrivial
}

func TestEXDAdmissionDifferential(t *testing.T) {
	e, fs, ctx, up, mgr, files := exdWorld(t)

	// Diversify the Formula 2 weights: every file accessed at a distinct
	// instant, the first half twice.
	for i, f := range files {
		e.RunFor(time.Duration(30+i) * time.Second)
		fs.RecordAccess(f)
		e.Run()
		if i < 20 {
			e.RunFor(7 * time.Second)
			fs.RecordAccess(f)
			e.Run()
		}
	}

	nontrivial := compareSums(t, up, "hdd-only")

	// Fill the memory tier by upgrading files; crossing the 0.80 high
	// watermark triggers LRU downgrades through the monitor, so later
	// checkpoints run with movement in flight.
	busyObserved := false
	for i := 0; i < 18; i++ {
		if err := fs.MoveFileReplicas(files[i], storage.HDD, storage.Memory, nil); err != nil {
			t.Fatalf("upgrade %d: %v", i, err)
		}
		// Settle partially: the manager's MoveLatency (5s) keeps any
		// downgrade it scheduled in flight at this checkpoint.
		e.RunFor(time.Second)
		for _, f := range fs.LiveFiles() {
			if ctx.IsBusy(f) && f.HasReplicaOn(storage.Memory) {
				busyObserved = true
			}
		}
		nontrivial += compareSums(t, up, fmt.Sprintf("fill-%d", i))
		e.Run()
	}
	if !busyObserved {
		t.Error("no busy memory file at any checkpoint; the eligibility-filtering path went unexercised")
	}
	nontrivial += compareSums(t, up, "filled")

	// More accesses after filling, so memory-resident weights keep moving.
	for i := 0; i < 40; i += 3 {
		e.RunFor(11 * time.Second)
		fs.RecordAccess(files[i])
		e.Run()
	}
	nontrivial += compareSums(t, up, "re-touched")

	// Node churn: lose a worker (taking some memory replicas with it),
	// repair, and require the heap to stay exact and audit-clean.
	if removed := fs.FailNode(fs.Cluster().Node(1)); removed[storage.Memory] == 0 {
		t.Fatal("node 1 took no memory capacity; churn case is vacuous")
	}
	mgr.Monitor().CheckReplication()
	e.Run()
	nontrivial += compareSums(t, up, "post-churn")
	if err := up.AuditIndex(); err != nil {
		t.Errorf("weight index audit after churn: %v", err)
	}
	if err := fs.CheckInvariants(); err != nil {
		t.Errorf("invariants after churn: %v", err)
	}

	if nontrivial < 20 {
		t.Fatalf("only %d nontrivial admission sums; workload too tame to trust the equivalence", nontrivial)
	}
}
