package policy

import (
	"sort"
	"time"

	"octostore/internal/core"
	"octostore/internal/dfs"
	"octostore/internal/storage"
)

// singleShot implements the common upgrade-loop shape for OSA, LRFU and
// EXD: the accessed file is the only candidate and the process stops after
// it (Sections 6.2 and 6.4).
type singleShot struct {
	pending *dfs.File
}

func (s *singleShot) SelectFile() *dfs.File {
	f := s.pending
	s.pending = nil
	return f
}

func (s *singleShot) StopUpgrade() bool { return s.pending == nil }

// OSA upgrades a file into memory on every access when it is not already
// there (Table 2, "On Single Access").
type OSA struct {
	core.NopCallbacks
	singleShot
	ctx *core.Context
}

// NewOSA builds the OSA upgrade policy.
func NewOSA(ctx *core.Context) *OSA { return &OSA{ctx: ctx} }

// Name implements core.UpgradePolicy.
func (p *OSA) Name() string { return "OSA" }

// StartUpgrade implements core.UpgradePolicy.
func (p *OSA) StartUpgrade(accessed *dfs.File) bool {
	if accessed == nil || accessed.HasReplicaOn(storage.Memory) {
		return false
	}
	p.pending = accessed
	return true
}

// SelectTargetTier implements core.UpgradePolicy: memory only (OSA does not
// move data from HDD to SSD, Section 6.1).
func (p *OSA) SelectTargetTier(f *dfs.File, from storage.Media) (storage.Media, bool) {
	return p.ctx.DefaultUpgradeTier(f, from)
}

// LRFUUp upgrades an accessed file when its Formula 1 weight exceeds a
// threshold (Table 2).
type LRFUUp struct {
	core.NopCallbacks
	singleShot
	ctx       *core.Context
	halfLife  time.Duration
	threshold float64
	book      weightBook
}

// NewLRFUUp builds the LRFU upgrade policy.
func NewLRFUUp(ctx *core.Context, halfLife time.Duration, threshold float64) *LRFUUp {
	if halfLife <= 0 {
		halfLife = DefaultLRFUHalfLife
	}
	if threshold <= 0 {
		threshold = DefaultLRFUUpgradeThreshold
	}
	return &LRFUUp{ctx: ctx, halfLife: halfLife, threshold: threshold, book: newWeightBook()}
}

// Name implements core.UpgradePolicy.
func (p *LRFUUp) Name() string { return "LRFU" }

// OnFileCreated initialises the weight to 1.
func (p *LRFUUp) OnFileCreated(f *dfs.File) {
	p.book.weights[f.ID()] = 1
	p.book.touched[f.ID()] = p.ctx.Clock.Now()
}

// OnFileAccessed applies Formula 1 (the weight the admission test uses).
func (p *LRFUUp) OnFileAccessed(f *dfs.File) {
	now := p.ctx.Clock.Now()
	old := p.book.weights[f.ID()]
	last, ok := p.book.touched[f.ID()]
	if !ok {
		last = f.Created()
	}
	p.book.weights[f.ID()] = lrfuWeight(old, now.Sub(last), p.halfLife)
	p.book.touched[f.ID()] = now
}

// OnFileDeleted drops the weight entry.
func (p *LRFUUp) OnFileDeleted(f *dfs.File) { p.book.forget(f.ID()) }

// StartUpgrade admits files whose weight passed the threshold.
func (p *LRFUUp) StartUpgrade(accessed *dfs.File) bool {
	if accessed == nil || accessed.HasReplicaOn(storage.Memory) {
		return false
	}
	if p.book.weights[accessed.ID()] <= p.threshold {
		return false
	}
	p.pending = accessed
	return true
}

// SelectTargetTier implements core.UpgradePolicy.
func (p *LRFUUp) SelectTargetTier(f *dfs.File, from storage.Media) (storage.Media, bool) {
	return p.ctx.DefaultUpgradeTier(f, from)
}

// EXDUp reproduces Big SQL's admission rule (Table 2): upgrade when memory
// has room; otherwise upgrade only when the file's Formula 2 weight exceeds
// the summed weights of the files that would have to be downgraded to make
// room. The victim sum is answered from the memory tier's lazy weight heap
// (see victimWeightSum) instead of sorting the whole tier per admission.
type EXDUp struct {
	core.NopCallbacks
	singleShot
	ctx   *core.Context
	alpha float64
	book  weightBook
	wi    *weightIndex

	// Reused buffers for the victim-sum admission test.
	eligBuf []*dfs.File
	scored  []scoredFile
	prefix  victimPrefix
}

// scoredFile pairs a candidate with its decayed weight (and, on the heap
// path, its memory-tier footprint) for victim selection.
type scoredFile struct {
	f *dfs.File
	w float64
	b int64
}

// victimPrefix maintains the minimal-weight set of memory files covering a
// byte target, as a max-heap ordered by (weight, id): adding a lighter
// candidate and trimming the heaviest while coverage holds keeps the set
// equal to the greedy ascending prefix of everything offered so far.
type victimPrefix struct {
	items []scoredFile
	bytes int64
}

// heavier is the max-heap order (the boundary victim sits on top).
func heavier(a, b scoredFile) bool {
	if a.w != b.w {
		return a.w > b.w
	}
	return a.f.ID() > b.f.ID()
}

func (v *victimPrefix) reset() {
	v.items = v.items[:0]
	v.bytes = 0
}

func (v *victimPrefix) top() scoredFile { return v.items[0] }

func (v *victimPrefix) push(s scoredFile) {
	v.items = append(v.items, s)
	v.bytes += s.b
	i := len(v.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !heavier(v.items[i], v.items[parent]) {
			break
		}
		v.items[i], v.items[parent] = v.items[parent], v.items[i]
		i = parent
	}
}

func (v *victimPrefix) popTop() {
	v.bytes -= v.items[0].b
	last := len(v.items) - 1
	v.items[0] = v.items[last]
	v.items = v.items[:last]
	i, n := 0, len(v.items)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		c := l
		if r := l + 1; r < n && heavier(v.items[r], v.items[l]) {
			c = r
		}
		if !heavier(v.items[c], v.items[i]) {
			return
		}
		v.items[i], v.items[c] = v.items[c], v.items[i]
		i = c
	}
}

// trim drops the heaviest victims while the rest still cover need.
func (v *victimPrefix) trim(need int64) {
	for len(v.items) > 0 && v.bytes-v.items[0].b >= need {
		v.popTop()
	}
}

// NewEXDUp builds the EXD upgrade policy.
func NewEXDUp(ctx *core.Context, alpha float64) *EXDUp {
	if alpha <= 0 {
		alpha = DefaultEXDAlpha
	}
	p := &EXDUp{ctx: ctx, alpha: alpha, book: newWeightBook()}
	p.wi = newWeightIndex(ctx, &p.book, func(stored float64, since time.Duration) float64 {
		return exdDecayed(stored, since, p.alpha)
	})
	return p
}

// Name implements core.UpgradePolicy.
func (p *EXDUp) Name() string { return "EXD" }

// OnFileCreated initialises the weight.
func (p *EXDUp) OnFileCreated(f *dfs.File) {
	p.book.weights[f.ID()] = 1
	p.book.touched[f.ID()] = p.ctx.Clock.Now()
	p.wi.refresh(f)
}

// OnFileAccessed applies Formula 2.
func (p *EXDUp) OnFileAccessed(f *dfs.File) {
	now := p.ctx.Clock.Now()
	old := p.book.weights[f.ID()]
	last, ok := p.book.touched[f.ID()]
	if !ok {
		last = f.Created()
	}
	p.book.weights[f.ID()] = exdWeight(old, now.Sub(last), p.alpha)
	p.book.touched[f.ID()] = now
	p.wi.refresh(f)
}

// OnFileDeleted drops the weight entry.
func (p *EXDUp) OnFileDeleted(f *dfs.File) { p.book.forget(f.ID()) }

// AuditIndex validates the weight index membership against the file
// system; the churn tests call it after node failures and repairs.
func (p *EXDUp) AuditIndex() error { return p.wi.audit() }

// StartUpgrade implements the space-or-outweigh admission test.
func (p *EXDUp) StartUpgrade(accessed *dfs.File) bool {
	if accessed == nil || accessed.HasReplicaOn(storage.Memory) {
		return false
	}
	need := oneReplicaBytes(accessed)
	if p.ctx.TierFreeBytes(storage.Memory) >= need {
		p.pending = accessed
		return true
	}
	if p.weightOf(accessed) > p.victimWeightSum(need) {
		p.pending = accessed
		return true
	}
	return false
}

func (p *EXDUp) weightOf(f *dfs.File) float64 {
	now := p.ctx.Clock.Now()
	last, ok := p.book.touched[f.ID()]
	if !ok {
		last = f.Created()
	}
	return exdDecayed(p.book.weights[f.ID()], now.Sub(last), p.alpha)
}

// unbeatableWeight is reported when even evicting the whole memory tier
// would not fit the file, so the admission test necessarily fails.
const unbeatableWeight = 1e300

// victimWeightSum sums the decayed weights of the lowest-weight memory
// files whose eviction would free `need` bytes, walking the memory tier's
// lazy weight heap in ascending-bound order and maintaining the covering
// prefix in a max-heap, instead of scoring and sorting the whole tier
// (which cost O(n log n) per full-memory access).
//
// Stored heap keys are weight lower bounds evaluated at a sliding horizon
// (see weightHorizonWindow), so the walk may stop as soon as the next
// stored bound exceeds the prefix's boundary weight (the max-heap top):
// every remaining file's exact weight is at least its bound, hence
// strictly heavier than the boundary, and the greedy minimal prefix cannot
// contain it. The boundary is the right cut — unlike a running max over
// everything visited, it stops rising once coverage is reached and then
// only falls as lighter victims displace heavier ones, so the walk visits
// the prefix plus the thin bound-slack band above it, O((v+s) log N)
// instead of O(N log N). The prefix is then sorted exactly like the
// retired full scan — same comparator, same ascending summation order —
// so the result is bit-identical to the linear oracle's.
func (p *EXDUp) victimWeightSum(need int64) float64 {
	if need <= 0 {
		// Nothing must be evicted; the oracle's covering prefix is empty.
		// (Also keeps the walk's pf.top() reads safe: trim(0) would empty
		// the prefix heap.)
		return 0
	}
	p.wi.ensureHorizon()
	p.prefix.reset()
	pf := &p.prefix
	covered := false
	p.wi.tiers[storage.Memory].AscendWhile(
		func(k core.HeapKey) bool { return !covered || k.W <= pf.top().w },
		p.wi.elig,
		func(f *dfs.File) {
			w := p.weightOf(f)
			if covered {
				if top := pf.top(); w > top.w || (w == top.w && f.ID() > top.f.ID()) {
					return // heavier than the boundary: cannot enter the prefix
				}
			}
			pf.push(scoredFile{f: f, w: w, b: f.BytesOn(storage.Memory)})
			if pf.bytes >= need {
				covered = true
				pf.trim(need)
			}
		})
	if !covered {
		return unbeatableWeight
	}
	// Identical arithmetic to the oracle: prefixSum sorts with the same
	// comparator and sums ascending; trim guaranteed the set is the minimal
	// covering prefix, so every element contributes.
	p.scored = append(p.scored[:0], pf.items...)
	return prefixSum(p.scored, need)
}

// victimWeightSumLinear is the retired full-scan admission sum, kept as
// the differential-test oracle and benchmark baseline: score every
// eligible memory file, sort, and sum the covering prefix.
func (p *EXDUp) victimWeightSumLinear(need int64) float64 {
	p.eligBuf = p.ctx.EligibleFilesInto(p.eligBuf[:0], storage.Memory)
	p.scored = p.scored[:0]
	for _, f := range p.eligBuf {
		p.scored = append(p.scored, scoredFile{f: f, w: p.weightOf(f)})
	}
	return prefixSum(p.scored, need)
}

// prefixSum sorts candidates ascending by (weight, id) and sums the
// minimal prefix freeing `need` bytes; unbeatableWeight when even the
// whole set cannot.
func prefixSum(candidates []scoredFile, need int64) float64 {
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].w != candidates[j].w {
			return candidates[i].w < candidates[j].w
		}
		return candidates[i].f.ID() < candidates[j].f.ID()
	})
	var freed int64
	var sum float64
	for _, c := range candidates {
		if freed >= need {
			break
		}
		freed += c.f.BytesOn(storage.Memory)
		sum += c.w
	}
	if freed < need {
		return unbeatableWeight
	}
	return sum
}

// VictimWeightSum exposes the indexed admission sum to the differential
// tests.
func (p *EXDUp) VictimWeightSum(need int64) float64 { return p.victimWeightSum(need) }

// VictimWeightSumLinear exposes the linear oracle to the differential
// tests and benchmarks.
func (p *EXDUp) VictimWeightSumLinear(need int64) float64 { return p.victimWeightSumLinear(need) }

// SelectTargetTier implements core.UpgradePolicy. EXD may target memory
// even when full: the admission test already decided the trade is worth it,
// and the downgrade process frees the space.
func (p *EXDUp) SelectTargetTier(f *dfs.File, from storage.Media) (storage.Media, bool) {
	if from == storage.Memory {
		return 0, false
	}
	if to, ok := p.ctx.DefaultUpgradeTier(f, from); ok {
		return to, true
	}
	return storage.Memory, true
}
