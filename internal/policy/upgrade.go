package policy

import (
	"sort"
	"time"

	"octostore/internal/core"
	"octostore/internal/dfs"
	"octostore/internal/storage"
)

// singleShot implements the common upgrade-loop shape for OSA, LRFU and
// EXD: the accessed file is the only candidate and the process stops after
// it (Sections 6.2 and 6.4).
type singleShot struct {
	pending *dfs.File
}

func (s *singleShot) SelectFile() *dfs.File {
	f := s.pending
	s.pending = nil
	return f
}

func (s *singleShot) StopUpgrade() bool { return s.pending == nil }

// OSA upgrades a file into memory on every access when it is not already
// there (Table 2, "On Single Access").
type OSA struct {
	core.NopCallbacks
	singleShot
	ctx *core.Context
}

// NewOSA builds the OSA upgrade policy.
func NewOSA(ctx *core.Context) *OSA { return &OSA{ctx: ctx} }

// Name implements core.UpgradePolicy.
func (p *OSA) Name() string { return "OSA" }

// StartUpgrade implements core.UpgradePolicy.
func (p *OSA) StartUpgrade(accessed *dfs.File) bool {
	if accessed == nil || accessed.HasReplicaOn(storage.Memory) {
		return false
	}
	p.pending = accessed
	return true
}

// SelectTargetTier implements core.UpgradePolicy: memory only (OSA does not
// move data from HDD to SSD, Section 6.1).
func (p *OSA) SelectTargetTier(f *dfs.File, from storage.Media) (storage.Media, bool) {
	return p.ctx.DefaultUpgradeTier(f, from)
}

// LRFUUp upgrades an accessed file when its Formula 1 weight exceeds a
// threshold (Table 2).
type LRFUUp struct {
	core.NopCallbacks
	singleShot
	ctx       *core.Context
	halfLife  time.Duration
	threshold float64
	book      weightBook
}

// NewLRFUUp builds the LRFU upgrade policy.
func NewLRFUUp(ctx *core.Context, halfLife time.Duration, threshold float64) *LRFUUp {
	if halfLife <= 0 {
		halfLife = DefaultLRFUHalfLife
	}
	if threshold <= 0 {
		threshold = DefaultLRFUUpgradeThreshold
	}
	return &LRFUUp{ctx: ctx, halfLife: halfLife, threshold: threshold, book: newWeightBook()}
}

// Name implements core.UpgradePolicy.
func (p *LRFUUp) Name() string { return "LRFU" }

// OnFileCreated initialises the weight to 1.
func (p *LRFUUp) OnFileCreated(f *dfs.File) {
	p.book.weights[f.ID()] = 1
	p.book.touched[f.ID()] = p.ctx.Clock.Now()
}

// OnFileAccessed applies Formula 1 (the weight the admission test uses).
func (p *LRFUUp) OnFileAccessed(f *dfs.File) {
	now := p.ctx.Clock.Now()
	old := p.book.weights[f.ID()]
	last, ok := p.book.touched[f.ID()]
	if !ok {
		last = f.Created()
	}
	p.book.weights[f.ID()] = lrfuWeight(old, now.Sub(last), p.halfLife)
	p.book.touched[f.ID()] = now
}

// OnFileDeleted drops the weight entry.
func (p *LRFUUp) OnFileDeleted(f *dfs.File) { p.book.forget(f.ID()) }

// StartUpgrade admits files whose weight passed the threshold.
func (p *LRFUUp) StartUpgrade(accessed *dfs.File) bool {
	if accessed == nil || accessed.HasReplicaOn(storage.Memory) {
		return false
	}
	if p.book.weights[accessed.ID()] <= p.threshold {
		return false
	}
	p.pending = accessed
	return true
}

// SelectTargetTier implements core.UpgradePolicy.
func (p *LRFUUp) SelectTargetTier(f *dfs.File, from storage.Media) (storage.Media, bool) {
	return p.ctx.DefaultUpgradeTier(f, from)
}

// EXDUp reproduces Big SQL's admission rule (Table 2): upgrade when memory
// has room; otherwise upgrade only when the file's Formula 2 weight exceeds
// the summed weights of the files that would have to be downgraded to make
// room.
type EXDUp struct {
	core.NopCallbacks
	singleShot
	ctx   *core.Context
	alpha float64
	book  weightBook

	// Reused buffers for the victim-sum admission test.
	eligBuf []*dfs.File
	scored  []scoredFile
}

// scoredFile pairs a candidate with its decayed weight for victim sorting.
type scoredFile struct {
	f *dfs.File
	w float64
}

// NewEXDUp builds the EXD upgrade policy.
func NewEXDUp(ctx *core.Context, alpha float64) *EXDUp {
	if alpha <= 0 {
		alpha = DefaultEXDAlpha
	}
	return &EXDUp{ctx: ctx, alpha: alpha, book: newWeightBook()}
}

// Name implements core.UpgradePolicy.
func (p *EXDUp) Name() string { return "EXD" }

// OnFileCreated initialises the weight.
func (p *EXDUp) OnFileCreated(f *dfs.File) {
	p.book.weights[f.ID()] = 1
	p.book.touched[f.ID()] = p.ctx.Clock.Now()
}

// OnFileAccessed applies Formula 2.
func (p *EXDUp) OnFileAccessed(f *dfs.File) {
	now := p.ctx.Clock.Now()
	old := p.book.weights[f.ID()]
	last, ok := p.book.touched[f.ID()]
	if !ok {
		last = f.Created()
	}
	p.book.weights[f.ID()] = exdWeight(old, now.Sub(last), p.alpha)
	p.book.touched[f.ID()] = now
}

// OnFileDeleted drops the weight entry.
func (p *EXDUp) OnFileDeleted(f *dfs.File) { p.book.forget(f.ID()) }

// StartUpgrade implements the space-or-outweigh admission test.
func (p *EXDUp) StartUpgrade(accessed *dfs.File) bool {
	if accessed == nil || accessed.HasReplicaOn(storage.Memory) {
		return false
	}
	need := oneReplicaBytes(accessed)
	if p.ctx.TierFreeBytes(storage.Memory) >= need {
		p.pending = accessed
		return true
	}
	if p.weightOf(accessed) > p.victimWeightSum(need) {
		p.pending = accessed
		return true
	}
	return false
}

func (p *EXDUp) weightOf(f *dfs.File) float64 {
	now := p.ctx.Clock.Now()
	last, ok := p.book.touched[f.ID()]
	if !ok {
		last = f.Created()
	}
	return exdDecayed(p.book.weights[f.ID()], now.Sub(last), p.alpha)
}

// victimWeightSum sums the decayed weights of the lowest-weight memory
// files whose eviction would free `need` bytes. Candidates are collected
// into reused buffers and sorted in O(n log n) (the previous selection
// sort was quadratic in the memory-tier population).
func (p *EXDUp) victimWeightSum(need int64) float64 {
	p.eligBuf = p.ctx.EligibleFilesInto(p.eligBuf[:0], storage.Memory)
	p.scored = p.scored[:0]
	for _, f := range p.eligBuf {
		p.scored = append(p.scored, scoredFile{f, p.weightOf(f)})
	}
	candidates := p.scored
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].w != candidates[j].w {
			return candidates[i].w < candidates[j].w
		}
		return candidates[i].f.ID() < candidates[j].f.ID()
	})
	var freed int64
	var sum float64
	for _, c := range candidates {
		if freed >= need {
			break
		}
		freed += c.f.BytesOn(storage.Memory)
		sum += c.w
	}
	if freed < need {
		// Even evicting everything would not fit the file: report an
		// unbeatable weight so the admission test fails.
		return 1e300
	}
	return sum
}

// SelectTargetTier implements core.UpgradePolicy. EXD may target memory
// even when full: the admission test already decided the trade is worth it,
// and the downgrade process frees the space.
func (p *EXDUp) SelectTargetTier(f *dfs.File, from storage.Media) (storage.Media, bool) {
	if from == storage.Memory {
		return 0, false
	}
	if to, ok := p.ctx.DefaultUpgradeTier(f, from); ok {
		return to, true
	}
	return storage.Memory, true
}
