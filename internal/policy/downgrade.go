package policy

import (
	"time"

	"octostore/internal/core"
	"octostore/internal/dfs"
	"octostore/internal/storage"
)

// LRU downgrades the file accessed least recently (Table 1). Selection
// reads the context's per-tier recency index: O(log N) per pick instead of
// a full scan over the live files.
type LRU struct {
	core.NopCallbacks
	thresholdStartStop
	defaultTargetTier
	ctx *core.Context
}

// NewLRU builds the LRU downgrade policy.
func NewLRU(ctx *core.Context) *LRU {
	ctx.Index().RequireRecency()
	return &LRU{thresholdStartStop: thresholdStartStop{ctx}, defaultTargetTier: defaultTargetTier{ctx}, ctx: ctx}
}

// Name implements core.DowngradePolicy.
func (p *LRU) Name() string { return "LRU" }

// SelectFile implements core.DowngradePolicy.
func (p *LRU) SelectFile(tier storage.Media) *dfs.File {
	return p.ctx.Index().SelectLRU(tier)
}

// SelectFileLinear is the retired full-scan selection (least recent touch,
// ties toward the lowest file id), kept as the differential-test oracle
// and benchmark baseline.
func (p *LRU) SelectFileLinear(tier storage.Media) *dfs.File {
	var best *dfs.File
	var bestT time.Time
	for _, f := range p.ctx.EligibleFiles(tier) {
		t := p.ctx.LastTouch(f)
		if best == nil || t.Before(bestT) || (t.Equal(bestT) && f.ID() < best.ID()) {
			best, bestT = f, t
		}
	}
	return best
}

// LFU downgrades the file used least often (Table 1); ties break toward
// the least recently used, then the lowest file id. Selection reads the
// per-tier frequency index.
type LFU struct {
	core.NopCallbacks
	thresholdStartStop
	defaultTargetTier
	ctx *core.Context
}

// NewLFU builds the LFU downgrade policy.
func NewLFU(ctx *core.Context) *LFU {
	ctx.Index().RequireFrequency()
	return &LFU{thresholdStartStop: thresholdStartStop{ctx}, defaultTargetTier: defaultTargetTier{ctx}, ctx: ctx}
}

// Name implements core.DowngradePolicy.
func (p *LFU) Name() string { return "LFU" }

// SelectFile implements core.DowngradePolicy.
func (p *LFU) SelectFile(tier storage.Media) *dfs.File {
	return p.ctx.Index().SelectLFU(tier)
}

// SelectFileLinear is the retired full-scan selection, kept as the
// differential-test oracle and benchmark baseline.
func (p *LFU) SelectFileLinear(tier storage.Media) *dfs.File {
	var best *dfs.File
	for _, f := range p.ctx.EligibleFiles(tier) {
		if best == nil {
			best = f
			continue
		}
		cf, cb := p.ctx.AccessCount(f), p.ctx.AccessCount(best)
		if cf > cb {
			continue
		}
		if cf < cb {
			best = f
			continue
		}
		tf, tb := p.ctx.LastTouch(f), p.ctx.LastTouch(best)
		if tf.Before(tb) || (tf.Equal(tb) && f.ID() < best.ID()) {
			best = f
		}
	}
	return best
}

// LRFUDown downgrades the file with the lowest recency+frequency weight
// (Formula 1). Candidates live in a per-tier lazy weight heap: keys are
// weight lower bounds at a sliding horizon, so a selection inspects only
// the entries whose bound could win instead of decaying every file.
type LRFUDown struct {
	core.NopCallbacks
	thresholdStartStop
	defaultTargetTier
	ctx      *core.Context
	halfLife time.Duration
	book     weightBook
	wi       *weightIndex
}

// NewLRFUDown builds the LRFU downgrade policy with the given half-life H.
func NewLRFUDown(ctx *core.Context, halfLife time.Duration) *LRFUDown {
	if halfLife <= 0 {
		halfLife = DefaultLRFUHalfLife
	}
	p := &LRFUDown{
		thresholdStartStop: thresholdStartStop{ctx},
		defaultTargetTier:  defaultTargetTier{ctx},
		ctx:                ctx,
		halfLife:           halfLife,
		book:               newWeightBook(),
	}
	p.wi = newWeightIndex(ctx, &p.book, func(stored float64, since time.Duration) float64 {
		return lrfuDecayed(stored, since, p.halfLife)
	})
	return p
}

// Name implements core.DowngradePolicy.
func (p *LRFUDown) Name() string { return "LRFU" }

// OnFileCreated initialises the weight to 1 (Section 5.2).
func (p *LRFUDown) OnFileCreated(f *dfs.File) {
	p.book.weights[f.ID()] = 1
	p.book.touched[f.ID()] = p.ctx.Clock.Now()
	p.wi.refresh(f)
}

// OnFileAccessed applies Formula 1.
func (p *LRFUDown) OnFileAccessed(f *dfs.File) {
	now := p.ctx.Clock.Now()
	old := p.book.weights[f.ID()]
	last, ok := p.book.touched[f.ID()]
	if !ok {
		last = f.Created()
	}
	p.book.weights[f.ID()] = lrfuWeight(old, now.Sub(last), p.halfLife)
	p.book.touched[f.ID()] = now
	p.wi.refresh(f)
}

// OnFileDeleted drops the weight entry.
func (p *LRFUDown) OnFileDeleted(f *dfs.File) { p.book.forget(f.ID()) }

// SelectFile picks the lowest decayed weight through the lazy heap.
func (p *LRFUDown) SelectFile(tier storage.Media) *dfs.File {
	return p.wi.selectMin(tier)
}

// SelectFileLinear is the retired full-scan selection, kept as the
// differential-test oracle and benchmark baseline.
func (p *LRFUDown) SelectFileLinear(tier storage.Media) *dfs.File {
	return p.wi.selectMinLinear(tier)
}

// AuditIndex validates the weight index membership against the file
// system; the churn tests call it after node failures and repairs.
func (p *LRFUDown) AuditIndex() error { return p.wi.audit() }

// LIFE reproduces PACMan's LIFE policy (Table 1): if files older than the
// window exist, evict the least frequently used among them; otherwise evict
// the largest recent file, which minimises average job completion time by
// favouring small inputs. The time-windowed partition changes shape with
// the clock, so selection stays a scan; the candidate buffer is reused
// across invocations.
type LIFE struct {
	core.NopCallbacks
	thresholdStartStop
	defaultTargetTier
	ctx    *core.Context
	window time.Duration
	buf    []*dfs.File
}

// NewLIFE builds the LIFE downgrade policy.
func NewLIFE(ctx *core.Context, window time.Duration) *LIFE {
	if window <= 0 {
		window = DefaultLIFEWindow
	}
	return &LIFE{thresholdStartStop: thresholdStartStop{ctx}, defaultTargetTier: defaultTargetTier{ctx}, ctx: ctx, window: window}
}

// Name implements core.DowngradePolicy.
func (p *LIFE) Name() string { return "LIFE" }

// SelectFile implements the two-partition rule.
func (p *LIFE) SelectFile(tier storage.Media) *dfs.File {
	oldCut := p.ctx.Clock.Now().Add(-p.window)
	var lfuOld *dfs.File
	var largestNew *dfs.File
	p.buf = p.ctx.EligibleFilesInto(p.buf[:0], tier)
	for _, f := range p.buf {
		if p.ctx.LastTouch(f).Before(oldCut) {
			if lfuOld == nil || p.ctx.AccessCount(f) < p.ctx.AccessCount(lfuOld) {
				lfuOld = f
			}
			continue
		}
		if largestNew == nil || f.Size() > largestNew.Size() {
			largestNew = f
		}
	}
	if lfuOld != nil {
		return lfuOld
	}
	return largestNew
}

// LFUF reproduces PACMan's LFU-F policy (Table 1): LFU among old files,
// else LFU among recent files, maximising cluster efficiency.
type LFUF struct {
	core.NopCallbacks
	thresholdStartStop
	defaultTargetTier
	ctx    *core.Context
	window time.Duration
	buf    []*dfs.File
}

// NewLFUF builds the LFU-F downgrade policy.
func NewLFUF(ctx *core.Context, window time.Duration) *LFUF {
	if window <= 0 {
		window = DefaultLIFEWindow
	}
	return &LFUF{thresholdStartStop: thresholdStartStop{ctx}, defaultTargetTier: defaultTargetTier{ctx}, ctx: ctx, window: window}
}

// Name implements core.DowngradePolicy.
func (p *LFUF) Name() string { return "LFU-F" }

// SelectFile implements the two-partition LFU rule.
func (p *LFUF) SelectFile(tier storage.Media) *dfs.File {
	oldCut := p.ctx.Clock.Now().Add(-p.window)
	var lfuOld, lfuNew *dfs.File
	p.buf = p.ctx.EligibleFilesInto(p.buf[:0], tier)
	for _, f := range p.buf {
		if p.ctx.LastTouch(f).Before(oldCut) {
			if lfuOld == nil || p.ctx.AccessCount(f) < p.ctx.AccessCount(lfuOld) {
				lfuOld = f
			}
		} else {
			if lfuNew == nil || p.ctx.AccessCount(f) < p.ctx.AccessCount(lfuNew) {
				lfuNew = f
			}
		}
	}
	if lfuOld != nil {
		return lfuOld
	}
	return lfuNew
}

// EXDDown downgrades the file with the lowest exponentially decayed weight
// (Formula 2, Big SQL), selected through the same lazy weight-heap
// machinery as LRFU.
type EXDDown struct {
	core.NopCallbacks
	thresholdStartStop
	defaultTargetTier
	ctx   *core.Context
	alpha float64
	book  weightBook
	wi    *weightIndex
}

// NewEXDDown builds the EXD downgrade policy.
func NewEXDDown(ctx *core.Context, alpha float64) *EXDDown {
	if alpha <= 0 {
		alpha = DefaultEXDAlpha
	}
	p := &EXDDown{
		thresholdStartStop: thresholdStartStop{ctx},
		defaultTargetTier:  defaultTargetTier{ctx},
		ctx:                ctx,
		alpha:              alpha,
		book:               newWeightBook(),
	}
	p.wi = newWeightIndex(ctx, &p.book, func(stored float64, since time.Duration) float64 {
		return exdDecayed(stored, since, p.alpha)
	})
	return p
}

// Name implements core.DowngradePolicy.
func (p *EXDDown) Name() string { return "EXD" }

// OnFileCreated initialises the weight.
func (p *EXDDown) OnFileCreated(f *dfs.File) {
	p.book.weights[f.ID()] = 1
	p.book.touched[f.ID()] = p.ctx.Clock.Now()
	p.wi.refresh(f)
}

// OnFileAccessed applies Formula 2.
func (p *EXDDown) OnFileAccessed(f *dfs.File) {
	now := p.ctx.Clock.Now()
	old := p.book.weights[f.ID()]
	last, ok := p.book.touched[f.ID()]
	if !ok {
		last = f.Created()
	}
	p.book.weights[f.ID()] = exdWeight(old, now.Sub(last), p.alpha)
	p.book.touched[f.ID()] = now
	p.wi.refresh(f)
}

// OnFileDeleted drops the weight entry.
func (p *EXDDown) OnFileDeleted(f *dfs.File) { p.book.forget(f.ID()) }

// SelectFile picks the lowest decayed weight through the lazy heap.
func (p *EXDDown) SelectFile(tier storage.Media) *dfs.File {
	return p.wi.selectMin(tier)
}

// SelectFileLinear is the retired full-scan selection, kept as the
// differential-test oracle and benchmark baseline.
func (p *EXDDown) SelectFileLinear(tier storage.Media) *dfs.File {
	return p.wi.selectMinLinear(tier)
}

// AuditIndex validates the weight index membership against the file
// system.
func (p *EXDDown) AuditIndex() error { return p.wi.audit() }
