package policy

import (
	"time"

	"octostore/internal/core"
	"octostore/internal/dfs"
	"octostore/internal/storage"
)

// LRU downgrades the file accessed least recently (Table 1).
type LRU struct {
	core.NopCallbacks
	thresholdStartStop
	defaultTargetTier
	ctx *core.Context
}

// NewLRU builds the LRU downgrade policy.
func NewLRU(ctx *core.Context) *LRU {
	return &LRU{thresholdStartStop: thresholdStartStop{ctx}, defaultTargetTier: defaultTargetTier{ctx}, ctx: ctx}
}

// Name implements core.DowngradePolicy.
func (p *LRU) Name() string { return "LRU" }

// SelectFile implements core.DowngradePolicy.
func (p *LRU) SelectFile(tier storage.Media) *dfs.File {
	var best *dfs.File
	for _, f := range p.ctx.EligibleFiles(tier) {
		if best == nil || p.ctx.LastTouch(f).Before(p.ctx.LastTouch(best)) {
			best = f
		}
	}
	return best
}

// LFU downgrades the file used least often (Table 1); ties break toward
// the least recently used.
type LFU struct {
	core.NopCallbacks
	thresholdStartStop
	defaultTargetTier
	ctx *core.Context
}

// NewLFU builds the LFU downgrade policy.
func NewLFU(ctx *core.Context) *LFU {
	return &LFU{thresholdStartStop: thresholdStartStop{ctx}, defaultTargetTier: defaultTargetTier{ctx}, ctx: ctx}
}

// Name implements core.DowngradePolicy.
func (p *LFU) Name() string { return "LFU" }

// SelectFile implements core.DowngradePolicy.
func (p *LFU) SelectFile(tier storage.Media) *dfs.File {
	var best *dfs.File
	for _, f := range p.ctx.EligibleFiles(tier) {
		if best == nil {
			best = f
			continue
		}
		cf, cb := p.ctx.AccessCount(f), p.ctx.AccessCount(best)
		if cf < cb || (cf == cb && p.ctx.LastTouch(f).Before(p.ctx.LastTouch(best))) {
			best = f
		}
	}
	return best
}

// LRFUDown downgrades the file with the lowest recency+frequency weight
// (Formula 1).
type LRFUDown struct {
	core.NopCallbacks
	thresholdStartStop
	defaultTargetTier
	ctx      *core.Context
	halfLife time.Duration
	book     weightBook
}

// NewLRFUDown builds the LRFU downgrade policy with the given half-life H.
func NewLRFUDown(ctx *core.Context, halfLife time.Duration) *LRFUDown {
	if halfLife <= 0 {
		halfLife = DefaultLRFUHalfLife
	}
	return &LRFUDown{
		thresholdStartStop: thresholdStartStop{ctx},
		defaultTargetTier:  defaultTargetTier{ctx},
		ctx:                ctx,
		halfLife:           halfLife,
		book:               newWeightBook(),
	}
}

// Name implements core.DowngradePolicy.
func (p *LRFUDown) Name() string { return "LRFU" }

// OnFileCreated initialises the weight to 1 (Section 5.2).
func (p *LRFUDown) OnFileCreated(f *dfs.File) {
	p.book.weights[f.ID()] = 1
	p.book.touched[f.ID()] = p.ctx.Clock.Now()
}

// OnFileAccessed applies Formula 1.
func (p *LRFUDown) OnFileAccessed(f *dfs.File) {
	now := p.ctx.Clock.Now()
	old := p.book.weights[f.ID()]
	last, ok := p.book.touched[f.ID()]
	if !ok {
		last = f.Created()
	}
	p.book.weights[f.ID()] = lrfuWeight(old, now.Sub(last), p.halfLife)
	p.book.touched[f.ID()] = now
}

// OnFileDeleted drops the weight entry.
func (p *LRFUDown) OnFileDeleted(f *dfs.File) { p.book.forget(f.ID()) }

// SelectFile picks the lowest decayed weight.
func (p *LRFUDown) SelectFile(tier storage.Media) *dfs.File {
	now := p.ctx.Clock.Now()
	var best *dfs.File
	bestW := 0.0
	for _, f := range p.ctx.EligibleFiles(tier) {
		last, ok := p.book.touched[f.ID()]
		if !ok {
			last = f.Created()
		}
		w := lrfuDecayed(p.book.weights[f.ID()], now.Sub(last), p.halfLife)
		if best == nil || w < bestW {
			best, bestW = f, w
		}
	}
	return best
}

// LIFE reproduces PACMan's LIFE policy (Table 1): if files older than the
// window exist, evict the least frequently used among them; otherwise evict
// the largest recent file, which minimises average job completion time by
// favouring small inputs.
type LIFE struct {
	core.NopCallbacks
	thresholdStartStop
	defaultTargetTier
	ctx    *core.Context
	window time.Duration
}

// NewLIFE builds the LIFE downgrade policy.
func NewLIFE(ctx *core.Context, window time.Duration) *LIFE {
	if window <= 0 {
		window = DefaultLIFEWindow
	}
	return &LIFE{thresholdStartStop: thresholdStartStop{ctx}, defaultTargetTier: defaultTargetTier{ctx}, ctx: ctx, window: window}
}

// Name implements core.DowngradePolicy.
func (p *LIFE) Name() string { return "LIFE" }

// SelectFile implements the two-partition rule.
func (p *LIFE) SelectFile(tier storage.Media) *dfs.File {
	oldCut := p.ctx.Clock.Now().Add(-p.window)
	var lfuOld *dfs.File
	var largestNew *dfs.File
	for _, f := range p.ctx.EligibleFiles(tier) {
		if p.ctx.LastTouch(f).Before(oldCut) {
			if lfuOld == nil || p.ctx.AccessCount(f) < p.ctx.AccessCount(lfuOld) {
				lfuOld = f
			}
			continue
		}
		if largestNew == nil || f.Size() > largestNew.Size() {
			largestNew = f
		}
	}
	if lfuOld != nil {
		return lfuOld
	}
	return largestNew
}

// LFUF reproduces PACMan's LFU-F policy (Table 1): LFU among old files,
// else LFU among recent files, maximising cluster efficiency.
type LFUF struct {
	core.NopCallbacks
	thresholdStartStop
	defaultTargetTier
	ctx    *core.Context
	window time.Duration
}

// NewLFUF builds the LFU-F downgrade policy.
func NewLFUF(ctx *core.Context, window time.Duration) *LFUF {
	if window <= 0 {
		window = DefaultLIFEWindow
	}
	return &LFUF{thresholdStartStop: thresholdStartStop{ctx}, defaultTargetTier: defaultTargetTier{ctx}, ctx: ctx, window: window}
}

// Name implements core.DowngradePolicy.
func (p *LFUF) Name() string { return "LFU-F" }

// SelectFile implements the two-partition LFU rule.
func (p *LFUF) SelectFile(tier storage.Media) *dfs.File {
	oldCut := p.ctx.Clock.Now().Add(-p.window)
	var lfuOld, lfuNew *dfs.File
	for _, f := range p.ctx.EligibleFiles(tier) {
		if p.ctx.LastTouch(f).Before(oldCut) {
			if lfuOld == nil || p.ctx.AccessCount(f) < p.ctx.AccessCount(lfuOld) {
				lfuOld = f
			}
		} else {
			if lfuNew == nil || p.ctx.AccessCount(f) < p.ctx.AccessCount(lfuNew) {
				lfuNew = f
			}
		}
	}
	if lfuOld != nil {
		return lfuOld
	}
	return lfuNew
}

// EXDDown downgrades the file with the lowest exponentially decayed weight
// (Formula 2, Big SQL).
type EXDDown struct {
	core.NopCallbacks
	thresholdStartStop
	defaultTargetTier
	ctx   *core.Context
	alpha float64
	book  weightBook
}

// NewEXDDown builds the EXD downgrade policy.
func NewEXDDown(ctx *core.Context, alpha float64) *EXDDown {
	if alpha <= 0 {
		alpha = DefaultEXDAlpha
	}
	return &EXDDown{
		thresholdStartStop: thresholdStartStop{ctx},
		defaultTargetTier:  defaultTargetTier{ctx},
		ctx:                ctx,
		alpha:              alpha,
		book:               newWeightBook(),
	}
}

// Name implements core.DowngradePolicy.
func (p *EXDDown) Name() string { return "EXD" }

// OnFileCreated initialises the weight.
func (p *EXDDown) OnFileCreated(f *dfs.File) {
	p.book.weights[f.ID()] = 1
	p.book.touched[f.ID()] = p.ctx.Clock.Now()
}

// OnFileAccessed applies Formula 2.
func (p *EXDDown) OnFileAccessed(f *dfs.File) {
	now := p.ctx.Clock.Now()
	old := p.book.weights[f.ID()]
	last, ok := p.book.touched[f.ID()]
	if !ok {
		last = f.Created()
	}
	p.book.weights[f.ID()] = exdWeight(old, now.Sub(last), p.alpha)
	p.book.touched[f.ID()] = now
}

// OnFileDeleted drops the weight entry.
func (p *EXDDown) OnFileDeleted(f *dfs.File) { p.book.forget(f.ID()) }

// SelectFile picks the lowest decayed weight.
func (p *EXDDown) SelectFile(tier storage.Media) *dfs.File {
	now := p.ctx.Clock.Now()
	var best *dfs.File
	bestW := 0.0
	for _, f := range p.ctx.EligibleFiles(tier) {
		last, ok := p.book.touched[f.ID()]
		if !ok {
			last = f.Created()
		}
		w := exdDecayed(p.book.weights[f.ID()], now.Sub(last), p.alpha)
		if best == nil || w < bestW {
			best, bestW = f, w
		}
	}
	return best
}
