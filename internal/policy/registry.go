package policy

import (
	"fmt"
	"strings"

	"octostore/internal/core"
	"octostore/internal/ml"
)

// DowngradeNames lists the Table 1 policy acronyms accepted by
// NewDowngrade.
var DowngradeNames = []string{"lru", "lfu", "lrfu", "life", "lfuf", "exd", "xgb"}

// UpgradeNames lists the Table 2 policy acronyms accepted by NewUpgrade.
var UpgradeNames = []string{"osa", "lrfu", "exd", "xgb"}

// NewDowngrade constructs a downgrade policy by acronym ("none" or ""
// yields nil, disabling downgrades).
func NewDowngrade(name string, ctx *core.Context, learnerCfg ml.LearnerConfig) (core.DowngradePolicy, error) {
	switch strings.ToLower(name) {
	case "", "none":
		return nil, nil
	case "lru":
		return NewLRU(ctx), nil
	case "lfu":
		return NewLFU(ctx), nil
	case "lrfu":
		return NewLRFUDown(ctx, DefaultLRFUHalfLife), nil
	case "life":
		return NewLIFE(ctx, DefaultLIFEWindow), nil
	case "lfuf", "lfu-f":
		return NewLFUF(ctx, DefaultLIFEWindow), nil
	case "exd":
		return NewEXDDown(ctx, DefaultEXDAlpha), nil
	case "xgb":
		return NewXGBDown(ctx, learnerCfg), nil
	}
	return nil, fmt.Errorf("policy: unknown downgrade policy %q (want one of %v)", name, DowngradeNames)
}

// NewUpgrade constructs an upgrade policy by acronym ("none" or "" yields
// nil, disabling upgrades).
func NewUpgrade(name string, ctx *core.Context, learnerCfg ml.LearnerConfig) (core.UpgradePolicy, error) {
	switch strings.ToLower(name) {
	case "", "none":
		return nil, nil
	case "osa":
		return NewOSA(ctx), nil
	case "lrfu":
		return NewLRFUUp(ctx, DefaultLRFUHalfLife, DefaultLRFUUpgradeThreshold), nil
	case "exd":
		return NewEXDUp(ctx, DefaultEXDAlpha), nil
	case "xgb":
		return NewXGBUp(ctx, learnerCfg), nil
	}
	return nil, fmt.Errorf("policy: unknown upgrade policy %q (want one of %v)", name, UpgradeNames)
}
