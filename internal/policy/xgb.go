package policy

import (
	"math/rand"

	"octostore/internal/core"
	"octostore/internal/dfs"
	"octostore/internal/ml"
	"octostore/internal/storage"
)

// XGBDown is the paper's ML downgrade policy (Section 5.2): an
// incrementally trained gradient-boosted model predicts, for the k least
// recently used files on the tier, the probability of access within the
// large class window (default 6 hours), and the file with the lowest
// probability is downgraded. Until the model is ready the policy behaves
// like LRU.
type XGBDown struct {
	thresholdStartStop
	defaultTargetTier
	ctx      *core.Context
	pipeline *ml.Pipeline
	rng      *rand.Rand
	cands    []*dfs.File // reused candidate buffer
}

// NewXGBDown builds the XGB downgrade policy with its own incremental
// model (class window = Config.DowngradeWindow).
func NewXGBDown(ctx *core.Context, learnerCfg ml.LearnerConfig) *XGBDown {
	ctx.Index().RequireRecency()
	spec := ml.DefaultFeatureSpec()
	spec.K = ctx.Cfg.TrackerK
	return &XGBDown{
		thresholdStartStop: thresholdStartStop{ctx},
		defaultTargetTier:  defaultTargetTier{ctx},
		ctx:                ctx,
		pipeline:           ml.NewPipeline(spec, ctx.Cfg.DowngradeWindow, learnerCfg),
		rng:                rand.New(rand.NewSource(learnerCfg.Seed + 101)),
	}
}

// Name implements core.DowngradePolicy.
func (p *XGBDown) Name() string { return "XGB" }

// Pipeline exposes the model pipeline for experiment instrumentation.
func (p *XGBDown) Pipeline() *ml.Pipeline { return p.pipeline }

// OnFileCreated implements core.FileCallbacks.
func (p *XGBDown) OnFileCreated(*dfs.File) {}

// OnFileAccessed generates a guaranteed-positive training point for the
// accessed file (Section 4.2: "right after a file is accessed, but only
// for that file").
func (p *XGBDown) OnFileAccessed(f *dfs.File) {
	p.pipeline.Sample(p.ctx.Record(f), p.ctx.Clock.Now())
}

// OnFileDeleted implements core.FileCallbacks.
func (p *XGBDown) OnFileDeleted(*dfs.File) {}

// Tick periodically samples a fraction of all files for training
// (Section 4.2: "repeating the above three steps periodically for a sample
// of the files"). The stride sampler costs O(fraction*N) per tick instead
// of walking (and drawing an RNG value for) every live file.
func (p *XGBDown) Tick() {
	now := p.ctx.Clock.Now()
	p.ctx.SampleLiveFiles(p.rng, p.ctx.Cfg.SampleFraction, func(f *dfs.File) {
		p.pipeline.Sample(p.ctx.Record(f), now)
	})
}

// SelectFile scores the k least recently used files — collected from the
// recency index as a bounded top-k, not a full sort — and picks the one
// least likely to be accessed in the distant future.
func (p *XGBDown) SelectFile(tier storage.Media) *dfs.File {
	p.cands = p.ctx.LRUFilesInto(p.cands[:0], tier, p.ctx.Cfg.CandidateK)
	candidates := p.cands
	if len(candidates) == 0 {
		return nil
	}
	now := p.ctx.Clock.Now()
	var best *dfs.File
	bestProb := 2.0
	for _, f := range candidates {
		prob, ok := p.pipeline.Score(p.ctx.Record(f), now)
		if !ok {
			// Model not trained/gated yet: fall back to pure LRU order.
			return candidates[0]
		}
		if prob < bestProb {
			best, bestProb = f, prob
		}
	}
	return best
}

// XGBUp is the paper's ML upgrade policy (Section 6.1): on access, upgrade
// the file when its predicted probability of access within the small class
// window (default 30 minutes) exceeds the discrimination threshold; on
// periodic ticks, proactively score the k most recently used non-memory
// files and upgrade all that qualify, bounded by the upgrade batch limit
// (Section 6.4).
type XGBUp struct {
	ctx      *core.Context
	pipeline *ml.Pipeline
	rng      *rand.Rand

	queue          []*dfs.File
	cands          []*dfs.File // reused proactive candidate buffer
	scheduledBytes int64
}

// NewXGBUp builds the XGB upgrade policy with its own incremental model
// (class window = Config.UpgradeWindow).
func NewXGBUp(ctx *core.Context, learnerCfg ml.LearnerConfig) *XGBUp {
	ctx.Index().RequireUpgradeMRU()
	spec := ml.DefaultFeatureSpec()
	spec.K = ctx.Cfg.TrackerK
	return &XGBUp{
		ctx:      ctx,
		pipeline: ml.NewPipeline(spec, ctx.Cfg.UpgradeWindow, learnerCfg),
		rng:      rand.New(rand.NewSource(learnerCfg.Seed + 211)),
	}
}

// Name implements core.UpgradePolicy.
func (p *XGBUp) Name() string { return "XGB" }

// Pipeline exposes the model pipeline for experiment instrumentation.
func (p *XGBUp) Pipeline() *ml.Pipeline { return p.pipeline }

// OnFileCreated implements core.FileCallbacks.
func (p *XGBUp) OnFileCreated(*dfs.File) {}

// OnFileAccessed feeds the upgrade model a positive sample.
func (p *XGBUp) OnFileAccessed(f *dfs.File) {
	p.pipeline.Sample(p.ctx.Record(f), p.ctx.Clock.Now())
}

// OnFileDeleted implements core.FileCallbacks.
func (p *XGBUp) OnFileDeleted(*dfs.File) {}

// Tick periodically samples files for training via the O(fraction*N)
// stride sampler over the live index.
func (p *XGBUp) Tick() {
	now := p.ctx.Clock.Now()
	p.ctx.SampleLiveFiles(p.rng, p.ctx.Cfg.SampleFraction, func(f *dfs.File) {
		p.pipeline.Sample(p.ctx.Record(f), now)
	})
}

// StartUpgrade implements core.UpgradePolicy. With an accessed file it
// admits on the model's probability; on periodic invocations it builds a
// proactive batch of likely-soon-accessed files.
func (p *XGBUp) StartUpgrade(accessed *dfs.File) bool {
	p.queue = p.queue[:0]
	p.scheduledBytes = 0
	now := p.ctx.Clock.Now()
	if accessed != nil {
		if accessed.HasReplicaOn(storage.Memory) {
			return false
		}
		prob, ok := p.pipeline.Score(p.ctx.Record(accessed), now)
		if !ok || prob <= p.ctx.Cfg.UpgradeThreshold {
			return false
		}
		p.queue = append(p.queue, accessed)
		return true
	}
	// Proactive path: score the most recently used non-memory files,
	// collected from the upgrade MRU index as a bounded top-k.
	p.cands = p.ctx.UpgradeCandidatesInto(p.cands[:0], p.ctx.Cfg.CandidateK)
	for _, f := range p.cands {
		prob, ok := p.pipeline.Score(p.ctx.Record(f), now)
		if !ok {
			return false // model not ready; nothing proactive to do
		}
		if prob > p.ctx.Cfg.UpgradeThreshold {
			p.queue = append(p.queue, f)
		}
	}
	return len(p.queue) > 0
}

// SelectFile pops the next queued candidate and accounts its bytes against
// the batch limit.
func (p *XGBUp) SelectFile() *dfs.File {
	if len(p.queue) == 0 {
		return nil
	}
	f := p.queue[0]
	p.queue = p.queue[1:]
	p.scheduledBytes += oneReplicaBytes(f)
	return f
}

// SelectTargetTier implements core.UpgradePolicy.
func (p *XGBUp) SelectTargetTier(f *dfs.File, from storage.Media) (storage.Media, bool) {
	return p.ctx.DefaultUpgradeTier(f, from)
}

// StopUpgrade stops when the queue is drained or the scheduled volume
// exceeds the batch limit (Section 6.4).
func (p *XGBUp) StopUpgrade() bool {
	return len(p.queue) == 0 || p.scheduledBytes >= p.ctx.Cfg.UpgradeBatchLimit
}
