package storage

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"octostore/internal/sim"
)

// This file defines the data-plane API: the single point through which every
// consumer of storage bandwidth — block writes on create, serve-path reads,
// tier movement, replication repair, cache fills — accounts its I/O against
// the *physical* device it touches.
//
// The need for a first-class surface comes from the sharded serving layer:
// each shard owns a private cluster view whose storage.Device objects model
// a quota slice of the same physical hardware, so per-view bandwidth pools
// cannot see cross-shard contention (two shards hammering one disk each
// observed a private, uncontended device). A DataPlane is shared by every
// view: requests are keyed by the device's stable ID (identical across
// views by construction), so the plane arbitrates the physical channel the
// same way the cluster.TierLedger arbitrates physical capacity.
//
// Timing is virtual-clock based and allocation-free: a device channel is a
// pair of atomic busy-until horizons (read, write) expressed in nanoseconds
// since sim.Epoch. A request issued at virtual time t with service time s
// (per-tier base latency + bytes at nominal bandwidth) is granted
// queue = max(0, busyUntil - t), and the horizon advances to
// t + queue + s — FIFO single-server queueing against the virtual clock,
// safe to call from any goroutine (shard loops with independent engines,
// client goroutines on the serve path). The queue a request may accumulate
// is clamped at MaxQueue, a token-bucket-style bound on the backlog window
// so an open-loop overload saturates loudly instead of diverging.

// TenantID labels the tenant on whose behalf an I/O or capacity claim is
// made. Tenants are a property of the workload, not the topology: every
// shard view tags requests with the same tenant ids, and the shared plane /
// ledger enforce isolation across them.
type TenantID int

// DefaultTenant is the identity of untagged traffic (single-tenant systems,
// background management I/O). A plane configured without tenants treats all
// traffic as DefaultTenant and schedules pure FIFO.
const DefaultTenant TenantID = 0

// TenantWeight assigns a weighted-fair share to one tenant. Weights are
// relative: a tenant with weight 3 sharing a device with a weight-1 tenant
// gets 3/4 of the channel while both are backlogged.
type TenantWeight struct {
	ID     TenantID
	Weight float64 // defaults to 1 when zero
}

// IOClass distinguishes the two consumers of device bandwidth the policies
// care about separately: foreground serving and background movement.
type IOClass int

const (
	// ClassServe is client-facing traffic: initial writes and serve reads.
	ClassServe IOClass = iota
	// ClassMove is management traffic: tier movement, repair, cache fills.
	ClassMove
)

// String implements fmt.Stringer.
func (c IOClass) String() string {
	if c == ClassServe {
		return "serve"
	}
	return "move"
}

// IORequest describes one I/O issued against a physical device.
type IORequest struct {
	// DeviceID is the stable physical identity (Device.ID()); every shard's
	// view of one physical device carries the same ID.
	DeviceID string
	// Media is the device's tier, selecting the service-time profile.
	Media Media
	// Dir selects the read or write channel of the device.
	Dir Direction
	// Class labels the traffic for accounting.
	Class IOClass
	// Tenant identifies whose workload the request belongs to. Zero
	// (DefaultTenant) is untagged traffic; a single-tenant plane ignores it.
	Tenant TenantID
	// Bytes is the transfer size.
	Bytes int64
	// At is the virtual issue time (the issuing engine's clock, or the
	// serving layer's pacer clock on client goroutines).
	At time.Time
}

// IOGrant is the plane's answer: when the device channel frees up for the
// request and how long the device then works on it.
type IOGrant struct {
	// Queue is the wait until the device channel is free (zero when idle).
	Queue time.Duration
	// Base is the per-tier fixed access latency (seek/setup).
	Base time.Duration
	// Transfer is Bytes at the tier's nominal bandwidth.
	Transfer time.Duration
	// Saturated reports that Queue was clamped at the plane's MaxQueue —
	// the device backlog window is full and the latency is a floor, not an
	// estimate.
	Saturated bool
}

// Latency is the request's total virtual service time: queueing plus base
// plus transfer.
func (g IOGrant) Latency() time.Duration { return g.Queue + g.Base + g.Transfer }

// DataPlane arbitrates physical device bandwidth. Serve must be safe for
// concurrent use from any goroutine and must not block or schedule events:
// it answers in virtual time, and callers decide what to do with the grant
// (delay a transfer start, stamp a latency histogram, accumulate stats).
type DataPlane interface {
	Serve(req IORequest) IOGrant
}

// NopPlane is the no-op data plane: zero latency, infinite bandwidth, no
// state. A system running on it behaves bit-for-bit like one with no plane
// attached at all — the differential replay suite relies on this to keep
// the sequential simulator as its oracle.
type NopPlane struct{}

// Serve implements DataPlane.
func (NopPlane) Serve(IORequest) IOGrant { return IOGrant{} }

// TierProfile is the service-time model of one storage tier.
type TierProfile struct {
	// BaseLatency is the fixed per-request access cost.
	BaseLatency time.Duration
	// ReadBW and WriteBW are the nominal channel bandwidths in bytes/second.
	ReadBW  float64
	WriteBW float64
}

// DefaultTierProfiles mirrors the bandwidths of the paper-testbed worker
// spec with base latencies in the hardware's characteristic range, so that
// for any realistic transfer size the tiers order memory < SSD < HDD.
func DefaultTierProfiles() [3]TierProfile {
	return [3]TierProfile{
		Memory: {BaseLatency: 50 * time.Microsecond, ReadBW: 4000e6, WriteBW: 3000e6},
		SSD:    {BaseLatency: 200 * time.Microsecond, ReadBW: 500e6, WriteBW: 400e6},
		HDD:    {BaseLatency: 6 * time.Millisecond, ReadBW: 160e6, WriteBW: 140e6},
	}
}

// PlaneConfig tunes a ContendedPlane.
type PlaneConfig struct {
	// Profiles is the per-tier service-time model (default
	// DefaultTierProfiles).
	Profiles [3]TierProfile
	// MaxQueue clamps the backlog a single request can wait behind
	// (default 2s of virtual time). Requests arriving at a fuller channel
	// are granted MaxQueue and counted as saturated rather than pushing
	// the horizon further out, so sustained overload yields a bounded,
	// stable latency floor instead of an ever-growing queue.
	MaxQueue time.Duration
	// Tenants enables weighted-fair scheduling across the listed tenants.
	// Empty or a single entry keeps the plane in single-tenant mode, whose
	// arbitration is bit-for-bit the original FIFO (the differential replay
	// suite relies on this). Two or more entries switch every channel to
	// per-tenant virtual-time scheduling with the given weights; requests
	// from unlisted tenants run at weight 1 and are accounted as untagged.
	Tenants []TenantWeight
}

func (c *PlaneConfig) applyDefaults() {
	zero := TierProfile{}
	for i := range c.Profiles {
		if c.Profiles[i] == zero {
			c.Profiles[i] = DefaultTierProfiles()[i]
		}
		if c.Profiles[i].ReadBW <= 0 || c.Profiles[i].WriteBW <= 0 {
			panic(fmt.Sprintf("storage: plane profile %v needs positive bandwidths", Media(i)))
		}
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 2 * time.Second
	}
	seen := make(map[TenantID]bool, len(c.Tenants))
	for i := range c.Tenants {
		t := &c.Tenants[i]
		if t.Weight == 0 {
			t.Weight = 1
		}
		if t.Weight < 0 || math.IsNaN(t.Weight) || math.IsInf(t.Weight, 0) {
			panic(fmt.Sprintf("storage: tenant %d weight %v is not a positive finite number", t.ID, t.Weight))
		}
		if seen[t.ID] {
			panic(fmt.Sprintf("storage: tenant %d configured twice", t.ID))
		}
		seen[t.ID] = true
	}
}

// planeChannel is one physical device's pair of FIFO bandwidth channels:
// busy-until horizons in virtual nanoseconds since sim.Epoch. On a
// multi-tenant plane the channel additionally carries per-tenant fair state.
type planeChannel struct {
	read  atomic.Int64
	write atomic.Int64
	fair  *fairState // nil on a single-tenant plane

	// Per-device activity counters for observability (DeviceStats): pure
	// atomic adds on the Serve path, never read by scheduling decisions.
	grants    atomic.Int64
	queuedNS  atomic.Int64
	saturated atomic.Int64
}

func (ch *planeChannel) horizon(dir Direction) *atomic.Int64 {
	if dir == Read {
		return &ch.read
	}
	return &ch.write
}

// fairState is one channel's weighted-fair scheduling state: a per-tenant
// finish horizon per direction, in virtual nanoseconds since sim.Epoch. A
// tenant is backlogged on a direction while its horizon is in the future.
// All multi-tenant arbitration for the channel runs under mu (registration
// is rare and Serve calls on one device are short), which also makes the
// device horizon updates on this path plain stores.
type fairState struct {
	mu       sync.Mutex
	horizons [2]map[TenantID]int64 // indexed by dirIndex
}

func dirIndex(dir Direction) int {
	if dir == Read {
		return 0
	}
	return 1
}

// tierPlaneCounters is the per-tier atomic stats block.
type tierPlaneCounters struct {
	requests  atomic.Int64
	bytes     atomic.Int64
	queuedNS  atomic.Int64
	contended atomic.Int64 // requests with nonzero queue
	saturated atomic.Int64 // requests clamped at MaxQueue
	moveReqs  atomic.Int64 // ClassMove subset of requests
}

// TierPlaneStats is a point-in-time snapshot of one tier's plane activity.
type TierPlaneStats struct {
	Requests     int64
	MoveRequests int64
	Bytes        int64
	Contended    int64
	Saturated    int64
	// AvgQueue is the mean queueing delay across all requests.
	AvgQueue time.Duration
}

// tenantPlaneCounters is the per-tenant atomic stats block.
type tenantPlaneCounters struct {
	requests  atomic.Int64
	bytes     atomic.Int64
	queuedNS  atomic.Int64
	saturated atomic.Int64
}

func (c *tenantPlaneCounters) add(bytes int64, queue time.Duration, saturated bool) {
	c.requests.Add(1)
	c.bytes.Add(bytes)
	if queue > 0 {
		c.queuedNS.Add(queue.Nanoseconds())
	}
	if saturated {
		c.saturated.Add(1)
	}
}

// TenantPlaneStats is a point-in-time snapshot of one tenant's plane
// activity across all tiers.
type TenantPlaneStats struct {
	Tenant    TenantID
	Requests  int64
	Bytes     int64
	Saturated int64
	// AvgQueue is the mean queueing delay across the tenant's requests.
	AvgQueue time.Duration
}

// PlaneStats snapshots a ContendedPlane.
type PlaneStats struct {
	PerTier [3]TierPlaneStats
	// Devices counts the live channels. Registrations are refcounted (one
	// per cluster view of the device), so a channel is dropped once the
	// last view unregisters it on node loss; lazily created channels carry
	// no registration and fall to the first Unregister of their id.
	Devices int
}

// ContendedPlane is the shared-bandwidth DataPlane: one channel pair per
// physical device, created on first use (or pre-registered by the cluster),
// with per-tier service profiles. All hot-path state is atomic: the channel
// map is an immutable snapshot behind an atomic pointer (copy-on-write
// under a mutex on the rare registration path), so Serve takes no lock.
type ContendedPlane struct {
	cfg PlaneConfig

	mu    sync.Mutex // guards copy-on-write of chans and refs
	chans atomic.Pointer[map[string]*planeChannel]
	refs  map[string]int // registrations per device id (one per cluster view)

	// weights is non-nil iff the plane is multi-tenant (≥2 configured
	// tenants); immutable after construction.
	weights map[TenantID]float64
	// tenants holds the configured tenants' counters (immutable map) and
	// untagged collects traffic from any other tenant id.
	tenants  map[TenantID]*tenantPlaneCounters
	untagged tenantPlaneCounters

	tiers [3]tierPlaneCounters
}

// NewContendedPlane builds a plane with the given configuration.
func NewContendedPlane(cfg PlaneConfig) *ContendedPlane {
	cfg.applyDefaults()
	p := &ContendedPlane{cfg: cfg, refs: make(map[string]int)}
	if len(cfg.Tenants) >= 2 {
		p.weights = make(map[TenantID]float64, len(cfg.Tenants))
		p.tenants = make(map[TenantID]*tenantPlaneCounters, len(cfg.Tenants))
		for _, t := range cfg.Tenants {
			p.weights[t.ID] = t.Weight
			p.tenants[t.ID] = &tenantPlaneCounters{}
		}
	}
	empty := make(map[string]*planeChannel)
	p.chans.Store(&empty)
	return p
}

// Config returns the resolved configuration.
func (p *ContendedPlane) Config() PlaneConfig { return p.cfg }

// MultiTenant reports whether the plane schedules weighted-fair across
// configured tenants (≥2 tenants in the config).
func (p *ContendedPlane) MultiTenant() bool { return p.weights != nil }

// Register pre-creates a device's channel so the serving hot path never
// pays channel creation; clusters register their devices at attach time.
// Registrations are refcounted: each cluster view of a physical device
// registers the same id once, and the channel — with its accrued backlog —
// is shared by every view.
func (p *ContendedPlane) Register(deviceID string, _ Media) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.refs[deviceID]++
	p.insertLocked(deviceID)
}

// Unregister drops one view's registration of a device; the channel is
// removed once no registrations remain, so churned-out devices do not
// accumulate (clusters unregister on node removal). Unregistering an id
// that was only ever lazily charged removes its channel immediately.
func (p *ContendedPlane) Unregister(deviceID string, _ Media) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := p.refs[deviceID]; n > 1 {
		p.refs[deviceID] = n - 1
		return
	}
	delete(p.refs, deviceID)
	old := *p.chans.Load()
	if _, ok := old[deviceID]; !ok {
		return
	}
	next := make(map[string]*planeChannel, len(old)-1)
	for k, v := range old {
		if k != deviceID {
			next[k] = v
		}
	}
	p.chans.Store(&next)
}

// insert returns the device's channel, creating it via copy-on-write if it
// does not exist yet.
func (p *ContendedPlane) insert(id string) *planeChannel {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.insertLocked(id)
}

func (p *ContendedPlane) insertLocked(id string) *planeChannel {
	old := *p.chans.Load()
	if ch, ok := old[id]; ok {
		return ch
	}
	next := make(map[string]*planeChannel, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	ch := &planeChannel{}
	if p.weights != nil {
		ch.fair = &fairState{horizons: [2]map[TenantID]int64{{}, {}}}
	}
	next[id] = ch
	p.chans.Store(&next)
	return ch
}

func (p *ContendedPlane) channel(id string) *planeChannel {
	if ch := (*p.chans.Load())[id]; ch != nil {
		return ch
	}
	return p.insert(id)
}

// Serve implements DataPlane: virtual-clock queueing on the device's
// directional channel with the queue clamped at MaxQueue. Single-tenant
// planes arbitrate FIFO and are lock-free after the channel lookup;
// multi-tenant planes take the channel's fair-state mutex and schedule
// weighted-fair across backlogged tenants. Safe from any goroutine.
func (p *ContendedPlane) Serve(req IORequest) IOGrant {
	if !req.Media.Valid() {
		return IOGrant{}
	}
	prof := p.cfg.Profiles[req.Media]
	bw := prof.ReadBW
	if req.Dir == Write {
		bw = prof.WriteBW
	}
	transfer := time.Duration(math.Ceil(float64(req.Bytes) / bw * float64(time.Second)))
	service := prof.BaseLatency + transfer
	now := sim.Nanos(req.At)
	ch := p.channel(req.DeviceID)
	h := ch.horizon(req.Dir)

	var queue time.Duration
	var saturated bool
	if p.weights != nil {
		queue, saturated = p.serveFair(ch, req, service.Nanoseconds(), now)
		tc := p.tenants[req.Tenant]
		if tc == nil {
			tc = &p.untagged
		}
		tc.add(req.Bytes, queue, saturated)
	} else {
		for {
			busy := h.Load()
			queueNS := busy - now
			if queueNS < 0 {
				queueNS = 0
			}
			if maxNS := p.cfg.MaxQueue.Nanoseconds(); queueNS > maxNS {
				queueNS, saturated = maxNS, true
			}
			end := now + queueNS + service.Nanoseconds()
			queue = time.Duration(queueNS)
			if end <= busy {
				// The channel is already booked beyond this request's clamped
				// completion (saturation): never retreat the horizon.
				break
			}
			if h.CompareAndSwap(busy, end) {
				break
			}
		}
	}

	t := &p.tiers[req.Media]
	t.requests.Add(1)
	t.bytes.Add(req.Bytes)
	if queue > 0 {
		t.queuedNS.Add(queue.Nanoseconds())
		t.contended.Add(1)
	}
	if saturated {
		t.saturated.Add(1)
	}
	if req.Class == ClassMove {
		t.moveReqs.Add(1)
	}
	ch.grants.Add(1)
	if queue > 0 {
		ch.queuedNS.Add(queue.Nanoseconds())
	}
	if saturated {
		ch.saturated.Add(1)
	}
	return IOGrant{Queue: queue, Base: prof.BaseLatency, Transfer: transfer, Saturated: saturated}
}

// weight returns the tenant's configured fair share; unlisted tenants run
// at weight 1.
func (p *ContendedPlane) weight(t TenantID) float64 {
	if w, ok := p.weights[t]; ok {
		return w
	}
	return 1
}

// serveFair is the multi-tenant arbitration of one request: weighted-fair
// virtual-time scheduling on the channel's per-tenant horizons.
//
// When no *other* tenant is backlogged on the direction, the request queues
// FIFO against the device horizon with exactly the single-tenant math — the
// scheduler is work-conserving, and a lone active tenant gets the whole
// channel. When others are backlogged, the request instead queues behind
// the tenant's own horizon and its service is stretched by the inverse of
// the tenant's share, Σw(backlogged)/w(tenant): a weight-3 tenant sharing
// with a backlogged weight-1 tenant sees service stretched 4/3×, the
// weight-1 tenant 4×. Either way the queue is clamped at MaxQueue
// (saturated grants advance no horizon), and the device horizon books the
// raw service so total granted work per device stays bounded by the wall
// the single-tenant plane enforces.
func (p *ContendedPlane) serveFair(ch *planeChannel, req IORequest, serviceNS, now int64) (time.Duration, bool) {
	f := ch.fair
	di := dirIndex(req.Dir)
	h := ch.horizon(req.Dir)
	w := p.weight(req.Tenant)
	maxNS := p.cfg.MaxQueue.Nanoseconds()

	f.mu.Lock()
	defer f.mu.Unlock()
	horizons := f.horizons[di]
	wsum := w
	contended := false
	for t, hz := range horizons {
		if t != req.Tenant && hz > now {
			wsum += p.weight(t)
			contended = true
		}
	}

	var queueNS int64
	var saturated bool
	if !contended {
		busy := h.Load()
		queueNS = busy - now
		if queueNS < 0 {
			queueNS = 0
		}
		if queueNS > maxNS {
			queueNS, saturated = maxNS, true
		}
		end := now + queueNS + serviceNS
		if end > busy {
			h.Store(end)
		}
		if end > horizons[req.Tenant] && !saturated {
			horizons[req.Tenant] = end
		}
		return time.Duration(queueNS), saturated
	}

	start := horizons[req.Tenant]
	if start < now {
		start = now
	}
	stretched := int64(float64(serviceNS) * wsum / w)
	queueNS = (start - now) + (stretched - serviceNS)
	if queueNS > maxNS {
		queueNS, saturated = maxNS, true
	}
	if !saturated {
		end := now + queueNS + serviceNS
		if end > horizons[req.Tenant] {
			horizons[req.Tenant] = end
		}
	}
	// The device horizon books the raw service (the physical work exists
	// regardless of whose turn it is), bounded by the same backlog window
	// so saturation cannot diverge it.
	if busy := h.Load(); busy-now <= maxNS {
		base := busy
		if base < now {
			base = now
		}
		h.Store(base + serviceNS)
	}
	return time.Duration(queueNS), saturated
}

// TenantStats snapshots the per-tenant counters of a multi-tenant plane in
// tenant-id order (nil on a single-tenant plane).
func (p *ContendedPlane) TenantStats() []TenantPlaneStats {
	if p.weights == nil {
		return nil
	}
	ids := make([]TenantID, 0, len(p.tenants))
	for id := range p.tenants {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]TenantPlaneStats, 0, len(ids))
	for _, id := range ids {
		c := p.tenants[id]
		s := TenantPlaneStats{
			Tenant:    id,
			Requests:  c.requests.Load(),
			Bytes:     c.bytes.Load(),
			Saturated: c.saturated.Load(),
		}
		if s.Requests > 0 {
			s.AvgQueue = time.Duration(c.queuedNS.Load() / s.Requests)
		}
		out = append(out, s)
	}
	return out
}

// UntaggedStats snapshots the counter block that collects multi-tenant
// traffic from tenant ids outside the configured set.
func (p *ContendedPlane) UntaggedStats() TenantPlaneStats {
	s := TenantPlaneStats{
		Requests:  p.untagged.requests.Load(),
		Bytes:     p.untagged.bytes.Load(),
		Saturated: p.untagged.saturated.Load(),
	}
	if s.Requests > 0 {
		s.AvgQueue = time.Duration(p.untagged.queuedNS.Load() / s.Requests)
	}
	return s
}

// CheckAccounting verifies the multi-tenant accounting equation: every
// request and byte counted against a tier is counted against exactly one
// tenant (or the untagged block). It must be called from a point that
// serializes with Serve (a single-threaded replay's event hook, or any
// quiescent instant); a no-op on single-tenant planes.
func (p *ContendedPlane) CheckAccounting() error {
	if p.weights == nil {
		return nil
	}
	var tierReqs, tierBytes, tierSat int64
	for i := range p.tiers {
		t := &p.tiers[i]
		tierReqs += t.requests.Load()
		tierBytes += t.bytes.Load()
		tierSat += t.saturated.Load()
	}
	tenReqs := p.untagged.requests.Load()
	tenBytes := p.untagged.bytes.Load()
	tenSat := p.untagged.saturated.Load()
	for _, c := range p.tenants {
		tenReqs += c.requests.Load()
		tenBytes += c.bytes.Load()
		tenSat += c.saturated.Load()
	}
	if tierReqs != tenReqs || tierBytes != tenBytes || tierSat != tenSat {
		return fmt.Errorf("storage: plane tenant accounting diverged: tiers (reqs %d, bytes %d, saturated %d) vs tenants (reqs %d, bytes %d, saturated %d)",
			tierReqs, tierBytes, tierSat, tenReqs, tenBytes, tenSat)
	}
	return nil
}

// Stats snapshots the plane counters. Safe from any goroutine.
func (p *ContendedPlane) Stats() PlaneStats {
	var out PlaneStats
	out.Devices = len(*p.chans.Load())
	for i := range p.tiers {
		t := &p.tiers[i]
		s := TierPlaneStats{
			Requests:     t.requests.Load(),
			MoveRequests: t.moveReqs.Load(),
			Bytes:        t.bytes.Load(),
			Contended:    t.contended.Load(),
			Saturated:    t.saturated.Load(),
		}
		if s.Requests > 0 {
			s.AvgQueue = time.Duration(t.queuedNS.Load() / s.Requests)
		}
		out.PerTier[i] = s
	}
	return out
}

// Horizon reports the device channel's current busy-until virtual time;
// tests and diagnostics use it, the serving path never does.
func (p *ContendedPlane) Horizon(deviceID string, dir Direction) time.Time {
	return sim.AtNanos(p.channel(deviceID).horizon(dir).Load())
}

// PlaneDeviceStats is a point-in-time snapshot of one device channel.
type PlaneDeviceStats struct {
	ID        string
	Grants    int64 // requests granted on the channel
	Saturated int64 // grants clamped at MaxQueue
	// AvgQueue is the mean queueing delay across the channel's grants.
	AvgQueue time.Duration
	// ReadHorizonNS / WriteHorizonNS are the busy-until horizons in virtual
	// nanoseconds since sim.Epoch; subtract the current virtual instant for
	// the backlog.
	ReadHorizonNS  int64
	WriteHorizonNS int64
}

// DeviceStats snapshots every live device channel, sorted by id. Safe from
// any goroutine; observability scrapes use it for per-device saturation.
func (p *ContendedPlane) DeviceStats() []PlaneDeviceStats {
	chans := *p.chans.Load()
	out := make([]PlaneDeviceStats, 0, len(chans))
	for id, ch := range chans {
		s := PlaneDeviceStats{
			ID:             id,
			Grants:         ch.grants.Load(),
			Saturated:      ch.saturated.Load(),
			ReadHorizonNS:  ch.read.Load(),
			WriteHorizonNS: ch.write.Load(),
		}
		if s.Grants > 0 {
			s.AvgQueue = time.Duration(ch.queuedNS.Load() / s.Grants)
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
