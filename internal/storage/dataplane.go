package storage

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"octostore/internal/sim"
)

// This file defines the data-plane API: the single point through which every
// consumer of storage bandwidth — block writes on create, serve-path reads,
// tier movement, replication repair, cache fills — accounts its I/O against
// the *physical* device it touches.
//
// The need for a first-class surface comes from the sharded serving layer:
// each shard owns a private cluster view whose storage.Device objects model
// a quota slice of the same physical hardware, so per-view bandwidth pools
// cannot see cross-shard contention (two shards hammering one disk each
// observed a private, uncontended device). A DataPlane is shared by every
// view: requests are keyed by the device's stable ID (identical across
// views by construction), so the plane arbitrates the physical channel the
// same way the cluster.TierLedger arbitrates physical capacity.
//
// Timing is virtual-clock based and allocation-free: a device channel is a
// pair of atomic busy-until horizons (read, write) expressed in nanoseconds
// since sim.Epoch. A request issued at virtual time t with service time s
// (per-tier base latency + bytes at nominal bandwidth) is granted
// queue = max(0, busyUntil - t), and the horizon advances to
// t + queue + s — FIFO single-server queueing against the virtual clock,
// safe to call from any goroutine (shard loops with independent engines,
// client goroutines on the serve path). The queue a request may accumulate
// is clamped at MaxQueue, a token-bucket-style bound on the backlog window
// so an open-loop overload saturates loudly instead of diverging.

// IOClass distinguishes the two consumers of device bandwidth the policies
// care about separately: foreground serving and background movement.
type IOClass int

const (
	// ClassServe is client-facing traffic: initial writes and serve reads.
	ClassServe IOClass = iota
	// ClassMove is management traffic: tier movement, repair, cache fills.
	ClassMove
)

// String implements fmt.Stringer.
func (c IOClass) String() string {
	if c == ClassServe {
		return "serve"
	}
	return "move"
}

// IORequest describes one I/O issued against a physical device.
type IORequest struct {
	// DeviceID is the stable physical identity (Device.ID()); every shard's
	// view of one physical device carries the same ID.
	DeviceID string
	// Media is the device's tier, selecting the service-time profile.
	Media Media
	// Dir selects the read or write channel of the device.
	Dir Direction
	// Class labels the traffic for accounting.
	Class IOClass
	// Bytes is the transfer size.
	Bytes int64
	// At is the virtual issue time (the issuing engine's clock, or the
	// serving layer's pacer clock on client goroutines).
	At time.Time
}

// IOGrant is the plane's answer: when the device channel frees up for the
// request and how long the device then works on it.
type IOGrant struct {
	// Queue is the wait until the device channel is free (zero when idle).
	Queue time.Duration
	// Base is the per-tier fixed access latency (seek/setup).
	Base time.Duration
	// Transfer is Bytes at the tier's nominal bandwidth.
	Transfer time.Duration
	// Saturated reports that Queue was clamped at the plane's MaxQueue —
	// the device backlog window is full and the latency is a floor, not an
	// estimate.
	Saturated bool
}

// Latency is the request's total virtual service time: queueing plus base
// plus transfer.
func (g IOGrant) Latency() time.Duration { return g.Queue + g.Base + g.Transfer }

// DataPlane arbitrates physical device bandwidth. Serve must be safe for
// concurrent use from any goroutine and must not block or schedule events:
// it answers in virtual time, and callers decide what to do with the grant
// (delay a transfer start, stamp a latency histogram, accumulate stats).
type DataPlane interface {
	Serve(req IORequest) IOGrant
}

// NopPlane is the no-op data plane: zero latency, infinite bandwidth, no
// state. A system running on it behaves bit-for-bit like one with no plane
// attached at all — the differential replay suite relies on this to keep
// the sequential simulator as its oracle.
type NopPlane struct{}

// Serve implements DataPlane.
func (NopPlane) Serve(IORequest) IOGrant { return IOGrant{} }

// TierProfile is the service-time model of one storage tier.
type TierProfile struct {
	// BaseLatency is the fixed per-request access cost.
	BaseLatency time.Duration
	// ReadBW and WriteBW are the nominal channel bandwidths in bytes/second.
	ReadBW  float64
	WriteBW float64
}

// DefaultTierProfiles mirrors the bandwidths of the paper-testbed worker
// spec with base latencies in the hardware's characteristic range, so that
// for any realistic transfer size the tiers order memory < SSD < HDD.
func DefaultTierProfiles() [3]TierProfile {
	return [3]TierProfile{
		Memory: {BaseLatency: 50 * time.Microsecond, ReadBW: 4000e6, WriteBW: 3000e6},
		SSD:    {BaseLatency: 200 * time.Microsecond, ReadBW: 500e6, WriteBW: 400e6},
		HDD:    {BaseLatency: 6 * time.Millisecond, ReadBW: 160e6, WriteBW: 140e6},
	}
}

// PlaneConfig tunes a ContendedPlane.
type PlaneConfig struct {
	// Profiles is the per-tier service-time model (default
	// DefaultTierProfiles).
	Profiles [3]TierProfile
	// MaxQueue clamps the backlog a single request can wait behind
	// (default 2s of virtual time). Requests arriving at a fuller channel
	// are granted MaxQueue and counted as saturated rather than pushing
	// the horizon further out, so sustained overload yields a bounded,
	// stable latency floor instead of an ever-growing queue.
	MaxQueue time.Duration
}

func (c *PlaneConfig) applyDefaults() {
	zero := TierProfile{}
	for i := range c.Profiles {
		if c.Profiles[i] == zero {
			c.Profiles[i] = DefaultTierProfiles()[i]
		}
		if c.Profiles[i].ReadBW <= 0 || c.Profiles[i].WriteBW <= 0 {
			panic(fmt.Sprintf("storage: plane profile %v needs positive bandwidths", Media(i)))
		}
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 2 * time.Second
	}
}

// planeChannel is one physical device's pair of FIFO bandwidth channels:
// busy-until horizons in virtual nanoseconds since sim.Epoch.
type planeChannel struct {
	read  atomic.Int64
	write atomic.Int64
}

func (ch *planeChannel) horizon(dir Direction) *atomic.Int64 {
	if dir == Read {
		return &ch.read
	}
	return &ch.write
}

// tierPlaneCounters is the per-tier atomic stats block.
type tierPlaneCounters struct {
	requests  atomic.Int64
	bytes     atomic.Int64
	queuedNS  atomic.Int64
	contended atomic.Int64 // requests with nonzero queue
	saturated atomic.Int64 // requests clamped at MaxQueue
	moveReqs  atomic.Int64 // ClassMove subset of requests
}

// TierPlaneStats is a point-in-time snapshot of one tier's plane activity.
type TierPlaneStats struct {
	Requests     int64
	MoveRequests int64
	Bytes        int64
	Contended    int64
	Saturated    int64
	// AvgQueue is the mean queueing delay across all requests.
	AvgQueue time.Duration
}

// PlaneStats snapshots a ContendedPlane.
type PlaneStats struct {
	PerTier [3]TierPlaneStats
	// Devices counts the channels ever created — devices registered or
	// lazily charged over the plane's lifetime. Channels are never removed
	// (node ids are never reused, and a channel may still be referenced by
	// other views of the device mid-churn-fan-out), so after node failures
	// this exceeds the live device count.
	Devices int
}

// ContendedPlane is the shared-bandwidth DataPlane: one channel pair per
// physical device, created on first use (or pre-registered by the cluster),
// with per-tier service profiles. All hot-path state is atomic: the channel
// map is an immutable snapshot behind an atomic pointer (copy-on-write
// under a mutex on the rare registration path), so Serve takes no lock.
type ContendedPlane struct {
	cfg PlaneConfig

	mu    sync.Mutex // guards copy-on-write of chans
	chans atomic.Pointer[map[string]*planeChannel]

	tiers [3]tierPlaneCounters
}

// NewContendedPlane builds a plane with the given configuration.
func NewContendedPlane(cfg PlaneConfig) *ContendedPlane {
	cfg.applyDefaults()
	p := &ContendedPlane{cfg: cfg}
	empty := make(map[string]*planeChannel)
	p.chans.Store(&empty)
	return p
}

// Config returns the resolved configuration.
func (p *ContendedPlane) Config() PlaneConfig { return p.cfg }

// Register pre-creates a device's channel so the serving hot path never
// pays channel creation; clusters register their devices at attach time.
// Registering an existing device is a no-op (the channel — and its accrued
// backlog — is shared by every view of the device).
func (p *ContendedPlane) Register(deviceID string, _ Media) {
	p.insert(deviceID)
}

// insert returns the device's channel, creating it via copy-on-write if it
// does not exist yet.
func (p *ContendedPlane) insert(id string) *planeChannel {
	p.mu.Lock()
	defer p.mu.Unlock()
	old := *p.chans.Load()
	if ch, ok := old[id]; ok {
		return ch
	}
	next := make(map[string]*planeChannel, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	ch := &planeChannel{}
	next[id] = ch
	p.chans.Store(&next)
	return ch
}

func (p *ContendedPlane) channel(id string) *planeChannel {
	if ch := (*p.chans.Load())[id]; ch != nil {
		return ch
	}
	return p.insert(id)
}

// Serve implements DataPlane: FIFO virtual-clock queueing on the device's
// directional channel with the queue clamped at MaxQueue. Lock-free after
// the channel lookup; safe from any goroutine.
func (p *ContendedPlane) Serve(req IORequest) IOGrant {
	if !req.Media.Valid() {
		return IOGrant{}
	}
	prof := p.cfg.Profiles[req.Media]
	bw := prof.ReadBW
	if req.Dir == Write {
		bw = prof.WriteBW
	}
	transfer := time.Duration(math.Ceil(float64(req.Bytes) / bw * float64(time.Second)))
	service := prof.BaseLatency + transfer
	now := sim.Nanos(req.At)
	h := p.channel(req.DeviceID).horizon(req.Dir)

	var queue time.Duration
	var saturated bool
	for {
		busy := h.Load()
		queueNS := busy - now
		if queueNS < 0 {
			queueNS = 0
		}
		if maxNS := p.cfg.MaxQueue.Nanoseconds(); queueNS > maxNS {
			queueNS, saturated = maxNS, true
		}
		end := now + queueNS + service.Nanoseconds()
		queue = time.Duration(queueNS)
		if end <= busy {
			// The channel is already booked beyond this request's clamped
			// completion (saturation): never retreat the horizon.
			break
		}
		if h.CompareAndSwap(busy, end) {
			break
		}
	}

	t := &p.tiers[req.Media]
	t.requests.Add(1)
	t.bytes.Add(req.Bytes)
	if queue > 0 {
		t.queuedNS.Add(queue.Nanoseconds())
		t.contended.Add(1)
	}
	if saturated {
		t.saturated.Add(1)
	}
	if req.Class == ClassMove {
		t.moveReqs.Add(1)
	}
	return IOGrant{Queue: queue, Base: prof.BaseLatency, Transfer: transfer, Saturated: saturated}
}

// Stats snapshots the plane counters. Safe from any goroutine.
func (p *ContendedPlane) Stats() PlaneStats {
	var out PlaneStats
	out.Devices = len(*p.chans.Load())
	for i := range p.tiers {
		t := &p.tiers[i]
		s := TierPlaneStats{
			Requests:     t.requests.Load(),
			MoveRequests: t.moveReqs.Load(),
			Bytes:        t.bytes.Load(),
			Contended:    t.contended.Load(),
			Saturated:    t.saturated.Load(),
		}
		if s.Requests > 0 {
			s.AvgQueue = time.Duration(t.queuedNS.Load() / s.Requests)
		}
		out.PerTier[i] = s
	}
	return out
}

// Horizon reports the device channel's current busy-until virtual time;
// tests and diagnostics use it, the serving path never does.
func (p *ContendedPlane) Horizon(deviceID string, dir Direction) time.Time {
	return sim.AtNanos(p.channel(deviceID).horizon(dir).Load())
}
