package storage

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"octostore/internal/sim"
)

func twoTenantPlane(maxQueue time.Duration) *ContendedPlane {
	return NewContendedPlane(PlaneConfig{
		MaxQueue: maxQueue,
		Tenants:  []TenantWeight{{ID: 1, Weight: 3}, {ID: 2, Weight: 1}},
	})
}

func tenantReq(dev string, m Media, dir Direction, tenant TenantID, bytes int64, at time.Time) IORequest {
	return IORequest{DeviceID: dev, Media: m, Dir: dir, Class: ClassServe, Tenant: tenant, Bytes: bytes, At: at}
}

// TestSingleTenantConfigIsFIFO is the differential anchor of the fair
// scheduler: a plane configured with fewer than two tenants must grant
// bit-for-bit what the plain FIFO plane grants, request for request — the
// single-tenant replays (and their oracles) depend on it.
func TestSingleTenantConfigIsFIFO(t *testing.T) {
	fifo := NewContendedPlane(PlaneConfig{MaxQueue: 300 * time.Millisecond})
	one := NewContendedPlane(PlaneConfig{
		MaxQueue: 300 * time.Millisecond,
		Tenants:  []TenantWeight{{ID: 7, Weight: 5}},
	})
	if one.MultiTenant() {
		t.Fatal("a one-entry tenant list must not enable multi-tenant scheduling")
	}
	rng := rand.New(rand.NewSource(42))
	at := sim.Epoch
	for i := 0; i < 2000; i++ {
		dev := []string{"d0", "d1", "d2"}[rng.Intn(3)]
		m := AllMedia[rng.Intn(3)]
		dir := Direction(rng.Intn(2))
		bytes := int64(rng.Intn(64)+1) * MB
		at = at.Add(time.Duration(rng.Intn(int(5 * time.Millisecond))))
		// The tenant tag must be ignored entirely in single-tenant mode.
		ga := fifo.Serve(tenantReq(dev, m, dir, TenantID(rng.Intn(4)), bytes, at))
		gb := one.Serve(tenantReq(dev, m, dir, TenantID(rng.Intn(4)), bytes, at))
		if ga != gb {
			t.Fatalf("request %d: grants diverged: fifo %+v vs one-tenant %+v", i, ga, gb)
		}
	}
	if one.TenantStats() != nil {
		t.Fatal("single-tenant plane reported tenant stats")
	}
	if err := one.CheckAccounting(); err != nil {
		t.Fatalf("single-tenant CheckAccounting must be a no-op: %v", err)
	}
}

// TestLoneTenantGetsWholeChannel checks work conservation: on a multi-tenant
// plane with only one tenant active, every grant matches the plain FIFO
// plane exactly — fair sharing costs an idle cluster nothing.
func TestLoneTenantGetsWholeChannel(t *testing.T) {
	fifo := NewContendedPlane(PlaneConfig{MaxQueue: 400 * time.Millisecond})
	fair := NewContendedPlane(PlaneConfig{
		MaxQueue: 400 * time.Millisecond,
		Tenants:  []TenantWeight{{ID: 1, Weight: 3}, {ID: 2, Weight: 1}},
	})
	rng := rand.New(rand.NewSource(7))
	at := sim.Epoch
	for i := 0; i < 2000; i++ {
		dev := []string{"d0", "d1"}[rng.Intn(2)]
		dir := Direction(rng.Intn(2))
		bytes := int64(rng.Intn(32)+1) * MB
		at = at.Add(time.Duration(rng.Intn(int(2 * time.Millisecond))))
		ga := fifo.Serve(tenantReq(dev, SSD, dir, 1, bytes, at))
		gb := fair.Serve(tenantReq(dev, SSD, dir, 1, bytes, at))
		if ga != gb {
			t.Fatalf("request %d: lone-tenant grant %+v diverged from FIFO %+v", i, gb, ga)
		}
	}
}

// TestWeightedFairFavorsHeavierTenant puts both tenants into sustained
// backlog on one device and checks the share math: the weight-3 tenant's
// service is stretched 4/3x, the weight-1 tenant's 4x, so the heavier
// tenant accumulates strictly less queueing for identical offered load.
func TestWeightedFairFavorsHeavierTenant(t *testing.T) {
	p := twoTenantPlane(24 * time.Hour)
	at := sim.Epoch
	const bytes = 32 * MB
	// Backlog both tenants: one write each puts both horizons in the future.
	p.Serve(tenantReq("d", HDD, Write, 1, bytes, at))
	p.Serve(tenantReq("d", HDD, Write, 2, bytes, at))
	var q1, q2 time.Duration
	for i := 0; i < 40; i++ {
		q1 += p.Serve(tenantReq("d", HDD, Write, 1, bytes, at)).Queue
		q2 += p.Serve(tenantReq("d", HDD, Write, 2, bytes, at)).Queue
	}
	if q1 >= q2 {
		t.Fatalf("weight-3 tenant queued %v, not below weight-1 tenant's %v", q1, q2)
	}
	st := p.TenantStats()
	if len(st) != 2 || st[0].Tenant != 1 || st[1].Tenant != 2 {
		t.Fatalf("tenant stats %+v", st)
	}
	if st[0].AvgQueue >= st[1].AvgQueue {
		t.Fatalf("avg queue: weight-3 %v not below weight-1 %v", st[0].AvgQueue, st[1].AvgQueue)
	}
	if err := p.CheckAccounting(); err != nil {
		t.Fatal(err)
	}
}

// TestUnlistedTenantAccountedUntagged routes a tenant id outside the
// configured set through a multi-tenant plane: it is scheduled (at weight 1)
// and its traffic lands in the untagged block, keeping the accounting
// equation closed.
func TestUnlistedTenantAccountedUntagged(t *testing.T) {
	p := twoTenantPlane(time.Hour)
	at := sim.Epoch
	p.Serve(tenantReq("d", SSD, Read, 1, 8*MB, at))
	p.Serve(tenantReq("d", SSD, Read, 99, 8*MB, at))
	ut := p.UntaggedStats()
	if ut.Requests != 1 || ut.Bytes != 8*MB {
		t.Fatalf("untagged stats %+v, want the unlisted tenant's request", ut)
	}
	if err := p.CheckAccounting(); err != nil {
		t.Fatal(err)
	}
}

// TestSaturatedGrantAdvancesNoTenantHorizon drives one tenant far past the
// backlog window and checks the clamp is a latency floor, not a horizon
// push: saturated grants stop advancing the tenant's virtual time, so a
// flooding tenant cannot build unbounded priority debt for itself (or stall
// forever once the flood stops).
func TestSaturatedGrantAdvancesNoTenantHorizon(t *testing.T) {
	p := twoTenantPlane(50 * time.Millisecond)
	at := sim.Epoch
	// Backlog tenant 1 so tenant 2 runs the contended path.
	p.Serve(tenantReq("d", HDD, Write, 1, 64*MB, at))
	var saturated int
	var last time.Duration
	for i := 0; i < 60; i++ {
		g := p.Serve(tenantReq("d", HDD, Write, 2, 64*MB, at))
		if g.Saturated {
			saturated++
			last = g.Queue
		}
		if g.Queue > 50*time.Millisecond {
			t.Fatalf("queue %v exceeded the clamp", g.Queue)
		}
	}
	if saturated == 0 {
		t.Fatal("sustained flood never saturated")
	}
	if last != 50*time.Millisecond {
		t.Fatalf("saturated queue %v, want the clamp", last)
	}
	st := p.TenantStats()
	if st[1].Saturated != int64(saturated) {
		t.Fatalf("tenant 2 saturated count %d, want %d", st[1].Saturated, saturated)
	}
}

// TestUnregisterDropsChannels is the churn regression for the refcounted
// registration protocol: two views register the same device, one unregister
// keeps the shared channel alive, the second drops it; a lazily charged
// (never registered) device falls to its first unregister; and a
// register/unregister churn loop strands no channels.
func TestUnregisterDropsChannels(t *testing.T) {
	p := NewContendedPlane(PlaneConfig{})
	p.Register("shared", SSD)
	p.Register("shared", SSD) // second shard view of the same physical device
	at := sim.Epoch
	p.Serve(planeReq("shared", SSD, Write, 64*MB, at))
	p.Serve(planeReq("lazy", SSD, Write, 64*MB, at))
	if got := p.Stats().Devices; got != 2 {
		t.Fatalf("devices %d, want 2", got)
	}

	p.Unregister("shared", SSD)
	if got := p.Stats().Devices; got != 2 {
		t.Fatal("channel dropped while a view still holds a registration")
	}
	backlog := p.Horizon("shared", Write)
	if !backlog.After(at) {
		t.Fatal("backlog lost")
	}
	p.Unregister("shared", SSD)
	if got := p.Stats().Devices; got != 1 {
		t.Fatalf("devices %d after final unregister, want 1", got)
	}
	p.Unregister("lazy", SSD)
	if got := p.Stats().Devices; got != 0 {
		t.Fatalf("devices %d after unregistering the lazy channel, want 0", got)
	}

	// Churn: every join/leave round must return the plane to its baseline.
	for i := 0; i < 100; i++ {
		p.Register("churn", HDD)
		p.Serve(planeReq("churn", HDD, Read, MB, at))
		p.Unregister("churn", HDD)
	}
	if got := p.Stats().Devices; got != 0 {
		t.Fatalf("%d channels stranded after churn", got)
	}
}

// TestFairPlanePropertyRandomInterleaving drives a seeded random request
// stream (mixed tenants, devices, directions, tiers, nondecreasing clocks)
// through a multi-tenant plane and checks, after every single grant, the
// two safety properties of the channel model: device horizons never
// retreat, and a grant never books more than its own service beyond
// max(previous horizon, now). At the end the tenant accounting equation
// must close.
func TestFairPlanePropertyRandomInterleaving(t *testing.T) {
	p := NewContendedPlane(PlaneConfig{
		MaxQueue: 24 * time.Hour, // never saturate: every request books its service
		Tenants:  []TenantWeight{{ID: 1, Weight: 4}, {ID: 2, Weight: 2}, {ID: 3, Weight: 1}},
	})
	rng := rand.New(rand.NewSource(1234))
	devices := []string{"a", "b", "c"}
	type key struct {
		dev string
		dir Direction
	}
	prev := map[key]time.Time{}
	at := sim.Epoch
	for i := 0; i < 5000; i++ {
		dev := devices[rng.Intn(len(devices))]
		m := AllMedia[rng.Intn(3)]
		dir := Direction(rng.Intn(2))
		tenant := TenantID(rng.Intn(5)) // includes unlisted ids
		bytes := int64(rng.Intn(16)+1) * MB
		if rng.Intn(4) == 0 {
			at = at.Add(time.Duration(rng.Intn(int(20 * time.Millisecond))))
		}
		g := p.Serve(tenantReq(dev, m, dir, tenant, bytes, at))
		k := key{dev, dir}
		h := p.Horizon(dev, dir)
		if was, ok := prev[k]; ok && h.Before(was) {
			t.Fatalf("request %d: device %s/%v horizon retreated %v -> %v", i, dev, dir, was, h)
		}
		// The grant may book at most its own raw service beyond the busier
		// of (previous horizon, now) — the wall that bounds total granted
		// work per device.
		ceiling := at
		if was, ok := prev[k]; ok && was.After(ceiling) {
			ceiling = was
		}
		if max := ceiling.Add(g.Base + g.Transfer); h.After(max) {
			t.Fatalf("request %d: horizon %v beyond ceiling %v (service %v)", i, h, max, g.Base+g.Transfer)
		}
		prev[k] = h
	}
	if err := p.CheckAccounting(); err != nil {
		t.Fatal(err)
	}
	var tenantReqs int64
	for _, ts := range p.TenantStats() {
		tenantReqs += ts.Requests
	}
	tenantReqs += p.UntaggedStats().Requests
	if tenantReqs != 5000 {
		t.Fatalf("tenant request sum %d, want 5000", tenantReqs)
	}
}

// TestFairPlaneConcurrentBounded hammers one device from goroutines split
// across tenants (run under -race) with a fixed issue clock and checks the
// total granted work stays bounded: the device horizon cannot exceed
// now + the sum of every request's raw service, and the accounting equation
// closes once the hammering quiesces.
func TestFairPlaneConcurrentBounded(t *testing.T) {
	p := twoTenantPlane(24 * time.Hour)
	p.Register("shared", Memory)
	const goroutines, each = 8, 250
	const bytes = 4 * MB
	at := sim.Epoch
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		tenant := TenantID(i%2 + 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				p.Serve(tenantReq("shared", Memory, Read, tenant, bytes, at))
			}
		}()
	}
	wg.Wait()
	one := p.Serve(tenantReq("probe", Memory, Read, 1, bytes, at))
	ceiling := at.Add(time.Duration(goroutines*each) * (one.Base + one.Transfer))
	if h := p.Horizon("shared", Read); h.After(ceiling) {
		t.Fatalf("horizon %v exceeds total offered work %v", h, ceiling)
	}
	if err := p.CheckAccounting(); err != nil {
		t.Fatal(err)
	}
	st := p.TenantStats()
	if st[0].Requests+st[1].Requests != goroutines*each+1 {
		t.Fatalf("tenant requests %d+%d, want %d", st[0].Requests, st[1].Requests, goroutines*each+1)
	}
}
