package storage

import (
	"sync"
	"testing"
	"time"

	"octostore/internal/sim"
)

func planeReq(dev string, m Media, dir Direction, bytes int64, at time.Time) IORequest {
	return IORequest{DeviceID: dev, Media: m, Dir: dir, Class: ClassServe, Bytes: bytes, At: at}
}

func TestNopPlaneZero(t *testing.T) {
	var p NopPlane
	g := p.Serve(planeReq("d", Memory, Read, 1<<30, sim.Epoch.Add(time.Hour)))
	if g != (IOGrant{}) {
		t.Fatalf("NopPlane granted %+v, want zero", g)
	}
}

func TestTierOrderedServiceTime(t *testing.T) {
	p := NewContendedPlane(PlaneConfig{})
	at := sim.Epoch
	const bytes = 64 * MB
	var lat [3]time.Duration
	for _, m := range AllMedia {
		g := p.Serve(planeReq("dev-"+m.String(), m, Read, bytes, at))
		if g.Queue != 0 {
			t.Fatalf("%v: fresh channel queued %v", m, g.Queue)
		}
		lat[m] = g.Latency()
	}
	if !(lat[Memory] < lat[SSD] && lat[SSD] < lat[HDD]) {
		t.Fatalf("service times not tier-ordered: mem %v ssd %v hdd %v", lat[Memory], lat[SSD], lat[HDD])
	}
}

func TestQueueingAccumulatesAndDrains(t *testing.T) {
	p := NewContendedPlane(PlaneConfig{MaxQueue: time.Hour})
	at := sim.Epoch
	const bytes = 100 * MB
	g1 := p.Serve(planeReq("d0", SSD, Read, bytes, at))
	if g1.Queue != 0 {
		t.Fatalf("first request queued %v", g1.Queue)
	}
	g2 := p.Serve(planeReq("d0", SSD, Read, bytes, at))
	if want := g1.Base + g1.Transfer; g2.Queue != want {
		t.Fatalf("second request queued %v, want the first's service time %v", g2.Queue, want)
	}
	// A different device and the opposite direction are independent.
	if g := p.Serve(planeReq("d1", SSD, Read, bytes, at)); g.Queue != 0 {
		t.Fatalf("independent device queued %v", g.Queue)
	}
	if g := p.Serve(planeReq("d0", SSD, Write, bytes, at)); g.Queue != 0 {
		t.Fatalf("opposite direction queued %v", g.Queue)
	}
	// Issuing after the backlog's horizon drains the queue.
	later := at.Add(g2.Queue + g2.Base + g2.Transfer)
	if g := p.Serve(planeReq("d0", SSD, Read, bytes, later)); g.Queue != 0 {
		t.Fatalf("post-horizon request queued %v", g.Queue)
	}
}

func TestQueueClampSaturates(t *testing.T) {
	p := NewContendedPlane(PlaneConfig{MaxQueue: 100 * time.Millisecond})
	at := sim.Epoch
	var saturated int
	for i := 0; i < 50; i++ {
		g := p.Serve(planeReq("d", HDD, Write, 64*MB, at))
		if g.Queue > 100*time.Millisecond {
			t.Fatalf("queue %v exceeds the clamp", g.Queue)
		}
		if g.Saturated {
			saturated++
		}
	}
	if saturated == 0 {
		t.Fatal("sustained overload never reported saturation")
	}
	st := p.Stats()
	if st.PerTier[HDD].Saturated != int64(saturated) || st.PerTier[HDD].Requests != 50 {
		t.Fatalf("stats %+v disagree with %d saturated of 50", st.PerTier[HDD], saturated)
	}
}

// TestConcurrentServe hammers one device from many goroutines (the shape of
// shard loops plus serve-path clients) and checks the horizon accounting
// stays conserved: with a generous clamp every request's service time is
// booked, so the final horizon equals the total booked work.
func TestConcurrentServe(t *testing.T) {
	p := NewContendedPlane(PlaneConfig{MaxQueue: 24 * time.Hour})
	p.Register("shared", Memory)
	const goroutines, each = 8, 200
	const bytes = 8 * MB
	at := sim.Epoch
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				p.Serve(planeReq("shared", Memory, Read, bytes, at))
			}
		}()
	}
	wg.Wait()
	one := p.Serve(planeReq("probe", Memory, Read, bytes, at))
	total := time.Duration(goroutines*each) * (one.Base + one.Transfer)
	if got := p.Horizon("shared", Read).Sub(at); got != total {
		t.Fatalf("horizon advanced %v, want %v (every request booked exactly once)", got, total)
	}
	st := p.Stats()
	if st.PerTier[Memory].Requests != goroutines*each+1 {
		t.Fatalf("requests %d, want %d", st.PerTier[Memory].Requests, goroutines*each+1)
	}
	if st.PerTier[Memory].Contended == 0 {
		t.Fatal("no request observed contention")
	}
}

func TestRegisterSharesBacklogAcrossViews(t *testing.T) {
	// Two "views" (shards) address the same physical device by ID: backlog
	// created through one is visible to the other.
	p := NewContendedPlane(PlaneConfig{MaxQueue: time.Hour})
	p.Register("worker-0/MEM-0", Memory)
	at := sim.Epoch
	g := p.Serve(planeReq("worker-0/MEM-0", Memory, Write, 256*MB, at))
	g2 := p.Serve(planeReq("worker-0/MEM-0", Memory, Write, 256*MB, at))
	if g2.Queue != g.Base+g.Transfer {
		t.Fatalf("second view queued %v, want %v", g2.Queue, g.Base+g.Transfer)
	}
}
