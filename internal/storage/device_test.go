package storage

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"octostore/internal/sim"
)

func newTestDevice(e *sim.Engine) *Device {
	// 100 bytes/second both ways makes arithmetic easy to follow.
	return NewDevice(e, "hdd-0", HDD, 1000, 100, 100)
}

func TestMediaOrdering(t *testing.T) {
	if !Memory.Higher(SSD) || !SSD.Higher(HDD) {
		t.Fatal("tier ordering broken")
	}
	if !HDD.Lower(SSD) || !SSD.Lower(Memory) {
		t.Fatal("Lower ordering broken")
	}
	if below, ok := Memory.Below(); !ok || below != SSD {
		t.Fatalf("Memory.Below() = %v, %v", below, ok)
	}
	if _, ok := HDD.Below(); ok {
		t.Fatal("HDD.Below() should not exist")
	}
	if above, ok := HDD.Above(); !ok || above != SSD {
		t.Fatalf("HDD.Above() = %v, %v", above, ok)
	}
	if _, ok := Memory.Above(); ok {
		t.Fatal("Memory.Above() should not exist")
	}
}

func TestParseMedia(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Media
	}{{"MEM", Memory}, {"memory", Memory}, {"SSD", SSD}, {"hdd", HDD}} {
		got, err := ParseMedia(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseMedia(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseMedia("tape"); err == nil {
		t.Fatal("ParseMedia(tape) should fail")
	}
}

func TestMediaString(t *testing.T) {
	if Memory.String() != "MEM" || SSD.String() != "SSD" || HDD.String() != "HDD" {
		t.Fatal("unexpected media strings")
	}
	if !Memory.Valid() || Media(99).Valid() {
		t.Fatal("Valid() broken")
	}
}

func TestReserveRelease(t *testing.T) {
	e := sim.NewEngine()
	d := newTestDevice(e)
	if err := d.Reserve(600); err != nil {
		t.Fatal(err)
	}
	if d.Used() != 600 || d.Free() != 400 {
		t.Fatalf("used=%d free=%d", d.Used(), d.Free())
	}
	if err := d.Reserve(500); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("over-reserve error = %v, want ErrNoSpace", err)
	}
	d.Release(600)
	if d.Used() != 0 {
		t.Fatalf("used=%d after release", d.Used())
	}
	if got := d.Utilization(); got != 0 {
		t.Fatalf("utilization = %v", got)
	}
}

func TestReleaseTooMuchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e := sim.NewEngine()
	d := newTestDevice(e)
	d.Release(1)
}

func TestSingleTransferLatency(t *testing.T) {
	e := sim.NewEngine()
	d := newTestDevice(e)
	var doneAt time.Time
	d.StartRead(200, func() { doneAt = e.Now() })
	e.Run()
	want := sim.Epoch.Add(2 * time.Second) // 200 bytes at 100 B/s
	if !doneAt.Equal(want) {
		t.Fatalf("done at %v, want %v", doneAt.Sub(sim.Epoch), want.Sub(sim.Epoch))
	}
}

func TestProcessorSharingTwoEqualTransfers(t *testing.T) {
	e := sim.NewEngine()
	d := newTestDevice(e)
	var t1, t2 time.Time
	d.StartRead(100, func() { t1 = e.Now() })
	d.StartRead(100, func() { t2 = e.Now() })
	e.Run()
	// Both share 100 B/s, so each effectively gets 50 B/s: 2 s for 100 B.
	want := sim.Epoch.Add(2 * time.Second)
	if !t1.Equal(want) || !t2.Equal(want) {
		t.Fatalf("t1=%v t2=%v, want both %v", t1.Sub(sim.Epoch), t2.Sub(sim.Epoch), want.Sub(sim.Epoch))
	}
}

func TestProcessorSharingStaggeredArrival(t *testing.T) {
	e := sim.NewEngine()
	d := newTestDevice(e)
	var t1, t2 time.Time
	d.StartRead(100, func() { t1 = e.Now() })
	e.Schedule(500*time.Millisecond, func() {
		d.StartRead(100, func() { t2 = e.Now() })
	})
	e.Run()
	// T1: 50 B alone in 0.5 s, then shares; 50 B left at 50 B/s = 1 s more.
	// T1 finishes at 1.5 s. T2 then runs alone: at 1.5 s it has transferred
	// 50 B, 50 B left at 100 B/s = 0.5 s. T2 finishes at 2.0 s.
	if got := t1.Sub(sim.Epoch); got != 1500*time.Millisecond {
		t.Fatalf("t1 = %v, want 1.5s", got)
	}
	if got := t2.Sub(sim.Epoch); got != 2*time.Second {
		t.Fatalf("t2 = %v, want 2s", got)
	}
}

func TestReadsAndWritesDoNotContend(t *testing.T) {
	e := sim.NewEngine()
	d := newTestDevice(e)
	var tr, tw time.Time
	d.StartRead(100, func() { tr = e.Now() })
	d.StartWrite(100, func() { tw = e.Now() })
	e.Run()
	want := sim.Epoch.Add(time.Second)
	if !tr.Equal(want) || !tw.Equal(want) {
		t.Fatalf("read=%v write=%v, want both 1s", tr.Sub(sim.Epoch), tw.Sub(sim.Epoch))
	}
}

func TestZeroByteTransferCompletes(t *testing.T) {
	e := sim.NewEngine()
	d := newTestDevice(e)
	done := false
	d.StartWrite(0, func() { done = true })
	e.Run()
	if !done {
		t.Fatal("zero-byte transfer never completed")
	}
	if !e.Now().Equal(sim.Epoch) {
		t.Fatalf("zero-byte transfer advanced time to %v", e.Now())
	}
}

func TestCancelTransfer(t *testing.T) {
	e := sim.NewEngine()
	d := newTestDevice(e)
	var cancelledFired bool
	var otherAt time.Time
	tr := d.StartRead(100, func() { cancelledFired = true })
	d.StartRead(100, func() { otherAt = e.Now() })
	e.Schedule(500*time.Millisecond, tr.Cancel)
	e.Run()
	if cancelledFired {
		t.Fatal("cancelled transfer completed")
	}
	// Other transfer: 25 B in first 0.5 s (sharing), then alone at 100 B/s
	// for remaining 75 B = 0.75 s. Total 1.25 s.
	if got := otherAt.Sub(sim.Epoch); got != 1250*time.Millisecond {
		t.Fatalf("other done at %v, want 1.25s", got)
	}
	if tr.Done() {
		t.Fatal("cancelled transfer reports Done")
	}
}

func TestCancelFinishedTransferNoop(t *testing.T) {
	e := sim.NewEngine()
	d := newTestDevice(e)
	tr := d.StartRead(10, nil)
	e.Run()
	if !tr.Done() {
		t.Fatal("transfer did not finish")
	}
	tr.Cancel() // must not panic or corrupt pool state
	d.StartRead(10, nil)
	e.Run()
}

func TestBytesCounters(t *testing.T) {
	e := sim.NewEngine()
	d := newTestDevice(e)
	d.StartRead(300, nil)
	d.StartWrite(200, nil)
	e.Run()
	if d.BytesRead() != 300 || d.BytesWritten() != 200 {
		t.Fatalf("read=%d written=%d", d.BytesRead(), d.BytesWritten())
	}
}

func TestEstimateLatency(t *testing.T) {
	e := sim.NewEngine()
	d := newTestDevice(e)
	if got := d.EstimateLatency(Read, 100); got != time.Second {
		t.Fatalf("idle estimate = %v, want 1s", got)
	}
	d.StartRead(1000, nil)
	// With one active transfer the next would get a half share.
	if got := d.EstimateLatency(Read, 100); got != 2*time.Second {
		t.Fatalf("loaded estimate = %v, want 2s", got)
	}
}

func TestActiveAndLoad(t *testing.T) {
	e := sim.NewEngine()
	d := newTestDevice(e)
	d.StartRead(1000, nil)
	d.StartWrite(1000, nil)
	if d.Active(Read) != 1 || d.Active(Write) != 1 || d.Load() != 2 {
		t.Fatalf("active read=%d write=%d load=%d", d.Active(Read), d.Active(Write), d.Load())
	}
	e.Run()
	if d.Load() != 0 {
		t.Fatalf("load=%d after drain", d.Load())
	}
}

func TestNodeSpecTotalCapacity(t *testing.T) {
	spec := PaperWorkerSpec()
	if got := spec.TotalCapacity(Memory); got != 4*GB {
		t.Fatalf("memory capacity = %d", got)
	}
	if got := spec.TotalCapacity(HDD); got != 3*134*GB {
		t.Fatalf("hdd capacity = %d", got)
	}
}

// Property: total served bytes equal the sum of all completed transfer sizes
// regardless of arrival pattern (conservation of work).
func TestPropertyWorkConservation(t *testing.T) {
	f := func(sizes []uint16, gaps []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		e := sim.NewEngine()
		d := NewDevice(e, "d", SSD, 1<<40, 1000, 1000)
		var total, completed int64
		at := time.Duration(0)
		for i, s := range sizes {
			size := int64(s)
			total += size
			if i < len(gaps) {
				at += time.Duration(gaps[i]) * time.Millisecond
			}
			e.Schedule(at, func() {
				d.StartRead(size, func() { completed += size })
			})
		}
		e.Run()
		return completed == total && d.Active(Read) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: under pure processor sharing, n equal transfers started together
// all complete at n * (size/bw).
func TestPropertyEqualSharing(t *testing.T) {
	f := func(nRaw uint8, sizeRaw uint16) bool {
		n := int(nRaw%8) + 1
		size := int64(sizeRaw) + 1
		e := sim.NewEngine()
		d := NewDevice(e, "d", SSD, 1<<40, 1000, 1000)
		var finishes []time.Time
		for i := 0; i < n; i++ {
			d.StartRead(size, func() { finishes = append(finishes, e.Now()) })
		}
		e.Run()
		want := float64(n) * float64(size) / 1000.0
		for _, ft := range finishes {
			got := ft.Sub(sim.Epoch).Seconds()
			if math.Abs(got-want) > 1e-6*want+1e-9 {
				return false
			}
		}
		return len(finishes) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDeviceTransferChurn(b *testing.B) {
	e := sim.NewEngine()
	d := NewDevice(e, "d", SSD, 1<<40, 500e6, 500e6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.StartRead(int64(128*MB), nil)
		if i%32 == 31 {
			e.Run()
		}
	}
	e.Run()
}
