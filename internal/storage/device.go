package storage

import (
	"errors"
	"fmt"
	"math"
	"time"

	"octostore/internal/sim"
)

// ErrNoSpace is returned by Reserve when a device cannot fit the requested
// bytes.
var ErrNoSpace = errors.New("storage: device full")

// Direction distinguishes the two independently contended bandwidth pools of
// a device.
type Direction int

const (
	// Read transfers consume read bandwidth.
	Read Direction = iota
	// Write transfers consume write bandwidth.
	Write
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	if d == Read {
		return "read"
	}
	return "write"
}

// Device is a single storage device (one memory bank, one SSD, or one HDD)
// with finite capacity and direction-specific bandwidth. Concurrent
// transfers in the same direction share bandwidth equally (processor
// sharing).
type Device struct {
	id    string
	media Media

	capacity int64
	used     int64

	read  pool
	write pool

	bytesRead    int64
	bytesWritten int64
}

// NewDevice creates a device bound to the given engine.
func NewDevice(engine *sim.Engine, id string, media Media, capacity int64, readBW, writeBW float64) *Device {
	if capacity < 0 {
		panic(fmt.Sprintf("storage: negative capacity %d", capacity))
	}
	if readBW <= 0 || writeBW <= 0 {
		panic("storage: bandwidths must be positive")
	}
	d := &Device{id: id, media: media, capacity: capacity}
	d.read.init(engine, readBW)
	d.write.init(engine, writeBW)
	return d
}

// ID returns the device identifier (unique within a cluster).
func (d *Device) ID() string { return d.id }

// Media returns the device's media class.
func (d *Device) Media() Media { return d.media }

// Capacity returns the usable capacity in bytes.
func (d *Device) Capacity() int64 { return d.capacity }

// Used returns the bytes currently reserved on the device.
func (d *Device) Used() int64 { return d.used }

// Free returns the bytes still available for reservation.
func (d *Device) Free() int64 { return d.capacity - d.used }

// Utilization returns Used/Capacity in [0,1]; a zero-capacity device reports
// 1 so placement policies skip it.
func (d *Device) Utilization() float64 {
	if d.capacity == 0 {
		return 1
	}
	return float64(d.used) / float64(d.capacity)
}

// BytesRead returns the cumulative bytes delivered by completed or
// in-progress read transfers.
func (d *Device) BytesRead() int64 { return d.bytesRead }

// BytesWritten returns the cumulative bytes accepted by write transfers.
func (d *Device) BytesWritten() int64 { return d.bytesWritten }

// Active returns the number of in-flight transfers in the given direction.
func (d *Device) Active(dir Direction) int {
	return d.pool(dir).active()
}

// Load is a placement heuristic: the total number of in-flight transfers.
func (d *Device) Load() int { return d.read.active() + d.write.active() }

// Grow raises the device's usable capacity by the given bytes. The sharded
// serving layer uses it to apply quota borrowed from the global tier ledger
// to a shard's view of the device; the simulation core itself never resizes
// devices.
func (d *Device) Grow(bytes int64) {
	if bytes < 0 {
		panic(fmt.Sprintf("storage: negative capacity growth %d", bytes))
	}
	d.capacity += bytes
}

// ShrinkUpTo lowers the device's capacity by up to the given bytes, never
// below the currently reserved bytes, and returns how much was actually
// reclaimed. Quota reconciliation uses it to return unused shard capacity to
// the global pool without ever invalidating a stored replica.
func (d *Device) ShrinkUpTo(bytes int64) int64 {
	if bytes < 0 {
		panic(fmt.Sprintf("storage: negative capacity shrink %d", bytes))
	}
	take := bytes
	if free := d.Free(); take > free {
		take = free
	}
	d.capacity -= take
	return take
}

// Reserve claims space on the device, failing with ErrNoSpace if the bytes
// do not fit. Reservations model stored block replicas.
func (d *Device) Reserve(bytes int64) error {
	if bytes < 0 {
		return fmt.Errorf("storage: negative reservation %d", bytes)
	}
	if d.used+bytes > d.capacity {
		return fmt.Errorf("%w: %s needs %d, free %d", ErrNoSpace, d.id, bytes, d.Free())
	}
	d.used += bytes
	return nil
}

// Release returns previously reserved space to the device.
func (d *Device) Release(bytes int64) {
	if bytes < 0 {
		panic(fmt.Sprintf("storage: negative release %d", bytes))
	}
	d.used -= bytes
	if d.used < 0 {
		panic(fmt.Sprintf("storage: device %s released more than reserved", d.id))
	}
}

func (d *Device) pool(dir Direction) *pool {
	if dir == Read {
		return &d.read
	}
	return &d.write
}

// Start begins a transfer of the given size and direction; done (optional)
// fires at the simulated completion time. The returned Transfer may be
// cancelled. Zero-byte transfers complete via a zero-delay event so that
// callbacks still run asynchronously with respect to the caller.
func (d *Device) Start(dir Direction, bytes int64, done func()) *Transfer {
	if bytes < 0 {
		panic(fmt.Sprintf("storage: negative transfer %d", bytes))
	}
	if dir == Read {
		d.bytesRead += bytes
	} else {
		d.bytesWritten += bytes
	}
	return d.pool(dir).start(d, bytes, done)
}

// StartRead is shorthand for Start(Read, ...).
func (d *Device) StartRead(bytes int64, done func()) *Transfer {
	return d.Start(Read, bytes, done)
}

// StartWrite is shorthand for Start(Write, ...).
func (d *Device) StartWrite(bytes int64, done func()) *Transfer {
	return d.Start(Write, bytes, done)
}

// EstimateLatency predicts how long a transfer of the given size would take
// if started now, assuming the current contention level stays constant. It
// is used by placement policies; actual transfers may finish earlier or
// later.
func (d *Device) EstimateLatency(dir Direction, bytes int64) time.Duration {
	p := d.pool(dir)
	share := p.bw / float64(p.active()+1)
	return time.Duration(float64(bytes) / share * float64(time.Second))
}

// Transfer is one in-flight I/O operation on a device.
type Transfer struct {
	device    *Device
	pool      *pool
	remaining float64
	done      func()
	finished  bool
	cancelled bool
}

// Done reports whether the transfer completed.
func (t *Transfer) Done() bool { return t.finished }

// Cancel aborts an in-flight transfer; its completion callback will not run.
// Cancelling a finished transfer is a no-op.
func (t *Transfer) Cancel() {
	if t.finished || t.cancelled {
		return
	}
	t.cancelled = true
	t.pool.remove(t)
}

// pool is one direction's processor-sharing bandwidth server.
type pool struct {
	engine      *sim.Engine
	bw          float64 // bytes/second
	transfers   []*Transfer
	lastSettle  time.Time
	nextEvent   *sim.Event
	totalServed float64
}

func (p *pool) init(engine *sim.Engine, bw float64) {
	p.engine = engine
	p.bw = bw
	p.lastSettle = engine.Now()
}

func (p *pool) active() int { return len(p.transfers) }

// settle advances the remaining byte counts of all active transfers to the
// current virtual time under equal sharing.
func (p *pool) settle() {
	now := p.engine.Now()
	dt := now.Sub(p.lastSettle).Seconds()
	p.lastSettle = now
	n := len(p.transfers)
	if n == 0 || dt <= 0 {
		return
	}
	share := p.bw / float64(n) * dt
	for _, t := range p.transfers {
		t.remaining -= share
		p.totalServed += share
	}
}

const remainderEpsilon = 1e-3 // bytes; tolerate float accumulation error

// reschedule plans the completion event for the transfer closest to
// finishing.
func (p *pool) reschedule() {
	if p.nextEvent != nil {
		p.nextEvent.Cancel()
		p.nextEvent = nil
	}
	n := len(p.transfers)
	if n == 0 {
		return
	}
	minRemaining := p.transfers[0].remaining
	for _, t := range p.transfers[1:] {
		if t.remaining < minRemaining {
			minRemaining = t.remaining
		}
	}
	if minRemaining < 0 {
		minRemaining = 0
	}
	share := p.bw / float64(n)
	// Round the delay up to a whole nanosecond: rounding down can produce a
	// zero-delay event that never advances the clock, so the remaining byte
	// count never settles past the completion threshold.
	delay := time.Duration(math.Ceil(minRemaining / share * float64(time.Second)))
	p.nextEvent = p.engine.Schedule(delay, p.onCompletion)
}

// onCompletion settles progress and completes every transfer that has
// drained, then replans.
func (p *pool) onCompletion() {
	p.nextEvent = nil
	p.settle()
	var finished []*Transfer
	old := p.transfers
	live := old[:0]
	for _, t := range old {
		if t.remaining <= remainderEpsilon {
			t.finished = true
			finished = append(finished, t)
		} else {
			live = append(live, t)
		}
	}
	// Clear the stale tail so finished transfers (and everything their done
	// closures capture) become collectable; a burst can push the slice to a
	// high-water mark that would otherwise pin every completed transfer.
	for i := len(live); i < len(old); i++ {
		old[i] = nil
	}
	p.transfers = live
	p.reschedule()
	for _, t := range finished {
		if t.done != nil {
			t.done()
		}
	}
}

func (p *pool) start(d *Device, bytes int64, done func()) *Transfer {
	p.settle()
	t := &Transfer{device: d, pool: p, remaining: float64(bytes), done: done}
	p.transfers = append(p.transfers, t)
	p.reschedule()
	return t
}

func (p *pool) remove(t *Transfer) {
	p.settle()
	for i, other := range p.transfers {
		if other == t {
			n := len(p.transfers)
			p.transfers = append(p.transfers[:i], p.transfers[i+1:]...)
			p.transfers[:n][n-1] = nil // drop the stale duplicate slot
			break
		}
	}
	p.reschedule()
}
