// Package storage models the storage media attached to cluster nodes:
// capacities, bandwidths, and in-flight transfer contention.
//
// Each Device is a bandwidth server: concurrent transfers in the same
// direction progress under processor sharing (n active transfers each
// receive bandwidth B/n). Transfer completions are simulation events, so the
// rest of the system observes realistic, contention-dependent I/O latencies
// without touching real disks.
package storage

import "fmt"

// Byte size units.
const (
	KB int64 = 1 << 10
	MB int64 = 1 << 20
	GB int64 = 1 << 30
	TB int64 = 1 << 40
)

// Media identifies a class of storage hardware. Lower values are faster;
// Memory is the highest storage tier and HDD the lowest, matching the
// three-tier setup in the paper's evaluation cluster.
type Media int

const (
	// Memory is the DRAM-backed tier.
	Memory Media = iota
	// SSD is the flash tier.
	SSD
	// HDD is the spinning-disk tier.
	HDD
	numMedia
)

// AllMedia lists the media from the highest (fastest) tier to the lowest.
var AllMedia = []Media{Memory, SSD, HDD}

// String implements fmt.Stringer.
func (m Media) String() string {
	switch m {
	case Memory:
		return "MEM"
	case SSD:
		return "SSD"
	case HDD:
		return "HDD"
	default:
		return fmt.Sprintf("Media(%d)", int(m))
	}
}

// Valid reports whether m is one of the known media.
func (m Media) Valid() bool { return m >= Memory && m < numMedia }

// Higher reports whether m is a strictly higher (faster) tier than other.
func (m Media) Higher(other Media) bool { return m < other }

// Lower reports whether m is a strictly lower (slower) tier than other.
func (m Media) Lower(other Media) bool { return m > other }

// Below returns the next tier below m, and false if m is the lowest tier.
func (m Media) Below() (Media, bool) {
	if m >= HDD {
		return m, false
	}
	return m + 1, true
}

// Above returns the next tier above m, and false if m is the highest tier.
func (m Media) Above() (Media, bool) {
	if m <= Memory {
		return m, false
	}
	return m - 1, true
}

// ParseMedia converts a string such as "MEM", "SSD" or "HDD" to a Media.
func ParseMedia(s string) (Media, error) {
	switch s {
	case "MEM", "mem", "memory", "MEMORY":
		return Memory, nil
	case "SSD", "ssd":
		return SSD, nil
	case "HDD", "hdd", "disk", "DISK":
		return HDD, nil
	}
	return 0, fmt.Errorf("storage: unknown media %q", s)
}

// DeviceSpec describes one or more identical devices of a given media to
// attach to a node.
type DeviceSpec struct {
	Media    Media
	Capacity int64   // usable bytes per device
	ReadBW   float64 // bytes/second
	WriteBW  float64 // bytes/second
	Count    int     // number of identical devices
}

// NodeSpec is the full storage configuration of one worker node.
type NodeSpec []DeviceSpec

// TotalCapacity returns the aggregate capacity of the given media across the
// node, or of all media when media < 0.
func (s NodeSpec) TotalCapacity(media Media) int64 {
	var total int64
	for _, d := range s {
		if d.Media == media {
			total += d.Capacity * int64(d.Count)
		}
	}
	return total
}

// PaperWorkerSpec reproduces the per-worker storage configuration of the
// paper's testbed (Section 7): 4 GB of memory tier, 64 GB of SSD, and 400 GB
// of HDD spread over three disks. Bandwidths are chosen so that the relative
// tier speeds (mem ≫ SSD ≫ HDD) and the DFSIO throughput shape of Figure 2
// are preserved.
func PaperWorkerSpec() NodeSpec {
	return NodeSpec{
		{Media: Memory, Capacity: 4 * GB, ReadBW: 4000e6, WriteBW: 3000e6, Count: 1},
		{Media: SSD, Capacity: 64 * GB, ReadBW: 500e6, WriteBW: 400e6, Count: 1},
		{Media: HDD, Capacity: 134 * GB, ReadBW: 160e6, WriteBW: 140e6, Count: 3},
	}
}

// SmallWorkerSpec is a scaled-down configuration convenient for unit tests
// and examples: 64 MB memory, 256 MB SSD, 1 GB HDD.
func SmallWorkerSpec() NodeSpec {
	return NodeSpec{
		{Media: Memory, Capacity: 64 * MB, ReadBW: 4000e6, WriteBW: 3000e6, Count: 1},
		{Media: SSD, Capacity: 256 * MB, ReadBW: 500e6, WriteBW: 400e6, Count: 1},
		{Media: HDD, Capacity: 1 * GB, ReadBW: 160e6, WriteBW: 140e6, Count: 1},
	}
}
