package backend

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"octostore/internal/storage"
)

func testLocal(t *testing.T) *Local {
	t.Helper()
	l, err := OpenLocal(LocalConfig{Root: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func req(m storage.Media, dev string, id, size int64) Request {
	return Request{Media: m, Class: storage.ClassMove, DeviceID: dev, BlockID: id, Bytes: size}
}

func TestLocalWriteReadDeleteRoundtrip(t *testing.T) {
	l := testLocal(t)
	r := req(storage.SSD, "worker-0/ssd-0", 42, 3*storage.MB)
	if _, err := l.Write(r); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(l.TierDir(storage.SSD), "worker-0/ssd-0", "42.blk")
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 3*storage.MB {
		t.Fatalf("replica file is %d bytes, want %d", fi.Size(), 3*storage.MB)
	}
	if _, err := l.Read(r); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Delete(r); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("replica file survives delete: %v", err)
	}

	s := l.Stats().PerTier[storage.SSD]
	if s.Write.Count != 1 || s.Write.Bytes != 3*storage.MB || s.Write.Errors != 0 {
		t.Fatalf("write stats = %+v", s.Write)
	}
	if s.Read.Count != 1 || s.Read.Bytes != 3*storage.MB {
		t.Fatalf("read stats = %+v", s.Read)
	}
	if s.Delete.Count != 1 {
		t.Fatalf("delete stats = %+v", s.Delete)
	}
	if s.Write.WallNS <= 0 || s.Write.MinNS <= 0 || s.Write.MaxNS < s.Write.MinNS {
		t.Fatalf("write wall-time envelope not measured: %+v", s.Write)
	}
}

func TestLocalReadSizeMismatchIsError(t *testing.T) {
	l := testLocal(t)
	r := req(storage.HDD, "worker-1/hdd-0", 7, storage.MB)
	if _, err := l.Write(r); err != nil {
		t.Fatal(err)
	}
	// The control plane believes the block is bigger than the file: the
	// read must fail rather than silently serve short.
	r.Bytes = 2 * storage.MB
	if _, err := l.Read(r); err == nil {
		t.Fatal("short replica read succeeded")
	}
	if e := l.Stats().PerTier[storage.HDD].Read.Errors; e != 1 {
		t.Fatalf("read errors = %d, want 1", e)
	}
}

func TestLocalMissingReplicaErrorsAreCounted(t *testing.T) {
	l := testLocal(t)
	r := req(storage.Memory, "worker-0/mem-0", 1, storage.MB)
	if _, err := l.Read(r); err == nil {
		t.Fatal("read of nonexistent replica succeeded")
	}
	if _, err := l.Delete(r); err == nil {
		t.Fatal("delete of nonexistent replica succeeded")
	}
	s := l.Stats().PerTier[storage.Memory]
	if s.Read.Errors != 1 || s.Delete.Errors != 1 {
		t.Fatalf("error counts = read %d delete %d, want 1/1", s.Read.Errors, s.Delete.Errors)
	}
	if s.Read.Count != 0 || s.Delete.Count != 0 {
		t.Fatalf("failed ops counted as successes: %+v", s)
	}
}

func TestLocalDiskUsageTracksLiveReplicas(t *testing.T) {
	l := testLocal(t)
	a := req(storage.Memory, "worker-0/mem-0", 1, 2*storage.MB)
	b := req(storage.SSD, "worker-1/ssd-0", 2, 5*storage.MB)
	for _, r := range []Request{a, b} {
		if _, err := l.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	used, err := l.DiskUsage()
	if err != nil {
		t.Fatal(err)
	}
	if used[storage.Memory] != 2*storage.MB || used[storage.SSD] != 5*storage.MB || used[storage.HDD] != 0 {
		t.Fatalf("disk usage = %v", used)
	}
	if _, err := l.Delete(a); err != nil {
		t.Fatal(err)
	}
	used, err = l.DiskUsage()
	if err != nil {
		t.Fatal(err)
	}
	if used[storage.Memory] != 0 {
		t.Fatalf("memory tier usage after delete = %d", used[storage.Memory])
	}
}

func TestSimBackendIsFreeAndInvisible(t *testing.T) {
	var s Sim
	if s.Physical() {
		t.Fatal("Sim claims to be physical")
	}
	r := req(storage.Memory, "worker-0/mem-0", 1, storage.MB)
	if d, err := s.Write(r); err != nil || d != 0 {
		t.Fatalf("Sim write = (%v, %v)", d, err)
	}
	if d, err := s.Read(r); err != nil || d != 0 {
		t.Fatalf("Sim read = (%v, %v)", d, err)
	}
	if d, err := s.Delete(r); err != nil || d != 0 {
		t.Fatalf("Sim delete = (%v, %v)", d, err)
	}
	if got := s.Stats(); got != (Stats{}) {
		t.Fatalf("Sim stats = %+v", got)
	}
}

func TestFaultyFailNextAndEvery(t *testing.T) {
	f := NewFaulty(Sim{})
	r := req(storage.SSD, "worker-0/ssd-0", 9, storage.MB)

	f.FailNext(storage.SSD, OpWrite, 2)
	for i := 0; i < 2; i++ {
		if _, err := f.Write(r); !errors.Is(err, ErrInjected) {
			t.Fatalf("armed write %d error = %v", i, err)
		}
	}
	if _, err := f.Write(r); err != nil {
		t.Fatalf("disarmed write error = %v", err)
	}
	if got := f.Injected(storage.SSD, OpWrite); got != 2 {
		t.Fatalf("injected = %d, want 2", got)
	}
	// Other tiers and ops stay untouched.
	if _, err := f.Read(r); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(req(storage.Memory, "worker-0/mem-0", 9, storage.MB)); err != nil {
		t.Fatal(err)
	}

	// Deterministic rate: every 3rd read fails.
	f.FailEvery(storage.SSD, OpRead, 3)
	var failed int
	for i := 0; i < 9; i++ {
		if _, err := f.Read(r); err != nil {
			failed++
		}
	}
	if failed != 3 {
		t.Fatalf("FailEvery(3) failed %d of 9 reads, want 3", failed)
	}
	if got := f.Stats().PerTier[storage.SSD].Read.Errors; got != 3 {
		t.Fatalf("stats fold injected read errors = %d, want 3", got)
	}
}

func TestCalibrateReportsMeasuredAndModeled(t *testing.T) {
	l := testLocal(t)
	r := req(storage.Memory, "worker-0/mem-0", 3, 4*storage.MB)
	if _, err := l.Write(r); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Read(r); err != nil {
		t.Fatal(err)
	}
	cal := Calibrate("real", l.TierDir(storage.Memory), false, l.Stats())
	if cal.Backend != "real" || len(cal.Tiers) != 3 {
		t.Fatalf("calibration shape: backend=%q tiers=%d", cal.Backend, len(cal.Tiers))
	}
	mem := cal.Tiers[storage.Memory]
	if mem.Tier != "MEM" {
		t.Fatalf("tier label = %q", mem.Tier)
	}
	if mem.Write.Count != 1 || mem.Write.MeanUS <= 0 || mem.Write.MBps <= 0 {
		t.Fatalf("measured write block = %+v", mem.Write)
	}
	if mem.SimProfile.ReadMBps != 4000 || mem.SimProfile.BaseLatencyUS != 50 {
		t.Fatalf("sim profile = %+v", mem.SimProfile)
	}
}

func TestMergeStatsAcrossShards(t *testing.T) {
	a, b := testLocal(t), testLocal(t)
	if _, err := a.Write(req(storage.SSD, "worker-0/ssd-0", 1, storage.MB)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write(req(storage.SSD, "worker-0/ssd-0", 1, 2*storage.MB)); err != nil {
		t.Fatal(err)
	}
	m := MergeStats(a.Stats(), b.Stats()).PerTier[storage.SSD].Write
	if m.Count != 2 || m.Bytes != 3*storage.MB {
		t.Fatalf("merged write stats = %+v", m)
	}
	if m.MinNS <= 0 || m.MaxNS < m.MinNS {
		t.Fatalf("merged envelope = min %d max %d", m.MinNS, m.MaxNS)
	}
}
