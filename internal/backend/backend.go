// Package backend is the physical half of the data plane: where the
// simulator's storage.DataPlane decides *when* a transfer completes in
// virtual time, a Backend decides *what happens to the bytes*. The dfs
// layer calls a Backend synchronously at every block-replica state change
// (create, read, move, copy, delete, migrate), so a physical backend
// mirrors the control plane's replica map onto real storage while the
// virtual clock keeps driving all policy timing and event ordering.
//
// Two implementations ship: Sim (a no-op — the bytes exist only as
// accounting, exactly the pre-backend behaviour) and Local (one real
// directory per tier, real file I/O, measured wall-clock service times).
// Faulty wraps any Backend with per-tier fault injection for testing the
// control plane's error paths without real media failures.
//
// Contract for implementations: calls must be synchronous, must not
// schedule simulation events, and must not draw from any shared random
// stream — policy decisions have to be bit-for-bit identical whichever
// backend is attached. Errors returned from Write/Read are surfaced to the
// caller (dfs rolls the operation back and the movement executor counts
// the failure and retries on a later sweep); Delete errors are counted in
// Stats but not propagated, since replica teardown must not fail halfway.
package backend

import (
	"time"

	"octostore/internal/storage"
)

// Op labels the three physical operations a backend performs.
type Op int

const (
	// OpWrite materializes one block replica's bytes on a tier device.
	OpWrite Op = iota
	// OpRead streams one block replica's bytes back.
	OpRead
	// OpDelete drops one block replica's bytes.
	OpDelete
	numOps
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpDelete:
		return "delete"
	default:
		return "op?"
	}
}

// Ops enumerates the operations, for stats iteration.
var Ops = [numOps]Op{OpWrite, OpRead, OpDelete}

// Request identifies one block replica and the context of the operation on
// it. (DeviceID, BlockID) is the replica's physical identity — a block has
// at most one replica per device — and Media locates the tier. Class and
// Tenant carry the control plane's I/O labeling for tracing; they do not
// change what the backend does.
type Request struct {
	Media    storage.Media
	Class    storage.IOClass
	Tenant   storage.TenantID
	DeviceID string
	BlockID  int64
	Bytes    int64
}

// Backend mirrors block-replica state changes onto physical storage.
// Implementations must be safe for concurrent use: writes, moves, and
// deletes arrive from core loops (one per shard), reads additionally from
// client goroutines.
type Backend interface {
	// Physical reports whether the backend performs real I/O. The serving
	// layer only routes client reads (and their measured wall-clock
	// latencies) through physical backends; Sim returns false so attaching
	// it changes nothing.
	Physical() bool
	// Write materializes the replica's bytes, returning the measured wall
	// time of the operation.
	Write(req Request) (time.Duration, error)
	// Read streams the replica's bytes, returning the measured wall time.
	Read(req Request) (time.Duration, error)
	// Delete drops the replica's bytes. Errors are recorded in Stats; the
	// returned error is informational (callers tearing replicas down do not
	// roll back on it).
	Delete(req Request) (time.Duration, error)
	// Stats snapshots the per-tier, per-op counters.
	Stats() Stats
}

// OpStats aggregates one (tier, op) cell: completed operations, bytes
// touched, errors, and the wall-time distribution envelope.
type OpStats struct {
	Count  int64
	Bytes  int64
	Errors int64
	WallNS int64 // total wall time across Count operations
	MinNS  int64 // 0 when Count == 0
	MaxNS  int64
}

// merge folds o2 into o.
func (o *OpStats) merge(o2 OpStats) {
	o.Count += o2.Count
	o.Bytes += o2.Bytes
	o.Errors += o2.Errors
	o.WallNS += o2.WallNS
	if o2.Count > 0 && (o.MinNS == 0 || (o2.MinNS > 0 && o2.MinNS < o.MinNS)) {
		o.MinNS = o2.MinNS
	}
	if o2.MaxNS > o.MaxNS {
		o.MaxNS = o2.MaxNS
	}
}

// TierStats is one tier's operation counters.
type TierStats struct {
	Write  OpStats
	Read   OpStats
	Delete OpStats
}

// Op returns the cell for one operation.
func (t *TierStats) Op(op Op) *OpStats {
	switch op {
	case OpWrite:
		return &t.Write
	case OpRead:
		return &t.Read
	default:
		return &t.Delete
	}
}

// Stats is a point-in-time snapshot of a backend's counters.
type Stats struct {
	PerTier [3]TierStats // indexed by storage.Media
}

// MergeStats folds any number of snapshots (e.g. one per shard backend)
// into one.
func MergeStats(all ...Stats) Stats {
	var out Stats
	for _, s := range all {
		for t := range out.PerTier {
			for _, op := range Ops {
				out.PerTier[t].Op(op).merge(*s.PerTier[t].Op(op))
			}
		}
	}
	return out
}

// Sim is the simulator backend: block bytes exist only as device-capacity
// accounting and virtual-clock transfers, exactly the behaviour before the
// backend seam existed. Every method is a no-op, so a nil Backend and an
// attached Sim are bit-for-bit interchangeable.
type Sim struct{}

// Physical implements Backend.
func (Sim) Physical() bool { return false }

// Write implements Backend.
func (Sim) Write(Request) (time.Duration, error) { return 0, nil }

// Read implements Backend.
func (Sim) Read(Request) (time.Duration, error) { return 0, nil }

// Delete implements Backend.
func (Sim) Delete(Request) (time.Duration, error) { return 0, nil }

// Stats implements Backend.
func (Sim) Stats() Stats { return Stats{} }
