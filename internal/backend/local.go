package backend

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"octostore/internal/storage"
)

// Local is the real-file backend: each tier maps to a directory (point the
// memory tier at a tmpfs mount to make it byte-honest), each block replica
// to one file `<tierdir>/<deviceID>/<blockID>.blk`, and every operation is
// real I/O measured in wall-clock time. Capacity and admission stay with
// the control plane's virtual devices; the only errors Local produces are
// the real ones — ENOSPC, permission failures, a replica file missing.
//
// Block contents are a synthetic pattern (the control plane never stores
// client payloads), so a "copy" decomposes into a read of the source
// replica and a write of the destination — the same I/O a real copy costs.
type Local struct {
	dirs [3]string
	sync bool

	cells [3][numOps]opCell
	// madeDirs caches device directories already created, so the write path
	// does one sync.Map load instead of a MkdirAll syscall per block.
	madeDirs sync.Map
}

// LocalConfig configures a Local backend.
type LocalConfig struct {
	// Root is the base directory; tier subdirectories mem/, ssd/, hdd/ are
	// created under it for tiers without an explicit TierDirs entry.
	Root string
	// TierDirs, per storage.Media, overrides the tier's directory (e.g.
	// "/dev/shm/octostore" for the memory tier).
	TierDirs [3]string
	// SyncWrites fsyncs every written replica, measuring the media instead
	// of the page cache. Off by default: tiering decisions need relative
	// tier speeds, and a CI tmpdir has no distinct media anyway.
	SyncWrites bool
}

// opCell is one (tier, op) stats cell, updated lock-free.
type opCell struct {
	count  atomic.Int64
	bytes  atomic.Int64
	errs   atomic.Int64
	wallNS atomic.Int64
	minNS  atomic.Int64
	maxNS  atomic.Int64
}

func (c *opCell) observe(bytes int64, wall time.Duration, err error) {
	if err != nil {
		c.errs.Add(1)
		return
	}
	ns := wall.Nanoseconds()
	if ns <= 0 {
		ns = 1 // clock granularity floor; a zero would read as "no sample"
	}
	c.count.Add(1)
	c.bytes.Add(bytes)
	c.wallNS.Add(ns)
	for {
		old := c.minNS.Load()
		if old != 0 && old <= ns {
			break
		}
		if c.minNS.CompareAndSwap(old, ns) {
			break
		}
	}
	for {
		old := c.maxNS.Load()
		if old >= ns {
			break
		}
		if c.maxNS.CompareAndSwap(old, ns) {
			break
		}
	}
}

func (c *opCell) snapshot() OpStats {
	return OpStats{
		Count:  c.count.Load(),
		Bytes:  c.bytes.Load(),
		Errors: c.errs.Load(),
		WallNS: c.wallNS.Load(),
		MinNS:  c.minNS.Load(),
		MaxNS:  c.maxNS.Load(),
	}
}

// pattern is the synthetic block payload, written repeatedly. A non-zero
// byte spread defeats any file-system zero-detection shortcuts.
var pattern = func() []byte {
	buf := make([]byte, 256*1024)
	x := uint32(0x9e3779b9)
	for i := range buf {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		buf[i] = byte(x)
	}
	return buf
}()

// OpenLocal creates the tier directories and returns the backend.
func OpenLocal(cfg LocalConfig) (*Local, error) {
	l := &Local{sync: cfg.SyncWrites}
	names := [3]string{"mem", "ssd", "hdd"}
	for _, m := range storage.AllMedia {
		dir := cfg.TierDirs[m]
		if dir == "" {
			if cfg.Root == "" {
				return nil, fmt.Errorf("backend: no directory for %s tier (set Root or TierDirs)", m)
			}
			dir = filepath.Join(cfg.Root, names[m])
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("backend: %s tier dir: %w", m, err)
		}
		l.dirs[m] = dir
	}
	return l, nil
}

// TierDir returns the directory backing one tier.
func (l *Local) TierDir(m storage.Media) string { return l.dirs[m] }

// replicaPath maps a request to its on-disk file. Device ids contain a
// node/device path separator, giving each device its own subtree.
func (l *Local) replicaPath(req Request) string {
	return filepath.Join(l.dirs[req.Media], req.DeviceID, fmt.Sprintf("%d.blk", req.BlockID))
}

func (l *Local) deviceDir(req Request) (string, error) {
	dir := filepath.Join(l.dirs[req.Media], req.DeviceID)
	if _, ok := l.madeDirs.Load(dir); ok {
		return dir, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	l.madeDirs.Store(dir, struct{}{})
	return dir, nil
}

// Physical implements Backend.
func (l *Local) Physical() bool { return true }

// Write implements Backend: create (or truncate) the replica file and fill
// it with req.Bytes of pattern data.
func (l *Local) Write(req Request) (time.Duration, error) {
	start := time.Now()
	err := l.doWrite(req)
	wall := time.Since(start)
	l.cells[req.Media][OpWrite].observe(req.Bytes, wall, err)
	if err != nil {
		return wall, fmt.Errorf("backend: write %s: %w", l.replicaPath(req), err)
	}
	return wall, nil
}

func (l *Local) doWrite(req Request) error {
	if _, err := l.deviceDir(req); err != nil {
		return err
	}
	f, err := os.OpenFile(l.replicaPath(req), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	remaining := req.Bytes
	for remaining > 0 {
		chunk := int64(len(pattern))
		if chunk > remaining {
			chunk = remaining
		}
		if _, err := f.Write(pattern[:chunk]); err != nil {
			f.Close()
			os.Remove(f.Name()) // no half-written replicas on ENOSPC
			return err
		}
		remaining -= chunk
	}
	if l.sync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(f.Name())
			return err
		}
	}
	return f.Close()
}

// Read implements Backend: stream the replica file and verify its length.
func (l *Local) Read(req Request) (time.Duration, error) {
	start := time.Now()
	err := l.doRead(req)
	wall := time.Since(start)
	l.cells[req.Media][OpRead].observe(req.Bytes, wall, err)
	if err != nil {
		return wall, fmt.Errorf("backend: read %s: %w", l.replicaPath(req), err)
	}
	return wall, nil
}

// readBufs recycles read buffers across client goroutines.
var readBufs = sync.Pool{New: func() any { b := make([]byte, 256*1024); return &b }}

func (l *Local) doRead(req Request) error {
	f, err := os.Open(l.replicaPath(req))
	if err != nil {
		return err
	}
	defer f.Close()
	bufp := readBufs.Get().(*[]byte)
	defer readBufs.Put(bufp)
	var total int64
	for {
		n, err := f.Read(*bufp)
		total += int64(n)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
	}
	if total != req.Bytes {
		return fmt.Errorf("replica holds %d bytes, control plane expects %d", total, req.Bytes)
	}
	return nil
}

// Delete implements Backend: remove the replica file. A missing file is an
// error (the control plane believed a replica existed here), counted in
// Stats; callers tearing replicas down do not roll back on it.
func (l *Local) Delete(req Request) (time.Duration, error) {
	start := time.Now()
	err := os.Remove(l.replicaPath(req))
	wall := time.Since(start)
	l.cells[req.Media][OpDelete].observe(req.Bytes, wall, err)
	if err != nil {
		return wall, fmt.Errorf("backend: delete: %w", err)
	}
	return wall, nil
}

// Stats implements Backend.
func (l *Local) Stats() Stats {
	var s Stats
	for _, m := range storage.AllMedia {
		for _, op := range Ops {
			*s.PerTier[m].Op(op) = l.cells[m][op].snapshot()
		}
	}
	return s
}

// DiskUsage walks the tier directories and returns the live replica bytes
// per tier — the physical ground truth the differential tests reconcile
// against the control plane's capacity accounting.
func (l *Local) DiskUsage() ([3]int64, error) {
	var used [3]int64
	for _, m := range storage.AllMedia {
		err := filepath.Walk(l.dirs[m], func(_ string, info os.FileInfo, err error) error {
			if err != nil {
				return err
			}
			if !info.IsDir() {
				used[m] += info.Size()
			}
			return nil
		})
		if err != nil {
			return used, err
		}
	}
	return used, nil
}
