package backend

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"octostore/internal/storage"
)

// ErrInjected marks a failure produced by a Faulty wrapper rather than the
// underlying storage.
var ErrInjected = errors.New("backend: injected fault")

// Faulty wraps any Backend with per-tier, per-op fault injection: fail the
// next N operations outright, or fail every Nth operation (a deterministic
// error rate — no random stream, so runs stay reproducible). With no
// faults armed it is a transparent pass-through, which makes Faulty{Inner:
// Sim{}} the cheapest way to drive the control plane's error paths in
// tests.
type Faulty struct {
	Inner Backend

	mu       sync.Mutex
	failNext [3][numOps]int
	every    [3][numOps]int // fail each time seen%every == 0; 0 disables
	seen     [3][numOps]int
	injected [3][numOps]int64
}

// NewFaulty wraps inner with all faults disarmed.
func NewFaulty(inner Backend) *Faulty { return &Faulty{Inner: inner} }

// FailNext arms n immediate failures for (tier, op).
func (f *Faulty) FailNext(m storage.Media, op Op, n int) {
	f.mu.Lock()
	f.failNext[m][op] = n
	f.mu.Unlock()
}

// FailEvery makes every nth (tier, op) operation fail; n <= 0 disables.
func (f *Faulty) FailEvery(m storage.Media, op Op, n int) {
	f.mu.Lock()
	f.every[m][op] = n
	f.seen[m][op] = 0
	f.mu.Unlock()
}

// Injected returns how many (tier, op) failures were injected.
func (f *Faulty) Injected(m storage.Media, op Op) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected[m][op]
}

// inject decides whether this call fails.
func (f *Faulty) inject(m storage.Media, op Op) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failNext[m][op] > 0 {
		f.failNext[m][op]--
		f.injected[m][op]++
		return true
	}
	if n := f.every[m][op]; n > 0 {
		f.seen[m][op]++
		if f.seen[m][op]%n == 0 {
			f.injected[m][op]++
			return true
		}
	}
	return false
}

// Physical implements Backend.
func (f *Faulty) Physical() bool { return f.Inner.Physical() }

// Write implements Backend.
func (f *Faulty) Write(req Request) (time.Duration, error) {
	if f.inject(req.Media, OpWrite) {
		return 0, fmt.Errorf("%w: write %s block %d", ErrInjected, req.Media, req.BlockID)
	}
	return f.Inner.Write(req)
}

// Read implements Backend.
func (f *Faulty) Read(req Request) (time.Duration, error) {
	if f.inject(req.Media, OpRead) {
		return 0, fmt.Errorf("%w: read %s block %d", ErrInjected, req.Media, req.BlockID)
	}
	return f.Inner.Read(req)
}

// Delete implements Backend.
func (f *Faulty) Delete(req Request) (time.Duration, error) {
	if f.inject(req.Media, OpDelete) {
		return 0, fmt.Errorf("%w: delete %s block %d", ErrInjected, req.Media, req.BlockID)
	}
	return f.Inner.Delete(req)
}

// Stats implements Backend: the inner backend's counters with the injected
// failures folded into the error counts.
func (f *Faulty) Stats() Stats {
	s := f.Inner.Stats()
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, m := range storage.AllMedia {
		for _, op := range Ops {
			s.PerTier[m].Op(op).Errors += f.injected[m][op]
		}
	}
	return s
}
