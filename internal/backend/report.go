package backend

import (
	"octostore/internal/storage"
)

// This file builds the calibration report (BENCH_backend.json): the
// measured wall-clock service times of a physical backend, laid side by
// side with the simulator's per-tier service profiles so the two can be
// diffed — the ground truth loop the simulator's TierProfile numbers are
// calibrated against.

// OpCalibration summarizes one (tier, op) cell of measured operations.
type OpCalibration struct {
	Count  int64 `json:"count"`
	Bytes  int64 `json:"bytes"`
	Errors int64 `json:"errors,omitempty"`
	// Wall-time envelope of the completed operations.
	MeanUS float64 `json:"mean_us,omitempty"`
	MinUS  float64 `json:"min_us,omitempty"`
	MaxUS  float64 `json:"max_us,omitempty"`
	// MBps is the measured throughput (bytes over wall time).
	MBps float64 `json:"mbps,omitempty"`
}

func opCalibration(s OpStats) OpCalibration {
	c := OpCalibration{Count: s.Count, Bytes: s.Bytes, Errors: s.Errors}
	if s.Count > 0 && s.WallNS > 0 {
		c.MeanUS = float64(s.WallNS) / float64(s.Count) / 1e3
		c.MinUS = float64(s.MinNS) / 1e3
		c.MaxUS = float64(s.MaxNS) / 1e3
		c.MBps = float64(s.Bytes) / 1e6 / (float64(s.WallNS) / 1e9)
	}
	return c
}

// SimProfile is the simulator's service model for a tier, restated in the
// report's units for diffing against the measured columns.
type SimProfile struct {
	BaseLatencyUS float64 `json:"base_latency_us"`
	ReadMBps      float64 `json:"read_mbps"`
	WriteMBps     float64 `json:"write_mbps"`
}

// TierCalibration is one tier's measured-vs-modeled block.
type TierCalibration struct {
	Tier   string        `json:"tier"`
	Write  OpCalibration `json:"write"`
	Read   OpCalibration `json:"read"`
	Delete OpCalibration `json:"delete"`
	// SimProfile is the virtual plane's model for this tier
	// (storage.DefaultTierProfiles), for diffing measured against modeled.
	SimProfile SimProfile `json:"sim_profile"`
}

// Calibration is the BENCH_backend.json document.
type Calibration struct {
	Backend    string            `json:"backend"`
	Root       string            `json:"root,omitempty"`
	SyncWrites bool              `json:"sync_writes,omitempty"`
	Tiers      []TierCalibration `json:"tiers"`
}

// Calibrate builds the report from a stats snapshot (merge per-shard
// snapshots with MergeStats first). name is the backend label ("real"),
// root the physical location the run used.
func Calibrate(name, root string, syncWrites bool, s Stats) Calibration {
	profiles := storage.DefaultTierProfiles()
	cal := Calibration{Backend: name, Root: root, SyncWrites: syncWrites}
	for _, m := range storage.AllMedia {
		t := s.PerTier[m]
		p := profiles[m]
		cal.Tiers = append(cal.Tiers, TierCalibration{
			Tier:   m.String(),
			Write:  opCalibration(t.Write),
			Read:   opCalibration(t.Read),
			Delete: opCalibration(t.Delete),
			SimProfile: SimProfile{
				BaseLatencyUS: float64(p.BaseLatency.Nanoseconds()) / 1e3,
				ReadMBps:      p.ReadBW / 1e6,
				WriteMBps:     p.WriteBW / 1e6,
			},
		})
	}
	return cal
}
