package core

import (
	"testing"
	"time"

	"octostore/internal/cluster"
	"octostore/internal/dfs"
	"octostore/internal/sim"
	"octostore/internal/storage"
)

// env bundles a small Octopus++ test system.
type env struct {
	engine *sim.Engine
	fs     *dfs.FileSystem
	ctx    *Context
}

func newEnv(t *testing.T, mode dfs.Mode) *env {
	t.Helper()
	e := sim.NewEngine()
	c := cluster.MustNew(e, cluster.Config{
		Workers: 3, SlotsPerNode: 2, Spec: storage.SmallWorkerSpec(),
	})
	fs := dfs.MustNew(c, dfs.Config{Mode: mode, BlockSize: 16 * storage.MB, Seed: 3})
	cfg := DefaultConfig()
	cfg.PeriodicInterval = 30 * time.Second
	return &env{engine: e, fs: fs, ctx: NewContext(fs, cfg)}
}

func (ev *env) create(t *testing.T, path string, size int64) *dfs.File {
	t.Helper()
	var file *dfs.File
	var ferr error
	ev.fs.Create(path, size, func(f *dfs.File, err error) { file, ferr = f, err })
	ev.engine.Run()
	if ferr != nil {
		t.Fatalf("create %s: %v", path, ferr)
	}
	return file
}

// lruStub is a minimal downgrade policy for manager tests: watermark
// thresholds, LRU selection, default target.
type lruStub struct {
	NopCallbacks
	ctx     *Context
	selects int
}

func (p *lruStub) Name() string { return "stub-lru" }
func (p *lruStub) StartDowngrade(tier storage.Media) bool {
	return p.ctx.AboveHighWatermark(tier)
}
func (p *lruStub) StopDowngrade(tier storage.Media) bool {
	return p.ctx.BelowLowWatermark(tier)
}
func (p *lruStub) SelectFile(tier storage.Media) *dfs.File {
	p.selects++
	files := p.ctx.LRUFiles(tier, 0)
	if len(files) == 0 {
		return nil
	}
	return files[0]
}
func (p *lruStub) SelectTargetTier(f *dfs.File, from storage.Media) (storage.Media, bool) {
	to, ok := p.ctx.DefaultDowngradeTier(f, from)
	if !ok {
		return 0, true
	}
	return to, false
}

// osaStub upgrades every accessed non-memory file.
type osaStub struct {
	NopCallbacks
	ctx     *Context
	pending *dfs.File
}

func (p *osaStub) Name() string { return "stub-osa" }
func (p *osaStub) StartUpgrade(accessed *dfs.File) bool {
	if accessed == nil || accessed.HasReplicaOn(storage.Memory) {
		return false
	}
	p.pending = accessed
	return true
}
func (p *osaStub) SelectFile() *dfs.File {
	f := p.pending
	p.pending = nil
	return f
}
func (p *osaStub) SelectTargetTier(f *dfs.File, from storage.Media) (storage.Media, bool) {
	return p.ctx.DefaultUpgradeTier(f, from)
}
func (p *osaStub) StopUpgrade() bool { return p.pending == nil }

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.applyDefaults()
	d := DefaultConfig()
	if c != d {
		t.Fatalf("applyDefaults() = %+v, want %+v", c, d)
	}
	// Non-zero fields are preserved.
	c2 := Config{HighWatermark: 0.5}
	c2.applyDefaults()
	if c2.HighWatermark != 0.5 {
		t.Fatal("explicit field overwritten")
	}
	if c2.LowWatermark != d.LowWatermark {
		t.Fatal("zero field not defaulted")
	}
}

func TestContextRecordAndTouch(t *testing.T) {
	ev := newEnv(t, dfs.ModeOctopus)
	NewManager(ev.ctx, nil, nil)
	f := ev.create(t, "/f", 16*storage.MB)
	rec := ev.ctx.Record(f)
	if rec.Size != f.Size() {
		t.Fatalf("record size = %d", rec.Size)
	}
	if got := ev.ctx.LastTouch(f); !got.Equal(f.Created()) {
		t.Fatalf("LastTouch before access = %v", got)
	}
	ev.engine.RunFor(time.Minute)
	ev.fs.RecordAccess(f)
	if got := ev.ctx.LastTouch(f); !got.Equal(ev.engine.Now()) {
		t.Fatalf("LastTouch after access = %v, now = %v", got, ev.engine.Now())
	}
	if ev.ctx.AccessCount(f) != 1 {
		t.Fatalf("AccessCount = %d", ev.ctx.AccessCount(f))
	}
}

func TestEligibleFilesFiltersTierAndBusy(t *testing.T) {
	ev := newEnv(t, dfs.ModeOctopus)
	m := NewManager(ev.ctx, nil, nil)
	f1 := ev.create(t, "/f1", 16*storage.MB)
	f2 := ev.create(t, "/f2", 16*storage.MB)
	elig := ev.ctx.EligibleFiles(storage.Memory)
	if len(elig) != 2 {
		t.Fatalf("eligible = %d, want 2", len(elig))
	}
	m.busy[f1.ID()] = true
	elig = ev.ctx.EligibleFiles(storage.Memory)
	if len(elig) != 1 || elig[0] != f2 {
		t.Fatalf("eligible after busy = %v", elig)
	}
}

func TestLRUFilesOrdering(t *testing.T) {
	ev := newEnv(t, dfs.ModeOctopus)
	NewManager(ev.ctx, nil, nil)
	f1 := ev.create(t, "/f1", 16*storage.MB)
	f2 := ev.create(t, "/f2", 16*storage.MB)
	ev.engine.RunFor(time.Minute)
	ev.fs.RecordAccess(f1) // f1 now most recently used
	files := ev.ctx.LRUFiles(storage.Memory, 0)
	if len(files) != 2 || files[0] != f2 || files[1] != f1 {
		t.Fatalf("LRU order wrong")
	}
	if got := ev.ctx.LRUFiles(storage.Memory, 1); len(got) != 1 || got[0] != f2 {
		t.Fatal("k truncation wrong")
	}
}

func TestUpgradeCandidatesExcludeMemoryResident(t *testing.T) {
	ev := newEnv(t, dfs.ModeOctopus)
	NewManager(ev.ctx, nil, nil)
	f := ev.create(t, "/f", 16*storage.MB)
	if got := ev.ctx.UpgradeCandidates(10); len(got) != 0 {
		t.Fatalf("memory-resident file offered for upgrade: %v", got)
	}
	if err := ev.fs.DeleteFileReplicas(f, storage.Memory); err != nil {
		t.Fatal(err)
	}
	got := ev.ctx.UpgradeCandidates(10)
	if len(got) != 1 || got[0] != f {
		t.Fatalf("UpgradeCandidates = %v", got)
	}
}

func TestManagerDowngradesWhenTierFills(t *testing.T) {
	ev := newEnv(t, dfs.ModeOctopus)
	down := &lruStub{ctx: ev.ctx}
	m := NewManager(ev.ctx, down, nil)
	// Memory: 3 nodes x 64 MB = 192 MB. Each 16 MB file puts 16 MB in
	// memory. Write 12 files => 192 MB => 100% without downgrades.
	for i := 0; i < 12; i++ {
		ev.create(t, pathN(i), 16*storage.MB)
		ev.engine.Run()
	}
	if got := ev.fs.TierUtilization(storage.Memory); got > 0.90 {
		t.Fatalf("memory still at %.2f; manager failed to downgrade", got)
	}
	if m.Metrics().DowngradesScheduled == 0 {
		t.Fatal("no downgrades recorded")
	}
	if ev.fs.Stats().BytesDowngradedTo[storage.SSD] == 0 {
		t.Fatal("no bytes downgraded to SSD")
	}
}

func pathN(i int) string {
	return "/files/f" + string(rune('a'+i/26)) + string(rune('a'+i%26))
}

func TestManagerUpgradeOnAccess(t *testing.T) {
	ev := newEnv(t, dfs.ModePinnedHDD)
	up := &osaStub{ctx: ev.ctx}
	m := NewManager(ev.ctx, nil, up)
	f := ev.create(t, "/f", 16*storage.MB)
	ev.fs.RecordAccess(f)
	ev.engine.Run()
	if !f.HasReplicaOn(storage.Memory) {
		t.Fatal("accessed file not upgraded to memory")
	}
	if m.Metrics().UpgradesScheduled != 1 {
		t.Fatalf("upgrades = %d", m.Metrics().UpgradesScheduled)
	}
	// A second access must not double-upgrade.
	ev.fs.RecordAccess(f)
	ev.engine.Run()
	if m.Metrics().UpgradesScheduled != 1 {
		t.Fatal("upgraded a memory-resident file")
	}
}

func TestManagerPeriodicTick(t *testing.T) {
	ev := newEnv(t, dfs.ModeOctopus)
	down := &lruStub{ctx: ev.ctx}
	m := NewManager(ev.ctx, down, nil)
	m.Start()
	ev.engine.RunFor(5 * time.Minute)
	if m.Metrics().Ticks < 9 {
		t.Fatalf("ticks = %d, want ~10", m.Metrics().Ticks)
	}
	m.Stop()
	before := m.Metrics().Ticks
	ev.engine.RunFor(5 * time.Minute)
	if m.Metrics().Ticks != before {
		t.Fatal("ticks continued after Stop")
	}
	m.Start()
	ev.engine.RunFor(time.Minute)
	if m.Metrics().Ticks == before {
		t.Fatal("restart did not resume ticks")
	}
}

func TestManagerTracksDeletes(t *testing.T) {
	ev := newEnv(t, dfs.ModeOctopus)
	NewManager(ev.ctx, nil, nil)
	f := ev.create(t, "/f", 16*storage.MB)
	if ev.ctx.Tracker.Len() != 1 {
		t.Fatalf("tracker len = %d", ev.ctx.Tracker.Len())
	}
	if err := ev.fs.Delete(f.Path()); err != nil {
		t.Fatal(err)
	}
	if ev.ctx.Tracker.Len() != 0 {
		t.Fatal("tracker retains deleted file")
	}
}

func TestMonitorConcurrencyLimit(t *testing.T) {
	ev := newEnv(t, dfs.ModeOctopus)
	NewManager(ev.ctx, nil, nil) // busy bookkeeping not needed here
	mo := NewMonitor(ev.fs, 1, 0)
	f1 := ev.create(t, "/f1", 16*storage.MB)
	f2 := ev.create(t, "/f2", 16*storage.MB)
	var done int
	mo.Enqueue(MoveRequest{File: f1, From: storage.Memory, To: storage.SSD, Done: func(err error) {
		if err != nil {
			t.Errorf("move f1: %v", err)
		}
		done++
	}})
	mo.Enqueue(MoveRequest{File: f2, From: storage.Memory, To: storage.SSD, Done: func(err error) {
		if err != nil {
			t.Errorf("move f2: %v", err)
		}
		done++
	}})
	if mo.Active() != 1 || mo.QueueLen() != 1 {
		t.Fatalf("active=%d queue=%d, want 1/1", mo.Active(), mo.QueueLen())
	}
	ev.engine.Run()
	if done != 2 || mo.MovesDone() != 2 {
		t.Fatalf("done=%d movesDone=%d", done, mo.MovesDone())
	}
}

func TestMonitorFailedMoveReported(t *testing.T) {
	ev := newEnv(t, dfs.ModeOctopus)
	mo := NewMonitor(ev.fs, 2, 0)
	f := ev.create(t, "/f", 16*storage.MB)
	var gotErr error
	// Moving from a tier with no replica fails synchronously.
	if err := ev.fs.DeleteFileReplicas(f, storage.SSD); err != nil {
		t.Fatal(err)
	}
	mo.Enqueue(MoveRequest{File: f, From: storage.SSD, To: storage.HDD, Done: func(err error) { gotErr = err }})
	ev.engine.Run() // the move begins after the (zero) command latency
	if gotErr == nil {
		t.Fatal("failed move not reported")
	}
	if mo.MovesFailed() != 1 {
		t.Fatalf("movesFailed = %d", mo.MovesFailed())
	}
}

func TestMonitorRepairsUnderReplication(t *testing.T) {
	ev := newEnv(t, dfs.ModeOctopus)
	mo := NewMonitor(ev.fs, 2, 0)
	f := ev.create(t, "/f", 16*storage.MB)
	if err := ev.fs.DeleteFileReplicas(f, storage.HDD); err != nil {
		t.Fatal(err)
	}
	if n := mo.CheckReplication(); n != 1 {
		t.Fatalf("repairs initiated = %d", n)
	}
	ev.engine.Run()
	if !f.HasReplicaOn(storage.HDD) {
		t.Fatal("repair did not restore the HDD replica")
	}
	if got := f.Blocks()[0].ReadableReplicas(); got != 3 {
		t.Fatalf("replicas after repair = %d", got)
	}
}

func TestEffectiveUtilizationAccountsPendingReleases(t *testing.T) {
	ev := newEnv(t, dfs.ModeOctopus)
	down := &lruStub{ctx: ev.ctx}
	m := NewManager(ev.ctx, down, nil)
	for i := 0; i < 11; i++ {
		ev.create(t, pathN(i), 16*storage.MB)
	}
	// Trigger a downgrade cycle manually while moves are in flight.
	m.runDowngrade(storage.Memory, "test")
	raw := ev.fs.TierUtilization(storage.Memory)
	eff := ev.ctx.EffectiveUtilization(storage.Memory)
	if eff > raw {
		t.Fatalf("effective %v > raw %v", eff, raw)
	}
	ev.engine.Run()
	if got := ev.ctx.EffectiveUtilization(storage.Memory); got != ev.fs.TierUtilization(storage.Memory) {
		t.Fatalf("after drain: eff %v != raw %v", got, ev.fs.TierUtilization(storage.Memory))
	}
}

func TestDefaultDowngradeTierPrefersNextLower(t *testing.T) {
	ev := newEnv(t, dfs.ModeOctopus)
	NewManager(ev.ctx, nil, nil)
	f := ev.create(t, "/f", 16*storage.MB)
	to, ok := ev.ctx.DefaultDowngradeTier(f, storage.Memory)
	if !ok || to != storage.SSD {
		t.Fatalf("DefaultDowngradeTier = %v, %v", to, ok)
	}
	// Fill SSD: next choice is HDD.
	for _, n := range ev.fs.Cluster().Nodes() {
		for _, d := range n.Devices(storage.SSD) {
			if err := d.Reserve(d.Free()); err != nil {
				t.Fatal(err)
			}
		}
	}
	to, ok = ev.ctx.DefaultDowngradeTier(f, storage.Memory)
	if !ok || to != storage.HDD {
		t.Fatalf("with full SSD: %v, %v", to, ok)
	}
}

func TestDefaultUpgradeTierMemoryOnly(t *testing.T) {
	ev := newEnv(t, dfs.ModePinnedHDD)
	NewManager(ev.ctx, nil, nil)
	f := ev.create(t, "/f", 16*storage.MB)
	to, ok := ev.ctx.DefaultUpgradeTier(f, storage.HDD)
	if !ok || to != storage.Memory {
		t.Fatalf("DefaultUpgradeTier = %v, %v", to, ok)
	}
	for _, n := range ev.fs.Cluster().Nodes() {
		for _, d := range n.Devices(storage.Memory) {
			if err := d.Reserve(d.Free()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, ok := ev.ctx.DefaultUpgradeTier(f, storage.HDD); ok {
		t.Fatal("upgrade offered into a full memory tier")
	}
}

func TestCooldownAfterFailedMove(t *testing.T) {
	ev := newEnv(t, dfs.ModeOctopus)
	down := &lruStub{ctx: ev.ctx}
	m := NewManager(ev.ctx, down, nil)
	f := ev.create(t, "/f", 16*storage.MB)
	// Fill SSD and HDD so every downgrade target fails.
	for _, n := range ev.fs.Cluster().Nodes() {
		for _, media := range []storage.Media{storage.SSD, storage.HDD} {
			for _, d := range n.Devices(media) {
				if err := d.Reserve(d.Free()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	m.scheduleDowngrade(f, storage.Memory, storage.SSD, "test")
	ev.engine.Run()
	if m.Metrics().DowngradeErrors != 1 {
		t.Fatalf("downgrade errors = %d", m.Metrics().DowngradeErrors)
	}
	if !m.inCooldown(f) {
		t.Fatal("failed file not in cooldown")
	}
	if got := ev.ctx.EligibleFiles(storage.Memory); len(got) != 0 {
		t.Fatal("cooldown file still eligible")
	}
	ev.engine.RunFor(2 * failureCooldown)
	if m.inCooldown(f) {
		t.Fatal("cooldown never expires")
	}
}
