package core

// This file implements the incremental candidate indexes that replace the
// manager's per-tick full scans of FS.LiveFiles(). The paper's overhead
// claim (Section 7.7: tier management stays negligible on a busy cluster)
// only holds when the management plane is sublinear in the number of
// managed files, so selection state is maintained event by event through
// the file-system notifications instead of being rebuilt per decision:
//
//   - per-tier recency heaps ordered by (last touch, file id) serve the LRU
//     downgrade policy and the XGB policy's "k least recently used files"
//     candidate collection in O(log N) / O(k log N);
//   - per-tier frequency heaps ordered by (access count, last touch, id)
//     serve the LFU downgrade policy;
//   - one most-recently-used heap over files not resident in memory serves
//     Context.UpgradeCandidates (the XGB upgrade policy's "k most recently
//     used files", Section 6.1) without sorting the live-file set;
//   - a subscription feed forwards per-tier residency flips to policies
//     that keep their own ordered state (the LRFU/EXD lazy weight heaps in
//     internal/policy).
//
// Membership follows the all-or-nothing residency property: a file appears
// in the structures of exactly the tiers holding a replica of every block,
// maintained from dfs.Listener FileTierChanged flips plus file
// creation/deletion. Dynamic predicates (manager busy marks, failure
// cooldowns) are filtered at selection time, not indexed.

import (
	"fmt"
	"time"

	"octostore/internal/dfs"
	"octostore/internal/storage"
)

// HeapKey orders files inside a FileHeap: ascending weight, then time, then
// file id. Policies use the fields they need and zero the rest. The time
// component is kept as Unix nanoseconds (see timeKey) rather than a
// time.Time: a key is stored once per heap membership, and at a million
// indexed files the 16-byte difference per entry is real memory.
type HeapKey struct {
	W  float64
	T  int64 // timeKey-encoded ordering time
	ID dfs.FileID
}

// timeKey encodes a time for HeapKey ordering: Unix nanoseconds, with the
// zero time mapping to 0 so "no time" keys compare equal regardless of how
// they were produced. Simulation times are all well past 1970, so they
// order identically to time.Time.Before and never collide with 0.
func timeKey(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// Less is the ascending HeapKey order.
func (a HeapKey) Less(b HeapKey) bool {
	if a.W != b.W {
		return a.W < b.W
	}
	if a.T != b.T {
		return a.T < b.T
	}
	return a.ID < b.ID
}

// heapEntry is one indexed file, stored by value in the heap's slot table.
// Entries hold only the ordering key (which embeds the file id); the
// *dfs.File is resolved on demand through the heap's resolver, so a
// million-entry heap retains ids and keys, not pointers into the namespace.
type heapEntry struct {
	key HeapKey
	pos int32 // index into items, or the next free slot when on the free list
}

// FileHeap is an indexed binary min-heap of files with O(log N)
// insert/update/remove and allocation-free ordered selection (popped
// entries are restored from a reused scratch buffer). The comparator is
// fixed at construction, so the same structure serves ascending recency
// (LRU), descending recency (upgrade MRU), frequency, and weight orders.
//
// Entries live by value in a slot table addressed through small int32
// handles (items/byID hold slots, not pointers): one table allocation
// amortises over its capacity, and per-entry footprint stays at key +
// handle instead of a heap object per file.
type FileHeap struct {
	slots   []int32 // file id → slot in store, -1 when not indexed
	store   []heapEntry
	free    int32   // head of the free-slot list (-1 when empty)
	items   []int32 // heap order → slot
	stash   []int32 // reused scratch for pop-and-restore walks
	less    func(a, b HeapKey) bool
	resolve func(dfs.FileID) *dfs.File
}

// NewFileHeap builds an empty heap with the given comparator (nil means
// the ascending HeapKey.Less order) and file resolver. The resolver maps
// an indexed id back to its file when a selection or visit callback needs
// one; ids that no longer resolve are treated as ineligible.
func NewFileHeap(less func(a, b HeapKey) bool, resolve func(dfs.FileID) *dfs.File) *FileHeap {
	if less == nil {
		less = HeapKey.Less
	}
	if resolve == nil {
		panic("core: NewFileHeap needs a file resolver")
	}
	return &FileHeap{free: -1, less: less, resolve: resolve}
}

// TimeDescending orders by most recent time first (ties toward lower id);
// the weight component is ignored.
func TimeDescending(a, b HeapKey) bool {
	if a.T != b.T {
		return a.T > b.T
	}
	return a.ID < b.ID
}

// Len returns the number of indexed files.
func (h *FileHeap) Len() int { return len(h.items) }

// slotOf returns the store slot of a file id, or -1. File ids are dense
// (assigned sequentially by the file system), so the id index is a flat
// int32 slice rather than a map: four bytes per id instead of a map entry,
// and no bucket arrays pinned at the namespace's high-water mark.
func (h *FileHeap) slotOf(id dfs.FileID) int32 {
	if id < 0 || int64(id) >= int64(len(h.slots)) {
		return -1
	}
	return h.slots[id]
}

// Has reports whether the file is indexed.
func (h *FileHeap) Has(id dfs.FileID) bool { return h.slotOf(id) >= 0 }

// alloc takes a slot off the free list or extends the slot table.
func (h *FileHeap) alloc() int32 {
	if h.free >= 0 {
		s := h.free
		h.free = h.store[s].pos
		return s
	}
	h.store = append(h.store, heapEntry{})
	return int32(len(h.store) - 1)
}

// Update inserts the file or re-keys it in place.
func (h *FileHeap) Update(f *dfs.File, w float64, t time.Time) {
	id := f.ID()
	key := HeapKey{W: w, T: timeKey(t), ID: id}
	if s := h.slotOf(id); s >= 0 {
		h.store[s].key = key
		h.fix(h.store[s].pos)
		return
	}
	s := h.alloc()
	h.store[s] = heapEntry{key: key, pos: int32(len(h.items))}
	for int64(len(h.slots)) <= int64(id) {
		h.slots = append(h.slots, -1)
	}
	h.slots[id] = s
	h.items = append(h.items, s)
	h.up(h.store[s].pos)
}

// Remove drops the file if present.
func (h *FileHeap) Remove(id dfs.FileID) {
	s := h.slotOf(id)
	if s < 0 {
		return
	}
	h.slots[id] = -1
	last := int32(len(h.items) - 1)
	pos := h.store[s].pos
	h.items[pos] = h.items[last]
	h.store[h.items[pos]].pos = pos
	h.items = h.items[:last]
	if pos < last {
		h.fix(pos)
	}
	h.store[s] = heapEntry{pos: h.free} // return the slot to the free list
	h.free = s
}

// Rekey recomputes every entry's key with fn and re-heapifies in O(N); the
// lazy weight heaps use it when their evaluation horizon advances. Entries
// whose id no longer resolves keep their stored key.
func (h *FileHeap) Rekey(fn func(f *dfs.File) (float64, time.Time)) {
	for _, s := range h.items {
		e := &h.store[s]
		f := h.resolve(e.key.ID)
		if f == nil {
			continue
		}
		w, t := fn(f)
		e.key = HeapKey{W: w, T: timeKey(t), ID: e.key.ID}
	}
	for i := int32(len(h.items))/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

// Each visits every indexed entry in unspecified order. Entries whose id
// no longer resolves are skipped.
func (h *FileHeap) Each(fn func(f *dfs.File, key HeapKey)) {
	for _, s := range h.items {
		if f := h.resolve(h.store[s].key.ID); f != nil {
			fn(f, h.store[s].key)
		}
	}
}

// Key returns the stored key of a file.
func (h *FileHeap) Key(id dfs.FileID) (HeapKey, bool) {
	s := h.slotOf(id)
	if s < 0 {
		return HeapKey{}, false
	}
	return h.store[s].key, true
}

// SelectMin returns the minimum-key file passing the eligibility filter,
// or nil. Keys must be exact (not bounds). Ineligible prefixes are popped
// and restored, so the cost is O((s+1) log N) where s is the number of
// ineligible entries ahead of the winner.
func (h *FileHeap) SelectMin(eligible func(*dfs.File) bool) *dfs.File {
	var best *dfs.File
	h.stash = h.stash[:0]
	for len(h.items) > 0 {
		top := h.popTop()
		h.stash = append(h.stash, top)
		f := h.resolve(h.store[top].key.ID)
		if f != nil && (eligible == nil || eligible(f)) {
			best = f
			break
		}
	}
	h.restore()
	return best
}

// SelectMinLazy returns the file minimizing (trueW(f), f.ID()) among
// eligible entries, where stored weight keys are lower bounds of trueW
// (entries' T components must be zero). It pops entries while their bound
// could still beat the best exact weight seen, then restores them; with
// tight bounds this inspects a tiny prefix of the heap.
func (h *FileHeap) SelectMinLazy(eligible func(*dfs.File) bool, trueW func(*dfs.File) float64) *dfs.File {
	var best *dfs.File
	var bestKey HeapKey
	h.stash = h.stash[:0]
	for len(h.items) > 0 {
		if best != nil && h.less(bestKey, h.store[h.items[0]].key) {
			break
		}
		top := h.popTop()
		h.stash = append(h.stash, top)
		f := h.resolve(h.store[top].key.ID)
		if f == nil || (eligible != nil && !eligible(f)) {
			continue
		}
		tk := HeapKey{W: trueW(f), ID: f.ID()}
		if best == nil || h.less(tk, bestKey) {
			best, bestKey = f, tk
		}
	}
	h.restore()
	return best
}

// AscendWhile pops entries in ascending stored-key order while keep
// returns true for the next key, invoking visit on each eligible popped
// file, then restores every popped entry — the heap is left unchanged.
// keep is consulted with the top entry's stored key before each pop, so a
// caller whose keys are lower bounds can stop as soon as the bound proves
// no remaining entry matters (the EXD upgrade admission walks the
// memory-tier weight heap this way to sum a victim prefix without sorting
// the tier). Cost is O((v+s) log N) for v visited and s skipped entries.
func (h *FileHeap) AscendWhile(keep func(HeapKey) bool, eligible func(*dfs.File) bool, visit func(*dfs.File)) {
	h.stash = h.stash[:0]
	for len(h.items) > 0 && keep(h.store[h.items[0]].key) {
		top := h.popTop()
		h.stash = append(h.stash, top)
		f := h.resolve(h.store[top].key.ID)
		if f != nil && (eligible == nil || eligible(f)) {
			visit(f)
		}
	}
	h.restore()
}

// TopK appends up to k eligible files to out in heap order and returns the
// extended slice; the heap is left unchanged. Cost is O((k+s) log N).
func (h *FileHeap) TopK(k int, eligible func(*dfs.File) bool, out []*dfs.File) []*dfs.File {
	if k <= 0 {
		k = len(h.items)
	}
	taken := 0
	h.stash = h.stash[:0]
	for len(h.items) > 0 && taken < k {
		top := h.popTop()
		h.stash = append(h.stash, top)
		f := h.resolve(h.store[top].key.ID)
		if f != nil && (eligible == nil || eligible(f)) {
			out = append(out, f)
			taken++
		}
	}
	h.restore()
	return out
}

func (h *FileHeap) popTop() int32 {
	top := h.items[0]
	last := int32(len(h.items) - 1)
	h.items[0] = h.items[last]
	h.store[h.items[0]].pos = 0
	h.items = h.items[:last]
	if len(h.items) > 0 {
		h.down(0)
	}
	return top
}

func (h *FileHeap) restore() {
	for _, s := range h.stash {
		h.store[s].pos = int32(len(h.items))
		h.items = append(h.items, s)
		h.up(h.store[s].pos)
	}
	h.stash = h.stash[:0]
}

func (h *FileHeap) fix(pos int32) {
	if !h.up(pos) {
		h.down(pos)
	}
}

func (h *FileHeap) up(pos int32) bool {
	moved := false
	for pos > 0 {
		parent := (pos - 1) / 2
		if !h.less(h.store[h.items[pos]].key, h.store[h.items[parent]].key) {
			break
		}
		h.swap(pos, parent)
		pos = parent
		moved = true
	}
	return moved
}

func (h *FileHeap) down(pos int32) {
	n := int32(len(h.items))
	for {
		left := 2*pos + 1
		if left >= n {
			return
		}
		child := left
		if right := left + 1; right < n && h.less(h.store[h.items[right]].key, h.store[h.items[left]].key) {
			child = right
		}
		if !h.less(h.store[h.items[child]].key, h.store[h.items[pos]].key) {
			return
		}
		h.swap(pos, child)
		pos = child
	}
}

func (h *FileHeap) swap(i, j int32) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.store[h.items[i]].pos = i
	h.store[h.items[j]].pos = j
}

// ResidencySubscriber receives per-tier membership events derived from the
// file-system notifications; policies that keep their own ordered candidate
// state (the LRFU/EXD weight heaps) implement it and register through
// CandidateIndex.Subscribe.
type ResidencySubscriber interface {
	// OnTierResident fires when a complete file becomes fully resident on a
	// tier (and once per resident tier when the file is first seen).
	OnTierResident(f *dfs.File, tier storage.Media)
	// OnTierEvicted fires when the file stops being fully resident on the
	// tier.
	OnTierEvicted(f *dfs.File, tier storage.Media)
	// OnTrackedFileDeleted fires when the file leaves the namespace.
	OnTrackedFileDeleted(f *dfs.File)
}

// CandidateIndex is the Context's incremental selection state. Structures
// are built on demand — each policy declares what it needs at construction
// (RequireRecency, RequireFrequency, RequireUpgradeMRU) and pays only for
// that — and bootstrap from the currently live files, so construction order
// relative to file creation does not matter.
type CandidateIndex struct {
	ctx     *Context
	recency [3]*FileHeap // per tier: (lastTouch, id) ascending
	freq    [3]*FileHeap // per tier: (count, lastTouch, id) ascending
	mru     *FileHeap    // non-memory-resident files: lastTouch descending
	subs    []ResidencySubscriber
}

func newCandidateIndex(ctx *Context) *CandidateIndex { return &CandidateIndex{ctx: ctx} }

// RequireRecency enables the per-tier recency heaps (LRU selection and
// LRU-ordered top-k collection).
func (ix *CandidateIndex) RequireRecency() {
	if ix.recency[0] != nil {
		return
	}
	for _, m := range storage.AllMedia {
		ix.recency[m] = NewFileHeap(nil, ix.ctx.FS.FileByID)
	}
	ix.bootstrap(func(f *dfs.File, m storage.Media) {
		ix.recency[m].Update(f, 0, ix.ctx.LastTouch(f))
	}, nil)
}

// RequireFrequency enables the per-tier frequency heaps (LFU selection).
func (ix *CandidateIndex) RequireFrequency() {
	if ix.freq[0] != nil {
		return
	}
	for _, m := range storage.AllMedia {
		ix.freq[m] = NewFileHeap(nil, ix.ctx.FS.FileByID)
	}
	ix.bootstrap(func(f *dfs.File, m storage.Media) {
		ix.freq[m].Update(f, float64(ix.ctx.AccessCount(f)), ix.ctx.LastTouch(f))
	}, nil)
}

// RequireUpgradeMRU enables the most-recently-used heap over files not
// resident in memory (Context.UpgradeCandidates).
func (ix *CandidateIndex) RequireUpgradeMRU() {
	if ix.mru != nil {
		return
	}
	ix.mru = NewFileHeap(TimeDescending, ix.ctx.FS.FileByID)
	ix.bootstrap(nil, func(f *dfs.File) {
		if ix.upgradeIndexable(f) {
			ix.mru.Update(f, 0, ix.ctx.LastTouch(f))
		}
	})
}

// Subscribe registers a residency subscriber and replays the current
// membership to it, so late-constructed policies start consistent.
func (ix *CandidateIndex) Subscribe(s ResidencySubscriber) {
	ix.subs = append(ix.subs, s)
	for _, f := range ix.ctx.FS.LiveFiles() {
		if f.Deleted() || !ix.ctx.FS.Complete(f) {
			continue
		}
		for _, m := range storage.AllMedia {
			if f.HasReplicaOn(m) {
				s.OnTierResident(f, m)
			}
		}
	}
}

// bootstrap seeds newly enabled structures from the live-file index.
func (ix *CandidateIndex) bootstrap(perTier func(*dfs.File, storage.Media), perFile func(*dfs.File)) {
	for _, f := range ix.ctx.FS.LiveFiles() {
		if f.Deleted() || !ix.ctx.FS.Complete(f) {
			continue
		}
		if perFile != nil {
			perFile(f)
		}
		if perTier != nil {
			for _, m := range storage.AllMedia {
				if f.HasReplicaOn(m) {
					perTier(f, m)
				}
			}
		}
	}
}

// upgradeIndexable is the static part of the UpgradeCandidates predicate;
// busy and cooldown are filtered at selection time.
func (ix *CandidateIndex) upgradeIndexable(f *dfs.File) bool {
	return !f.Deleted() && len(f.Blocks()) > 0 && !f.HasReplicaOn(storage.Memory)
}

// --- event feed (driven by the Context's file-system listener) ---

func (ix *CandidateIndex) fileCreated(f *dfs.File) {
	touch := ix.ctx.LastTouch(f)
	for _, m := range storage.AllMedia {
		if !f.HasReplicaOn(m) {
			continue
		}
		if ix.recency[m] != nil {
			ix.recency[m].Update(f, 0, touch)
		}
		if ix.freq[m] != nil {
			ix.freq[m].Update(f, float64(ix.ctx.AccessCount(f)), touch)
		}
		for _, s := range ix.subs {
			s.OnTierResident(f, m)
		}
	}
	if ix.mru != nil && ix.upgradeIndexable(f) {
		ix.mru.Update(f, 0, touch)
	}
}

func (ix *CandidateIndex) fileAccessed(f *dfs.File) {
	id := f.ID()
	touch := ix.ctx.LastTouch(f)
	for _, m := range storage.AllMedia {
		if ix.recency[m] != nil && ix.recency[m].Has(id) {
			ix.recency[m].Update(f, 0, touch)
		}
		if ix.freq[m] != nil && ix.freq[m].Has(id) {
			ix.freq[m].Update(f, float64(ix.ctx.AccessCount(f)), touch)
		}
	}
	if ix.mru != nil && ix.mru.Has(id) {
		ix.mru.Update(f, 0, touch)
	}
}

func (ix *CandidateIndex) fileDeleted(f *dfs.File) {
	id := f.ID()
	for _, m := range storage.AllMedia {
		if ix.recency[m] != nil {
			ix.recency[m].Remove(id)
		}
		if ix.freq[m] != nil {
			ix.freq[m].Remove(id)
		}
	}
	if ix.mru != nil {
		ix.mru.Remove(id)
	}
	for _, s := range ix.subs {
		s.OnTrackedFileDeleted(f)
	}
}

func (ix *CandidateIndex) residencyChanged(f *dfs.File, m storage.Media, resident bool) {
	if resident {
		touch := ix.ctx.LastTouch(f)
		if ix.recency[m] != nil {
			ix.recency[m].Update(f, 0, touch)
		}
		if ix.freq[m] != nil {
			ix.freq[m].Update(f, float64(ix.ctx.AccessCount(f)), touch)
		}
		for _, s := range ix.subs {
			s.OnTierResident(f, m)
		}
	} else {
		if ix.recency[m] != nil {
			ix.recency[m].Remove(f.ID())
		}
		if ix.freq[m] != nil {
			ix.freq[m].Remove(f.ID())
		}
		for _, s := range ix.subs {
			s.OnTierEvicted(f, m)
		}
	}
	if ix.mru != nil && m == storage.Memory {
		if resident {
			ix.mru.Remove(f.ID())
		} else if ix.upgradeIndexable(f) {
			ix.mru.Update(f, 0, ix.ctx.LastTouch(f))
		}
	}
}

// --- selection API ---

// SelectLRU returns the least recently touched selectable file on the tier
// (the indexed equivalent of the LRU policy's linear min-scan).
func (ix *CandidateIndex) SelectLRU(tier storage.Media) *dfs.File {
	return ix.recency[tier].SelectMin(ix.ctx.eligFn)
}

// SelectLFU returns the least frequently used selectable file on the tier,
// ties toward least recently touched.
func (ix *CandidateIndex) SelectLFU(tier storage.Media) *dfs.File {
	return ix.freq[tier].SelectMin(ix.ctx.eligFn)
}

// LRUTopK appends up to k selectable files on the tier in least-recent
// order to out.
func (ix *CandidateIndex) LRUTopK(tier storage.Media, k int, out []*dfs.File) []*dfs.File {
	return ix.recency[tier].TopK(k, ix.ctx.eligFn, out)
}

// UpgradeTopK appends up to k selectable non-memory-resident files in
// most-recent order to out.
func (ix *CandidateIndex) UpgradeTopK(k int, out []*dfs.File) []*dfs.File {
	return ix.mru.TopK(k, ix.ctx.eligFn, out)
}

// HasRecency/HasFrequency/HasUpgradeMRU report which structures are live.
func (ix *CandidateIndex) HasRecency() bool    { return ix.recency[0] != nil }
func (ix *CandidateIndex) HasFrequency() bool  { return ix.freq[0] != nil }
func (ix *CandidateIndex) HasUpgradeMRU() bool { return ix.mru != nil }

// Audit validates every enabled structure against a from-scratch recompute
// of membership and keys: each tier structure must contain exactly the
// complete, live, fully resident files with their current tracker keys,
// and the MRU heap exactly the non-memory-resident candidates. The
// scenario replayer runs it with the deep invariant checks so node churn
// and re-replication cannot silently leak or strand indexed entries.
func (ix *CandidateIndex) Audit() error {
	want := make(map[dfs.FileID]*dfs.File)
	for _, m := range storage.AllMedia {
		for k := range want {
			delete(want, k)
		}
		for _, f := range ix.ctx.FS.LiveFiles() {
			if !f.Deleted() && ix.ctx.FS.Complete(f) && f.HasReplicaOn(m) {
				want[f.ID()] = f
			}
		}
		for _, h := range []*FileHeap{ix.recency[m], ix.freq[m]} {
			if h == nil {
				continue
			}
			if h.Len() != len(want) {
				return fmt.Errorf("core: index tier %v holds %d files, want %d", m, h.Len(), len(want))
			}
			var err error
			h.Each(func(f *dfs.File, key HeapKey) {
				if err != nil {
					return
				}
				if _, ok := want[f.ID()]; !ok {
					err = fmt.Errorf("core: index tier %v holds stray file %q", m, f.Path())
					return
				}
				if key.T != timeKey(ix.ctx.LastTouch(f)) {
					err = fmt.Errorf("core: index tier %v key time stale for %q", m, f.Path())
				}
			})
			if err != nil {
				return err
			}
		}
		if h := ix.freq[m]; h != nil {
			var err error
			h.Each(func(f *dfs.File, key HeapKey) {
				if err == nil && key.W != float64(ix.ctx.AccessCount(f)) {
					err = fmt.Errorf("core: index tier %v count stale for %q", m, f.Path())
				}
			})
			if err != nil {
				return err
			}
		}
	}
	if ix.mru != nil {
		for k := range want {
			delete(want, k)
		}
		for _, f := range ix.ctx.FS.LiveFiles() {
			if ix.ctx.FS.Complete(f) && ix.upgradeIndexable(f) {
				want[f.ID()] = f
			}
		}
		if ix.mru.Len() != len(want) {
			return fmt.Errorf("core: upgrade MRU holds %d files, want %d", ix.mru.Len(), len(want))
		}
		var err error
		ix.mru.Each(func(f *dfs.File, key HeapKey) {
			if err != nil {
				return
			}
			if _, ok := want[f.ID()]; !ok {
				err = fmt.Errorf("core: upgrade MRU holds stray file %q", f.Path())
				return
			}
			if key.T != timeKey(ix.ctx.LastTouch(f)) {
				err = fmt.Errorf("core: upgrade MRU key time stale for %q", f.Path())
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}
