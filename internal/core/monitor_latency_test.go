package core

import (
	"testing"
	"time"

	"octostore/internal/dfs"
	"octostore/internal/storage"
)

// TestMonitorMoveLatencyDelaysTransfer checks the command-path model: a
// move enqueued at t0 must not commit before t0+latency, and the source
// tier keeps serving reads in the meantime.
func TestMonitorMoveLatencyDelaysTransfer(t *testing.T) {
	ev := newEnv(t, dfs.ModeOctopus)
	const latency = 10 * time.Second
	mo := NewMonitor(ev.fs, 2, latency)
	f := ev.create(t, "/f", 16*storage.MB)
	start := ev.engine.Now()
	var doneAt time.Time
	mo.Enqueue(MoveRequest{File: f, From: storage.Memory, To: storage.SSD, Done: func(err error) {
		if err != nil {
			t.Errorf("move: %v", err)
		}
		doneAt = ev.engine.Now()
	}})
	// Before the latency elapses the file must still be readable from
	// memory (the move has not even started).
	ev.engine.RunFor(latency / 2)
	if !f.HasReplicaOn(storage.Memory) {
		t.Fatal("replica left memory before the command latency elapsed")
	}
	ev.engine.Run()
	if doneAt.Sub(start) < latency {
		t.Fatalf("move committed after %v, want >= %v", doneAt.Sub(start), latency)
	}
	if f.HasReplicaOn(storage.Memory) {
		t.Fatal("move never committed")
	}
}

// TestUpgradeDoesNotServeTriggeringAccess reproduces the paper's semantics
// end to end: with a realistic command latency, the read that triggers an
// OSA upgrade is served from the original tier; a later read hits memory.
func TestUpgradeDoesNotServeTriggeringAccess(t *testing.T) {
	ev := newEnv(t, dfs.ModePinnedHDD)
	ev.ctx.Cfg.MoveLatency = 5 * time.Second
	up := &osaStub{ctx: ev.ctx}
	NewManager(ev.ctx, nil, up)
	f := ev.create(t, "/f", 16*storage.MB)

	ev.fs.RecordAccess(f) // triggers the upgrade, which starts after 5 s
	var first dfs.ReadResult
	ev.fs.ReadBlock(f.Blocks()[0], nil, func(res dfs.ReadResult, err error) {
		if err != nil {
			t.Errorf("first read: %v", err)
		}
		first = res
	})
	ev.engine.RunFor(time.Second) // read completes well within the latency
	if first.Media != storage.HDD {
		t.Fatalf("triggering read served from %v, want HDD", first.Media)
	}

	ev.engine.RunFor(time.Minute) // upgrade commits
	if !f.HasReplicaOn(storage.Memory) {
		t.Fatal("upgrade never landed")
	}
	var second dfs.ReadResult
	ev.fs.ReadBlock(f.Blocks()[0], nil, func(res dfs.ReadResult, err error) { second = res })
	ev.engine.Run()
	if second.Media != storage.Memory {
		t.Fatalf("subsequent read served from %v, want Memory", second.Media)
	}
}
