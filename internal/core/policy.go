package core

import (
	"octostore/internal/dfs"
	"octostore/internal/storage"
)

// DowngradePolicy plugs into the Replication Manager's downgrade process
// (Algorithm 1). The four methods map one-to-one onto the decision points
// of Section 3.2.
type DowngradePolicy interface {
	// Name identifies the policy in experiment output (Table 1 acronyms).
	Name() string
	// StartDowngrade reports whether the downgrade process should begin for
	// the tier (decision point 1).
	StartDowngrade(tier storage.Media) bool
	// SelectFile picks the next file to downgrade from the tier (decision
	// point 2), or nil when no candidate remains.
	SelectFile(tier storage.Media) *dfs.File
	// SelectTargetTier picks where the file's replica goes (decision point
	// 3). delete=true means the replica is dropped instead of moved.
	SelectTargetTier(f *dfs.File, from storage.Media) (to storage.Media, del bool)
	// StopDowngrade reports whether the process should stop (decision
	// point 4).
	StopDowngrade(tier storage.Media) bool

	FileCallbacks
}

// UpgradePolicy plugs into the upgrade process (Algorithm 2). accessed is
// the file whose access triggered the invocation, or nil for a periodic
// proactive invocation (Section 6.1).
type UpgradePolicy interface {
	// Name identifies the policy (Table 2 acronyms).
	Name() string
	// StartUpgrade reports whether the upgrade process should begin.
	StartUpgrade(accessed *dfs.File) bool
	// SelectFile picks the next file to upgrade, or nil to finish. The
	// first call receives the triggering file through StartUpgrade; most
	// policies return that file once (Section 6.2).
	SelectFile() *dfs.File
	// SelectTargetTier picks the destination tier for the file currently
	// residing no higher than `from`.
	SelectTargetTier(f *dfs.File, from storage.Media) (to storage.Media, ok bool)
	// StopUpgrade reports whether the process should stop.
	StopUpgrade() bool

	FileCallbacks
}

// FileCallbacks are the notification hooks every policy receives
// (Section 3.3: "callback methods for receiving notifications after a file
// creation, access, modification, or deletion").
type FileCallbacks interface {
	OnFileCreated(f *dfs.File)
	OnFileAccessed(f *dfs.File)
	OnFileDeleted(f *dfs.File)
}

// Ticker is an optional extension for policies needing periodic work (the
// XGB policies sample training data and make proactive decisions on ticks).
type Ticker interface {
	Tick()
}

// NopCallbacks can be embedded by policies that ignore notifications.
type NopCallbacks struct{}

// OnFileCreated implements FileCallbacks.
func (NopCallbacks) OnFileCreated(*dfs.File) {}

// OnFileAccessed implements FileCallbacks.
func (NopCallbacks) OnFileAccessed(*dfs.File) {}

// OnFileDeleted implements FileCallbacks.
func (NopCallbacks) OnFileDeleted(*dfs.File) {}
