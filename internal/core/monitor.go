package core

import (
	"time"

	"octostore/internal/dfs"
	"octostore/internal/storage"
)

// MoveRequest asks the monitor to relocate a file's replicas between tiers.
type MoveRequest struct {
	File *dfs.File
	From storage.Media
	To   storage.Media
	// Done fires when the move commits or fails (never nil after Enqueue).
	Done func(error)

	// Provenance: which policy decided this move, what triggered the
	// decision, and the file's tracker stats at decision time. Inert in the
	// core (the monitor ignores them); the serving layer's executor exports
	// them as movement-provenance records so "why did this file move" is
	// answerable post-hoc.
	Policy      string
	Trigger     string
	AccessCount int64
	LastAccess  time.Time
}

// Monitor is the Replication Monitor (Section 3.3): it executes data
// movement requests from the Replication Manager asynchronously with
// bounded concurrency, and repairs under-replicated files it finds while
// monitoring the system. Its transfers run through the file system's
// movement mechanics, so with a storage.DataPlane attached every move and
// repair draws bandwidth from the shared per-physical-device channels —
// the monitor contends with the serve path and with other shards' movers
// exactly like the serving layer's MovementExecutor does.
type Monitor struct {
	fs            *dfs.FileSystem
	maxConcurrent int
	latency       time.Duration
	queue         []MoveRequest
	active        int

	movesStarted int64
	movesDone    int64
	movesFailed  int64
	repairs      int64
}

// NewMonitor builds a monitor over the file system. latency delays the
// start of each transfer, modelling the request's path through worker
// heartbeats; it ensures an upgrade never serves the access that triggered
// it.
func NewMonitor(fs *dfs.FileSystem, maxConcurrent int, latency time.Duration) *Monitor {
	if maxConcurrent <= 0 {
		maxConcurrent = 1
	}
	if latency < 0 {
		latency = 0
	}
	return &Monitor{fs: fs, maxConcurrent: maxConcurrent, latency: latency}
}

// QueueLen returns the number of requests waiting for a slot.
func (mo *Monitor) QueueLen() int { return len(mo.queue) }

// Active returns the number of in-flight moves.
func (mo *Monitor) Active() int { return mo.active }

// MovesDone returns the count of successfully committed moves.
func (mo *Monitor) MovesDone() int64 { return mo.movesDone }

// MovesFailed returns the count of failed move attempts.
func (mo *Monitor) MovesFailed() int64 { return mo.movesFailed }

// Repairs returns how many re-replications the monitor has initiated.
func (mo *Monitor) Repairs() int64 { return mo.repairs }

// Enqueue schedules a move request for execution.
func (mo *Monitor) Enqueue(r MoveRequest) {
	if r.Done == nil {
		r.Done = func(error) {}
	}
	mo.queue = append(mo.queue, r)
	mo.pump()
}

// pump starts queued requests while concurrency slots are available.
func (mo *Monitor) pump() {
	for mo.active < mo.maxConcurrent && len(mo.queue) > 0 {
		r := mo.queue[0]
		mo.queue = mo.queue[1:]
		mo.start(r)
	}
}

func (mo *Monitor) start(r MoveRequest) {
	mo.active++
	mo.movesStarted++
	mo.fs.Engine().Schedule(mo.latency, func() {
		err := mo.fs.MoveFileReplicas(r.File, r.From, r.To, func(asyncErr error) {
			mo.active--
			mo.movesDone++
			r.Done(asyncErr)
			mo.pump()
		})
		if err != nil {
			mo.active--
			mo.movesFailed++
			r.Done(err)
			mo.pump()
		}
	})
}

// CheckReplication scans for under-replicated files and re-replicates their
// missing copies, the monitor's "monitoring the overall system for any
// over- or under-replicated blocks" duty. The copy targets the lowest tier
// that some block is missing (durability, not performance). It returns the
// number of repairs initiated.
func (mo *Monitor) CheckReplication() int {
	started := 0
	for _, f := range mo.fs.UnderReplicatedFiles() {
		tier, ok := repairTier(f)
		if !ok {
			continue
		}
		if err := mo.fs.CopyFileReplicas(f, tier, nil); err != nil {
			continue
		}
		mo.repairs++
		started++
	}
	return started
}

// repairTier picks the lowest tier missing from at least one block of the
// file, so the repair copy actually adds a replica.
func repairTier(f *dfs.File) (storage.Media, bool) {
	for i := len(storage.AllMedia) - 1; i >= 0; i-- {
		tier := storage.AllMedia[i]
		for _, b := range f.Blocks() {
			if b.ReplicaOn(tier) == nil {
				return tier, true
			}
		}
	}
	return 0, false
}
