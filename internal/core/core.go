// Package core implements the paper's primary contribution: a general
// framework for automatically managing storage tiers in a distributed file
// system (Section 3). It provides
//
//   - the Replication Manager, which orchestrates replication downgrades and
//     upgrades (Definitions 1 and 2) through pluggable policies built around
//     the four decision points of Section 3.2 (when to start, which file,
//     how, when to stop), running Algorithms 1 and 2;
//   - the Replication Monitor, which executes the resulting data-movement
//     requests asynchronously with bounded concurrency and repairs
//     under-replicated files; and
//   - the shared per-file statistics (via ml.Tracker) and tier-usage
//     accounting that policies consult to make informed decisions.
//
// Attaching a Manager to a dfs.FileSystem in ModeOctopus yields the system
// the paper calls Octopus++.
package core

import (
	"time"

	"octostore/internal/storage"
)

// Config carries the framework parameters (Section 5.1, 5.4, 6.1, 6.4).
// Zero fields are replaced by paper defaults.
type Config struct {
	// HighWatermark starts the downgrade process for a tier when its used
	// capacity exceeds this fraction (paper: 90%).
	HighWatermark float64
	// LowWatermark stops the downgrade process when the tier's effective
	// used capacity drops below this fraction (paper: 85%).
	LowWatermark float64
	// UpgradeBatchLimit caps the total bytes of upgrades scheduled by one
	// invocation of the XGB upgrade process (paper: 1 GB).
	UpgradeBatchLimit int64
	// CandidateK bounds how many files an XGB policy scores per decision
	// (paper: k=200).
	CandidateK int
	// PeriodicInterval is how often the manager wakes up for proactive
	// upgrade checks and model sampling.
	PeriodicInterval time.Duration
	// SampleFraction is the fraction of tracked files sampled for training
	// on each periodic tick.
	SampleFraction float64
	// DowngradeWindow is the class window of the downgrade model ("which
	// files have become cold"). The paper's example value is 6 hours for
	// production-length traces; the default here is scaled down so that
	// sliding the reference time one window into the past still yields
	// training data within a six-hour replay.
	DowngradeWindow time.Duration
	// UpgradeWindow is the class window of the upgrade model ("which files
	// will be accessed soon"; paper example: 30 minutes).
	UpgradeWindow time.Duration
	// UpgradeThreshold is the discrimination threshold of the upgrade
	// model (paper: 0.5).
	UpgradeThreshold float64
	// MonitorConcurrency bounds simultaneous background file movements.
	MonitorConcurrency int
	// MoveLatency models the command path of a movement request (manager →
	// monitor → worker heartbeat): transfers begin this long after being
	// scheduled, so an upgrade does not serve the very access that
	// triggered it (Section 6: the move is piggybacked on the subsequent
	// read or performed asynchronously).
	MoveLatency time.Duration
	// TrackerK is the per-file access-history length (paper: 12).
	TrackerK int
}

// DefaultConfig returns the paper's parameter values.
func DefaultConfig() Config {
	return Config{
		HighWatermark:      0.90,
		LowWatermark:       0.85,
		UpgradeBatchLimit:  1 * storage.GB,
		CandidateK:         200,
		PeriodicInterval:   time.Minute,
		SampleFraction:     0.10,
		DowngradeWindow:    90 * time.Minute,
		UpgradeWindow:      30 * time.Minute,
		UpgradeThreshold:   0.5,
		MonitorConcurrency: 4,
		MoveLatency:        5 * time.Second,
		TrackerK:           12,
	}
}

func (c *Config) applyDefaults() {
	d := DefaultConfig()
	if c.HighWatermark <= 0 {
		c.HighWatermark = d.HighWatermark
	}
	if c.LowWatermark <= 0 {
		c.LowWatermark = d.LowWatermark
	}
	if c.UpgradeBatchLimit <= 0 {
		c.UpgradeBatchLimit = d.UpgradeBatchLimit
	}
	if c.CandidateK <= 0 {
		c.CandidateK = d.CandidateK
	}
	if c.PeriodicInterval <= 0 {
		c.PeriodicInterval = d.PeriodicInterval
	}
	if c.SampleFraction <= 0 {
		c.SampleFraction = d.SampleFraction
	}
	if c.DowngradeWindow <= 0 {
		c.DowngradeWindow = d.DowngradeWindow
	}
	if c.UpgradeWindow <= 0 {
		c.UpgradeWindow = d.UpgradeWindow
	}
	if c.UpgradeThreshold <= 0 {
		c.UpgradeThreshold = d.UpgradeThreshold
	}
	if c.MonitorConcurrency <= 0 {
		c.MonitorConcurrency = d.MonitorConcurrency
	}
	if c.MoveLatency <= 0 {
		c.MoveLatency = d.MoveLatency
	}
	if c.TrackerK <= 0 {
		c.TrackerK = d.TrackerK
	}
}
