package core

import (
	"math/rand"
	"sort"
	"time"

	"octostore/internal/dfs"
	"octostore/internal/ml"
	"octostore/internal/sim"
	"octostore/internal/storage"
)

// Context is the view of the system that policies consult: the clock, the
// file system, the per-file statistics, and tier-usage accounting
// (Section 3.3: "the policies have access to file and node statistics
// maintained by the system").
type Context struct {
	Clock   sim.Clock
	FS      *dfs.FileSystem
	Tracker *ml.Tracker
	Cfg     Config

	mgr      *Manager // set when a Manager adopts the context
	index    *CandidateIndex
	eligFn   func(*dfs.File) bool
	headroom func(storage.Media) int64 // extra free bytes beyond the FS's cluster
}

// NewContext builds a policy context over a file system. The context
// registers itself as a file-system listener: it maintains the per-file
// statistics and the incremental candidate indexes from notifications, so
// they stay current whether or not a Manager is attached.
func NewContext(fs *dfs.FileSystem, cfg Config) *Context {
	cfg.applyDefaults()
	c := &Context{
		Clock:   fs.Engine(),
		FS:      fs,
		Tracker: ml.NewTracker(cfg.TrackerK),
		Cfg:     cfg,
	}
	c.index = newCandidateIndex(c)
	c.eligFn = c.Selectable
	fs.AddListener(ctxListener{c})
	return c
}

// Index returns the context's incremental candidate index.
func (c *Context) Index() *CandidateIndex { return c.index }

// Selectable reports whether a policy may pick the file right now: not
// busy with an in-flight operation and not in a failure cooldown. It is
// the dynamic part of the eligibility predicate; static properties
// (deleted, incomplete, tier residency) are maintained as index
// membership.
func (c *Context) Selectable(f *dfs.File) bool {
	return c.mgr == nil || (!c.mgr.isBusy(f) && !c.mgr.inCooldown(f))
}

// ctxListener feeds file-system notifications into the context's tracker
// and candidate index. It is registered in NewContext, before any Manager,
// so statistics are already updated when policies observe the same event.
type ctxListener struct{ ctx *Context }

// FileCreated implements dfs.Listener.
func (l ctxListener) FileCreated(f *dfs.File) {
	l.ctx.Tracker.OnCreate(int64(f.ID()), f.Size(), f.Created())
	l.ctx.index.fileCreated(f)
}

// FileAccessed implements dfs.Listener.
func (l ctxListener) FileAccessed(f *dfs.File) {
	l.ctx.Tracker.OnAccess(int64(f.ID()), l.ctx.Clock.Now())
	l.ctx.index.fileAccessed(f)
}

// FileDeleted implements dfs.Listener.
func (l ctxListener) FileDeleted(f *dfs.File) {
	l.ctx.Tracker.OnDelete(int64(f.ID()))
	l.ctx.index.fileDeleted(f)
}

// FileTierChanged implements dfs.Listener.
func (l ctxListener) FileTierChanged(f *dfs.File, media storage.Media, resident bool) {
	l.ctx.index.residencyChanged(f, media, resident)
}

// TierDataAdded implements dfs.Listener.
func (ctxListener) TierDataAdded(storage.Media) {}

// Record returns (creating on demand) the statistics record of a file.
func (c *Context) Record(f *dfs.File) *ml.FileRecord {
	if rec, ok := c.Tracker.Get(int64(f.ID())); ok {
		return rec
	}
	return c.Tracker.OnCreate(int64(f.ID()), f.Size(), f.Created())
}

// LastTouch returns the file's most recent access, or its creation time if
// never accessed.
func (c *Context) LastTouch(f *dfs.File) time.Time {
	t, _ := c.Record(f).LastAccess()
	return t
}

// AccessCount returns the file's lifetime access count.
func (c *Context) AccessCount(f *dfs.File) int64 {
	return c.Record(f).AccessCount()
}

// IsBusy reports whether the manager has an in-flight operation on the
// file (no manager means never busy).
func (c *Context) IsBusy(f *dfs.File) bool {
	return c.mgr != nil && c.mgr.isBusy(f)
}

// EligibleFiles returns the files that a downgrade from `tier` may choose
// from: complete, not deleted, not busy, not in a failure cooldown, and
// holding a replica of every block on the tier (the all-or-nothing
// property).
func (c *Context) EligibleFiles(tier storage.Media) []*dfs.File {
	return c.EligibleFilesInto(nil, tier)
}

// EligibleFilesInto is EligibleFiles appending into a caller-provided
// buffer (pass buf[:0] to reuse its capacity), so per-decision scans stop
// allocating. Policies with an order-independent or windowed selection
// rule (LIFE, LFU-F, EXD admission) use it; the indexed policies avoid the
// scan entirely.
func (c *Context) EligibleFilesInto(buf []*dfs.File, tier storage.Media) []*dfs.File {
	// LiveFiles avoids the sorted namespace walk; HasReplicaOn is O(1) via
	// the residency counters. Selection policies impose their own ordering.
	for _, f := range c.FS.LiveFiles() {
		if f.Deleted() || !c.FS.Complete(f) || c.IsBusy(f) {
			continue
		}
		if c.mgr != nil && c.mgr.inCooldown(f) {
			continue
		}
		if !f.HasReplicaOn(tier) {
			continue
		}
		buf = append(buf, f)
	}
	return buf
}

// UpgradeCandidates returns files not fully resident in memory, excluding
// busy/cooldown files, sorted by most-recent touch first and truncated to
// k (the XGB upgrade policy scores "the k most recently used files",
// Section 6.1). With the upgrade MRU index enabled (RequireUpgradeMRU) the
// collection is a bounded-heap top-k instead of a full sort.
func (c *Context) UpgradeCandidates(k int) []*dfs.File {
	return c.UpgradeCandidatesInto(nil, k)
}

// UpgradeCandidatesInto is UpgradeCandidates appending into a reusable
// buffer.
func (c *Context) UpgradeCandidatesInto(buf []*dfs.File, k int) []*dfs.File {
	if c.index.HasUpgradeMRU() {
		return c.index.UpgradeTopK(k, buf)
	}
	return c.UpgradeCandidatesLinear(buf, k)
}

// UpgradeCandidatesLinear is the full-scan implementation of
// UpgradeCandidates, kept as the fallback when no index is enabled and as
// the oracle the differential equivalence tests compare the indexed path
// against.
func (c *Context) UpgradeCandidatesLinear(buf []*dfs.File, k int) []*dfs.File {
	start := len(buf)
	for _, f := range c.FS.LiveFiles() {
		if f.Deleted() || !c.FS.Complete(f) || c.IsBusy(f) || len(f.Blocks()) == 0 {
			continue
		}
		if c.mgr != nil && c.mgr.inCooldown(f) {
			continue
		}
		if f.HasReplicaOn(storage.Memory) {
			continue
		}
		buf = append(buf, f)
	}
	out := buf[start:]
	sort.Slice(out, func(i, j int) bool {
		ti, tj := c.LastTouch(out[i]), c.LastTouch(out[j])
		if !ti.Equal(tj) {
			return ti.After(tj)
		}
		return out[i].ID() < out[j].ID()
	})
	if k > 0 && len(out) > k {
		buf = buf[:start+k]
	}
	return buf
}

// LRUFiles returns up to k eligible files on the tier ordered by least
// recent touch first (the XGB downgrade policy scores "the k least
// recently used files", Section 5.2). With the recency index enabled
// (RequireRecency) the collection is a bounded-heap top-k.
func (c *Context) LRUFiles(tier storage.Media, k int) []*dfs.File {
	return c.LRUFilesInto(nil, tier, k)
}

// LRUFilesInto is LRUFiles appending into a reusable buffer.
func (c *Context) LRUFilesInto(buf []*dfs.File, tier storage.Media, k int) []*dfs.File {
	if c.index.HasRecency() {
		return c.index.LRUTopK(tier, k, buf)
	}
	return c.LRUFilesLinear(buf, tier, k)
}

// LRUFilesLinear is the scan-and-sort implementation of LRUFiles, kept as
// the no-index fallback and the differential-test oracle.
func (c *Context) LRUFilesLinear(buf []*dfs.File, tier storage.Media, k int) []*dfs.File {
	start := len(buf)
	buf = c.EligibleFilesInto(buf, tier)
	files := buf[start:]
	sort.Slice(files, func(i, j int) bool {
		ti, tj := c.LastTouch(files[i]), c.LastTouch(files[j])
		if !ti.Equal(tj) {
			return ti.Before(tj)
		}
		return files[i].ID() < files[j].ID()
	})
	if k > 0 && len(files) > k {
		buf = buf[:start+k]
	}
	return buf
}

// SampleLiveFiles visits a deterministic stride sample of the live-file
// index: roughly fraction*N files, each at most once, chosen by stepping
// through the index with stride ~1/fraction from a random phase. The live
// index is insertion-ordered with swap-removal perturbation, so a strided
// walk is an unbiased sample while costing O(fraction*N) — one RNG draw per
// tick instead of one per live file. The XGB policies use it for periodic
// training-sample collection (Section 4.2 samples "a fraction of the
// files"; nothing there requires touching every file to decide).
func (c *Context) SampleLiveFiles(rng *rand.Rand, fraction float64, fn func(*dfs.File)) {
	live := c.FS.LiveFiles()
	n := len(live)
	if n == 0 || fraction <= 0 {
		return
	}
	if fraction >= 1 {
		for _, f := range live {
			fn(f)
		}
		return
	}
	stride := int(1/fraction + 0.5)
	if stride < 1 {
		stride = 1
	}
	for i := rng.Intn(stride); i < n; i += stride {
		fn(live[i])
	}
}

// EffectiveUtilization is the tier's used fraction minus space already
// being freed by in-flight downgrades, so the downgrade loop does not
// over-schedule while transfers drain.
func (c *Context) EffectiveUtilization(tier storage.Media) float64 {
	used, capacity := c.FS.Cluster().TierUsage(tier)
	if capacity == 0 {
		return 0
	}
	if c.mgr != nil {
		used -= c.mgr.pendingRelease[tier]
	}
	if used < 0 {
		used = 0
	}
	return float64(used) / float64(capacity)
}

// AboveHighWatermark implements the shared decision-point-1 rule: the
// downgrade process starts when a tier's used capacity exceeds the high
// threshold (Section 5.1).
func (c *Context) AboveHighWatermark(tier storage.Media) bool {
	return c.EffectiveUtilization(tier) > c.Cfg.HighWatermark
}

// BelowLowWatermark implements the shared decision-point-4 rule: the
// downgrade process stops when the tier's effective used capacity falls
// below the low threshold (Section 5.4).
func (c *Context) BelowLowWatermark(tier storage.Media) bool {
	return c.EffectiveUtilization(tier) < c.Cfg.LowWatermark
}

// SetTierHeadroom installs a hook reporting extra per-tier free bytes that
// exist beyond the context's own cluster view. The sharded serving layer
// points it at the global quota ledger's free pool, so a shard's policies
// size upgrade and placement decisions against quota-plus-borrowable
// capacity instead of refusing moves its quota could grow to fit. The hook
// must be safe to call from the context's owning loop (the ledger's is a
// single atomic load). Watermark utilization intentionally stays quota-local
// (see EffectiveUtilization): a shard under local pressure downgrades even
// when the global pool has headroom — that is the soft-quota contract.
func (c *Context) SetTierHeadroom(fn func(storage.Media) int64) { c.headroom = fn }

// TierFreeBytes returns the free bytes of a tier visible to this context:
// the cluster view's free capacity plus any configured external headroom.
func (c *Context) TierFreeBytes(tier storage.Media) int64 {
	used, capacity := c.FS.Cluster().TierUsage(tier)
	free := capacity - used
	if c.headroom != nil {
		free += c.headroom(tier)
	}
	return free
}

// DefaultDowngradeTier implements decision point 3 with the OctopusFS
// placement objectives collapsed to their practical outcome: move to the
// next tier down that can hold the file, else further down, else delete the
// replica (Section 5.3).
func (c *Context) DefaultDowngradeTier(f *dfs.File, from storage.Media) (storage.Media, bool) {
	bytes := f.BytesOn(from)
	for tier, ok := from.Below(); ok; tier, ok = tier.Below() {
		if c.TierFreeBytes(tier) >= bytes {
			return tier, true
		}
	}
	return 0, false
}

// DefaultUpgradeTier implements decision point 3 for upgrades: memory when
// it can hold the file. Upgrades from HDD to SSD are not performed,
// matching the rationale in Section 6.1 (avoid large disk-to-disk moves
// and keep HDDs utilised).
func (c *Context) DefaultUpgradeTier(f *dfs.File, from storage.Media) (storage.Media, bool) {
	if from == storage.Memory {
		return 0, false
	}
	size := fileBytesOneReplica(f)
	if c.TierFreeBytes(storage.Memory) >= size {
		return storage.Memory, true
	}
	return 0, false
}

// fileBytesOneReplica is the bytes of a single full replica of the file.
func fileBytesOneReplica(f *dfs.File) int64 {
	var total int64
	for _, b := range f.Blocks() {
		total += b.Size()
	}
	return total
}
