package core

import (
	"fmt"
	"math/rand"
	"testing"

	"octostore/internal/cluster"
	"octostore/internal/dfs"
	"octostore/internal/sim"
	"octostore/internal/storage"
)

func sampleFixture(t *testing.T, files int) (*Context, *dfs.FileSystem) {
	t.Helper()
	engine := sim.NewEngine()
	spec := storage.NodeSpec{
		{Media: storage.HDD, Capacity: 1 * storage.TB, ReadBW: 160e6, WriteBW: 140e6, Count: 2},
	}
	cl, err := cluster.New(engine, cluster.Config{Workers: 4, SlotsPerNode: 4, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := dfs.New(cl, dfs.Config{Mode: dfs.ModeHDFS, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(fs, DefaultConfig())
	for i := 0; i < files; i++ {
		fs.Create(fmt.Sprintf("/s/f%04d", i), 8*storage.MB, nil)
	}
	engine.Run()
	return ctx, fs
}

func TestSampleLiveFilesStride(t *testing.T) {
	const n = 1000
	ctx, fs := sampleFixture(t, n)
	rng := rand.New(rand.NewSource(42))

	for _, fraction := range []float64{0.05, 0.10, 0.25} {
		seen := make(map[dfs.FileID]int)
		ctx.SampleLiveFiles(rng, fraction, func(f *dfs.File) { seen[f.ID()]++ })
		for id, count := range seen {
			if count != 1 {
				t.Fatalf("fraction %v: file %d sampled %d times", fraction, id, count)
			}
		}
		want := int(fraction * n)
		// The stride walk yields n/stride ± 1 samples.
		if len(seen) < want-want/2 || len(seen) > want+want/2+1 {
			t.Fatalf("fraction %v: sampled %d files, want ~%d", fraction, len(seen), want)
		}
	}

	// Full-fraction sampling must visit every live file exactly once.
	seen := make(map[dfs.FileID]bool)
	ctx.SampleLiveFiles(rng, 1.0, func(f *dfs.File) { seen[f.ID()] = true })
	if len(seen) != len(fs.LiveFiles()) {
		t.Fatalf("fraction 1: sampled %d of %d files", len(seen), len(fs.LiveFiles()))
	}

	// Phases rotate: across many ticks every file must eventually be seen.
	all := make(map[dfs.FileID]bool)
	for tick := 0; tick < 200; tick++ {
		ctx.SampleLiveFiles(rng, 0.10, func(f *dfs.File) { all[f.ID()] = true })
	}
	if len(all) != len(fs.LiveFiles()) {
		t.Fatalf("200 ticks at 10%% covered %d of %d files", len(all), len(fs.LiveFiles()))
	}

	// Degenerate inputs must not panic or call fn.
	ctx.SampleLiveFiles(rng, 0, func(*dfs.File) { t.Fatal("fraction 0 sampled a file") })
}
