package core

import (
	"time"

	"octostore/internal/dfs"
	"octostore/internal/sim"
	"octostore/internal/storage"
)

// maxProcessIterations bounds one invocation of the downgrade or upgrade
// loop, protecting the simulation from a policy that never says stop.
const maxProcessIterations = 10000

// failureCooldown is how long a file is skipped after a failed move, so
// selection loops do not spin on files that cannot currently be placed.
const failureCooldown = time.Minute

// Metrics counts the manager's activity.
type Metrics struct {
	DowngradesScheduled int64
	UpgradesScheduled   int64
	ReplicaDeletes      int64
	DowngradeErrors     int64
	UpgradeErrors       int64
	Ticks               int64
}

// Mover executes the manager's data-movement requests. The Replication
// Monitor is the default implementation (inline, engine-scheduled, global
// concurrency bound); the concurrent serving layer substitutes its async
// movement executor (per-tier pools with bounded queues and bandwidth
// budgets) via SetMover. Enqueue must not block: implementations shed or
// fail requests they cannot accept and report the outcome through
// MoveRequest.Done.
type Mover interface {
	Enqueue(MoveRequest)
}

// Manager is the Replication Manager (Section 3.3): it listens to file
// system notifications, maintains per-file statistics, and orchestrates the
// downgrade (Algorithm 1) and upgrade (Algorithm 2) processes through the
// configured policies. Movement requests execute asynchronously on the
// configured Mover (the Replication Monitor by default).
type Manager struct {
	ctx     *Context
	down    DowngradePolicy
	up      UpgradePolicy
	monitor *Monitor
	mover   Mover
	engine  *sim.Engine

	busy           map[dfs.FileID]bool
	cooldown       map[dfs.FileID]time.Time
	pendingRelease [3]int64

	ticker  *sim.Ticker
	metrics Metrics
}

// NewManager wires a manager with the given policies into the context's
// file system. Either policy may be nil to disable that direction
// (Sections 7.3 and 7.4 evaluate each side in isolation).
func NewManager(ctx *Context, down DowngradePolicy, up UpgradePolicy) *Manager {
	m := &Manager{
		ctx:      ctx,
		down:     down,
		up:       up,
		monitor:  NewMonitor(ctx.FS, ctx.Cfg.MonitorConcurrency, ctx.Cfg.MoveLatency),
		engine:   ctx.FS.Engine(),
		busy:     make(map[dfs.FileID]bool),
		cooldown: make(map[dfs.FileID]time.Time),
	}
	m.mover = m.monitor
	ctx.mgr = m
	ctx.FS.AddListener(m)
	return m
}

// Context returns the policy context.
func (m *Manager) Context() *Context { return m.ctx }

// Monitor returns the replication monitor. It keeps executing replication
// repairs even when a custom Mover handles tier movements.
func (m *Manager) Monitor() *Monitor { return m.monitor }

// SetMover routes subsequent movement requests through mv instead of the
// inline Replication Monitor; nil restores the monitor. In-flight requests
// are unaffected.
func (m *Manager) SetMover(mv Mover) {
	if mv == nil {
		m.mover = m.monitor
		return
	}
	m.mover = mv
}

// Metrics returns a snapshot of the manager's counters.
func (m *Manager) Metrics() Metrics { return m.metrics }

// Start begins the periodic loop: policy ticks (model sampling), proactive
// upgrades, threshold re-checks, and replication repair.
func (m *Manager) Start() {
	if m.ticker != nil {
		return
	}
	m.ticker = m.engine.Every(m.ctx.Cfg.PeriodicInterval, m.tick)
}

// Stop halts the periodic loop; in-flight moves complete.
func (m *Manager) Stop() {
	if m.ticker != nil {
		m.ticker.Stop()
		m.ticker = nil
	}
}

func (m *Manager) tick() {
	m.metrics.Ticks++
	if t, ok := m.down.(Ticker); ok {
		t.Tick()
	}
	if t, ok := m.up.(Ticker); ok {
		t.Tick()
	}
	// Proactive decisions do not wait for external events (Section 3.2):
	// re-check tier pressure and let the upgrade policy act without an
	// accessed file.
	for _, tier := range storage.AllMedia {
		m.runDowngrade(tier, "tick")
	}
	m.runUpgrade(nil, "tick")
	m.monitor.CheckReplication()
}

func (m *Manager) isBusy(f *dfs.File) bool { return m.busy[f.ID()] }

func (m *Manager) inCooldown(f *dfs.File) bool {
	until, ok := m.cooldown[f.ID()]
	if !ok {
		return false
	}
	if m.ctx.Clock.Now().After(until) {
		delete(m.cooldown, f.ID())
		return false
	}
	return true
}

func (m *Manager) setCooldown(f *dfs.File) {
	m.cooldown[f.ID()] = m.ctx.Clock.Now().Add(failureCooldown)
}

// --- dfs.Listener ---

// FileCreated implements dfs.Listener. The context's own listener, which
// registered first, has already recorded the file in the tracker and the
// candidate index by the time the policies hear about it.
func (m *Manager) FileCreated(f *dfs.File) {
	if m.down != nil {
		m.down.OnFileCreated(f)
	}
	if m.up != nil {
		m.up.OnFileCreated(f)
	}
}

// FileAccessed implements dfs.Listener; it fires before the data is read
// and triggers the upgrade process (Algorithm 2 "invoked every time a file
// is accessed, before it is actually read").
func (m *Manager) FileAccessed(f *dfs.File) {
	if m.down != nil {
		m.down.OnFileAccessed(f)
	}
	if m.up != nil {
		m.up.OnFileAccessed(f)
	}
	m.runUpgrade(f, "access")
}

// FileDeleted implements dfs.Listener.
func (m *Manager) FileDeleted(f *dfs.File) {
	delete(m.busy, f.ID())
	delete(m.cooldown, f.ID())
	if m.down != nil {
		m.down.OnFileDeleted(f)
	}
	if m.up != nil {
		m.up.OnFileDeleted(f)
	}
}

// FileTierChanged implements dfs.Listener. Residency flips feed the
// context's candidate index (and, through it, subscribed policies); the
// manager itself reacts to tier pressure via TierDataAdded.
func (m *Manager) FileTierChanged(*dfs.File, storage.Media, bool) {}

// TierDataAdded implements dfs.Listener; data arriving on a tier is the
// trigger for the downgrade process (Algorithm 1 "invoked every time some
// data is added to a storage tier").
func (m *Manager) TierDataAdded(tier storage.Media) {
	m.runDowngrade(tier, "tier-data-added")
}

// --- Algorithm 1: downgrade process ---

func (m *Manager) runDowngrade(tier storage.Media, trigger string) {
	if m.down == nil {
		return
	}
	if !m.down.StartDowngrade(tier) {
		return
	}
	for i := 0; i < maxProcessIterations; i++ {
		f := m.down.SelectFile(tier)
		if f == nil {
			return
		}
		to, del := m.down.SelectTargetTier(f, tier)
		if del {
			m.deleteReplicas(f, tier)
		} else {
			m.scheduleDowngrade(f, tier, to, trigger)
		}
		if m.down.StopDowngrade(tier) {
			return
		}
	}
}

func (m *Manager) deleteReplicas(f *dfs.File, tier storage.Media) {
	if err := m.ctx.FS.DeleteFileReplicas(f, tier); err != nil {
		m.metrics.DowngradeErrors++
		m.setCooldown(f)
		return
	}
	m.metrics.ReplicaDeletes++
}

func (m *Manager) scheduleDowngrade(f *dfs.File, from, to storage.Media, trigger string) {
	released := f.BytesOn(from)
	m.busy[f.ID()] = true
	m.pendingRelease[from] += released
	m.mover.Enqueue(MoveRequest{
		File:        f,
		From:        from,
		To:          to,
		Policy:      m.down.Name(),
		Trigger:     trigger,
		AccessCount: m.ctx.AccessCount(f),
		LastAccess:  m.ctx.LastTouch(f),
		Done: func(err error) {
			delete(m.busy, f.ID())
			m.pendingRelease[from] -= released
			if err != nil {
				m.metrics.DowngradeErrors++
				m.setCooldown(f)
				return
			}
			m.metrics.DowngradesScheduled++
		},
	})
}

// --- Algorithm 2: upgrade process ---

func (m *Manager) runUpgrade(accessed *dfs.File, trigger string) {
	if m.up == nil {
		return
	}
	if accessed != nil && (m.busy[accessed.ID()] || accessed.Deleted()) {
		return
	}
	if !m.up.StartUpgrade(accessed) {
		return
	}
	for i := 0; i < maxProcessIterations; i++ {
		f := m.up.SelectFile()
		if f == nil {
			return
		}
		m.tryUpgrade(f, trigger)
		if m.up.StopUpgrade() {
			return
		}
	}
}

func (m *Manager) tryUpgrade(f *dfs.File, trigger string) {
	if f.Deleted() || m.busy[f.ID()] || m.inCooldown(f) || !m.ctx.FS.Complete(f) {
		return
	}
	from, ok := f.HighestTier()
	if !ok {
		return
	}
	to, ok := m.up.SelectTargetTier(f, from)
	if !ok || !to.Higher(from) {
		return
	}
	m.busy[f.ID()] = true
	m.mover.Enqueue(MoveRequest{
		File:        f,
		From:        from,
		To:          to,
		Policy:      m.up.Name(),
		Trigger:     trigger,
		AccessCount: m.ctx.AccessCount(f),
		LastAccess:  m.ctx.LastTouch(f),
		Done: func(err error) {
			delete(m.busy, f.ID())
			if err != nil {
				m.metrics.UpgradeErrors++
				m.setCooldown(f)
				return
			}
			m.metrics.UpgradesScheduled++
		},
	})
}
