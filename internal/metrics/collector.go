// Package metrics implements a batched time-series collector for load
// drivers: a driver samples monotonic counter snapshots (total ops, read
// latency histogram buckets) at a fixed wall-clock cadence, and the
// collector turns successive snapshots into windowed points — ops/s and
// read p50/p99 per window — so a run's report carries the throughput curve
// over time instead of one end-of-run aggregate. Near saturation that is
// the difference between seeing the knee and averaging it away.
//
// The collector is deliberately passive: it owns no goroutine and no clock.
// The driver decides when to sample (typically a ticker) and feeds wall
// times in; everything here is pure bookkeeping, so the same type serves
// tests that feed synthetic timelines.
package metrics

import (
	"time"

	"octostore/internal/obs"
)

// Snapshot is one monotonic counter sample. Counters must be cumulative
// (never reset mid-run); the collector works on deltas between samples.
type Snapshot struct {
	// Ops is the cumulative operation count.
	Ops int64
	// Read is the cumulative read-latency histogram in the
	// obs.Histogram.Counts bucket layout.
	Read [64]int64
}

// Point is one completed window of the time series.
type Point struct {
	// EndSeconds is the window's end, in seconds since the collector start.
	EndSeconds float64 `json:"t_seconds"`
	// Ops is the number of operations completed in the window.
	Ops int64 `json:"ops"`
	// OpsPerSec is Ops divided by the window's wall duration.
	OpsPerSec float64 `json:"ops_per_sec"`
	// ReadP50us / ReadP99us are the window's read-latency quantiles in
	// microseconds, from the bucket delta (zero when the window saw no
	// reads).
	ReadP50us float64 `json:"read_p50_us"`
	ReadP99us float64 `json:"read_p99_us"`
}

// Collector accumulates windowed points from counter snapshots.
type Collector struct {
	start  time.Time
	prev   Snapshot
	prevAt time.Time
	points []Point
}

// NewCollector starts a series at the given wall time with the given
// baseline snapshot (typically all zeros, or the counters as they stand
// when the load phase begins).
func NewCollector(now time.Time, base Snapshot) *Collector {
	return &Collector{start: now, prev: base, prevAt: now}
}

// Sample closes the window [prev, now) and appends its point. Samples with
// no elapsed time are ignored.
func (c *Collector) Sample(now time.Time, s Snapshot) {
	dt := now.Sub(c.prevAt).Seconds()
	if dt <= 0 {
		return
	}
	var delta [64]int64
	for i := range delta {
		delta[i] = s.Read[i] - c.prev.Read[i]
	}
	ops := s.Ops - c.prev.Ops
	c.points = append(c.points, Point{
		EndSeconds: now.Sub(c.start).Seconds(),
		Ops:        ops,
		OpsPerSec:  float64(ops) / dt,
		ReadP50us:  float64(obs.QuantileOf(delta, 0.50).Nanoseconds()) / 1e3,
		ReadP99us:  float64(obs.QuantileOf(delta, 0.99).Nanoseconds()) / 1e3,
	})
	c.prev, c.prevAt = s, now
}

// Points returns the completed windows in order.
func (c *Collector) Points() []Point { return c.points }

// PeakOpsPerSec returns the highest windowed throughput — the "peak
// sustained ops/s" a benchmark gate can hold a baseline against (a full
// window at that rate, not an instantaneous burst).
func (c *Collector) PeakOpsPerSec() float64 {
	var peak float64
	for _, p := range c.points {
		if p.OpsPerSec > peak {
			peak = p.OpsPerSec
		}
	}
	return peak
}
