package metrics

import (
	"math"
	"testing"
	"time"

	"octostore/internal/obs"
)

// bucketFor places a duration in the obs.Histogram bucket layout.
func bucketFor(d time.Duration) int {
	h := &obs.Histogram{}
	h.Observe(d)
	counts := h.Counts()
	for i, c := range counts {
		if c != 0 {
			return i
		}
	}
	return 0
}

func TestCollectorWindows(t *testing.T) {
	t0 := time.Unix(1000, 0)
	c := NewCollector(t0, Snapshot{})

	// Window 1: 100 ops in 1s, all reads at ~1ms.
	var s1 Snapshot
	s1.Ops = 100
	s1.Read[bucketFor(time.Millisecond)] = 100
	c.Sample(t0.Add(1*time.Second), s1)

	// Window 2: 300 ops in 2s (150 ops/s), reads split 99 fast / 3 slow —
	// a >1% tail, so the window p99 must land in the slow bucket.
	s2 := s1
	s2.Ops = 400
	s2.Read[bucketFor(time.Millisecond)] += 99
	s2.Read[bucketFor(100*time.Millisecond)] += 3
	c.Sample(t0.Add(3*time.Second), s2)

	pts := c.Points()
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	if pts[0].Ops != 100 || math.Abs(pts[0].OpsPerSec-100) > 1e-9 {
		t.Fatalf("window 1: ops=%d rate=%v", pts[0].Ops, pts[0].OpsPerSec)
	}
	if pts[0].EndSeconds != 1 {
		t.Fatalf("window 1 end %v, want 1", pts[0].EndSeconds)
	}
	if pts[1].Ops != 300 || math.Abs(pts[1].OpsPerSec-150) > 1e-9 {
		t.Fatalf("window 2: ops=%d rate=%v", pts[1].Ops, pts[1].OpsPerSec)
	}

	// Window quantiles come from the delta, not the cumulative counts: the
	// second window's p50 must reflect only its own 100 reads, and its p99
	// must land in the slow bucket (1 of 100 at ~100ms).
	wantFast := float64(obs.QuantileOf(deltaOf(time.Millisecond, 1), 0.5).Nanoseconds()) / 1e3
	if pts[1].ReadP50us != wantFast {
		t.Fatalf("window 2 p50 %v, want %v", pts[1].ReadP50us, wantFast)
	}
	wantSlow := float64(obs.QuantileOf(deltaOf(100*time.Millisecond, 1), 0.99).Nanoseconds()) / 1e3
	if pts[1].ReadP99us != wantSlow {
		t.Fatalf("window 2 p99 %v, want %v (slow tail must surface)", pts[1].ReadP99us, wantSlow)
	}

	if peak := c.PeakOpsPerSec(); math.Abs(peak-150) > 1e-9 {
		t.Fatalf("peak %v, want 150", peak)
	}
}

// deltaOf builds a bucket vector holding n observations of d.
func deltaOf(d time.Duration, n int64) [64]int64 {
	var out [64]int64
	out[bucketFor(d)] = n
	return out
}

func TestCollectorZeroWindow(t *testing.T) {
	t0 := time.Unix(0, 0)
	c := NewCollector(t0, Snapshot{})
	c.Sample(t0, Snapshot{Ops: 5}) // zero elapsed: ignored
	if len(c.Points()) != 0 {
		t.Fatalf("zero-duration window produced a point")
	}
	if c.PeakOpsPerSec() != 0 {
		t.Fatalf("peak of empty series should be 0")
	}
	// An idle window (no ops, no reads) still yields a point: gaps in the
	// curve are information.
	c.Sample(t0.Add(time.Second), Snapshot{Ops: 5})
	pts := c.Points()
	if len(pts) != 1 || pts[0].Ops != 5 {
		t.Fatalf("got %+v", pts)
	}
	c.Sample(t0.Add(2*time.Second), Snapshot{Ops: 5})
	pts = c.Points()
	if len(pts) != 2 || pts[1].Ops != 0 || pts[1].OpsPerSec != 0 || pts[1].ReadP99us != 0 {
		t.Fatalf("idle window: %+v", pts)
	}
}

func TestCollectorEmpty(t *testing.T) {
	c := NewCollector(time.Unix(1000, 0), Snapshot{})
	if pts := c.Points(); len(pts) != 0 {
		t.Fatalf("fresh collector has points: %+v", pts)
	}
	if peak := c.PeakOpsPerSec(); peak != 0 {
		t.Fatalf("fresh collector peak %v, want 0", peak)
	}
}

func TestCollectorNonMonotonicSamples(t *testing.T) {
	t0 := time.Unix(1000, 0)
	c := NewCollector(t0, Snapshot{})
	c.Sample(t0.Add(time.Second), Snapshot{Ops: 100})

	// A sample whose wall time runs backwards (clock step, scheduler
	// reordering) must be dropped, not produce a negative-duration window.
	c.Sample(t0.Add(500*time.Millisecond), Snapshot{Ops: 150})
	pts := c.Points()
	if len(pts) != 1 {
		t.Fatalf("backwards sample produced a point: %+v", pts)
	}

	// The series resumes cleanly from the last accepted sample: the next
	// in-order window covers [1s, 2s) and its delta is against Ops=100.
	c.Sample(t0.Add(2*time.Second), Snapshot{Ops: 180})
	pts = c.Points()
	if len(pts) != 2 || pts[1].Ops != 80 || math.Abs(pts[1].OpsPerSec-80) > 1e-9 {
		t.Fatalf("post-recovery window: %+v", pts)
	}
	if pts[1].EndSeconds != 2 {
		t.Fatalf("post-recovery end %v, want 2", pts[1].EndSeconds)
	}
}

func TestCollectorPeakSinglePoint(t *testing.T) {
	t0 := time.Unix(1000, 0)
	c := NewCollector(t0, Snapshot{})
	c.Sample(t0.Add(2*time.Second), Snapshot{Ops: 500})
	if peak := c.PeakOpsPerSec(); math.Abs(peak-250) > 1e-9 {
		t.Fatalf("single-point peak %v, want 250", peak)
	}
}
