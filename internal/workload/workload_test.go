package workload

import (
	"math"
	"testing"
	"time"

	"octostore/internal/storage"
)

func TestBinOf(t *testing.T) {
	cases := []struct {
		bytes int64
		want  Bin
	}{
		{64 * storage.MB, BinA},
		{128 * storage.MB, BinB},
		{511 * storage.MB, BinB},
		{600 * storage.MB, BinC},
		{1 * storage.GB, BinD},
		{3 * storage.GB, BinE},
		{8 * storage.GB, BinF},
	}
	for _, c := range cases {
		if got := BinOf(c.bytes); got != c.want {
			t.Fatalf("BinOf(%d) = %v, want %v", c.bytes, got, c.want)
		}
	}
}

func TestBinString(t *testing.T) {
	if BinA.String() != "A" || BinF.String() != "F" {
		t.Fatal("bin strings wrong")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	t1 := Generate(FB(), 42)
	t2 := Generate(FB(), 42)
	if len(t1.Jobs) != len(t2.Jobs) || len(t1.Files) != len(t2.Files) {
		t.Fatal("same seed produced different shapes")
	}
	for i := range t1.Jobs {
		if t1.Jobs[i] != t2.Jobs[i] {
			t.Fatalf("job %d differs between runs", i)
		}
	}
	t3 := Generate(FB(), 43)
	same := true
	for i := range t1.Jobs {
		if i < len(t3.Jobs) && t1.Jobs[i] != t3.Jobs[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestFBTraceShape(t *testing.T) {
	tr := Generate(FB(), 1)
	if tr.Name != "FB" {
		t.Fatalf("name = %s", tr.Name)
	}
	if len(tr.Jobs) != 1000 {
		t.Fatalf("jobs = %d, want 1000", len(tr.Jobs))
	}
	// Bin distribution within tolerance of Table 3.
	counts := make([]int, NumBins)
	for _, j := range tr.Jobs {
		counts[j.Bin]++
	}
	fracA := float64(counts[BinA]) / float64(len(tr.Jobs))
	if math.Abs(fracA-0.744) > 0.05 {
		t.Fatalf("bin A fraction = %.3f, want ~0.744", fracA)
	}
	// File population: paper reports 1380 files for FB including outputs.
	outputs := 0
	for _, j := range tr.Jobs {
		if j.OutputPath != "" {
			outputs++
		}
	}
	total := len(tr.Files) + outputs
	if total < 1100 || total > 1700 {
		t.Fatalf("total files (inputs %d + outputs %d) = %d, want ~1380", len(tr.Files), outputs, total)
	}
}

func TestCMUTraceShape(t *testing.T) {
	tr := Generate(CMU(), 1)
	if len(tr.Jobs) != 800 {
		t.Fatalf("jobs = %d, want 800", len(tr.Jobs))
	}
	counts := make([]int, NumBins)
	for _, j := range tr.Jobs {
		counts[j.Bin]++
	}
	fracA := float64(counts[BinA]) / float64(len(tr.Jobs))
	if math.Abs(fracA-0.634) > 0.06 {
		t.Fatalf("bin A fraction = %.3f, want ~0.634", fracA)
	}
}

func TestArrivalsSortedWithinDuration(t *testing.T) {
	for _, p := range []Profile{FB(), CMU()} {
		tr := Generate(p, 7)
		var last time.Duration = -1
		for _, j := range tr.Jobs {
			if j.Arrival < last {
				t.Fatal("arrivals not sorted")
			}
			if j.Arrival < 0 || j.Arrival >= p.Duration {
				t.Fatalf("arrival %v outside [0, %v)", j.Arrival, p.Duration)
			}
			last = j.Arrival
		}
	}
}

func TestJobInputMatchesBin(t *testing.T) {
	tr := Generate(FB(), 11)
	sizes := make(map[string]int64, len(tr.Files))
	for _, f := range tr.Files {
		sizes[f.Path] = f.Size
	}
	// Outputs of earlier jobs are legitimate inputs of later jobs.
	producedAt := make(map[string]time.Duration)
	for _, j := range tr.Jobs {
		if j.OutputPath != "" {
			sizes[j.OutputPath] = j.OutputBytes
			producedAt[j.OutputPath] = j.Arrival
		}
	}
	chained := 0
	for _, j := range tr.Jobs {
		size, ok := sizes[j.InputPath]
		if !ok {
			t.Fatalf("job %d reads unknown file %s", j.ID, j.InputPath)
		}
		if size != j.InputBytes {
			t.Fatalf("job %d input bytes %d != file size %d", j.ID, j.InputBytes, size)
		}
		if BinOf(size) != j.Bin {
			t.Fatalf("job %d bin %v but input size %d is bin %v", j.ID, j.Bin, size, BinOf(size))
		}
		if at, isOutput := producedAt[j.InputPath]; isOutput {
			chained++
			if at >= j.Arrival {
				t.Fatalf("job %d consumes output %s before its producer arrives", j.ID, j.InputPath)
			}
		}
	}
	if chained == 0 {
		t.Fatal("no producer-consumer chains generated")
	}
}

func TestPopularitySkew(t *testing.T) {
	tr := Generate(FB(), 3)
	counts := tr.AccessCounts()
	over5 := 0
	for _, c := range counts {
		if c > 5 {
			over5++
		}
	}
	// Paper: 5.7% of FB files accessed more than 5 times. Inputs only here
	// (outputs are never re-read), so measure against the input population
	// and accept a broad band.
	frac := float64(over5) / float64(len(tr.Files))
	if frac < 0.005 || frac > 0.20 {
		t.Fatalf("fraction of files accessed >5 times = %.3f, want heavy-tailed", frac)
	}
	// Some files should never be accessed (plus all outputs).
	never := 0
	for _, f := range tr.Files {
		if counts[f.Path] == 0 {
			never++
		}
	}
	if never == 0 {
		t.Fatal("every input file accessed; expected a cold fraction")
	}
}

func TestTemporalLocalityDiffersBetweenProfiles(t *testing.T) {
	// Measure median reuse distance in time: FB should re-access files
	// sooner after their previous access than CMU.
	medianGap := func(tr *Trace) time.Duration {
		last := map[string]time.Duration{}
		var gaps []time.Duration
		for _, j := range tr.Jobs {
			if prev, ok := last[j.InputPath]; ok {
				gaps = append(gaps, j.Arrival-prev)
			}
			last[j.InputPath] = j.Arrival
		}
		if len(gaps) == 0 {
			return 0
		}
		// insertion sort is fine at this size
		for i := 1; i < len(gaps); i++ {
			for j := i; j > 0 && gaps[j] < gaps[j-1]; j-- {
				gaps[j], gaps[j-1] = gaps[j-1], gaps[j]
			}
		}
		return gaps[len(gaps)/2]
	}
	fb := medianGap(Generate(FB(), 5))
	cmu := medianGap(Generate(CMU(), 5))
	if fb == 0 || cmu == 0 {
		t.Fatal("no re-accesses generated")
	}
	if fb >= cmu {
		t.Fatalf("FB median reuse gap %v should be shorter than CMU %v", fb, cmu)
	}
}

func TestCMUPeriodicity(t *testing.T) {
	tr := Generate(CMU(), 9)
	// For files with >= 3 accesses, successive gaps should cluster near the
	// file's period: check that the coefficient of variation of gaps is
	// small for at least some files.
	accesses := map[string][]time.Duration{}
	for _, j := range tr.Jobs {
		accesses[j.InputPath] = append(accesses[j.InputPath], j.Arrival)
	}
	regular := 0
	candidates := 0
	for _, times := range accesses {
		if len(times) < 4 {
			continue
		}
		candidates++
		var gaps []float64
		for i := 1; i < len(times); i++ {
			gaps = append(gaps, (times[i] - times[i-1]).Seconds())
		}
		mean, varsum := 0.0, 0.0
		for _, g := range gaps {
			mean += g
		}
		mean /= float64(len(gaps))
		for _, g := range gaps {
			varsum += (g - mean) * (g - mean)
		}
		cv := math.Sqrt(varsum/float64(len(gaps))) / mean
		if cv < 0.5 {
			regular++
		}
	}
	if candidates == 0 {
		t.Fatal("no multi-access files in CMU trace")
	}
	if regular == 0 {
		t.Fatal("no periodically accessed files detected in CMU trace")
	}
}

func TestOutputJobs(t *testing.T) {
	tr := Generate(FB(), 13)
	withOutput := 0
	for _, j := range tr.Jobs {
		if j.OutputPath == "" {
			continue
		}
		withOutput++
		if j.OutputBytes <= 0 {
			t.Fatalf("job %d has output path but %d bytes", j.ID, j.OutputBytes)
		}
		if j.OutputBytes > j.InputBytes && j.OutputBytes > storage.MB {
			t.Fatalf("job %d output %d larger than input %d", j.ID, j.OutputBytes, j.InputBytes)
		}
	}
	frac := float64(withOutput) / float64(len(tr.Jobs))
	want := FB().OutputJobFraction
	if math.Abs(frac-want) > 0.06 {
		t.Fatalf("output job fraction = %.3f, want ~%.2f", frac, want)
	}
}

func TestTotalInputBytesReasonable(t *testing.T) {
	tr := Generate(FB(), 17)
	total := tr.TotalInputBytes()
	// Paper: FB processes 1380 files with total size 92 GB. The synthetic
	// trace should land in the same regime (tens of GB).
	if total < 30*storage.GB || total > 200*storage.GB {
		t.Fatalf("total input bytes = %.1f GB, want tens of GB", float64(total)/float64(storage.GB))
	}
}

func TestCPUPerTaskWithinBounds(t *testing.T) {
	p := FB()
	tr := Generate(p, 19)
	for _, j := range tr.Jobs {
		if j.CPUPerTask < p.CPUPerTaskMin || j.CPUPerTask > p.CPUPerTaskMax {
			t.Fatalf("job %d CPU %v outside [%v, %v]", j.ID, j.CPUPerTask, p.CPUPerTaskMin, p.CPUPerTaskMax)
		}
	}
}

func TestZipfCDF(t *testing.T) {
	cdf := zipfCDF(5, 1.0)
	if len(cdf) != 5 {
		t.Fatalf("len = %d", len(cdf))
	}
	if math.Abs(cdf[4]-1.0) > 1e-9 {
		t.Fatalf("cdf[last] = %v", cdf[4])
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i] <= cdf[i-1] {
			t.Fatal("cdf not increasing")
		}
	}
	if zipfCDF(0, 1.0) != nil {
		t.Fatal("empty cdf should be nil")
	}
}

func TestLogUniformBounds(t *testing.T) {
	tr := Generate(FB(), 23)
	for _, f := range tr.Files {
		lo, hi := binBounds(f.Bin)
		if f.Size < lo || f.Size >= hi+hi/8 { // allow rounding slack at top
			t.Fatalf("file %s size %d outside bin %v bounds [%d, %d)", f.Path, f.Size, f.Bin, lo, hi)
		}
	}
}
