package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// This file provides the trace generators and transforms the scenario
// subsystem composes into cluster perturbations: a drifting hot set (the
// popularity ranking rotates over time, defeating models trained on early
// segments), bursty arrival storms (arrival times compressed into periodic
// spikes), and multi-tenant job mixes (several traces interleaved under
// per-tenant namespaces).

// GenerateDrift builds a trace whose Zipf popularity ranking is re-drawn
// every Duration/segments: the file population stays fixed, but which files
// are hot rotates per segment. Unlike GenerateEvolving (fresh files each
// segment), drift keeps total data volume constant and stresses policies
// that must un-learn a previously hot set.
func GenerateDrift(p Profile, segments int, seed int64) *Trace {
	if segments < 1 {
		segments = 1
	}
	rng := rand.New(rand.NewSource(seed))
	tr := &Trace{Name: p.Name + "-drift", Duration: p.Duration}

	// Job bins and Poisson arrivals, exactly as Generate.
	bins, arrivals := jobBinsAndArrivals(rng, p)

	// One fixed file pool per bin.
	jobsPerBin := make([]int, NumBins)
	for _, b := range bins {
		jobsPerBin[b]++
	}
	pools := make([][]FileSpec, NumBins)
	fileID := 0
	for b := Bin(0); b < NumBins; b++ {
		n := poolSize(jobsPerBin[b], p.FilesPerBinJob[b])
		lo, hi := binBounds(b)
		for i := 0; i < n; i++ {
			spec := FileSpec{
				Path: fmt.Sprintf("/data/%s/bin%s/f%04d", tr.Name, b, fileID),
				Size: logUniform(rng, lo, hi),
				Bin:  b,
			}
			pools[b] = append(pools[b], spec)
			tr.Files = append(tr.Files, spec)
			fileID++
		}
	}

	// Per-segment popularity permutations: rank i of the Zipf draw maps to a
	// different file each segment.
	perms := make([][][]int, segments)
	for s := 0; s < segments; s++ {
		perms[s] = make([][]int, NumBins)
		segRng := rand.New(rand.NewSource(seed + 1009*int64(s+1)))
		for b := Bin(0); b < NumBins; b++ {
			perms[s][b] = segRng.Perm(len(pools[b]))
		}
	}
	zipf := make([][]float64, NumBins)
	for b := Bin(0); b < NumBins; b++ {
		zipf[b] = zipfCDF(len(pools[b]), p.ZipfS)
	}

	segLen := p.Duration / time.Duration(segments)
	for idx := 0; idx < p.NumJobs; idx++ {
		b := bins[idx]
		if len(pools[b]) == 0 {
			continue
		}
		seg := int(arrivals[idx] / segLen)
		if seg >= segments {
			seg = segments - 1
		}
		u := rng.Float64()
		rank := sort.SearchFloat64s(zipf[b], u)
		if rank >= len(pools[b]) {
			rank = len(pools[b]) - 1
		}
		f := pools[b][perms[seg][b][rank]]
		job := Job{
			ID:         idx,
			Arrival:    arrivals[idx],
			InputPath:  f.Path,
			InputBytes: f.Size,
			Bin:        b,
			CPUPerTask: p.CPUPerTaskMin +
				time.Duration(rng.Float64()*float64(p.CPUPerTaskMax-p.CPUPerTaskMin)),
		}
		tr.Jobs = append(tr.Jobs, job)
	}
	sort.Slice(tr.Jobs, func(a, b int) bool { return tr.Jobs[a].Arrival < tr.Jobs[b].Arrival })
	return tr
}

// Burstify compresses each job's arrival within its period-aligned window
// into the first `burst` of that window, turning a smooth Poisson arrival
// process into periodic storms separated by idle gaps. Relative job order is
// preserved; the trace duration is unchanged.
func Burstify(tr *Trace, period, burst time.Duration) *Trace {
	if period <= 0 || burst <= 0 || burst >= period {
		return tr
	}
	out := &Trace{Name: tr.Name + "-burst", Duration: tr.Duration, Files: tr.Files}
	out.Jobs = append([]Job(nil), tr.Jobs...)
	scale := float64(burst) / float64(period)
	for i := range out.Jobs {
		t := out.Jobs[i].Arrival
		window := t / period * period // period-aligned window start
		within := t - window
		out.Jobs[i].Arrival = window + time.Duration(float64(within)*scale)
	}
	sort.Slice(out.Jobs, func(a, b int) bool { return out.Jobs[a].Arrival < out.Jobs[b].Arrival })
	return out
}

// Merge interleaves several traces into one multi-tenant mix: tenant i's
// files and jobs move under the path prefix "/tenant<i>", job ids are
// re-assigned to stay unique, and jobs are ordered by arrival. The merged
// duration is the longest input duration.
func Merge(name string, traces ...*Trace) *Trace {
	out := &Trace{Name: name}
	nextID := 0
	for i, tr := range traces {
		prefix := fmt.Sprintf("/tenant%d", i)
		if tr.Duration > out.Duration {
			out.Duration = tr.Duration
		}
		for _, f := range tr.Files {
			f.Path = prefix + f.Path
			out.Files = append(out.Files, f)
		}
		for _, j := range tr.Jobs {
			j.ID = nextID
			nextID++
			j.InputPath = prefix + j.InputPath
			if j.OutputPath != "" {
				j.OutputPath = prefix + j.OutputPath
			}
			out.Jobs = append(out.Jobs, j)
		}
	}
	sort.Slice(out.Jobs, func(a, b int) bool {
		if out.Jobs[a].Arrival != out.Jobs[b].Arrival {
			return out.Jobs[a].Arrival < out.Jobs[b].Arrival
		}
		return out.Jobs[a].ID < out.Jobs[b].ID
	})
	return out
}
