// Package workload generates synthetic MapReduce-style traces calibrated to
// the Facebook (FB) and CMU OpenCloud workloads the paper derives with SWIM
// (Section 7.1): matching job counts, the Table 3 bin distribution of job
// input sizes, heavy-tailed file sizes, skewed file popularity (a small
// fraction of files accessed more than five times; a sizable fraction of
// files created but never read), and each workload's temporal structure —
// FB exhibits strong short-term temporal locality, while CMU's scientific
// jobs periodically re-scan datasets, which defeats pure recency policies.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"octostore/internal/storage"
)

// Bin classifies jobs by input data size (Table 3).
type Bin int

// The six bins of Table 3.
const (
	BinA Bin = iota // 0-128 MB
	BinB            // 128-512 MB
	BinC            // 0.5-1 GB
	BinD            // 1-2 GB
	BinE            // 2-5 GB
	BinF            // 5-10 GB
	NumBins
)

// String implements fmt.Stringer.
func (b Bin) String() string {
	if b < 0 || b >= NumBins {
		return fmt.Sprintf("Bin(%d)", int(b))
	}
	return string(rune('A' + int(b)))
}

// binBounds returns the [lo, hi) input-size range of a bin in bytes.
func binBounds(b Bin) (lo, hi int64) {
	switch b {
	case BinA:
		return 1 * storage.MB, 128 * storage.MB
	case BinB:
		return 128 * storage.MB, 512 * storage.MB
	case BinC:
		return 512 * storage.MB, 1 * storage.GB
	case BinD:
		return 1 * storage.GB, 2 * storage.GB
	case BinE:
		return 2 * storage.GB, 5 * storage.GB
	default:
		return 5 * storage.GB, 10 * storage.GB
	}
}

// BinOf classifies an input size in bytes.
func BinOf(bytes int64) Bin {
	switch {
	case bytes < 128*storage.MB:
		return BinA
	case bytes < 512*storage.MB:
		return BinB
	case bytes < 1*storage.GB:
		return BinC
	case bytes < 2*storage.GB:
		return BinD
	case bytes < 5*storage.GB:
		return BinE
	default:
		return BinF
	}
}

// FileSpec is one pre-existing input file of the trace. CreatedAt is the
// offset at which the file appears; plain Generate leaves it at zero
// (all inputs staged up front, as SWIM does), while GenerateEvolving marks
// each segment's files with the segment start.
type FileSpec struct {
	Path      string
	Size      int64
	Bin       Bin
	CreatedAt time.Duration
}

// Job is one trace job: it arrives, reads its input file, computes, and
// optionally persists an output file.
type Job struct {
	ID          int
	Arrival     time.Duration // offset from trace start
	InputPath   string
	InputBytes  int64
	OutputPath  string // empty when the job does not persist output
	OutputBytes int64
	CPUPerTask  time.Duration
	Bin         Bin
}

// Trace is a complete generated workload.
type Trace struct {
	Name     string
	Duration time.Duration
	Files    []FileSpec
	Jobs     []Job
}

// TotalInputBytes sums the sizes of the pre-existing files.
func (t *Trace) TotalInputBytes() int64 {
	var total int64
	for _, f := range t.Files {
		total += f.Size
	}
	return total
}

// AccessCounts returns how many jobs read each input file path.
func (t *Trace) AccessCounts() map[string]int {
	counts := make(map[string]int, len(t.Files))
	for _, j := range t.Jobs {
		counts[j.InputPath]++
	}
	return counts
}

// Profile parameterises trace generation for one workload family.
type Profile struct {
	Name     string
	NumJobs  int
	Duration time.Duration

	// BinFractions is the Table 3 job-count distribution.
	BinFractions [NumBins]float64
	// FilesPerBinJob controls how many distinct input files back each
	// bin's job population: distinct files ≈ jobs*factor (min 1). Large
	// bins use factors well below 1 so that a few big datasets are shared
	// by many jobs, keeping the total data volume at the paper's ~90 GB
	// scale while preserving the heavy-tailed job-size distribution.
	FilesPerBinJob [NumBins]float64
	// ZipfS is the within-bin popularity skew (>1 = more skew).
	ZipfS float64
	// TemporalLocality is the probability that a job re-reads a recently
	// accessed file of its bin instead of drawing by popularity (FB-style
	// short-term reuse).
	TemporalLocality float64
	// PeriodicFraction is the probability that a job's input is chosen by
	// the periodic-scan schedule of its bin (CMU-style re-scans).
	PeriodicFraction float64
	// ScanPeriodMin/Max bound each file's re-scan period.
	ScanPeriodMin, ScanPeriodMax time.Duration
	// OutputJobFraction is the fraction of jobs that persist output.
	OutputJobFraction float64
	// OutputRatioMin/Max bound output size as a fraction of input.
	OutputRatioMin, OutputRatioMax float64
	// OutputReuse is the probability that a job reads a previous job's
	// output instead of a pre-existing file (producer-consumer chains).
	// Mid-run production is what keeps the memory tier churning; outputs
	// that are never reused form the paper's "created but never accessed"
	// population.
	OutputReuse float64
	// CPUPerTaskMin/Max bound per-task compute time.
	CPUPerTaskMin, CPUPerTaskMax time.Duration
}

// FB returns the Facebook-derived profile: 1000 jobs over 6 hours,
// dominated by small jobs (Table 3), strong temporal locality, and a file
// population of roughly 1380 files totalling ~92 GB once outputs are
// counted (Section 7.1).
func FB() Profile {
	return Profile{
		Name:     "FB",
		NumJobs:  1000,
		Duration: 6 * time.Hour,
		BinFractions: [NumBins]float64{
			0.744, 0.162, 0.040, 0.030, 0.016, 0.008,
		},
		FilesPerBinJob:    [NumBins]float64{1.10, 0.50, 0.40, 0.40, 0.30, 0.30},
		ZipfS:             1.1,
		TemporalLocality:  0.50,
		PeriodicFraction:  0.0,
		OutputJobFraction: 0.60,
		OutputRatioMin:    0.20,
		OutputRatioMax:    0.90,
		OutputReuse:       0.30,
		CPUPerTaskMin:     2 * time.Second,
		CPUPerTaskMax:     6 * time.Second,
	}
}

// CMU returns the OpenCloud-derived profile: 800 scientific jobs over 6
// hours with flatter small-job skew (Table 3) and periodic dataset
// re-scans in place of short-term locality, the access structure that makes
// recency-only policies underperform (Section 7.2).
func CMU() Profile {
	return Profile{
		Name:     "CMU",
		NumJobs:  800,
		Duration: 6 * time.Hour,
		BinFractions: [NumBins]float64{
			0.634, 0.291, 0.009, 0.049, 0.015, 0.003,
		},
		FilesPerBinJob:    [NumBins]float64{1.30, 0.50, 0.50, 0.40, 0.30, 0.50},
		ZipfS:             1.05,
		TemporalLocality:  0.02,
		PeriodicFraction:  0.85,
		ScanPeriodMin:     100 * time.Minute,
		ScanPeriodMax:     240 * time.Minute,
		OutputJobFraction: 0.50,
		OutputRatioMin:    0.20,
		OutputRatioMax:    0.90,
		OutputReuse:       0.25,
		CPUPerTaskMin:     2 * time.Second,
		CPUPerTaskMax:     8 * time.Second,
	}
}

// CapProfile truncates a profile's job-size distribution at the given bin:
// fractions above max are zeroed and the remainder renormalized to sum to
// one. Shrunken test clusters use it so single files still fit a tier.
func CapProfile(p Profile, max Bin) Profile {
	if max >= NumBins-1 {
		return p
	}
	var capped [NumBins]float64
	total := 0.0
	for b := BinA; b <= max; b++ {
		total += p.BinFractions[b]
	}
	if total <= 0 {
		return p
	}
	for b := BinA; b <= max; b++ {
		capped[b] = p.BinFractions[b] / total
	}
	p.BinFractions = capped
	return p
}

// binFile is generation-time state for one input file.
type binFile struct {
	spec       FileSpec
	lastAccess time.Duration
	accessed   bool
	period     time.Duration
	nextDue    time.Duration
}

// jobBinsAndArrivals decides each job's bin per the Table 3 distribution
// and its arrival time (Poisson process over the duration, stragglers
// clamped in). Shared by Generate and GenerateDrift so the arrival model
// cannot drift between them.
func jobBinsAndArrivals(rng *rand.Rand, p Profile) ([]Bin, []time.Duration) {
	bins := make([]Bin, p.NumJobs)
	for i := range bins {
		bins[i] = sampleBin(rng, p.BinFractions)
	}
	arrivals := make([]time.Duration, p.NumJobs)
	rate := float64(p.NumJobs) / p.Duration.Seconds()
	at := 0.0
	for i := range arrivals {
		at += rng.ExpFloat64() / rate
		arrivals[i] = time.Duration(at * float64(time.Second))
		if arrivals[i] >= p.Duration {
			arrivals[i] = p.Duration - time.Minute
		}
	}
	return bins, arrivals
}

// poolSize is the number of distinct input files backing a bin's jobs.
func poolSize(jobs int, factor float64) int {
	n := int(math.Ceil(float64(jobs) * factor))
	if jobs > 0 && n < 1 {
		n = 1
	}
	return n
}

// Generate builds a deterministic trace from a profile and seed.
func Generate(p Profile, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &Trace{Name: p.Name, Duration: p.Duration}

	// 1. Decide each job's bin and arrival time.
	bins, arrivals := jobBinsAndArrivals(rng, p)

	// 2. Build the per-bin input file pools.
	jobsPerBin := make([]int, NumBins)
	for _, b := range bins {
		jobsPerBin[b]++
	}
	pools := make([][]*binFile, NumBins)
	fileID := 0
	for b := Bin(0); b < NumBins; b++ {
		n := poolSize(jobsPerBin[b], p.FilesPerBinJob[b])
		lo, hi := binBounds(b)
		for i := 0; i < n; i++ {
			size := logUniform(rng, lo, hi)
			f := &binFile{spec: FileSpec{
				Path: fmt.Sprintf("/data/%s/bin%s/f%04d", p.Name, b, fileID),
				Size: size,
				Bin:  b,
			}}
			if p.PeriodicFraction > 0 {
				f.period = p.ScanPeriodMin +
					time.Duration(rng.Float64()*float64(p.ScanPeriodMax-p.ScanPeriodMin))
				f.nextDue = time.Duration(rng.Float64() * float64(f.period))
			}
			pools[b] = append(pools[b], f)
			tr.Files = append(tr.Files, f.spec)
			fileID++
		}
	}

	// 3. Assign each job an input file using the profile's access
	// structure, walking jobs in arrival order.
	order := make([]int, p.NumJobs)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return arrivals[order[a]] < arrivals[order[b]] })

	zipfWeights := make([][]float64, NumBins)
	for b := Bin(0); b < NumBins; b++ {
		zipfWeights[b] = zipfCDF(len(pools[b]), p.ZipfS)
	}

	// Outputs become available for chained consumption a little after their
	// producer arrives (approximating job runtime).
	const produceMargin = 10 * time.Minute
	type producedFile struct {
		file        *binFile
		availableAt time.Duration
	}
	var produced [NumBins][]*producedFile

	for _, idx := range order {
		b := bins[idx]
		pool := pools[b]
		if len(pool) == 0 {
			continue
		}
		now := arrivals[idx]
		var f *binFile
		// Producer-consumer chain: read a prior job's output of this bin.
		if p.OutputReuse > 0 && rng.Float64() < p.OutputReuse {
			avail := produced[b]
			for i := len(avail) - 1; i >= 0; i-- {
				if avail[i].availableAt <= now {
					f = avail[i].file
					break
				}
			}
		}
		if f == nil {
			f = chooseFile(rng, p, pool, zipfWeights[b], now)
		}
		f.lastAccess = now
		f.accessed = true
		if p.PeriodicFraction > 0 && f.period > 0 {
			f.nextDue = now + f.period
		}
		job := Job{
			ID:         idx,
			Arrival:    now,
			InputPath:  f.spec.Path,
			InputBytes: f.spec.Size,
			Bin:        b,
			CPUPerTask: p.CPUPerTaskMin +
				time.Duration(rng.Float64()*float64(p.CPUPerTaskMax-p.CPUPerTaskMin)),
		}
		if rng.Float64() < p.OutputJobFraction {
			ratio := p.OutputRatioMin + rng.Float64()*(p.OutputRatioMax-p.OutputRatioMin)
			job.OutputPath = fmt.Sprintf("/out/%s/job%04d", p.Name, idx)
			job.OutputBytes = int64(ratio * float64(f.spec.Size))
			if job.OutputBytes < storage.MB {
				job.OutputBytes = storage.MB
			}
			out := &binFile{spec: FileSpec{
				Path:      job.OutputPath,
				Size:      job.OutputBytes,
				Bin:       BinOf(job.OutputBytes),
				CreatedAt: now,
			}}
			produced[out.spec.Bin] = append(produced[out.spec.Bin],
				&producedFile{file: out, availableAt: now + produceMargin})
		}
		tr.Jobs = append(tr.Jobs, job)
	}
	sort.Slice(tr.Jobs, func(a, b int) bool { return tr.Jobs[a].Arrival < tr.Jobs[b].Arrival })
	return tr
}

// chooseFile picks a job's input file per the profile's access structure.
func chooseFile(rng *rand.Rand, p Profile, pool []*binFile, zipf []float64, now time.Duration) *binFile {
	// CMU-style periodic scans: pick the most overdue file.
	if p.PeriodicFraction > 0 && rng.Float64() < p.PeriodicFraction {
		var best *binFile
		var bestOver time.Duration = math.MinInt64
		for _, f := range pool {
			over := now - f.nextDue
			if over > bestOver {
				best, bestOver = f, over
			}
		}
		if best != nil {
			return best
		}
	}
	// FB-style temporal locality: re-read something touched recently, with
	// a bias toward the most recent files (short-term reuse bursts).
	if p.TemporalLocality > 0 && rng.Float64() < p.TemporalLocality {
		const window = 30 * time.Minute
		var recent []*binFile
		for _, f := range pool {
			if f.accessed && now-f.lastAccess < window {
				recent = append(recent, f)
			}
		}
		if len(recent) > 0 {
			// Sort-free recency bias: sample two and keep the fresher.
			a := recent[rng.Intn(len(recent))]
			b := recent[rng.Intn(len(recent))]
			if b.lastAccess.Seconds() > a.lastAccess.Seconds() {
				return b
			}
			return a
		}
	}
	// Popularity draw (Zipf over the bin pool).
	u := rng.Float64()
	i := sort.SearchFloat64s(zipf, u)
	if i >= len(pool) {
		i = len(pool) - 1
	}
	return pool[i]
}

// GenerateEvolving concatenates per-segment traces so the access patterns
// shift over time: segment i uses profiles[i mod len(profiles)] with a
// fresh file pool and seed. It drives the workload-change experiments
// (Figures 16 and 17): a model trained on early segments faces different
// patterns later.
func GenerateEvolving(profiles []Profile, segment time.Duration, segments int, seed int64) *Trace {
	out := &Trace{Name: "evolving", Duration: segment * time.Duration(segments)}
	for i := 0; i < segments; i++ {
		p := profiles[i%len(profiles)]
		p.NumJobs = int(float64(p.NumJobs) * segment.Seconds() / p.Duration.Seconds())
		if p.NumJobs < 1 {
			p.NumJobs = 1
		}
		p.Duration = segment
		p.Name = fmt.Sprintf("%s-seg%d", p.Name, i)
		sub := Generate(p, seed+int64(i)*7919)
		offset := segment * time.Duration(i)
		for _, f := range sub.Files {
			f.CreatedAt = offset
			out.Files = append(out.Files, f)
		}
		for _, j := range sub.Jobs {
			j.Arrival += offset
			out.Jobs = append(out.Jobs, j)
		}
	}
	return out
}

// sampleBin draws a bin from the distribution.
func sampleBin(rng *rand.Rand, fractions [NumBins]float64) Bin {
	u := rng.Float64()
	acc := 0.0
	for b := Bin(0); b < NumBins; b++ {
		acc += fractions[b]
		if u < acc {
			return b
		}
	}
	return BinA
}

// logUniform draws a size log-uniformly from [lo, hi).
func logUniform(rng *rand.Rand, lo, hi int64) int64 {
	l, h := math.Log(float64(lo)), math.Log(float64(hi))
	return int64(math.Exp(l + rng.Float64()*(h-l)))
}

// zipfCDF returns the cumulative Zipf(s) distribution over n ranks.
func zipfCDF(n int, s float64) []float64 {
	if n == 0 {
		return nil
	}
	weights := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		w := 1.0 / math.Pow(float64(i+1), s)
		weights[i] = w
		total += w
	}
	acc := 0.0
	for i := range weights {
		acc += weights[i] / total
		weights[i] = acc
	}
	return weights
}
