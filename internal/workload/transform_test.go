package workload

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestGenerateDriftDeterministic(t *testing.T) {
	p := FB()
	p.NumJobs = 200
	a := GenerateDrift(p, 4, 7)
	b := GenerateDrift(p, 4, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("GenerateDrift not deterministic for equal seeds")
	}
	c := GenerateDrift(p, 4, 8)
	if reflect.DeepEqual(a.Jobs, c.Jobs) {
		t.Fatal("different seeds produced identical job streams")
	}
}

// TestGenerateDriftHotSetMoves checks the defining property: the most
// popular file of the first time segment differs from the most popular file
// of the last segment, while the file population is shared.
func TestGenerateDriftHotSetMoves(t *testing.T) {
	p := FB()
	p.NumJobs = 600
	segments := 3
	tr := GenerateDrift(p, segments, 11)
	segLen := tr.Duration / time.Duration(segments)
	top := func(lo, hi time.Duration) string {
		counts := map[string]int{}
		for _, j := range tr.Jobs {
			if j.Arrival >= lo && j.Arrival < hi {
				counts[j.InputPath]++
			}
		}
		best, bestN := "", -1
		for path, n := range counts {
			if n > bestN || (n == bestN && path < best) {
				best, bestN = path, n
			}
		}
		return best
	}
	first := top(0, segLen)
	last := top(tr.Duration-segLen, tr.Duration+1)
	if first == "" || last == "" {
		t.Fatal("empty segment")
	}
	if first == last {
		t.Fatalf("hot set did not drift: %q tops both first and last segment", first)
	}
	// All inputs come from the fixed pre-staged population.
	files := map[string]bool{}
	for _, f := range tr.Files {
		files[f.Path] = true
	}
	for _, j := range tr.Jobs {
		if !files[j.InputPath] {
			t.Fatalf("job input %q not in the file population", j.InputPath)
		}
	}
}

func TestBurstifyCompressesArrivals(t *testing.T) {
	p := FB()
	p.NumJobs = 300
	tr := Generate(p, 3)
	period := 30 * time.Minute
	burst := 5 * time.Minute
	out := Burstify(tr, period, burst)
	if len(out.Jobs) != len(tr.Jobs) {
		t.Fatalf("job count changed: %d -> %d", len(tr.Jobs), len(out.Jobs))
	}
	for _, j := range out.Jobs {
		within := j.Arrival % period
		if within >= burst {
			t.Fatalf("arrival %v lands %v into its window, outside the %v burst", j.Arrival, within, burst)
		}
	}
	// The original trace must be untouched.
	for _, j := range tr.Jobs {
		if j.Arrival%period >= burst {
			return
		}
	}
	t.Fatal("original trace had no arrival outside the burst window; test vacuous")
}

func TestBurstifyRejectsBadWindows(t *testing.T) {
	tr := Generate(FB(), 3)
	if got := Burstify(tr, 0, time.Minute); got != tr {
		t.Fatal("zero period should return the input unchanged")
	}
	if got := Burstify(tr, time.Minute, time.Minute); got != tr {
		t.Fatal("burst >= period should return the input unchanged")
	}
}

func TestMergeMultiTenant(t *testing.T) {
	fb := FB()
	fb.NumJobs = 100
	cmu := CMU()
	cmu.NumJobs = 80
	a := Generate(fb, 5)
	b := Generate(cmu, 5)
	m := Merge("mix", a, b)
	if len(m.Jobs) != len(a.Jobs)+len(b.Jobs) {
		t.Fatalf("merged jobs = %d, want %d", len(m.Jobs), len(a.Jobs)+len(b.Jobs))
	}
	if len(m.Files) != len(a.Files)+len(b.Files) {
		t.Fatalf("merged files = %d, want %d", len(m.Files), len(a.Files)+len(b.Files))
	}
	ids := map[int]bool{}
	for i, j := range m.Jobs {
		if ids[j.ID] {
			t.Fatalf("duplicate job id %d", j.ID)
		}
		ids[j.ID] = true
		if !strings.HasPrefix(j.InputPath, "/tenant0") && !strings.HasPrefix(j.InputPath, "/tenant1") {
			t.Fatalf("job input %q missing tenant prefix", j.InputPath)
		}
		if i > 0 && m.Jobs[i-1].Arrival > j.Arrival {
			t.Fatal("merged jobs not ordered by arrival")
		}
	}
	if m.Duration != a.Duration && m.Duration != b.Duration {
		t.Fatalf("merged duration %v matches neither input", m.Duration)
	}
}
