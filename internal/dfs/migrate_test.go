package dfs

import (
	"errors"
	"testing"

	"octostore/internal/storage"
)

// The detach/attach pair is the shard rebalancer's migration primitive:
// these tests pin its contract on plain file systems — layout preserved
// bit for bit, accounting conserved on both sides, client stats untouched,
// and clean failure with zero side effects.

func TestDetachAttachMovesFileBetweenSystems(t *testing.T) {
	eA, fsA := testFS(t, ModeOctopus)
	_, fsB := testFS(t, ModeOctopus)

	createFile(t, eA, fsA, "/hot/d0/f0", 40*storage.MB)
	createFile(t, eA, fsA, "/hot/d0/f1", 24*storage.MB)
	wantRes := fsA.TierResidency()
	wantLive := fsA.LiveReplicaBytes()
	createdA, deletedA := fsA.Stats().FilesCreated, fsA.Stats().FilesDeleted

	var moved int64
	for _, p := range []string{"/hot/d0/f0", "/hot/d0/f1"} {
		rec, err := fsA.DetachFile(p)
		if err != nil {
			t.Fatalf("detach %s: %v", p, err)
		}
		moved += rec.Bytes()
		if err := fsB.AttachFile(rec); err != nil {
			t.Fatalf("attach %s: %v", p, err)
		}
	}

	if fsA.LiveReplicaBytes() != 0 {
		t.Fatalf("source still holds %d live bytes", fsA.LiveReplicaBytes())
	}
	if got := fsB.LiveReplicaBytes(); got != wantLive || got != moved {
		t.Fatalf("destination live bytes = %d, want %d (record says %d)", got, wantLive, moved)
	}
	gotRes := fsB.TierResidency()
	if len(gotRes) != len(wantRes) {
		t.Fatalf("destination has %d files, want %d", len(gotRes), len(wantRes))
	}
	for p, want := range wantRes {
		if gotRes[p] != want {
			t.Fatalf("residency of %s = %v, want %v", p, gotRes[p], want)
		}
	}
	// Migration relocates metadata; neither side counts client activity.
	if fsA.Stats().FilesCreated != createdA || fsA.Stats().FilesDeleted != deletedA {
		t.Fatalf("detach bumped client stats: %+v", fsA.Stats())
	}
	if fsB.Stats().FilesCreated != 0 || fsB.Stats().FilesDeleted != 0 {
		t.Fatalf("attach bumped client stats: %+v", fsB.Stats())
	}
	for _, fs := range []*FileSystem{fsA, fsB} {
		if err := fs.CheckAccounting(); err != nil {
			t.Fatal(err)
		}
		if err := fs.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	// The source can delete-and-recreate the path; the destination serves it.
	if _, err := fsB.Open("/hot/d0/f0"); err != nil {
		t.Fatalf("destination cannot open migrated file: %v", err)
	}
	if _, err := fsA.Open("/hot/d0/f0"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("source still resolves migrated file: %v", err)
	}
}

func TestSnapshotLeavesFileUntouched(t *testing.T) {
	e, fs := testFS(t, ModeHDFS)
	createFile(t, e, fs, "/a/f", 16*storage.MB)
	live := fs.LiveReplicaBytes()
	rec, err := fs.SnapshotFile("/a/f")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Bytes() != 3*16*storage.MB {
		t.Fatalf("record bytes = %d, want 3 HDFS replicas", rec.Bytes())
	}
	if fs.LiveReplicaBytes() != live {
		t.Fatal("snapshot changed live bytes")
	}
	if _, err := fs.Open("/a/f"); err != nil {
		t.Fatalf("snapshot disturbed the file: %v", err)
	}
	if err := fs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAttachFailsCleanly(t *testing.T) {
	eA, fsA := testFS(t, ModeHDFS)
	eB, fsB := testFS(t, ModeHDFS)
	createFile(t, eA, fsA, "/a/f", 16*storage.MB)
	createFile(t, eB, fsB, "/a/f", 16*storage.MB)

	rec, err := fsA.DetachFile("/a/f")
	if err != nil {
		t.Fatal(err)
	}
	// Path taken: a client recreated it on the destination mid-migration.
	if err := fsB.AttachFile(rec); !errors.Is(err, ErrExists) {
		t.Fatalf("attach over existing path: %v, want ErrExists", err)
	}
	// No capacity: the record wants more than the whole cluster holds.
	huge := rec
	huge.Path = "/a/huge"
	huge.Blocks = []BlockLayout{{Size: 1 << 50, Media: []storage.Media{storage.HDD}, Cache: []bool{false}}}
	live := fsB.LiveReplicaBytes()
	if err := fsB.AttachFile(huge); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("oversized attach: %v, want ErrNoCapacity", err)
	}
	if fsB.LiveReplicaBytes() != live {
		t.Fatal("failed attach leaked live bytes")
	}
	if err := fsB.CheckAccounting(); err != nil {
		t.Fatal(err)
	}
	if err := fsB.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The detached record is still good: re-attach on the source restores it.
	if err := fsA.AttachFile(rec); err != nil {
		t.Fatalf("re-attach on source: %v", err)
	}
	if err := fsA.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDetachRefusesFileMidCreate(t *testing.T) {
	_, fs := testFS(t, ModeHDFS)
	fs.Create("/a/slow", 16*storage.MB, func(*File, error) {})
	// The engine has not run: the write pipeline is still in flight.
	if _, err := fs.DetachFile("/a/slow"); !errors.Is(err, ErrFileIncomplete) {
		t.Fatalf("detach mid-create: %v, want ErrFileIncomplete", err)
	}
	if _, err := fs.SnapshotFile("/a/slow"); !errors.Is(err, ErrFileIncomplete) {
		t.Fatalf("snapshot mid-create: %v, want ErrFileIncomplete", err)
	}
}
