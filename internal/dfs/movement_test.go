package dfs

import (
	"errors"
	"testing"

	"octostore/internal/storage"
)

// moveSync runs a MoveFileReplicas to completion on the engine.
func moveSync(t *testing.T, fs *FileSystem, f *File, from, to storage.Media) error {
	t.Helper()
	var moveErr error
	completed := false
	if err := fs.MoveFileReplicas(f, from, to, func(err error) {
		moveErr = err
		completed = true
	}); err != nil {
		return err
	}
	fs.Engine().Run()
	if !completed {
		t.Fatal("move never completed")
	}
	return moveErr
}

func TestMoveFileReplicasDowngrade(t *testing.T) {
	e, fs := testFS(t, ModeOctopus)
	f := createFile(t, e, fs, "/f", 16*storage.MB)
	if !f.HasReplicaOn(storage.Memory) {
		t.Fatal("precondition: no memory replica")
	}
	memBefore, _ := fs.Cluster().TierUsage(storage.Memory)
	if err := moveSync(t, fs, f, storage.Memory, storage.SSD); err != nil {
		t.Fatal(err)
	}
	if f.HasReplicaOn(storage.Memory) {
		t.Fatal("memory replica remains after downgrade")
	}
	if got := f.BytesOn(storage.SSD); got != 2*16*storage.MB {
		t.Fatalf("SSD bytes = %d, want 2 blocks' worth (original + moved)", got)
	}
	memAfter, _ := fs.Cluster().TierUsage(storage.Memory)
	if memAfter != memBefore-16*storage.MB {
		t.Fatalf("memory usage %d -> %d, want release of 16MB", memBefore, memAfter)
	}
	if fs.Stats().BytesDowngradedTo[storage.SSD] != 16*storage.MB {
		t.Fatalf("downgrade stats = %d", fs.Stats().BytesDowngradedTo[storage.SSD])
	}
}

func TestMoveFileReplicasUpgrade(t *testing.T) {
	e, fs := testFS(t, ModePinnedHDD)
	f := createFile(t, e, fs, "/f", 16*storage.MB)
	if err := moveSync(t, fs, f, storage.HDD, storage.Memory); err != nil {
		t.Fatal(err)
	}
	if !f.HasReplicaOn(storage.Memory) {
		t.Fatal("no memory replica after upgrade")
	}
	if fs.Stats().BytesUpgradedTo[storage.Memory] != 16*storage.MB {
		t.Fatalf("upgrade stats = %d", fs.Stats().BytesUpgradedTo[storage.Memory])
	}
}

func TestMoveMissingSourceTier(t *testing.T) {
	e, fs := testFS(t, ModeHDFS)
	f := createFile(t, e, fs, "/f", 16*storage.MB)
	err := fs.MoveFileReplicas(f, storage.Memory, storage.SSD, nil)
	if !errors.Is(err, ErrNoReplica) {
		t.Fatalf("move without source error = %v", err)
	}
}

func TestMoveToSameTierRejected(t *testing.T) {
	e, fs := testFS(t, ModeHDFS)
	f := createFile(t, e, fs, "/f", 16*storage.MB)
	if err := fs.MoveFileReplicas(f, storage.HDD, storage.HDD, nil); err == nil {
		t.Fatal("move to same tier should fail")
	}
}

func TestMoveWhileBusyRejected(t *testing.T) {
	e, fs := testFS(t, ModeOctopus)
	f := createFile(t, e, fs, "/f", 16*storage.MB)
	if err := fs.MoveFileReplicas(f, storage.Memory, storage.SSD, nil); err != nil {
		t.Fatal(err)
	}
	// Second move before the first commits must be rejected.
	if err := fs.MoveFileReplicas(f, storage.SSD, storage.HDD, nil); !errors.Is(err, ErrBusy) {
		t.Fatalf("concurrent move error = %v", err)
	}
	e.Run()
}

func TestMoveRollbackOnNoCapacity(t *testing.T) {
	e, fs := testFS(t, ModePinnedHDD)
	// Fill memory completely so upgrades cannot fit.
	for _, n := range fs.Cluster().Nodes() {
		for _, d := range n.Devices(storage.Memory) {
			if err := d.Reserve(d.Free()); err != nil {
				t.Fatal(err)
			}
		}
	}
	f := createFile(t, e, fs, "/f", 16*storage.MB)
	err := fs.MoveFileReplicas(f, storage.HDD, storage.Memory, nil)
	if !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("move error = %v", err)
	}
	// HDD usage must be unchanged (no partial reservations leaked on SSD).
	ssdUsed, _ := fs.Cluster().TierUsage(storage.SSD)
	if ssdUsed != 0 {
		t.Fatalf("SSD usage leaked: %d", ssdUsed)
	}
}

func TestMoveKeepsFileReadableDuringTransfer(t *testing.T) {
	e, fs := testFS(t, ModeOctopus)
	f := createFile(t, e, fs, "/f", 16*storage.MB)
	if err := fs.MoveFileReplicas(f, storage.Memory, storage.SSD, nil); err != nil {
		t.Fatal(err)
	}
	var res ReadResult
	var readErr error
	fs.ReadBlock(f.Blocks()[0], nil, func(r ReadResult, err error) { res, readErr = r, err })
	e.Run()
	if readErr != nil {
		t.Fatalf("read during move: %v", readErr)
	}
	_ = res
}

func TestCopyFileReplicas(t *testing.T) {
	e, fs := testFS(t, ModePinnedHDD)
	f := createFile(t, e, fs, "/f", 16*storage.MB)
	var copyErr error
	completed := false
	if err := fs.CopyFileReplicas(f, storage.Memory, func(err error) {
		copyErr = err
		completed = true
	}); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if !completed || copyErr != nil {
		t.Fatalf("copy completed=%v err=%v", completed, copyErr)
	}
	if !f.HasReplicaOn(storage.Memory) {
		t.Fatal("no memory replica after copy")
	}
	if !f.HasReplicaOn(storage.HDD) {
		t.Fatal("HDD replicas lost by copy")
	}
	b := f.Blocks()[0]
	if got := len(b.Replicas()); got != 4 {
		t.Fatalf("replicas = %d, want 4", got)
	}
}

func TestCopyNoopWhenAlreadyPresent(t *testing.T) {
	e, fs := testFS(t, ModeOctopus)
	f := createFile(t, e, fs, "/f", 16*storage.MB)
	completed := false
	if err := fs.CopyFileReplicas(f, storage.Memory, func(err error) {
		if err != nil {
			t.Errorf("noop copy err: %v", err)
		}
		completed = true
	}); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if !completed {
		t.Fatal("noop copy never signalled completion")
	}
	if got := len(f.Blocks()[0].Replicas()); got != 3 {
		t.Fatalf("replicas = %d after noop copy", got)
	}
}

func TestDeleteFileReplicas(t *testing.T) {
	e, fs := testFS(t, ModeOctopus)
	f := createFile(t, e, fs, "/f", 16*storage.MB)
	memBefore, _ := fs.Cluster().TierUsage(storage.Memory)
	if err := fs.DeleteFileReplicas(f, storage.Memory); err != nil {
		t.Fatal(err)
	}
	if f.HasReplicaOn(storage.Memory) {
		t.Fatal("memory replica remains")
	}
	memAfter, _ := fs.Cluster().TierUsage(storage.Memory)
	if memAfter >= memBefore {
		t.Fatal("memory not released")
	}
	_ = e
}

func TestDeleteLastReplicaRefused(t *testing.T) {
	e := newSingleReplicaFS(t)
	fs, f := e.fs, e.file
	if err := fs.DeleteFileReplicas(f, storage.HDD); !errors.Is(err, ErrLastCopy) {
		t.Fatalf("delete last replica error = %v", err)
	}
}

type singleReplicaEnv struct {
	fs   *FileSystem
	file *File
}

func newSingleReplicaFS(t *testing.T) *singleReplicaEnv {
	t.Helper()
	e, _ := testFS(t, ModeHDFS)
	_ = e
	eng, fs := testFS(t, ModeHDFS)
	fs.cfg.Replication = 1
	f := createFile(t, eng, fs, "/single", 16*storage.MB)
	return &singleReplicaEnv{fs: fs, file: f}
}

func TestUnderReplicatedFiles(t *testing.T) {
	e, fs := testFS(t, ModeOctopus)
	f := createFile(t, e, fs, "/f", 16*storage.MB)
	if got := fs.UnderReplicatedFiles(); len(got) != 0 {
		t.Fatalf("healthy file reported under-replicated: %v", got)
	}
	if err := fs.DeleteFileReplicas(f, storage.Memory); err != nil {
		t.Fatal(err)
	}
	got := fs.UnderReplicatedFiles()
	if len(got) != 1 || got[0] != f {
		t.Fatalf("UnderReplicatedFiles = %v", got)
	}
}

func TestMoveAdvancesSimulatedTime(t *testing.T) {
	e, fs := testFS(t, ModeOctopus)
	f := createFile(t, e, fs, "/f", 16*storage.MB)
	before := e.Now()
	if err := moveSync(t, fs, f, storage.Memory, storage.HDD); err != nil {
		t.Fatal(err)
	}
	if !e.Now().After(before) {
		t.Fatal("move cost no simulated time")
	}
}

func TestMoveDeletedFileRejected(t *testing.T) {
	e, fs := testFS(t, ModeOctopus)
	f := createFile(t, e, fs, "/f", 16*storage.MB)
	if err := fs.Delete("/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MoveFileReplicas(f, storage.Memory, storage.SSD, nil); err == nil {
		t.Fatal("move on deleted file should fail")
	}
	_ = e
}
