package dfs

import (
	"fmt"
	mathbits "math/bits"

	"octostore/internal/storage"
)

// This file exports the consistency invariants the file system must uphold
// at every event boundary. The scenario replayer runs CheckAccounting after
// (a sample of) replayed events and CheckInvariants periodically and at the
// end of every replay; the dfs property tests reuse both. The checks were
// extracted and generalized from the original capacity-conservation property
// test so that production replays, not just unit tests, validate state.

// CheckAccounting verifies capacity conservation in O(#devices): the bytes
// reserved across all devices must equal the bytes of live replicas plus the
// destination reservations of in-flight tier moves. It is cheap enough to
// run after every simulation event.
func (fs *FileSystem) CheckAccounting() error {
	var used int64
	for _, n := range fs.cluster.Nodes() {
		for _, d := range n.AllDevices() {
			if d.Used() < 0 || d.Used() > d.Capacity() {
				return fmt.Errorf("dfs: device %s used %d outside [0, %d]", d.ID(), d.Used(), d.Capacity())
			}
			used += d.Used()
		}
	}
	if fs.liveBytes < 0 {
		return fmt.Errorf("dfs: live replica bytes negative: %d", fs.liveBytes)
	}
	if fs.pendingMoveBytes < 0 {
		return fmt.Errorf("dfs: pending move bytes negative: %d", fs.pendingMoveBytes)
	}
	if want := fs.liveBytes + fs.pendingMoveBytes; used != want {
		return fmt.Errorf("dfs: capacity accounting diverged: devices hold %d, live replicas %d + pending moves %d = %d",
			used, fs.liveBytes, fs.pendingMoveBytes, want)
	}
	return nil
}

// TierResidency snapshots, for every live complete file, which tiers hold a
// full (all-or-nothing) replica set, keyed by path. The differential tests
// use it to assert that the sequential sim path and the concurrent serving
// layer leave the system in the same final state.
func (fs *FileSystem) TierResidency() map[string][3]bool {
	out := make(map[string][3]bool, len(fs.fileList))
	for _, f := range fs.fileList {
		if fs.isCreating(f.id) {
			continue
		}
		var res [3]bool
		for _, m := range storage.AllMedia {
			res[m] = f.HasReplicaOn(m)
		}
		out[f.path] = res
	}
	return out
}

// LiveReplicaBytes returns the tracked bytes of all attached, non-deleting
// replicas — one side of the capacity-conservation equation.
func (fs *FileSystem) LiveReplicaBytes() int64 { return fs.liveBytes }

// CheckInvariants runs the deep consistency checks: CheckAccounting, a full
// recount of live replica bytes, namespace/path coherence, replica backrefs
// and state sanity, and validation of the incrementally maintained per-tier
// residency counters against a recount. Cost is O(files × blocks ×
// replicas); replays run it periodically and at quiescent points.
func (fs *FileSystem) CheckInvariants() error {
	if err := fs.CheckAccounting(); err != nil {
		return err
	}

	// Namespace ↔ file-index coherence: every namespace file is tracked,
	// resolves to itself through its cached path, and is not marked deleted.
	inTree := 0
	var nsErr error
	fs.ns.Walk(func(f *File) {
		inTree++
		if nsErr != nil {
			return
		}
		switch {
		case f.deleted:
			nsErr = fmt.Errorf("dfs: deleted file %q still reachable in namespace", f.path)
		default:
			got, err := fs.ns.GetFile(f.path)
			if err != nil {
				nsErr = fmt.Errorf("dfs: file %q does not resolve through its cached path: %v", f.path, err)
			} else if got != f {
				nsErr = fmt.Errorf("dfs: path %q resolves to a different file", f.path)
			}
		}
		if nsErr == nil {
			if pos := fs.posOf(f.id); pos < 0 || fs.fileList[pos] != f {
				nsErr = fmt.Errorf("dfs: file %q missing from the live-file index", f.path)
			}
		}
	})
	if nsErr != nil {
		return nsErr
	}
	if inTree != fs.ns.FileCount() {
		return fmt.Errorf("dfs: namespace walk found %d files, FileCount reports %d", inTree, fs.ns.FileCount())
	}
	if inTree != len(fs.fileList) {
		return fmt.Errorf("dfs: namespace holds %d files, live index holds %d", inTree, len(fs.fileList))
	}

	// Replica-level checks plus a recount of the incremental aggregates.
	var liveBytes int64
	for _, f := range fs.fileList {
		if f.deleted {
			return fmt.Errorf("dfs: deleted file %q in live index", f.path)
		}
		for _, b := range f.blocks {
			if b.file != f {
				return fmt.Errorf("dfs: block %d of %q has wrong file backref", b.id, f.path)
			}
			for _, r := range b.replicas {
				if r.block != b {
					return fmt.Errorf("dfs: replica of block %d has wrong block backref", b.id)
				}
				if r.state < ReplicaCreating || r.state > ReplicaDeleting {
					return fmt.Errorf("dfs: replica of block %d in invalid state %d", b.id, int(r.state))
				}
				if r.node == nil || r.device == nil {
					return fmt.Errorf("dfs: replica of block %d missing node or device", b.id)
				}
				if fs.removedNodes[r.node.ID()] {
					return fmt.Errorf("dfs: replica of block %d lives on removed node %d", b.id, r.node.ID())
				}
				if r.state != ReplicaDeleting {
					liveBytes += b.size
				}
			}
		}
		for _, media := range storage.AllMedia {
			m := int(media)
			want := 0
			for _, b := range f.blocks {
				if b.ReplicaOn(media) != nil {
					want++
				}
			}
			if got := int(f.tierBlocks[m]); got != want {
				return fmt.Errorf("dfs: file %q tier counter for %s is %d, recount %d", f.path, media, got, want)
			}
		}
		for _, media := range storage.AllMedia {
			if f.HasReplicaOn(media) != f.hasReplicaOnSlow(media) {
				return fmt.Errorf("dfs: file %q residency fast/slow mismatch on %s", f.path, media)
			}
		}
	}
	if liveBytes != fs.liveBytes {
		return fmt.Errorf("dfs: live replica recount %d != tracked %d", liveBytes, fs.liveBytes)
	}

	// Every file still being created must exist in the namespace.
	for w, word := range fs.creatingBits {
		for word != 0 {
			id := FileID(w<<6 + mathbits.TrailingZeros64(word))
			word &= word - 1
			if fs.posOf(id) < 0 {
				return fmt.Errorf("dfs: creating file id %d not in live index", id)
			}
		}
	}
	return nil
}
