package dfs_test

import (
	"fmt"
	"runtime"
	"testing"

	"octostore/internal/cluster"
	"octostore/internal/core"
	"octostore/internal/dfs"
	"octostore/internal/sim"
	"octostore/internal/storage"
)

// footprintFiles is the population size for the footprint benchmark. Large
// enough that per-file costs dominate fixed overheads (engine, cluster,
// maps' initial capacity), small enough to iterate quickly in CI.
const footprintFiles = 20_000

// footprintWorld holds everything a populated namespace retains, so the
// benchmark can measure live-heap bytes with the population reachable and
// nothing else.
type footprintWorld struct {
	engine *sim.Engine
	fs     *dfs.FileSystem
	ctx    *core.Context
}

func buildFootprintWorld(files int) *footprintWorld {
	e := sim.NewEngine()
	spec := storage.NodeSpec{
		{Media: storage.Memory, Capacity: 16 * storage.GB, ReadBW: 4000e6, WriteBW: 3000e6, Count: 1},
		{Media: storage.SSD, Capacity: 64 * storage.GB, ReadBW: 500e6, WriteBW: 400e6, Count: 1},
		{Media: storage.HDD, Capacity: 256 * storage.GB, ReadBW: 160e6, WriteBW: 140e6, Count: 2},
	}
	c := cluster.MustNew(e, cluster.Config{Workers: 4, SlotsPerNode: 8, Spec: spec})
	fs := dfs.MustNew(c, dfs.Config{Mode: ModeForFootprint(), BlockSize: 8 * storage.MB, Seed: 1})
	ctx := core.NewContext(fs, core.DefaultConfig())
	ctx.Index().RequireRecency()
	ctx.Index().RequireFrequency()
	ctx.Index().RequireUpgradeMRU()

	for i := 0; i < files; i++ {
		path := fmt.Sprintf("/pop/d%03d/f%06d", i/256, i)
		fs.Create(path, 1*storage.MB, func(_ *dfs.File, err error) {
			if err != nil {
				panic(err)
			}
		})
	}
	e.Run() // drain create transfers so replicas commit

	// One access pass populates the tracker records and re-keys the
	// recency/frequency/MRU heaps, so the measured footprint covers the
	// steady managed state, not just the post-create skeleton.
	for _, f := range fs.LiveFiles() {
		fs.RecordAccess(f)
	}
	return &footprintWorld{engine: e, fs: fs, ctx: ctx}
}

// ModeForFootprint picks the placement mode for the footprint population:
// octopus spreads replicas across tiers so all three per-tier heaps and the
// residency counters carry real entries.
func ModeForFootprint() dfs.Mode { return dfs.ModeOctopus }

// BenchmarkPopulationFootprint reports the retained heap bytes and the
// allocation count per namespace file for a fully managed population
// (filesystem + namespace + candidate indexes + tracker). These two custom
// metrics — bytes/file and allocs/file — are gated in CI against the
// cache-carried baseline; ns/op additionally tracks population build time.
func BenchmarkPopulationFootprint(b *testing.B) {
	var (
		world        *footprintWorld
		bytesPerFile float64
		allocsTotal  uint64
	)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		world = nil // release the previous iteration's population
		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		b.StartTimer()

		world = buildFootprintWorld(footprintFiles)

		b.StopTimer()
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		allocsTotal += after.Mallocs - before.Mallocs
		runtime.GC()
		var retained runtime.MemStats
		runtime.ReadMemStats(&retained)
		bytesPerFile = float64(retained.HeapAlloc-before.HeapAlloc) / footprintFiles
		b.StartTimer()
	}
	if world == nil || world.fs.Stats().FilesCreated == 0 {
		b.Fatal("population not built")
	}
	b.ReportMetric(bytesPerFile, "bytes/file")
	b.ReportMetric(float64(allocsTotal)/float64(uint64(b.N)*footprintFiles), "allocs/file")
	runtime.KeepAlive(world)
}
