package dfs

import (
	"errors"
	"testing"
	"time"

	"octostore/internal/cluster"
	"octostore/internal/sim"
	"octostore/internal/storage"
)

// testFS builds a 3-worker cluster with small devices and the given mode.
func testFS(t *testing.T, mode Mode) (*sim.Engine, *FileSystem) {
	t.Helper()
	e := sim.NewEngine()
	c := cluster.MustNew(e, cluster.Config{
		Workers: 3, SlotsPerNode: 2, Spec: storage.SmallWorkerSpec(),
	})
	fs := MustNew(c, Config{Mode: mode, BlockSize: 16 * storage.MB, Seed: 7})
	return e, fs
}

// createFile synchronously creates a file by running the engine.
func createFile(t *testing.T, e *sim.Engine, fs *FileSystem, path string, size int64) *File {
	t.Helper()
	var file *File
	var ferr error
	doneCalled := false
	fs.Create(path, size, func(f *File, err error) {
		file, ferr = f, err
		doneCalled = true
	})
	e.Run()
	if !doneCalled {
		t.Fatalf("create of %s never completed", path)
	}
	if ferr != nil {
		t.Fatalf("create %s: %v", path, ferr)
	}
	return file
}

func TestCreateSplitsIntoBlocks(t *testing.T) {
	e, fs := testFS(t, ModeHDFS)
	f := createFile(t, e, fs, "/data/f1", 40*storage.MB)
	if got := len(f.Blocks()); got != 3 {
		t.Fatalf("blocks = %d, want 3 (16+16+8)", got)
	}
	sizes := []int64{16 * storage.MB, 16 * storage.MB, 8 * storage.MB}
	for i, b := range f.Blocks() {
		if b.Size() != sizes[i] {
			t.Fatalf("block %d size = %d, want %d", i, b.Size(), sizes[i])
		}
		if b.File() != f {
			t.Fatal("block does not point at owning file")
		}
	}
}

func TestHDFSModePlacesAllReplicasOnHDD(t *testing.T) {
	e, fs := testFS(t, ModeHDFS)
	f := createFile(t, e, fs, "/f", 16*storage.MB)
	b := f.Blocks()[0]
	if got := len(b.Replicas()); got != 3 {
		t.Fatalf("replicas = %d, want 3", got)
	}
	nodes := map[int]bool{}
	for _, r := range b.Replicas() {
		if r.Media() != storage.HDD {
			t.Fatalf("replica on %s, want HDD", r.Media())
		}
		if r.State() != ReplicaValid {
			t.Fatalf("replica state = %v", r.State())
		}
		nodes[r.Node().ID()] = true
	}
	if len(nodes) != 3 {
		t.Fatalf("replicas on %d distinct nodes, want 3", len(nodes))
	}
}

func TestOctopusModeSpreadsAcrossTiers(t *testing.T) {
	e, fs := testFS(t, ModeOctopus)
	f := createFile(t, e, fs, "/f", 16*storage.MB)
	b := f.Blocks()[0]
	media := map[storage.Media]int{}
	for _, r := range b.Replicas() {
		media[r.Media()]++
	}
	if media[storage.Memory] != 1 || media[storage.SSD] != 1 || media[storage.HDD] != 1 {
		t.Fatalf("tier distribution = %v, want one replica per tier", media)
	}
	if !f.HasReplicaOn(storage.Memory) {
		t.Fatal("HasReplicaOn(Memory) = false")
	}
	if top, ok := f.HighestTier(); !ok || top != storage.Memory {
		t.Fatalf("HighestTier = %v, %v", top, ok)
	}
}

func TestOctopusFallsBackWhenMemoryFull(t *testing.T) {
	e, fs := testFS(t, ModeOctopus)
	// Memory per node is 64 MB; 3 nodes = 192 MB total. Write files until
	// well past that and confirm later files land without memory replicas
	// but writes still succeed.
	var files []*File
	for i := 0; i < 30; i++ {
		files = append(files, createFile(t, e, fs, pathN("/f", i), 16*storage.MB))
	}
	last := files[len(files)-1]
	if last.HasReplicaOn(storage.Memory) {
		t.Fatal("late file still has a memory replica despite full tier")
	}
	if util := fs.TierUtilization(storage.Memory); util < 0.9 {
		t.Fatalf("memory utilization = %v, want near full", util)
	}
}

func pathN(prefix string, i int) string {
	return prefix + "/" + string(rune('a'+i/26)) + string(rune('a'+i%26))
}

func TestHDFSCacheModeAddsMemoryReplica(t *testing.T) {
	e, fs := testFS(t, ModeHDFSCache)
	f := createFile(t, e, fs, "/f", 16*storage.MB)
	e.Run() // let the async cache write finish
	b := f.Blocks()[0]
	var cache *Replica
	for _, r := range b.Replicas() {
		if r.IsCache() {
			cache = r
		}
	}
	if cache == nil {
		t.Fatal("no cache replica created")
	}
	if cache.Media() != storage.Memory {
		t.Fatalf("cache replica on %s", cache.Media())
	}
	if got := len(b.Replicas()); got != 4 {
		t.Fatalf("replicas = %d, want 3 + 1 cache", got)
	}
}

func TestCreateZeroSizeFile(t *testing.T) {
	e, fs := testFS(t, ModeHDFS)
	f := createFile(t, e, fs, "/empty", 0)
	if len(f.Blocks()) != 0 {
		t.Fatalf("blocks = %d", len(f.Blocks()))
	}
	if f.HasReplicaOn(storage.HDD) {
		t.Fatal("empty file claims replicas")
	}
}

func TestCreateDuplicatePathFails(t *testing.T) {
	e, fs := testFS(t, ModeHDFS)
	createFile(t, e, fs, "/f", storage.MB)
	var gotErr error
	fs.Create("/f", storage.MB, func(_ *File, err error) { gotErr = err })
	e.Run()
	if !errors.Is(gotErr, ErrExists) {
		t.Fatalf("duplicate create error = %v", gotErr)
	}
}

func TestOpenDuringCreateFails(t *testing.T) {
	e, fs := testFS(t, ModeHDFS)
	fs.Create("/f", 16*storage.MB, nil)
	// Do not run the engine: the write is still in flight.
	if _, err := fs.Open("/f"); !errors.Is(err, ErrFileIncomplete) {
		t.Fatalf("open during create error = %v", err)
	}
	e.Run()
	if _, err := fs.Open("/f"); err != nil {
		t.Fatalf("open after create: %v", err)
	}
}

func TestWriteTakesSimulatedTime(t *testing.T) {
	e, fs := testFS(t, ModeHDFS)
	createFile(t, e, fs, "/f", 16*storage.MB)
	// HDD write bandwidth is 140e6 B/s; 16 MB should take ~0.12 s.
	if e.Now().Equal(sim.Epoch) {
		t.Fatal("write completed without advancing time")
	}
	if e.Since(sim.Epoch) > time.Second {
		t.Fatalf("write took unreasonably long: %v", e.Since(sim.Epoch))
	}
}

func TestClientRateFloorsWriteLatency(t *testing.T) {
	e := sim.NewEngine()
	c := cluster.MustNew(e, cluster.Config{Workers: 3, SlotsPerNode: 2, Spec: storage.SmallWorkerSpec()})
	fs := MustNew(c, Config{Mode: ModeHDFS, BlockSize: 16 * storage.MB, Seed: 7, ClientRate: 1e6})
	createFileRaw(t, e, fs, "/f", 16*storage.MB)
	// 16 MB at 1 MB/s client rate = at least ~16.7 s.
	if got := e.Since(sim.Epoch); got < 16*time.Second {
		t.Fatalf("write finished in %v despite 1 MB/s client cap", got)
	}
}

func createFileRaw(t *testing.T, e *sim.Engine, fs *FileSystem, path string, size int64) *File {
	t.Helper()
	var file *File
	var ferr error
	fs.Create(path, size, func(f *File, err error) { file, ferr = f, err })
	e.Run()
	if ferr != nil {
		t.Fatalf("create: %v", ferr)
	}
	return file
}

func TestReadBlockPrefersLocalHighestTier(t *testing.T) {
	e, fs := testFS(t, ModeOctopus)
	f := createFile(t, e, fs, "/f", 16*storage.MB)
	b := f.Blocks()[0]
	memReplica := b.ReplicaOn(storage.Memory)
	if memReplica == nil {
		t.Fatal("no memory replica")
	}
	var res ReadResult
	fs.ReadBlock(b, memReplica.Node(), func(r ReadResult, err error) {
		if err != nil {
			t.Errorf("read: %v", err)
		}
		res = r
	})
	e.Run()
	if res.Media != storage.Memory || res.Remote {
		t.Fatalf("read served from %v remote=%v, want local memory", res.Media, res.Remote)
	}
}

func TestReadBlockFallsBackToRemote(t *testing.T) {
	e, fs := testFS(t, ModeHDFS)
	f := createFile(t, e, fs, "/f", 16*storage.MB)
	b := f.Blocks()[0]
	// Find a node with no replica of this block.
	holders := map[int]bool{}
	for _, r := range b.Replicas() {
		holders[r.Node().ID()] = true
	}
	if len(holders) == 3 {
		// All nodes hold one; read from the first node but verify stats say
		// local. Then nothing to test remotely — skip.
		t.Skip("3 nodes, 3 replicas: no remote node available")
	}
	var reader *cluster.Node
	for _, n := range fs.Cluster().Nodes() {
		if !holders[n.ID()] {
			reader = n
			break
		}
	}
	var res ReadResult
	fs.ReadBlock(b, reader, func(r ReadResult, err error) { res = r })
	e.Run()
	if !res.Remote {
		t.Fatal("expected a remote read")
	}
}

func TestReadStatsAccumulate(t *testing.T) {
	e, fs := testFS(t, ModeOctopus)
	f := createFile(t, e, fs, "/f", 16*storage.MB)
	b := f.Blocks()[0]
	node := b.ReplicaOn(storage.Memory).Node()
	fs.ReadBlock(b, node, nil)
	e.Run()
	st := fs.Stats()
	if st.BlockReads[storage.Memory] != 1 {
		t.Fatalf("memory reads = %d", st.BlockReads[storage.Memory])
	}
	if st.BytesRead[storage.Memory] != 16*storage.MB {
		t.Fatalf("memory bytes = %d", st.BytesRead[storage.Memory])
	}
}

func TestDeleteReleasesSpace(t *testing.T) {
	e, fs := testFS(t, ModeHDFS)
	createFile(t, e, fs, "/f", 16*storage.MB)
	used, _ := fs.Cluster().TierUsage(storage.HDD)
	if used != 3*16*storage.MB {
		t.Fatalf("used = %d before delete", used)
	}
	if err := fs.Delete("/f"); err != nil {
		t.Fatal(err)
	}
	used, _ = fs.Cluster().TierUsage(storage.HDD)
	if used != 0 {
		t.Fatalf("used = %d after delete", used)
	}
	if _, err := fs.Open("/f"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("open deleted = %v", err)
	}
}

func TestDeleteNotifiesListeners(t *testing.T) {
	e, fs := testFS(t, ModeHDFS)
	rec := &recordingListener{}
	fs.AddListener(rec)
	f := createFile(t, e, fs, "/f", 16*storage.MB)
	fs.RecordAccess(f)
	if err := fs.Delete("/f"); err != nil {
		t.Fatal(err)
	}
	if rec.created != 1 || rec.accessed != 1 || rec.deleted != 1 {
		t.Fatalf("listener counts: %+v", rec)
	}
	if rec.tierAdds == 0 {
		t.Fatal("no TierDataAdded notifications")
	}
}

type recordingListener struct {
	created, accessed, deleted, tierAdds, tierFlips int
}

func (r *recordingListener) FileCreated(*File)                          { r.created++ }
func (r *recordingListener) FileAccessed(*File)                         { r.accessed++ }
func (r *recordingListener) FileDeleted(*File)                          { r.deleted++ }
func (r *recordingListener) FileTierChanged(*File, storage.Media, bool) { r.tierFlips++ }
func (r *recordingListener) TierDataAdded(storage.Media)                { r.tierAdds++ }

func TestReadDeletedBlockErrors(t *testing.T) {
	e, fs := testFS(t, ModeHDFS)
	f := createFile(t, e, fs, "/f", 16*storage.MB)
	b := f.Blocks()[0]
	if err := fs.Delete("/f"); err != nil {
		t.Fatal(err)
	}
	var gotErr error
	fs.ReadBlock(b, nil, func(_ ReadResult, err error) { gotErr = err })
	e.Run()
	if !errors.Is(gotErr, ErrNoReplica) {
		t.Fatalf("read after delete = %v", gotErr)
	}
}

func TestCreateFailsWhenClusterFull(t *testing.T) {
	e := sim.NewEngine()
	c := cluster.MustNew(e, cluster.Config{Workers: 2, SlotsPerNode: 1, Spec: storage.NodeSpec{
		{Media: storage.HDD, Capacity: 8 * storage.MB, ReadBW: 100e6, WriteBW: 100e6, Count: 1},
	}})
	fs := MustNew(c, Config{Mode: ModeHDFS, BlockSize: 4 * storage.MB, Replication: 2, Seed: 1})
	var lastErr error
	for i := 0; i < 10; i++ {
		fs.Create(pathN("/f", i), 4*storage.MB, func(_ *File, err error) {
			if err != nil {
				lastErr = err
			}
		})
		e.Run()
	}
	if !errors.Is(lastErr, ErrNoCapacity) {
		t.Fatalf("expected ErrNoCapacity, got %v", lastErr)
	}
	// The namespace must not retain failed files.
	for _, f := range fs.Files() {
		if len(f.Blocks()) > 0 && !f.HasReplicaOn(storage.HDD) {
			t.Fatalf("file %s retained without replicas", f.Path())
		}
	}
}

func TestFilesSortedSnapshot(t *testing.T) {
	e, fs := testFS(t, ModeHDFS)
	createFile(t, e, fs, "/b", storage.MB)
	createFile(t, e, fs, "/a", storage.MB)
	files := fs.Files()
	if len(files) != 2 || files[0].Path() != "/a" || files[1].Path() != "/b" {
		t.Fatalf("Files() = %v", []string{files[0].Path(), files[1].Path()})
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		ModeHDFS: "hdfs", ModeHDFSCache: "hdfs+cache", ModeOctopus: "octopus", ModePinnedHDD: "pinned-hdd",
	} {
		if m.String() != want {
			t.Fatalf("Mode(%d).String() = %q", int(m), m.String())
		}
	}
}

func TestPinnedHDDMode(t *testing.T) {
	e, fs := testFS(t, ModePinnedHDD)
	f := createFile(t, e, fs, "/f", 16*storage.MB)
	for _, r := range f.Blocks()[0].Replicas() {
		if r.Media() != storage.HDD {
			t.Fatalf("pinned mode placed replica on %s", r.Media())
		}
	}
}
