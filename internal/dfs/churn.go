package dfs

import (
	"octostore/internal/cluster"
	"octostore/internal/storage"
)

// This file implements cluster membership churn against the file system:
// node joins (trivial — placement discovers new nodes on the next decision)
// and node loss, which must tear replica state down without corrupting the
// capacity accounting that the invariant checker enforces at every event
// boundary.

// AddMembershipHook registers fn to run after every node join or failure,
// on the goroutine applying the change.
func (fs *FileSystem) AddMembershipHook(fn func()) {
	fs.membershipHooks = append(fs.membershipHooks, fn)
}

func (fs *FileSystem) notifyMembership() {
	for _, fn := range fs.membershipHooks {
		fn()
	}
}

// AddNode joins a fresh worker to the cluster and returns it. Placement,
// movement targeting and task scheduling pick the node up on their next
// decision; no replica state changes.
func (fs *FileSystem) AddNode(spec storage.NodeSpec, slots int) *cluster.Node {
	n := fs.cluster.AddNode(spec, slots)
	fs.notifyMembership()
	return n
}

// FailNode removes a worker from the cluster, losing every replica it held.
// Replicas on the node are detached from their blocks and the node's devices
// leave capacity accounting wholesale (no per-replica Release). In-flight
// transfers involving the node are settled so the commit callbacks cannot
// resurrect detached replicas or leak destination reservations. Blocks whose
// remaining readable replicas fall below the replication target surface via
// UnderReplicatedFiles, where the Replication Monitor repairs them; with the
// default replication of 3 and distinct-node placement, a single node loss
// never makes a block unreadable.
//
// It returns the per-tier device capacity that left the cluster with the
// node, so callers maintaining external capacity accounting (the sharded
// serving layer's tier ledger) can shrink their totals by exactly what this
// view lost — including any quota previously grown onto the node's devices.
func (fs *FileSystem) FailNode(n *cluster.Node) (removed [3]int64) {
	if n == nil || fs.removedNodes[n.ID()] {
		return removed
	}
	fs.removedNodes[n.ID()] = true
	for _, m := range storage.AllMedia {
		removed[m] = n.TierCapacity(m)
	}
	// Settle in-flight moves whose destination sits on the lost node: the
	// device leaves accounting now, so the pending reservation does too, and
	// the commit keeps the replica at its source.
	for m := range fs.moves {
		if m.dstNod == n && !m.dstGone {
			m.dstGone = true
			fs.pendingMoveBytes -= m.block.size
		}
	}
	for _, f := range fs.fileList {
		for _, b := range f.blocks {
			for i := 0; i < len(b.replicas); {
				r := b.replicas[i]
				if r.node != n {
					i++
					continue
				}
				wasReadable := r.Readable()
				media := r.Media()
				if r.state != ReplicaDeleting {
					fs.liveBytes -= b.size
					// Drop the physical bytes too. A Local backend outlives
					// the node abstraction (its files key on device ids), so
					// the failed node's replica files must not linger as
					// orphans.
					fs.backendDelete(r.device, storage.ClassMove, b.id, b.size)
				}
				// Deleting also tells any pending write-completion callback
				// (initial create, cache fill, copy) not to mark the
				// detached replica valid.
				r.state = ReplicaDeleting
				b.replicas = append(b.replicas[:i], b.replicas[i+1:]...)
				if wasReadable {
					b.noteUnreadable(r, media)
				}
			}
		}
	}
	fs.cluster.RemoveNode(n.ID())
	fs.notifyMembership()
	return removed
}

// NodeRemoved reports whether the node with the given id has left the
// cluster through FailNode.
func (fs *FileSystem) NodeRemoved(id int) bool { return fs.removedNodes[id] }
