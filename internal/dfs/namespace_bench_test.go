package dfs

import (
	"fmt"
	"os"
	"testing"

	"octostore/internal/cluster"
	"octostore/internal/sim"
	"octostore/internal/storage"
)

// benchFileCount returns the namespace population for benchmarks: 20k files
// by default, 1M under OCTOSTORE_BENCH_FULL=1 (the scale target the
// scenario replayer optimizes for).
func benchFileCount() int {
	if os.Getenv("OCTOSTORE_BENCH_FULL") != "" {
		return 1_000_000
	}
	return 20_000
}

// buildBenchNamespace populates a namespace with a realistic directory
// shape: /data/<dir>/<subdir>/f<i>, 100 files per subdirectory.
func buildBenchNamespace(n int) (*Namespace, []string) {
	ns := NewNamespace()
	paths := make([]string, n)
	for i := 0; i < n; i++ {
		paths[i] = fmt.Sprintf("/data/d%03d/s%02d/f%06d", i/1000, (i/100)%10, i)
		if err := ns.insertFile(paths[i], &File{id: FileID(i), path: paths[i]}); err != nil {
			panic(err)
		}
	}
	return ns, paths
}

// BenchmarkNamespaceLookup measures path resolution, the hottest namespace
// operation (every Open/Exists goes through it). The in-place component
// scan keeps it allocation-free.
func BenchmarkNamespaceLookup(b *testing.B) {
	ns, paths := buildBenchNamespace(benchFileCount())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ns.lookup(paths[i%len(paths)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFileScan compares the two ways the replication manager can
// enumerate files each tick: the sorted namespace walk (Files) versus the
// flat live index (LiveFiles) the per-tick selection scan now uses.
func BenchmarkFileScan(b *testing.B) {
	e := sim.NewEngine()
	c := cluster.MustNew(e, cluster.Config{Workers: 3, SlotsPerNode: 2, Spec: storage.SmallWorkerSpec()})
	fs := MustNew(c, Config{Mode: ModeOctopus, BlockSize: 8 * storage.MB, Seed: 1})
	// A modest population with real replicas so HasReplicaOn has work to do.
	for i := 0; i < 64; i++ {
		fs.Create(fmt.Sprintf("/bench/d%d/f%03d", i/16, i), 8*storage.MB, nil)
	}
	e.Run()

	b.Run("walk-sorted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n := 0
			for _, f := range fs.Files() {
				if f.HasReplicaOn(storage.Memory) {
					n++
				}
			}
		}
	})
	b.Run("live-index", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n := 0
			for _, f := range fs.LiveFiles() {
				if f.HasReplicaOn(storage.Memory) {
					n++
				}
			}
		}
	})
}
