package dfs

import (
	"fmt"
	"time"

	"octostore/internal/cluster"
	"octostore/internal/storage"
)

// This file is the shard-migration primitive pair: DetachFile lifts a file
// out of one FileSystem as a portable record (releasing its replicas and
// capacity), AttachFile recreates it in another with the same per-block
// tier layout. The serving layer's rebalancer uses the pair to move a
// subtree between shard engines; each side runs on its own shard loop, so
// both calls observe the usual single-writer discipline. Neither side
// counts as a client create or delete in Stats — migration relocates
// metadata, it does not change the logical namespace — but both fire the
// regular listener notifications (FileDeleted / FileCreated) so candidate
// indexes, trackers, and serving handles stay coherent on both engines.

// BlockLayout records where one block's replicas lived at detach time.
type BlockLayout struct {
	Size  int64
	Media []storage.Media // one entry per replica
	Cache []bool          // per replica: HDFS cache-replica flag
}

// FileRecord is a detached file's portable description: everything
// AttachFile needs to rebuild the file with identical size, age, and
// per-tier residency on another FileSystem.
type FileRecord struct {
	Path        string
	Size        int64
	Created     time.Time
	Replication int32
	Blocks      []BlockLayout
}

// Bytes sums the replica bytes the record pins across all tiers.
func (rec *FileRecord) Bytes() int64 {
	var total int64
	for _, bl := range rec.Blocks {
		total += bl.Size * int64(len(bl.Media))
	}
	return total
}

// tierNeeds reports, per tier, the bytes one replica chain occupies and the
// widest per-block replica count — the (perNode, nodes) shape a quota grow
// needs to guarantee the attach can place every replica.
func (rec *FileRecord) tierNeeds() (chainBytes [3]int64, maxReplicas [3]int) {
	for _, bl := range rec.Blocks {
		var perBlock [3]int
		for _, m := range bl.Media {
			perBlock[m]++
		}
		for t := range perBlock {
			if perBlock[t] > 0 {
				chainBytes[t] += bl.Size
			}
			if perBlock[t] > maxReplicas[t] {
				maxReplicas[t] = perBlock[t]
			}
		}
	}
	return chainBytes, maxReplicas
}

// TierNeeds is the exported form of the capacity shape (see tierNeeds).
func (rec *FileRecord) TierNeeds() (chainBytes [3]int64, maxReplicas [3]int) {
	return rec.tierNeeds()
}

// SnapshotFile builds the portable record of a file's layout without
// touching the file — the read half of a migration copy. Files mid-create
// or with replicas in transition return ErrFileIncomplete / ErrBusy (the
// layout is about to change under the snapshot); the caller retries on a
// later sweep.
func (fs *FileSystem) SnapshotFile(path string) (FileRecord, error) {
	f, err := fs.ns.GetFile(path)
	if err != nil {
		return FileRecord{}, err
	}
	if fs.isCreating(f.id) {
		return FileRecord{}, fmt.Errorf("%w: %q", ErrFileIncomplete, path)
	}
	if fs.inTransition(f) {
		return FileRecord{}, fmt.Errorf("%w: %q", ErrBusy, path)
	}
	rec := FileRecord{
		Path:        f.path,
		Size:        f.size,
		Created:     f.created,
		Replication: f.replication,
		Blocks:      make([]BlockLayout, 0, len(f.blocks)),
	}
	for _, b := range f.blocks {
		bl := BlockLayout{Size: b.size}
		for _, r := range b.replicas {
			bl.Media = append(bl.Media, r.Media())
			bl.Cache = append(bl.Cache, r.isCache)
		}
		rec.Blocks = append(rec.Blocks, bl)
	}
	return rec, nil
}

// DetachFile removes a file from this file system and returns the portable
// record of its layout. Replicas are released (device capacity freed,
// liveBytes reduced) and FileDeleted fires so indexes drop the entry, but
// unlike Delete the detach does not count in Stats.FilesDeleted — the file
// is moving, not dying. Files mid-create or with replicas in transition
// return ErrFileIncomplete / ErrBusy, like Delete; the caller retries on a
// later sweep. The bytes leaving the shard are charged as ClassMove reads
// against the source devices (one read per block), so migration draws real
// bandwidth on a contended plane and nothing without one.
func (fs *FileSystem) DetachFile(path string) (FileRecord, error) {
	rec, err := fs.SnapshotFile(path)
	if err != nil {
		return FileRecord{}, err
	}
	f, err := fs.ns.GetFile(path)
	if err != nil {
		return FileRecord{}, err
	}
	if _, err := fs.ns.removeFile(path); err != nil {
		return FileRecord{}, err
	}
	// Release replicas without counting client deletions: same teardown as
	// releaseAllReplicas minus the ReplicasDeleted bump.
	for _, b := range f.blocks {
		if len(b.replicas) > 0 {
			fs.chargePlane(b.replicas[0].device, storage.Read, storage.ClassMove, b.size)
		}
		for _, r := range b.replicas {
			if r.state != ReplicaDeleting {
				r.state = ReplicaDeleting
				r.device.Release(b.size)
				fs.backendDelete(r.device, storage.ClassMove, b.id, b.size)
				fs.liveBytes -= b.size
			}
		}
		b.replicas = nil
	}
	f.tierBlocks = [3]int32{}
	f.deleted = true
	fs.untrackFile(f)
	for _, l := range fs.listeners {
		l.FileDeleted(f)
	}
	return rec, nil
}

// attachSlot is one planned replica placement.
type attachSlot struct {
	node *cluster.Node
	dev  *storage.Device
}

// planAttach chooses a device for every replica in the record, preferring
// distinct nodes per block, without mutating anything. The rotation starts
// at a position derived from the next file id — deterministic, and unlike a
// placement-rng draw it leaves the file system's rng stream untouched, so
// subsequent client creates place identically whether or not a migration
// happened.
func (fs *FileSystem) planAttach(rec FileRecord) ([][]attachSlot, error) {
	nodes := fs.cluster.Nodes()
	if len(nodes) == 0 {
		return nil, fmt.Errorf("%w: no nodes", ErrNoCapacity)
	}
	planned := make(map[*storage.Device]int64)
	plan := make([][]attachSlot, len(rec.Blocks))
	start := int(fs.nextFileID) % len(nodes)
	for bi, bl := range rec.Blocks {
		used := make(map[*cluster.Node]bool, len(bl.Media))
		for _, m := range bl.Media {
			var slot attachSlot
			// First pass insists on a fresh node for the block; second pass
			// accepts any node with room (mirrors placement's fallback when
			// the cluster is narrower than the replication factor).
			for pass := 0; pass < 2 && slot.dev == nil; pass++ {
				for off := 0; off < len(nodes); off++ {
					n := nodes[(start+bi+off)%len(nodes)]
					if pass == 0 && used[n] {
						continue
					}
					for _, d := range n.Devices(m) {
						if d.Free()-planned[d] >= bl.Size {
							slot = attachSlot{node: n, dev: d}
							break
						}
					}
					if slot.dev != nil {
						break
					}
				}
			}
			if slot.dev == nil {
				return nil, fmt.Errorf("%w: %d bytes on %s tier for %q", ErrNoCapacity, bl.Size, m, rec.Path)
			}
			planned[slot.dev] += bl.Size
			used[slot.node] = true
			plan[bi] = append(plan[bi], slot)
		}
	}
	return plan, nil
}

// AttachFile recreates a detached file on this file system: the recorded
// number of replicas per tier for every block, device capacity reserved,
// FileCreated and TierDataAdded fired so the policy stack adopts it. The
// call either succeeds completely or fails with no side effects
// (ErrNoCapacity when a tier lacks room, ErrExists when the path is taken —
// a client recreated it mid-migration). The arriving bytes are charged as
// ClassMove writes against the chosen devices.
func (fs *FileSystem) AttachFile(rec FileRecord) error {
	if fs.ns.Exists(rec.Path) {
		return fmt.Errorf("%w: %q", ErrExists, rec.Path)
	}
	plan, err := fs.planAttach(rec)
	if err != nil {
		return err
	}
	// Materialize the physical replicas before any metadata mutates. The
	// mutation loop below assigns block ids sequentially from nextBlockID,
	// so block bi's file is keyed by nextBlockID+bi; an error here unwinds
	// to a plain attach failure — files removed, no ids consumed, nothing
	// reserved — and the migration retries on a later sweep. (Migration
	// ships no payload between shards: the destination regenerates the
	// synthetic block bytes, the physical analogue of the copy-then-detach
	// protocol's destination write.)
	if fs.bkend != nil {
		type writtenFile struct {
			dev      *storage.Device
			id, size int64
		}
		var written []writtenFile
		unwind := func() {
			for _, w := range written {
				fs.backendDelete(w.dev, storage.ClassMove, w.id, w.size)
			}
		}
		for bi, bl := range rec.Blocks {
			id := fs.nextBlockID + int64(bi)
			for _, slot := range plan[bi] {
				if err := fs.backendWrite(slot.dev, storage.ClassMove, id, bl.Size); err != nil {
					unwind()
					return fmt.Errorf("dfs: attach copy: %w", err)
				}
				written = append(written, writtenFile{slot.dev, id, bl.Size})
			}
		}
	}
	f := fs.fileArena.alloc()
	f.id = fs.nextFileID
	f.fs = fs
	f.path = rec.Path
	f.size = rec.Size
	f.created = rec.Created
	f.replication = rec.Replication
	fs.nextFileID++
	if err := fs.ns.insertFile(rec.Path, f); err != nil {
		return err
	}
	fs.trackFile(f)
	f.initBlocks(len(rec.Blocks))
	// Residency flips during the rebuild are suppressed exactly like the
	// create path: FileCreated carries the full starting residency.
	fs.setCreating(f.id)
	for bi, bl := range rec.Blocks {
		b := fs.blockArena.alloc()
		b.id = fs.nextBlockID
		b.file = f
		b.size = bl.Size
		b.initReplicas()
		f.blocks = append(f.blocks, b)
		fs.nextBlockID++
		for ri, slot := range plan[bi] {
			if err := slot.dev.Reserve(bl.Size); err != nil {
				// planAttach checked free space; single-threaded, so this is
				// a genuine bug, same contract as writeBlock.
				panic(fmt.Sprintf("dfs: attach reservation failed after planning: %v", err))
			}
			r := fs.replicaArena.alloc()
			r.block, r.node, r.device, r.state = b, slot.node, slot.dev, ReplicaValid
			r.isCache = bl.Cache[ri]
			b.replicas = append(b.replicas, r)
			fs.liveBytes += bl.Size
			b.noteReadable(r)
			fs.chargePlane(slot.dev, storage.Write, storage.ClassMove, bl.Size)
		}
	}
	fs.clearCreating(f.id)
	for _, l := range fs.listeners {
		l.FileCreated(f)
	}
	fs.notifyTiers(f)
	return nil
}
