package dfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Namespace errors.
var (
	ErrNotFound       = errors.New("dfs: no such file or directory")
	ErrExists         = errors.New("dfs: path already exists")
	ErrNotDirectory   = errors.New("dfs: not a directory")
	ErrNotEmpty       = errors.New("dfs: directory not empty")
	ErrInvalidPath    = errors.New("dfs: invalid path")
	ErrIsDirectory    = errors.New("dfs: is a directory")
	ErrFileIncomplete = errors.New("dfs: file write not yet complete")
)

// entry is one node in the namespace tree: a directory (children != nil) or
// a file (file != nil).
type entry struct {
	name     string
	parent   *entry
	children map[string]*entry
	file     *File
}

func (e *entry) isDir() bool { return e.children != nil }

// Namespace is the FS Directory component of the Master: a conventional
// hierarchical file organisation (Section 3.3).
type Namespace struct {
	root  *entry
	files int
}

// NewNamespace returns an empty namespace containing only "/".
func NewNamespace() *Namespace {
	return &Namespace{root: &entry{name: "", children: map[string]*entry{}}}
}

// FileCount returns the number of files (not directories) in the namespace.
func (ns *Namespace) FileCount() int { return ns.files }

// splitPath validates and splits an absolute path into components.
func splitPath(path string) ([]string, error) {
	if !strings.HasPrefix(path, "/") {
		return nil, fmt.Errorf("%w: %q is not absolute", ErrInvalidPath, path)
	}
	var parts []string
	for _, p := range strings.Split(path, "/") {
		switch p {
		case "", ".":
			continue
		case "..":
			return nil, fmt.Errorf("%w: %q contains '..'", ErrInvalidPath, path)
		default:
			parts = append(parts, p)
		}
	}
	return parts, nil
}

// IsCanonicalPath reports whether the path is already in canonical form:
// absolute, no empty, "." or ".." components, and no trailing slash (root
// excepted). Canonical paths pass through CleanPath unchanged, so callers
// on hot paths use this as a zero-allocation fast check.
func IsCanonicalPath(path string) bool {
	if len(path) == 0 || path[0] != '/' {
		return false
	}
	if path == "/" {
		return true
	}
	if path[len(path)-1] == '/' {
		return false
	}
	for i := 1; i < len(path); {
		j := i
		for j < len(path) && path[j] != '/' {
			j++
		}
		comp := path[i:j]
		if comp == "" || comp == "." || comp == ".." {
			return false
		}
		i = j + 1
	}
	return true
}

// CleanPath normalises a path ("/a//b/./c" -> "/a/b/c"). It fails on
// relative paths and paths containing "..". Already-canonical paths are
// returned as-is without allocating.
func CleanPath(path string) (string, error) {
	if IsCanonicalPath(path) {
		return path, nil
	}
	parts, err := splitPath(path)
	if err != nil {
		return "", err
	}
	return "/" + strings.Join(parts, "/"), nil
}

// lookup resolves a path to its entry. It is the hottest namespace path
// (every Open/Exists/GetFile goes through it), so it scans components in
// place instead of splitting the path: substring map probes do not allocate,
// making resolution zero-allocation for valid paths.
func (ns *Namespace) lookup(path string) (*entry, error) {
	if !strings.HasPrefix(path, "/") {
		return nil, fmt.Errorf("%w: %q is not absolute", ErrInvalidPath, path)
	}
	cur := ns.root
	for i := 1; i < len(path); {
		for i < len(path) && path[i] == '/' {
			i++
		}
		if i >= len(path) {
			break
		}
		j := i
		for j < len(path) && path[j] != '/' {
			j++
		}
		comp := path[i:j]
		i = j
		switch comp {
		case ".":
			continue
		case "..":
			return nil, fmt.Errorf("%w: %q contains '..'", ErrInvalidPath, path)
		}
		if !cur.isDir() {
			return nil, fmt.Errorf("%w: %q", ErrNotDirectory, path)
		}
		next, ok := cur.children[comp]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, path)
		}
		cur = next
	}
	return cur, nil
}

// MkdirAll creates the directory and any missing parents, like HDFS mkdirs.
func (ns *Namespace) MkdirAll(path string) error {
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	cur := ns.root
	for _, p := range parts {
		next, ok := cur.children[p]
		if !ok {
			next = &entry{name: p, parent: cur, children: map[string]*entry{}}
			cur.children[p] = next
		} else if !next.isDir() {
			return fmt.Errorf("%w: %q", ErrNotDirectory, path)
		}
		cur = next
	}
	return nil
}

// insertFile registers a file at path, creating parent directories.
func (ns *Namespace) insertFile(path string, f *File) error {
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("%w: cannot create file at root", ErrInvalidPath)
	}
	dir := "/" + strings.Join(parts[:len(parts)-1], "/")
	if err := ns.MkdirAll(dir); err != nil {
		return err
	}
	parentEntry, err := ns.lookup(dir)
	if err != nil {
		return err
	}
	name := parts[len(parts)-1]
	if _, ok := parentEntry.children[name]; ok {
		return fmt.Errorf("%w: %q", ErrExists, path)
	}
	parentEntry.children[name] = &entry{name: name, parent: parentEntry, file: f}
	ns.files++
	return nil
}

// GetFile resolves a path to a file.
func (ns *Namespace) GetFile(path string) (*File, error) {
	e, err := ns.lookup(path)
	if err != nil {
		return nil, err
	}
	if e.isDir() {
		return nil, fmt.Errorf("%w: %q", ErrIsDirectory, path)
	}
	return e.file, nil
}

// Exists reports whether a path resolves to a file or directory.
func (ns *Namespace) Exists(path string) bool {
	_, err := ns.lookup(path)
	return err == nil
}

// IsDir reports whether path exists and is a directory.
func (ns *Namespace) IsDir(path string) bool {
	e, err := ns.lookup(path)
	return err == nil && e.isDir()
}

// removeFile unlinks a file entry. The caller is responsible for replica
// teardown.
func (ns *Namespace) removeFile(path string) (*File, error) {
	e, err := ns.lookup(path)
	if err != nil {
		return nil, err
	}
	if e.isDir() {
		return nil, fmt.Errorf("%w: %q", ErrIsDirectory, path)
	}
	delete(e.parent.children, e.name)
	ns.files--
	return e.file, nil
}

// Rmdir removes an empty directory.
func (ns *Namespace) Rmdir(path string) error {
	e, err := ns.lookup(path)
	if err != nil {
		return err
	}
	if !e.isDir() {
		return fmt.Errorf("%w: %q", ErrNotDirectory, path)
	}
	if e == ns.root {
		return fmt.Errorf("%w: cannot remove root", ErrInvalidPath)
	}
	if len(e.children) > 0 {
		return fmt.Errorf("%w: %q", ErrNotEmpty, path)
	}
	delete(e.parent.children, e.name)
	return nil
}

// List returns the sorted child names of a directory.
func (ns *Namespace) List(path string) ([]string, error) {
	e, err := ns.lookup(path)
	if err != nil {
		return nil, err
	}
	if !e.isDir() {
		return nil, fmt.Errorf("%w: %q", ErrNotDirectory, path)
	}
	names := make([]string, 0, len(e.children))
	for name := range e.children {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Rename moves a file or directory to a new path. The destination must not
// exist; destination parents are created.
func (ns *Namespace) Rename(from, to string) error {
	e, err := ns.lookup(from)
	if err != nil {
		return err
	}
	if e == ns.root {
		return fmt.Errorf("%w: cannot rename root", ErrInvalidPath)
	}
	if ns.Exists(to) {
		return fmt.Errorf("%w: %q", ErrExists, to)
	}
	toParts, err := splitPath(to)
	if err != nil {
		return err
	}
	if len(toParts) == 0 {
		return fmt.Errorf("%w: cannot rename to root", ErrInvalidPath)
	}
	dir := "/" + strings.Join(toParts[:len(toParts)-1], "/")
	if err := ns.MkdirAll(dir); err != nil {
		return err
	}
	newParent, err := ns.lookup(dir)
	if err != nil {
		return err
	}
	// Reject moving a directory underneath itself.
	for p := newParent; p != nil; p = p.parent {
		if p == e {
			return fmt.Errorf("%w: cannot move %q inside itself", ErrInvalidPath, from)
		}
	}
	delete(e.parent.children, e.name)
	name := toParts[len(toParts)-1]
	e.name = name
	e.parent = newParent
	newParent.children[name] = e
	ns.rewritePaths(e)
	return nil
}

// rewritePaths updates the cached path strings of files under e.
func (ns *Namespace) rewritePaths(e *entry) {
	var walk func(e *entry, prefix string)
	walk = func(e *entry, prefix string) {
		full := prefix + "/" + e.name
		if e.file != nil {
			e.file.path = full
			return
		}
		for _, child := range e.children {
			walk(child, full)
		}
	}
	prefix := ""
	for p := e.parent; p != nil && p != ns.root; p = p.parent {
		prefix = "/" + p.name + prefix
	}
	walk(e, prefix)
}

// Walk visits every file in the namespace in sorted path order.
func (ns *Namespace) Walk(fn func(f *File)) {
	var walk func(e *entry)
	walk = func(e *entry) {
		if e.file != nil {
			fn(e.file)
			return
		}
		names := make([]string, 0, len(e.children))
		for name := range e.children {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			walk(e.children[name])
		}
	}
	walk(ns.root)
}
