package dfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Namespace errors.
var (
	ErrNotFound       = errors.New("dfs: no such file or directory")
	ErrExists         = errors.New("dfs: path already exists")
	ErrNotDirectory   = errors.New("dfs: not a directory")
	ErrNotEmpty       = errors.New("dfs: directory not empty")
	ErrInvalidPath    = errors.New("dfs: invalid path")
	ErrIsDirectory    = errors.New("dfs: is a directory")
	ErrFileIncomplete = errors.New("dfs: file write not yet complete")
)

// entry is one directory in the namespace tree. Files are not entries:
// a directory holds its files directly as a name-sorted *File slice, so a
// file's entire namespace footprint is one pointer in its parent — its
// name is the last component of File.path (shared backing, no copy), and
// there is no per-file tree node to allocate. Directories are rare
// relative to files (one per few hundred files in typical layouts), so
// their slices and names are noise at scale. Entries come from the
// namespace's arena.
type entry struct {
	name    string
	parent  *entry
	subdirs []*entry // sorted by name
	files   []*File  // sorted by fileBase
}

// fileBase returns the file's name: the last component of its path.
func fileBase(f *File) string {
	return f.path[strings.LastIndexByte(f.path, '/')+1:]
}

// findDir returns the child directory with the given name, or nil.
func (e *entry) findDir(name string) *entry {
	k := sort.Search(len(e.subdirs), func(i int) bool { return e.subdirs[i].name >= name })
	if k < len(e.subdirs) && e.subdirs[k].name == name {
		return e.subdirs[k]
	}
	return nil
}

// findFile returns the contained file with the given name, or nil.
func (e *entry) findFile(name string) *File {
	k := sort.Search(len(e.files), func(i int) bool { return fileBase(e.files[i]) >= name })
	if k < len(e.files) && fileBase(e.files[k]) == name {
		return e.files[k]
	}
	return nil
}

// insertDir links a child directory, keeping subdirs sorted.
func (e *entry) insertDir(sub *entry) {
	k := sort.Search(len(e.subdirs), func(i int) bool { return e.subdirs[i].name >= sub.name })
	e.subdirs = append(e.subdirs, nil)
	copy(e.subdirs[k+1:], e.subdirs[k:])
	e.subdirs[k] = sub
}

// insertFile links a file, keeping files sorted. The file's path must
// already end in its name.
func (e *entry) insertFile(f *File) {
	name := fileBase(f)
	k := sort.Search(len(e.files), func(i int) bool { return fileBase(e.files[i]) >= name })
	e.files = append(e.files, nil)
	copy(e.files[k+1:], e.files[k:])
	e.files[k] = f
}

// removeDir unlinks the named child directory.
func (e *entry) removeDir(name string) {
	k := sort.Search(len(e.subdirs), func(i int) bool { return e.subdirs[i].name >= name })
	if k < len(e.subdirs) && e.subdirs[k].name == name {
		e.subdirs = append(e.subdirs[:k], e.subdirs[k+1:]...)
	}
}

// removeFile unlinks the named file.
func (e *entry) removeFile(name string) {
	k := sort.Search(len(e.files), func(i int) bool { return fileBase(e.files[i]) >= name })
	if k < len(e.files) && fileBase(e.files[k]) == name {
		e.files = append(e.files[:k], e.files[k+1:]...)
	}
}

// Namespace is the FS Directory component of the Master: a conventional
// hierarchical file organisation (Section 3.3).
type Namespace struct {
	root    *entry
	files   int
	entries arena[entry]
}

// NewNamespace returns an empty namespace containing only "/".
func NewNamespace() *Namespace {
	ns := &Namespace{}
	ns.root = ns.entries.alloc()
	return ns
}

// FileCount returns the number of files (not directories) in the namespace.
func (ns *Namespace) FileCount() int { return ns.files }

// splitPath validates and splits an absolute path into components.
func splitPath(path string) ([]string, error) {
	if !strings.HasPrefix(path, "/") {
		return nil, fmt.Errorf("%w: %q is not absolute", ErrInvalidPath, path)
	}
	var parts []string
	for _, p := range strings.Split(path, "/") {
		switch p {
		case "", ".":
			continue
		case "..":
			return nil, fmt.Errorf("%w: %q contains '..'", ErrInvalidPath, path)
		default:
			parts = append(parts, p)
		}
	}
	return parts, nil
}

// IsCanonicalPath reports whether the path is already in canonical form:
// absolute, no empty, "." or ".." components, and no trailing slash (root
// excepted). Canonical paths pass through CleanPath unchanged, so callers
// on hot paths use this as a zero-allocation fast check.
func IsCanonicalPath(path string) bool {
	if len(path) == 0 || path[0] != '/' {
		return false
	}
	if path == "/" {
		return true
	}
	if path[len(path)-1] == '/' {
		return false
	}
	for i := 1; i < len(path); {
		j := i
		for j < len(path) && path[j] != '/' {
			j++
		}
		comp := path[i:j]
		if comp == "" || comp == "." || comp == ".." {
			return false
		}
		i = j + 1
	}
	return true
}

// CleanPath normalises a path ("/a//b/./c" -> "/a/b/c"). It fails on
// relative paths and paths containing "..". Already-canonical paths are
// returned as-is without allocating.
func CleanPath(path string) (string, error) {
	if IsCanonicalPath(path) {
		return path, nil
	}
	parts, err := splitPath(path)
	if err != nil {
		return "", err
	}
	return "/" + strings.Join(parts, "/"), nil
}

// lookup resolves a path. For a directory it returns (dir, nil); for a
// file it returns (containing directory, file). It is the hottest
// namespace path (every Open/Exists/GetFile goes through it), so it scans
// components in place instead of splitting the path: substring searches do
// not allocate, making resolution zero-allocation for valid paths.
func (ns *Namespace) lookup(path string) (*entry, *File, error) {
	if !strings.HasPrefix(path, "/") {
		return nil, nil, fmt.Errorf("%w: %q is not absolute", ErrInvalidPath, path)
	}
	cur := ns.root
	for i := 1; i < len(path); {
		for i < len(path) && path[i] == '/' {
			i++
		}
		if i >= len(path) {
			break
		}
		j := i
		for j < len(path) && path[j] != '/' {
			j++
		}
		comp := path[i:j]
		i = j
		switch comp {
		case ".":
			continue
		case "..":
			return nil, nil, fmt.Errorf("%w: %q contains '..'", ErrInvalidPath, path)
		}
		if sub := cur.findDir(comp); sub != nil {
			cur = sub
			continue
		}
		if f := cur.findFile(comp); f != nil {
			// A file resolves only as the final component; anything past
			// it (other than slashes and ".") descends through a non-dir.
			for i < len(path) {
				for i < len(path) && path[i] == '/' {
					i++
				}
				j = i
				for j < len(path) && path[j] != '/' {
					j++
				}
				switch path[i:j] {
				case "", ".":
					i = j
					continue
				case "..":
					return nil, nil, fmt.Errorf("%w: %q contains '..'", ErrInvalidPath, path)
				default:
					return nil, nil, fmt.Errorf("%w: %q", ErrNotDirectory, path)
				}
			}
			return cur, f, nil
		}
		return nil, nil, fmt.Errorf("%w: %q", ErrNotFound, path)
	}
	return cur, nil, nil
}

// MkdirAll creates the directory and any missing parents, like HDFS mkdirs.
func (ns *Namespace) MkdirAll(path string) error {
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	cur := ns.root
	for _, p := range parts {
		if sub := cur.findDir(p); sub != nil {
			cur = sub
			continue
		}
		if cur.findFile(p) != nil {
			return fmt.Errorf("%w: %q", ErrNotDirectory, path)
		}
		sub := ns.entries.alloc()
		sub.name = p
		sub.parent = cur
		cur.insertDir(sub)
		cur = sub
	}
	return nil
}

// insertFile registers a file at path, creating parent directories. The
// file's cached path is set to the canonical path, so its name (the last
// component) shares the path string's backing — no separate name storage
// per file. The whole insert is a single in-place walk: canonical paths
// allocate nothing beyond directory growth.
func (ns *Namespace) insertFile(path string, f *File) error {
	if !IsCanonicalPath(path) {
		clean, err := CleanPath(path)
		if err != nil {
			return err
		}
		path = clean
	}
	if path == "/" {
		return fmt.Errorf("%w: cannot create file at root", ErrInvalidPath)
	}
	f.path = path
	cur := ns.root
	for i := 1; ; {
		j := i
		for j < len(path) && path[j] != '/' {
			j++
		}
		comp := path[i:j]
		if j >= len(path) { // final component: the file's name
			if cur.findDir(comp) != nil || cur.findFile(comp) != nil {
				return fmt.Errorf("%w: %q", ErrExists, path)
			}
			cur.insertFile(f)
			ns.files++
			return nil
		}
		if sub := cur.findDir(comp); sub != nil {
			cur = sub
		} else if cur.findFile(comp) != nil {
			return fmt.Errorf("%w: %q", ErrNotDirectory, path)
		} else {
			sub = ns.entries.alloc()
			sub.name = comp
			sub.parent = cur
			cur.insertDir(sub)
			cur = sub
		}
		i = j + 1
	}
}

// GetFile resolves a path to a file.
func (ns *Namespace) GetFile(path string) (*File, error) {
	_, f, err := ns.lookup(path)
	if err != nil {
		return nil, err
	}
	if f == nil {
		return nil, fmt.Errorf("%w: %q", ErrIsDirectory, path)
	}
	return f, nil
}

// Exists reports whether a path resolves to a file or directory.
func (ns *Namespace) Exists(path string) bool {
	_, _, err := ns.lookup(path)
	return err == nil
}

// IsDir reports whether path exists and is a directory.
func (ns *Namespace) IsDir(path string) bool {
	_, f, err := ns.lookup(path)
	return err == nil && f == nil
}

// removeFile unlinks a file entry. The caller is responsible for replica
// teardown.
func (ns *Namespace) removeFile(path string) (*File, error) {
	dir, f, err := ns.lookup(path)
	if err != nil {
		return nil, err
	}
	if f == nil {
		return nil, fmt.Errorf("%w: %q", ErrIsDirectory, path)
	}
	dir.removeFile(fileBase(f))
	ns.files--
	return f, nil
}

// Rmdir removes an empty directory.
func (ns *Namespace) Rmdir(path string) error {
	e, f, err := ns.lookup(path)
	if err != nil {
		return err
	}
	if f != nil {
		return fmt.Errorf("%w: %q", ErrNotDirectory, path)
	}
	if e == ns.root {
		return fmt.Errorf("%w: cannot remove root", ErrInvalidPath)
	}
	if len(e.subdirs) > 0 || len(e.files) > 0 {
		return fmt.Errorf("%w: %q", ErrNotEmpty, path)
	}
	e.parent.removeDir(e.name)
	return nil
}

// List returns the sorted child names of a directory.
func (ns *Namespace) List(path string) ([]string, error) {
	e, f, err := ns.lookup(path)
	if err != nil {
		return nil, err
	}
	if f != nil {
		return nil, fmt.Errorf("%w: %q", ErrNotDirectory, path)
	}
	names := make([]string, 0, len(e.subdirs)+len(e.files))
	di, fi := 0, 0
	for di < len(e.subdirs) || fi < len(e.files) {
		if fi >= len(e.files) ||
			(di < len(e.subdirs) && e.subdirs[di].name < fileBase(e.files[fi])) {
			names = append(names, e.subdirs[di].name)
			di++
		} else {
			names = append(names, fileBase(e.files[fi]))
			fi++
		}
	}
	return names, nil
}

// dirPath reconstructs the absolute path of a directory entry.
func (ns *Namespace) dirPath(e *entry) string {
	if e == ns.root {
		return ""
	}
	return ns.dirPath(e.parent) + "/" + e.name
}

// Rename moves a file or directory to a new path. The destination must not
// exist; destination parents are created.
func (ns *Namespace) Rename(from, to string) error {
	e, f, err := ns.lookup(from)
	if err != nil {
		return err
	}
	if f == nil && e == ns.root {
		return fmt.Errorf("%w: cannot rename root", ErrInvalidPath)
	}
	if ns.Exists(to) {
		return fmt.Errorf("%w: %q", ErrExists, to)
	}
	toParts, err := splitPath(to)
	if err != nil {
		return err
	}
	if len(toParts) == 0 {
		return fmt.Errorf("%w: cannot rename to root", ErrInvalidPath)
	}
	dir := "/" + strings.Join(toParts[:len(toParts)-1], "/")
	if err := ns.MkdirAll(dir); err != nil {
		return err
	}
	newParent, _, err := ns.lookup(dir)
	if err != nil {
		return err
	}
	name := toParts[len(toParts)-1]
	if f != nil {
		e.removeFile(fileBase(f))
		f.path = ns.dirPath(newParent) + "/" + name
		newParent.insertFile(f)
		return nil
	}
	// Reject moving a directory underneath itself.
	for p := newParent; p != nil; p = p.parent {
		if p == e {
			return fmt.Errorf("%w: cannot move %q inside itself", ErrInvalidPath, from)
		}
	}
	e.parent.removeDir(e.name)
	e.name = name
	e.parent = newParent
	newParent.insertDir(e)
	ns.rewritePaths(e)
	return nil
}

// rewritePaths updates the cached path strings of files under the moved
// directory e. File names (the last path component) are unchanged by a
// directory move, so each directory's sorted file order is preserved.
func (ns *Namespace) rewritePaths(e *entry) {
	var walk func(e *entry, full string)
	walk = func(e *entry, full string) {
		for _, f := range e.files {
			f.path = full + "/" + fileBase(f)
		}
		for _, sub := range e.subdirs {
			walk(sub, full+"/"+sub.name)
		}
	}
	walk(e, ns.dirPath(e))
}

// Walk visits every file in the namespace in sorted path order.
func (ns *Namespace) Walk(fn func(f *File)) {
	walkEntry(ns.root, fn)
}

// WalkUnder visits every file in the subtree rooted at dir in sorted path
// order. A dir that does not resolve to a directory (missing, or a file) is
// an empty subtree — the shard rebalancer sweeps prefixes that may not have
// materialized on every shard.
func (ns *Namespace) WalkUnder(dir string, fn func(f *File)) {
	e, f, err := ns.lookup(dir)
	if err != nil || f != nil {
		return
	}
	walkEntry(e, fn)
}

func walkEntry(e *entry, fn func(f *File)) {
	di, fi := 0, 0
	for di < len(e.subdirs) || fi < len(e.files) {
		if fi >= len(e.files) ||
			(di < len(e.subdirs) && e.subdirs[di].name < fileBase(e.files[fi])) {
			walkEntry(e.subdirs[di], fn)
			di++
		} else {
			fn(e.files[fi])
			fi++
		}
	}
}
