package dfs

// arena is a monotonic chunked allocator for the namespace's long-lived
// metadata objects (File, Block, Replica, entry). A million-file namespace
// holds millions of these tiny structs; allocating each one individually
// costs a malloc header and size-class rounding per object and scatters
// them across the heap. The arena batches them into fixed-size chunks —
// one allocation amortised over arenaChunk objects, tight value packing,
// and far fewer pointers for the garbage collector to trace.
//
// Chunks are append-only and never reallocated (each chunk slice is grown
// to capacity up front), so &chunk[i] stays stable for the lifetime of the
// FileSystem — callers hold ordinary pointers into the arena. Objects are
// never recycled: asynchronous machinery (in-flight block moves, copy
// barriers, churn settlement) holds *Replica/*Block pointers across
// simulated time, so reuse would alias live references. Deleted files'
// slots are simply unreachable garbage within their chunk; namespaces here
// grow hot and die whole, which is exactly the profile arenas favour.
type arena[T any] struct {
	chunks [][]T
}

// arenaChunk is the number of objects per chunk. At typical element sizes
// (32–128 bytes) a chunk lands in the 32–128 KiB range: large enough to
// amortise allocation, small enough not to strand memory on tiny worlds.
const arenaChunk = 1024

// alloc returns a pointer to a new zero-valued T with a stable address.
func (a *arena[T]) alloc() *T {
	n := len(a.chunks)
	if n == 0 || len(a.chunks[n-1]) == cap(a.chunks[n-1]) {
		a.chunks = append(a.chunks, make([]T, 0, arenaChunk))
		n++
	}
	c := &a.chunks[n-1]
	*c = append(*c, *new(T))
	return &(*c)[len(*c)-1]
}
