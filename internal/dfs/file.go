// Package dfs implements the tiered distributed file system that the
// paper's framework manages: a hierarchical namespace, files split into
// large blocks, replicas placed across cluster nodes and storage tiers, and
// the read/write/move mechanics executed against the simulated devices.
//
// The package reproduces the architecture of HDFS/OctopusFS (Section 3.3 of
// the paper): the Master-side state (FS Directory, Block Manager) lives in
// FileSystem; Workers correspond to cluster.Node devices; the Client API is
// the exported method set. Four modes mirror the four systems compared in
// Figure 2: plain HDFS, HDFS with memory cache, OctopusFS tiered placement,
// and Octopus++ (OctopusFS plus the core replication manager attached via
// the Listener interface).
package dfs

import (
	"fmt"
	"time"

	"octostore/internal/cluster"
	"octostore/internal/storage"
)

// FileID uniquely identifies a file for the lifetime of a FileSystem.
type FileID int64

// ReplicaState tracks the lifecycle of a block replica. It is a single
// byte so a Replica packs into 32 bytes (three pointers plus state bits);
// a million-file namespace holds three of these per block.
type ReplicaState uint8

const (
	// ReplicaCreating means the initial write transfer is still running.
	ReplicaCreating ReplicaState = iota
	// ReplicaValid means the replica is readable.
	ReplicaValid
	// ReplicaMoving means the replica is being migrated to another tier;
	// it remains readable at the source until the move commits.
	ReplicaMoving
	// ReplicaDeleting means the replica is being torn down.
	ReplicaDeleting
)

// String implements fmt.Stringer.
func (s ReplicaState) String() string {
	switch s {
	case ReplicaCreating:
		return "creating"
	case ReplicaValid:
		return "valid"
	case ReplicaMoving:
		return "moving"
	case ReplicaDeleting:
		return "deleting"
	default:
		return fmt.Sprintf("ReplicaState(%d)", int(s))
	}
}

// Replica is one stored copy of a block on a specific device. Replicas are
// allocated from the FileSystem's arena (see arena.go): stable addresses,
// no per-object malloc.
type Replica struct {
	block   *Block
	node    *cluster.Node
	device  *storage.Device
	state   ReplicaState
	isCache bool // true for HDFS-cache style extra memory replicas
}

// Node returns the worker holding the replica.
func (r *Replica) Node() *cluster.Node { return r.node }

// Device returns the device holding the replica.
func (r *Replica) Device() *storage.Device { return r.device }

// Media returns the storage tier of the replica.
func (r *Replica) Media() storage.Media { return r.device.Media() }

// State returns the replica lifecycle state.
func (r *Replica) State() ReplicaState { return r.state }

// IsCache reports whether this is a cache replica (HDFS-cache mode).
func (r *Replica) IsCache() bool { return r.isCache }

// Readable reports whether the replica can currently serve reads.
func (r *Replica) Readable() bool {
	return r.state == ReplicaValid || r.state == ReplicaMoving
}

// Block is one fixed-size chunk of a file (the last block may be short).
// Blocks are arena-allocated; the replicas slice is backed by the inline
// replArr for the common replication≤3 case, so a standard 3-replica block
// costs no separate replica-list allocation (a fourth replica — the
// HDFS-cache mode's extra memory copy — spills to a heap-grown slice via
// ordinary append).
type Block struct {
	id       int64
	file     *File
	size     int64
	replicas []*Replica
	replArr  [3]*Replica // inline backing for the replicas slice
}

// initReplicas points the replicas slice at the inline array. Must be
// called once the Block has its final (arena) address.
func (b *Block) initReplicas() { b.replicas = b.replArr[:0] }

// ID returns the block id (unique within the FileSystem).
func (b *Block) ID() int64 { return b.id }

// File returns the owning file.
func (b *Block) File() *File { return b.file }

// Size returns the block length in bytes.
func (b *Block) Size() int64 { return b.size }

// Replicas returns the current replica list (do not mutate).
func (b *Block) Replicas() []*Replica { return b.replicas }

// ReplicaOn returns the first readable replica on the given media, or nil.
func (b *Block) ReplicaOn(media storage.Media) *Replica {
	for _, r := range b.replicas {
		if r.Media() == media && r.Readable() {
			return r
		}
	}
	return nil
}

// ReadableReplicas returns the number of readable replicas.
func (b *Block) ReadableReplicas() int {
	n := 0
	for _, r := range b.replicas {
		if r.Readable() {
			n++
		}
	}
	return n
}

func (b *Block) removeReplica(r *Replica) {
	for i, other := range b.replicas {
		if other == r {
			b.replicas = append(b.replicas[:i], b.replicas[i+1:]...)
			return
		}
	}
}

// hasReplica reports whether r is still attached to the block.
func (b *Block) hasReplica(r *Replica) bool {
	for _, other := range b.replicas {
		if other == r {
			return true
		}
	}
	return false
}

// noteReadable updates the owning file's per-tier residency counter after r
// became readable: the counter gains the block when r is its first readable
// replica on that media. Call it after the state (and, for moves, device)
// change has been applied. Crossing into full residency (every block on the
// media) fires the FileTierChanged notification.
func (b *Block) noteReadable(r *Replica) {
	m := r.Media()
	for _, other := range b.replicas {
		if other != r && other.Readable() && other.Media() == m {
			return
		}
	}
	f := b.file
	f.tierBlocks[m]++
	if int(f.tierBlocks[m]) == len(f.blocks) {
		f.fs.notifyResidency(f, m, true)
	}
}

// noteUnreadable is the inverse of noteReadable: call it after r stopped
// being readable on `media` (state change, device repoint, or detachment),
// passing the media it was readable on. Dropping out of full residency
// fires the FileTierChanged notification.
func (b *Block) noteUnreadable(r *Replica, media storage.Media) {
	for _, other := range b.replicas {
		if other != r && other.Readable() && other.Media() == media {
			return
		}
	}
	f := b.file
	wasFull := len(f.blocks) > 0 && int(f.tierBlocks[media]) == len(f.blocks)
	f.tierBlocks[media]--
	if wasFull {
		f.fs.notifyResidency(f, media, false)
	}
}

// File is a stored file: an ordered list of blocks plus metadata. Files
// are arena-allocated; the blocks slice is backed by the inline blkArr for
// the dominant single-block case, so small files cost no block-list
// allocation. The path string is interned with the namespace entry: the
// entry's name is a substring of the same backing array.
type File struct {
	id          FileID
	fs          *FileSystem // owner; carries residency-flip notifications
	path        string
	size        int64
	created     time.Time
	blocks      []*Block
	blkArr      [1]*Block // inline backing for single-block files
	replication int32
	deleted     bool
	// tierBlocks[m] counts blocks having at least one readable replica on
	// media m, maintained incrementally on every replica transition so the
	// manager's per-tick file scans answer HasReplicaOn in O(1) instead of
	// walking every replica of every block.
	tierBlocks [3]int32
}

// initBlocks sizes the blocks slice for n blocks, using the inline array
// when n ≤ 1. Must be called once the File has its final (arena) address.
func (f *File) initBlocks(n int) {
	if n <= 1 {
		f.blocks = f.blkArr[:0]
	} else {
		f.blocks = make([]*Block, 0, n)
	}
}

// ID returns the file id.
func (f *File) ID() FileID { return f.id }

// Path returns the absolute path of the file.
func (f *File) Path() string { return f.path }

// Size returns the logical file length in bytes.
func (f *File) Size() int64 { return f.size }

// Created returns the virtual creation time.
func (f *File) Created() time.Time { return f.created }

// Replication returns the target replica count per block.
func (f *File) Replication() int { return int(f.replication) }

// Blocks returns the file's blocks in order (do not mutate).
func (f *File) Blocks() []*Block { return f.blocks }

// Deleted reports whether the file has been removed from the namespace.
func (f *File) Deleted() bool { return f.deleted }

// HasReplicaOn reports whether every block of the file has a readable
// replica on the given media — the "all-or-nothing" property the paper's
// policies care about (Section 3.2). It reads the incrementally maintained
// residency counter, so it is O(1).
func (f *File) HasReplicaOn(media storage.Media) bool {
	return len(f.blocks) > 0 && int(f.tierBlocks[media]) == len(f.blocks)
}

// hasReplicaOnSlow recomputes HasReplicaOn from the replica lists; the
// invariant checker uses it to validate the counters.
func (f *File) hasReplicaOnSlow(media storage.Media) bool {
	if len(f.blocks) == 0 {
		return false
	}
	for _, b := range f.blocks {
		if b.ReplicaOn(media) == nil {
			return false
		}
	}
	return true
}

// BytesOn returns the total replica bytes the file occupies on a media.
func (f *File) BytesOn(media storage.Media) int64 {
	var total int64
	for _, b := range f.blocks {
		for _, r := range b.replicas {
			if r.Media() == media && r.state != ReplicaDeleting {
				total += b.size
			}
		}
	}
	return total
}

// HighestTier returns the highest media holding a readable replica of every
// block, and false when the file has no complete tier.
func (f *File) HighestTier() (storage.Media, bool) {
	for _, m := range storage.AllMedia {
		if f.HasReplicaOn(m) {
			return m, true
		}
	}
	return 0, false
}
