package dfs

import (
	"errors"
	"testing"

	"octostore/internal/cluster"
	"octostore/internal/sim"
	"octostore/internal/storage"
)

// TestMoveDuringCreateRejected covers the create/move race: a file whose
// initial write pipeline is still running must refuse tier movement with
// ErrBusy on every movement path (move, copy, delete-replicas).
func TestMoveDuringCreateRejected(t *testing.T) {
	e, fs := testFS(t, ModeOctopus)
	fs.Create("/inflight", 16*storage.MB, nil)
	// The file is visible in the namespace immediately, but its blocks are
	// still being written.
	f, err := fs.ns.GetFile("/inflight")
	if err != nil {
		t.Fatal(err)
	}
	if fs.Complete(f) {
		t.Fatal("precondition: create should still be in flight")
	}
	if err := fs.MoveFileReplicas(f, storage.Memory, storage.SSD, nil); !errors.Is(err, ErrBusy) {
		t.Fatalf("move during create error = %v, want ErrBusy", err)
	}
	if err := fs.CopyFileReplicas(f, storage.SSD, nil); !errors.Is(err, ErrBusy) {
		t.Fatalf("copy during create error = %v, want ErrBusy", err)
	}
	if err := fs.DeleteFileReplicas(f, storage.Memory); !errors.Is(err, ErrBusy) {
		t.Fatalf("delete replicas during create error = %v, want ErrBusy", err)
	}
	e.Run()
	if err := fs.CheckInvariants(); err != nil {
		t.Fatalf("invariants after rejected ops: %v", err)
	}
}

// TestDoubleMoveSameTierRejected covers the double-move race: while a
// Memory→SSD move is in flight, a second identical request must fail with
// ErrBusy and leave the in-flight move to commit exactly once.
func TestDoubleMoveSameTierRejected(t *testing.T) {
	e, fs := testFS(t, ModeOctopus)
	f := createFile(t, e, fs, "/f", 16*storage.MB)
	commits := 0
	if err := fs.MoveFileReplicas(f, storage.Memory, storage.SSD, func(err error) {
		if err != nil {
			t.Errorf("first move failed: %v", err)
		}
		commits++
	}); err != nil {
		t.Fatal(err)
	}
	if err := fs.MoveFileReplicas(f, storage.Memory, storage.SSD, nil); !errors.Is(err, ErrBusy) {
		t.Fatalf("double move error = %v, want ErrBusy", err)
	}
	e.Run()
	if commits != 1 {
		t.Fatalf("first move committed %d times, want 1", commits)
	}
	// Exactly one SSD copy arrived (the pre-existing one plus the move).
	if got := f.BytesOn(storage.SSD); got != 2*16*storage.MB {
		t.Fatalf("SSD bytes = %d, want exactly two replicas' worth", got)
	}
	if err := fs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDeleteReplicasAllOrNothing covers ErrLastCopy stepwise: deleting
// down to one replica succeeds, the next delete is refused, and the refused
// call must not have removed anything.
func TestDeleteReplicasAllOrNothing(t *testing.T) {
	e, fs := testFS(t, ModeHDFS) // replication 3, all on HDD
	f := createFile(t, e, fs, "/f", 16*storage.MB)
	for i := 0; i < 2; i++ {
		if err := fs.DeleteFileReplicas(f, storage.HDD); err != nil {
			t.Fatalf("delete round %d: %v", i, err)
		}
	}
	before := f.BytesOn(storage.HDD)
	if before != 16*storage.MB {
		t.Fatalf("precondition: %d bytes on HDD, want one replica", before)
	}
	if err := fs.DeleteFileReplicas(f, storage.HDD); !errors.Is(err, ErrLastCopy) {
		t.Fatalf("last-copy delete error = %v, want ErrLastCopy", err)
	}
	if got := f.BytesOn(storage.HDD); got != before {
		t.Fatalf("refused delete still removed bytes: %d -> %d", before, got)
	}
	if err := fs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDeleteReplicasPartialTierRejected builds a file whose memory presence
// is partial (HDFS-cache on a memory tier too small for both blocks): the
// delete-replicas path must fail with ErrNoReplica and must not remove the
// block replica that does exist (no partial teardown).
func TestDeleteReplicasPartialTierRejected(t *testing.T) {
	e := sim.NewEngine()
	c := cluster.MustNew(e, cluster.Config{
		Workers: 1, SlotsPerNode: 2,
		Spec: storage.NodeSpec{
			{Media: storage.Memory, Capacity: 64 * storage.MB, ReadBW: 4000e6, WriteBW: 3000e6, Count: 1},
			{Media: storage.SSD, Capacity: 256 * storage.MB, ReadBW: 500e6, WriteBW: 400e6, Count: 1},
			{Media: storage.HDD, Capacity: 1 * storage.GB, ReadBW: 160e6, WriteBW: 140e6, Count: 1},
		},
	})
	fs := MustNew(c, Config{Mode: ModeHDFSCache, BlockSize: 40 * storage.MB, Replication: 1, Seed: 3})
	f := createFile(t, e, fs, "/partial", 80*storage.MB) // two 40 MB blocks
	e.Run()                                              // let the async cache fill settle
	// 64 MB of memory holds the first block's cache replica but not the
	// second's.
	if got := f.BytesOn(storage.Memory); got != 40*storage.MB {
		t.Fatalf("memory bytes = %d, want one cached block", got)
	}
	if f.HasReplicaOn(storage.Memory) {
		t.Fatal("partial tier presence must not count as full residency")
	}
	if err := fs.DeleteFileReplicas(f, storage.Memory); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("partial-tier delete error = %v, want ErrNoReplica", err)
	}
	if got := f.BytesOn(storage.Memory); got != 40*storage.MB {
		t.Fatalf("refused delete removed the existing cache replica: %d bytes left", got)
	}
	if err := fs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMoveCommitsUnderNodeLossDst pins the deterministic churn semantics:
// when the destination node of an in-flight move fails, the replica stays
// at its source, stays readable, and accounting balances.
func TestMoveCommitsUnderNodeLossDst(t *testing.T) {
	e, fs := testFS(t, ModePinnedHDD)
	f := createFile(t, e, fs, "/f", 16*storage.MB)
	if err := fs.MoveFileReplicas(f, storage.HDD, storage.Memory, nil); err != nil {
		t.Fatal(err)
	}
	// Find the in-flight destination node and fail it before the commit.
	var dst *cluster.Node
	for m := range fs.moves {
		dst = m.dstNod
	}
	if dst == nil {
		t.Fatal("no move in flight")
	}
	fs.FailNode(dst)
	e.Run()
	if !f.HasReplicaOn(storage.HDD) {
		t.Fatal("replica did not stay at its source after destination loss")
	}
	if f.HasReplicaOn(storage.Memory) {
		t.Fatal("replica committed to a dead node")
	}
	if err := fs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMoveCommitsUnderNodeLossSrc is the mirror case: the source node of an
// in-flight move fails; the replica is lost (it lived on the dead node) and
// the destination reservation must be released, not leaked.
func TestMoveCommitsUnderNodeLossSrc(t *testing.T) {
	e, fs := testFS(t, ModePinnedHDD)
	f := createFile(t, e, fs, "/f", 16*storage.MB)
	if err := fs.MoveFileReplicas(f, storage.HDD, storage.Memory, nil); err != nil {
		t.Fatal(err)
	}
	var src *cluster.Node
	for m := range fs.moves {
		src = m.src.Node()
	}
	if src == nil {
		t.Fatal("no move in flight")
	}
	fs.FailNode(src)
	e.Run()
	memUsed, _ := fs.Cluster().TierUsage(storage.Memory)
	if memUsed != 0 {
		t.Fatalf("destination reservation leaked: %d bytes on memory", memUsed)
	}
	if err := fs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
