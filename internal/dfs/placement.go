package dfs

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"octostore/internal/cluster"
	"octostore/internal/storage"
)

// writeHorizons is the data plane's per-device queue-horizon view (the
// same shape as FileSystem.backlog). A contended plane exposes it; nil
// plane and NopPlane do not, keeping plane-less placement bit for bit.
type writeHorizons interface {
	Horizon(deviceID string, dir storage.Direction) time.Time
}

// ErrNoCapacity is returned when a block cannot be placed because no
// candidate device has room.
var ErrNoCapacity = errors.New("dfs: no capacity for block placement")

// Target is one chosen destination for a block replica.
type Target struct {
	Node   *cluster.Node
	Device *storage.Device
}

// PlacementPolicy decides where the replicas of a new block are stored.
// Implementations must return targets on distinct nodes (fault tolerance).
type PlacementPolicy interface {
	// Name identifies the policy in logs and experiment output.
	Name() string
	// PlaceBlock returns up to `replication` targets for a block of the
	// given size. Fewer targets than requested may be returned when the
	// cluster lacks space; zero targets is an error. The returned slice is
	// scratch storage owned by the policy: it is only valid until the next
	// PlaceBlock call.
	PlaceBlock(size int64, replication int) ([]Target, error)
}

// targetsHaveNode reports whether a node already received a replica.
func targetsHaveNode(targets []Target, nodeID int) bool {
	for _, t := range targets {
		if t.Node.ID() == nodeID {
			return true
		}
	}
	return false
}

// hddPlacement reproduces stock HDFS: every replica on an HDD, replicas on
// distinct nodes, nodes chosen with a random rotor for balance.
type hddPlacement struct {
	cluster *cluster.Cluster
	rng     *rand.Rand
	scratch []Target // reused PlaceBlock result buffer
}

func (p *hddPlacement) Name() string { return "hdfs-3xHDD" }

func (p *hddPlacement) PlaceBlock(size int64, replication int) ([]Target, error) {
	nodes := p.cluster.Nodes()
	start := p.rng.Intn(len(nodes))
	targets := p.scratch[:0]
	for i := 0; i < len(nodes) && len(targets) < replication; i++ {
		n := nodes[(start+i)%len(nodes)]
		if d := n.PickDevice(storage.HDD, size); d != nil {
			targets = append(targets, Target{Node: n, Device: d})
		}
	}
	p.scratch = targets
	if len(targets) == 0 {
		return nil, fmt.Errorf("%w: %d bytes on HDD tier", ErrNoCapacity, size)
	}
	return targets, nil
}

// octopusPlacement reproduces the OctopusFS multi-objective block placement
// (Section 5.3 / [29]): each replica destination is scored on throughput,
// data balancing, and load balancing, with fault tolerance enforced by the
// distinct-node constraint and a tier-diversity term that spreads a block's
// replicas across media (the behaviour visible in Figure 1(b): one replica
// in memory, one on SSD, one on HDD while space lasts).
type octopusPlacement struct {
	cluster *cluster.Cluster
	rng     *rand.Rand
	weights PlacementWeights
	scratch []Target // reused PlaceBlock result buffer
	// backlog, when a horizon-exposing plane is attached, feeds the write
	// backlog each candidate device has already queued into the score, so
	// new replicas steer away from saturated devices (the write-side twin
	// of pickReadReplica's read steering). Nil skips the term entirely.
	backlog writeHorizons
}

// PlacementWeights are the relative objective weights of the OctopusFS
// placement score. The defaults make tier throughput the dominant term,
// with diversity strong enough that a block's second replica prefers the
// next tier down over a second memory replica.
type PlacementWeights struct {
	Throughput float64
	DataBal    float64
	LoadBal    float64
	Diversity  float64
	// Backlog penalizes devices whose write channel the data plane reports
	// as queued up: the penalty approaches Backlog as the device's pending
	// write horizon grows past a second. Only in effect when a
	// horizon-exposing plane is attached; otherwise the term is skipped, so
	// plane-less placement is unchanged at any weight.
	Backlog float64
}

// DefaultPlacementWeights returns the weights used across the evaluation.
func DefaultPlacementWeights() PlacementWeights {
	return PlacementWeights{Throughput: 1.0, DataBal: 0.6, LoadBal: 0.3, Diversity: 2.0, Backlog: 1.0}
}

func (p *octopusPlacement) Name() string { return "octopus-multiobjective" }

// mediaSpeed normalises a media's write bandwidth into (0, 1].
func mediaSpeed(m storage.Media) float64 {
	switch m {
	case storage.Memory:
		return 1.0
	case storage.SSD:
		return 0.45
	default:
		return 0.15
	}
}

func (p *octopusPlacement) PlaceBlock(size int64, replication int) ([]Target, error) {
	nodes := p.cluster.Nodes()
	var usedMedia [3]int // indexed by storage.Media
	targets := p.scratch[:0]
	start := p.rng.Intn(len(nodes))
	var now time.Time
	if p.backlog != nil {
		now = p.cluster.Engine().Now()
	}
	for len(targets) < replication {
		var best Target
		bestScore := math.Inf(-1)
		for i := 0; i < len(nodes); i++ {
			n := nodes[(start+i)%len(nodes)]
			if targetsHaveNode(targets, n.ID()) {
				continue
			}
			for _, media := range storage.AllMedia {
				d := n.PickDevice(media, size)
				if d == nil {
					continue
				}
				score := p.weights.Throughput * mediaSpeed(media)
				score += p.weights.DataBal * (1 - d.Utilization())
				score += p.weights.LoadBal / float64(1+d.Load())
				score -= p.weights.Diversity * float64(usedMedia[media])
				if p.backlog != nil {
					// Saturation-aware placement: devices whose write channel
					// the plane has already booked out score down, bounded so
					// a deep queue defers to the diversity/throughput terms
					// rather than overriding them outright.
					if wait := p.backlog.Horizon(d.ID(), storage.Write).Sub(now); wait > 0 {
						ws := wait.Seconds()
						score -= p.weights.Backlog * ws / (ws + 1)
					}
				}
				if score > bestScore {
					bestScore = score
					best = Target{Node: n, Device: d}
				}
			}
		}
		if best.Device == nil {
			break // out of eligible nodes or space
		}
		usedMedia[best.Device.Media()]++
		targets = append(targets, best)
	}
	p.scratch = targets
	if len(targets) == 0 {
		return nil, fmt.Errorf("%w: %d bytes on any tier", ErrNoCapacity, size)
	}
	return targets, nil
}

// pinnedPlacement places every replica on a fixed media; used by the
// upgrade-policy isolation experiment (Section 7.4), which starts all
// replicas on the HDD tier.
type pinnedPlacement struct {
	cluster *cluster.Cluster
	rng     *rand.Rand
	media   storage.Media
	scratch []Target // reused PlaceBlock result buffer
}

func (p *pinnedPlacement) Name() string { return "pinned-" + p.media.String() }

func (p *pinnedPlacement) PlaceBlock(size int64, replication int) ([]Target, error) {
	nodes := p.cluster.Nodes()
	start := p.rng.Intn(len(nodes))
	targets := p.scratch[:0]
	for i := 0; i < len(nodes) && len(targets) < replication; i++ {
		n := nodes[(start+i)%len(nodes)]
		if d := n.PickDevice(p.media, size); d != nil {
			targets = append(targets, Target{Node: n, Device: d})
		}
	}
	p.scratch = targets
	if len(targets) == 0 {
		return nil, fmt.Errorf("%w: %d bytes on %s tier", ErrNoCapacity, size, p.media)
	}
	return targets, nil
}
