package dfs

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"octostore/internal/backend"
	"octostore/internal/cluster"
	"octostore/internal/sim"
	"octostore/internal/storage"
)

// backendScript drives one fs through a deterministic mixed workload:
// creates, moves, reads, deletes. Used to compare runs with different
// backends attached.
func backendScript(t *testing.T, e *sim.Engine, fs *FileSystem) []*File {
	t.Helper()
	var files []*File
	for i := 0; i < 6; i++ {
		files = append(files, createFile(t, e, fs,
			fmt.Sprintf("/w/f%d", i), int64(8+4*i)*storage.MB))
	}
	if err := moveSync(t, fs, files[0], storage.Memory, storage.SSD); err != nil {
		t.Fatal(err)
	}
	if err := moveSync(t, fs, files[1], storage.Memory, storage.HDD); err != nil {
		t.Fatal(err)
	}
	for _, f := range files[:3] {
		b := f.Blocks()[0]
		fs.ReadBlock(b, nil, func(ReadResult, error) {})
	}
	e.Run()
	if err := fs.Delete(files[5].Path()); err != nil {
		t.Fatal(err)
	}
	e.Run()
	return files
}

// backendFingerprint captures everything a policy decision could observe:
// virtual time, movement stats, tier usage, and each file's per-tier bytes.
func backendFingerprint(e *sim.Engine, fs *FileSystem, files []*File) string {
	out := fmt.Sprintf("now=%v stats=%+v", e.Now(), fs.Stats())
	for _, m := range storage.AllMedia {
		used, cap := fs.Cluster().TierUsage(m)
		out += fmt.Sprintf(" %s=%d/%d", m, used, cap)
	}
	for i, f := range files {
		if f.Deleted() {
			out += fmt.Sprintf(" f%d=deleted", i)
			continue
		}
		out += fmt.Sprintf(" f%d=%d/%d/%d", i,
			f.BytesOn(storage.Memory), f.BytesOn(storage.SSD), f.BytesOn(storage.HDD))
	}
	return out
}

// TestSimBackendAttachedIsBitForBit is the tentpole's core contract: a
// backend is a synchronous physical mirror at the block-transfer seams — it
// schedules no events and draws no randomness — so attaching one (here the
// no-op Sim) must leave every control-plane decision identical to running
// with no backend at all.
func TestSimBackendAttachedIsBitForBit(t *testing.T) {
	e1, fs1 := testFS(t, ModeOctopus)
	files1 := backendScript(t, e1, fs1)

	e2, fs2 := testFS(t, ModeOctopus)
	fs2.SetBackend(backend.Sim{})
	files2 := backendScript(t, e2, fs2)

	got1 := backendFingerprint(e1, fs1, files1)
	got2 := backendFingerprint(e2, fs2, files2)
	if got1 != got2 {
		t.Fatalf("Sim-attached run diverged from nil-backend run:\n nil: %s\n sim: %s", got1, got2)
	}
}

// TestLocalBackendMirrorsReplicaLifecycle attaches a real-file backend to
// the dfs and checks the physical ground truth at every quiesce point: the
// bytes on disk per tier equal the ledger's used bytes, through create,
// move, and delete.
func TestLocalBackendMirrorsReplicaLifecycle(t *testing.T) {
	e, fs := testFS(t, ModeOctopus)
	l, err := backend.OpenLocal(backend.LocalConfig{Root: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	fs.SetBackend(l)

	checkDisk := func(step string) {
		t.Helper()
		used, err := l.DiskUsage()
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range storage.AllMedia {
			ledger, _ := fs.Cluster().TierUsage(m)
			if used[m] != ledger {
				t.Fatalf("%s: %s tier disk=%d ledger=%d", step, m, used[m], ledger)
			}
		}
	}

	f := createFile(t, e, fs, "/f", 16*storage.MB)
	checkDisk("after create")

	if err := moveSync(t, fs, f, storage.Memory, storage.SSD); err != nil {
		t.Fatal(err)
	}
	checkDisk("after move")

	// The read path streams the replica file; a correct read is invisible to
	// accounting but must be counted by the backend.
	fs.ReadBlock(f.Blocks()[0], nil, func(ReadResult, error) {})
	e.Run()
	var reads int64
	for _, m := range storage.AllMedia {
		reads += l.Stats().PerTier[m].Read.Count
	}
	if reads == 0 {
		t.Fatal("read path never touched the physical backend")
	}

	if err := fs.Delete(f.Path()); err != nil {
		t.Fatal(err)
	}
	e.Run()
	checkDisk("after delete")
	var errs int64
	st := l.Stats()
	for _, m := range storage.AllMedia {
		for _, op := range backend.Ops {
			errs += st.PerTier[m].Op(op).Errors
		}
	}
	if errs != 0 {
		t.Fatalf("backend recorded %d I/O errors over a clean lifecycle", errs)
	}
}

// fakeHorizons is a scripted writeHorizons plane view for placement tests.
type fakeHorizons map[string]time.Time

func (f fakeHorizons) Horizon(id string, _ storage.Direction) time.Time { return f[id] }

func placementCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	return cluster.MustNew(sim.NewEngine(), cluster.Config{
		Workers: 3, SlotsPerNode: 2, Spec: storage.SmallWorkerSpec(),
	})
}

// TestPlacementBacklogZeroHorizonsBitForBit: a plane that reports no write
// backlog anywhere must produce exactly the placement a plane-less run
// does, at any Backlog weight — the penalty term only engages on a
// positive horizon.
func TestPlacementBacklogZeroHorizonsBitForBit(t *testing.T) {
	c := placementCluster(t)
	place := func(backlog writeHorizons) []string {
		p := &octopusPlacement{
			cluster: c, rng: rand.New(rand.NewSource(11)),
			weights: DefaultPlacementWeights(), backlog: backlog,
		}
		var out []string
		for i := 0; i < 8; i++ {
			targets, err := p.PlaceBlock(16*storage.MB, 3)
			if err != nil {
				t.Fatal(err)
			}
			for _, tg := range targets {
				out = append(out, tg.Device.ID())
			}
		}
		return out
	}
	plain := place(nil)
	zeroed := place(fakeHorizons{})
	if fmt.Sprint(plain) != fmt.Sprint(zeroed) {
		t.Fatalf("zero-horizon plane changed placement:\n nil:  %v\n zero: %v", plain, zeroed)
	}
}

// TestPlacementBacklogSteersOffSaturatedTier: when the plane reports every
// memory device's write channel booked out for seconds, new blocks' first
// replicas must land elsewhere; an idle plane keeps the memory-first
// placement.
func TestPlacementBacklogSteersOffSaturatedTier(t *testing.T) {
	c := placementCluster(t)
	firstMedia := func(backlog writeHorizons) storage.Media {
		p := &octopusPlacement{
			cluster: c, rng: rand.New(rand.NewSource(5)),
			weights: DefaultPlacementWeights(), backlog: backlog,
		}
		targets, err := p.PlaceBlock(16*storage.MB, 3)
		if err != nil {
			t.Fatal(err)
		}
		return targets[0].Device.Media()
	}
	if m := firstMedia(nil); m != storage.Memory {
		t.Fatalf("idle placement leads with %s, want MEM", m)
	}
	// Saturate every memory device: horizon 10 virtual seconds out.
	sat := fakeHorizons{}
	deadline := c.Engine().Now().Add(10 * time.Second)
	for _, n := range c.Nodes() {
		for _, d := range n.Devices(storage.Memory) {
			sat[d.ID()] = deadline
		}
	}
	if m := firstMedia(sat); m == storage.Memory {
		t.Fatal("placement still leads with a saturated memory device")
	}
}
