package dfs

import (
	"errors"
	"testing"
)

func TestCleanPath(t *testing.T) {
	for _, tc := range []struct {
		in, want string
	}{
		{"/a/b/c", "/a/b/c"},
		{"/a//b/./c", "/a/b/c"},
		{"/", "/"},
	} {
		got, err := CleanPath(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("CleanPath(%q) = %q, %v; want %q", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"relative/path", "/a/../b", ""} {
		if _, err := CleanPath(bad); err == nil {
			t.Fatalf("CleanPath(%q) should fail", bad)
		}
	}
}

// TestCleanPathCorners pins the normalisation corner cases: repeated and
// trailing slashes collapse, "." components vanish, and "..", bare
// relatives, and dot-paths are rejected outright.
func TestCleanPathCorners(t *testing.T) {
	for _, tc := range []struct {
		in, want string
	}{
		{"//", "/"},
		{"///", "/"},
		{"/a/", "/a"},
		{"/a//", "/a"},
		{"//a///b//", "/a/b"},
		{"/./", "/"},
		{"/a/./", "/a"},
		{"/a/b/c/", "/a/b/c"},
	} {
		got, err := CleanPath(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("CleanPath(%q) = %q, %v; want %q", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"..", ".", "a", "a/b", "/..", "/../", "/a/..", "/a/../", "/a/b/../c", "./a"} {
		if got, err := CleanPath(bad); err == nil {
			t.Fatalf("CleanPath(%q) = %q, want rejection", bad, got)
		}
	}
	// lookup must agree with CleanPath on rejection.
	ns := NewNamespace()
	for _, bad := range []string{"", "a", "/a/../b"} {
		if _, _, err := ns.lookup(bad); err == nil {
			t.Fatalf("lookup(%q) should fail", bad)
		}
	}
	// ...and on normalisation: messy spellings of an existing path resolve.
	if err := ns.insertFile("/x/y/z", &File{path: "/x/y/z"}); err != nil {
		t.Fatal(err)
	}
	for _, messy := range []string{"/x/y/z", "//x//y//z", "/x/./y/z/", "/x/y/z//"} {
		if f, err := ns.GetFile(messy); err != nil || f == nil {
			t.Fatalf("GetFile(%q) = %v, %v; want the file", messy, f, err)
		}
	}
}

// TestRenameSubtreeRewritesAllDescendants renames a directory holding a
// nested subtree and verifies every descendant file's cached path is
// rewritten, the old paths are gone, and FileCount is preserved.
func TestRenameSubtreeRewritesAllDescendants(t *testing.T) {
	ns := NewNamespace()
	files := map[string]*File{}
	for _, p := range []string{
		"/src/f0",
		"/src/a/f1",
		"/src/a/f2",
		"/src/a/b/f3",
		"/src/a/b/c/f4",
		"/other/keep",
	} {
		f := &File{path: p}
		files[p] = f
		if err := ns.insertFile(p, f); err != nil {
			t.Fatal(err)
		}
	}
	if ns.FileCount() != 6 {
		t.Fatalf("FileCount = %d, want 6", ns.FileCount())
	}
	if err := ns.Rename("/src", "/dst/deep/moved"); err != nil {
		t.Fatal(err)
	}
	if ns.FileCount() != 6 {
		t.Fatalf("FileCount after rename = %d, want 6 (rename must not create or drop files)", ns.FileCount())
	}
	moved := map[string]string{
		"/src/f0":       "/dst/deep/moved/f0",
		"/src/a/f1":     "/dst/deep/moved/a/f1",
		"/src/a/f2":     "/dst/deep/moved/a/f2",
		"/src/a/b/f3":   "/dst/deep/moved/a/b/f3",
		"/src/a/b/c/f4": "/dst/deep/moved/a/b/c/f4",
	}
	for old, now := range moved {
		if ns.Exists(old) {
			t.Fatalf("old path %q still resolves", old)
		}
		got, err := ns.GetFile(now)
		if err != nil {
			t.Fatalf("GetFile(%q): %v", now, err)
		}
		if got != files[old] {
			t.Fatalf("path %q resolves to the wrong file", now)
		}
		if got.Path() != now {
			t.Fatalf("file moved from %q has cached path %q, want %q", old, got.Path(), now)
		}
	}
	// The unrelated sibling is untouched.
	if f, err := ns.GetFile("/other/keep"); err != nil || f.Path() != "/other/keep" {
		t.Fatalf("unrelated file disturbed: %v, %v", f, err)
	}
	if ns.Exists("/src") {
		t.Fatal("source directory still exists")
	}
	// Walk order agrees with the rewritten paths.
	ns.Walk(func(f *File) {
		if got, err := ns.GetFile(f.Path()); err != nil || got != f {
			t.Fatalf("walked file %q does not round-trip: %v", f.Path(), err)
		}
	})
}

// TestRenameFileUpdatesCachedPath renames a single file across directories.
func TestRenameFileUpdatesCachedPath(t *testing.T) {
	ns := NewNamespace()
	f := &File{path: "/a/old"}
	if err := ns.insertFile("/a/old", f); err != nil {
		t.Fatal(err)
	}
	if err := ns.Rename("/a/old", "/b/c/new"); err != nil {
		t.Fatal(err)
	}
	if f.Path() != "/b/c/new" {
		t.Fatalf("cached path = %q, want /b/c/new", f.Path())
	}
	if ns.FileCount() != 1 {
		t.Fatalf("FileCount = %d, want 1", ns.FileCount())
	}
}

func TestInsertAndGetFile(t *testing.T) {
	ns := NewNamespace()
	f := &File{path: "/data/input/f1"}
	if err := ns.insertFile("/data/input/f1", f); err != nil {
		t.Fatal(err)
	}
	got, err := ns.GetFile("/data/input/f1")
	if err != nil || got != f {
		t.Fatalf("GetFile = %v, %v", got, err)
	}
	if ns.FileCount() != 1 {
		t.Fatalf("FileCount = %d", ns.FileCount())
	}
	if !ns.IsDir("/data") || !ns.IsDir("/data/input") {
		t.Fatal("parents not auto-created as directories")
	}
}

func TestInsertDuplicate(t *testing.T) {
	ns := NewNamespace()
	if err := ns.insertFile("/f", &File{}); err != nil {
		t.Fatal(err)
	}
	if err := ns.insertFile("/f", &File{}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate insert error = %v", err)
	}
}

func TestGetFileErrors(t *testing.T) {
	ns := NewNamespace()
	if _, err := ns.GetFile("/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing file error = %v", err)
	}
	if err := ns.MkdirAll("/dir"); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.GetFile("/dir"); !errors.Is(err, ErrIsDirectory) {
		t.Fatalf("dir as file error = %v", err)
	}
	if err := ns.insertFile("/dir", &File{}); !errors.Is(err, ErrExists) {
		t.Fatalf("file over dir error = %v", err)
	}
}

func TestFileAsDirectoryComponent(t *testing.T) {
	ns := NewNamespace()
	if err := ns.insertFile("/a", &File{}); err != nil {
		t.Fatal(err)
	}
	if err := ns.insertFile("/a/b", &File{}); !errors.Is(err, ErrNotDirectory) {
		t.Fatalf("file-as-dir error = %v", err)
	}
}

func TestRemoveFile(t *testing.T) {
	ns := NewNamespace()
	f := &File{}
	if err := ns.insertFile("/x/y", f); err != nil {
		t.Fatal(err)
	}
	got, err := ns.removeFile("/x/y")
	if err != nil || got != f {
		t.Fatalf("removeFile = %v, %v", got, err)
	}
	if ns.Exists("/x/y") {
		t.Fatal("file still exists after remove")
	}
	if !ns.Exists("/x") {
		t.Fatal("parent directory removed with file")
	}
	if ns.FileCount() != 0 {
		t.Fatalf("FileCount = %d", ns.FileCount())
	}
}

func TestRmdir(t *testing.T) {
	ns := NewNamespace()
	if err := ns.MkdirAll("/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := ns.Rmdir("/a"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("non-empty rmdir error = %v", err)
	}
	if err := ns.Rmdir("/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := ns.Rmdir("/a"); err != nil {
		t.Fatal(err)
	}
	if err := ns.Rmdir("/"); !errors.Is(err, ErrInvalidPath) {
		t.Fatalf("rmdir root error = %v", err)
	}
}

func TestList(t *testing.T) {
	ns := NewNamespace()
	for _, p := range []string{"/d/c", "/d/a", "/d/b"} {
		if err := ns.insertFile(p, &File{path: p}); err != nil {
			t.Fatal(err)
		}
	}
	names, err := ns.List("/d")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("List = %v, want %v", names, want)
		}
	}
	if _, err := ns.List("/d/a"); !errors.Is(err, ErrNotDirectory) {
		t.Fatalf("list file error = %v", err)
	}
}

func TestRenameFile(t *testing.T) {
	ns := NewNamespace()
	f := &File{path: "/old/name"}
	if err := ns.insertFile("/old/name", f); err != nil {
		t.Fatal(err)
	}
	if err := ns.Rename("/old/name", "/new/dir/name2"); err != nil {
		t.Fatal(err)
	}
	got, err := ns.GetFile("/new/dir/name2")
	if err != nil || got != f {
		t.Fatalf("after rename: %v, %v", got, err)
	}
	if f.path != "/new/dir/name2" {
		t.Fatalf("file path not rewritten: %q", f.path)
	}
	if ns.Exists("/old/name") {
		t.Fatal("old path still exists")
	}
}

func TestRenameDirectoryRewritesChildPaths(t *testing.T) {
	ns := NewNamespace()
	f := &File{path: "/a/b/f"}
	if err := ns.insertFile("/a/b/f", f); err != nil {
		t.Fatal(err)
	}
	if err := ns.Rename("/a", "/z"); err != nil {
		t.Fatal(err)
	}
	if f.path != "/z/b/f" {
		t.Fatalf("child path = %q, want /z/b/f", f.path)
	}
}

func TestRenameIntoSelfRejected(t *testing.T) {
	ns := NewNamespace()
	if err := ns.MkdirAll("/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := ns.Rename("/a", "/a/b/c"); !errors.Is(err, ErrInvalidPath) {
		t.Fatalf("rename into self error = %v", err)
	}
}

func TestRenameOntoExisting(t *testing.T) {
	ns := NewNamespace()
	if err := ns.insertFile("/a", &File{}); err != nil {
		t.Fatal(err)
	}
	if err := ns.insertFile("/b", &File{}); err != nil {
		t.Fatal(err)
	}
	if err := ns.Rename("/a", "/b"); !errors.Is(err, ErrExists) {
		t.Fatalf("rename onto existing error = %v", err)
	}
}

func TestWalkSortedOrder(t *testing.T) {
	ns := NewNamespace()
	paths := []string{"/b/2", "/a/1", "/c", "/a/0"}
	for _, p := range paths {
		if err := ns.insertFile(p, &File{path: p}); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	ns.Walk(func(f *File) { got = append(got, f.path) })
	want := []string{"/a/0", "/a/1", "/b/2", "/c"}
	if len(got) != len(want) {
		t.Fatalf("Walk visited %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Walk order = %v, want %v", got, want)
		}
	}
}
