package dfs

import (
	"testing"
	"time"

	"octostore/internal/cluster"
	"octostore/internal/sim"
	"octostore/internal/storage"
)

func planeWorld(t *testing.T, plane storage.DataPlane) (*sim.Engine, *FileSystem) {
	t.Helper()
	e := sim.NewEngine()
	c := cluster.MustNew(e, cluster.Config{
		Workers:      2,
		SlotsPerNode: 4,
		Spec:         storage.SmallWorkerSpec(),
		Plane:        plane,
	})
	fs, err := New(c, Config{Mode: ModePinnedHDD, Seed: 1, BlockSize: 8 * storage.MB})
	if err != nil {
		t.Fatal(err)
	}
	return e, fs
}

// TestPlaneAdoptionWithoutPlaneNoExtraEvents pins the no-plane contract at
// the dfs level: a nil plane adds no events to any transfer path, so
// replays stay bit-identical to the pre-data-plane engine.
func TestPlaneAdoptionWithoutPlaneNoExtraEvents(t *testing.T) {
	countEvents := func(plane storage.DataPlane) uint64 {
		e, fs := planeWorld(t, plane)
		if fs.DataPlane() != plane {
			t.Fatal("file system did not adopt the cluster's plane")
		}
		var f *File
		fs.Create("/p/f0", 16*storage.MB, func(file *File, err error) {
			if err != nil {
				t.Fatal(err)
			}
			f = file
		})
		e.Run()
		if err := fs.MoveFileReplicas(f, storage.HDD, storage.Memory, nil); err != nil {
			t.Fatal(err)
		}
		e.Run()
		return e.Fired()
	}
	if none, nop := countEvents(nil), countEvents(storage.NopPlane{}); none != nop {
		t.Fatalf("NopPlane fired %d events, plane-less %d — no-op plane must add none", nop, none)
	}
}

// TestMovePaysSharedChannelBacklog covers the movement leg: a move whose
// destination channel is pre-loaded (by another view of the device, here
// simulated by a direct plane charge) commits later than one against an
// idle channel.
func TestMovePaysSharedChannelBacklog(t *testing.T) {
	commitDelay := func(preload bool) time.Duration {
		plane := storage.NewContendedPlane(storage.PlaneConfig{MaxQueue: time.Hour})
		e, fs := planeWorld(t, plane)
		var f *File
		fs.Create("/p/f0", 16*storage.MB, func(file *File, err error) { f = file })
		e.Run()
		if preload {
			// Another shard's view booked every memory write channel for
			// ~1s, so whichever device the move targets is backed up.
			for _, n := range fs.Cluster().Nodes() {
				for _, d := range n.Devices(storage.Memory) {
					plane.Serve(storage.IORequest{
						DeviceID: d.ID(), Media: storage.Memory, Dir: storage.Write,
						Class: storage.ClassMove, Bytes: int64(3000e6), At: e.Now(),
					})
				}
			}
		}
		start := e.Now()
		var done time.Time
		if err := fs.MoveFileReplicas(f, storage.HDD, storage.Memory, func(err error) {
			if err != nil {
				t.Fatal(err)
			}
			done = e.Now()
		}); err != nil {
			t.Fatal(err)
		}
		e.Run()
		if done.IsZero() {
			t.Fatal("move never committed")
		}
		return done.Sub(start)
	}
	idle, contended := commitDelay(false), commitDelay(true)
	if contended <= idle {
		t.Fatalf("contended move committed in %v, not later than idle %v", contended, idle)
	}
}
