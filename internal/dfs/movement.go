package dfs

import (
	"fmt"

	"octostore/internal/cluster"
	"octostore/internal/storage"
)

// This file implements the replica movement mechanics executed by the
// Replication Monitor: moving a file's replicas between tiers (downgrade /
// upgrade), copying replicas to a tier, and deleting a tier's replicas.
// Decisions are file-granular (the paper's "all-or-nothing" property); the
// mechanics operate block by block.

// blockMove is one planned replica relocation.
type blockMove struct {
	block  *Block
	src    *Replica
	dstDev *storage.Device
	dstNod *cluster.Node
	// dstGone is set when the destination node leaves the cluster while the
	// transfer is in flight; the commit then keeps the replica at the source.
	dstGone bool
}

// MoveFileReplicas relocates, for every block of f, the replica on tier
// `from` to tier `to`. The operation is planned synchronously (space is
// reserved up front; an error leaves the system unchanged) and executed
// asynchronously; done (optional) fires when the last block commits.
// Moving up the hierarchy is an upgrade, moving down a downgrade
// (Definitions 1 and 2).
func (fs *FileSystem) MoveFileReplicas(f *File, from, to storage.Media, done func(error)) error {
	if f.deleted {
		return fmt.Errorf("dfs: move on deleted file %q", f.path)
	}
	if from == to {
		return fmt.Errorf("dfs: move from %s to itself", from)
	}
	if fs.isCreating(f.id) || fs.inTransition(f) {
		return fmt.Errorf("%w: %q", ErrBusy, f.path)
	}
	var moves []*blockMove
	rollback := func() {
		for _, m := range moves {
			m.dstDev.Release(m.block.size)
		}
	}
	for _, b := range f.blocks {
		src := b.ReplicaOn(from)
		if src == nil {
			rollback()
			return fmt.Errorf("%w: %q block %d on %s", ErrNoReplica, f.path, b.id, from)
		}
		node, dev := fs.pickMoveTarget(b, src, to)
		if dev == nil {
			rollback()
			return fmt.Errorf("%w: %q block %d to %s", ErrNoCapacity, f.path, b.id, to)
		}
		if err := dev.Reserve(b.size); err != nil {
			rollback()
			return fmt.Errorf("dfs: reserving move target: %w", err)
		}
		moves = append(moves, &blockMove{block: b, src: src, dstDev: dev, dstNod: node})
	}
	// Perform the physical copies up front (read the source replica, write
	// the destination), while the whole plan can still unwind: a real I/O
	// failure — transient copy error, destination ENOSPC — surfaces here as
	// a synchronous error, which the movement executor counts as a failed
	// move and the policy retries on a later sweep. The virtual transfer
	// legs below still model the time the copy takes.
	for i, m := range moves {
		err := fs.backendRead(m.src.device, storage.ClassMove, m.block.id, m.block.size)
		if err == nil {
			err = fs.backendWrite(m.dstDev, storage.ClassMove, m.block.id, m.block.size)
		}
		if err != nil {
			rollback()
			for _, done := range moves[:i] {
				fs.backendDelete(done.dstDev, storage.ClassMove, done.block.id, done.block.size)
			}
			return fmt.Errorf("dfs: move copy: %w", err)
		}
	}
	upgrade := to.Higher(from)
	barrier := fs.finishAfter(len(moves), fs.engine.Now(), func() {
		for _, l := range fs.listeners {
			l.TierDataAdded(to)
		}
		if done != nil {
			done(nil)
		}
	})
	for _, m := range moves {
		m.src.state = ReplicaMoving
		fs.moves[m] = true
		fs.pendingMoveBytes += m.block.size
		if upgrade {
			fs.stats.BytesUpgradedTo[to] += m.block.size
		} else {
			fs.stats.BytesDowngradedTo[to] += m.block.size
		}
		fs.transferBlock(m, barrier)
	}
	return nil
}

// transferBlock streams one block from the source replica's device to the
// destination and commits the replica record on completion. Both legs start
// through the data plane (ClassMove), so movement draws bandwidth from the
// shared physical-device channels: when another shard (or the serve path)
// has the channel booked, the leg's start is pushed out by the queueing
// grant and the move commits later — cross-shard bandwidth contention that
// per-view device pools cannot express.
func (fs *FileSystem) transferBlock(m *blockMove, onDone func()) {
	size := m.block.size
	// The source read and destination write proceed concurrently; the
	// stream is complete when the slower of the two finishes.
	pending := 2
	step := func() {
		pending--
		if pending > 0 {
			return
		}
		delete(fs.moves, m)
		switch {
		case !m.block.hasReplica(m.src):
			// The source replica vanished mid-transfer (its node left the
			// cluster): there is nothing to commit. Free the destination
			// reservation unless that node is gone too, and drop the
			// destination bytes written at plan time either way (a failed
			// node's devices leave accounting wholesale, but the physical
			// file is not tracked by any replica record).
			if !m.dstGone {
				m.dstDev.Release(size)
				fs.pendingMoveBytes -= size
			}
			fs.backendDelete(m.dstDev, storage.ClassMove, m.block.id, size)
		case m.dstGone:
			// The destination node vanished: the replica stays at the
			// source; its reservation accounting was settled at removal.
			// The destination bytes are orphaned — drop them.
			m.src.state = ReplicaValid
			fs.backendDelete(m.dstDev, storage.ClassMove, m.block.id, size)
		default:
			// Commit: the replica now lives on the destination device; the
			// source bytes go (the destination copy was written at plan).
			srcMedia := m.src.Media()
			m.src.device.Release(size)
			fs.backendDelete(m.src.device, storage.ClassMove, m.block.id, size)
			fs.pendingMoveBytes -= size
			m.block.noteUnreadable(m.src, srcMedia)
			m.src.device = m.dstDev
			m.src.node = m.dstNod
			m.src.state = ReplicaValid
			m.block.noteReadable(m.src)
		}
		onDone()
	}
	fs.startTransfer(m.src.device, storage.Read, storage.ClassMove, size, step)
	fs.startTransfer(m.dstDev, storage.Write, storage.ClassMove, size, step)
}

// pickMoveTarget chooses the device to receive a moved replica: the source
// node first (a tier-local move keeps node-level fault tolerance intact),
// then nodes not already holding the block, then any node with space.
func (fs *FileSystem) pickMoveTarget(b *Block, src *Replica, to storage.Media) (*cluster.Node, *storage.Device) {
	if d := src.node.PickDevice(to, b.size); d != nil {
		return src.node, d
	}
	holders := make(map[int]bool, len(b.replicas))
	for _, r := range b.replicas {
		holders[r.node.ID()] = true
	}
	var fallbackNode *cluster.Node
	var fallbackDev *storage.Device
	for _, n := range fs.cluster.Nodes() {
		d := n.PickDevice(to, b.size)
		if d == nil {
			continue
		}
		if !holders[n.ID()] {
			return n, d
		}
		if fallbackDev == nil {
			fallbackNode, fallbackDev = n, d
		}
	}
	return fallbackNode, fallbackDev
}

// CopyFileReplicas adds, for every block of f missing one, a new replica on
// tier `to`, reading from the best existing replica. Blocks already present
// on `to` are skipped; if every block is present the call is a no-op and
// done fires on the next event. Copying to a higher tier is the "create a
// new file replica" form of upgrade (Definition 2).
func (fs *FileSystem) CopyFileReplicas(f *File, to storage.Media, done func(error)) error {
	if f.deleted {
		return fmt.Errorf("dfs: copy on deleted file %q", f.path)
	}
	if fs.isCreating(f.id) || fs.inTransition(f) {
		return fmt.Errorf("%w: %q", ErrBusy, f.path)
	}
	type copyPlan struct {
		block  *Block
		src    *Replica
		dstDev *storage.Device
		dstNod *cluster.Node
	}
	var plans []*copyPlan
	rollback := func() {
		for _, p := range plans {
			p.dstDev.Release(p.block.size)
		}
	}
	for _, b := range f.blocks {
		if b.ReplicaOn(to) != nil {
			continue
		}
		src := fs.pickReadReplica(b, nil)
		if src == nil {
			rollback()
			return fmt.Errorf("%w: %q block %d has no source", ErrNoReplica, f.path, b.id)
		}
		node, dev := fs.pickMoveTarget(b, src, to)
		if dev == nil {
			rollback()
			return fmt.Errorf("%w: %q block %d to %s", ErrNoCapacity, f.path, b.id, to)
		}
		if err := dev.Reserve(b.size); err != nil {
			rollback()
			return fmt.Errorf("dfs: reserving copy target: %w", err)
		}
		plans = append(plans, &copyPlan{block: b, src: src, dstDev: dev, dstNod: node})
	}
	// Physical copy up front, same unwind contract as MoveFileReplicas.
	for i, p := range plans {
		err := fs.backendRead(p.src.device, storage.ClassMove, p.block.id, p.block.size)
		if err == nil {
			err = fs.backendWrite(p.dstDev, storage.ClassMove, p.block.id, p.block.size)
		}
		if err != nil {
			rollback()
			for _, done := range plans[:i] {
				fs.backendDelete(done.dstDev, storage.ClassMove, done.block.id, done.block.size)
			}
			return fmt.Errorf("dfs: replica copy: %w", err)
		}
	}
	if len(plans) == 0 {
		fs.engine.Schedule(0, func() {
			if done != nil {
				done(nil)
			}
		})
		return nil
	}
	barrier := fs.finishAfter(len(plans), fs.engine.Now(), func() {
		for _, l := range fs.listeners {
			l.TierDataAdded(to)
		}
		if done != nil {
			done(nil)
		}
	})
	for _, p := range plans {
		p := p
		size := p.block.size
		newReplica := fs.replicaArena.alloc()
		newReplica.block, newReplica.node, newReplica.device, newReplica.state = p.block, p.dstNod, p.dstDev, ReplicaCreating
		p.block.replicas = append(p.block.replicas, newReplica)
		fs.liveBytes += size
		fs.stats.BytesUpgradedTo[to] += size
		pending := 2
		step := func() {
			pending--
			if pending > 0 {
				return
			}
			// The replica may have been torn down mid-copy (file delete is
			// blocked by inTransition, but node loss is not).
			if newReplica.state == ReplicaCreating {
				newReplica.state = ReplicaValid
				p.block.noteReadable(newReplica)
			}
			barrier()
		}
		fs.startTransfer(p.src.device, storage.Read, storage.ClassMove, size, step)
		fs.startTransfer(p.dstDev, storage.Write, storage.ClassMove, size, step)
	}
	return nil
}

// DeleteFileReplicas drops, for every block of f, the replica on tier
// `from`. It refuses to remove a block's last readable replica (the
// "delete a file replica" form of downgrade must not lose data).
func (fs *FileSystem) DeleteFileReplicas(f *File, from storage.Media) error {
	if f.deleted {
		return fmt.Errorf("dfs: delete replicas on deleted file %q", f.path)
	}
	if fs.isCreating(f.id) || fs.inTransition(f) {
		return fmt.Errorf("%w: %q", ErrBusy, f.path)
	}
	victims := make([]*Replica, 0, len(f.blocks))
	for _, b := range f.blocks {
		r := b.ReplicaOn(from)
		if r == nil {
			return fmt.Errorf("%w: %q block %d on %s", ErrNoReplica, f.path, b.id, from)
		}
		if b.ReadableReplicas() <= 1 {
			return fmt.Errorf("%w: %q block %d", ErrLastCopy, f.path, b.id)
		}
		victims = append(victims, r)
	}
	for _, r := range victims {
		media := r.Media()
		r.state = ReplicaDeleting
		r.device.Release(r.block.size)
		fs.backendDelete(r.device, storage.ClassMove, r.block.id, r.block.size)
		fs.liveBytes -= r.block.size
		r.block.noteUnreadable(r, media)
		r.block.removeReplica(r)
		fs.stats.ReplicasDeleted++
	}
	return nil
}

// UnderReplicatedFiles returns files having at least one block with fewer
// readable replicas than the file's replication target; the Replication
// Monitor uses this to re-replicate after failures or deletions.
func (fs *FileSystem) UnderReplicatedFiles() []*File {
	var out []*File
	for _, f := range fs.fileList {
		if fs.isCreating(f.id) {
			continue
		}
		for _, b := range f.blocks {
			if n := b.ReadableReplicas(); n < int(f.replication) && n > 0 {
				out = append(out, f)
				break
			}
		}
	}
	return out
}
