package dfs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"octostore/internal/cluster"
	"octostore/internal/sim"
	"octostore/internal/storage"
)

// liveReplicaBytes sums block sizes over all live replicas in the system.
func liveReplicaBytes(fs *FileSystem) int64 {
	var total int64
	for _, f := range fs.Files() {
		for _, b := range f.Blocks() {
			for _, r := range b.Replicas() {
				if r.State() != ReplicaDeleting {
					total += b.Size()
				}
			}
		}
	}
	return total
}

// deviceUsedBytes sums reservations across all devices.
func deviceUsedBytes(fs *FileSystem) int64 {
	var total int64
	for _, n := range fs.Cluster().Nodes() {
		for _, d := range n.AllDevices() {
			total += d.Used()
		}
	}
	return total
}

// TestPropertyCapacityConservation drives a random sequence of creates,
// deletes, tier moves, copies and replica deletions, and checks after each
// quiescent point that device reservations exactly equal the bytes of live
// replicas — no leaks, no double releases.
func TestPropertyCapacityConservation(t *testing.T) {
	f := func(seed int64, ops []uint8) bool {
		e := sim.NewEngine()
		c := cluster.MustNew(e, cluster.Config{
			Workers: 3, SlotsPerNode: 2, Spec: storage.SmallWorkerSpec(),
		})
		fs := MustNew(c, Config{Mode: ModeOctopus, BlockSize: 8 * storage.MB, Seed: seed})
		rng := rand.New(rand.NewSource(seed))
		var paths []string
		nextID := 0
		for _, op := range ops {
			switch op % 5 {
			case 0: // create
				path := pathN("/p", nextID)
				nextID++
				fs.Create(path, int64(1+rng.Intn(24))*storage.MB, func(f *File, err error) {
					if err == nil {
						paths = append(paths, path)
					}
				})
			case 1: // delete
				if len(paths) > 0 {
					i := rng.Intn(len(paths))
					if err := fs.Delete(paths[i]); err == nil {
						paths = append(paths[:i], paths[i+1:]...)
					}
				}
			case 2: // move down
				if len(paths) > 0 {
					if f, err := fs.Open(paths[rng.Intn(len(paths))]); err == nil {
						_ = fs.MoveFileReplicas(f, storage.Memory, storage.SSD, nil)
					}
				}
			case 3: // copy up
				if len(paths) > 0 {
					if f, err := fs.Open(paths[rng.Intn(len(paths))]); err == nil {
						_ = fs.CopyFileReplicas(f, storage.Memory, nil)
					}
				}
			case 4: // delete one tier's replicas
				if len(paths) > 0 {
					if f, err := fs.Open(paths[rng.Intn(len(paths))]); err == nil {
						_ = fs.DeleteFileReplicas(f, storage.SSD)
					}
				}
			}
			e.Run() // quiesce
			if liveReplicaBytes(fs) != deviceUsedBytes(fs) {
				t.Logf("divergence after op %d: replicas=%d devices=%d",
					op, liveReplicaBytes(fs), deviceUsedBytes(fs))
				return false
			}
			if err := fs.CheckInvariants(); err != nil {
				t.Logf("invariants after op %d: %v", op, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyInvariantsUnderChurnAndNodeLoss extends the random-ops
// property with mid-flight invariant checks (no quiescing between ops) and
// node membership churn: every event boundary must satisfy the O(devices)
// accounting check, and quiescent points the deep check.
func TestPropertyInvariantsUnderChurnAndNodeLoss(t *testing.T) {
	f := func(seed int64, ops []uint8) bool {
		e := sim.NewEngine()
		c := cluster.MustNew(e, cluster.Config{
			Workers: 4, SlotsPerNode: 2, Spec: storage.SmallWorkerSpec(),
		})
		fs := MustNew(c, Config{Mode: ModeOctopus, BlockSize: 8 * storage.MB, Seed: seed})
		var bad error
		e.SetEventHook(func() {
			if bad == nil {
				bad = fs.CheckAccounting()
			}
		})
		rng := rand.New(rand.NewSource(seed))
		var paths []string
		nextID := 0
		for _, op := range ops {
			switch op % 7 {
			case 0, 1: // create
				path := pathN("/p", nextID)
				nextID++
				fs.Create(path, int64(1+rng.Intn(24))*storage.MB, func(f *File, err error) {
					if err == nil {
						paths = append(paths, path)
					}
				})
			case 2: // delete
				if len(paths) > 0 {
					i := rng.Intn(len(paths))
					if err := fs.Delete(paths[i]); err == nil {
						paths = append(paths[:i], paths[i+1:]...)
					}
				}
			case 3: // move down
				if len(paths) > 0 {
					if f, err := fs.Open(paths[rng.Intn(len(paths))]); err == nil {
						_ = fs.MoveFileReplicas(f, storage.Memory, storage.SSD, nil)
					}
				}
			case 4: // copy up
				if len(paths) > 0 {
					if f, err := fs.Open(paths[rng.Intn(len(paths))]); err == nil {
						_ = fs.CopyFileReplicas(f, storage.Memory, nil)
					}
				}
			case 5: // node churn: drop a node (keeping at least two), add one back
				nodes := fs.Cluster().Nodes()
				if len(nodes) > 2 {
					fs.FailNode(nodes[rng.Intn(len(nodes))])
				} else {
					fs.AddNode(storage.SmallWorkerSpec(), 2)
				}
			case 6: // run a few events without quiescing, then keep going
				for i := 0; i < 5 && e.Step(); i++ {
				}
			}
			if bad != nil {
				t.Logf("accounting violated mid-flight: %v", bad)
				return false
			}
		}
		e.Run()
		if bad != nil {
			t.Logf("accounting violated: %v", bad)
			return false
		}
		if err := fs.CheckInvariants(); err != nil {
			t.Logf("deep invariants: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyReplicationNeverExceedsNodes checks that placement never puts
// two replicas of one block on the same node at create time.
func TestPropertyDistinctNodePlacement(t *testing.T) {
	f := func(seed int64, sizes []uint8) bool {
		e := sim.NewEngine()
		c := cluster.MustNew(e, cluster.Config{
			Workers: 4, SlotsPerNode: 2, Spec: storage.SmallWorkerSpec(),
		})
		fs := MustNew(c, Config{Mode: ModeOctopus, BlockSize: 8 * storage.MB, Seed: seed})
		for i, s := range sizes {
			if i > 20 {
				break
			}
			fs.Create(pathN("/d", i), int64(s%32)*storage.MB, nil)
			e.Run()
		}
		for _, f := range fs.Files() {
			for _, b := range f.Blocks() {
				nodes := map[int]int{}
				for _, r := range b.Replicas() {
					nodes[r.Node().ID()]++
					if nodes[r.Node().ID()] > 1 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPlacementDiversityAblation validates the tier-diversity objective the
// design calls out: with the diversity weight zeroed, a block's replicas
// pile onto the memory tier; with the default weights they spread across
// all three tiers.
func TestPlacementDiversityAblation(t *testing.T) {
	build := func(weights PlacementWeights) *File {
		e := sim.NewEngine()
		c := cluster.MustNew(e, cluster.Config{
			Workers: 3, SlotsPerNode: 2, Spec: storage.SmallWorkerSpec(),
		})
		fs := MustNew(c, Config{Mode: ModeOctopus, BlockSize: 8 * storage.MB, Seed: 5, Weights: &weights})
		var file *File
		fs.Create("/f", 8*storage.MB, func(f *File, err error) {
			if err != nil {
				t.Fatal(err)
			}
			file = f
		})
		e.Run()
		return file
	}

	noDiversity := DefaultPlacementWeights()
	noDiversity.Diversity = 0
	f1 := build(noDiversity)
	mem := 0
	for _, r := range f1.Blocks()[0].Replicas() {
		if r.Media() == storage.Memory {
			mem++
		}
	}
	if mem < 2 {
		t.Fatalf("without diversity: %d memory replicas, expected clustering", mem)
	}

	f2 := build(DefaultPlacementWeights())
	media := map[storage.Media]int{}
	for _, r := range f2.Blocks()[0].Replicas() {
		media[r.Media()]++
	}
	if len(media) != 3 {
		t.Fatalf("with diversity: tier spread = %v, want all three tiers", media)
	}
}

// TestReadDuringHeavyChurn reads blocks while moves are in flight across
// the whole file set — no read may fail and accounting must stay exact.
func TestReadDuringHeavyChurn(t *testing.T) {
	e := sim.NewEngine()
	c := cluster.MustNew(e, cluster.Config{
		Workers: 3, SlotsPerNode: 2, Spec: storage.SmallWorkerSpec(),
	})
	fs := MustNew(c, Config{Mode: ModeOctopus, BlockSize: 8 * storage.MB, Seed: 11})
	var files []*File
	for i := 0; i < 8; i++ {
		fs.Create(pathN("/churn", i), 16*storage.MB, func(f *File, err error) {
			if err != nil {
				t.Errorf("create: %v", err)
				return
			}
			files = append(files, f)
		})
	}
	e.Run()
	reads := 0
	for _, f := range files {
		_ = fs.MoveFileReplicas(f, storage.Memory, storage.HDD, nil)
		for _, b := range f.Blocks() {
			fs.ReadBlock(b, nil, func(_ ReadResult, err error) {
				if err != nil {
					t.Errorf("read during churn: %v", err)
				}
				reads++
			})
		}
	}
	e.Run()
	if reads != 16 {
		t.Fatalf("reads completed = %d, want 16", reads)
	}
	if liveReplicaBytes(fs) != deviceUsedBytes(fs) {
		t.Fatal("capacity accounting diverged under churn")
	}
}
