package dfs_test

// Temporary probe: writes an inuse heap profile with the population alive.

import (
	"os"
	"runtime"
	"runtime/pprof"
	"testing"
)

func TestFootprintProbe(t *testing.T) {
	if os.Getenv("FOOTPRINT_PROBE") == "" {
		t.Skip("probe disabled")
	}
	world := buildFootprintWorld(20000)
	runtime.GC()
	runtime.GC()
	f, err := os.Create("/tmp/inuse.out")
	if err != nil {
		t.Fatal(err)
	}
	if err := pprof.WriteHeapProfile(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	runtime.KeepAlive(world)
}
