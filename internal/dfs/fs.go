package dfs

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"octostore/internal/backend"
	"octostore/internal/cluster"
	"octostore/internal/sim"
	"octostore/internal/storage"
)

// Mode selects which of the paper's four systems the file system behaves
// like (Figure 2).
type Mode int

const (
	// ModeHDFS stores every replica on HDDs (stock HDFS).
	ModeHDFS Mode = iota
	// ModeHDFSCache is HDFS plus a best-effort extra memory replica per
	// block created asynchronously after the write (HDFS centralized cache;
	// no automatic uncaching).
	ModeHDFSCache
	// ModeOctopus uses the OctopusFS multi-objective tiered placement.
	// Attaching a core.Manager to this mode yields Octopus++.
	ModeOctopus
	// ModePinnedHDD places all replicas on HDD but allows tier movement;
	// used to isolate upgrade policies (Section 7.4).
	ModePinnedHDD
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeHDFS:
		return "hdfs"
	case ModeHDFSCache:
		return "hdfs+cache"
	case ModeOctopus:
		return "octopus"
	case ModePinnedHDD:
		return "pinned-hdd"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Transition errors.
var (
	ErrBusy      = errors.New("dfs: file has replicas in transition")
	ErrNoReplica = errors.New("dfs: no replica on requested tier")
	ErrLastCopy  = errors.New("dfs: refusing to delete the last readable replica")
)

// Config configures a FileSystem.
type Config struct {
	Mode        Mode
	BlockSize   int64   // default 128 MB
	Replication int     // default 3
	Seed        int64   // placement randomisation seed
	ClientRate  float64 // per-stream client throughput cap in bytes/s; 0 disables
	// Weights overrides the OctopusFS placement weights when non-nil.
	Weights *PlacementWeights
}

func (c *Config) applyDefaults() {
	if c.BlockSize <= 0 {
		c.BlockSize = 128 * storage.MB
	}
	if c.Replication <= 0 {
		c.Replication = 3
	}
}

// Listener receives file-system notifications; the core replication manager
// registers one to drive its policies (Section 3.3 "callback methods").
type Listener interface {
	// FileCreated fires when a file's initial write completes.
	FileCreated(f *File)
	// FileAccessed fires when a file access is recorded, before the data is
	// read, so upgrade policies can act first.
	FileAccessed(f *File)
	// FileDeleted fires when a file is removed.
	FileDeleted(f *File)
	// FileTierChanged fires when a complete file's all-or-nothing residency
	// on a tier flips: resident=true when the last block gained a readable
	// replica on the media, false when the first block lost its last one.
	// Candidate indexes maintain per-tier membership from these flips
	// instead of rescanning every live file per decision.
	FileTierChanged(f *File, media storage.Media, resident bool)
	// TierDataAdded fires after data lands on a tier (block creation or an
	// upgrade/downgrade arrival), the trigger for the downgrade process.
	TierDataAdded(media storage.Media)
}

// Stats accumulates cluster-wide I/O counters used by the experiments.
type Stats struct {
	BlockReads        [3]int64 // by media served
	BytesRead         [3]int64 // by media served
	BytesWritten      [3]int64 // initial placement, by media
	BytesUpgradedTo   [3]int64 // arrivals via upgrade moves/copies
	BytesDowngradedTo [3]int64 // arrivals via downgrade moves
	RemoteReads       int64
	FileAccesses      int64
	FilesCreated      int64
	FilesDeleted      int64
	ReplicasDeleted   int64
}

// TotalBytesRead sums reads across media.
func (s *Stats) TotalBytesRead() int64 {
	return s.BytesRead[0] + s.BytesRead[1] + s.BytesRead[2]
}

// FileSystem is the Master-side state of the tiered DFS plus the client
// API. It is single-threaded on top of the simulation engine.
type FileSystem struct {
	engine    *sim.Engine
	cluster   *cluster.Cluster
	ns        *Namespace
	cfg       Config
	placement PlacementPolicy
	rng       *rand.Rand
	listeners []Listener
	// plane, when non-nil, accounts every transfer against the shared
	// physical-device channels (see storage.DataPlane). Adopted from the
	// cluster at construction; nil keeps the pre-data-plane semantics
	// exactly (no extra events, no latency, no accounting).
	plane storage.DataPlane
	// backlog is the plane's per-device queue-horizon view, present only
	// when the attached plane exposes one (ContendedPlane does). Read
	// steering prefers the least-backlogged device among same-tier remote
	// replicas; nil plane and NopPlane lack the method, so replays without
	// contention keep the pre-steering tie-break bit for bit.
	backlog interface {
		Horizon(deviceID string, dir storage.Direction) time.Time
	}
	// bkend, when non-nil, mirrors every block-replica state change onto a
	// physical store (see internal/backend). The virtual clock keeps driving
	// all control-plane timing either way: backend calls are synchronous,
	// schedule no events, and draw no randomness, so policy decisions are
	// identical whichever backend is attached (nil and backend.Sim are
	// interchangeable). Write/Read errors abort the surrounding operation
	// through its existing rollback path; teardown deletes never fail the
	// caller.
	bkend backend.Backend
	// activeTenant tags plane charges issued while an entry-point call is
	// on the stack (charges happen synchronously inside Create/ReadBlock/
	// move starts, so a scoped set/reset around the call suffices). Zero is
	// storage.DefaultTenant: untagged.
	activeTenant storage.TenantID
	// membershipHooks run after every FailNode/AddNode, on the caller's
	// goroutine (always the loop that owns the file system). The serving
	// layer uses one to re-publish per-tier representative devices, which
	// node loss can invalidate without firing a residency flip.
	membershipHooks []func()

	nextFileID  FileID
	nextBlockID int64
	// creatingBits marks files whose initial write is still in flight, one
	// bit per FileID. A bitset instead of a map: Go maps never release
	// their bucket arrays, so a create burst would pin a high-water mark of
	// empty buckets for the life of the namespace.
	creatingBits []uint64
	stats        Stats

	// Arenas for the long-lived metadata objects (see arena.go). Objects
	// are allocated for the FileSystem's lifetime and never recycled:
	// in-flight moves and copy barriers hold replica pointers across
	// simulated time, so slot reuse would alias live references.
	fileArena    arena[File]
	blockArena   arena[Block]
	replicaArena arena[Replica]

	// fileList/filePos index every live file so manager scans iterate a
	// flat slice instead of walking (and sorting) the namespace tree.
	// filePos is dense — indexed by FileID (ids are assigned sequentially),
	// -1 for ids that are not live — so the per-file index cost is four
	// bytes instead of a map entry.
	fileList []*File
	filePos  []int32

	// liveBytes tracks the block bytes of all attached, non-deleting
	// replicas; pendingMoveBytes tracks destination reservations of
	// in-flight tier moves. Together they let the invariant checker verify
	// capacity conservation in O(#devices) at any event boundary.
	liveBytes        int64
	pendingMoveBytes int64
	moves            map[*blockMove]bool
	removedNodes     map[int]bool
}

// New builds a file system over the cluster.
func New(c *cluster.Cluster, cfg Config) (*FileSystem, error) {
	cfg.applyDefaults()
	fs := &FileSystem{
		engine:       c.Engine(),
		cluster:      c,
		plane:        c.Plane(),
		ns:           NewNamespace(),
		cfg:          cfg,
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		moves:        make(map[*blockMove]bool),
		removedNodes: make(map[int]bool),
	}
	fs.backlog, _ = fs.plane.(interface {
		Horizon(deviceID string, dir storage.Direction) time.Time
	})
	switch cfg.Mode {
	case ModeHDFS, ModeHDFSCache:
		fs.placement = &hddPlacement{cluster: c, rng: fs.rng}
	case ModeOctopus:
		w := DefaultPlacementWeights()
		if cfg.Weights != nil {
			w = *cfg.Weights
		}
		fs.placement = &octopusPlacement{cluster: c, rng: fs.rng, weights: w, backlog: fs.backlog}
	case ModePinnedHDD:
		fs.placement = &pinnedPlacement{cluster: c, rng: fs.rng, media: storage.HDD}
	default:
		return nil, fmt.Errorf("dfs: unknown mode %v", cfg.Mode)
	}
	return fs, nil
}

// MustNew is New but panics on error.
func MustNew(c *cluster.Cluster, cfg Config) *FileSystem {
	fs, err := New(c, cfg)
	if err != nil {
		panic(err)
	}
	return fs
}

// Engine returns the simulation engine.
func (fs *FileSystem) Engine() *sim.Engine { return fs.engine }

// DataPlane returns the attached data plane (nil when none).
func (fs *FileSystem) DataPlane() storage.DataPlane { return fs.plane }

// SetDataPlane attaches (or, with nil, detaches) a data plane. Transfers
// already in flight are unaffected. Tests use it to install per-instance
// planes before a serving layer starts (the server caches the plane at
// Start; swapping afterwards is unsupported); production wiring passes the
// plane through cluster.Config instead.
func (fs *FileSystem) SetDataPlane(p storage.DataPlane) {
	fs.plane = p
	fs.backlog, _ = p.(interface {
		Horizon(deviceID string, dir storage.Direction) time.Time
	})
	if op, ok := fs.placement.(*octopusPlacement); ok {
		op.backlog = fs.backlog
	}
}

// Backend returns the attached physical backend (nil when none).
func (fs *FileSystem) Backend() backend.Backend { return fs.bkend }

// SetBackend attaches (or, with nil, detaches) a physical data backend.
// Must happen before any files exist: the backend mirrors replica state
// from the first write on, so attaching it mid-life would leave earlier
// replicas without physical bytes. Call it right after New, before the
// serving layer starts (the server caches the backend at Start, like the
// plane).
func (fs *FileSystem) SetBackend(b backend.Backend) { fs.bkend = b }

// backendWrite mirrors a new replica's bytes onto the physical backend.
// The error aborts the surrounding operation; the caller rolls back.
func (fs *FileSystem) backendWrite(dev *storage.Device, class storage.IOClass, blockID, bytes int64) error {
	if fs.bkend == nil {
		return nil
	}
	_, err := fs.bkend.Write(backend.Request{
		Media: dev.Media(), Class: class, Tenant: fs.activeTenant,
		DeviceID: dev.ID(), BlockID: blockID, Bytes: bytes,
	})
	return err
}

// backendRead streams a replica's bytes from the physical backend.
func (fs *FileSystem) backendRead(dev *storage.Device, class storage.IOClass, blockID, bytes int64) error {
	if fs.bkend == nil {
		return nil
	}
	_, err := fs.bkend.Read(backend.Request{
		Media: dev.Media(), Class: class, Tenant: fs.activeTenant,
		DeviceID: dev.ID(), BlockID: blockID, Bytes: bytes,
	})
	return err
}

// backendDelete drops a replica's physical bytes. Teardown must not fail
// halfway, so errors are only counted in the backend's stats.
func (fs *FileSystem) backendDelete(dev *storage.Device, class storage.IOClass, blockID, bytes int64) {
	if fs.bkend == nil {
		return
	}
	fs.bkend.Delete(backend.Request{
		Media: dev.Media(), Class: class, Tenant: fs.activeTenant,
		DeviceID: dev.ID(), BlockID: blockID, Bytes: bytes,
	})
}

// chargePlane accounts one transfer against the shared device channel and
// returns the grant. Zero grant without a plane.
func (fs *FileSystem) chargePlane(dev *storage.Device, dir storage.Direction, class storage.IOClass, bytes int64) storage.IOGrant {
	if fs.plane == nil {
		return storage.IOGrant{}
	}
	return fs.plane.Serve(storage.IORequest{
		DeviceID: dev.ID(),
		Media:    dev.Media(),
		Dir:      dir,
		Class:    class,
		Tenant:   fs.activeTenant,
		Bytes:    bytes,
		At:       fs.engine.Now(),
	})
}

// SetActiveTenant scopes subsequent plane charges to a tenant; callers set
// it around an entry-point call and reset to storage.DefaultTenant after.
// Owned by the goroutine driving the file system (the core loop), like
// every other mutation.
func (fs *FileSystem) SetActiveTenant(t storage.TenantID) { fs.activeTenant = t }

// ActiveTenant returns the tenant currently charged for plane I/O.
func (fs *FileSystem) ActiveTenant() storage.TenantID { return fs.activeTenant }

// startTransfer begins a device transfer through the data plane: the start
// is delayed by the plane's queueing + base-latency grant (cross-shard
// contention on the physical channel), after which the device's own
// processor-sharing pool models the transfer as before. Without a plane the
// transfer starts inline — no extra event, so event ordering is identical
// to the pre-data-plane engine.
func (fs *FileSystem) startTransfer(dev *storage.Device, dir storage.Direction, class storage.IOClass, bytes int64, done func()) {
	if delay := fs.chargePlane(dev, dir, class, bytes); delay.Queue+delay.Base > 0 {
		fs.engine.Schedule(delay.Queue+delay.Base, func() { dev.Start(dir, bytes, done) })
		return
	}
	dev.Start(dir, bytes, done)
}

// Cluster returns the underlying cluster.
func (fs *FileSystem) Cluster() *cluster.Cluster { return fs.cluster }

// Namespace exposes the FS directory.
func (fs *FileSystem) Namespace() *Namespace { return fs.ns }

// Mode returns the configured mode.
func (fs *FileSystem) Mode() Mode { return fs.cfg.Mode }

// BlockSize returns the configured block size.
func (fs *FileSystem) BlockSize() int64 { return fs.cfg.BlockSize }

// Replication returns the configured per-block replication target.
func (fs *FileSystem) Replication() int { return fs.cfg.Replication }

// Stats returns the live counter set.
func (fs *FileSystem) Stats() *Stats { return &fs.stats }

// AddListener registers a notification listener.
func (fs *FileSystem) AddListener(l Listener) {
	fs.listeners = append(fs.listeners, l)
}

// TierUtilization returns used/capacity of a storage tier cluster-wide.
func (fs *FileSystem) TierUtilization(media storage.Media) float64 {
	return fs.cluster.TierUtilization(media)
}

// Files returns every live file in sorted path order.
func (fs *FileSystem) Files() []*File {
	var files []*File
	fs.ns.Walk(func(f *File) { files = append(files, f) })
	return files
}

// LiveFiles returns every live file without walking or sorting the
// namespace tree — the fast path for the manager's per-tick selection
// scans. The order is deterministic (insertion order perturbed by
// swap-removal on delete) but not sorted; callers that need an ordering
// must impose their own. The returned slice is the live index: do not
// mutate it or hold it across file creations and deletions.
func (fs *FileSystem) LiveFiles() []*File { return fs.fileList }

// trackFile adds f to the live-file index.
func (fs *FileSystem) trackFile(f *File) {
	for int64(len(fs.filePos)) <= int64(f.id) {
		fs.filePos = append(fs.filePos, -1)
	}
	fs.filePos[f.id] = int32(len(fs.fileList))
	fs.fileList = append(fs.fileList, f)
}

// untrackFile removes f from the live-file index by swapping the tail in.
func (fs *FileSystem) untrackFile(f *File) {
	pos := fs.posOf(f.id)
	if pos < 0 {
		return
	}
	last := len(fs.fileList) - 1
	fs.fileList[pos] = fs.fileList[last]
	fs.filePos[fs.fileList[pos].id] = int32(pos)
	fs.fileList[last] = nil
	fs.fileList = fs.fileList[:last]
	fs.filePos[f.id] = -1
}

// posOf returns f's index in fileList, or -1 when the id is not live.
func (fs *FileSystem) posOf(id FileID) int {
	if id < 0 || int64(id) >= int64(len(fs.filePos)) {
		return -1
	}
	return int(fs.filePos[id])
}

// isCreating reports whether the file's initial write is still in flight.
func (fs *FileSystem) isCreating(id FileID) bool {
	w := int(id >> 6)
	return w >= 0 && w < len(fs.creatingBits) && fs.creatingBits[w]&(1<<(uint64(id)&63)) != 0
}

func (fs *FileSystem) setCreating(id FileID) {
	w := int(id >> 6)
	for len(fs.creatingBits) <= w {
		fs.creatingBits = append(fs.creatingBits, 0)
	}
	fs.creatingBits[w] |= 1 << (uint64(id) & 63)
}

func (fs *FileSystem) clearCreating(id FileID) {
	if w := int(id >> 6); w < len(fs.creatingBits) {
		fs.creatingBits[w] &^= 1 << (uint64(id) & 63)
	}
}

// Complete reports whether the file's initial write has finished.
func (fs *FileSystem) Complete(f *File) bool { return !fs.isCreating(f.id) }

// FileByID resolves a live file by id in O(1), or nil when the id is not
// live. The candidate indexes store FileID keys and resolve through this
// on selection, so index entries do not pin namespace objects.
func (fs *FileSystem) FileByID(id FileID) *File {
	pos := fs.posOf(id)
	if pos < 0 {
		return nil
	}
	return fs.fileList[pos]
}

// Open resolves a path to its file.
func (fs *FileSystem) Open(path string) (*File, error) {
	f, err := fs.ns.GetFile(path)
	if err != nil {
		return nil, err
	}
	if fs.isCreating(f.id) {
		return nil, fmt.Errorf("%w: %q", ErrFileIncomplete, path)
	}
	return f, nil
}

// clientFloor returns the earliest completion time a stream of `bytes` may
// have under the per-stream client rate cap.
func (fs *FileSystem) clientFloor(bytes int64) time.Time {
	if fs.cfg.ClientRate <= 0 {
		return fs.engine.Now()
	}
	d := time.Duration(float64(bytes) / fs.cfg.ClientRate * float64(time.Second))
	return fs.engine.Now().Add(d)
}

// finishAfter invokes done once fire has been called n times and the floor
// time has passed.
func (fs *FileSystem) finishAfter(n int, floor time.Time, done func()) func() {
	if n <= 0 {
		n = 1
	}
	remaining := n
	return func() {
		remaining--
		if remaining > 0 {
			return
		}
		if now := fs.engine.Now(); now.Before(floor) {
			fs.engine.ScheduleAt(floor, done)
			return
		}
		done()
	}
}

// Create writes a new file of the given size. The write is asynchronous:
// done (optional) fires with the file when all block pipelines complete.
// The file becomes visible in the namespace immediately but cannot be
// opened until the write completes, mirroring HDFS lease semantics.
func (fs *FileSystem) Create(path string, size int64, done func(*File, error)) {
	fail := func(err error) {
		if done != nil {
			done(nil, err)
		}
	}
	clean, err := CleanPath(path)
	if err != nil {
		fail(err)
		return
	}
	if size < 0 {
		fail(fmt.Errorf("dfs: negative file size %d", size))
		return
	}
	f := fs.fileArena.alloc()
	f.id = fs.nextFileID
	f.fs = fs
	f.path = clean
	f.size = size
	f.created = fs.engine.Now()
	f.replication = int32(fs.cfg.Replication)
	fs.nextFileID++
	if err := fs.ns.insertFile(clean, f); err != nil {
		fail(err)
		return
	}
	fs.trackFile(f)
	// Cut the file into blocks.
	nblocks := int((size + fs.cfg.BlockSize - 1) / fs.cfg.BlockSize)
	f.initBlocks(nblocks)
	for remaining := size; remaining > 0; remaining -= fs.cfg.BlockSize {
		bs := remaining
		if bs > fs.cfg.BlockSize {
			bs = fs.cfg.BlockSize
		}
		b := fs.blockArena.alloc()
		b.id = fs.nextBlockID
		b.file = f
		b.size = bs
		b.initReplicas()
		f.blocks = append(f.blocks, b)
		fs.nextBlockID++
	}
	fs.setCreating(f.id)
	finish := func(err error) {
		fs.clearCreating(f.id)
		if err != nil {
			// Failed writes are unlinked, mirroring an aborted HDFS lease.
			fs.releaseAllReplicas(f)
			if _, rmErr := fs.ns.removeFile(f.path); rmErr == nil {
				f.deleted = true
				fs.untrackFile(f)
			}
			fail(err)
			return
		}
		fs.stats.FilesCreated++
		for _, l := range fs.listeners {
			l.FileCreated(f)
		}
		fs.notifyTiers(f)
		if fs.cfg.Mode == ModeHDFSCache {
			fs.cacheFile(f)
		}
		if done != nil {
			done(f, nil)
		}
	}
	if len(f.blocks) == 0 {
		fs.engine.Schedule(0, func() { finish(nil) })
		return
	}
	blockBarrier := fs.finishAfter(len(f.blocks), fs.engine.Now(), func() { finish(nil) })
	for _, b := range f.blocks {
		if err := fs.writeBlock(b, blockBarrier); err != nil {
			// Placement failed outright; abort the file. Blocks already in
			// flight will complete harmlessly against the unlinked file.
			finish(err)
			return
		}
	}
}

// writeBlock places and writes one block; onDone fires when the replication
// pipeline completes.
func (fs *FileSystem) writeBlock(b *Block, onDone func()) error {
	targets, err := fs.placement.PlaceBlock(b.size, int(b.file.replication))
	if err != nil {
		return err
	}
	for _, t := range targets {
		if err := t.Device.Reserve(b.size); err != nil {
			// PickDevice checked free space, so this indicates a race in
			// single-threaded code — a genuine bug.
			panic(fmt.Sprintf("dfs: reservation failed after placement: %v", err))
		}
	}
	// Materialize the physical bytes before committing replica records: a
	// real backend failure (ENOSPC, injected fault) then unwinds to a plain
	// placement error — reservations released, files written so far removed
	// — and the create aborts through its existing failure path.
	for i, t := range targets {
		if err := fs.backendWrite(t.Device, storage.ClassServe, b.id, b.size); err != nil {
			for _, u := range targets {
				u.Device.Release(b.size)
			}
			for _, u := range targets[:i] {
				fs.backendDelete(u.Device, storage.ClassServe, b.id, b.size)
			}
			return err
		}
	}
	replicas := make([]*Replica, 0, len(targets))
	for _, t := range targets {
		r := fs.replicaArena.alloc()
		r.block, r.node, r.device, r.state = b, t.Node, t.Device, ReplicaCreating
		replicas = append(replicas, r)
		b.replicas = append(b.replicas, r)
		fs.liveBytes += b.size
	}
	barrier := fs.finishAfter(len(targets), fs.clientFloor(b.size), func() {
		for _, r := range replicas {
			if r.state == ReplicaCreating {
				r.state = ReplicaValid
				b.noteReadable(r)
			}
		}
		onDone()
	})
	for _, r := range replicas {
		media := r.Media()
		fs.stats.BytesWritten[media] += b.size
		fs.startTransfer(r.device, storage.Write, storage.ClassServe, b.size, barrier)
	}
	return nil
}

// notifyResidency fires FileTierChanged for a residency flip on a complete,
// live file. Flips during the initial write are suppressed: FileCreated
// carries the full starting residency once the write commits, and aborted
// writes tear down replicas that no listener ever saw.
func (fs *FileSystem) notifyResidency(f *File, media storage.Media, resident bool) {
	if f.deleted || fs.isCreating(f.id) {
		return
	}
	for _, l := range fs.listeners {
		l.FileTierChanged(f, media, resident)
	}
}

// notifyTiers fires TierDataAdded once per distinct media the file landed
// on.
func (fs *FileSystem) notifyTiers(f *File) {
	var seen [3]bool
	for _, b := range f.blocks {
		for _, r := range b.replicas {
			seen[r.Media()] = true
		}
	}
	for _, m := range storage.AllMedia {
		if seen[m] {
			for _, l := range fs.listeners {
				l.TierDataAdded(m)
			}
		}
	}
}

// cacheFile asynchronously adds one memory replica per block on a node that
// already holds an HDD replica (HDFS centralized cache semantics). Blocks
// that do not fit are silently skipped; cached replicas are never evicted.
func (fs *FileSystem) cacheFile(f *File) {
	for _, b := range f.blocks {
		var target *storage.Device
		var node *cluster.Node
		for _, r := range b.replicas {
			if r.Media() != storage.HDD {
				continue
			}
			if d := r.node.PickDevice(storage.Memory, b.size); d != nil {
				target, node = d, r.node
				break
			}
		}
		if target == nil {
			continue
		}
		if err := target.Reserve(b.size); err != nil {
			continue
		}
		if err := fs.backendWrite(target, storage.ClassMove, b.id, b.size); err != nil {
			// Cache fills are best effort: skip the block, like a full tier.
			target.Release(b.size)
			continue
		}
		b := b
		r := fs.replicaArena.alloc()
		r.block, r.node, r.device, r.state, r.isCache = b, node, target, ReplicaCreating, true
		b.replicas = append(b.replicas, r)
		fs.liveBytes += b.size
		fs.stats.BytesUpgradedTo[storage.Memory] += b.size
		fs.startTransfer(target, storage.Write, storage.ClassMove, b.size, func() {
			if r.state == ReplicaCreating {
				r.state = ReplicaValid
				b.noteReadable(r)
			}
		})
	}
}

// RecordAccess notes that a client is about to read the file and notifies
// listeners (the upgrade hook runs before the read, per Algorithm 2).
func (fs *FileSystem) RecordAccess(f *File) {
	if f.deleted {
		return
	}
	fs.stats.FileAccesses++
	for _, l := range fs.listeners {
		l.FileAccessed(f)
	}
}

// ReadResult describes how a block read was served.
type ReadResult struct {
	Media  storage.Media
	Remote bool // served by a device on a different node than the reader
}

// ReadBlock reads one block from the best available replica: the highest
// tier on the reading node, falling back to the highest tier anywhere
// (remote read). done fires when the transfer completes.
func (fs *FileSystem) ReadBlock(b *Block, at *cluster.Node, done func(ReadResult, error)) {
	finish := func(res ReadResult, err error) {
		if done != nil {
			done(res, err)
		}
	}
	r := fs.pickReadReplica(b, at)
	if r == nil {
		fs.engine.Schedule(0, func() {
			finish(ReadResult{}, fmt.Errorf("%w: block %d has no readable replica", ErrNoReplica, b.id))
		})
		return
	}
	res := ReadResult{Media: r.Media(), Remote: at != nil && r.node != at}
	fs.stats.BlockReads[res.Media]++
	fs.stats.BytesRead[res.Media] += b.size
	if res.Remote {
		fs.stats.RemoteReads++
	}
	// Stream the physical bytes synchronously (errors are counted in the
	// backend's stats; the virtual read still completes — serving decisions
	// must not depend on the backend).
	_ = fs.backendRead(r.device, storage.ClassServe, b.id, b.size)
	barrier := fs.finishAfter(1, fs.clientFloor(b.size), func() { finish(res, nil) })
	fs.startTransfer(r.device, storage.Read, storage.ClassServe, b.size, barrier)
}

// pickReadReplica returns the replica that a task running on `at` would
// read: local replicas first (highest tier), then remote (highest tier,
// least backlogged device — the plane's queue horizon when it exposes one,
// the device's in-flight transfer count otherwise).
func (fs *FileSystem) pickReadReplica(b *Block, at *cluster.Node) *Replica {
	var bestLocal, bestRemote *Replica
	for _, r := range b.replicas {
		if !r.Readable() {
			continue
		}
		if at != nil && r.node == at {
			if bestLocal == nil || r.Media().Higher(bestLocal.Media()) {
				bestLocal = r
			}
			continue
		}
		if bestRemote == nil || r.Media().Higher(bestRemote.Media()) ||
			(r.Media() == bestRemote.Media() && fs.lessBacklogged(r.device, bestRemote.device)) {
			bestRemote = r
		}
	}
	if bestLocal != nil {
		return bestLocal
	}
	return bestRemote
}

// lessBacklogged orders two same-tier devices for read steering. With a
// horizon-exposing plane attached, the device whose read channel clears
// sooner wins — skew-aware steering away from queues the contended plane
// has already built up. Equal horizons (and every plane-less run) fall back
// to the in-flight transfer count, the pre-steering tie-break.
func (fs *FileSystem) lessBacklogged(a, b *storage.Device) bool {
	if fs.backlog != nil {
		ah := fs.backlog.Horizon(a.ID(), storage.Read)
		bh := fs.backlog.Horizon(b.ID(), storage.Read)
		if !ah.Equal(bh) {
			return ah.Before(bh)
		}
	}
	return a.Load() < b.Load()
}

// Delete removes a file and releases all of its replicas.
func (fs *FileSystem) Delete(path string) error {
	f, err := fs.ns.GetFile(path)
	if err != nil {
		return err
	}
	if fs.isCreating(f.id) {
		return fmt.Errorf("%w: %q", ErrFileIncomplete, path)
	}
	if fs.inTransition(f) {
		return fmt.Errorf("%w: %q", ErrBusy, path)
	}
	if _, err := fs.ns.removeFile(path); err != nil {
		return err
	}
	fs.releaseAllReplicas(f)
	f.deleted = true
	fs.untrackFile(f)
	fs.stats.FilesDeleted++
	for _, l := range fs.listeners {
		l.FileDeleted(f)
	}
	return nil
}

func (fs *FileSystem) releaseAllReplicas(f *File) {
	for _, b := range f.blocks {
		for _, r := range b.replicas {
			if r.state != ReplicaDeleting {
				r.state = ReplicaDeleting
				r.device.Release(b.size)
				fs.backendDelete(r.device, storage.ClassServe, b.id, b.size)
				fs.liveBytes -= b.size
				fs.stats.ReplicasDeleted++
			}
		}
		b.replicas = nil
	}
	f.tierBlocks = [3]int32{}
}

func (fs *FileSystem) inTransition(f *File) bool {
	for _, b := range f.blocks {
		for _, r := range b.replicas {
			if r.state == ReplicaCreating || r.state == ReplicaMoving {
				return true
			}
		}
	}
	return false
}
