package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// ListenAndServe exposes the hub over HTTP on addr (e.g. ":9090"):
//
//	/metrics       Prometheus text exposition
//	/metrics.json  flat JSON snapshot of the same registry
//	/flight        current flight-recorder contents as JSONL
//	/debug/pprof/  the standard Go profiles
//
// It binds synchronously (so a bad addr fails fast) and serves in a
// background goroutine; the returned function closes the listener, and the
// returned address is the bound host:port (useful with ":0"). Serving is
// read-only and pull-based: a scrape evaluates registered closures over the
// subsystems' live atomics and never blocks the serving stack.
func (h *Hub) ListenAndServe(addr string) (bound string, stop func(), err error) {
	if h == nil {
		return "", func() {}, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = h.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = h.reg.WriteJSON(w)
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = h.DumpFlight(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
