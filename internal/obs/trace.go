package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// Span is one sampled operation's life: shard route, ring enqueue, the
// placement the read resolved to, the data-plane grant breakdown, and the
// end-to-end wall time. Durations are nanoseconds; VirtNS is the engine's
// virtual clock at completion.
type Span struct {
	Kind   string `json:"kind"` // always "span"
	Op     string `json:"op"`   // "access" | "create"
	Path   string `json:"path"`
	Shard  int    `json:"shard"`
	Tenant int    `json:"tenant,omitempty"`
	VirtNS int64  `json:"virt_ns"`

	// Stage timings, wall-clock ns from op start.
	ResolveNS int64 `json:"resolve_ns"`          // shard route + namespace stripe lookup
	RingNS    int64 `json:"ring_ns,omitempty"`   // access-event ring publish
	DecideNS  int64 `json:"decide_ns,omitempty"` // replica/tier decision

	// Data-plane grant breakdown (virtual ns), zero without a plane.
	QueueNS    int64 `json:"queue_ns,omitempty"`
	BaseNS     int64 `json:"base_ns,omitempty"`
	TransferNS int64 `json:"transfer_ns,omitempty"`
	Saturated  bool  `json:"saturated,omitempty"`

	Tier    string `json:"tier,omitempty"` // tier the read was served from
	Bytes   int64  `json:"bytes,omitempty"`
	Err     string `json:"err,omitempty"`
	TotalNS int64  `json:"total_ns"` // wall-clock op latency
}

// MoveRecord is one movement-provenance event: which file, which tiers,
// which policy decided it and why, and what became of the request. Two
// records share a file's journey: outcome "queued"/"shed" at admission,
// then "completed"/"failed" when the transfer finishes.
type MoveRecord struct {
	Kind    string `json:"kind"` // always "move"
	Shard   int    `json:"shard"`
	VirtNS  int64  `json:"virt_ns"`
	Path    string `json:"path"`
	From    string `json:"from"`
	To      string `json:"to"`
	Bytes   int64  `json:"bytes"`
	Policy  string `json:"policy,omitempty"`  // deciding policy's Name()
	Trigger string `json:"trigger,omitempty"` // "tick" | "access" | "tier-data-added" | ...

	// Triggering stats: the file's tracker state at decision time.
	AccessCount  int64 `json:"access_count,omitempty"`
	LastAccessNS int64 `json:"last_access_ns,omitempty"`

	Outcome string `json:"outcome"` // "queued" | "shed" | "completed" | "failed"
	Err     string `json:"err,omitempty"`
}

// Event is a free-form notable occurrence (invariant failure, defer window,
// quota exhaustion) kept for the flight recorder and trace stream.
type Event struct {
	Kind   string `json:"kind"` // always "event"
	Shard  int    `json:"shard,omitempty"`
	VirtNS int64  `json:"virt_ns,omitempty"`
	What   string `json:"what"`
	Detail string `json:"detail,omitempty"`
}

// Tracer writes records as JSONL to a sink. Writes are serialized by a
// mutex — only sampled ops and movement events reach it, so contention is
// negligible next to the encode itself.
type Tracer struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer
	enc *json.Encoder
	n   atomic.Int64
}

// NewTracer wraps a sink (typically an *os.File) in a JSONL tracer. The
// sink is closed by Close if it implements io.Closer.
func NewTracer(w io.Writer) *Tracer {
	bw := bufio.NewWriterSize(w, 1<<16)
	t := &Tracer{w: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	return t
}

func (t *Tracer) emit(rec any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.enc.Encode(rec) == nil {
		t.n.Add(1)
	}
	t.mu.Unlock()
}

// Records returns how many records were written (0 on nil).
func (t *Tracer) Records() int64 {
	if t == nil {
		return 0
	}
	return t.n.Load()
}

// Close flushes and closes the sink. Nil-safe.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	err := t.w.Flush()
	if t.c != nil {
		if cerr := t.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Hub bundles the observability plane's pieces: the metric registry, the
// optional JSONL tracer, the flight recorder, and the span sampler. A nil
// *Hub is the disabled plane — every method is a nil-check and return, so
// instrumented code threads the hub unconditionally.
type Hub struct {
	reg    *Registry
	tracer *Tracer
	flight *FlightRecorder
	every  uint64
	ops    atomic.Uint64
}

// HubConfig tunes a hub.
type HubConfig struct {
	// SampleEvery traces one op in N (default 64; 1 traces everything).
	SampleEvery int
	// FlightSize is the flight-recorder capacity in records (default 4096).
	FlightSize int
	// Trace, when non-nil, receives every sampled span, movement record,
	// and event as JSONL.
	Trace io.Writer
}

// NewHub builds an enabled hub.
func NewHub(cfg HubConfig) *Hub {
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 64
	}
	if cfg.FlightSize <= 0 {
		cfg.FlightSize = 4096
	}
	h := &Hub{
		reg:    NewRegistry(),
		flight: NewFlightRecorder(cfg.FlightSize),
		every:  uint64(cfg.SampleEvery),
	}
	if cfg.Trace != nil {
		h.tracer = NewTracer(cfg.Trace)
	}
	return h
}

// Registry returns the hub's registry (nil on a nil hub; a nil registry
// absorbs registrations).
func (h *Hub) Registry() *Registry {
	if h == nil {
		return nil
	}
	return h.reg
}

// Tracer returns the hub's tracer, nil when tracing is off.
func (h *Hub) Tracer() *Tracer {
	if h == nil {
		return nil
	}
	return h.tracer
}

// SampleOp reports whether the caller should record a span for this op.
// One atomic add when enabled; false on a nil hub.
func (h *Hub) SampleOp() bool {
	if h == nil {
		return false
	}
	return h.ops.Add(1)%h.every == 1 || h.every == 1
}

// EmitSpan publishes a completed span to the trace sink and flight ring.
func (h *Hub) EmitSpan(s *Span) {
	if h == nil || s == nil {
		return
	}
	s.Kind = "span"
	h.tracer.emit(s)
	h.flight.add(*s)
}

// EmitMove publishes a movement-provenance record.
func (h *Hub) EmitMove(m *MoveRecord) {
	if h == nil || m == nil {
		return
	}
	m.Kind = "move"
	h.tracer.emit(m)
	h.flight.add(*m)
}

// EmitEvent publishes a notable event.
func (h *Hub) EmitEvent(e *Event) {
	if h == nil || e == nil {
		return
	}
	e.Kind = "event"
	h.tracer.emit(e)
	h.flight.add(*e)
}

// DumpFlight writes the flight recorder's retained records, oldest first,
// as JSONL. No-op on a nil hub.
func (h *Hub) DumpFlight(w io.Writer) error {
	if h == nil {
		return nil
	}
	return h.flight.Dump(w)
}

// Close flushes the tracer. Nil-safe.
func (h *Hub) Close() error {
	if h == nil {
		return nil
	}
	return h.tracer.Close()
}
