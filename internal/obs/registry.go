package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels names one metric instance, e.g. {"tier": "SSD", "shard": "0"}.
// Rendering sorts keys, so registration order and map iteration order never
// leak into the exposition.
type Labels map[string]string

func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a registry-owned monotonic counter for subsystems that have no
// atomic of their own to expose. Add is one atomic op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter. Nil-safe: a counter obtained from a nil
// registry is nil and Add is a no-op.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// entry is one registered metric. Scrapes call the value/hist closure; the
// closures read the owner's atomics, so registration is the only write the
// registry ever takes and the hot paths never touch it.
type entry struct {
	base   string // metric family name (for # TYPE grouping)
	labels string // rendered label set, "" or `{k="v",...}`
	typ    string // "counter" | "gauge" | "histogram"
	value  func() float64
	hist   func() [64]int64
}

// Emit hands a dynamic collector one (name, labels, value) triple per call.
type Emit func(name string, labels Labels, typ string, value float64)

// Registry is the metric catalog. Registration (cold path) appends under a
// mutex; scrapes copy the slice under the same mutex and then evaluate the
// closures lock-free. Subsystems register closures over their existing
// atomics, so a scrape observes live values with zero hot-path cost.
type Registry struct {
	mu         sync.Mutex
	entries    []entry
	collectors []func(Emit)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Gauge registers an instantaneous value read at scrape time.
func (r *Registry) Gauge(name string, labels Labels, fn func() float64) {
	r.register(entry{base: name, labels: labels.render(), typ: "gauge", value: fn})
}

// CounterFunc registers a monotonic value read at scrape time (a closure
// over the owner's atomic counter).
func (r *Registry) CounterFunc(name string, labels Labels, fn func() float64) {
	r.register(entry{base: name, labels: labels.render(), typ: "counter", value: fn})
}

// Counter registers and returns a registry-owned counter. Returns nil on a
// nil registry, and nil counters absorb Add calls, so callers keep one
// unconditional Add in their path.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.register(entry{base: name, labels: labels.render(), typ: "counter",
		value: func() float64 { return float64(c.Value()) }})
	return c
}

// Histogram registers a log2-bucketed histogram, exported as Prometheus
// cumulative le-buckets plus _count and an approximate _sum (geometric
// bucket midpoints — the same approximation the quantiles use).
func (r *Registry) Histogram(name string, labels Labels, h *Histogram) {
	r.register(entry{base: name, labels: labels.render(), typ: "histogram", hist: h.Counts})
}

// Collector registers a dynamic metric source: fn is invoked per scrape and
// emits any number of samples. Use for sets whose membership changes at
// runtime (per-device plane channels under churn).
func (r *Registry) Collector(fn func(Emit)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

func (r *Registry) register(e entry) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.entries = append(r.entries, e)
	r.mu.Unlock()
}

// sample is one evaluated metric instance.
type sample struct {
	base   string
	labels string
	typ    string
	value  float64
	counts [64]int64 // histograms only
}

// snapshot evaluates every registered closure and collector once.
func (r *Registry) snapshot() []sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	entries := make([]entry, len(r.entries))
	copy(entries, r.entries)
	collectors := make([]func(Emit), len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()

	out := make([]sample, 0, len(entries))
	for _, e := range entries {
		s := sample{base: e.base, labels: e.labels, typ: e.typ}
		if e.hist != nil {
			s.counts = e.hist()
		} else {
			s.value = e.value()
		}
		out = append(out, s)
	}
	for _, fn := range collectors {
		fn(func(name string, labels Labels, typ string, value float64) {
			out = append(out, sample{base: name, labels: labels.render(), typ: typ, value: value})
		})
	}
	// Stable exposition: group families together, order instances by label.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].base != out[j].base {
			return out[i].base < out[j].base
		}
		return out[i].labels < out[j].labels
	})
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	samples := r.snapshot()
	var b strings.Builder
	lastType := ""
	for _, s := range samples {
		if key := s.base + "\x00" + s.typ; key != lastType {
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.base, s.typ)
			lastType = key
		}
		if s.typ != "histogram" {
			fmt.Fprintf(&b, "%s%s %v\n", s.base, s.labels, s.value)
			continue
		}
		inner := strings.TrimSuffix(strings.TrimPrefix(s.labels, "{"), "}")
		var cum int64
		var sum float64
		for i, c := range s.counts {
			if c == 0 {
				continue
			}
			cum += c
			sum += float64(c) * float64(int64(1)<<uint(i)) * 1.41421356
			fmt.Fprintf(&b, "%s_bucket%s %d\n", s.base, histLabels(inner, fmt.Sprintf("%d", BucketBound(i))), cum)
		}
		fmt.Fprintf(&b, "%s_bucket%s %d\n", s.base, histLabels(inner, "+Inf"), cum)
		fmt.Fprintf(&b, "%s_sum%s %v\n", s.base, s.labels, sum)
		fmt.Fprintf(&b, "%s_count%s %d\n", s.base, s.labels, cum)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func histLabels(inner, le string) string {
	if inner == "" {
		return fmt.Sprintf("{le=%q}", le)
	}
	return fmt.Sprintf("{%s,le=%q}", inner, le)
}

// WriteJSON renders a flat JSON snapshot: counters/gauges as numbers keyed
// by name+labels, histograms as {count, p50_ns, p99_ns}.
func (r *Registry) WriteJSON(w io.Writer) error {
	samples := r.snapshot()
	flat := make(map[string]any, len(samples))
	for _, s := range samples {
		key := s.base + s.labels
		if s.typ != "histogram" {
			flat[key] = s.value
			continue
		}
		var n int64
		for _, c := range s.counts {
			n += c
		}
		flat[key] = map[string]any{
			"count":  n,
			"p50_ns": QuantileOf(s.counts, 0.50).Nanoseconds(),
			"p99_ns": QuantileOf(s.counts, 0.99).Nanoseconds(),
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(flat)
}
