package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// FlightRecorder keeps the last N spans/moves/events in a fixed ring so an
// invariant failure or SIGQUIT can dump what the system was doing just
// before — the black box for otherwise opaque panics. Writers take a mutex;
// only sampled records reach it, so it is far off the hot path.
type FlightRecorder struct {
	mu   sync.Mutex
	ring []any
	next int
	full bool
}

// NewFlightRecorder allocates a recorder retaining the last size records.
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = 4096
	}
	return &FlightRecorder{ring: make([]any, size)}
}

func (f *FlightRecorder) add(rec any) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.ring[f.next] = rec
	f.next++
	if f.next == len(f.ring) {
		f.next = 0
		f.full = true
	}
	f.mu.Unlock()
}

// Len reports how many records are retained.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.full {
		return len(f.ring)
	}
	return f.next
}

// Dump writes the retained records, oldest first, as JSONL.
func (f *FlightRecorder) Dump(w io.Writer) error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	recs := make([]any, 0, len(f.ring))
	if f.full {
		recs = append(recs, f.ring[f.next:]...)
	}
	recs = append(recs, f.ring[:f.next]...)
	f.mu.Unlock()

	enc := json.NewEncoder(w)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}
