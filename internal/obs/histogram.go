// Package obs is the zero-dependency observability plane: a lock-free
// metrics registry every subsystem registers into, sampled per-op spans and
// movement provenance records exported as JSONL, a fixed-size flight
// recorder of recent events dumped on invariant failures, and an HTTP
// endpoint serving Prometheus text, pprof, and a JSON snapshot.
//
// Everything is nil-safe: every method on *Hub, *Registry, *Tracer, and
// *FlightRecorder works on a nil receiver and costs one branch, so the
// serving stack threads a possibly-nil hub through its hot paths without
// guards and the differential suites stay bit-for-bit when disabled.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a lock-free log2-bucketed latency histogram: bucket i counts
// observations with ceil(log2(ns)) == i, giving ~2x resolution from 1 ns to
// ~9 years in 64 fixed buckets. Concurrent Observe calls are a single
// atomic add, so every client goroutine records into one shared histogram
// without coordination; quantiles are answered from the bucket counts using
// each bucket's geometric midpoint.
type Histogram struct {
	buckets [64]atomic.Int64
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	if ns == 0 {
		ns = 1
	}
	h.buckets[bits.Len64(ns)-1].Add(1)
}

// AddFrom accumulates another histogram's buckets into h (used to merge
// per-shard histograms into one report).
func (h *Histogram) AddFrom(o *Histogram) {
	for i := range h.buckets {
		if n := o.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Counts snapshots the bucket counters; the SLO controller diffs snapshots
// to answer quantiles over a window, and the differential tests compare
// whole histograms bit-for-bit.
func (h *Histogram) Counts() [64]int64 {
	var out [64]int64
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile returns the q-quantile (0..1) as a duration, approximated by the
// geometric midpoint of the bucket containing the rank. Zero when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	return QuantileOf(h.Counts(), q)
}

// QuantileOf answers the q-quantile over an arbitrary bucket-count vector
// in the Histogram.Counts layout — a live snapshot, or a windowed delta of
// two snapshots. The time-series collector (internal/metrics) diffs
// successive snapshots and quantiles each window through this.
func QuantileOf(counts [64]int64, q float64) time.Duration {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(total-1))
	var seen int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		seen += c
		if seen > rank {
			lo := int64(1) << uint(i)
			// Geometric midpoint of [2^i, 2^(i+1)): lo * sqrt(2).
			return time.Duration(float64(lo) * 1.41421356)
		}
	}
	return 0
}

// BucketBound returns the exclusive upper bound of bucket i in nanoseconds
// (2^(i+1)), the "le" edge the Prometheus exposition uses.
func BucketBound(i int) int64 {
	if i >= 62 {
		return int64(1) << 62
	}
	return int64(1) << uint(i+1)
}
