package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 97; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 3; i++ {
		h.Observe(100 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count %d, want 100", h.Count())
	}
	p50 := h.Quantile(0.50)
	if p50 < 500*time.Microsecond || p50 > 2*time.Millisecond {
		t.Fatalf("p50 %v outside the 1ms bucket", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 50*time.Millisecond {
		t.Fatalf("p99 %v must land in the slow-tail bucket", p99)
	}
	if (&Histogram{}).Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
}

func TestNilSafety(t *testing.T) {
	// The disabled plane: every call on nil receivers must be a no-op.
	var h *Hub
	if h.SampleOp() {
		t.Fatal("nil hub sampled an op")
	}
	h.EmitSpan(&Span{Op: "access"})
	h.EmitMove(&MoveRecord{Path: "/x"})
	h.EmitEvent(&Event{What: "boom"})
	if err := h.DumpFlight(io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if _, stop, err := h.ListenAndServe(":0"); err != nil {
		t.Fatal(err)
	} else {
		stop()
	}

	r := h.Registry()
	r.Gauge("g", nil, func() float64 { return 1 })
	r.CounterFunc("c", nil, func() float64 { return 1 })
	r.Histogram("h", nil, &Histogram{})
	r.Collector(func(Emit) {})
	c := r.Counter("owned", nil)
	c.Add(5) // nil counter absorbs Add
	if c.Value() != 0 {
		t.Fatal("nil counter held a value")
	}
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}

	var tr *Tracer
	tr.emit(&Event{})
	if tr.Records() != 0 {
		t.Fatal("nil tracer recorded")
	}
	var f *FlightRecorder
	f.add(Event{})
	if f.Len() != 0 {
		t.Fatal("nil flight recorder retained")
	}
}

func TestSampleEvery(t *testing.T) {
	h := NewHub(HubConfig{SampleEvery: 4})
	var sampled int
	for i := 0; i < 100; i++ {
		if h.SampleOp() {
			sampled++
		}
	}
	if sampled != 25 {
		t.Fatalf("sampled %d of 100 at 1-in-4, want 25", sampled)
	}
	all := NewHub(HubConfig{SampleEvery: 1})
	for i := 0; i < 10; i++ {
		if !all.SampleOp() {
			t.Fatal("SampleEvery=1 must sample every op")
		}
	}
}

func TestRegistryPrometheusAndJSON(t *testing.T) {
	r := NewRegistry()
	var g atomic.Int64
	g.Store(7)
	r.Gauge("octo_depth", Labels{"tier": "SSD", "shard": "1"}, func() float64 { return float64(g.Load()) })
	r.CounterFunc("octo_ops_total", nil, func() float64 { return 42 })
	h := &Histogram{}
	h.Observe(time.Millisecond)
	h.Observe(time.Millisecond)
	r.Histogram("octo_read_latency_ns", Labels{"tier": "MEM"}, h)
	r.Collector(func(emit Emit) {
		emit("octo_device_grants_total", Labels{"device": "hdd-0"}, "counter", 3)
	})
	cnt := r.Counter("octo_owned_total", nil)
	cnt.Add(2)
	cnt.Add(3)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE octo_depth gauge",
		`octo_depth{shard="1",tier="SSD"} 7`,
		"# TYPE octo_ops_total counter",
		"octo_ops_total 42",
		`octo_device_grants_total{device="hdd-0"} 3`,
		"octo_owned_total 5",
		`octo_read_latency_ns_bucket{tier="MEM",le="+Inf"} 2`,
		`octo_read_latency_ns_count{tier="MEM"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	// Histogram le-buckets must be cumulative and bounded by the bucket edge:
	// 1ms lands in [2^19, 2^20), so its le edge is 1048576.
	if !strings.Contains(text, `octo_read_latency_ns_bucket{tier="MEM",le="1048576"} 2`) {
		t.Fatalf("1ms observations missing from the 2^20 ns le bucket:\n%s", text)
	}

	buf.Reset()
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var flat map[string]any
	if err := json.Unmarshal(buf.Bytes(), &flat); err != nil {
		t.Fatal(err)
	}
	if flat[`octo_depth{shard="1",tier="SSD"}`] != 7.0 {
		t.Fatalf("json gauge: %v", flat)
	}
	hist, ok := flat[`octo_read_latency_ns{tier="MEM"}`].(map[string]any)
	if !ok || hist["count"] != 2.0 {
		t.Fatalf("json histogram: %v", flat)
	}
}

func TestRegistryDeterministicOrder(t *testing.T) {
	// Two registries populated in different orders must render identically.
	build := func(swap bool) string {
		r := NewRegistry()
		a := func() { r.Gauge("octo_a", Labels{"x": "1"}, func() float64 { return 1 }) }
		b := func() { r.Gauge("octo_a", Labels{"x": "0"}, func() float64 { return 2 }) }
		if swap {
			b()
			a()
		} else {
			a()
			b()
		}
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if build(false) != build(true) {
		t.Fatal("exposition depends on registration order")
	}
}

func TestTracerJSONL(t *testing.T) {
	var buf bytes.Buffer
	h := NewHub(HubConfig{SampleEvery: 1, Trace: &buf})
	h.EmitSpan(&Span{Op: "access", Path: "/a", Tier: "MEM", TotalNS: 1200})
	h.EmitMove(&MoveRecord{Path: "/a", From: "SSD", To: "HDD", Policy: "lru", Trigger: "tick", Outcome: "queued"})
	h.EmitEvent(&Event{What: "defer", Detail: "slo breach"})
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if h.Tracer().Records() != 3 {
		t.Fatalf("records %d, want 3", h.Tracer().Records())
	}

	var kinds []string
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		kinds = append(kinds, rec["kind"].(string))
	}
	if strings.Join(kinds, ",") != "span,move,event" {
		t.Fatalf("kinds %v", kinds)
	}
}

func TestFlightRecorderWraparound(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		f.add(Event{Kind: "event", What: fmt.Sprintf("e%d", i)})
	}
	if f.Len() != 4 {
		t.Fatalf("len %d, want 4", f.Len())
	}
	var buf bytes.Buffer
	if err := f.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("dumped %d lines, want 4", len(lines))
	}
	// Oldest first, retaining the final 4 of 10.
	for i, line := range lines {
		want := fmt.Sprintf("e%d", 6+i)
		if !strings.Contains(line, want) {
			t.Fatalf("line %d = %q, want %s", i, line, want)
		}
	}
}

func TestListenAndServe(t *testing.T) {
	h := NewHub(HubConfig{SampleEvery: 1})
	h.Registry().Gauge("octo_up", nil, func() float64 { return 1 })
	h.EmitSpan(&Span{Op: "access", Path: "/x"})
	addr, stop, err := h.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body)
	}
	if !strings.Contains(get("/metrics"), "octo_up 1") {
		t.Fatal("/metrics missing octo_up")
	}
	if !strings.Contains(get("/metrics.json"), `"octo_up": 1`) {
		t.Fatal("/metrics.json missing octo_up")
	}
	if !strings.Contains(get("/flight"), `"path":"/x"`) {
		t.Fatal("/flight missing the span")
	}
	resp, err := http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("pprof unreachable: %v", err)
	}
	resp.Body.Close()
}
