// Package scenario is the declarative replay subsystem: it composes the
// workload generators of internal/workload with cluster perturbations
// (hot-set drift, bursty arrival storms, multi-tenant job mixes, tier
// capacity crunches, node join/leave) and replays the result
// deterministically through the discrete-event engine against any dfs.Mode
// plus core.Manager policy configuration.
//
// Every replay runs with the invariant checker enabled: the cheap capacity
// accounting check (dfs.FileSystem.CheckAccounting, O(#devices)) runs after
// every simulation event, and the deep structural check
// (dfs.FileSystem.CheckInvariants) runs on a configurable event cadence and
// again at the end of the replay. A scenario result therefore certifies not
// only throughput and completion-time metrics but that no replayed event
// corrupted namespace, replica, or capacity state — the property the
// paper's six-hour trace replays silently assume.
//
// Scenarios are data, not code: a Scenario couples a cluster topology, a
// trace constructor, and a perturbation list, so adding a workload shape is
// a catalog entry rather than a new harness (see catalog.go and the README
// section "The scenario DSL").
package scenario

import (
	"fmt"
	"time"

	"octostore/internal/cluster"
	"octostore/internal/core"
	"octostore/internal/dfs"
	"octostore/internal/eval"
	"octostore/internal/jobs"
	"octostore/internal/ml"
	"octostore/internal/policy"
	"octostore/internal/sim"
	"octostore/internal/storage"
	"octostore/internal/workload"
)

// Options scopes one replay.
type Options struct {
	// Seed drives trace generation, placement, and scheduling draws.
	Seed int64
	// Fast shrinks the workload and cluster for tests and smoke runs.
	Fast bool
	// Workers overrides the scenario's cluster size (0 keeps the default).
	Workers int
	// CheckEvery runs the O(#devices) accounting check after every N-th
	// simulation event (default 1: every event).
	CheckEvery int
	// DeepCheckEvery runs the full structural invariant check every N
	// events (default 20000; <0 disables periodic deep checks — the final
	// deep check always runs).
	DeepCheckEvery int
}

func (o *Options) applyDefaults() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.CheckEvery <= 0 {
		o.CheckEvery = 1
	}
	if o.DeepCheckEvery == 0 {
		o.DeepCheckEvery = 20000
	}
}

// System selects what the scenario replays against: a dfs mode plus a
// downgrade/upgrade policy pair ("" disables that side; both empty means no
// replication manager at all).
type System struct {
	Name string
	Mode dfs.Mode
	Down string
	Up   string
}

// Managed reports whether the system attaches a replication manager.
func (s System) Managed() bool { return s.Down != "" || s.Up != "" }

// Scenario declares one replayable situation.
type Scenario struct {
	// Name identifies the scenario in catalogs, tables, and flags.
	Name string
	// Description is a one-line summary for listings.
	Description string
	// Cluster builds the cluster topology for the options.
	Cluster func(o Options) cluster.Config
	// Trace builds the workload trace for the options.
	Trace func(o Options) *workload.Trace
	// Perturb lists runtime perturbations installed when the job phase
	// starts (after input preload).
	Perturb []Perturbation
}

// Perturbation mutates the running system at scheduled points of the job
// phase. Install is called once, at job-phase start, and must only schedule
// engine callbacks (everything stays deterministic and single-threaded).
type Perturbation interface {
	Name() string
	Install(rp *Replay)
}

// Replay is one in-progress scenario execution; perturbations receive it to
// reach the engine and the system under test.
type Replay struct {
	Scenario Scenario
	System   System
	Opts     Options
	Engine   *sim.Engine
	Cluster  *cluster.Cluster
	FS       *dfs.FileSystem
	Manager  *core.Manager // nil for unmanaged systems
}

// Result is the outcome of a replay: workload metrics, policy activity, and
// the invariant-checking record.
type Result struct {
	Scenario string
	System   string

	Jobs           int
	MeanCompletion time.Duration
	P95Completion  time.Duration
	BytesRead      int64
	MemHitRatio    float64
	// WallClock is the virtual duration of the job phase.
	WallClock time.Duration
	// ThroughputMBps is BytesRead over the job-phase virtual duration.
	ThroughputMBps float64

	Upgrades        int64
	Downgrades      int64
	UpgradeErrors   int64
	DowngradeErrors int64
	ReplicaDeletes  int64
	Repairs         int64

	// FinalUtilization is used/capacity per tier (MEM, SSD, HDD) at the end
	// of the replay.
	FinalUtilization [3]float64

	Events           uint64
	AccountingChecks int64
	DeepChecks       int64
	// Violations holds the first invariant violations observed (empty on a
	// healthy replay).
	Violations []string
	// DataLossBlocks counts blocks left with no readable replica at the end
	// of the replay (node churn beyond the replication factor).
	DataLossBlocks int
	// TenantPlane holds the data plane's per-tenant traffic counters when the
	// scenario ran under a multi-tenant contended plane (nil otherwise).
	TenantPlane []storage.TenantPlaneStats
}

// maxRecordedViolations bounds the violation log so a systemic corruption
// does not balloon the result.
const maxRecordedViolations = 5

// learnerConfig mirrors the experiment harness's simulation-scale XGB
// tuning: the paper's tree shape with a bounded ensemble.
func learnerConfig(seed int64) ml.LearnerConfig {
	cfg := ml.DefaultLearnerConfig()
	cfg.Seed = seed
	cfg.Params.MaxTrees = 200
	cfg.MinTrainSamples = 300
	cfg.UpdateBatch = 200
	cfg.UpdateRounds = 3
	return cfg
}

// Run replays the scenario against the system and returns the collected
// result. The replay is deterministic: equal (scenario, system, options)
// yield identical results.
func Run(sc Scenario, sys System, o Options) (*Result, error) {
	o.applyDefaults()
	engine := sim.NewEngine()
	cl, err := cluster.New(engine, sc.Cluster(o))
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	fs, err := dfs.New(cl, dfs.Config{Mode: sys.Mode, Seed: o.Seed, ClientRate: 2000e6})
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	rp := &Replay{Scenario: sc, System: sys, Opts: o, Engine: engine, Cluster: cl, FS: fs}
	if sys.Managed() {
		ctx := core.NewContext(fs, core.DefaultConfig())
		lcfg := learnerConfig(o.Seed)
		down, err := policy.NewDowngrade(sys.Down, ctx, lcfg)
		if err != nil {
			return nil, err
		}
		up, err := policy.NewUpgrade(sys.Up, ctx, lcfg)
		if err != nil {
			return nil, err
		}
		rp.Manager = core.NewManager(ctx, down, up)
		rp.Manager.Start()
		defer rp.Manager.Stop()
	}

	res := &Result{Scenario: sc.Name, System: sys.Name}
	record := func(err error) {
		if err != nil && len(res.Violations) < maxRecordedViolations {
			res.Violations = append(res.Violations, err.Error())
		}
	}
	// The always-on invariant checker: sampled accounting checks after
	// every event, deep structural checks on a coarser cadence. The deep
	// pass also audits the manager's incremental candidate indexes against
	// a from-scratch membership recompute, so node churn, re-replication,
	// and tier movement cannot silently leak or strand indexed entries.
	deepCheck := func() {
		res.DeepChecks++
		record(fs.CheckInvariants())
		if rp.Manager != nil {
			record(rp.Manager.Context().Index().Audit())
		}
	}
	// Multi-tenant plane profiles additionally reconcile the plane's
	// per-tenant counters against the tier totals on the same cadence, so a
	// mis-tagged or double-counted request fails the replay at the event
	// that introduced it.
	var planeCheck func() error
	if cp, ok := cl.Plane().(*storage.ContendedPlane); ok && cp.MultiTenant() {
		planeCheck = cp.CheckAccounting
	}
	var sinceLight, sinceDeep int
	engine.SetEventHook(func() {
		sinceLight++
		if sinceLight >= o.CheckEvery {
			sinceLight = 0
			res.AccountingChecks++
			record(fs.CheckAccounting())
			if planeCheck != nil {
				record(planeCheck())
			}
		}
		if o.DeepCheckEvery > 0 {
			sinceDeep++
			if sinceDeep >= o.DeepCheckEvery {
				sinceDeep = 0
				deepCheck()
			}
		}
	})
	defer engine.SetEventHook(nil)

	tr := sc.Trace(o)
	var jobStart time.Time
	stats, err := jobs.Run(fs, tr, jobs.Options{Seed: o.Seed}, func() {
		jobStart = engine.Now()
		for _, p := range sc.Perturb {
			p.Install(rp)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("scenario %s on %s: %w", sc.Name, sys.Name, err)
	}
	// The final deep check runs regardless of cadence.
	deepCheck()

	res.Jobs = len(stats.Jobs)
	res.Events = engine.Fired()
	res.WallClock = engine.Now().Sub(jobStart)
	var completions []float64
	var sum time.Duration
	for i := range stats.Jobs {
		ct := stats.Jobs[i].CompletionTime()
		sum += ct
		completions = append(completions, ct.Seconds())
	}
	if len(stats.Jobs) > 0 {
		res.MeanCompletion = sum / time.Duration(len(stats.Jobs))
	}
	if len(completions) > 0 {
		res.P95Completion = time.Duration(eval.Quantile(completions, 0.95) * float64(time.Second))
	}
	_, _, _, _, bytes, memBytes := stats.Totals()
	res.BytesRead = bytes
	if bytes > 0 {
		res.MemHitRatio = float64(memBytes) / float64(bytes)
	}
	if secs := res.WallClock.Seconds(); secs > 0 {
		res.ThroughputMBps = float64(bytes) / secs / 1e6
	}
	if rp.Manager != nil {
		m := rp.Manager.Metrics()
		res.Upgrades = m.UpgradesScheduled
		res.Downgrades = m.DowngradesScheduled
		res.UpgradeErrors = m.UpgradeErrors
		res.DowngradeErrors = m.DowngradeErrors
		res.ReplicaDeletes = m.ReplicaDeletes
		res.Repairs = rp.Manager.Monitor().Repairs()
	}
	for _, media := range storage.AllMedia {
		res.FinalUtilization[media] = cl.TierUtilization(media)
	}
	if cp, ok := cl.Plane().(*storage.ContendedPlane); ok && cp.MultiTenant() {
		res.TenantPlane = cp.TenantStats()
	}
	for _, f := range fs.LiveFiles() {
		if !fs.Complete(f) {
			continue
		}
		for _, b := range f.Blocks() {
			if b.ReadableReplicas() == 0 {
				res.DataLossBlocks++
			}
		}
	}
	return res, nil
}

// DefaultCluster returns the standard replay topology: the paper's testbed
// at full scale, a 3-worker shrunken cluster in Fast mode.
func DefaultCluster(o Options) cluster.Config {
	if o.Fast {
		cfg := cluster.Config{Workers: 3, SlotsPerNode: 4, Spec: fastWorkerSpec()}
		if o.Workers > 0 {
			cfg.Workers = o.Workers
		}
		return cfg
	}
	cfg := cluster.PaperConfig()
	if o.Workers > 0 {
		cfg.Workers = o.Workers
	}
	return cfg
}

// fastWorkerSpec is a shrunken node that still produces memory-tier
// pressure at a fraction of the event count.
func fastWorkerSpec() storage.NodeSpec {
	return storage.NodeSpec{
		{Media: storage.Memory, Capacity: 1 * storage.GB, ReadBW: 4000e6, WriteBW: 3000e6, Count: 1},
		{Media: storage.SSD, Capacity: 8 * storage.GB, ReadBW: 500e6, WriteBW: 400e6, Count: 1},
		{Media: storage.HDD, Capacity: 64 * storage.GB, ReadBW: 160e6, WriteBW: 140e6, Count: 2},
	}
}

// FastProfile shrinks a workload profile the same way the experiment
// harness does: a fifth of the jobs over two hours, with job sizes capped at
// bin D so files fit the shrunken cluster.
func FastProfile(p workload.Profile) workload.Profile {
	p.NumJobs /= 5
	p.Duration = 2 * time.Hour
	return workload.CapProfile(p, workload.BinD)
}
