package scenario

// This file lets external drivers attach to a catalog scenario instead of
// replaying it themselves: cmd/octoload stands its concurrent serving layer
// on top of a scenario's cluster topology and file population, then calls
// Attach so the scenario's perturbations (ballast floods, node churn,
// client surges) run against the served system while real client goroutines
// hammer it — surge load and perturbations compose into one report.

// Attach installs every perturbation of the scenario onto an externally
// built replay. The caller owns the Replay's fields (engine, cluster, file
// system, optional manager) and must invoke Attach from whatever context
// owns the engine — for the serving layer that is the core loop, via
// Server.Exec — because perturbations schedule engine callbacks directly.
func Attach(sc Scenario, rp *Replay) {
	rp.Scenario = sc
	for _, p := range sc.Perturb {
		p.Install(rp)
	}
}
