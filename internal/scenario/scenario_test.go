package scenario

import (
	"reflect"
	"testing"
	"time"

	"octostore/internal/dfs"
	"octostore/internal/storage"
	"octostore/internal/workload"
)

func fastOpts() Options { return Options{Fast: true, Seed: 1} }

func xgbSystem() System {
	return System{Name: "XGB", Mode: dfs.ModeOctopus, Down: "xgb", Up: "xgb"}
}

// TestCatalogReplaysCleanly replays every catalog scenario against both an
// unmanaged OctopusFS baseline and the managed XGB system: jobs must
// complete, the always-on invariant checker must run and find nothing, and
// no block may lose its last replica.
func TestCatalogReplaysCleanly(t *testing.T) {
	systems := []System{
		{Name: "OctopusFS", Mode: dfs.ModeOctopus},
		xgbSystem(),
	}
	for _, sc := range Catalog() {
		for _, sys := range systems {
			res, err := Run(sc, sys, fastOpts())
			if err != nil {
				t.Fatalf("%s on %s: %v", sc.Name, sys.Name, err)
			}
			if res.Jobs == 0 {
				t.Fatalf("%s on %s: no jobs ran", sc.Name, sys.Name)
			}
			if res.AccountingChecks == 0 || res.DeepChecks == 0 {
				t.Fatalf("%s on %s: invariant checker did not run (acct=%d deep=%d)",
					sc.Name, sys.Name, res.AccountingChecks, res.DeepChecks)
			}
			if len(res.Violations) != 0 {
				t.Fatalf("%s on %s: invariant violations: %v", sc.Name, sys.Name, res.Violations)
			}
			if res.DataLossBlocks != 0 {
				t.Fatalf("%s on %s: %d blocks lost all replicas", sc.Name, sys.Name, res.DataLossBlocks)
			}
			if res.BytesRead == 0 || res.ThroughputMBps <= 0 {
				t.Fatalf("%s on %s: no data read (bytes=%d tput=%f)",
					sc.Name, sys.Name, res.BytesRead, res.ThroughputMBps)
			}
		}
	}
}

// TestReplayDeterministic requires byte-identical results for equal
// (scenario, system, options) triples — the property the paper's replays
// (and every future regression comparison) depend on.
func TestReplayDeterministic(t *testing.T) {
	for _, sc := range Catalog() {
		a, err := Run(sc, xgbSystem(), fastOpts())
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(sc, xgbSystem(), fastOpts())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: replay not deterministic:\n  first:  %+v\n  second: %+v", sc.Name, a, b)
		}
	}
}

// TestSeedChangesOutcome guards against accidentally ignoring the seed.
func TestSeedChangesOutcome(t *testing.T) {
	a, err := Run(HotSetDrift(), xgbSystem(), Options{Fast: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(HotSetDrift(), xgbSystem(), Options{Fast: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Events == b.Events && a.MeanCompletion == b.MeanCompletion {
		t.Fatal("different seeds produced identical replays")
	}
}

// TestNodeChurnTriggersRepair checks the churn pipeline end to end: the
// failed worker's replicas must surface as under-replicated and the
// replication monitor must re-replicate them.
func TestNodeChurnTriggersRepair(t *testing.T) {
	res, err := Run(NodeJoinLeave(), xgbSystem(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Repairs == 0 {
		t.Fatal("node loss triggered no re-replication")
	}
	if len(res.Violations) != 0 {
		t.Fatalf("churn violated invariants: %v", res.Violations)
	}
}

// TestCapacityCrunchCrowdsTiers checks that the ballast flood actually
// lands: tier occupancy at the end of the replay is higher than the plain
// FB replay's, and the crowded memory tier costs hit ratio.
func TestCapacityCrunchCrowdsTiers(t *testing.T) {
	crunch, err := Run(TierCrunch(), xgbSystem(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	plain := TierCrunch()
	plain.Perturb = nil
	base, err := Run(plain, xgbSystem(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	var crunchTotal, baseTotal float64
	for m := 0; m < 3; m++ {
		crunchTotal += crunch.FinalUtilization[m]
		baseTotal += base.FinalUtilization[m]
	}
	if crunchTotal <= baseTotal {
		t.Fatalf("crunch utilization %v not above baseline %v",
			crunch.FinalUtilization, base.FinalUtilization)
	}
	if crunch.MemHitRatio >= base.MemHitRatio {
		t.Fatalf("crunch hit ratio %.3f did not drop below baseline %.3f",
			crunch.MemHitRatio, base.MemHitRatio)
	}
}

// TestPerturbationsScheduleOnly ensures Install never mutates the system
// synchronously: everything must flow through engine events.
func TestPerturbationsScheduleOnly(t *testing.T) {
	sc := NodeJoinLeave()
	res, err := Run(sc, System{Name: "plain", Mode: dfs.ModeOctopus}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Unmanaged system: node loss is not repaired, but invariants must
	// still hold (lost replicas are accounted, not leaked).
	if len(res.Violations) != 0 {
		t.Fatalf("unmanaged churn violated invariants: %v", res.Violations)
	}
}

// TestTenantQoSAccountsPerTenant replays the tenant-qos scenario and checks
// the multi-tenant plane wiring end to end: the per-event accounting hook
// (tenant counters vs tier totals) found nothing, both tenants actually
// drove tagged traffic through the weighted-fair plane, and the surge load
// queued somewhere (the contended profile is not a no-op).
func TestTenantQoSAccountsPerTenant(t *testing.T) {
	res, err := Run(TenantQoS(), xgbSystem(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("tenant-qos violated invariants: %v", res.Violations)
	}
	if len(res.TenantPlane) != 2 {
		t.Fatalf("want plane stats for 2 tenants, got %+v", res.TenantPlane)
	}
	var queued time.Duration
	for _, ts := range res.TenantPlane {
		if ts.Requests == 0 || ts.Bytes == 0 {
			t.Fatalf("tenant %d drove no plane traffic: %+v", ts.Tenant, ts)
		}
		queued += ts.AvgQueue
	}
	if queued == 0 {
		t.Fatal("no tenant ever queued: contended plane profile is a no-op")
	}
}

func TestCatalogLookup(t *testing.T) {
	names := Names()
	if len(names) != 7 {
		t.Fatalf("catalog has %d scenarios, want 7: %v", len(names), names)
	}
	for _, name := range names {
		sc, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if sc.Name != name {
			t.Fatalf("Get(%q) returned %q", name, sc.Name)
		}
		if sc.Description == "" || sc.Cluster == nil || sc.Trace == nil {
			t.Fatalf("scenario %q incomplete", name)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// TestCustomScenario exercises the DSL the README documents: a user-defined
// scenario composed from existing generators and perturbations.
func TestCustomScenario(t *testing.T) {
	sc := Scenario{
		Name:        "custom",
		Description: "burstified CMU with a mid-run crunch",
		Cluster:     DefaultCluster,
		Trace: func(o Options) *workload.Trace {
			p := FastProfile(workload.CMU())
			p.NumJobs = 60
			return workload.Burstify(workload.Generate(p, o.Seed), 20*time.Minute, 4*time.Minute)
		},
		Perturb: []Perturbation{
			// FileBytes deliberately omitted: the perturbation must apply
			// its own default rather than divide by zero.
			CapacityCrunch{Offset: 30 * time.Minute, TotalBytes: storage.GB},
		},
	}
	res, err := Run(sc, xgbSystem(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != 60 {
		t.Fatalf("jobs = %d, want 60", res.Jobs)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
}
