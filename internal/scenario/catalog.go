package scenario

import (
	"fmt"
	"sort"
	"time"

	"octostore/internal/cluster"
	"octostore/internal/storage"
	"octostore/internal/workload"
)

// The built-in catalog: five situations beyond the two canned FB/CMU
// traces, each stressing a different failure mode of tiering policies.

// HotSetDrift replays an FB-shaped workload whose Zipf hot set rotates
// through four segments: policies (and learned models) must un-learn a
// previously hot file population.
func HotSetDrift() Scenario {
	return Scenario{
		Name:        "hotset-drift",
		Description: "FB-shaped workload whose popular file set rotates every quarter of the trace",
		Cluster:     DefaultCluster,
		Trace: func(o Options) *workload.Trace {
			p := workload.FB()
			if o.Fast {
				p = FastProfile(p)
			}
			return workload.GenerateDrift(p, 4, o.Seed)
		},
	}
}

// BurstStorm compresses FB arrivals into five-minute storms every half
// hour: queueing explodes at storm fronts while tiers must drain between
// them.
func BurstStorm() Scenario {
	return Scenario{
		Name:        "burst-storm",
		Description: "FB workload with arrivals compressed into periodic storms followed by idle gaps",
		Cluster:     DefaultCluster,
		Trace: func(o Options) *workload.Trace {
			p := workload.FB()
			if o.Fast {
				p = FastProfile(p)
			}
			return workload.Burstify(workload.Generate(p, o.Seed), 30*time.Minute, 5*time.Minute)
		},
	}
}

// MultiTenant interleaves an FB tenant (short-term locality) with a CMU
// tenant (periodic re-scans) under separate namespaces: recency-only and
// frequency-only policies each fit only one tenant.
func MultiTenant() Scenario {
	return Scenario{
		Name:        "multi-tenant",
		Description: "FB and CMU tenants share the cluster under /tenant0 and /tenant1",
		Cluster:     DefaultCluster,
		Trace: func(o Options) *workload.Trace {
			fb := workload.FB()
			cmu := workload.CMU()
			if o.Fast {
				fb, cmu = FastProfile(fb), FastProfile(cmu)
				// Halve each tenant so the mix stays at single-workload scale.
				fb.NumJobs /= 2
				cmu.NumJobs /= 2
			}
			return workload.Merge("multi-tenant",
				workload.Generate(fb, o.Seed),
				workload.Generate(cmu, o.Seed+101))
		},
	}
}

// TenantQoS is the multi-tenant mix under a contended, weighted-fair data
// plane: the FB and CMU tenants carry plane weights 3:1, and a per-tenant
// read surge hits each namespace mid-trace, so device arbitration, tenant
// tagging, and the plane's per-tenant accounting are all exercised inside
// the always-on invariant checker (the replay asserts the plane's tenant
// counters reconcile with the tier totals after every checked event).
func TenantQoS() Scenario {
	return Scenario{
		Name:        "tenant-qos",
		Description: "FB and CMU tenants contend on a weighted-fair data plane with per-tenant read surges",
		Cluster: func(o Options) cluster.Config {
			cfg := DefaultCluster(o)
			cfg.Plane = storage.NewContendedPlane(storage.PlaneConfig{
				Tenants: []storage.TenantWeight{
					{ID: 0, Weight: 3},
					{ID: 1, Weight: 1},
				},
			})
			return cfg
		},
		Trace: func(o Options) *workload.Trace {
			fb := workload.FB()
			cmu := workload.CMU()
			if o.Fast {
				fb, cmu = FastProfile(fb), FastProfile(cmu)
				fb.NumJobs /= 2
				cmu.NumJobs /= 2
			}
			return workload.Merge("tenant-qos",
				workload.Generate(fb, o.Seed),
				workload.Generate(cmu, o.Seed+101))
		},
		Perturb: []Perturbation{
			TenantSurge{Tenant: 0, PathPrefix: "/tenant0", Offset: 10 * time.Minute, Duration: 60 * time.Minute, Clients: 12},
			TenantSurge{Tenant: 1, PathPrefix: "/tenant1", Offset: 15 * time.Minute, Duration: 60 * time.Minute, Clients: 12},
		},
	}
}

// TierCrunch runs the FB workload and floods the cluster with cold ballast
// a third of the way in, forcing the downgrade process to run against live
// traffic.
func TierCrunch() Scenario {
	return Scenario{
		Name:        "capacity-crunch",
		Description: "cold ballast floods the fast tiers mid-workload, forcing downgrades under load",
		Cluster:     DefaultCluster,
		Trace: func(o Options) *workload.Trace {
			p := workload.FB()
			if o.Fast {
				p = FastProfile(p)
			}
			return workload.Generate(p, o.Seed)
		},
		Perturb: []Perturbation{
			CapacityCrunch{
				Offset: 40 * time.Minute,
				// Sized against the Fast cluster (3 GB memory + 24 GB SSD
				// cluster-wide): enough to push the fast tiers through their
				// high watermarks. At paper scale the same ballast is a
				// memory-tier crunch.
				TotalBytes: 6 * storage.GB,
				FileBytes:  256 * storage.MB,
				Parallel:   4,
			},
		},
	}
}

// ConcurrentClients overlays the FB batch workload with a surge of
// interactive read clients: the extra access stream heats the upgrade path
// and the read load contends with movement transfers on the same devices —
// the scenario-DSL counterpart of the octoload driver's concurrent serving
// traffic.
func ConcurrentClients() Scenario {
	return Scenario{
		Name:        "client-surge",
		Description: "interactive read clients surge alongside the batch workload",
		Cluster:     DefaultCluster,
		Trace: func(o Options) *workload.Trace {
			p := workload.FB()
			if o.Fast {
				p = FastProfile(p)
			}
			return workload.Generate(p, o.Seed)
		},
		Perturb: []Perturbation{
			ClientSurge{
				Offset:   20 * time.Minute,
				Duration: 60 * time.Minute,
				Clients:  24,
			},
		},
	}
}

// NodeJoinLeave exercises membership churn: a worker is lost a third of the
// way in (its replicas must be re-replicated) and a fresh empty worker joins
// later (placement must discover and fill it).
func NodeJoinLeave() Scenario {
	spec := func(o Options) storage.NodeSpec {
		if o.Fast {
			return fastWorkerSpec()
		}
		return storage.PaperWorkerSpec()
	}
	return Scenario{
		Name:        "node-churn",
		Description: "one worker fails mid-workload and a fresh worker joins later",
		Cluster: func(o Options) cluster.Config {
			cfg := DefaultCluster(o)
			if o.Workers == 0 && o.Fast {
				// One extra worker so losing one keeps replication targets
				// reachable.
				cfg.Workers = 4
			}
			return cfg
		},
		Trace: func(o Options) *workload.Trace {
			p := workload.FB()
			if o.Fast {
				p = FastProfile(p)
			}
			return workload.Generate(p, o.Seed)
		},
		Perturb: []Perturbation{
			nodeChurnFast{spec: spec},
		},
	}
}

// nodeChurnFast adapts NodeChurn to options-dependent node specs.
type nodeChurnFast struct {
	spec func(o Options) storage.NodeSpec
}

func (n nodeChurnFast) Name() string { return "node-churn" }

func (n nodeChurnFast) Install(rp *Replay) {
	NodeChurn{
		Leave:    []time.Duration{40 * time.Minute},
		Join:     []time.Duration{80 * time.Minute},
		Spec:     n.spec(rp.Opts),
		Slots:    4,
		MinNodes: 3,
	}.Install(rp)
}

// Catalog returns the built-in scenarios in a stable order.
func Catalog() []Scenario {
	return []Scenario{
		HotSetDrift(),
		BurstStorm(),
		MultiTenant(),
		TenantQoS(),
		TierCrunch(),
		NodeJoinLeave(),
		ConcurrentClients(),
	}
}

// Names lists the catalog scenario names, sorted.
func Names() []string {
	var names []string
	for _, sc := range Catalog() {
		names = append(names, sc.Name)
	}
	sort.Strings(names)
	return names
}

// Get looks a catalog scenario up by name.
func Get(name string) (Scenario, error) {
	for _, sc := range Catalog() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("scenario: unknown scenario %q (want one of %v)", name, Names())
}
