package scenario

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"octostore/internal/dfs"
	"octostore/internal/storage"
)

// CapacityCrunch floods the cluster with cold ballast data partway through
// the job phase: TotalBytes of never-read files are created starting at
// Offset, in FileBytes pieces at Parallel concurrent streams. Under tiered
// placement the ballast lands on the fastest tiers with room, shoving
// utilization over the high watermark and forcing the downgrade process to
// run while the workload is still reading — the tier-capacity-crunch
// situation of Section 5.
type CapacityCrunch struct {
	Offset     time.Duration
	TotalBytes int64
	FileBytes  int64
	Parallel   int
}

// Name implements Perturbation.
func (c CapacityCrunch) Name() string { return "capacity-crunch" }

// Install implements Perturbation.
func (c CapacityCrunch) Install(rp *Replay) {
	fileBytes := c.FileBytes
	if fileBytes <= 0 {
		fileBytes = 256 * storage.MB
	}
	files := int(c.TotalBytes / fileBytes)
	if files < 1 {
		files = 1
	}
	parallel := c.Parallel
	if parallel <= 0 {
		parallel = 4
	}
	rp.Engine.Schedule(c.Offset, func() {
		next := 0
		var launch func()
		launch = func() {
			if next >= files {
				return
			}
			idx := next
			next++
			// Creation failures (a genuinely full cluster) are the point of
			// the crunch, not an error; keep pushing.
			rp.FS.Create(fmt.Sprintf("/ballast/b%04d", idx), fileBytes, func(_ *dfs.File, _ error) {
				launch()
			})
		}
		for i := 0; i < parallel; i++ {
			launch()
		}
	})
}

// ClientSurge models a population of interactive clients hammering the
// file system with reads alongside the batch workload: Clients closed-loop
// virtual clients each repeatedly pick a random live file, record the
// access (firing the upgrade hook, exactly like the serving layer's access
// path), read one random block from a random node, and think for a random
// interval. The surge runs from Offset for Duration. Everything is
// engine-scheduled from a seeded RNG, so the "concurrency" is virtual-time
// interleaving and the replay stays deterministic — the scenario-DSL mirror
// of what cmd/octoload does with real goroutines against internal/server.
type ClientSurge struct {
	Offset   time.Duration
	Duration time.Duration
	Clients  int
	// ThinkMin/Max bound each client's pause between requests (defaults
	// 1s/15s).
	ThinkMin, ThinkMax time.Duration
	// Seed offsets the per-client RNG streams (0 uses the replay seed).
	Seed int64
}

// Name implements Perturbation.
func (c ClientSurge) Name() string { return "client-surge" }

// Install implements Perturbation.
func (c ClientSurge) Install(rp *Replay) {
	clients := c.Clients
	if clients <= 0 {
		clients = 16
	}
	thinkMin, thinkMax := c.ThinkMin, c.ThinkMax
	if thinkMin <= 0 {
		thinkMin = time.Second
	}
	if thinkMax <= thinkMin {
		thinkMax = thinkMin + 14*time.Second
	}
	seed := c.Seed
	if seed == 0 {
		seed = rp.Opts.Seed
	}
	rp.Engine.Schedule(c.Offset, func() {
		end := rp.Engine.Now().Add(c.Duration)
		for i := 0; i < clients; i++ {
			rng := rand.New(rand.NewSource(seed + int64(i)*9176 + 311))
			var loop func()
			loop = func() {
				if rp.Engine.Now().After(end) {
					return
				}
				if files := rp.FS.LiveFiles(); len(files) > 0 {
					f := files[rng.Intn(len(files))]
					if !f.Deleted() && rp.FS.Complete(f) && len(f.Blocks()) > 0 {
						// RecordAccess, not ServeRead: the ReadBlock below is
						// this client's data-plane charge (startTransfer);
						// charging a whole-file ServeRead too would book the
						// device channel twice for one logical read.
						rp.FS.RecordAccess(f)
						b := f.Blocks()[rng.Intn(len(f.Blocks()))]
						nodes := rp.Cluster.Nodes()
						rp.FS.ReadBlock(b, nodes[rng.Intn(len(nodes))], nil)
					}
				}
				think := thinkMin + time.Duration(rng.Int63n(int64(thinkMax-thinkMin)+1))
				rp.Engine.Schedule(think, loop)
			}
			// Stagger client starts across the first think window.
			rp.Engine.Schedule(time.Duration(rng.Int63n(int64(thinkMin))+1), loop)
		}
	})
}

// TenantSurge is ClientSurge with a tenant identity: each virtual client
// reads only files under PathPrefix and tags its data-plane charges with
// Tenant (the file system's active tenant is scoped around every access),
// so a multi-tenant replay exercises weighted-fair arbitration and the
// plane's per-tenant accounting. Defaults match ClientSurge.
type TenantSurge struct {
	Tenant     storage.TenantID
	PathPrefix string
	Offset     time.Duration
	Duration   time.Duration
	Clients    int
	ThinkMin   time.Duration
	ThinkMax   time.Duration
	Seed       int64
}

// Name implements Perturbation.
func (c TenantSurge) Name() string { return fmt.Sprintf("tenant-surge-%d", c.Tenant) }

// Install implements Perturbation.
func (c TenantSurge) Install(rp *Replay) {
	clients := c.Clients
	if clients <= 0 {
		clients = 16
	}
	thinkMin, thinkMax := c.ThinkMin, c.ThinkMax
	if thinkMin <= 0 {
		thinkMin = time.Second
	}
	if thinkMax <= thinkMin {
		thinkMax = thinkMin + 14*time.Second
	}
	seed := c.Seed
	if seed == 0 {
		seed = rp.Opts.Seed + int64(c.Tenant)*7919
	}
	rp.Engine.Schedule(c.Offset, func() {
		end := rp.Engine.Now().Add(c.Duration)
		for i := 0; i < clients; i++ {
			rng := rand.New(rand.NewSource(seed + int64(i)*9176 + 311))
			var loop func()
			loop = func() {
				if rp.Engine.Now().After(end) {
					return
				}
				var pick []*dfs.File
				for _, f := range rp.FS.LiveFiles() {
					if strings.HasPrefix(f.Path(), c.PathPrefix) {
						pick = append(pick, f)
					}
				}
				if len(pick) > 0 {
					f := pick[rng.Intn(len(pick))]
					if !f.Deleted() && rp.FS.Complete(f) && len(f.Blocks()) > 0 {
						// Same RecordAccess+ReadBlock shape as ClientSurge; the
						// active tenant scopes the ReadBlock's synchronous
						// data-plane charge to this surge's tenant.
						rp.FS.SetActiveTenant(c.Tenant)
						rp.FS.RecordAccess(f)
						b := f.Blocks()[rng.Intn(len(f.Blocks()))]
						nodes := rp.Cluster.Nodes()
						rp.FS.ReadBlock(b, nodes[rng.Intn(len(nodes))], nil)
						rp.FS.SetActiveTenant(storage.DefaultTenant)
					}
				}
				think := thinkMin + time.Duration(rng.Int63n(int64(thinkMax-thinkMin)+1))
				rp.Engine.Schedule(think, loop)
			}
			rp.Engine.Schedule(time.Duration(rng.Int63n(int64(thinkMin))+1), loop)
		}
	})
}

// NodeChurn removes and adds workers during the job phase: at every Leave
// offset the highest-id surviving worker fails (its replicas are lost and
// repaired by the replication monitor, when one is attached), and at every
// Join offset a fresh worker with the given spec joins. At least MinNodes
// workers always survive.
type NodeChurn struct {
	Leave    []time.Duration
	Join     []time.Duration
	Spec     storage.NodeSpec
	Slots    int
	MinNodes int
}

// Name implements Perturbation.
func (n NodeChurn) Name() string { return "node-churn" }

// Install implements Perturbation.
func (n NodeChurn) Install(rp *Replay) {
	minNodes := n.MinNodes
	if minNodes < 2 {
		minNodes = 2
	}
	for _, at := range n.Leave {
		rp.Engine.Schedule(at, func() {
			nodes := rp.Cluster.Nodes()
			if len(nodes) <= minNodes {
				return
			}
			// Deterministic victim: the highest-id worker still alive.
			victim := nodes[0]
			for _, nd := range nodes[1:] {
				if nd.ID() > victim.ID() {
					victim = nd
				}
			}
			rp.FS.FailNode(victim)
		})
	}
	for _, at := range n.Join {
		rp.Engine.Schedule(at, func() {
			rp.FS.AddNode(n.Spec, n.Slots)
		})
	}
}
