package scenario

import (
	"fmt"
	"time"

	"octostore/internal/dfs"
	"octostore/internal/storage"
)

// CapacityCrunch floods the cluster with cold ballast data partway through
// the job phase: TotalBytes of never-read files are created starting at
// Offset, in FileBytes pieces at Parallel concurrent streams. Under tiered
// placement the ballast lands on the fastest tiers with room, shoving
// utilization over the high watermark and forcing the downgrade process to
// run while the workload is still reading — the tier-capacity-crunch
// situation of Section 5.
type CapacityCrunch struct {
	Offset     time.Duration
	TotalBytes int64
	FileBytes  int64
	Parallel   int
}

// Name implements Perturbation.
func (c CapacityCrunch) Name() string { return "capacity-crunch" }

// Install implements Perturbation.
func (c CapacityCrunch) Install(rp *Replay) {
	fileBytes := c.FileBytes
	if fileBytes <= 0 {
		fileBytes = 256 * storage.MB
	}
	files := int(c.TotalBytes / fileBytes)
	if files < 1 {
		files = 1
	}
	parallel := c.Parallel
	if parallel <= 0 {
		parallel = 4
	}
	rp.Engine.Schedule(c.Offset, func() {
		next := 0
		var launch func()
		launch = func() {
			if next >= files {
				return
			}
			idx := next
			next++
			// Creation failures (a genuinely full cluster) are the point of
			// the crunch, not an error; keep pushing.
			rp.FS.Create(fmt.Sprintf("/ballast/b%04d", idx), fileBytes, func(_ *dfs.File, _ error) {
				launch()
			})
		}
		for i := 0; i < parallel; i++ {
			launch()
		}
	})
}

// NodeChurn removes and adds workers during the job phase: at every Leave
// offset the highest-id surviving worker fails (its replicas are lost and
// repaired by the replication monitor, when one is attached), and at every
// Join offset a fresh worker with the given spec joins. At least MinNodes
// workers always survive.
type NodeChurn struct {
	Leave    []time.Duration
	Join     []time.Duration
	Spec     storage.NodeSpec
	Slots    int
	MinNodes int
}

// Name implements Perturbation.
func (n NodeChurn) Name() string { return "node-churn" }

// Install implements Perturbation.
func (n NodeChurn) Install(rp *Replay) {
	minNodes := n.MinNodes
	if minNodes < 2 {
		minNodes = 2
	}
	for _, at := range n.Leave {
		rp.Engine.Schedule(at, func() {
			nodes := rp.Cluster.Nodes()
			if len(nodes) <= minNodes {
				return
			}
			// Deterministic victim: the highest-id worker still alive.
			victim := nodes[0]
			for _, nd := range nodes[1:] {
				if nd.ID() > victim.ID() {
					victim = nd
				}
			}
			rp.FS.FailNode(victim)
		})
	}
	for _, at := range n.Join {
		rp.Engine.Schedule(at, func() {
			rp.FS.AddNode(n.Spec, n.Slots)
		})
	}
}
