package scenario

import (
	"testing"

	"octostore/internal/dfs"
)

// BenchmarkReplay measures full scenario replay throughput — trace
// generation, preload, job execution, policy work, and the every-event
// invariant checker — reporting replayed simulation events per second.
func BenchmarkReplay(b *testing.B) {
	sc := HotSetDrift()
	sys := System{Name: "XGB", Mode: dfs.ModeOctopus, Down: "xgb", Up: "xgb"}
	var events uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(sc, sys, Options{Fast: true, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkReplayUnchecked is the same replay with the invariant checker
// sampled at 1/1000 events: the difference against BenchmarkReplay is the
// cost of always-on checking.
func BenchmarkReplayUnchecked(b *testing.B) {
	sc := HotSetDrift()
	sys := System{Name: "XGB", Mode: dfs.ModeOctopus, Down: "xgb", Up: "xgb"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(sc, sys, Options{Fast: true, Seed: 1, CheckEvery: 1000, DeepCheckEvery: -1}); err != nil {
			b.Fatal(err)
		}
	}
}
