// Package sim provides a deterministic discrete-event simulation engine and
// the virtual clock that drives every other component in octostore.
//
// All simulation state advances by processing events in timestamp order.
// Components never sleep or consult the wall clock; instead they schedule
// callbacks on an Engine and read the current virtual time from its Clock.
// This allows a six-hour cluster workload to be replayed in milliseconds and
// makes every run exactly reproducible for a given seed.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Clock exposes the current virtual time. Components that only need to read
// time (policies, trackers, metrics) should depend on Clock, not Engine.
type Clock interface {
	// Now returns the current virtual time.
	Now() time.Time
}

// Event is a scheduled callback. Events with equal timestamps fire in the
// order they were scheduled (FIFO), which keeps runs deterministic.
type Event struct {
	at   time.Time
	seq  uint64
	fn   func()
	dead bool
	idx  int
}

// Cancel prevents a pending event from firing. Cancelling an already-fired
// or already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.dead = true
	}
}

// At returns the virtual time the event is scheduled for.
func (e *Event) At() time.Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; the simulation model is sequential by design (determinism
// is worth more than parallelism at this scale).
type Engine struct {
	now     time.Time
	seq     uint64
	events  eventHeap
	stopped bool
	fired   uint64
	onEvent func()
}

// Epoch is the virtual time at which every new Engine starts. The concrete
// date is arbitrary; only durations matter to the simulation.
var Epoch = time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)

// NewEngine returns an engine whose clock starts at Epoch.
func NewEngine() *Engine {
	return &Engine{now: Epoch}
}

// Now implements Clock.
func (e *Engine) Now() time.Time { return e.now }

// Fired reports how many events have been processed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are currently scheduled (including
// cancelled events that have not yet been discarded).
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn after delay of virtual time. A negative delay is treated
// as zero. It returns the Event so the caller may cancel it.
func (e *Engine) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleAt(e.now.Add(delay), fn)
}

// ScheduleAt runs fn at the given virtual time. Times in the past are
// clamped to the current time.
func (e *Engine) ScheduleAt(at time.Time, fn func()) *Event {
	if fn == nil {
		panic("sim: ScheduleAt called with nil callback")
	}
	if at.Before(e.now) {
		at = e.now
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// Every schedules fn to run repeatedly with the given period, starting one
// period from now. The returned Ticker can be stopped. A period <= 0 panics.
func (e *Engine) Every(period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: Every called with non-positive period %v", period))
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.schedule()
	return t
}

// Ticker re-schedules a callback at a fixed virtual period until stopped.
type Ticker struct {
	engine  *Engine
	period  time.Duration
	fn      func()
	pending *Event
	stopped bool
}

func (t *Ticker) schedule() {
	t.pending = t.engine.Schedule(t.period, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.schedule()
		}
	})
}

// Stop cancels future ticks. It is safe to call multiple times.
func (t *Ticker) Stop() {
	t.stopped = true
	t.pending.Cancel()
}

// SetEventHook installs fn to run after every fired event, regardless of
// which loop (Step, Run, RunUntil, or a component's private drain loop)
// processed it. The scenario replayer uses it to validate system invariants
// at event boundaries. A nil fn removes the hook. The hook must not schedule
// events or re-enter the engine.
func (e *Engine) SetEventHook(fn func()) { e.onEvent = fn }

// Step processes the single earliest pending event. It reports false when no
// events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.dead {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		if e.onEvent != nil {
			e.onEvent()
		}
		return true
	}
	return false
}

// Run processes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil processes events with timestamps <= deadline and then advances
// the clock to exactly the deadline.
func (e *Engine) RunUntil(deadline time.Time) {
	e.stopped = false
	for !e.stopped {
		if len(e.events) == 0 {
			break
		}
		next := e.peek()
		if next == nil {
			break
		}
		if next.at.After(deadline) {
			break
		}
		e.Step()
	}
	if e.now.Before(deadline) {
		e.now = deadline
	}
}

// RunFor is shorthand for RunUntil(Now().Add(d)).
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now.Add(d)) }

// Stop halts Run/RunUntil after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

func (e *Engine) peek() *Event {
	for len(e.events) > 0 {
		if e.events[0].dead {
			heap.Pop(&e.events)
			continue
		}
		return e.events[0]
	}
	return nil
}

// Since returns the virtual duration elapsed since t.
func (e *Engine) Since(t time.Time) time.Duration { return e.now.Sub(t) }

// Seconds returns the virtual seconds elapsed since the epoch.
func (e *Engine) Seconds() float64 { return e.now.Sub(Epoch).Seconds() }

// ManualClock is a trivial Clock for unit tests that do not need an event
// queue. The zero value starts at Epoch.
type ManualClock struct {
	t time.Time
}

// NewManualClock returns a ManualClock starting at Epoch.
func NewManualClock() *ManualClock { return &ManualClock{t: Epoch} }

// Now implements Clock.
func (c *ManualClock) Now() time.Time {
	if c.t.IsZero() {
		c.t = Epoch
	}
	return c.t
}

// Advance moves the clock forward by d (backwards moves are ignored).
func (c *ManualClock) Advance(d time.Duration) {
	if d > 0 {
		c.t = c.Now().Add(d)
	}
}

// Set moves the clock to t if t is not before the current time.
func (c *ManualClock) Set(t time.Time) {
	if t.After(c.Now()) {
		c.t = t
	}
}

// InfiniteFuture is a timestamp far beyond any simulated horizon, used as a
// sentinel for "no completion scheduled".
var InfiniteFuture = Epoch.Add(time.Duration(math.MaxInt64 / 4))

// Nanos converts a virtual timestamp to nanoseconds since Epoch. Components
// that share state across engines (the storage data plane's per-device
// busy-until horizons) store virtual instants as these integers so they can
// be advanced with atomic operations; time.Time itself is multi-word and
// cannot be read or CASed atomically.
func Nanos(t time.Time) int64 { return t.Sub(Epoch).Nanoseconds() }

// AtNanos is the inverse of Nanos.
func AtNanos(ns int64) time.Time { return Epoch.Add(time.Duration(ns)) }
