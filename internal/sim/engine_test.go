package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineStartsAtEpoch(t *testing.T) {
	e := NewEngine()
	if !e.Now().Equal(Epoch) {
		t.Fatalf("Now() = %v, want %v", e.Now(), Epoch)
	}
}

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(3*time.Second, func() { got = append(got, 3) })
	e.Schedule(1*time.Second, func() { got = append(got, 1) })
	e.Schedule(2*time.Second, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now().Sub(Epoch) != 3*time.Second {
		t.Fatalf("final time = %v", e.Now().Sub(Epoch))
	}
}

func TestEqualTimestampsFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(time.Second, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelIdempotent(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(time.Second, func() {})
	ev.Cancel()
	ev.Cancel() // must not panic
	e.Run()
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(-5*time.Second, func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("event with negative delay did not fire")
	}
	if !e.Now().Equal(Epoch) {
		t.Fatalf("clock moved backwards: %v", e.Now())
	}
}

func TestScheduleAtPastClamped(t *testing.T) {
	e := NewEngine()
	e.Schedule(10*time.Second, func() {
		e.ScheduleAt(Epoch, func() {}) // in the past
	})
	e.Run()
	if e.Now().Sub(Epoch) != 10*time.Second {
		t.Fatalf("final time = %v", e.Now().Sub(Epoch))
	}
}

func TestRunUntilAdvancesToDeadline(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(time.Second, func() { count++ })
	e.Schedule(time.Hour, func() { count++ })
	e.RunUntil(Epoch.Add(time.Minute))
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	if e.Now().Sub(Epoch) != time.Minute {
		t.Fatalf("time = %v, want 1m", e.Now().Sub(Epoch))
	}
	// The far event should still be pending.
	e.Run()
	if count != 2 {
		t.Fatalf("count after Run = %d, want 2", count)
	}
}

func TestRunForRelative(t *testing.T) {
	e := NewEngine()
	e.RunFor(time.Minute)
	e.RunFor(time.Minute)
	if got := e.Now().Sub(Epoch); got != 2*time.Minute {
		t.Fatalf("time = %v, want 2m", got)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var got []time.Duration
	e.Schedule(time.Second, func() {
		got = append(got, e.Since(Epoch))
		e.Schedule(time.Second, func() {
			got = append(got, e.Since(Epoch))
		})
	})
	e.Run()
	if len(got) != 2 || got[0] != time.Second || got[1] != 2*time.Second {
		t.Fatalf("got %v", got)
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	ticks := 0
	tk := e.Every(time.Minute, func() {
		ticks++
		if ticks == 5 {
			e.Stop()
		}
	})
	e.Run()
	tk.Stop()
	if ticks != 5 {
		t.Fatalf("ticks = %d, want 5", ticks)
	}
	if got := e.Since(Epoch); got != 5*time.Minute {
		t.Fatalf("time = %v, want 5m", got)
	}
}

func TestTickerStopPreventsFutureTicks(t *testing.T) {
	e := NewEngine()
	ticks := 0
	tk := e.Every(time.Minute, func() { ticks++ })
	e.Schedule(150*time.Second, func() { tk.Stop() })
	e.RunUntil(Epoch.Add(time.Hour))
	if ticks != 2 {
		t.Fatalf("ticks = %d, want 2", ticks)
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(time.Second, func() { count++; e.Stop() })
	e.Schedule(2*time.Second, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	e.Run() // resumes
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestFiredAndPendingCounters(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 4; i++ {
		e.Schedule(time.Duration(i)*time.Second, func() {})
	}
	if e.Pending() != 4 {
		t.Fatalf("Pending = %d, want 4", e.Pending())
	}
	e.Run()
	if e.Fired() != 4 {
		t.Fatalf("Fired = %d, want 4", e.Fired())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", e.Pending())
	}
}

func TestManualClock(t *testing.T) {
	c := NewManualClock()
	if !c.Now().Equal(Epoch) {
		t.Fatalf("manual clock start = %v", c.Now())
	}
	c.Advance(time.Hour)
	if c.Now().Sub(Epoch) != time.Hour {
		t.Fatalf("after advance: %v", c.Now().Sub(Epoch))
	}
	c.Advance(-time.Hour) // ignored
	if c.Now().Sub(Epoch) != time.Hour {
		t.Fatal("negative advance moved clock")
	}
	c.Set(Epoch) // ignored, in past
	if c.Now().Sub(Epoch) != time.Hour {
		t.Fatal("Set moved clock backwards")
	}
	c.Set(Epoch.Add(2 * time.Hour))
	if c.Now().Sub(Epoch) != 2*time.Hour {
		t.Fatal("Set failed to move clock forwards")
	}
}

func TestZeroValueManualClock(t *testing.T) {
	var c ManualClock
	if !c.Now().Equal(Epoch) {
		t.Fatalf("zero manual clock = %v", c.Now())
	}
}

// Property: no matter the (non-negative) delays scheduled, events fire in
// non-decreasing time order and the engine clock never moves backwards.
func TestPropertyMonotonicTime(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var last time.Time = Epoch
		ok := true
		for _, d := range delays {
			e.Schedule(time.Duration(d)*time.Millisecond, func() {
				if e.Now().Before(last) {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: scheduling inside callbacks preserves ordering: a callback that
// schedules at +d always runs at parent time + d.
func TestPropertyNestedDelay(t *testing.T) {
	f := func(a, b uint16) bool {
		e := NewEngine()
		da := time.Duration(a) * time.Millisecond
		db := time.Duration(b) * time.Millisecond
		var inner time.Time
		e.Schedule(da, func() {
			parent := e.Now()
			e.Schedule(db, func() { inner = e.Now() })
			_ = parent
		})
		e.Run()
		return inner.Equal(Epoch.Add(da + db))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(time.Duration(i%1000)*time.Microsecond, func() {})
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}
