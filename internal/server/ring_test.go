package server

import (
	"sync"
	"testing"
	"time"

	"octostore/internal/dfs"
)

func TestEventRingFIFO(t *testing.T) {
	r := newEventRing(8)
	if !r.empty() {
		t.Fatal("fresh ring not empty")
	}
	for i := 0; i < 8; i++ {
		if !r.push(accessEvent{id: dfs.FileID(i)}) {
			t.Fatalf("push %d failed on non-full ring", i)
		}
	}
	if r.push(accessEvent{id: 99}) {
		t.Fatal("push succeeded on full ring")
	}
	if r.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", r.Dropped())
	}
	for i := 0; i < 8; i++ {
		ev, ok := r.pop()
		if !ok || ev.id != dfs.FileID(i) {
			t.Fatalf("pop %d: got (%v, %v)", i, ev.id, ok)
		}
	}
	if _, ok := r.pop(); ok {
		t.Fatal("pop succeeded on empty ring")
	}
	// Wrap-around: slots must be reusable after a full lap.
	for lap := 0; lap < 3; lap++ {
		for i := 0; i < 5; i++ {
			if !r.push(accessEvent{id: dfs.FileID(lap*10 + i)}) {
				t.Fatalf("lap %d push %d failed", lap, i)
			}
		}
		for i := 0; i < 5; i++ {
			ev, ok := r.pop()
			if !ok || ev.id != dfs.FileID(lap*10+i) {
				t.Fatalf("lap %d pop %d: got (%v, %v)", lap, i, ev.id, ok)
			}
		}
	}
}

// TestEventRingConcurrentProducers hammers the ring from many producers
// while a single consumer drains; pushed-minus-dropped must equal consumed,
// with no duplicates (run under -race in CI).
func TestEventRingConcurrentProducers(t *testing.T) {
	const (
		producers = 8
		perProd   = 5000
	)
	r := newEventRing(1024)
	var wg sync.WaitGroup
	pushed := make([]int64, producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				// Encode producer and sequence so duplicates are detectable.
				if r.push(accessEvent{id: dfs.FileID(p*perProd + i)}) {
					pushed[p]++
				}
			}
		}(p)
	}
	done := make(chan struct{})
	seen := make(map[dfs.FileID]bool, producers*perProd)
	var consumed int64
	go func() {
		defer close(done)
		idle := 0
		for idle < 250 {
			ev, ok := r.pop()
			if !ok {
				select {
				case <-r.wake:
					idle = 0
				case <-time.After(time.Millisecond):
					idle++
				}
				continue
			}
			if seen[ev.id] {
				t.Errorf("duplicate event %d", ev.id)
				return
			}
			seen[ev.id] = true
			consumed++
			idle = 0
		}
	}()
	wg.Wait()
	<-done
	var total int64
	for _, n := range pushed {
		total += n
	}
	if consumed != total {
		t.Fatalf("consumed %d events, producers recorded %d successful pushes (dropped %d)",
			consumed, total, r.Dropped())
	}
	if r.Dropped()+total != producers*perProd {
		t.Fatalf("dropped %d + pushed %d != offered %d", r.Dropped(), total, producers*perProd)
	}
}

func TestNSShardsBasics(t *testing.T) {
	s := newNSShards(16)
	cases := []struct{ path, dir, name string }{
		{"/a/b/c", "/a/b", "c"},
		{"/top", "/", "top"},
		{"/x/y", "/x", "y"},
	}
	for _, c := range cases {
		dir, name := parentOf(c.path)
		if dir != c.dir || name != c.name {
			t.Fatalf("parentOf(%q) = (%q, %q), want (%q, %q)", c.path, dir, name, c.dir, c.name)
		}
	}
	h1 := &handle{id: 1, path: "/a/b/c", size: 10}
	h2 := &handle{id: 2, path: "/a/b/d", size: 20}
	s.put(h1)
	s.put(h2)
	if got, ok := s.get("/a/b/c"); !ok || got != h1 {
		t.Fatal("get after put failed")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if got := s.list("/a/b"); len(got) != 2 || got[0] != "c" || got[1] != "d" {
		t.Fatalf("list = %v", got)
	}
	s.remove("/a/b/c")
	if _, ok := s.get("/a/b/c"); ok {
		t.Fatal("get after remove succeeded")
	}
	if got := s.list("/a/b"); len(got) != 1 || got[0] != "d" {
		t.Fatalf("list after remove = %v", got)
	}
	// Re-put of the same path must not double-count.
	s.put(h2)
	if s.Len() != 1 {
		t.Fatalf("Len after re-put = %d, want 1", s.Len())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile not zero")
	}
	for i := 0; i < 90; i++ {
		h.Observe(1 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	if p50 < 500*time.Nanosecond || p50 > 2*time.Microsecond {
		t.Fatalf("p50 = %v, want ~1µs", p50)
	}
	if p99 < 500*time.Microsecond || p99 > 2*time.Millisecond {
		t.Fatalf("p99 = %v, want ~1ms", p99)
	}
	if p99 <= p50 {
		t.Fatalf("p99 %v <= p50 %v", p99, p50)
	}
}
