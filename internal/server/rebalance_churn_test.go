package server_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"octostore/internal/cluster"
	"octostore/internal/core"
	"octostore/internal/dfs"
	"octostore/internal/ml"
	"octostore/internal/policy"
	"octostore/internal/server"
	"octostore/internal/storage"
)

// TestRebalanceSurvivesChurn is the rebalancer's race-suite acceptance test
// (run under -race): tagged clients from two tenants hammer a skewed
// workload — most traffic concentrated on eight directories that all hash
// to one shard — with the rebalancer ticking aggressively, while a worker
// fails on every shard and a fresh one joins. Live subtree migrations
// therefore interleave with membership churn, mid-epoch creates and
// deletes, and quota borrows. At quiescence the invariant suite must be
// clean, every surviving shared file must still serve, and the run must
// actually have migrated (vacuity guard).
func TestRebalanceSurvivesChurn(t *testing.T) {
	const (
		shards       = 4
		clients      = 8
		hotDirCount  = 8
		hotPerDir    = 6
		opsPerClient = 400
	)
	hotDirs := collidingHotDirs(hotDirCount, shards)
	if len(hotDirs) != hotDirCount {
		t.Fatalf("found %d colliding dirs, want %d", len(hotDirs), hotDirCount)
	}
	tenants := []server.TenantConfig{
		{ID: 1, Weight: 3},
		{ID: 2, Weight: 1},
	}
	srv, err := server.NewSharded(server.ShardedConfig{
		Shards: shards,
		Cluster: cluster.Config{
			Workers: 5, SlotsPerNode: 4, Spec: servedWorkerSpec(),
		},
		DFS: dfs.Config{Mode: dfs.ModeOctopus, Seed: 11, ClientRate: 2000e6},
		Build: func(_ int, fs *dfs.FileSystem) (*core.Manager, error) {
			ctx := core.NewContext(fs, core.DefaultConfig())
			u, err := policy.NewUpgrade("osa", ctx, ml.DefaultLearnerConfig())
			if err != nil {
				return nil, err
			}
			return core.NewManager(ctx, nil, u), nil
		},
		Quota: server.QuotaConfig{
			InitialFraction:   0.5,
			BorrowChunk:       16 * storage.MB,
			ReconcileInterval: 20 * time.Second,
		},
		Inner: server.Config{
			TimeScale:    240,
			PaceInterval: time.Millisecond,
			Tenants:      tenants,
			Executor: server.ExecutorConfig{
				WorkersPerTier:  2,
				QueueDepth:      32,
				BudgetBytes:     [3]int64{256 * storage.MB, 1 * storage.GB, 2 * storage.GB},
				RateBytesPerSec: [3]float64{float64(64 * storage.MB), float64(128 * storage.MB), float64(256 * storage.MB)},
			},
		},
		Rebalance: server.RebalanceConfig{
			Enabled:  true,
			Interval: 100 * time.Millisecond, // virtual; ~sub-ms wall at this timescale
			HotRatio: 1.2,
			MinOps:   64,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()

	tenantOf := func(c int) storage.TenantID { return storage.TenantID(1 + c%2) }
	shared := make([]string, 0, hotDirCount*hotPerDir)
	for _, dir := range hotDirs {
		for i := 0; i < hotPerDir; i++ {
			shared = append(shared, fmt.Sprintf("%s/f%03d", dir, i))
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, len(shared))
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + c)))
			for i := c; i < len(shared); i += clients {
				size := (16 + rng.Int63n(48)) * storage.MB
				if err := srv.CreateAs(shared[i], size, tenantOf(c)); err != nil {
					errCh <- fmt.Errorf("preload %s: %w", shared[i], err)
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	stopChurn := make(chan struct{})
	var churnWG sync.WaitGroup
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		select {
		case <-time.After(40 * time.Millisecond):
		case <-stopChurn:
			return
		}
		victim := -1
		srv.Exec(func(shard int, fs *dfs.FileSystem) {
			if shard != 0 {
				return
			}
			for _, n := range fs.Cluster().Nodes() {
				if n.ID() > victim {
					victim = n.ID()
				}
			}
		})
		srv.FailNode(victim)
		select {
		case <-time.After(40 * time.Millisecond):
		case <-stopChurn:
			return
		}
		srv.AddNode(servedWorkerSpec(), 4)
	}()

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := tenantOf(c)
			rng := rand.New(rand.NewSource(int64(7000 + c)))
			zipf := rand.NewZipf(rng, 1.3, 1, uint64(len(shared)-1))
			var own []string
			for i := 0; i < opsPerClient; i++ {
				switch r := rng.Float64(); {
				case r < 0.78:
					// Shared hot files are never deleted: any miss here is a
					// hole in the double-read epoch.
					if _, err := srv.AccessAs(shared[zipf.Uint64()], tenant); err != nil {
						t.Errorf("client %d access: %v", c, err)
						return
					}
				case r < 0.84:
					if _, err := srv.Stat(shared[rng.Intn(len(shared))]); err != nil {
						t.Errorf("client %d stat: %v", c, err)
						return
					}
				case r < 0.94 || len(own) == 0:
					// Half the private files land inside the hot subtrees, so
					// creates and deletes flow through migrating routes.
					var path string
					if rng.Intn(2) == 0 {
						path = fmt.Sprintf("%s/c%dp%04d", hotDirs[rng.Intn(hotDirCount)], c, i)
					} else {
						path = fmt.Sprintf("/scratch/c%d/f%04d", c, i)
					}
					if err := srv.CreateAs(path, (4+rng.Int63n(28))*storage.MB, tenant); err != nil {
						t.Errorf("client %d create %s: %v", c, path, err)
						return
					}
					own = append(own, path)
				default:
					path := own[len(own)-1]
					own = own[:len(own)-1]
					if err := srv.Delete(path); err != nil && !errors.Is(err, dfs.ErrBusy) {
						t.Errorf("client %d delete %s: %v", c, path, err)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(stopChurn)
	churnWG.Wait()

	srv.Flush()
	if violations := srv.Verify(); len(violations) > 0 {
		t.Fatalf("invariants violated after rebalance churn: %v", violations)
	}
	for _, p := range shared {
		if !srv.Exists(p) {
			t.Fatalf("shared file %s lost", p)
		}
	}
	st := srv.RebalanceStats()
	if st.Started == 0 || st.FilesMoved == 0 {
		t.Fatalf("churn run never migrated; the race suite is vacuous: %+v", st)
	}
	srv.Close()
	if violations := srv.Verify(); len(violations) > 0 {
		t.Fatalf("invariants violated after close: %v", violations)
	}
}
