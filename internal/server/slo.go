package server

import (
	"sync/atomic"
	"time"

	"octostore/internal/obs"
	"octostore/internal/storage"
)

// This file is the serving layer's multi-tenant control plane: tenant
// declarations, per-tenant read-latency tracking, and the latency-SLO
// admission controller that sheds background movement when a tenant drifts
// past its target.
//
// The controller closes the feedback loop the paper's architecture implies
// for shared clusters: the data plane exposes tier-real read latencies per
// tenant (AccessAtAs observes them), and the only knob the serving layer
// owns that relieves device pressure without touching client traffic is
// background movement admission (the executor's token buckets). Each
// controller tick diffs the per-tenant histogram against the previous tick,
// computes the window's p99, and on a breach defers executor admissions for
// a configurable window — movement stays queued, clients keep their
// bandwidth.

// TenantConfig declares one tenant to the serving layer.
type TenantConfig struct {
	// ID tags the tenant's traffic end to end (plane requests, ledger
	// reservations, latency histograms).
	ID storage.TenantID
	// Weight is the tenant's fair share on the data plane. The serving
	// layer does not schedule by it directly — the plane does — but callers
	// keep one tenant table and mirror it into storage.PlaneConfig.Tenants.
	Weight float64
	// ReadSLO is the tenant's target read p99 (tier-real virtual latency).
	// Zero exempts the tenant from SLO control.
	ReadSLO time.Duration
	// QuotaBytes caps the tenant's cumulative capacity borrows per tier in
	// the sharded layer's ledger (0 = unlimited).
	QuotaBytes [3]int64
}

// PlaneTenants converts a tenant table to the data plane's weight list, so
// callers configure tenants once and derive both sides from it.
func PlaneTenants(tenants []TenantConfig) []storage.TenantWeight {
	out := make([]storage.TenantWeight, 0, len(tenants))
	for _, t := range tenants {
		out = append(out, storage.TenantWeight{ID: t.ID, Weight: t.Weight})
	}
	return out
}

// SLOConfig tunes the admission controller.
type SLOConfig struct {
	// Interval is the virtual-time check period (default 5s).
	Interval time.Duration
	// MinSamples is the fewest read observations a window needs before its
	// p99 is judged (default 16); quieter windows are skipped, which also
	// lets a Flush drain deferred movement once clients stop.
	MinSamples int64
	// DeferWindow is how far each breach pushes movement admission out
	// (default 2×Interval).
	DeferWindow time.Duration
}

func (c *SLOConfig) applyDefaults() {
	if c.Interval <= 0 {
		c.Interval = 5 * time.Second
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 16
	}
	if c.DeferWindow <= 0 {
		c.DeferWindow = 2 * c.Interval
	}
}

// SLOStats snapshots the admission controller.
type SLOStats struct {
	// Checks counts windows with enough samples to judge.
	Checks int64
	// Breaches counts judged windows whose p99 exceeded the target.
	Breaches int64
}

func (s *SLOStats) add(o SLOStats) {
	s.Checks += o.Checks
	s.Breaches += o.Breaches
}

// sloWatch is one tenant's window state: the histogram snapshot at the last
// tick, diffed each tick for the window's p99.
type sloWatch struct {
	slot   int
	target time.Duration
	prev   [64]int64
}

// sloController runs as an engine ticker on the core loop.
type sloController struct {
	s        *Server
	cfg      SLOConfig
	watch    []sloWatch
	checks   atomic.Int64
	breaches atomic.Int64
}

func newSLOController(s *Server, cfg SLOConfig, tenants []TenantConfig) *sloController {
	cfg.applyDefaults()
	c := &sloController{s: s, cfg: cfg}
	for _, t := range tenants {
		if t.ReadSLO > 0 {
			c.watch = append(c.watch, sloWatch{slot: s.tenantSlot[t.ID], target: t.ReadSLO})
		}
	}
	if len(c.watch) == 0 {
		return nil
	}
	return c
}

// tick judges each watched tenant's last window and defers movement when
// any breached. Core loop only (engine ticker).
func (c *sloController) tick() {
	breach := false
	for i := range c.watch {
		w := &c.watch[i]
		cur := c.s.tenantLat[w.slot].Counts()
		var delta [64]int64
		var n int64
		for b := range cur {
			delta[b] = cur[b] - w.prev[b]
			n += delta[b]
		}
		w.prev = cur
		if n < c.cfg.MinSamples {
			continue
		}
		c.checks.Add(1)
		if obs.QuantileOf(delta, 0.99) > w.target {
			breach = true
			c.breaches.Add(1)
		}
	}
	if breach {
		c.s.exec.Defer(c.s.engine.Now().Add(c.cfg.DeferWindow))
	}
}

func (c *sloController) stats() SLOStats {
	return SLOStats{Checks: c.checks.Load(), Breaches: c.breaches.Load()}
}
