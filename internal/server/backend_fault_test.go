package server

import (
	"errors"
	"testing"

	"octostore/internal/backend"
	"octostore/internal/core"
	"octostore/internal/storage"
)

// TestInjectedCopyFailureShedsMoveThenRetries drives the executor against a
// fault-injecting backend: the injected physical copy failure must surface
// through the executor's failed path, leave the ledger and reservations
// exactly as before the move, and a later sweep's re-enqueue of the same
// file (faults disarmed) must succeed — the control plane treats a backend
// I/O error like any other transient movement failure.
func TestInjectedCopyFailureShedsMoveThenRetries(t *testing.T) {
	engine, fs, files := executorFixture(t, 2, 64*storage.MB)
	faulty := backend.NewFaulty(backend.Sim{})
	fs.SetBackend(faulty)
	ex := NewMovementExecutor(fs, ExecutorConfig{WorkersPerTier: 2, QueueDepth: 8})

	ssdBefore, _ := fs.Cluster().TierUsage(storage.SSD)
	hddBefore, _ := fs.Cluster().TierUsage(storage.HDD)

	faulty.FailNext(storage.SSD, backend.OpWrite, 1)
	var got error
	ex.Enqueue(core.MoveRequest{File: files[0], From: storage.HDD, To: storage.SSD,
		Done: func(err error) { got = err }})
	engine.Run()

	if !errors.Is(got, backend.ErrInjected) {
		t.Fatalf("move outcome = %v, want injected backend fault", got)
	}
	if st := ex.Stats().PerTier[storage.SSD]; st.Failed != 1 || st.Completed != 0 {
		t.Fatalf("executor stats after injected failure = %+v", st)
	}
	if files[0].HasReplicaOn(storage.SSD) {
		t.Fatal("failed move left an SSD replica behind")
	}
	// Ledger accounting must be untouched: the aborted copy released every
	// reservation it took.
	if ssd, _ := fs.Cluster().TierUsage(storage.SSD); ssd != ssdBefore {
		t.Fatalf("SSD usage leaked: %d -> %d", ssdBefore, ssd)
	}
	if hdd, _ := fs.Cluster().TierUsage(storage.HDD); hdd != hddBefore {
		t.Fatalf("HDD usage changed on failed move: %d -> %d", hddBefore, hdd)
	}
	if err := fs.CheckAccounting(); err != nil {
		t.Fatal(err)
	}
	if err := fs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if n := faulty.Injected(storage.SSD, backend.OpWrite); n != 1 {
		t.Fatalf("injected count = %d, want 1", n)
	}

	// A later sweep retries the same move with the transient fault gone.
	got = errors.New("not called")
	ex.Enqueue(core.MoveRequest{File: files[0], From: storage.HDD, To: storage.SSD,
		Done: func(err error) { got = err }})
	engine.Run()
	if got != nil {
		t.Fatalf("retry outcome = %v, want success", got)
	}
	if !files[0].HasReplicaOn(storage.SSD) {
		t.Fatal("retried move did not place an SSD replica")
	}
	if st := ex.Stats().PerTier[storage.SSD]; st.Completed != 1 || st.Failed != 1 {
		t.Fatalf("executor stats after retry = %+v", st)
	}
	if err := fs.CheckAccounting(); err != nil {
		t.Fatal(err)
	}
}

// TestInjectedReadFailureAbortsCopy exercises the source side of the copy:
// a failed physical read of the source replica must abort the replication
// with clean accounting, same as a destination write failure.
func TestInjectedReadFailureAbortsCopy(t *testing.T) {
	engine, fs, files := executorFixture(t, 1, 64*storage.MB)
	faulty := backend.NewFaulty(backend.Sim{})
	fs.SetBackend(faulty)
	ex := NewMovementExecutor(fs, ExecutorConfig{WorkersPerTier: 1, QueueDepth: 4})

	faulty.FailNext(storage.HDD, backend.OpRead, 1)
	var got error
	ex.Enqueue(core.MoveRequest{File: files[0], From: storage.HDD, To: storage.Memory,
		Done: func(err error) { got = err }})
	engine.Run()
	if !errors.Is(got, backend.ErrInjected) {
		t.Fatalf("move outcome = %v, want injected backend fault", got)
	}
	if mem, _ := fs.Cluster().TierUsage(storage.Memory); mem != 0 {
		t.Fatalf("memory usage leaked on aborted copy: %d", mem)
	}
	if err := fs.CheckAccounting(); err != nil {
		t.Fatal(err)
	}
}
