package server

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"octostore/internal/backend"
	"octostore/internal/cluster"
	"octostore/internal/core"
	"octostore/internal/dfs"
	"octostore/internal/obs"
	"octostore/internal/sim"
	"octostore/internal/storage"
)

// This file implements the sharded simulation core: the engine is
// partitioned into N namespace shards, each owning a full private stack —
// discrete-event engine, cluster view, dfs.FileSystem, core.Manager with
// its CandidateIndex and tracker, access-event ring, and movement executor
// — drained by its own dedicated shard loop (an inner Server). Mutations
// and policy ticks in different shards never share a goroutine, a lock, or
// an engine, so structural write throughput scales with cores instead of
// serializing through one writer.
//
// What cannot be partitioned is physical capacity and node membership:
//
//   - Capacity lives behind the sharded accounting layer. Each shard's
//     cluster view carries a soft quota (a slice of every device's physical
//     capacity); the remainder sits in a global cluster.TierLedger pool.
//     Shards grow their quota on demand through the ledger's two-phase
//     reserve/commit protocol (see shardQuota) and reconcile unused quota
//     back on a virtual-time cadence, so capacity migrates to the shards
//     that need it while dfs.CheckAccounting holds inside every shard and
//     the ledger's conservation equation holds globally at every step.
//   - Node membership changes fan out: FailNode/AddNode apply to every
//     shard's view (same node ids everywhere), and the capacity that
//     left/joined is settled against the ledger totals.
//   - Device bandwidth lives behind the storage.DataPlane: every shard's
//     view of one physical device shares that device's virtual-clock
//     channel (keyed by the device ID, identical across views), so serve
//     reads and movement in different shards contend for the physical
//     channel the same way capacity contends through the ledger. The plane
//     rides in on Cluster.Plane, which every shard's view inherits.
//
// Paths route to shards by a hash of the parent directory — the same key
// the inner server stripes its namespace by — so a directory listing stays
// a single-shard operation and files in one directory share a shard.
// shards=1 degenerates to exactly the single-writer serving layer (full
// quota, empty pool, no protocol traffic).

// ShardBuilder wires the policy stack of one shard: given the shard's
// private file system, it returns the shard's manager (nil for unmanaged
// serving). The builder runs during NewSharded, before any loop starts.
type ShardBuilder func(shard int, fs *dfs.FileSystem) (*core.Manager, error)

// ShardedConfig assembles a sharded serving layer.
type ShardedConfig struct {
	// Shards is the number of namespace shards (default 1).
	Shards int
	// Cluster is the GLOBAL topology; every shard sees the same nodes with
	// a quota slice of each device's capacity.
	Cluster cluster.Config
	// DFS configures each shard's file system; Seed is offset by the shard
	// index so placement draws stay decorrelated.
	DFS dfs.Config
	// Build constructs each shard's manager (nil everywhere when omitted).
	Build ShardBuilder
	// Backend, when non-nil, supplies each shard's physical data backend,
	// attached to the shard's file system before its server is built. One
	// instance per shard is required (return distinct roots): block ids are
	// per-FileSystem, so a shared physical namespace would collide.
	Backend func(shard int) backend.Backend
	// Quota tunes the sharded capacity accounting.
	Quota QuotaConfig
	// Inner is the per-shard serving configuration (stripe count, ring,
	// pacing, executor).
	Inner Config
	// Rebalance tunes the dynamic shard rebalancer (default off: static
	// parent-dir-hash routing with no tracking cost).
	Rebalance RebalanceConfig
}

// shard is one partition: a private simulation stack plus its quota agent.
type shard struct {
	idx       int
	engine    *sim.Engine
	cluster   *cluster.Cluster
	fs        *dfs.FileSystem
	mgr       *core.Manager
	srv       *Server
	quota     *shardQuota
	reconcile *sim.Ticker
}

// ShardedServer is the partitioned serving layer. Construct with
// NewSharded, Start it, then any number of goroutines may use the client
// API; shard routing is deterministic by parent directory.
type ShardedServer struct {
	cfg    ShardedConfig
	shards []*shard
	ledger *cluster.TierLedger
	// routes is the rebalancer's COW prefix→shard override table, consulted
	// on every routing decision before the static hash. Nil snapshot (the
	// static-routing steady state) costs one atomic load.
	routes routeTable
	// reb is the dynamic rebalancer (nil unless cfg.Rebalance.Enabled with
	// more than one shard).
	reb *rebalancer
	// nodePooled records, per node id, the slice of that node's physical
	// capacity that went into the ledger's free pool instead of a shard
	// grant, so node loss can take the unclaimed share back out of
	// circulation. Mutated only from the churn API (single caller at a
	// time, like all membership changes).
	nodePooled map[int][3]int64
	// running is true between Start and Close; outside that window Exec
	// touches the shard file systems directly (the loops are stopped, so the
	// caller's goroutine is the only one near them — same contract as the
	// single-writer Server after Close).
	running bool
}

// splitSpec carves one shard's quota slice out of a node spec: each device
// keeps its media and bandwidths but holds floor(capacity*frac/shards)
// bytes. It also reports, per tier, the physical capacity of one full node,
// the slice granted to ONE shard, and the remainder pooled after all shards
// take theirs.
func splitSpec(spec storage.NodeSpec, shards int, frac float64) (shardSpec storage.NodeSpec, nodeTotal, nodeGrant, nodePooled [3]int64) {
	shardSpec = make(storage.NodeSpec, len(spec))
	for i, ds := range spec {
		share := int64(float64(ds.Capacity) * frac / float64(shards))
		shardSpec[i] = ds
		shardSpec[i].Capacity = share
		nodeTotal[ds.Media] += ds.Capacity * int64(ds.Count)
		nodeGrant[ds.Media] += share * int64(ds.Count)
	}
	for t := range nodePooled {
		nodePooled[t] = nodeTotal[t] - nodeGrant[t]*int64(shards)
	}
	return shardSpec, nodeTotal, nodeGrant, nodePooled
}

// NewSharded builds the partitioned stack: per-shard engines, quota-sliced
// cluster views, file systems, managers (via cfg.Build), and inner servers,
// plus the global capacity ledger.
func NewSharded(cfg ShardedConfig) (*ShardedServer, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	cfg.Quota.applyDefaults(cfg.Shards)
	shardSpec, nodeTotal, nodeGrant, nodePooled := splitSpec(cfg.Cluster.Spec, cfg.Shards, cfg.Quota.InitialFraction)

	s := &ShardedServer{cfg: cfg, ledger: cluster.NewTierLedger(), nodePooled: make(map[int][3]int64)}
	workers := int64(cfg.Cluster.Workers)
	for _, m := range storage.AllMedia {
		s.ledger.AddCapacity(m, nodeTotal[m]*workers, nodePooled[m]*workers)
	}
	for _, tc := range cfg.Inner.Tenants {
		for _, m := range storage.AllMedia {
			if tc.QuotaBytes[m] > 0 {
				s.ledger.SetTenantQuota(tc.ID, m, tc.QuotaBytes[m])
			}
		}
	}
	for id := 0; id < cfg.Cluster.Workers; id++ {
		s.nodePooled[id] = nodePooled
	}

	for i := 0; i < cfg.Shards; i++ {
		engine := sim.NewEngine()
		clCfg := cfg.Cluster
		clCfg.Spec = shardSpec
		cl, err := cluster.New(engine, clCfg)
		if err != nil {
			return nil, fmt.Errorf("server: shard %d cluster: %w", i, err)
		}
		fsCfg := cfg.DFS
		fsCfg.Seed += int64(i)
		fs, err := dfs.New(cl, fsCfg)
		if err != nil {
			return nil, fmt.Errorf("server: shard %d fs: %w", i, err)
		}
		if cfg.Backend != nil {
			fs.SetBackend(cfg.Backend(i))
		}
		var mgr *core.Manager
		if cfg.Build != nil {
			if mgr, err = cfg.Build(i, fs); err != nil {
				return nil, fmt.Errorf("server: shard %d build: %w", i, err)
			}
		}
		var baseline [3]int64
		for t := range baseline {
			baseline[t] = nodeGrant[t] * workers
		}
		quota := newShardQuota(s.ledger, cl, cfg.Quota, baseline)
		if mgr != nil {
			// Policies see quota + borrowable pool when sizing decisions;
			// watermarks stay quota-local (soft-quota contract).
			mgr.Context().SetTierHeadroom(s.ledger.FreeBytes)
		}
		innerCfg := cfg.Inner
		// Each inner server labels its metrics and spans with its shard index
		// on the shared hub (innerCfg.Obs rides in on cfg.Inner).
		innerCfg.ObsShard = i
		// Movement destinations borrow quota right before each admitted
		// move, on the shard loop, through the two-phase protocol.
		innerCfg.Executor.PreMove = func(tier storage.Media, bytes int64) {
			quota.EnsureSpread(tier, bytes, 1)
		}
		s.shards = append(s.shards, &shard{
			idx:     i,
			engine:  engine,
			cluster: cl,
			fs:      fs,
			mgr:     mgr,
			srv:     New(fs, mgr, innerCfg),
			quota:   quota,
		})
	}
	if cfg.Rebalance.Enabled && cfg.Shards > 1 {
		s.reb = newRebalancer(s, cfg.Rebalance)
	}
	s.registerObs()
	return s, nil
}

// registerObs publishes the unpartitionable state — the global capacity
// ledger's conservation terms and per-tenant borrow accounts, plus each
// shard's quota-protocol traffic — into the hub's registry. Per-shard
// serving metrics register inside each inner server's Start.
func (s *ShardedServer) registerObs() {
	hub := s.cfg.Inner.Obs
	if hub == nil {
		return
	}
	r := hub.Registry()
	for _, m := range storage.AllMedia {
		m := m
		tier := obs.Labels{"tier": m.String()}
		r.Gauge("octo_ledger_free_bytes", tier, func() float64 { return float64(s.ledger.FreeBytes(m)) })
		r.Gauge("octo_ledger_reserved_bytes", tier, func() float64 { return float64(s.ledger.ReservedBytes(m)) })
		r.Gauge("octo_ledger_total_bytes", tier, func() float64 { return float64(s.ledger.TotalBytes(m)) })
		r.Gauge("octo_ledger_deficit_bytes", tier, func() float64 { return float64(s.ledger.DeficitBytes(m)) })
	}
	r.CounterFunc("octo_ledger_reserves_total", nil, func() float64 { return float64(s.ledger.Reserves()) })
	r.CounterFunc("octo_ledger_commits_total", nil, func() float64 { return float64(s.ledger.Commits()) })
	r.CounterFunc("octo_ledger_aborts_total", nil, func() float64 { return float64(s.ledger.Aborts()) })
	// Per-tenant borrow accounts, dynamic over the configured tenant table.
	tenants := s.cfg.Inner.Tenants
	if len(tenants) > 0 {
		r.Collector(func(emit obs.Emit) {
			for _, tc := range tenants {
				for _, m := range storage.AllMedia {
					l := obs.Labels{"tenant": strconv.Itoa(int(tc.ID)), "tier": m.String()}
					emit("octo_ledger_tenant_committed_bytes", l, "gauge", float64(s.ledger.TenantCommittedBytes(tc.ID, m)))
					emit("octo_ledger_tenant_quota_bytes", l, "gauge", float64(s.ledger.TenantQuota(tc.ID, m)))
				}
			}
		})
	}
	for i, sh := range s.shards {
		sh := sh
		l := obs.Labels{"shard": strconv.Itoa(i)}
		r.CounterFunc("octo_quota_borrows_total", l, func() float64 { return float64(sh.quota.stats().Borrows) })
		r.CounterFunc("octo_quota_borrow_failures_total", l, func() float64 { return float64(sh.quota.stats().BorrowFailures) })
		r.CounterFunc("octo_quota_borrowed_bytes_total", l, func() float64 { return float64(sh.quota.stats().BorrowedBytes) })
		r.CounterFunc("octo_quota_returned_bytes_total", l, func() float64 { return float64(sh.quota.stats().ReturnedBytes) })
	}
	if s.reb != nil {
		reb := s.reb
		r.CounterFunc("octo_rebalance_migrations_started_total", nil, func() float64 { return float64(reb.started.Load()) })
		r.CounterFunc("octo_rebalance_migrations_completed_total", nil, func() float64 { return float64(reb.completed.Load()) })
		r.CounterFunc("octo_rebalance_migrations_aborted_total", nil, func() float64 { return float64(reb.aborted.Load()) })
		r.CounterFunc("octo_rebalance_epoch_flips_total", nil, func() float64 { return float64(reb.flips.Load()) })
		r.CounterFunc("octo_rebalance_files_moved_total", nil, func() float64 { return float64(reb.filesMoved.Load()) })
		r.CounterFunc("octo_rebalance_bytes_moved_total", nil, func() float64 { return float64(reb.bytesMoved.Load()) })
		r.CounterFunc("octo_rebalance_files_superseded_total", nil, func() float64 { return float64(reb.superseded.Load()) })
		r.CounterFunc("octo_rebalance_rehomes_total", nil, func() float64 { return float64(reb.rehomed.Load()) })
		r.Gauge("octo_rebalance_shard_spread", nil, func() float64 { return reb.snapshot().Spread })
		r.Gauge("octo_rebalance_routes", nil, func() float64 { return float64(len(s.routes.entries())) })
	}
}

// NumShards returns the shard count.
func (s *ShardedServer) NumShards() int { return len(s.shards) }

// Clock returns the wall-mapped virtual time of the first shard. Shards
// start within microseconds of each other on the same timescale, so one
// shard's clock serves as the stamping base for all of them.
func (s *ShardedServer) Clock() time.Time { return s.shards[0].srv.Clock() }

// Ledger exposes the global capacity ledger (all reads are atomic).
func (s *ShardedServer) Ledger() *cluster.TierLedger { return s.ledger }

// Start launches every shard: managers, shard loops, pacers, and the quota
// reconciliation tickers.
func (s *ShardedServer) Start() {
	if s.running {
		return
	}
	s.running = true
	for _, sh := range s.shards {
		if sh.mgr != nil {
			sh.mgr.Start()
		}
		sh.srv.Start()
		if s.cfg.Quota.ReconcileInterval > 0 && len(s.shards) > 1 {
			sh := sh
			sh.srv.Exec(func(*dfs.FileSystem) {
				sh.reconcile = sh.engine.Every(s.cfg.Quota.ReconcileInterval, sh.quota.Reconcile)
			})
		}
	}
	if s.reb != nil {
		s.reb.start(s.cfg.Inner.TimeScale)
	}
}

// Close quiesces and stops every shard. Client goroutines must have stopped
// issuing operations first.
func (s *ShardedServer) Close() {
	if !s.running {
		return
	}
	if s.reb != nil {
		// Halt the rebalancer first: a round mid-migration Execs on the
		// shard loops (so they must still be up), and rebalancer.exec reads
		// s.running — the flip below must not race a live round into taking
		// the direct-access path while the loops are still open.
		s.reb.halt()
	}
	s.running = false
	for _, sh := range s.shards {
		sh.srv.Close()
		if sh.reconcile != nil {
			sh.reconcile.Stop() // loop stopped; direct access is safe now
			sh.reconcile = nil
		}
		if sh.mgr != nil {
			sh.mgr.Stop()
		}
	}
}

// canonicalPath returns the routing form of a client path. dfs.CleanPath
// fast-paths already-canonical input without allocating, so routed ops pay
// one scan here and the inner layers' re-cleaning of the now-canonical
// string is free.
func canonicalPath(path string) (string, error) {
	return dfs.CleanPath(path)
}

// RouteShard reports which shard index a directory hashes to under static
// routing with the given shard count — exported so load generators can
// construct colliding subtrees deliberately.
func RouteShard(dir string, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(fnv32(dir) % uint32(shards))
}

// routeDir resolves a directory to its primary shard plus the fallback
// shard reads consult during a migration epoch. The route table overrides
// the hash for whole subtrees: while an entry is migrating, the primary is
// the destination and the fallback is the static hash owner (files not yet
// moved still live there); once committed the fallback is gone. A draining
// entry is the reverse epoch — the subtree is folding back to static
// routing, so the per-dir hash owner is primary again and the old
// destination is the fallback until its copies drain home. Without an
// override — including always when the rebalancer is off — this is exactly
// the static parent-dir hash.
func (s *ShardedServer) routeDir(dir string) (primary, fallback *shard) {
	if len(s.shards) == 1 {
		return s.shards[0], nil
	}
	if e := s.routes.lookup(dir); e != nil {
		owner := s.shards[fnv32(dir)%uint32(len(s.shards))]
		switch e.state {
		case routeMigrating:
			primary = s.shards[e.dst]
			if owner != primary {
				fallback = owner
			}
		case routeDraining:
			primary = owner
			if old := s.shards[e.dst]; old != primary {
				fallback = old
			}
		default: // routeCommitted
			primary = s.shards[e.dst]
		}
		return primary, fallback
	}
	return s.shards[fnv32(dir)%uint32(len(s.shards))], nil
}

// shardOf routes a canonical path by its parent directory, the same key the
// inner namespace stripes by. Writes go to the primary only: new files land
// on the migration destination.
func (s *ShardedServer) shardOf(path string) *shard {
	if len(s.shards) == 1 {
		return s.shards[0]
	}
	dir, _ := parentOf(path)
	primary, _ := s.routeDir(dir)
	return primary
}

// routeFor is shardOf for reads: it also returns the double-read fallback
// and feeds the rebalancer's load tracker.
func (s *ShardedServer) routeFor(path string) (primary, fallback *shard) {
	if len(s.shards) == 1 {
		return s.shards[0], nil
	}
	dir, _ := parentOf(path)
	primary, fallback = s.routeDir(dir)
	if s.reb != nil {
		s.reb.tracker.note(dir, primary.idx)
	}
	return primary, fallback
}

// shardOfDir routes a directory path (for listings).
func (s *ShardedServer) shardOfDir(dir string) *shard {
	primary, _ := s.routeDir(dir)
	return primary
}

// --- Client API ---

// Create writes a file and blocks until its shard's write pipeline commits.
// A capacity failure triggers one quota borrow (growing the shard's lowest
// tier out of the global pool) and one retry, so a shard whose quota ran
// dry admits the write as long as the physical tier has room.
func (s *ShardedServer) Create(path string, size int64) error {
	return s.CreateAs(path, size, storage.DefaultTenant)
}

// CreateAs is Create on behalf of a tenant: the write pipeline's plane
// charges carry the tenant, and the capacity-failure borrow is admitted
// against the tenant's ledger budget — a tenant at quota gets
// dfs.ErrNoCapacity even while the pool has room.
func (s *ShardedServer) CreateAs(path string, size int64, tenant storage.TenantID) error {
	clean, err := canonicalPath(path)
	if err != nil {
		return err
	}
	sh, fallback := s.routeFor(clean)
	// During a migration epoch an unmoved file still lives on the hash
	// owner; creating "over" it on the destination must fail the same way a
	// single shard would.
	if fallback != nil && fallback.srv.Exists(clean) {
		return fmt.Errorf("server: %w: %q", dfs.ErrExists, clean)
	}
	err = sh.srv.CreateAs(clean, size, tenant)
	if err != nil && errors.Is(err, dfs.ErrNoCapacity) {
		borrowed := false
		sh.srv.Exec(func(fs *dfs.FileSystem) { borrowed = sh.quota.EnsureCreateFor(tenant, fs, size) })
		if borrowed {
			err = sh.srv.CreateAs(clean, size, tenant)
		}
	}
	return err
}

// CreateAt submits a creation stamped with an explicit virtual time (replay
// mode) to the owning shard. No borrow-retry: replay traces are expected to
// fit the planned quota or to handle the error themselves.
func (s *ShardedServer) CreateAt(path string, size int64, at time.Time) <-chan error {
	clean, err := canonicalPath(path)
	if err != nil {
		res := make(chan error, 1)
		res <- err
		return res
	}
	sh, fallback := s.routeFor(clean)
	if fallback != nil && fallback.srv.Exists(clean) {
		res := make(chan error, 1)
		res <- fmt.Errorf("server: %w: %q", dfs.ErrExists, clean)
		return res
	}
	return sh.srv.CreateAt(clean, size, at)
}

// CreateAtAs is CreateAt with a tenant identity. Like CreateAt it skips the
// borrow-retry: explicitly stamped traffic handles capacity errors itself.
func (s *ShardedServer) CreateAtAs(path string, size int64, at time.Time, tenant storage.TenantID) <-chan error {
	clean, err := canonicalPath(path)
	if err != nil {
		res := make(chan error, 1)
		res <- err
		return res
	}
	sh, fallback := s.routeFor(clean)
	if fallback != nil && fallback.srv.Exists(clean) {
		res := make(chan error, 1)
		res <- fmt.Errorf("server: %w: %q", dfs.ErrExists, clean)
		return res
	}
	return sh.srv.CreateAtAs(clean, size, at, tenant)
}

// Delete removes a file, blocking for the outcome. During a migration epoch
// the file can live on the primary, the fallback side, or (mid-copy)
// briefly both, so the delete covers both sides: when the primary delete
// succeeds any lingering fallback copy is dropped through the migration-
// teardown path (no second client-deletion stats bump — one logical file,
// one counted delete); when the primary never had the file the delete falls
// through to the fallback, which then counts the one real deletion. That is
// what makes a racing migration honor the delete instead of resurrecting
// the file.
func (s *ShardedServer) Delete(path string) error {
	clean, err := canonicalPath(path)
	if err != nil {
		return err
	}
	primary, fallback := s.routeFor(clean)
	err = primary.srv.Delete(clean)
	if fallback == nil {
		return err
	}
	if err == nil {
		<-fallback.srv.detachAt(clean, fallback.srv.clock())
		return nil
	}
	if errors.Is(err, dfs.ErrNotFound) {
		return fallback.srv.Delete(clean)
	}
	return err
}

// DeleteAt submits a deletion stamped with an explicit virtual time. It
// honors a migration epoch exactly like Delete — primary first, then the
// fallback side is cleared (or, when the primary never had the file,
// deleted) before the result resolves. The two halves are sequenced by a
// combiner goroutine rather than inside either core loop: a fallback op
// enqueued on one shard loop must never block on another loop's result, or
// two opposite-direction deletes could deadlock the loops on each other.
func (s *ShardedServer) DeleteAt(path string, at time.Time) <-chan error {
	clean, err := canonicalPath(path)
	if err != nil {
		res := make(chan error, 1)
		res <- err
		return res
	}
	primary, fallback := s.routeFor(clean)
	pres := primary.srv.DeleteAt(clean, at)
	if fallback == nil {
		return pres
	}
	res := make(chan error, 1)
	go func() {
		perr := <-pres
		switch {
		case perr == nil:
			<-fallback.srv.detachAt(clean, at)
			res <- nil
		case errors.Is(perr, dfs.ErrNotFound):
			res <- <-fallback.srv.DeleteAt(clean, at)
		default:
			res <- perr
		}
	}()
	return res
}

// Access records a client access on the owning shard and returns the
// serving tier. The hot path stays shard-local: route hash, stripe lookup,
// ring push. During a migration epoch the read double-reads — destination
// first, hash owner on a miss — so clients never block on a move.
func (s *ShardedServer) Access(path string) (AccessResult, error) {
	clean, err := canonicalPath(path)
	if err != nil {
		return AccessResult{}, err
	}
	primary, fallback := s.routeFor(clean)
	res, err := primary.srv.Access(clean)
	if fallback != nil && errors.Is(err, dfs.ErrNotFound) {
		return fallback.srv.Access(clean)
	}
	return res, err
}

// AccessAt records an access at an explicit virtual time (replay mode).
func (s *ShardedServer) AccessAt(path string, at time.Time) (AccessResult, error) {
	clean, err := canonicalPath(path)
	if err != nil {
		return AccessResult{}, err
	}
	primary, fallback := s.routeFor(clean)
	res, err := primary.srv.AccessAt(clean, at)
	if fallback != nil && errors.Is(err, dfs.ErrNotFound) {
		return fallback.srv.AccessAt(clean, at)
	}
	return res, err
}

// AccessAs records a tenant's access on the owning shard.
func (s *ShardedServer) AccessAs(path string, tenant storage.TenantID) (AccessResult, error) {
	clean, err := canonicalPath(path)
	if err != nil {
		return AccessResult{}, err
	}
	primary, fallback := s.routeFor(clean)
	res, err := primary.srv.AccessAs(clean, tenant)
	if fallback != nil && errors.Is(err, dfs.ErrNotFound) {
		return fallback.srv.AccessAs(clean, tenant)
	}
	return res, err
}

// AccessAtAs records a tenant's access at an explicit virtual time.
func (s *ShardedServer) AccessAtAs(path string, at time.Time, tenant storage.TenantID) (AccessResult, error) {
	clean, err := canonicalPath(path)
	if err != nil {
		return AccessResult{}, err
	}
	primary, fallback := s.routeFor(clean)
	res, err := primary.srv.AccessAtAs(clean, at, tenant)
	if fallback != nil && errors.Is(err, dfs.ErrNotFound) {
		return fallback.srv.AccessAtAs(clean, at, tenant)
	}
	return res, err
}

// Stat returns the metadata snapshot of a served file.
func (s *ShardedServer) Stat(path string) (FileInfo, error) {
	clean, err := canonicalPath(path)
	if err != nil {
		return FileInfo{}, err
	}
	primary, fallback := s.routeFor(clean)
	info, err := primary.srv.Stat(clean)
	if fallback != nil && errors.Is(err, dfs.ErrNotFound) {
		return fallback.srv.Stat(clean)
	}
	return info, err
}

// Exists reports whether a served file exists.
func (s *ShardedServer) Exists(path string) bool {
	clean, err := canonicalPath(path)
	if err != nil {
		return false
	}
	primary, fallback := s.routeFor(clean)
	if primary.srv.Exists(clean) {
		return true
	}
	return fallback != nil && fallback.srv.Exists(clean)
}

// List returns the sorted file names directly under dir. Under static
// routing every child of a directory routes to the same shard; during a
// migration epoch the subtree is split between destination and hash owner,
// so the two sorted listings merge (deduplicated — a name can briefly
// appear on both sides around a recreate).
func (s *ShardedServer) List(dir string) []string {
	clean, err := canonicalPath(dir)
	if err != nil {
		return nil
	}
	primary, fallback := s.routeDir(clean)
	names := primary.srv.List(clean)
	if fallback == nil {
		return names
	}
	other := fallback.srv.List(clean)
	if len(other) == 0 {
		return names
	}
	merged := make([]string, 0, len(names)+len(other))
	i, j := 0, 0
	for i < len(names) && j < len(other) {
		switch {
		case names[i] == other[j]:
			merged = append(merged, names[i])
			i++
			j++
		case names[i] < other[j]:
			merged = append(merged, names[i])
			i++
		default:
			merged = append(merged, other[j])
			j++
		}
	}
	merged = append(merged, names[i:]...)
	return append(merged, other[j:]...)
}

// Flush fences every shard: all published access events drained, in-flight
// creates committed, movement executors idle. Open migration epochs get a
// straggler drain — files that were mid-create or in transition during the
// live sweeps can move now that the system is quiescing — then the shards
// fence again to absorb the moves.
func (s *ShardedServer) Flush() {
	for _, sh := range s.shards {
		sh.srv.Flush()
	}
	if s.reb == nil || !s.running {
		return
	}
	open := false
	for _, e := range s.routes.entries() {
		if e.state == routeMigrating || e.state == routeDraining {
			open = true
			break
		}
	}
	if !open {
		return
	}
	s.reb.drain()
	for _, sh := range s.shards {
		sh.srv.Flush()
	}
}

// Exec runs fn inside each shard's loop in shard order, with exclusive
// access to that shard's file system — the escape hatch for perturbations
// and final-state inspection.
func (s *ShardedServer) Exec(fn func(shard int, fs *dfs.FileSystem)) {
	for i, sh := range s.shards {
		if !s.running {
			fn(i, sh.fs)
			continue
		}
		i := i
		sh.srv.Exec(func(fs *dfs.FileSystem) { fn(i, fs) })
	}
}

// --- Node membership (global state, fanned out) ---

// FailNode removes the worker with the given id from every shard's view and
// settles the departed capacity against the ledger totals: the quota that
// lived on the node's devices leaves the shards' capacity terms, and the
// node's pooled share is retired — debited from the free pool where it can
// be, recorded as a deficit that future quota Returns pay down where it is
// still out on loan — so dead-node capacity can never be borrowed back
// into existence.
func (s *ShardedServer) FailNode(id int) {
	var removed [3]int64
	for _, sh := range s.shards {
		sh := sh
		sh.srv.Exec(func(fs *dfs.FileSystem) {
			if n := fs.Cluster().Node(id); n != nil {
				r := fs.FailNode(n)
				for t := range removed {
					removed[t] += r[t]
				}
				sh.quota.clampBaseline()
			}
		})
	}
	pooled := s.nodePooled[id]
	delete(s.nodePooled, id)
	for _, m := range storage.AllMedia {
		s.ledger.ShrinkTotal(m, removed[m])
		s.ledger.Retire(m, pooled[m])
	}
}

// AddNode joins a fresh worker to every shard's view, splitting its
// capacity into per-shard grants plus a pooled remainder exactly like
// construction did. Node ids stay aligned across shards because every
// membership change fans out to all of them.
func (s *ShardedServer) AddNode(spec storage.NodeSpec, slots int) {
	shardSpec, nodeTotal, nodeGrant, nodePooled := splitSpec(spec, len(s.shards), s.cfg.Quota.InitialFraction)
	newID := -1
	for _, sh := range s.shards {
		sh := sh
		sh.srv.Exec(func(fs *dfs.FileSystem) {
			n := fs.AddNode(shardSpec, slots)
			sh.quota.nodeJoined(nodeGrant)
			newID = n.ID()
		})
	}
	if newID >= 0 {
		s.nodePooled[newID] = nodePooled
	}
	for _, m := range storage.AllMedia {
		s.ledger.AddCapacity(m, nodeTotal[m], nodePooled[m])
	}
}

// --- Aggregated state, verification, and reporting ---

// TierResidency merges the per-shard residency snapshots (namespaces are
// disjoint by construction).
func (s *ShardedServer) TierResidency() map[string][3]bool {
	out := make(map[string][3]bool)
	s.Exec(func(_ int, fs *dfs.FileSystem) {
		for path, res := range fs.TierResidency() {
			out[path] = res
		}
	})
	return out
}

// LiveReplicaBytes sums the live replica bytes across shards.
func (s *ShardedServer) LiveReplicaBytes() int64 {
	var total int64
	s.Exec(func(_ int, fs *dfs.FileSystem) { total += fs.LiveReplicaBytes() })
	return total
}

// TierUsage aggregates used and quota-granted capacity across shards. Note
// capacity here is the granted side only; the tier's physical total is
// granted + ledger free + ledger reserved (see Ledger).
func (s *ShardedServer) TierUsage(m storage.Media) (used, capacity int64) {
	s.Exec(func(_ int, fs *dfs.FileSystem) {
		u, c := fs.Cluster().TierUsage(m)
		used += u
		capacity += c
	})
	return used, capacity
}

// Verify runs the full invariant suite — per-shard capacity accounting,
// deep structural checks, candidate-index audits, and the global ledger
// conservation equation — and returns every violation found. Call at a
// quiescent point (after Flush with clients stopped, or after Close) for
// exact results.
func (s *ShardedServer) Verify() []string {
	var violations []string
	s.Exec(func(i int, fs *dfs.FileSystem) {
		if err := fs.CheckAccounting(); err != nil {
			violations = append(violations, fmt.Sprintf("shard %d: %v", i, err))
		}
		if err := fs.CheckInvariants(); err != nil {
			violations = append(violations, fmt.Sprintf("shard %d: %v", i, err))
		}
		if sh := s.shards[i]; sh.mgr != nil {
			if err := sh.mgr.Context().Index().Audit(); err != nil {
				violations = append(violations, fmt.Sprintf("shard %d index: %v", i, err))
			}
		}
	})
	// The conservation equation sums per-shard capacities through
	// sequential per-shard fences. While shard loops are live (pacers,
	// reconcile tickers, policy-tick borrows), capacity can legitimately
	// move between the snapshot of one shard and the next, so a transient
	// mismatch is re-snapshotted before being declared a divergence; a real
	// leak fails every attempt.
	var ledgerErr error
	for attempt := 0; attempt < 3; attempt++ {
		var granted [3]int64
		s.Exec(func(_ int, fs *dfs.FileSystem) {
			for _, m := range storage.AllMedia {
				_, c := fs.Cluster().TierUsage(m)
				granted[m] += c
			}
		})
		if ledgerErr = s.ledger.Check(granted); ledgerErr == nil {
			break
		}
	}
	if ledgerErr != nil {
		violations = append(violations, ledgerErr.Error())
	}
	for i, sh := range s.shards {
		if v := sh.srv.Executor().Stats().CheckBudgets(); v != "" {
			violations = append(violations, fmt.Sprintf("shard %d: %s", i, v))
		}
	}
	// Invariant failures are exactly what the flight recorder exists for:
	// record each one so a dump carries the violation next to the spans and
	// movement records that led up to it.
	for _, v := range violations {
		s.cfg.Inner.Obs.EmitEvent(&obs.Event{What: "invariant-violation", Detail: v})
	}
	return violations
}

// Stats sums the serving counters across shards.
func (s *ShardedServer) Stats() ServeStats {
	var out ServeStats
	for _, sh := range s.shards {
		out.add(sh.srv.Stats())
	}
	return out
}

// ShardStats returns each shard's serving counters individually, in shard
// order — the per-shard view behind the imbalance ratio.
func (s *ShardedServer) ShardStats() []ServeStats {
	out := make([]ServeStats, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.srv.Stats()
	}
	return out
}

// RebalanceStats snapshots the rebalancer's counters (zero value when the
// rebalancer is off).
func (s *ShardedServer) RebalanceStats() RebalanceStats {
	if s.reb == nil {
		return RebalanceStats{}
	}
	return s.reb.snapshot()
}

// RebalanceTick runs one detection round synchronously — the replay-mode
// and test entry point (live mode runs the same round on a wall ticker).
func (s *ShardedServer) RebalanceTick() {
	if s.reb != nil {
		s.reb.tick()
	}
}

// ExecutorStats sums the movement-executor counters across shards; the
// virtual-time sample is the maximum over shards. Bucket capacities and
// refill rates are summed too, so the aggregate snapshot pairs the summed
// AdmittedBytes with the fleet-wide budget (and CheckBudgets on it stays
// sound: each shard obeys burst_i + rate_i*t_i with t_i <= the reported
// maximum). Per-shard budget bounds are checked individually in Verify.
func (s *ShardedServer) ExecutorStats() ExecutorStats {
	var out ExecutorStats
	for _, sh := range s.shards {
		st := sh.srv.Executor().Stats()
		if st.VirtualSeconds > out.VirtualSeconds {
			out.VirtualSeconds = st.VirtualSeconds
		}
		out.Defers += st.Defers
		for i := range out.PerTier {
			a, b := &out.PerTier[i], st.PerTier[i]
			a.Scheduled += b.Scheduled
			a.Completed += b.Completed
			a.Failed += b.Failed
			a.Shed += b.Shed
			a.AdmittedBytes += b.AdmittedBytes
			// High-water marks do not sum (shards peak at different times);
			// report the largest per-shard peak.
			if b.MaxInFlightBytes > a.MaxInFlightBytes {
				a.MaxInFlightBytes = b.MaxInFlightBytes
			}
			a.BudgetBytes += b.BudgetBytes
			a.RateBytesPerSec += b.RateBytesPerSec
		}
	}
	return out
}

// QuotaStats sums the ledger-protocol traffic across shards.
func (s *ShardedServer) QuotaStats() QuotaStats {
	var out QuotaStats
	for _, sh := range s.shards {
		st := sh.quota.stats()
		out.Borrows += st.Borrows
		out.BorrowFailures += st.BorrowFailures
		out.BorrowedBytes += st.BorrowedBytes
		out.ReturnedBytes += st.ReturnedBytes
	}
	return out
}

// AccessLatency merges the per-shard access-path histograms.
func (s *ShardedServer) AccessLatency() *Histogram {
	out := &Histogram{}
	for _, sh := range s.shards {
		out.AddFrom(sh.srv.AccessLatency())
	}
	return out
}

// MutateLatency merges the per-shard create/delete histograms.
func (s *ShardedServer) MutateLatency() *Histogram {
	out := &Histogram{}
	for _, sh := range s.shards {
		out.AddFrom(sh.srv.MutateLatency())
	}
	return out
}

// ReadLatency merges the per-shard tier-real read-latency histograms for
// one tier.
func (s *ShardedServer) ReadLatency(m storage.Media) *Histogram {
	out := &Histogram{}
	for _, sh := range s.shards {
		out.AddFrom(sh.srv.ReadLatency(m))
	}
	return out
}

// TenantReadLatency merges the per-shard read-latency histograms of one
// configured tenant (nil for an unknown tenant).
func (s *ShardedServer) TenantReadLatency(t storage.TenantID) *Histogram {
	var out *Histogram
	for _, sh := range s.shards {
		h := sh.srv.TenantReadLatency(t)
		if h == nil {
			continue
		}
		if out == nil {
			out = &Histogram{}
		}
		out.AddFrom(h)
	}
	return out
}

// SLOStats sums the admission-controller counters across shards.
func (s *ShardedServer) SLOStats() SLOStats {
	var out SLOStats
	for _, sh := range s.shards {
		st := sh.srv.SLOStats()
		out.add(st)
	}
	return out
}

// Plane returns the data plane shared by every shard's cluster view (nil
// when none is attached).
func (s *ShardedServer) Plane() storage.DataPlane { return s.cfg.Cluster.Plane }

// Service is the client-facing surface shared by the single-writer Server
// and the ShardedServer, so drivers like cmd/octoload switch between them
// with a flag.
type Service interface {
	Create(path string, size int64) error
	CreateAs(path string, size int64, tenant storage.TenantID) error
	Delete(path string) error
	Access(path string) (AccessResult, error)
	AccessAs(path string, tenant storage.TenantID) (AccessResult, error)
	Stat(path string) (FileInfo, error)
	Exists(path string) bool
	List(dir string) []string
	Flush()
	// Stamped variants and the wall-mapped virtual clock: open-loop drivers
	// stamp each op with its intended arrival time so the policy layer sees
	// the arrival process, not the dispatch process.
	Clock() time.Time
	CreateAt(path string, size int64, at time.Time) <-chan error
	CreateAtAs(path string, size int64, at time.Time, tenant storage.TenantID) <-chan error
	DeleteAt(path string, at time.Time) <-chan error
	AccessAt(path string, at time.Time) (AccessResult, error)
	AccessAtAs(path string, at time.Time, tenant storage.TenantID) (AccessResult, error)
}

var (
	_ Service = (*Server)(nil)
	_ Service = (*ShardedServer)(nil)
)
