package server

import (
	"strconv"
	"sync/atomic"
	"time"

	"octostore/internal/backend"
	"octostore/internal/obs"
	"octostore/internal/storage"
)

// This file is the serving layer's observability wiring: metric
// registration into the hub's registry (pull-based closures over the
// existing atomics — a scrape reads live values with zero hot-path cost)
// and the span-capture helpers the client API uses. Everything degrades to
// a single nil check when no hub is configured.

// sampleSpan starts a span for one in N operations. Returns (nil, zero)
// when obs is disabled or the op is not sampled — the caller's stage stamps
// are all guarded on the span pointer.
func (s *Server) sampleSpan(op, path string, tenant storage.TenantID) (*obs.Span, time.Time) {
	if !s.obs.SampleOp() {
		return nil, time.Time{}
	}
	sp := &obs.Span{Op: op, Path: path, Shard: s.cfg.ObsShard, Tenant: int(tenant)}
	return sp, time.Now()
}

// finishSpan stamps the total wall time and the op's virtual instant
// (relative to the server's virtual start) and publishes the span. No-op on
// a nil span.
func (s *Server) finishSpan(sp *obs.Span, start time.Time, at time.Time, errMsg string) {
	if sp == nil {
		return
	}
	sp.TotalNS = time.Since(start).Nanoseconds()
	if !at.IsZero() {
		sp.VirtNS = at.Sub(s.virtStart).Nanoseconds()
	}
	sp.Err = errMsg
	s.obs.EmitSpan(sp)
}

// busyStart/busyEnd bracket core-loop work for the utilization gauge. With
// obs disabled they are a nil check — the loop takes no clock readings.
func (s *Server) busyStart() time.Time {
	if s.obs == nil {
		return time.Time{}
	}
	return time.Now()
}

func (s *Server) busyEnd(t0 time.Time) {
	if t0.IsZero() {
		return
	}
	s.loopBusyNS.Add(time.Since(t0).Nanoseconds())
}

// registerObs publishes the server's signals into the hub's registry:
// serve counters, ring occupancy/drops, per-tier executor queues and
// budgets, the latency histograms, and the core loop's utilization.
func (s *Server) registerObs() {
	if s.obs == nil {
		return
	}
	r := s.obs.Registry()
	shard := strconv.Itoa(s.cfg.ObsShard)
	lbl := func(kv ...string) obs.Labels {
		l := obs.Labels{"shard": shard}
		for i := 0; i+1 < len(kv); i += 2 {
			l[kv[i]] = kv[i+1]
		}
		return l
	}
	ctr := func(name string, v *atomic.Int64, kv ...string) {
		r.CounterFunc(name, lbl(kv...), func() float64 { return float64(v.Load()) })
	}

	ctr("octo_accesses_total", &s.counters.accesses)
	ctr("octo_access_misses_total", &s.counters.accessMisses)
	ctr("octo_access_noreplica_total", &s.counters.noReplica)
	ctr("octo_bytes_served_total", &s.counters.bytesServed)
	ctr("octo_creates_total", &s.counters.creates)
	ctr("octo_create_errors_total", &s.counters.createErrors)
	ctr("octo_deletes_total", &s.counters.deletes)
	ctr("octo_events_drained_total", &s.counters.drained)
	ctr("octo_drain_batches_total", &s.counters.batches)
	for _, m := range storage.AllMedia {
		m := m
		r.CounterFunc("octo_served_total", lbl("tier", m.String()),
			func() float64 { return float64(s.counters.servedByTier[m].Load()) })
	}

	// Ring occupancy from the producer/consumer cursors: enq counts claimed
	// slots, deq consumed ones, so the difference bounds the published
	// backlog (claimed-not-yet-published slots inflate it by at most the
	// number of mid-push producers).
	r.Gauge("octo_ring_occupancy", lbl(), func() float64 {
		return float64(s.ring.enq.Load() - s.ring.deq.Load())
	})
	r.CounterFunc("octo_ring_dropped_total", lbl(), func() float64 {
		return float64(s.ring.Dropped())
	})

	// Core-loop utilization: busy wall time over elapsed wall time since
	// Start. The loop only accumulates busy time when obs is enabled.
	start := s.wallStart
	r.Gauge("octo_loop_utilization", lbl(), func() float64 {
		elapsed := time.Since(start).Nanoseconds()
		if elapsed <= 0 {
			return 0
		}
		return float64(s.loopBusyNS.Load()) / float64(elapsed)
	})

	r.Histogram("octo_access_latency_ns", lbl(), &s.accessHist)
	r.Histogram("octo_mutate_latency_ns", lbl(), &s.mutateHist)
	for _, m := range storage.AllMedia {
		r.Histogram("octo_read_latency_ns", lbl("tier", m.String()), &s.readLat[m])
	}
	for id, slot := range s.tenantSlot {
		r.Histogram("octo_tenant_read_latency_ns",
			lbl("tenant", strconv.Itoa(int(id))), &s.tenantLat[slot])
	}
	if s.slo != nil {
		ctr("octo_slo_checks_total", &s.slo.checks)
		ctr("octo_slo_breaches_total", &s.slo.breaches)
	}

	// Physical-backend op/error counters, one family cell per (tier, op):
	// scrapes snapshot the backend's atomics through the same pull-based
	// closure pattern as everything else.
	if s.backend != nil {
		for _, m := range storage.AllMedia {
			for _, op := range backend.Ops {
				m, op := m, op
				l := lbl("tier", m.String(), "op", op.String())
				r.CounterFunc("octo_backend_ops_total", l, func() float64 {
					t := s.backend.Stats().PerTier[m]
					return float64(t.Op(op).Count)
				})
				r.CounterFunc("octo_backend_bytes_total", l, func() float64 {
					t := s.backend.Stats().PerTier[m]
					return float64(t.Op(op).Bytes)
				})
				r.CounterFunc("octo_backend_errors_total", l, func() float64 {
					t := s.backend.Stats().PerTier[m]
					return float64(t.Op(op).Errors)
				})
			}
		}
	}

	s.exec.registerObs(r, lbl)
}

// registerObs publishes the executor's per-tier queue depths, counters, and
// the defer state.
func (e *MovementExecutor) registerObs(r *obs.Registry, lbl func(kv ...string) obs.Labels) {
	for _, m := range storage.AllMedia {
		p := &e.tiers[m]
		tier := m.String()
		r.Gauge("octo_exec_queue_depth", lbl("tier", tier),
			func() float64 { return float64(p.depth.Load()) })
		r.CounterFunc("octo_exec_scheduled_total", lbl("tier", tier),
			func() float64 { return float64(p.scheduled.Load()) })
		r.CounterFunc("octo_exec_completed_total", lbl("tier", tier),
			func() float64 { return float64(p.completed.Load()) })
		r.CounterFunc("octo_exec_failed_total", lbl("tier", tier),
			func() float64 { return float64(p.failed.Load()) })
		r.CounterFunc("octo_exec_shed_total", lbl("tier", tier),
			func() float64 { return float64(p.shed.Load()) })
		r.CounterFunc("octo_exec_admitted_bytes_total", lbl("tier", tier),
			func() float64 { return float64(p.admitted.Load()) })
	}
	r.CounterFunc("octo_exec_defers_total", lbl(),
		func() float64 { return float64(e.defers.Load()) })
	r.Gauge("octo_exec_busy", lbl(),
		func() float64 { return float64(e.busy.Load()) })
}
