package server_test

import (
	"math"
	"sort"
	"testing"
	"time"

	"octostore/internal/cluster"
	"octostore/internal/core"
	"octostore/internal/dfs"
	"octostore/internal/ml"
	"octostore/internal/policy"
	"octostore/internal/server"
	"octostore/internal/sim"
	"octostore/internal/storage"
	"octostore/internal/workload"
)

// The differential acceptance test: one trace of create/access/delete
// operations replayed (a) through the sequential simulation path — direct
// dfs + core.Manager calls with the inline Replication Monitor — and (b)
// through the serving layer with a single client, explicit virtual
// timestamps, the MPSC access ring, and the movement executor. Both paths
// quiesce after every operation, and the configurations are matched so that
// neither the monitor's global concurrency cap nor the executor's budgets
// bind; the final tier residency of every file and the capacity accounting
// must then be identical.

// diffOp is one replayed client operation.
type diffOp struct {
	at   time.Duration
	kind int // 0 create, 1 access, 2 delete
	path string
	size int64
}

// diffTrace converts a generated workload into a flat op list: stage each
// input file at its creation offset, access inputs at job arrivals, write
// job outputs after the job's compute time, and delete every fifth output
// half an hour later for delete-path coverage.
func diffTrace(t *testing.T) []diffOp {
	t.Helper()
	p := workload.FB()
	p.NumJobs = 150
	p.Duration = 2 * time.Hour
	// Cap sizes at bin D so files fit the shrunken test cluster.
	p = workload.CapProfile(p, workload.BinD)
	tr := workload.Generate(p, 7)

	var ops []diffOp
	for _, f := range tr.Files {
		ops = append(ops, diffOp{at: f.CreatedAt, kind: 0, path: f.Path, size: f.Size})
	}
	outputs := 0
	for _, j := range tr.Jobs {
		ops = append(ops, diffOp{at: j.Arrival, kind: 1, path: j.InputPath})
		if j.OutputPath != "" {
			ops = append(ops, diffOp{at: j.Arrival + j.CPUPerTask, kind: 0, path: j.OutputPath, size: j.OutputBytes})
			outputs++
			if outputs%5 == 0 {
				ops = append(ops, diffOp{at: j.Arrival + j.CPUPerTask + 30*time.Minute, kind: 2, path: j.OutputPath})
			}
		}
	}
	sort.SliceStable(ops, func(a, b int) bool { return ops[a].at < ops[b].at })
	return ops
}

func diffWorkerSpec() storage.NodeSpec {
	return storage.NodeSpec{
		{Media: storage.Memory, Capacity: 1 * storage.GB, ReadBW: 4000e6, WriteBW: 3000e6, Count: 1},
		{Media: storage.SSD, Capacity: 8 * storage.GB, ReadBW: 500e6, WriteBW: 400e6, Count: 1},
		{Media: storage.HDD, Capacity: 64 * storage.GB, ReadBW: 160e6, WriteBW: 140e6, Count: 2},
	}
}

// buildSystem constructs the matched system-under-test: the monitor's
// concurrency (sequential path) and the executor's per-tier pools (server
// path) are both wide enough that scheduling caps never bind, which is the
// regime in which the two movement engines are semantically identical.
func buildSystem(t *testing.T, down, up string) (*sim.Engine, *dfs.FileSystem, *core.Manager) {
	t.Helper()
	engine := sim.NewEngine()
	cl, err := cluster.New(engine, cluster.Config{Workers: 4, SlotsPerNode: 4, Spec: diffWorkerSpec()})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := dfs.New(cl, dfs.Config{Mode: dfs.ModeOctopus, Seed: 7, ClientRate: 2000e6})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.MonitorConcurrency = 64
	ctx := core.NewContext(fs, cfg)
	lcfg := ml.DefaultLearnerConfig()
	d, err := policy.NewDowngrade(down, ctx, lcfg)
	if err != nil {
		t.Fatal(err)
	}
	u, err := policy.NewUpgrade(up, ctx, lcfg)
	if err != nil {
		t.Fatal(err)
	}
	mgr := core.NewManager(ctx, d, u)
	mgr.Start()
	return engine, fs, mgr
}

// runSequential is the oracle: the untouched single-threaded sim path.
func runSequential(t *testing.T, ops []diffOp, down, up string) *dfs.FileSystem {
	t.Helper()
	engine, fs, mgr := buildSystem(t, down, up)
	mon := mgr.Monitor()
	creating := 0
	quiesce := func() {
		for (creating > 0 || mon.Active() > 0 || mon.QueueLen() > 0) && engine.Step() {
		}
	}
	base := engine.Now()
	for _, o := range ops {
		engine.RunUntil(base.Add(o.at))
		switch o.kind {
		case 0:
			creating++
			fs.Create(o.path, o.size, func(*dfs.File, error) { creating-- })
		case 1:
			if f, err := fs.Open(o.path); err == nil {
				fs.RecordAccess(f)
			}
		case 2:
			_ = fs.Delete(o.path)
		}
		quiesce()
	}
	quiesce()
	mgr.Stop()
	return fs
}

// runServed replays the same ops through the serving layer in replay mode
// (TimeScale 0): one client stamps each op with its virtual time and fences
// with Flush, mirroring the oracle's per-op quiescence.
func runServed(t *testing.T, ops []diffOp, down, up string) *dfs.FileSystem {
	t.Helper()
	engine, fs, mgr := buildSystem(t, down, up)
	huge := int64(1) << 60
	unmetered := math.Inf(1)
	srv := server.New(fs, mgr, server.Config{
		Executor: server.ExecutorConfig{
			WorkersPerTier:  64,
			QueueDepth:      1 << 14,
			BudgetBytes:     [3]int64{huge, huge, huge},
			RateBytesPerSec: [3]float64{unmetered, unmetered, unmetered},
		},
	})
	srv.Start()
	base := engine.Now()
	for _, o := range ops {
		at := base.Add(o.at)
		switch o.kind {
		case 0:
			srv.CreateAt(o.path, o.size, at)
		case 1:
			_, _ = srv.AccessAt(o.path, at)
		case 2:
			srv.DeleteAt(o.path, at)
		}
		srv.Flush()
	}
	srv.Close()
	mgr.Stop()
	return fs
}

func compareFinalState(t *testing.T, combo string, seq, srv *dfs.FileSystem) {
	t.Helper()
	if err := seq.CheckInvariants(); err != nil {
		t.Fatalf("%s: sequential invariants: %v", combo, err)
	}
	if err := srv.CheckInvariants(); err != nil {
		t.Fatalf("%s: served invariants: %v", combo, err)
	}
	seqRes, srvRes := seq.TierResidency(), srv.TierResidency()
	if len(seqRes) != len(srvRes) {
		t.Fatalf("%s: file count diverged: sequential %d, served %d", combo, len(seqRes), len(srvRes))
	}
	for path, want := range seqRes {
		got, ok := srvRes[path]
		if !ok {
			t.Fatalf("%s: %q exists only in the sequential path", combo, path)
		}
		if got != want {
			t.Fatalf("%s: residency of %q diverged: sequential %v, served %v", combo, path, want, got)
		}
	}
	if a, b := seq.LiveReplicaBytes(), srv.LiveReplicaBytes(); a != b {
		t.Fatalf("%s: live replica bytes diverged: sequential %d, served %d", combo, a, b)
	}
	for _, m := range storage.AllMedia {
		ua, ca := seq.Cluster().TierUsage(m)
		ub, cb := srv.Cluster().TierUsage(m)
		if ua != ub || ca != cb {
			t.Fatalf("%s: %s usage diverged: sequential %d/%d, served %d/%d", combo, m, ua, ca, ub, cb)
		}
	}
	sa, sb := seq.Stats(), srv.Stats()
	if sa.FilesCreated != sb.FilesCreated || sa.FilesDeleted != sb.FilesDeleted || sa.FileAccesses != sb.FileAccesses {
		t.Fatalf("%s: op counts diverged: sequential %+v, served %+v", combo, sa, sb)
	}
	// Guard against the comparison going vacuous: the trace must actually
	// drive tier movement through both movement engines.
	if sa.BytesUpgradedTo[storage.Memory] == 0 {
		t.Fatalf("%s: trace drove no upgrades; differential test is vacuous", combo)
	}
	if sa.BytesDowngradedTo[storage.SSD]+sa.BytesDowngradedTo[storage.HDD] == 0 {
		t.Fatalf("%s: trace drove no downgrades; differential test is vacuous", combo)
	}
}

func TestDifferentialSequentialVsServed(t *testing.T) {
	ops := diffTrace(t)
	combos := []struct{ down, up string }{
		{"lru", "osa"},
		{"exd", "exd"},
	}
	for _, c := range combos {
		combo := c.down + "/" + c.up
		seq := runSequential(t, ops, c.down, c.up)
		srv := runServed(t, ops, c.down, c.up)
		compareFinalState(t, combo, seq, srv)
	}
}
