package server

// In-package regression tests for the migration-epoch edge cases: deletes
// during a double-read epoch (both the blocking and the stamped path), the
// one-logical-file-one-counted-delete stats contract, cold-route fold-back
// (route-table garbage collection), and the superseded-vs-moved counter
// split. These drive the route table and the per-file move machinery
// directly, so the epoch states are exact rather than raced into.

import (
	"math"
	"testing"
	"time"

	"octostore/internal/cluster"
	"octostore/internal/dfs"
	"octostore/internal/sim"
	"octostore/internal/storage"
)

func newEpochTestServer(t *testing.T, reb RebalanceConfig) *ShardedServer {
	t.Helper()
	huge := int64(1) << 60
	inf := math.Inf(1)
	srv, err := NewSharded(ShardedConfig{
		Shards: 4,
		Cluster: cluster.Config{Workers: 4, SlotsPerNode: 4, Spec: storage.NodeSpec{
			{Media: storage.Memory, Capacity: 1 * storage.GB, ReadBW: 4000e6, WriteBW: 3000e6, Count: 1},
			{Media: storage.SSD, Capacity: 4 * storage.GB, ReadBW: 500e6, WriteBW: 400e6, Count: 1},
			{Media: storage.HDD, Capacity: 32 * storage.GB, ReadBW: 160e6, WriteBW: 140e6, Count: 2},
		}},
		DFS: dfs.Config{Mode: dfs.ModeOctopus, Seed: 7, ClientRate: 2000e6},
		Quota: QuotaConfig{
			InitialFraction:   0.25,
			BorrowChunk:       16 * storage.MB,
			ReconcileInterval: 10 * time.Second,
		},
		Inner: Config{ // replay mode: TimeScale 0
			Executor: ExecutorConfig{
				WorkersPerTier:  64,
				QueueDepth:      1 << 14,
				BudgetBytes:     [3]int64{huge, huge, huge},
				RateBytesPerSec: [3]float64{inf, inf, inf},
			},
		},
		Rebalance: reb,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Close)
	return srv
}

// mustCreate fires a stamped create and fences until it commits.
func mustCreate(t *testing.T, srv *ShardedServer, path string, size int64, at time.Time) {
	t.Helper()
	ch := srv.CreateAt(path, size, at)
	srv.Flush()
	if err := <-ch; err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
}

// attachCopyOn plants a copy of an existing file on the given shard — the
// mid-migration both-copies state (or a client recreate on the destination),
// built exactly like migrateFile's first half.
func attachCopyOn(t *testing.T, srv *ShardedServer, from, to int, path string) {
	t.Helper()
	var rec dfs.FileRecord
	var serr error
	srv.shards[from].srv.Exec(func(fs *dfs.FileSystem) { rec, serr = fs.SnapshotFile(path) })
	if serr != nil {
		t.Fatalf("snapshot %s on shard %d: %v", path, from, serr)
	}
	var aerr error
	sh := srv.shards[to]
	sh.srv.Exec(func(fs *dfs.FileSystem) {
		aerr = fs.AttachFile(rec)
		if aerr != nil {
			return
		}
		if f, gerr := fs.Namespace().GetFile(rec.Path); gerr == nil {
			sh.srv.indexFile(f)
		}
	})
	if aerr != nil {
		t.Fatalf("attach %s on shard %d: %v", path, to, aerr)
	}
}

// TestDeleteAtDuringMigrationEpoch is the regression for the lost-delete
// bug: during a migrating epoch an unmoved file lives only on the hash
// owner, and a stamped DeleteAt that routed only to the primary returned
// ErrNotFound while the file stayed readable through the double-read path.
func TestDeleteAtDuringMigrationEpoch(t *testing.T) {
	srv := newEpochTestServer(t, RebalanceConfig{})
	base := sim.Epoch
	dir := "/hot/d00"
	path := dir + "/f000"
	mustCreate(t, srv, path, 64*storage.MB, base.Add(time.Second))

	owner := RouteShard(dir, srv.NumShards())
	dst := (owner + 1) % srv.NumShards()
	srv.routes.upsert(routeEntry{prefix: dir, dst: dst, state: routeMigrating})

	// Nothing has moved: the file is reachable only through the fallback.
	if !srv.Exists(path) {
		t.Fatal("file not readable through the double-read fallback")
	}
	if err := <-srv.DeleteAt(path, base.Add(time.Hour)); err != nil {
		t.Fatalf("DeleteAt during migrating epoch: %v", err)
	}
	if srv.Exists(path) {
		t.Fatal("file still readable after DeleteAt")
	}
	if srv.shards[owner].srv.Exists(path) {
		t.Fatal("fallback copy survived the delete")
	}
	if got := srv.Stats().Deletes; got != 1 {
		t.Fatalf("Deletes = %d, want 1", got)
	}

	srv.routes.remove(dir)
	if v := srv.Verify(); len(v) > 0 {
		t.Fatalf("invariants: %v", v)
	}
}

// TestDeleteDuringEpochCountsOnce pins the stats contract when a file
// briefly exists on both shards mid-migration: one logical file, one
// counted client deletion (the fallback copy is dropped through the
// migration-teardown path, not a second stats-bumping delete).
func TestDeleteDuringEpochCountsOnce(t *testing.T) {
	srv := newEpochTestServer(t, RebalanceConfig{})
	base := sim.Epoch
	dir := "/hot/d01"
	path := dir + "/f000"
	mustCreate(t, srv, path, 48*storage.MB, base.Add(time.Second))

	owner := RouteShard(dir, srv.NumShards())
	dst := (owner + 1) % srv.NumShards()
	attachCopyOn(t, srv, owner, dst, path)
	srv.routes.upsert(routeEntry{prefix: dir, dst: dst, state: routeMigrating})

	if err := srv.Delete(path); err != nil {
		t.Fatalf("Delete during both-copies window: %v", err)
	}
	if srv.shards[dst].srv.Exists(path) || srv.shards[owner].srv.Exists(path) {
		t.Fatal("a copy survived the delete")
	}
	if got := srv.Stats().Deletes; got != 1 {
		t.Fatalf("Deletes = %d, want exactly 1 for one logical file", got)
	}

	srv.routes.remove(dir)
	if v := srv.Verify(); len(v) > 0 {
		t.Fatalf("invariants: %v", v)
	}
}

// TestRebalancerRehomesColdRoutes drives the full route-table life cycle:
// a hot subtree migrates (committed entry), then goes cold, and after
// RehomeColdTicks idle detection rounds the subtree folds back to static
// routing and the entry is garbage-collected — so the bounded table never
// permanently spends a slot per lifetime migration.
func TestRebalancerRehomesColdRoutes(t *testing.T) {
	// MaxPrefixes 2 puts the one committed entry at the half-full pressure
	// threshold, so fold-back engages without needing 32 lifetime moves.
	srv := newEpochTestServer(t, RebalanceConfig{
		Enabled:         true,
		HotRatio:        1.2,
		MinOps:          32,
		MaxPrefixes:     2,
		RehomeColdTicks: 2,
	})
	base := sim.Epoch
	step := 0
	at := func() time.Time { step++; return base.Add(time.Duration(step) * time.Second) }

	// Two directories colliding on one shard (so a move strictly narrows the
	// hot/cold gap instead of swapping it), 8 files each.
	shards := srv.NumShards()
	var hotDirs []string
	target := -1
	for i := 0; len(hotDirs) < 2 && i < 10000; i++ {
		d := "/hot/d" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
		if target == -1 {
			target = RouteShard(d, shards)
		}
		if RouteShard(d, shards) == target {
			hotDirs = append(hotDirs, d)
		}
	}
	var hotFiles []string
	for _, d := range hotDirs {
		for i := 0; i < 8; i++ {
			p := d + "/f" + string(rune('0'+i))
			mustCreate(t, srv, p, 16*storage.MB, at())
			hotFiles = append(hotFiles, p)
		}
	}
	// One cold file per shard so idle rounds still carry balanced traffic.
	var coldFiles []string
	for want := 0; want < shards; want++ {
		for i := 0; len(coldFiles) <= want && i < 10000; i++ {
			d := "/cold/d" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
			if RouteShard(d, shards) == want {
				p := d + "/f0"
				mustCreate(t, srv, p, 8*storage.MB, at())
				coldFiles = append(coldFiles, p)
			}
		}
	}

	// Skewed window: 4 passes over the hot files pins one shard, and the
	// detection round migrates one of the colliding dirs off it.
	for rep := 0; rep < 4; rep++ {
		for _, p := range hotFiles {
			if _, err := srv.AccessAt(p, at()); err != nil {
				t.Fatalf("access %s: %v", p, err)
			}
		}
	}
	srv.Flush()
	srv.RebalanceTick()
	st := srv.RebalanceStats()
	if st.Completed == 0 || st.Routes == 0 {
		t.Fatalf("hot subtree never migrated: %+v", st)
	}

	// Cold windows: balanced traffic elsewhere, zero ops under the migrated
	// subtree. After RehomeColdTicks rounds the entry drains home and is
	// removed.
	for tick := 0; tick < 4; tick++ {
		for rep := 0; rep < 4; rep++ {
			for _, p := range coldFiles {
				if _, err := srv.AccessAt(p, at()); err != nil {
					t.Fatalf("access %s: %v", p, err)
				}
			}
		}
		srv.Flush()
		srv.RebalanceTick()
	}
	st = srv.RebalanceStats()
	if st.Rehomed == 0 {
		t.Fatalf("cold route never folded back: %+v", st)
	}
	if got := srv.routes.entries(); len(got) != 0 {
		t.Fatalf("route table not garbage-collected: %v", got)
	}

	// Every file is still served through pure static routing.
	for _, p := range append(append([]string{}, hotFiles...), coldFiles...) {
		if !srv.Exists(p) {
			t.Fatalf("%s lost across migrate + rehome", p)
		}
	}
	srv.Flush()
	if v := srv.Verify(); len(v) > 0 {
		t.Fatalf("invariants: %v", v)
	}
}

// TestMigrateFileSupersededNotCounted pins the counter split: a migration
// commit that finds the destination path already recreated by a client
// drops the stale source copy without copying bytes, so it must count as
// superseded, not as files/bytes moved (the benchgate vacuity check reads
// the moved counters).
func TestMigrateFileSupersededNotCounted(t *testing.T) {
	srv := newEpochTestServer(t, RebalanceConfig{Enabled: true})
	base := sim.Epoch
	dir := "/hot/d02"
	path := dir + "/f000"
	mustCreate(t, srv, path, 32*storage.MB, base.Add(time.Second))

	owner := RouteShard(dir, srv.NumShards())
	dst := (owner + 1) % srv.NumShards()
	// The "client recreate": the destination already holds the path.
	attachCopyOn(t, srv, owner, dst, path)

	if out := srv.reb.migrateFile(srv.shards[owner], srv.shards[dst], path); out != migrateMoved {
		t.Fatalf("migrateFile = %v, want migrateMoved", out)
	}
	if moved := srv.reb.filesMoved.Load(); moved != 0 {
		t.Fatalf("ErrExists commit counted as a move: filesMoved = %d", moved)
	}
	if bytes := srv.reb.bytesMoved.Load(); bytes != 0 {
		t.Fatalf("ErrExists commit counted bytes: bytesMoved = %d", bytes)
	}
	if sup := srv.reb.superseded.Load(); sup != 1 {
		t.Fatalf("superseded = %d, want 1", sup)
	}
	if srv.shards[owner].srv.Exists(path) {
		t.Fatal("stale source copy survived the commit")
	}
	if !srv.shards[dst].srv.Exists(path) {
		t.Fatal("destination copy vanished")
	}
	if v := srv.Verify(); len(v) > 0 {
		t.Fatalf("invariants: %v", v)
	}
}
