package server

// Test-only exports for the external server_test package.

// RouteHash exposes the shard-routing hash so black-box tests (e.g. the
// data-plane contention test picking directories that land on distinct
// shards) stay coupled to the real routing function instead of a copy.
func RouteHash(s string) uint32 { return fnv32(s) }
