package server

import (
	"strings"
	"sync/atomic"
)

// The route table is the rebalancer's override layer in front of the static
// parent-dir hash: a small copy-on-write list of prefix→shard entries
// consulted on every routing decision before falling back to fnv32(dir).
// Readers take one atomic pointer load (nil when no migration has ever run,
// so the static-routing fast path costs a single predictable branch);
// writers — only the rebalancer, under its own mutex — install a fresh
// snapshot. An entry overrides the whole subtree at its prefix: every dir
// equal to or under the prefix routes to dst, regardless of where those
// dirs would hash individually.

type routeState int32

const (
	// routeMigrating: files are moving. Writes go to dst; reads try dst and
	// fall back to the hash owner (double-read epoch), so clients never
	// block on the move and never miss a file that has not moved yet.
	routeMigrating routeState = iota
	// routeCommitted: the flip happened; every source shard swept empty.
	// dst is authoritative and the fallback read is gone.
	routeCommitted
	// routeDraining: a committed entry is being folded back to static
	// routing (the subtree went cold and the table slot is wanted for
	// future hotspots). Writes route by the per-dir hash again; reads fall
	// back to dst until its copies drain home, then the entry is removed.
	routeDraining
)

// routeEntry overrides routing for one subtree.
type routeEntry struct {
	prefix string // clean dir path, no trailing slash (except "/" itself)
	dst    int    // shard index now owning the subtree
	state  routeState
}

// routeTable holds the COW snapshot. Entries are kept longest-prefix-first
// so lookup can return the first match.
type routeTable struct {
	snap atomic.Pointer[[]routeEntry]
}

// covers reports whether dir lies inside the subtree rooted at prefix.
func covers(prefix, dir string) bool {
	if !strings.HasPrefix(dir, prefix) {
		return false
	}
	if len(dir) == len(prefix) {
		return true
	}
	if prefix == "/" {
		return true
	}
	return dir[len(prefix)] == '/'
}

// lookup returns the entry covering dir, or nil. Longest-prefix match: the
// snapshot is stored sorted by descending prefix length, so the first hit
// is the most specific override.
func (rt *routeTable) lookup(dir string) *routeEntry {
	p := rt.snap.Load()
	if p == nil {
		return nil
	}
	entries := *p
	for i := range entries {
		if covers(entries[i].prefix, dir) {
			return &entries[i]
		}
	}
	return nil
}

// entries returns the current snapshot (read-only; may be nil).
func (rt *routeTable) entries() []routeEntry {
	p := rt.snap.Load()
	if p == nil {
		return nil
	}
	return *p
}

// install publishes a new snapshot containing the given entries sorted by
// descending prefix length. Caller (the rebalancer) serializes installs.
func (rt *routeTable) install(entries []routeEntry) {
	if len(entries) == 0 {
		rt.snap.Store(nil)
		return
	}
	sorted := make([]routeEntry, len(entries))
	copy(sorted, entries)
	// Insertion sort by descending prefix length: the table stays tiny
	// (MaxPrefixes-bounded) and stable order keeps lookups deterministic.
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && len(sorted[j].prefix) > len(sorted[j-1].prefix); j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	rt.snap.Store(&sorted)
}

// upsert installs a snapshot with e added or replaced (matched by prefix).
func (rt *routeTable) upsert(e routeEntry) {
	cur := rt.entries()
	next := make([]routeEntry, 0, len(cur)+1)
	for _, old := range cur {
		if old.prefix != e.prefix {
			next = append(next, old)
		}
	}
	next = append(next, e)
	rt.install(next)
}

// remove installs a snapshot without the entry matching prefix (no-op when
// absent).
func (rt *routeTable) remove(prefix string) {
	cur := rt.entries()
	next := make([]routeEntry, 0, len(cur))
	for _, old := range cur {
		if old.prefix != prefix {
			next = append(next, old)
		}
	}
	rt.install(next)
}
