package server

import (
	"sort"
	"sync"
	"sync/atomic"

	"octostore/internal/dfs"
	"octostore/internal/storage"
)

// handle is the client-visible view of one served file. Clients read only
// the immutable identity fields and the atomically published residency
// mask; the *dfs.File pointer is owned by the core loop and must never be
// dereferenced on a client goroutine.
type handle struct {
	id   dfs.FileID
	path string
	size int64
	file *dfs.File // core-loop-owned
	// blk0/blk0Size identify the file's first block (-1/0 for empty files):
	// the representative replica the physical-backend read path streams.
	// Block identity is immutable for the handle's life (only the replica's
	// device moves), so clients read these without synchronization.
	blk0     int64
	blk0Size int64
	// res is a bitmask of tiers holding a full all-or-nothing replica set
	// (bit i = storage.Media(i)), published by the core loop on every
	// residency flip so the client read path picks its serving tier without
	// entering the core.
	res atomic.Uint32
	// dev publishes, per tier, a representative device holding the file's
	// replicas, so the client read path can charge the data plane's
	// physical channel without entering the core. Client goroutines may
	// only read the device's immutable identity (ID, Media) — the mutable
	// capacity/bandwidth state stays core-loop-owned.
	dev [3]atomic.Pointer[storage.Device]
}

// setDevice publishes (or, with nil, clears) the tier's representative
// device. Core loop only; publish the device before flipping residency on
// so readers that see the bit always find a device.
func (h *handle) setDevice(m storage.Media, d *storage.Device) { h.dev[m].Store(d) }

// device returns the tier's representative device (nil during the brief
// window around a residency flip).
func (h *handle) device(m storage.Media) *storage.Device { return h.dev[m].Load() }

// setResident publishes one tier's residency flip.
func (h *handle) setResident(m storage.Media, resident bool) {
	for {
		old := h.res.Load()
		var next uint32
		if resident {
			next = old | 1<<uint(m)
		} else {
			next = old &^ (1 << uint(m))
		}
		if old == next || h.res.CompareAndSwap(old, next) {
			return
		}
	}
}

// bestTier returns the highest (fastest) tier with full residency.
func (h *handle) bestTier() (storage.Media, bool) {
	mask := h.res.Load()
	for _, m := range storage.AllMedia {
		if mask&(1<<uint(m)) != 0 {
			return m, true
		}
	}
	return 0, false
}

// residency decodes the published mask.
func (h *handle) residency() [3]bool {
	mask := h.res.Load()
	var out [3]bool
	for _, m := range storage.AllMedia {
		out[m] = mask&(1<<uint(m)) != 0
	}
	return out
}

// nsShards is the striped namespace service: a read-mostly path index
// sharded by a hash of the file's parent directory, so metadata operations
// from clients working in independent directories take independent locks
// (and a directory listing stays a single-shard operation, because every
// child of a directory hashes to the same stripe). Writes come only from
// the core loop (create/delete commits); the client hot path takes shard
// read locks only.
type nsShards struct {
	shards []nsShard
	mask   uint32
	count  atomic.Int64
}

type nsShard struct {
	mu sync.RWMutex
	// files maps full (clean) path -> handle.
	files map[string]*handle
	// children maps a directory path -> the set of file names in it, for
	// shard-local directory listings.
	children map[string]map[string]struct{}
	_        [32]byte // pad shards apart to keep lock words off shared lines
}

// newNSShards builds a stripe set with n rounded up to a power of two.
func newNSShards(n int) *nsShards {
	size := 1
	for size < n {
		size <<= 1
	}
	s := &nsShards{shards: make([]nsShard, size), mask: uint32(size - 1)}
	for i := range s.shards {
		s.shards[i].files = make(map[string]*handle)
		s.shards[i].children = make(map[string]map[string]struct{})
	}
	return s
}

// parentOf splits a clean absolute path into its parent directory and leaf
// name ("/a/b/c" -> "/a/b", "c"; "/c" -> "/", "c").
func parentOf(path string) (dir, name string) {
	last := 0
	for i := 0; i < len(path); i++ {
		if path[i] == '/' {
			last = i
		}
	}
	if last == 0 {
		return "/", path[1:]
	}
	return path[:last], path[last+1:]
}

// fnv32 is inline FNV-1a so shard selection does not allocate.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (s *nsShards) shardFor(dir string) *nsShard {
	return &s.shards[fnv32(dir)&s.mask]
}

// get resolves a clean path to its handle under the stripe's read lock.
func (s *nsShards) get(path string) (*handle, bool) {
	dir, _ := parentOf(path)
	sh := s.shardFor(dir)
	sh.mu.RLock()
	h, ok := sh.files[path]
	sh.mu.RUnlock()
	return h, ok
}

// put indexes a handle (core loop only).
func (s *nsShards) put(h *handle) {
	dir, name := parentOf(h.path)
	sh := s.shardFor(dir)
	sh.mu.Lock()
	if _, existed := sh.files[h.path]; !existed {
		s.count.Add(1)
	}
	sh.files[h.path] = h
	kids := sh.children[dir]
	if kids == nil {
		kids = make(map[string]struct{})
		sh.children[dir] = kids
	}
	kids[name] = struct{}{}
	sh.mu.Unlock()
}

// remove unindexes a path (core loop only).
func (s *nsShards) remove(path string) {
	dir, name := parentOf(path)
	sh := s.shardFor(dir)
	sh.mu.Lock()
	if _, ok := sh.files[path]; ok {
		delete(sh.files, path)
		s.count.Add(-1)
		if kids := sh.children[dir]; kids != nil {
			delete(kids, name)
			if len(kids) == 0 {
				delete(sh.children, dir)
			}
		}
	}
	sh.mu.Unlock()
}

// list returns the sorted file names directly under dir.
func (s *nsShards) list(dir string) []string {
	sh := s.shardFor(dir)
	sh.mu.RLock()
	kids := sh.children[dir]
	out := make([]string, 0, len(kids))
	for name := range kids {
		out = append(out, name)
	}
	sh.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Len returns the number of indexed files.
func (s *nsShards) Len() int64 { return s.count.Load() }
