package server_test

// The tenant-isolation acceptance suite for the multi-tenant QoS path:
//
// 1. Differential safety: a server whose config declares a single tenant
//    (tagged traffic, per-tenant histograms, no SLO) must reproduce the
//    untenanted server bit-for-bit — residency, capacity accounting,
//    executor stats, and every latency histogram — at shards=1 and 4.
// 2. Isolation: with a flooding tenant saturating the one HDD channel, the
//    victim tenant's read p99 under weighted-fair scheduling must be
//    strictly below its p99 under plain FIFO.
// 3. Quota: a tenant's ledger borrow budget gates CreateAs once its shard
//    quota runs dry, while unmetered tenants keep the whole pool.
// 4. SLO: a tenant breaching its read SLO makes the admission controller
//    defer background movement, and the deferred queue still drains.

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"octostore/internal/cluster"
	"octostore/internal/core"
	"octostore/internal/dfs"
	"octostore/internal/ml"
	"octostore/internal/policy"
	"octostore/internal/server"
	"octostore/internal/sim"
	"octostore/internal/storage"
)

// runTenantedDiff replays the sharded differential trace through a contended
// plane. When tenanted, the plane and the inner config carry a one-entry
// tenant table and every operation is issued as tenant 0 through the *As
// API; otherwise the identical trace runs untagged.
func runTenantedDiff(t *testing.T, ops []diffOp, shards int, tenanted bool) *server.ShardedServer {
	t.Helper()
	huge := int64(1) << 60
	inf := math.Inf(1)
	planeCfg := storage.PlaneConfig{MaxQueue: time.Hour}
	var tenants []server.TenantConfig
	if tenanted {
		tenants = []server.TenantConfig{{ID: 0, Weight: 2}}
		planeCfg.Tenants = server.PlaneTenants(tenants)
	}
	clCfg := shardedDiffCluster()
	clCfg.Plane = storage.NewContendedPlane(planeCfg)
	srv, err := server.NewSharded(server.ShardedConfig{
		Shards:  shards,
		Cluster: clCfg,
		DFS:     dfs.Config{Mode: dfs.ModePinnedHDD, Seed: 7, ClientRate: 2000e6},
		Build: func(_ int, fs *dfs.FileSystem) (*core.Manager, error) {
			cfg := core.DefaultConfig()
			cfg.MonitorConcurrency = 64
			ctx := core.NewContext(fs, cfg)
			up, err := policy.NewUpgrade("osa", ctx, ml.DefaultLearnerConfig())
			if err != nil {
				return nil, err
			}
			return core.NewManager(ctx, nil, up), nil
		},
		Quota: server.QuotaConfig{
			InitialFraction:   0.25,
			BorrowChunk:       16 * storage.MB,
			ReconcileInterval: 10 * time.Second,
		},
		Inner: server.Config{ // replay mode
			Tenants: tenants,
			Executor: server.ExecutorConfig{
				WorkersPerTier:  64,
				QueueDepth:      1 << 14,
				BudgetBytes:     [3]int64{huge, huge, huge},
				RateBytesPerSec: [3]float64{inf, inf, inf},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	base := sim.Epoch
	for _, o := range ops {
		at := base.Add(o.at)
		switch o.kind {
		case 0:
			srv.CreateAt(o.path, o.size, at)
		case 1:
			if tenanted {
				_, _ = srv.AccessAtAs(o.path, at, 0)
			} else {
				_, _ = srv.AccessAt(o.path, at)
			}
		case 2:
			srv.DeleteAt(o.path, at)
		}
		srv.Flush()
	}
	srv.Flush()
	return srv
}

// TestTenantDifferentialBitForBit is the "tenant plumbing changes nothing"
// guarantee: declaring a single tenant (and routing every op through the
// tenant-tagged API) must leave residency, capacity accounting, executor
// stats, and the read-latency histograms bit-identical to the untenanted
// replay, at shards=1 and shards=4.
func TestTenantDifferentialBitForBit(t *testing.T) {
	ops := shardedDiffTrace()
	for _, shards := range []int{1, 4} {
		label := fmt.Sprintf("shards=%d", shards)
		plain := runTenantedDiff(t, ops, shards, false)
		tagged := runTenantedDiff(t, ops, shards, true)

		if v := plain.Verify(); len(v) > 0 {
			t.Fatalf("%s: untenanted invariants: %v", label, v)
		}
		if v := tagged.Verify(); len(v) > 0 {
			t.Fatalf("%s: tenanted invariants: %v", label, v)
		}
		plainRes, taggedRes := plain.TierResidency(), tagged.TierResidency()
		if len(plainRes) != len(taggedRes) {
			t.Fatalf("%s: file count diverged: %d vs %d", label, len(plainRes), len(taggedRes))
		}
		for path, want := range plainRes {
			if got := taggedRes[path]; got != want {
				t.Fatalf("%s: residency of %q diverged: %v vs %v", label, path, want, got)
			}
		}
		if a, b := plain.LiveReplicaBytes(), tagged.LiveReplicaBytes(); a != b {
			t.Fatalf("%s: live bytes diverged: %d vs %d", label, a, b)
		}
		for _, m := range storage.AllMedia {
			ua, ca := plain.TierUsage(m)
			ub, cb := tagged.TierUsage(m)
			if ua != ub || ca != cb {
				t.Fatalf("%s: %s usage diverged: %d/%d vs %d/%d", label, m, ua, ca, ub, cb)
			}
			if a, b := plain.ReadLatency(m).Counts(), tagged.ReadLatency(m).Counts(); a != b {
				t.Fatalf("%s: %s read-latency histogram diverged:\nuntenanted %v\ntenanted   %v", label, m, a, b)
			}
		}
		if a, b := plain.ExecutorStats(), tagged.ExecutorStats(); a != b {
			t.Fatalf("%s: executor stats diverged:\nuntenanted %+v\ntenanted   %+v", label, a, b)
		}

		// The tenanted run must have observed every charged read in tenant
		// 0's histogram too — the same latencies, bucket for bucket.
		var total, reads int64
		var tierSum [64]int64
		for _, m := range storage.AllMedia {
			c := tagged.ReadLatency(m).Counts()
			for b, n := range c {
				tierSum[b] += n
				reads += n
			}
		}
		th := tagged.TenantReadLatency(0)
		if th == nil {
			t.Fatalf("%s: configured tenant has no histogram", label)
		}
		tc := th.Counts()
		for b := range tc {
			total += tc[b]
			if tc[b] != tierSum[b] {
				t.Fatalf("%s: tenant histogram bucket %d = %d, tier sum %d", label, b, tc[b], tierSum[b])
			}
		}
		if reads == 0 || total == 0 {
			t.Fatalf("%s: no reads were charged; differential is vacuous", label)
		}
		if st := tagged.SLOStats(); st.Checks != 0 || st.Breaches != 0 {
			t.Fatalf("%s: SLO controller ran without any SLO configured: %+v", label, st)
		}
		plain.Close()
		tagged.Close()
	}
}

// tenantIsolationVictimP99 replays a flood-vs-victim contention pattern on
// one physical HDD channel and returns the victim tenant's read p99. When
// qos is true the plane schedules weighted-fair (victim weight 4, flood
// weight 1); otherwise the identical traffic runs through plain FIFO.
func tenantIsolationVictimP99(t *testing.T, qos bool) time.Duration {
	t.Helper()
	const victim, flood = storage.TenantID(1), storage.TenantID(2)
	tenants := []server.TenantConfig{{ID: victim, Weight: 4}, {ID: flood, Weight: 1}}
	planeCfg := storage.PlaneConfig{MaxQueue: time.Hour}
	if qos {
		planeCfg.Tenants = server.PlaneTenants(tenants)
	}
	clCfg := cluster.Config{
		Workers:      1,
		SlotsPerNode: 4,
		Spec: storage.NodeSpec{
			{Media: storage.Memory, Capacity: 64 * storage.MB, ReadBW: 4000e6, WriteBW: 3000e6, Count: 1},
			{Media: storage.SSD, Capacity: 256 * storage.MB, ReadBW: 500e6, WriteBW: 400e6, Count: 1},
			{Media: storage.HDD, Capacity: 32 * storage.GB, ReadBW: 160e6, WriteBW: 140e6, Count: 1},
		},
		Plane: storage.NewContendedPlane(planeCfg),
	}
	srv, err := server.NewSharded(server.ShardedConfig{
		Shards:  1,
		Cluster: clCfg,
		DFS:     dfs.Config{Mode: dfs.ModePinnedHDD, Seed: 9, Replication: 1, ClientRate: 2000e6},
		Inner:   server.Config{Tenants: tenants}, // replay mode, no SLO
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()

	const files = 20
	base := sim.Epoch
	for i := 0; i < files; i++ {
		srv.CreateAt(fmt.Sprintf("/mix/f%02d", i), 64*storage.MB, base.Add(time.Duration(i)*100*time.Millisecond))
	}
	srv.Flush()

	// Contention rounds 5 virtual seconds apart: the flood tenant hits every
	// file at the round's instant (an open-loop burst far beyond the channel),
	// the victim issues one read at the same instant. The spacing lets the
	// victim's own fair-share horizon drain between rounds while the flood's
	// backlog only grows.
	for r := 0; r < 20; r++ {
		at := base.Add(time.Minute + time.Duration(r)*5*time.Second)
		for i := 0; i < files; i++ {
			if _, err := srv.AccessAtAs(fmt.Sprintf("/mix/f%02d", i), at, flood); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := srv.AccessAtAs(fmt.Sprintf("/mix/f%02d", r%files), at, victim); err != nil {
			t.Fatal(err)
		}
	}
	srv.Flush()
	if v := srv.Verify(); len(v) > 0 {
		t.Fatalf("qos=%v: invariant violations: %v", qos, v)
	}
	if qos {
		cp := srv.Plane().(*storage.ContendedPlane)
		if err := cp.CheckAccounting(); err != nil {
			t.Fatal(err)
		}
		st := cp.TenantStats()
		if len(st) != 2 || st[0].Requests == 0 || st[1].Requests == 0 {
			t.Fatalf("qos run did not drive both tenants through the plane: %+v", st)
		}
	}
	h := srv.TenantReadLatency(victim)
	if h == nil || h.Count() == 0 {
		t.Fatalf("qos=%v: victim tenant recorded no reads", qos)
	}
	p99 := h.Quantile(0.99)
	srv.Close()
	return p99
}

// TestTenantIsolationLowersVictimP99 is the headline isolation property: the
// victim tenant's read p99 under weighted-fair scheduling is strictly below
// its p99 when the same flood runs through plain FIFO.
func TestTenantIsolationLowersVictimP99(t *testing.T) {
	fifo := tenantIsolationVictimP99(t, false)
	fair := tenantIsolationVictimP99(t, true)
	t.Logf("victim read p99: fifo %v, weighted-fair %v", fifo, fair)
	if fifo == 0 {
		t.Fatal("fifo victim p99 is zero; the flood never queued the victim")
	}
	if fair >= fifo {
		t.Fatalf("weighted-fair victim p99 %v not strictly below fifo %v", fair, fifo)
	}
}

// TestTenantQuotaGatesCreate drives a metered tenant's creates until its
// ledger borrow budget is spent: the tenant then gets dfs.ErrNoCapacity even
// though the global pool still has room, the ledger never records commits
// past the quota, and an unmetered tenant keeps creating.
func TestTenantQuotaGatesCreate(t *testing.T) {
	const metered, open = storage.TenantID(1), storage.TenantID(2)
	quota := [3]int64{}
	quota[storage.HDD] = 256 * storage.MB
	srv, err := server.NewSharded(server.ShardedConfig{
		Shards: 2,
		Cluster: cluster.Config{
			Workers:      2,
			SlotsPerNode: 4,
			Spec: storage.NodeSpec{
				{Media: storage.Memory, Capacity: 64 * storage.MB, ReadBW: 4000e6, WriteBW: 3000e6, Count: 1},
				{Media: storage.SSD, Capacity: 128 * storage.MB, ReadBW: 500e6, WriteBW: 400e6, Count: 1},
				{Media: storage.HDD, Capacity: 2 * storage.GB, ReadBW: 160e6, WriteBW: 140e6, Count: 1},
			},
		},
		DFS: dfs.Config{Mode: dfs.ModePinnedHDD, Seed: 13, Replication: 1, ClientRate: 2000e6},
		Quota: server.QuotaConfig{
			InitialFraction: 0.25,
			BorrowChunk:     64 * storage.MB,
		},
		Inner: server.Config{
			TimeScale: 1000, // live pacing so blocking creates advance the clock
			Tenants: []server.TenantConfig{
				{ID: metered, Weight: 1, QuotaBytes: quota},
				{ID: open, Weight: 1},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.Ledger().TenantQuota(metered, storage.HDD); got != 256*storage.MB {
		t.Fatalf("tenant quota not wired into the ledger: %d", got)
	}
	srv.Start()
	defer srv.Close()

	// The metered tenant creates 64 MB files into one directory (one shard)
	// until its borrow budget is gone. The shard's initial HDD grant is
	// 0.25/2 of 2 GB per worker = 512 MB, plus at most 256 MB of metered
	// borrows: the create stream must fail before the 2.75 GB pool does.
	var failedAt = -1
	var lastErr error
	for i := 0; i < 24; i++ {
		err := srv.CreateAs(fmt.Sprintf("/meter/f%02d", i), 64*storage.MB, metered)
		if err != nil {
			failedAt, lastErr = i, err
			break
		}
	}
	if failedAt < 0 {
		t.Fatal("metered tenant was never cut off; quota did not gate creates")
	}
	if !errors.Is(lastErr, dfs.ErrNoCapacity) {
		t.Fatalf("cutoff error = %v, want dfs.ErrNoCapacity", lastErr)
	}
	if got := srv.Ledger().TenantCommittedBytes(metered, storage.HDD); got > 256*storage.MB {
		t.Fatalf("tenant committed %d bytes past its %d quota", got, 256*storage.MB)
	}
	// The pool still has capacity: the unmetered tenant keeps creating into
	// the same (exhausted) shard by borrowing freely.
	if err := srv.CreateAs("/meter/open", 64*storage.MB, open); err != nil {
		t.Fatalf("unmetered tenant blocked after a stranger's quota ran out: %v", err)
	}
	srv.Flush()
	if v := srv.Verify(); len(v) > 0 {
		t.Fatalf("invariant violations: %v", v)
	}
}

// TestSLOBreachDefersMovement closes the admission-control loop: a tenant
// with an unmeetable read SLO drives HDD reads, the controller's windowed
// p99 breaches, background movement is deferred — and the deferred queue
// still drains to completion afterwards (the defer wake keeps the engine
// runnable, so Flush cannot hang).
func TestSLOBreachDefersMovement(t *testing.T) {
	const tenant = storage.TenantID(1)
	tenants := []server.TenantConfig{{ID: tenant, Weight: 1, ReadSLO: time.Millisecond}}
	clCfg := cluster.Config{
		Workers:      1,
		SlotsPerNode: 4,
		Spec: storage.NodeSpec{
			{Media: storage.Memory, Capacity: 4 * storage.GB, ReadBW: 4000e6, WriteBW: 3000e6, Count: 1},
			{Media: storage.SSD, Capacity: 8 * storage.GB, ReadBW: 500e6, WriteBW: 400e6, Count: 1},
			{Media: storage.HDD, Capacity: 64 * storage.GB, ReadBW: 160e6, WriteBW: 140e6, Count: 1},
		},
		Plane: storage.NewContendedPlane(storage.PlaneConfig{MaxQueue: time.Hour}),
	}
	huge := int64(1) << 60
	srv, err := server.NewSharded(server.ShardedConfig{
		Shards:  1,
		Cluster: clCfg,
		DFS:     dfs.Config{Mode: dfs.ModePinnedHDD, Seed: 5, Replication: 1, ClientRate: 2000e6},
		Build: func(_ int, fs *dfs.FileSystem) (*core.Manager, error) {
			ctx := core.NewContext(fs, core.DefaultConfig())
			up, err := policy.NewUpgrade("osa", ctx, ml.DefaultLearnerConfig())
			if err != nil {
				return nil, err
			}
			return core.NewManager(ctx, nil, up), nil
		},
		Inner: server.Config{ // replay mode
			Tenants: tenants,
			SLO: server.SLOConfig{
				Interval:    5 * time.Second,
				MinSamples:  4,
				DeferWindow: 10 * time.Second,
			},
			Executor: server.ExecutorConfig{
				WorkersPerTier: 4,
				QueueDepth:     256,
				BudgetBytes:    [3]int64{huge, huge, huge},
				MoveLatency:    100 * time.Millisecond,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()

	const files = 12
	base := sim.Epoch
	for i := 0; i < files; i++ {
		srv.CreateAt(fmt.Sprintf("/slo/f%02d", i), 64*storage.MB, base.Add(time.Duration(i)*100*time.Millisecond))
	}
	srv.Flush()

	// Every HDD read costs >= the 6 ms base latency, so a 1 ms SLO breaches
	// in any judged window. The access stamps span several controller
	// intervals; each access also triggers an OSA upgrade into memory, which
	// the breach must defer and the flush must still drain.
	for i := 0; i < files; i++ {
		at := base.Add(time.Minute + time.Duration(i)*time.Second)
		if _, err := srv.AccessAtAs(fmt.Sprintf("/slo/f%02d", i), at, tenant); err != nil {
			t.Fatal(err)
		}
	}
	srv.Flush()

	slo := srv.SLOStats()
	if slo.Checks == 0 || slo.Breaches == 0 {
		t.Fatalf("controller judged nothing: %+v", slo)
	}
	ex := srv.ExecutorStats()
	if ex.Defers == 0 {
		t.Fatalf("breach never deferred movement: slo %+v, executor %+v", slo, ex)
	}
	var upgraded int64
	srv.Exec(func(_ int, fs *dfs.FileSystem) {
		upgraded = fs.Stats().BytesUpgradedTo[storage.Memory]
	})
	if upgraded == 0 {
		t.Fatal("deferred movement never drained; upgrades were lost, not postponed")
	}
	if v := srv.Verify(); len(v) > 0 {
		t.Fatalf("invariant violations: %v", v)
	}
	srv.Close()
}
