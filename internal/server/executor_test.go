package server

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"octostore/internal/cluster"
	"octostore/internal/core"
	"octostore/internal/dfs"
	"octostore/internal/sim"
	"octostore/internal/storage"
)

// executorFixture builds a single-threaded fs with n files pinned to HDD so
// tests can drive the executor directly (no server, no goroutines).
func executorFixture(t *testing.T, n int, size int64) (*sim.Engine, *dfs.FileSystem, []*dfs.File) {
	t.Helper()
	engine := sim.NewEngine()
	cl, err := cluster.New(engine, cluster.Config{Workers: 4, SlotsPerNode: 4, Spec: diffWorkerSpecInternal()})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := dfs.New(cl, dfs.Config{Mode: dfs.ModePinnedHDD, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	files := make([]*dfs.File, 0, n)
	for i := 0; i < n; i++ {
		fs.Create(fmt.Sprintf("/f/%03d", i), size, func(f *dfs.File, err error) {
			if err != nil {
				t.Fatal(err)
			}
			files = append(files, f)
		})
	}
	engine.Run()
	if len(files) != n {
		t.Fatalf("created %d files, want %d", len(files), n)
	}
	return engine, fs, files
}

func diffWorkerSpecInternal() storage.NodeSpec {
	return storage.NodeSpec{
		{Media: storage.Memory, Capacity: 2 * storage.GB, ReadBW: 4000e6, WriteBW: 3000e6, Count: 1},
		{Media: storage.SSD, Capacity: 8 * storage.GB, ReadBW: 500e6, WriteBW: 400e6, Count: 1},
		{Media: storage.HDD, Capacity: 64 * storage.GB, ReadBW: 160e6, WriteBW: 140e6, Count: 2},
	}
}

func TestExecutorShedsWhenQueueFull(t *testing.T) {
	engine, fs, files := executorFixture(t, 6, 64*storage.MB)
	ex := NewMovementExecutor(fs, ExecutorConfig{WorkersPerTier: 1, QueueDepth: 2})
	var outcomes []error
	for _, f := range files {
		f := f
		ex.Enqueue(core.MoveRequest{File: f, From: storage.HDD, To: storage.SSD,
			Done: func(err error) { outcomes = append(outcomes, err) }})
	}
	// Slots: 1 active + 2 queued admitted; the remaining 3 shed immediately.
	sheds := 0
	for _, err := range outcomes {
		if errors.Is(err, ErrMovementShed) {
			sheds++
		} else if err != nil {
			t.Fatalf("unexpected immediate outcome: %v", err)
		}
	}
	if sheds != 3 {
		t.Fatalf("immediate sheds = %d, want 3 (outcomes %v)", sheds, outcomes)
	}
	engine.Run()
	if !ex.Idle() {
		t.Fatal("executor not idle after drain")
	}
	st := ex.Stats().PerTier[storage.SSD]
	if st.Completed != 3 || st.Shed != 3 || st.Failed != 0 {
		t.Fatalf("stats = %+v, want 3 completed / 3 shed", st)
	}
	if len(outcomes) != 6 {
		t.Fatalf("outcomes = %d, want 6", len(outcomes))
	}
	if err := fs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestExecutorTokenBucketPacesAdmissions(t *testing.T) {
	engine, fs, files := executorFixture(t, 8, 64*storage.MB)
	// SSD: a 100 MB bucket refilled at 64 MB of virtual second — the first
	// 64 MB move is admitted from the initial burst, every later one must
	// wait for refill, so the 512 MB batch needs >= (512-100)/64 ≈ 6.4
	// virtual seconds of budget regardless of the 4 free slots.
	budget := [3]int64{1 << 40, 100 * storage.MB, 1 << 40}
	var rates [3]float64
	rates[storage.SSD] = float64(64 * storage.MB)
	ex := NewMovementExecutor(fs, ExecutorConfig{
		WorkersPerTier: 4, QueueDepth: 64, BudgetBytes: budget, RateBytesPerSec: rates,
	})
	start := engine.Now()
	done := 0
	for _, f := range files {
		ex.Enqueue(core.MoveRequest{File: f, From: storage.HDD, To: storage.SSD,
			Done: func(err error) {
				if err != nil {
					t.Errorf("move failed: %v", err)
				}
				done++
			}})
	}
	engine.Run()
	stats := ex.Stats()
	st := stats.PerTier[storage.SSD]
	if done != 8 || st.Completed != 8 {
		t.Fatalf("completed %d/%d moves (%+v)", done, 8, st)
	}
	if st.AdmittedBytes != 8*64*storage.MB {
		t.Fatalf("admitted %d bytes, want %d", st.AdmittedBytes, 8*64*storage.MB)
	}
	// The bucket invariant: admissions never outran burst + rate*time.
	if v := stats.CheckBudgets(); v != "" {
		t.Fatal(v)
	}
	// And the rate was actually binding: draining 512 MB through a 100 MB
	// bucket at 64 MB/s takes at least 6.4 virtual seconds.
	if elapsed := engine.Now().Sub(start).Seconds(); elapsed < 6.4 {
		t.Fatalf("batch drained in %.2f virtual seconds; token bucket did not pace admissions", elapsed)
	}
}

func TestExecutorUnmeteredRate(t *testing.T) {
	engine, fs, files := executorFixture(t, 4, 64*storage.MB)
	rates := [3]float64{math.Inf(1), math.Inf(1), math.Inf(1)}
	ex := NewMovementExecutor(fs, ExecutorConfig{
		WorkersPerTier: 8, QueueDepth: 64,
		BudgetBytes:     [3]int64{1 << 40, 1 << 40, 1 << 40},
		RateBytesPerSec: rates,
	})
	done := 0
	for _, f := range files {
		ex.Enqueue(core.MoveRequest{File: f, From: storage.HDD, To: storage.SSD,
			Done: func(err error) { done++ }})
	}
	engine.Run()
	if done != 4 || !ex.Idle() {
		t.Fatalf("unmetered executor completed %d/4, idle %v", done, ex.Idle())
	}
}

func TestExecutorShedsOversizedRequest(t *testing.T) {
	_, fs, files := executorFixture(t, 1, 256*storage.MB)
	ex := NewMovementExecutor(fs, ExecutorConfig{BudgetBytes: [3]int64{1, 100 * storage.MB, 1}})
	var got error
	ex.Enqueue(core.MoveRequest{File: files[0], From: storage.HDD, To: storage.SSD,
		Done: func(err error) { got = err }})
	if !errors.Is(got, ErrMovementShed) {
		t.Fatalf("oversized request outcome = %v, want ErrMovementShed", got)
	}
	if st := ex.Stats().PerTier[storage.SSD]; st.Shed != 1 || st.Scheduled != 0 {
		t.Fatalf("stats = %+v", st)
	}
}
