package server

// Internal-package test for the churn device-refresh hook: node loss can
// remove a tier's representative replica (block 0's) while the file stays
// fully resident on the tier via other nodes — no residency flip fires, so
// without the membership hook the handle would keep charging the dead
// node's data-plane channel.

import (
	"strings"
	"testing"

	"octostore/internal/cluster"
	"octostore/internal/dfs"
	"octostore/internal/sim"
	"octostore/internal/storage"
)

func TestChurnRefreshesHandleDevices(t *testing.T) {
	e := sim.NewEngine()
	spec := storage.NodeSpec{
		{Media: storage.Memory, Capacity: 256 * storage.MB, ReadBW: 4000e6, WriteBW: 3000e6, Count: 1},
		{Media: storage.SSD, Capacity: 1 * storage.GB, ReadBW: 500e6, WriteBW: 400e6, Count: 1},
		{Media: storage.HDD, Capacity: 8 * storage.GB, ReadBW: 160e6, WriteBW: 140e6, Count: 1},
	}
	// The refresh only matters (and only runs) with a plane attached:
	// plane-less servers never read the device pointers.
	c := cluster.MustNew(e, cluster.Config{
		Workers: 2, SlotsPerNode: 4, Spec: spec,
		Plane: storage.NewContendedPlane(storage.PlaneConfig{}),
	})
	fs := dfs.MustNew(c, dfs.Config{Mode: dfs.ModePinnedHDD, Seed: 2, Replication: 2})
	srv := New(fs, nil, Config{})

	var f *dfs.File
	fs.Create("/r/f0", 16*storage.MB, func(file *dfs.File, err error) {
		if err != nil {
			t.Fatal(err)
		}
		f = file
	})
	e.Run()
	srv.Start()
	defer srv.Close()

	h, ok := srv.resolve("/r/f0")
	if !ok {
		t.Fatal("file not indexed")
	}
	victim := f.Blocks()[0].ReplicaOn(storage.HDD).Node()
	if got := h.device(storage.HDD); got == nil || !strings.HasPrefix(got.ID(), victim.Name()) {
		t.Fatalf("representative device %v not on block 0's node %s", got, victim.Name())
	}

	srv.Exec(func(fs *dfs.FileSystem) { fs.FailNode(victim) })

	if !f.HasReplicaOn(storage.HDD) {
		t.Fatal("file lost HDD residency; the no-flip stale case was not constructed")
	}
	got := h.device(storage.HDD)
	if got == nil {
		t.Fatal("handle lost its representative device")
	}
	if strings.HasPrefix(got.ID(), victim.Name()) {
		t.Fatalf("handle still charges failed node's device %s", got.ID())
	}
}
