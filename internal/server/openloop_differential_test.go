package server_test

// Open-loop vs closed-loop differential acceptance test for the serving
// layer: the same fixed trace replayed (a) closed-loop — every op fenced
// before the next fires, the way a blocking client drives the server — and
// (b) open-loop — every op fired with its virtual stamp up front and a
// single fence at the end, the way octoload's open-arrival dispatcher
// drives it. The final tier residency of every file, the live replica
// bytes, and the per-tier capacity accounting must be identical: an open
// arrival process changes *when* commands reach the core loop relative to
// engine progress, and must not change *what* the namespace converges to.
//
// The trace is shaped so the comparison is meaningful rather than lucky:
// creates are staged (fenced) in both variants so accesses never race an
// uncommitted write pipeline, each hot file is accessed exactly once (a
// re-access could legitimately observe different interim residency between
// the variants), and deletes target a cold set disjoint from the accessed
// set. Runs at shards=1 and shards=4; the sharded run still splits
// capacity into quotas, so the open-loop flood also exercises the borrow
// protocol under a backlog of stamped upgrades.

import (
	"fmt"
	"testing"
	"time"

	"octostore/internal/server"
	"octostore/internal/sim"
	"octostore/internal/storage"
)

// openLoopTrace: 96 staged creates over 16 parent directories, one access
// per hot file (every third file — the accessed set fits the 4 GB global
// memory tier), deletes of cold files only.
func openLoopTrace() (stage, load []diffOp) {
	path := func(i int) string { return fmt.Sprintf("/data/d%02d/f%03d", i%16, i) }
	at := func(i int) time.Duration { return time.Duration(i) * 10 * time.Second }
	const files = 96
	step := 0
	for i := 0; i < files; i++ {
		size := int64(16+(i*7)%145) * storage.MB
		stage = append(stage, diffOp{at: at(step), kind: 0, path: path(i), size: size})
		step++
	}
	for i := 0; i < files; i += 3 {
		load = append(load, diffOp{at: at(step), kind: 1, path: path(i)})
		step++
	}
	for i := 1; i < files; i += 5 {
		if i%3 == 0 {
			continue // keep the delete set disjoint from the accessed set
		}
		load = append(load, diffOp{at: at(step), kind: 2, path: path(i)})
		step++
	}
	return stage, load
}

// replayTrace drives the staged creates fenced, then the load phase either
// fenced per op (closed) or fired entirely before one final fence (open).
func replayTrace(t *testing.T, shards int, open bool) *server.ShardedServer {
	t.Helper()
	stage, load := openLoopTrace()
	srv := newShardedReplayServer(t, shards, nil)
	base := sim.Epoch
	for _, o := range stage {
		srv.CreateAt(o.path, o.size, base.Add(o.at))
		srv.Flush()
	}
	for _, o := range load {
		at := base.Add(o.at)
		switch o.kind {
		case 1:
			_, _ = srv.AccessAt(o.path, at)
		case 2:
			srv.DeleteAt(o.path, at)
		}
		if !open {
			srv.Flush()
		}
	}
	srv.Flush()
	return srv
}

func TestDifferentialOpenVsClosedLoop(t *testing.T) {
	for _, shards := range []int{1, 4} {
		label := fmt.Sprintf("shards=%d", shards)
		closed := replayTrace(t, shards, false)
		open := replayTrace(t, shards, true)

		for name, srv := range map[string]*server.ShardedServer{"closed": closed, "open": open} {
			if violations := srv.Verify(); len(violations) > 0 {
				t.Fatalf("%s %s: invariants: %v", label, name, violations)
			}
			if st := srv.Stats(); st.EventsDropped != 0 {
				t.Fatalf("%s %s: %d access events dropped; the comparison would be vacuous", label, name, st.EventsDropped)
			}
		}

		cRes, oRes := closed.TierResidency(), open.TierResidency()
		if len(cRes) != len(oRes) {
			t.Fatalf("%s: file count diverged: closed %d, open %d", label, len(cRes), len(oRes))
		}
		inMemory := 0
		for path, want := range cRes {
			got, ok := oRes[path]
			if !ok {
				t.Fatalf("%s: %q exists only in the closed-loop run", label, path)
			}
			if got != want {
				t.Fatalf("%s: residency of %q diverged: closed %v, open %v", label, path, want, got)
			}
			if want[storage.Memory] {
				inMemory++
			}
		}
		if inMemory == 0 {
			t.Fatalf("%s: no file ended memory-resident; the trace drove no upgrades", label)
		}
		if a, b := closed.LiveReplicaBytes(), open.LiveReplicaBytes(); a != b {
			t.Fatalf("%s: live replica bytes diverged: closed %d, open %d", label, a, b)
		}
		for _, m := range storage.AllMedia {
			ua, ca := closed.TierUsage(m)
			ub, cb := open.TierUsage(m)
			if ua != ub || ca != cb {
				t.Fatalf("%s: %s usage diverged: closed %d/%d, open %d/%d", label, m, ua, ca, ub, cb)
			}
			lc, lo := closed.Ledger(), open.Ledger()
			if lc.FreeBytes(m) != lo.FreeBytes(m) || lc.ReservedBytes(m) != lo.ReservedBytes(m) {
				t.Fatalf("%s: %s ledger diverged: closed free %d reserved %d, open free %d reserved %d",
					label, m, lc.FreeBytes(m), lc.ReservedBytes(m), lo.FreeBytes(m), lo.ReservedBytes(m))
			}
		}

		closed.Close()
		open.Close()
	}
}
