package server

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a lock-free log2-bucketed latency histogram: bucket i counts
// observations with ceil(log2(ns)) == i, giving ~2x resolution from 1 ns to
// ~9 years in 64 fixed buckets. Concurrent Observe calls are a single
// atomic add, so every client goroutine records into one shared histogram
// without coordination; quantiles are answered from the bucket counts using
// each bucket's geometric midpoint.
type Histogram struct {
	buckets [64]atomic.Int64
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	if ns == 0 {
		ns = 1
	}
	h.buckets[bits.Len64(ns)-1].Add(1)
}

// AddFrom accumulates another histogram's buckets into h (used to merge
// per-shard histograms into one report).
func (h *Histogram) AddFrom(o *Histogram) {
	for i := range h.buckets {
		if n := o.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Counts snapshots the bucket counters; the SLO controller diffs snapshots
// to answer quantiles over a window, and the differential tests compare
// whole histograms bit-for-bit.
func (h *Histogram) Counts() [64]int64 {
	var out [64]int64
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile returns the q-quantile (0..1) as a duration, approximated by the
// geometric midpoint of the bucket containing the rank. Zero when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	return quantileOf(h.Counts(), q)
}

// QuantileOf answers the q-quantile over an arbitrary bucket-count vector
// in the Histogram.Counts layout — a live snapshot, or a windowed delta of
// two snapshots. The time-series collector (internal/metrics) diffs
// successive snapshots and quantiles each window through this.
func QuantileOf(counts [64]int64, q float64) time.Duration {
	return quantileOf(counts, q)
}

// quantileOf answers the q-quantile over an arbitrary bucket-count vector
// (a live snapshot, or a windowed delta of two snapshots).
func quantileOf(counts [64]int64, q float64) time.Duration {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(total-1))
	var seen int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		seen += c
		if seen > rank {
			lo := int64(1) << uint(i)
			// Geometric midpoint of [2^i, 2^(i+1)): lo * sqrt(2).
			return time.Duration(float64(lo) * 1.41421356)
		}
	}
	return 0
}

// ServeStats is the serving layer's atomic counter set; every field is
// updated from client goroutines or the core loop without locks and may be
// snapshotted at any time via Server.Stats.
type serveCounters struct {
	accesses     atomic.Int64
	accessMisses atomic.Int64 // path not found / not yet complete
	noReplica    atomic.Int64 // found, but no fully resident tier (churn window)
	servedByTier [3]atomic.Int64
	bytesServed  atomic.Int64
	creates      atomic.Int64
	createErrors atomic.Int64
	deletes      atomic.Int64
	deleteErrors atomic.Int64
	stats        atomic.Int64
	lists        atomic.Int64
	batches      atomic.Int64 // ring drain batches applied by the core loop
	drained      atomic.Int64 // access events replayed into the policy layer
}

// ServeStats is a point-in-time snapshot of the serving counters.
type ServeStats struct {
	Accesses      int64
	AccessMisses  int64
	NoReplica     int64
	ServedByTier  [3]int64
	BytesServed   int64
	Creates       int64
	CreateErrors  int64
	Deletes       int64
	DeleteErrors  int64
	Stats         int64
	Lists         int64
	DrainBatches  int64
	EventsDrained int64
	EventsDropped int64
}

// add accumulates another snapshot (per-shard aggregation).
func (s *ServeStats) add(o ServeStats) {
	s.Accesses += o.Accesses
	s.AccessMisses += o.AccessMisses
	s.NoReplica += o.NoReplica
	for i := range s.ServedByTier {
		s.ServedByTier[i] += o.ServedByTier[i]
	}
	s.BytesServed += o.BytesServed
	s.Creates += o.Creates
	s.CreateErrors += o.CreateErrors
	s.Deletes += o.Deletes
	s.DeleteErrors += o.DeleteErrors
	s.Stats += o.Stats
	s.Lists += o.Lists
	s.DrainBatches += o.DrainBatches
	s.EventsDrained += o.EventsDrained
	s.EventsDropped += o.EventsDropped
}

func (c *serveCounters) snapshot(dropped int64) ServeStats {
	return ServeStats{
		Accesses:     c.accesses.Load(),
		AccessMisses: c.accessMisses.Load(),
		NoReplica:    c.noReplica.Load(),
		ServedByTier: [3]int64{
			c.servedByTier[0].Load(), c.servedByTier[1].Load(), c.servedByTier[2].Load(),
		},
		BytesServed:   c.bytesServed.Load(),
		Creates:       c.creates.Load(),
		CreateErrors:  c.createErrors.Load(),
		Deletes:       c.deletes.Load(),
		DeleteErrors:  c.deleteErrors.Load(),
		Stats:         c.stats.Load(),
		Lists:         c.lists.Load(),
		DrainBatches:  c.batches.Load(),
		EventsDrained: c.drained.Load(),
		EventsDropped: dropped,
	}
}
