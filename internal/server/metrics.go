package server

import (
	"sync/atomic"
	"time"

	"octostore/internal/obs"
)

// Histogram is the observability plane's lock-free log2-bucketed latency
// histogram. The implementation lives in internal/obs so the serving layer,
// the time-series collector, and the metrics registry share one type; the
// alias keeps the serving API (and every existing call site) unchanged.
type Histogram = obs.Histogram

// QuantileOf answers the q-quantile over an arbitrary bucket-count vector
// in the Histogram.Counts layout — a live snapshot, or a windowed delta of
// two snapshots. Forwarded from internal/obs for API stability.
func QuantileOf(counts [64]int64, q float64) time.Duration {
	return obs.QuantileOf(counts, q)
}

// ServeStats is the serving layer's atomic counter set; every field is
// updated from client goroutines or the core loop without locks and may be
// snapshotted at any time via Server.Stats.
type serveCounters struct {
	accesses     atomic.Int64
	accessMisses atomic.Int64 // path not found / not yet complete
	noReplica    atomic.Int64 // found, but no fully resident tier (churn window)
	servedByTier [3]atomic.Int64
	bytesServed  atomic.Int64
	creates      atomic.Int64
	createErrors atomic.Int64
	deletes      atomic.Int64
	deleteErrors atomic.Int64
	stats        atomic.Int64
	lists        atomic.Int64
	batches      atomic.Int64 // ring drain batches applied by the core loop
	drained      atomic.Int64 // access events replayed into the policy layer
}

// ServeStats is a point-in-time snapshot of the serving counters.
type ServeStats struct {
	Accesses      int64
	AccessMisses  int64
	NoReplica     int64
	ServedByTier  [3]int64
	BytesServed   int64
	Creates       int64
	CreateErrors  int64
	Deletes       int64
	DeleteErrors  int64
	Stats         int64
	Lists         int64
	DrainBatches  int64
	EventsDrained int64
	EventsDropped int64
}

// add accumulates another snapshot (per-shard aggregation).
func (s *ServeStats) add(o ServeStats) {
	s.Accesses += o.Accesses
	s.AccessMisses += o.AccessMisses
	s.NoReplica += o.NoReplica
	for i := range s.ServedByTier {
		s.ServedByTier[i] += o.ServedByTier[i]
	}
	s.BytesServed += o.BytesServed
	s.Creates += o.Creates
	s.CreateErrors += o.CreateErrors
	s.Deletes += o.Deletes
	s.DeleteErrors += o.DeleteErrors
	s.Stats += o.Stats
	s.Lists += o.Lists
	s.DrainBatches += o.DrainBatches
	s.EventsDrained += o.EventsDrained
	s.EventsDropped += o.EventsDropped
}

func (c *serveCounters) snapshot(dropped int64) ServeStats {
	return ServeStats{
		Accesses:     c.accesses.Load(),
		AccessMisses: c.accessMisses.Load(),
		NoReplica:    c.noReplica.Load(),
		ServedByTier: [3]int64{
			c.servedByTier[0].Load(), c.servedByTier[1].Load(), c.servedByTier[2].Load(),
		},
		BytesServed:   c.bytesServed.Load(),
		Creates:       c.creates.Load(),
		CreateErrors:  c.createErrors.Load(),
		Deletes:       c.deletes.Load(),
		DeleteErrors:  c.deleteErrors.Load(),
		Stats:         c.stats.Load(),
		Lists:         c.lists.Load(),
		DrainBatches:  c.batches.Load(),
		EventsDrained: c.drained.Load(),
		EventsDropped: dropped,
	}
}
