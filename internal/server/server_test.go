package server_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"octostore/internal/cluster"
	"octostore/internal/core"
	"octostore/internal/dfs"
	"octostore/internal/ml"
	"octostore/internal/policy"
	"octostore/internal/server"
	"octostore/internal/sim"
	"octostore/internal/storage"
)

// servedWorkerSpec is deliberately memory-tight: the hot set cannot fit the
// memory tier, so live accesses drive OSA upgrades and the high watermark
// drives LRU downgrades — real traffic for the movement executor.
func servedWorkerSpec() storage.NodeSpec {
	return storage.NodeSpec{
		{Media: storage.Memory, Capacity: 192 * storage.MB, ReadBW: 4000e6, WriteBW: 3000e6, Count: 1},
		{Media: storage.SSD, Capacity: 4 * storage.GB, ReadBW: 500e6, WriteBW: 400e6, Count: 1},
		{Media: storage.HDD, Capacity: 32 * storage.GB, ReadBW: 160e6, WriteBW: 140e6, Count: 2},
	}
}

// buildServed wires a managed system plus serving layer for the live-load
// tests: wall-paced virtual time, tight executor budgets so the budget
// invariant is actually stressed.
func buildServed(t *testing.T, workers int, ecfg server.ExecutorConfig) (*server.Server, *core.Manager, *dfs.FileSystem) {
	t.Helper()
	engine := sim.NewEngine()
	cl, err := cluster.New(engine, cluster.Config{Workers: workers, SlotsPerNode: 4, Spec: servedWorkerSpec()})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := dfs.New(cl, dfs.Config{Mode: dfs.ModeOctopus, Seed: 11, ClientRate: 2000e6})
	if err != nil {
		t.Fatal(err)
	}
	ctx := core.NewContext(fs, core.DefaultConfig())
	d, err := policy.NewDowngrade("lru", ctx, ml.DefaultLearnerConfig())
	if err != nil {
		t.Fatal(err)
	}
	u, err := policy.NewUpgrade("osa", ctx, ml.DefaultLearnerConfig())
	if err != nil {
		t.Fatal(err)
	}
	mgr := core.NewManager(ctx, d, u)
	mgr.Start()
	srv := server.New(fs, mgr, server.Config{
		TimeScale:    240, // 4 virtual minutes per wall second: periodic ticks fire
		PaceInterval: time.Millisecond,
		Executor:     ecfg,
	})
	return srv, mgr, fs
}

// TestConcurrentClientsWithChurn is the race-suite acceptance test:
// >= 8 concurrent closed-loop clients create, access, stat, list, and
// delete files while a worker node fails and a fresh one joins and the
// movement executor drains upgrades/downgrades. At the end the full
// invariant set must hold and the executor must never have exceeded any
// per-tier bandwidth budget.
func TestConcurrentClientsWithChurn(t *testing.T) {
	const (
		clients      = 8
		sharedFiles  = 48
		opsPerClient = 220
	)
	ecfg := server.ExecutorConfig{
		WorkersPerTier: 2,
		QueueDepth:     32,
		BudgetBytes:    [3]int64{256 * storage.MB, 1 * storage.GB, 2 * storage.GB},
		// Tight virtual-clock refill rates so the token bucket, not just the
		// burst, is exercised under live pacing.
		RateBytesPerSec: [3]float64{float64(64 * storage.MB), float64(128 * storage.MB), float64(256 * storage.MB)},
	}
	srv, mgr, fs := buildServed(t, 5, ecfg)
	srv.Start()

	// Stage a shared hot set through the serving layer, concurrently.
	var wg sync.WaitGroup
	shared := make([]string, sharedFiles)
	for i := 0; i < sharedFiles; i++ {
		shared[i] = fmt.Sprintf("/hot/d%02d/f%03d", i%8, i)
	}
	errCh := make(chan error, sharedFiles)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + c)))
			for i := c; i < sharedFiles; i += clients {
				size := (16 + rng.Int63n(112)) * storage.MB
				if err := srv.Create(shared[i], size); err != nil {
					errCh <- fmt.Errorf("preload %s: %w", shared[i], err)
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Closed-loop load with a mid-run node failure and a late join.
	stopChurn := make(chan struct{})
	var churnWG sync.WaitGroup
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		select {
		case <-time.After(150 * time.Millisecond):
		case <-stopChurn:
			return
		}
		srv.Exec(func(fs *dfs.FileSystem) {
			nodes := fs.Cluster().Nodes()
			victim := nodes[0]
			for _, n := range nodes[1:] {
				if n.ID() > victim.ID() {
					victim = n
				}
			}
			fs.FailNode(victim)
		})
		select {
		case <-time.After(150 * time.Millisecond):
		case <-stopChurn:
			return
		}
		srv.Exec(func(fs *dfs.FileSystem) {
			fs.AddNode(servedWorkerSpec(), 4)
		})
	}()

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(7000 + c)))
			zipf := rand.NewZipf(rng, 1.2, 1, uint64(sharedFiles-1))
			var own []string
			for i := 0; i < opsPerClient; i++ {
				switch r := rng.Float64(); {
				case r < 0.78:
					if _, err := srv.Access(shared[zipf.Uint64()]); err != nil {
						t.Errorf("client %d access: %v", c, err)
						return
					}
				case r < 0.88:
					if _, err := srv.Stat(shared[rng.Intn(sharedFiles)]); err != nil {
						t.Errorf("client %d stat: %v", c, err)
						return
					}
				case r < 0.92:
					srv.List("/hot/d03")
				case r < 0.97 || len(own) == 0:
					path := fmt.Sprintf("/scratch/c%d/f%04d", c, i)
					if err := srv.Create(path, (4+rng.Int63n(28))*storage.MB); err != nil {
						t.Errorf("client %d create: %v", c, err)
						return
					}
					own = append(own, path)
				default:
					path := own[len(own)-1]
					own = own[:len(own)-1]
					// Busy (replicas in transition) is an expected, retryable
					// serving-layer outcome under concurrent movement.
					if err := srv.Delete(path); err != nil && !errors.Is(err, dfs.ErrBusy) {
						t.Errorf("client %d delete: %v", c, err)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(stopChurn)
	churnWG.Wait()

	srv.Flush()
	var invErr, acctErr, auditErr error
	srv.Exec(func(fs *dfs.FileSystem) {
		acctErr = fs.CheckAccounting()
		invErr = fs.CheckInvariants()
		auditErr = mgr.Context().Index().Audit()
	})
	if acctErr != nil {
		t.Fatalf("accounting violated after concurrent load: %v", acctErr)
	}
	if invErr != nil {
		t.Fatalf("invariants violated after concurrent load: %v", invErr)
	}
	if auditErr != nil {
		t.Fatalf("candidate index corrupted after concurrent load: %v", auditErr)
	}

	stats := srv.Stats()
	if stats.Accesses == 0 || stats.Creates == 0 {
		t.Fatalf("load did not exercise the server: %+v", stats)
	}
	ex := srv.Executor().Stats()
	if v := ex.CheckBudgets(); v != "" {
		t.Fatalf("movement budget violated: %s (stats %+v)", v, ex)
	}
	if ex.Queued() == 0 {
		t.Fatal("movement executor saw no requests; load did not stress tier movement")
	}
	srv.Close()
	mgr.Stop()
	if err := fs.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated after close: %v", err)
	}
}

// TestServedMetadataOps covers the shard-served metadata surface.
func TestServedMetadataOps(t *testing.T) {
	srv, mgr, _ := buildServed(t, 4, server.ExecutorConfig{})
	srv.Start()
	defer func() { srv.Close(); mgr.Stop() }()

	if err := srv.Create("/a/b/one", 8*storage.MB); err != nil {
		t.Fatal(err)
	}
	if err := srv.Create("/a/b/two", 8*storage.MB); err != nil {
		t.Fatal(err)
	}
	if err := srv.Create("/a/b/one", 8*storage.MB); !errors.Is(err, dfs.ErrExists) {
		t.Fatalf("duplicate create: got %v, want ErrExists", err)
	}
	if !srv.Exists("/a/b/one") || srv.Exists("/a/b/three") {
		t.Fatal("Exists answered wrong")
	}
	// Non-canonical spellings must resolve consistently across the whole
	// metadata surface.
	if !srv.Exists("/a//b/./one") {
		t.Fatal("Exists rejected a non-canonical spelling")
	}
	if _, err := srv.Stat("/a//b/one"); err != nil {
		t.Fatalf("Stat rejected a non-canonical spelling: %v", err)
	}
	if got := srv.List("/a//b"); len(got) != 2 {
		t.Fatalf("List of non-canonical dir: %v", got)
	}
	info, err := srv.Stat("/a/b/one")
	if err != nil || info.Size != 8*storage.MB {
		t.Fatalf("Stat: %+v, %v", info, err)
	}
	if got := srv.List("/a/b"); len(got) != 2 || got[0] != "one" || got[1] != "two" {
		t.Fatalf("List: %v", got)
	}
	if res, err := srv.Access("/a/b/one"); err != nil || !res.Served {
		t.Fatalf("Access: %+v, %v", res, err)
	}
	if _, err := srv.Access("/a/b/missing"); err == nil {
		t.Fatal("Access of missing path succeeded")
	}
	if err := srv.Delete("/a/b/two"); err != nil {
		t.Fatal(err)
	}
	if srv.Exists("/a/b/two") {
		t.Fatal("deleted file still resolvable")
	}
	if got := srv.List("/a/b"); len(got) != 1 {
		t.Fatalf("List after delete: %v", got)
	}
}

// TestAccessEventsFeedPolicies asserts the ring actually feeds the tracker:
// accesses recorded through the serving hot path must land in the policy
// context's per-file statistics after a flush.
func TestAccessEventsFeedPolicies(t *testing.T) {
	srv, mgr, _ := buildServed(t, 4, server.ExecutorConfig{})
	srv.Start()
	defer func() { srv.Close(); mgr.Stop() }()

	if err := srv.Create("/feed/f", 8*storage.MB); err != nil {
		t.Fatal(err)
	}
	const n = 25
	for i := 0; i < n; i++ {
		if _, err := srv.Access("/feed/f"); err != nil {
			t.Fatal(err)
		}
	}
	srv.Flush()
	var count int64
	srv.Exec(func(fs *dfs.FileSystem) {
		f, err := fs.Open("/feed/f")
		if err != nil {
			t.Error(err)
			return
		}
		count = mgr.Context().AccessCount(f)
	})
	if count != n {
		t.Fatalf("tracker saw %d accesses, want %d", count, n)
	}
	if st := srv.Stats(); st.EventsDrained != n {
		t.Fatalf("drained %d events, want %d (%+v)", st.EventsDrained, n, st)
	}
}
